// Table 1 APSP rows: exact weighted (Corollary 6), unweighted undirected
// via Seidel (Corollary 7), (1+o(1))-approximate weighted (Theorem 9), and
// the naive learn-everything baseline.
//
// `--json` writes BENCH_apsp.json (label, clique_n, rounds, wall ns/op) so
// the perf trajectory of the APSP path is tracked per PR alongside
// BENCH_mm.json; `--smoke` restricts to tiny sizes for the CI smoke step.
#include <cstdio>
#include <limits>
#include <utility>

#include "bench_common.hpp"
#include "clique/fault.hpp"
#include "core/apsp.hpp"
#include "core/baseline.hpp"
#include "graph/generators.hpp"

namespace {

using namespace cca;
using namespace cca::core;
using cca::bench::Series;

}  // namespace

namespace {

char choice_letter(AutoEngineChoice c) {
  switch (c) {
    case AutoEngineChoice::Sparse: return 'S';
    case AutoEngineChoice::Semiring3D: return '3';
    case AutoEngineChoice::Fast: return 'F';
    case AutoEngineChoice::Naive: return 'N';
  }
  return '?';
}

void print_trace(const std::vector<AutoEngineChoice>& trace) {
  std::printf("trace=[");
  for (std::size_t i = 0; i < trace.size(); ++i)
    std::printf("%s%c", i ? " " : "", choice_letter(trace[i]));
  std::printf("]");
}

}  // namespace

int main(int argc, char** argv) {
  cca::bench::JsonReport json("apsp", argc, argv);
  const bool smoke = cca::bench::has_flag(argc, argv, "--smoke");

  cca::bench::print_header(
      "Sparsity-adaptive APSP: per-iteration nnz dispatch vs fixed 3D "
      "(sparse inputs, nnz ~ 8n)");
  // The tentpole series: apsp_semiring's Auto path re-plans every squaring
  // from the CURRENT iterate's finite-entry announcement, so the first
  // squarings of a sparse graph run the sparse engine and the dispatcher
  // flips to a locked dense engine once squaring has densified the
  // distance matrix (the per-iteration trace below; S = sparse, 3 = dense
  // 3D). Rounds must be strictly below the fixed Semiring3D path at these
  // densities, with element-identical distances and routing tables
  // (test_sparse.cpp pins the flip, test_traffic_regression the stats).
  {
    Series aut{"auto (per-iter dispatch)", {}, {}};
    Series fix{"fixed Semiring3D", {}, {}};
    const std::vector<int> sparse_sizes =
        smoke ? std::vector<int>{27, 64} : std::vector<int>{27, 64, 125, 216};
    // One untimed warmup then min-of-3 timed reps per engine: single-op
    // cold measurements on this series fluctuate +-15% (allocator and page
    // warmup dominate the first run), which previously made the committed
    // wall columns irreproducible. Rounds are deterministic — asserted
    // identical across reps.
    const int kReps = 3;
    auto measure = [&](const Graph& g, MmKind kind) {
      auto best = apsp_semiring(g, kind);  // warmup (untimed)
      std::int64_t min_wall = std::numeric_limits<std::int64_t>::max();
      for (int r = 0; r < kReps; ++r) {
        const auto t0 = cca::bench::now_ns();
        auto res = apsp_semiring(g, kind);
        const auto t1 = cca::bench::now_ns();
        CCA_ASSERT(res.traffic.rounds == best.traffic.rounds);
        if (t1 - t0 < min_wall) {
          min_wall = t1 - t0;
          best = std::move(res);
        }
      }
      return std::pair{std::move(best), min_wall};
    };
    for (const int n : sparse_sizes) {
      const auto g = random_weighted_graph(n, 8.0 / n, 1, 50,
                                           5 + static_cast<std::uint64_t>(n));
      const auto [ra, wa] = measure(g, MmKind::Auto);
      const auto [rf, wf] = measure(g, MmKind::Semiring3D);
      json.add("apsp_auto_sparse", n, ra.traffic.rounds, wa);
      json.add("apsp_3d_sparse", n, rf.traffic.rounds, wf);
      aut.add(n, static_cast<double>(ra.traffic.rounds));
      fix.add(n, static_cast<double>(rf.traffic.rounds));
      // sched = host ns inside the relay scheduler (TrafficStats::
      // schedule_wall_ns); hits/misses = schedule-cache counters. The pair
      // of sched columns is the wall-clock story of this series: planning
      // cost is what separated auto from 3d before the parallel split,
      // demand quantisation and message alignment.
      std::printf(
          "  n=%3d  auto=%5lld (%6.2f ms, sched %5.2f, hit %lld/%lld)  "
          "3d=%5lld (%6.2f ms, sched %5.2f)  ",
          n, static_cast<long long>(ra.traffic.rounds),
          static_cast<double>(wa) * 1e-6,
          static_cast<double>(ra.traffic.schedule_wall_ns) * 1e-6,
          static_cast<long long>(ra.traffic.schedule_hits),
          static_cast<long long>(ra.traffic.schedule_hits +
                                 ra.traffic.schedule_misses),
          static_cast<long long>(rf.traffic.rounds),
          static_cast<double>(wf) * 1e-6,
          static_cast<double>(rf.traffic.schedule_wall_ns) * 1e-6);
      print_trace(ra.engine_trace);
      std::printf("\n");
    }
    cca::bench::print_series_table({aut, fix});

    // Power-law (Chung-Lu) inputs: the heavy-tailed degree profile the
    // sparse engine's sqrt-capped worker groups absorb.
    Series plaw{"auto on power-law", {}, {}};
    const std::vector<int> plaw_sizes =
        smoke ? std::vector<int>{64} : std::vector<int>{64, 125, 216};
    for (const int n : plaw_sizes) {
      const auto g = power_law_graph(n, 3 * n, 2.2,
                                     7 + static_cast<std::uint64_t>(n));
      const auto t0 = cca::bench::now_ns();
      const auto r = apsp_semiring(g);
      const auto t1 = cca::bench::now_ns();
      json.add("apsp_auto_plaw", n, r.traffic.rounds, t1 - t0);
      plaw.add(n, static_cast<double>(r.traffic.rounds));
      std::printf("  n=%3d  auto=%5lld  ", n,
                  static_cast<long long>(r.traffic.rounds));
      print_trace(r.engine_trace);
      std::printf("\n");
    }
    cca::bench::print_series_table({plaw});
  }

  // --sparse: density sweep at fixed n — where does the ITERATED workload
  // stop profiting from per-iteration dispatch? Source of the README
  // "Choosing an MmKind" crossover table; diagnostic only (no json rows).
  if (cca::bench::has_flag(argc, argv, "--sparse")) {
    const int n = 216;
    std::printf("\nper-iteration dispatch crossover at n=%d (m = avg "
                "edges/node):\n", n);
    std::printf("  %6s  %8s  %8s  %6s  trace\n", "m/n", "auto", "3d", "win");
    for (const double mpn : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
      const auto g = random_weighted_graph(n, 2.0 * mpn / n, 1, 50, 9);
      const auto ra = apsp_semiring(g);
      const auto rf = apsp_semiring(g, MmKind::Semiring3D);
      std::printf("  %6.1f  %8lld  %8lld  %5.2fx  ", mpn,
                  static_cast<long long>(ra.traffic.rounds),
                  static_cast<long long>(rf.traffic.rounds),
                  static_cast<double>(rf.traffic.rounds) /
                      static_cast<double>(ra.traffic.rounds));
      print_trace(ra.engine_trace);
      std::printf("\n");
    }
    std::printf("(--sparse is a diagnostic mode; json rows are unchanged)\n");
  }

  cca::bench::print_header(
      "Table 1: weighted directed APSP (Corollary 6, semiring squaring)");
  Series exact{"semiring APSP", {}, {}};
  Series naive{"naive learn-all", {}, {}};
  const std::vector<int> exact_sizes =
      smoke ? std::vector<int>{27} : std::vector<int>{27, 64, 125, 216};
  for (const int n : exact_sizes) {
    const auto g = random_weighted_graph(n, 0.3, 1, 50,
                                         3 + static_cast<std::uint64_t>(n),
                                         /*directed=*/true);
    const auto t0 = cca::bench::now_ns();
    const auto r = apsp_semiring(g);
    const auto t1 = cca::bench::now_ns();
    json.add("apsp_semiring", n, r.traffic.rounds, t1 - t0);
    exact.add(n, static_cast<double>(r.traffic.rounds));
    naive.add(n, static_cast<double>(apsp_naive_learn(g).traffic.rounds));
  }
  cca::bench::print_series_table({exact, naive});
  cca::bench::print_fit(exact, "O(n^{1/3} log n)");
  cca::bench::print_fit(naive, "O(m/n) = O(n) dense");

  cca::bench::print_header(
      "Lemma 19: distance-bounded APSP (ring embedding, iterated squaring)");
  // The iterated dp_ring_embedded squarings stage byte-identical traffic
  // shapes, so this series is dominated by how fast the router schedules a
  // repeated shape — the schedule cache's target workload.
  Series bounded{"bounded APSP (M=8)", {}, {}};
  const std::vector<int> bounded_sizes =
      smoke ? std::vector<int>{16} : std::vector<int>{16, 25, 49};
  for (const int n : bounded_sizes) {
    const auto g = random_weighted_graph(n, 0.4, 1, 4,
                                         5 + static_cast<std::uint64_t>(n),
                                         /*directed=*/false);
    const auto t0 = cca::bench::now_ns();
    const auto r = apsp_bounded(g, /*m_bound=*/8);
    const auto t1 = cca::bench::now_ns();
    json.add("apsp_bounded", n, r.traffic.rounds, t1 - t0);
    bounded.add(n, static_cast<double>(r.traffic.rounds));
  }
  cca::bench::print_series_table({bounded});
  cca::bench::print_fit(bounded, "O(M n^rho log n)");

  cca::bench::print_header(
      "Table 1: unweighted undirected APSP (Corollary 7, Seidel)");
  Series seidel{"Seidel", {}, {}};
  const std::vector<int> seidel_sizes =
      smoke ? std::vector<int>{36} : std::vector<int>{36, 64, 121, 196};
  for (const int n : seidel_sizes) {
    const auto g = gnp_random_graph(n, 3.0 / n, 11 + static_cast<std::uint64_t>(n));
    const auto t0 = cca::bench::now_ns();
    const auto r = apsp_seidel(g);
    const auto t1 = cca::bench::now_ns();
    json.add("apsp_seidel", n, r.traffic.rounds, t1 - t0);
    seidel.add(n, static_cast<double>(r.traffic.rounds));
  }
  cca::bench::print_series_table({seidel});
  cca::bench::print_fit(seidel, "O~(n^rho) (rho = 0.288 implemented)");

  cca::bench::print_header(
      "Table 1: (1+o(1))-approximate APSP (Theorem 9) — rounds vs delta, "
      "measured error");
  const int n_apx = 36;
  const auto g = random_weighted_graph(n_apx, 0.3, 1, 400, 21, true);
  const auto truth = apsp_semiring(g);
  const std::vector<double> deltas =
      smoke ? std::vector<double>{0.5} : std::vector<double>{0.5, 0.25, 0.1};
  for (const double delta : deltas) {
    const auto t0 = cca::bench::now_ns();
    const auto approx = apsp_approx(g, delta);
    const auto t1 = cca::bench::now_ns();
    double worst = 1.0;
    for (int u = 0; u < n_apx; ++u)
      for (int v = 0; v < n_apx; ++v)
        if (truth.dist(u, v) > 0 &&
            truth.dist(u, v) < 1000000000LL)
          worst = std::max(worst, static_cast<double>(approx.dist(u, v)) /
                                      static_cast<double>(truth.dist(u, v)));
    std::printf("  delta=%.2f  rounds=%6lld  worst measured ratio=%.4f\n",
                delta, static_cast<long long>(approx.traffic.rounds), worst);
    char label[32];
    std::snprintf(label, sizeof label, "apsp_approx_d%02d",
                  static_cast<int>(delta * 100));
    json.add(label, n_apx, approx.traffic.rounds, t1 - t0);
  }
  std::printf("(ratio must stay below (1+delta)^ceil(log2 n); smaller delta "
              "costs ~1/delta^2 more rounds — Lemma 20's trade-off)\n");

  // --faults: the fault-tolerance overhead story. The SAME inputs as the
  // apsp_semiring series run under a fixed seeded fault mix; the distances
  // must come out bit-identical (recovery is exact, never approximate), so
  // the only thing this series measures is the PRICE of integrity: checksum
  // trailers, verification rounds, and charged retransmissions. The
  // fault-free rows above are emitted before any plan is installed and stay
  // bit-identical whether or not this flag is passed.
  if (cca::bench::has_flag(argc, argv, "--faults")) {
    cca::bench::print_header(
        "Fault-tolerant data plane: exact APSP under drop 5% / corrupt 5% / "
        "duplicate 2% (bit-identical distances, charged recovery)");
    Series faulty{"APSP under fault mix", {}, {}};
    clique::FaultPlan plan;
    plan.seed = 0xfa17;
    plan.drop_prob = 0.05;
    plan.corrupt_prob = 0.05;
    plan.duplicate_prob = 0.02;
    const std::vector<int> fault_sizes =
        smoke ? std::vector<int>{27} : std::vector<int>{27, 64, 125};
    for (const int n : fault_sizes) {
      const auto gf = random_weighted_graph(
          n, 0.3, 1, 50, 3 + static_cast<std::uint64_t>(n), /*directed=*/true);
      const auto clean = apsp_semiring(gf);
      clique::FaultScope scope(plan);
      const auto t0 = cca::bench::now_ns();
      const auto r = apsp_semiring(gf);
      const auto t1 = cca::bench::now_ns();
      CCA_ASSERT(r.dist == clean.dist);  // never a silent wrong answer
      json.add("apsp_fault_mix", n, r.traffic.rounds, t1 - t0);
      faulty.add(n, static_cast<double>(r.traffic.rounds));
      std::printf(
          "  n=%3d  rounds=%6lld (clean %6lld, %.2fx)  faults=%4lld  "
          "retrans=%5lld rounds / %7lld words  recovery=%6.2f ms\n", n,
          static_cast<long long>(r.traffic.rounds),
          static_cast<long long>(clean.traffic.rounds),
          static_cast<double>(r.traffic.rounds) /
              static_cast<double>(clean.traffic.rounds),
          static_cast<long long>(r.traffic.faults_injected),
          static_cast<long long>(r.traffic.retransmit_rounds),
          static_cast<long long>(r.traffic.retransmit_words),
          static_cast<double>(r.traffic.recovery_wall_ns) * 1e-6);
    }
    cca::bench::print_series_table({faulty});
    json.note(
        "fault series (PR 7): apsp_fault_mix reruns the apsp_semiring "
        "inputs under a seeded FaultPlan (drop 5%, corrupt 2-of-coin 5%, "
        "duplicate 2%) through the hardened data plane: SplitMix64 frame "
        "checksums, one verification round per superstep, and bounded "
        "retransmission charged into rounds/retransmit_rounds. Distances "
        "are asserted bit-identical to the fault-free run — the row "
        "measures the integrity overhead, not an approximation.");
  }
  json.note(
      "per-iteration dispatch (PR 5): apsp_semiring defaults to MmKind::Auto "
      "— every squaring re-plans from the current iterate's finite-entry "
      "announcement, runs sparse until squaring densifies the matrix, then "
      "locks the dense engine (hysteresis, no further announcements). The "
      "apsp_auto_sparse vs apsp_3d_sparse rows pin the win at nnz ~ 8n; the "
      "remaining series also moved vs PR 4 because the convergence-vote "
      "bugfix stops the squaring loop at the fixed point instead of running "
      "all log n iterations, and apsp_bounded/apsp_approx/apsp_seidel now "
      "dispatch per iteration too.");
  json.note(
      "scheduler wall-clock (PR 6): the sparse-series wall columns are now "
      "min-of-3 after one warmup (cold single-op walls fluctuated +-15%). "
      "The auto-vs-3d wall gap closed from 3.6x at n=216 to parity: the "
      "dispatcher evaluates dense candidates first and aborts sparse plans "
      "against the concrete dense cost with per-phase volume lower bounds, "
      "and the sparse distribute/contribute messages align to 4 (contribute "
      "8 from n >= 200) words so the Euler split's identical-halves "
      "collapse prunes the first levels of every aligned phase. Rounds "
      "moved only by the charged padding (auto still wins every sparse row "
      "from n = 64 up; n = 27 keeps its documented +-1-round exception). "
      "The remaining n = 64 auto wall premium (~1 ms/op) is structural: "
      "rounds-first dispatch must pick sparse at 17-vs-24 rounds, and the "
      "sparse plan's Euler split + execution costs more host time than the "
      "dense engine's cached schedule at that size.");
  json.note(
      "schedule-cache finding (PR 3): every iterated-squaring workload here "
      "stages byte-identical demand shapes per iteration, so the Koenig "
      "Euler-split runs once per shape and replays from the cache. Measured "
      "against the PR 2 baselines on one machine, with bit-identical "
      "rounds: apsp_semiring 1.9-3.8x wall (1.2x at the small n=64 point "
      "where scheduling was not dominant), apsp_seidel 1.5-4.7x, "
      "apsp_approx 4.7-6.3x, apsp_bounded 1.6-2.6x vs the pre-cache "
      "library.");
  json.write();
  return 0;
}
