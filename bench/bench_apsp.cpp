// Table 1 APSP rows: exact weighted (Corollary 6), unweighted undirected
// via Seidel (Corollary 7), (1+o(1))-approximate weighted (Theorem 9), and
// the naive learn-everything baseline.
//
// `--json` writes BENCH_apsp.json (label, clique_n, rounds, wall ns/op) so
// the perf trajectory of the APSP path is tracked per PR alongside
// BENCH_mm.json; `--smoke` restricts to tiny sizes for the CI smoke step.
#include <cstdio>

#include "bench_common.hpp"
#include "core/apsp.hpp"
#include "core/baseline.hpp"
#include "graph/generators.hpp"

namespace {

using namespace cca;
using namespace cca::core;
using cca::bench::Series;

}  // namespace

int main(int argc, char** argv) {
  cca::bench::JsonReport json("apsp", argc, argv);
  const bool smoke = cca::bench::has_flag(argc, argv, "--smoke");

  cca::bench::print_header(
      "Table 1: weighted directed APSP (Corollary 6, semiring squaring)");
  Series exact{"semiring APSP", {}, {}};
  Series naive{"naive learn-all", {}, {}};
  const std::vector<int> exact_sizes =
      smoke ? std::vector<int>{27} : std::vector<int>{27, 64, 125, 216};
  for (const int n : exact_sizes) {
    const auto g = random_weighted_graph(n, 0.3, 1, 50,
                                         3 + static_cast<std::uint64_t>(n),
                                         /*directed=*/true);
    const auto t0 = cca::bench::now_ns();
    const auto r = apsp_semiring(g);
    const auto t1 = cca::bench::now_ns();
    json.add("apsp_semiring", n, r.traffic.rounds, t1 - t0);
    exact.add(n, static_cast<double>(r.traffic.rounds));
    naive.add(n, static_cast<double>(apsp_naive_learn(g).traffic.rounds));
  }
  cca::bench::print_series_table({exact, naive});
  cca::bench::print_fit(exact, "O(n^{1/3} log n)");
  cca::bench::print_fit(naive, "O(m/n) = O(n) dense");

  cca::bench::print_header(
      "Lemma 19: distance-bounded APSP (ring embedding, iterated squaring)");
  // The iterated dp_ring_embedded squarings stage byte-identical traffic
  // shapes, so this series is dominated by how fast the router schedules a
  // repeated shape — the schedule cache's target workload.
  Series bounded{"bounded APSP (M=8)", {}, {}};
  const std::vector<int> bounded_sizes =
      smoke ? std::vector<int>{16} : std::vector<int>{16, 25, 49};
  for (const int n : bounded_sizes) {
    const auto g = random_weighted_graph(n, 0.4, 1, 4,
                                         5 + static_cast<std::uint64_t>(n),
                                         /*directed=*/false);
    const auto t0 = cca::bench::now_ns();
    const auto r = apsp_bounded(g, /*m_bound=*/8);
    const auto t1 = cca::bench::now_ns();
    json.add("apsp_bounded", n, r.traffic.rounds, t1 - t0);
    bounded.add(n, static_cast<double>(r.traffic.rounds));
  }
  cca::bench::print_series_table({bounded});
  cca::bench::print_fit(bounded, "O(M n^rho log n)");

  cca::bench::print_header(
      "Table 1: unweighted undirected APSP (Corollary 7, Seidel)");
  Series seidel{"Seidel", {}, {}};
  const std::vector<int> seidel_sizes =
      smoke ? std::vector<int>{36} : std::vector<int>{36, 64, 121, 196};
  for (const int n : seidel_sizes) {
    const auto g = gnp_random_graph(n, 3.0 / n, 11 + static_cast<std::uint64_t>(n));
    const auto t0 = cca::bench::now_ns();
    const auto r = apsp_seidel(g);
    const auto t1 = cca::bench::now_ns();
    json.add("apsp_seidel", n, r.traffic.rounds, t1 - t0);
    seidel.add(n, static_cast<double>(r.traffic.rounds));
  }
  cca::bench::print_series_table({seidel});
  cca::bench::print_fit(seidel, "O~(n^rho) (rho = 0.288 implemented)");

  cca::bench::print_header(
      "Table 1: (1+o(1))-approximate APSP (Theorem 9) — rounds vs delta, "
      "measured error");
  const int n_apx = 36;
  const auto g = random_weighted_graph(n_apx, 0.3, 1, 400, 21, true);
  const auto truth = apsp_semiring(g);
  const std::vector<double> deltas =
      smoke ? std::vector<double>{0.5} : std::vector<double>{0.5, 0.25, 0.1};
  for (const double delta : deltas) {
    const auto t0 = cca::bench::now_ns();
    const auto approx = apsp_approx(g, delta);
    const auto t1 = cca::bench::now_ns();
    double worst = 1.0;
    for (int u = 0; u < n_apx; ++u)
      for (int v = 0; v < n_apx; ++v)
        if (truth.dist(u, v) > 0 &&
            truth.dist(u, v) < 1000000000LL)
          worst = std::max(worst, static_cast<double>(approx.dist(u, v)) /
                                      static_cast<double>(truth.dist(u, v)));
    std::printf("  delta=%.2f  rounds=%6lld  worst measured ratio=%.4f\n",
                delta, static_cast<long long>(approx.traffic.rounds), worst);
    char label[32];
    std::snprintf(label, sizeof label, "apsp_approx_d%02d",
                  static_cast<int>(delta * 100));
    json.add(label, n_apx, approx.traffic.rounds, t1 - t0);
  }
  std::printf("(ratio must stay below (1+delta)^ceil(log2 n); smaller delta "
              "costs ~1/delta^2 more rounds — Lemma 20's trade-off)\n");
  json.note(
      "schedule-cache finding (PR 3): every iterated-squaring workload here "
      "stages byte-identical demand shapes per iteration, so the Koenig "
      "Euler-split runs once per shape and replays from the cache. Measured "
      "against the PR 2 baselines on one machine, with bit-identical "
      "rounds: apsp_semiring 1.9-3.8x wall (1.2x at the small n=64 point "
      "where scheduling was not dominant), apsp_seidel 1.5-4.7x, "
      "apsp_approx 4.7-6.3x, apsp_bounded 1.6-2.6x vs the pre-cache "
      "library.");
  json.write();
  return 0;
}
