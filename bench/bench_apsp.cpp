// Table 1 APSP rows: exact weighted (Corollary 6), unweighted undirected
// via Seidel (Corollary 7), (1+o(1))-approximate weighted (Theorem 9), and
// the naive learn-everything baseline.
#include <cstdio>

#include "bench_common.hpp"
#include "core/apsp.hpp"
#include "core/baseline.hpp"
#include "graph/generators.hpp"

namespace {

using namespace cca;
using namespace cca::core;
using cca::bench::Series;

}  // namespace

int main() {
  cca::bench::print_header(
      "Table 1: weighted directed APSP (Corollary 6, semiring squaring)");
  Series exact{"semiring APSP", {}, {}};
  Series naive{"naive learn-all", {}, {}};
  for (const int n : {27, 64, 125, 216}) {
    const auto g = random_weighted_graph(n, 0.3, 1, 50,
                                         3 + static_cast<std::uint64_t>(n),
                                         /*directed=*/true);
    exact.add(n, static_cast<double>(apsp_semiring(g).traffic.rounds));
    naive.add(n, static_cast<double>(apsp_naive_learn(g).traffic.rounds));
  }
  cca::bench::print_series_table({exact, naive});
  cca::bench::print_fit(exact, "O(n^{1/3} log n)");
  cca::bench::print_fit(naive, "O(m/n) = O(n) dense");

  cca::bench::print_header(
      "Table 1: unweighted undirected APSP (Corollary 7, Seidel)");
  Series seidel{"Seidel", {}, {}};
  for (const int n : {36, 64, 121, 196}) {
    const auto g = gnp_random_graph(n, 3.0 / n, 11 + static_cast<std::uint64_t>(n));
    seidel.add(n, static_cast<double>(apsp_seidel(g).traffic.rounds));
  }
  cca::bench::print_series_table({seidel});
  cca::bench::print_fit(seidel, "O~(n^rho) (rho = 0.288 implemented)");

  cca::bench::print_header(
      "Table 1: (1+o(1))-approximate APSP (Theorem 9) — rounds vs delta, "
      "measured error");
  const int n_apx = 36;
  const auto g = random_weighted_graph(n_apx, 0.3, 1, 400, 21, true);
  const auto truth = apsp_semiring(g);
  for (const double delta : {0.5, 0.25, 0.1}) {
    const auto approx = apsp_approx(g, delta);
    double worst = 1.0;
    for (int u = 0; u < n_apx; ++u)
      for (int v = 0; v < n_apx; ++v)
        if (truth.dist(u, v) > 0 &&
            truth.dist(u, v) < 1000000000LL)
          worst = std::max(worst, static_cast<double>(approx.dist(u, v)) /
                                      static_cast<double>(truth.dist(u, v)));
    std::printf("  delta=%.2f  rounds=%6lld  worst measured ratio=%.4f\n",
                delta, static_cast<long long>(approx.traffic.rounds), worst);
  }
  std::printf("(ratio must stay below (1+delta)^ceil(log2 n); smaller delta "
              "costs ~1/delta^2 more rounds — Lemma 20's trade-off)\n");
  return 0;
}
