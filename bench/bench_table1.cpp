// The aggregate Table 1 reproduction: one row per paper entry, with the
// paper's asymptotic bound, the bound for the implemented sigma (Strassen),
// and the measured exponent / rounds from a small sweep. The per-topic
// binaries (bench_mm, bench_subgraph, ...) print the full sweeps behind
// these summaries.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "clique/network.hpp"
#include "core/apsp.hpp"
#include "core/baseline.hpp"
#include "core/counting.hpp"
#include "core/four_cycle.hpp"
#include "core/girth.hpp"
#include "core/color_coding.hpp"
#include "core/mm.hpp"
#include "graph/generators.hpp"
#include "matrix/codec.hpp"
#include "util/fit.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace cca;
using namespace cca::core;

Matrix<std::int64_t> random_matrix(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m(i, j) = rng.next_in(0, 100);
  return m;
}

std::string fit_cell(const std::vector<double>& ns,
                     const std::vector<double>& rounds) {
  const auto f = fit_power_law(ns, rounds);
  char buf[64];
  std::snprintf(buf, sizeof buf, "n^%.2f", f.exponent);
  return buf;
}

/// "n^B (sched n^S)": B fits the schedule-independent per-node volume
/// bound, S the measured Koenig-relay schedule (see clique/network.hpp).
std::string fit_cell2(const std::vector<double>& ns,
                      const std::vector<double>& bound,
                      const std::vector<double>& sched) {
  const auto fb = fit_power_law(ns, bound);
  const auto fs = fit_power_law(ns, sched);
  char buf[80];
  std::snprintf(buf, sizeof buf, "n^%.2f (sched n^%.2f)", fb.exponent,
                fs.exponent);
  return buf;
}

}  // namespace

int main() {
  std::printf("Reproduction of Table 1 (PODC 2015): measured on the exact-\n"
              "accounting clique simulator; fast engine = Strassen tensor\n"
              "(sigma = log2 7 = 2.807, so implemented rho = 0.288; the\n"
              "paper's 0.158 assumes omega < 2.3729).\n");

  Table t({"problem", "paper (this work)", "implemented bound", "measured",
           "prior work (implemented)"});

  {  // Matrix multiplication, semiring.
    std::vector<double> ns, rs, bs;
    for (const int n : {27, 64, 125, 216, 343, 512}) {
      clique::Network net(n);
      const IntRing ring;
      const I64Codec codec;
      (void)mm_semiring_3d(net, ring, codec, random_matrix(n, 1),
                           random_matrix(n, 2));
      ns.push_back(n);
      rs.push_back(static_cast<double>(net.stats().rounds));
      bs.push_back(static_cast<double>(net.stats().bound_rounds));
    }
    t.add_row({"MM (semiring)", "O(n^{1/3})", "O(n^{1/3})",
               fit_cell2(ns, bs, rs), "-"});
  }

  {  // Matrix multiplication, ring (matched-depth family).
    std::vector<double> ns, rs, bs;
    for (const auto& [n, depth] :
         std::initializer_list<std::pair<int, int>>{{7, 1}, {49, 2}, {343, 3}}) {
      const auto plan = plan_fast_mm(n, depth);
      clique::Network net(plan.clique_n);
      const IntRing ring;
      const I64Codec codec;
      const auto alg = tensor_power(strassen_algorithm(), depth);
      (void)mm_fast_bilinear(
          net, ring, codec, alg,
          pad_matrix(random_matrix(n, 1), plan.clique_n, std::int64_t{0}),
          pad_matrix(random_matrix(n, 2), plan.clique_n, std::int64_t{0}));
      ns.push_back(plan.clique_n);
      rs.push_back(static_cast<double>(net.stats().rounds));
      bs.push_back(static_cast<double>(net.stats().bound_rounds));
    }
    t.add_row({"MM (ring)", "O(n^{0.158})", "O(n^{0.288})",
               fit_cell2(ns, bs, rs), "O(n^{0.373}) [25] (not impl.)"});
  }

  {  // Triangle counting.
    std::vector<double> ns, rs, bs, ps;
    for (const int n : {27, 64, 125, 216}) {
      const auto g = gnp_random_graph(n, 8.0 / n, 3);
      ns.push_back(n);
      const auto fast = count_triangles_cc(g, MmKind::Fast);
      rs.push_back(static_cast<double>(fast.traffic.rounds));
      bs.push_back(static_cast<double>(fast.traffic.bound_rounds));
      ps.push_back(static_cast<double>(
          count_triangles_cc(g, MmKind::Semiring3D).traffic.bound_rounds));
    }
    t.add_row({"triangle counting", "O(n^{0.158})", "O(n^{0.288})",
               fit_cell2(ns, bs, rs), fit_cell(ns, ps) + " (3D partition [24])"});
  }

  {  // 4-cycle detection (Theorem 4) vs Dolev baseline.
    std::int64_t r64 = 0, r512 = 0;
    std::vector<double> ns, ds;
    for (const int n : {64, 128, 256, 512}) {
      const auto g = gnp_random_graph(n, 2.5 / n, 4);
      const auto r = detect_4cycle_const(g).traffic.rounds;
      if (n == 64) r64 = r;
      if (n == 512) r512 = r;
      if (n <= 256) {
        ns.push_back(n);
        ds.push_back(static_cast<double>(detect_k_cycle_dolev(g, 4).traffic.rounds));
      }
    }
    char cell[64];
    std::snprintf(cell, sizeof cell, "%lld @64 -> %lld @512 (flat)",
                  static_cast<long long>(r64), static_cast<long long>(r512));
    t.add_row({"4-cycle detection", "O(1)", "O(1)", cell,
               fit_cell(ns, ds) + " (Dolev [24])"});
  }

  {  // 4-cycle counting.
    std::vector<double> ns, rs, bs;
    for (const int n : {27, 64, 125, 216}) {
      const auto g = gnp_random_graph(n, 8.0 / n, 5);
      ns.push_back(n);
      const auto r = count_4cycles_cc(g);
      rs.push_back(static_cast<double>(r.traffic.rounds));
      bs.push_back(static_cast<double>(r.traffic.bound_rounds));
    }
    t.add_row({"4-cycle counting", "O(n^{0.158})", "O(n^{0.288})",
               fit_cell2(ns, bs, rs), "O~(n^{1/2}) [24]"});
  }

  {  // k-cycle detection (k = 5), fixed trial budget.
    std::vector<double> ns, rs, bs, ds;
    for (const int n : {32, 64, 128}) {
      const auto g = planted_cycle_graph(n, 5, 2.0 / n, 6);
      ns.push_back(n);
      const auto r = detect_k_cycle_cc(g, 5, 9, /*max_trials=*/2);
      rs.push_back(static_cast<double>(r.traffic.rounds));
      bs.push_back(static_cast<double>(r.traffic.bound_rounds));
      ds.push_back(static_cast<double>(detect_k_cycle_dolev(g, 5).traffic.rounds));
    }
    t.add_row({"k-cycle detection (k=5)", "2^{O(k)} n^{0.158} log n",
               "2^{O(k)} n^{0.288} log n", fit_cell2(ns, bs, rs),
               fit_cell(ns, ds) + " (n^{1-2/k} [24])"});
  }

  {  // Girth, dense undirected (detection path).
    std::vector<double> ns, rs, bs;
    for (const int n : {64, 125, 216, 343}) {
      const auto g = gnp_random_graph(n, 0.4, 7);
      ns.push_back(n);
      const auto r = girth_undirected_cc(g, 8);
      rs.push_back(static_cast<double>(r.traffic.rounds));
      bs.push_back(static_cast<double>(r.traffic.bound_rounds));
    }
    t.add_row({"girth (undirected)", "O~(n^{0.158})", "O~(n^{0.288})",
               fit_cell2(ns, bs, rs), "- (first algorithm)"});
  }

  {  // Weighted directed APSP, exact.
    std::vector<double> ns, rs, bs, nv;
    for (const int n : {27, 64, 125, 216}) {
      const auto g = random_weighted_graph(n, 0.3, 1, 50, 9, true);
      ns.push_back(n);
      const auto r = apsp_semiring(g);
      rs.push_back(static_cast<double>(r.traffic.rounds));
      bs.push_back(static_cast<double>(r.traffic.bound_rounds));
      nv.push_back(static_cast<double>(apsp_naive_learn(g).traffic.rounds));
    }
    t.add_row({"weighted dir. APSP", "O(n^{1/3} log n)", "O(n^{1/3} log n)",
               fit_cell2(ns, bs, rs), fit_cell(ns, nv) + " (naive)"});
  }

  {  // APSP with weighted diameter U.
    const auto small = random_weighted_graph(25, 0.4, 1, 2, 10);
    const auto large = random_weighted_graph(25, 0.4, 16, 32, 10);
    const auto rs = apsp_small_diameter(small).traffic.rounds;
    const auto rl = apsp_small_diameter(large).traffic.rounds;
    char cell[64];
    std::snprintf(cell, sizeof cell, "%lldx rounds for ~16x U",
                  static_cast<long long>(rl / std::max<std::int64_t>(1, rs)));
    t.add_row({"APSP, weighted diam. U", "O(U n^{0.158})", "O(U n^{0.288})",
               cell, "-"});
  }

  {  // Approximate APSP.
    const auto g = random_weighted_graph(36, 0.3, 1, 400, 11, true);
    const auto exact = apsp_semiring(g);
    const auto approx = apsp_approx(g, 0.25);
    double worst = 1.0;
    for (int u = 0; u < 36; ++u)
      for (int v = 0; v < 36; ++v)
        if (exact.dist(u, v) > 0 && exact.dist(u, v) < (1LL << 40))
          worst = std::max(worst, static_cast<double>(approx.dist(u, v)) /
                                      static_cast<double>(exact.dist(u, v)));
    char cell[64];
    std::snprintf(cell, sizeof cell, "ratio %.3f @ delta=.25", worst);
    t.add_row({"APSP (1+o(1))-approx", "O(n^{0.158+o(1)})", "O(n^{0.288+o(1)})",
               cell, "O~(n^{1/2}) 2-approx [57] (not impl.)"});
  }

  {  // Unweighted undirected APSP (Seidel).
    std::vector<double> ns, rs, bs;
    for (const int n : {36, 64, 121, 196}) {
      const auto g = gnp_random_graph(n, 3.0 / n, 12);
      ns.push_back(n);
      const auto r = apsp_seidel(g);
      rs.push_back(static_cast<double>(r.traffic.rounds));
      bs.push_back(static_cast<double>(r.traffic.bound_rounds));
    }
    t.add_row({"unweighted undir. APSP", "O~(n^{0.158})", "O~(n^{0.288})",
               fit_cell2(ns, bs, rs), "O~(n^{1/2}) 2-approx [57] (not impl.)"});
  }

  std::fputs(t.to_string().c_str(), stdout);
  std::printf("\nSee EXPERIMENTS.md for the paper-vs-measured discussion of "
              "every row.\n");
  return 0;
}
