// Table 1 row "weighted diameter U: O(U n^rho)" (Corollary 8):
// rounds vs the weighted diameter U at fixed n — the linear-in-U shape —
// against the U-independent approximate algorithm (Theorem 9).
#include <cstdio>

#include "bench_common.hpp"
#include "core/apsp.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"

namespace {

using namespace cca;
using namespace cca::core;
using cca::bench::Series;

}  // namespace

int main() {
  cca::bench::print_header(
      "Table 1: exact APSP by weighted diameter (Corollary 8) — U sweep at "
      "n = 25");

  const int n = 25;
  Series exact{"Cor. 8 exact", {}, {}};
  Series approx{"Thm 9 approx (d=0.25)", {}, {}};
  std::printf("%-10s %-10s %-16s %-16s\n", "weights", "U", "Cor.8 rounds",
              "approx rounds");
  for (const std::int64_t w : {1, 2, 4, 8, 16, 32}) {
    const auto g = random_weighted_graph(n, 0.4, w, 2 * w,
                                         5 + static_cast<std::uint64_t>(w));
    const auto u = ref_weighted_diameter(g);
    const auto e = apsp_small_diameter(g);
    const auto a = apsp_approx(g, 0.25);
    std::printf("[%2lld,%3lld]  %-10lld %-16lld %-16lld\n",
                static_cast<long long>(w), static_cast<long long>(2 * w),
                static_cast<long long>(u),
                static_cast<long long>(e.traffic.rounds),
                static_cast<long long>(a.traffic.rounds));
    exact.add(static_cast<double>(u), static_cast<double>(e.traffic.rounds));
    approx.add(static_cast<double>(u), static_cast<double>(a.traffic.rounds));
  }
  // Here the fit is in U, not n.
  {
    const auto f = fit_power_law(exact.n, exact.rounds);
    std::printf("\nCor. 8: rounds ~ %.2f * U^%.3f (R^2 = %.3f); paper: linear in U\n",
                f.coefficient, f.exponent, f.r_squared);
    const auto fa = fit_power_law(approx.n, approx.rounds);
    std::printf("Thm 9:  rounds ~ %.2f * U^%.3f (R^2 = %.3f); paper: U enters "
                "only through log M\n",
                fa.coefficient, fa.exponent, fa.r_squared);
  }
  std::printf("\nThe crossover (approx cheaper than exact once U is large) is "
              "the motivation for Theorem 9.\n");
  return 0;
}
