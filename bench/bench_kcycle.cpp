// Table 1 row "k-cycle detection": colour-coding (Theorem 3, 2^{O(k)} n^rho
// log n) vs the Dolev et al. prior bound O~(n^{1-2/k}).
//
// Two views: (a) rounds vs n at fixed k — the n^rho vs n^{1-2/k} exponents;
// (b) rounds vs k at fixed n — the 2^{O(k)} trial/product blow-up of
// colour-coding against the IMPROVING exponent of the prior work, i.e. the
// trade-off Table 1 encodes.
#include <cstdio>

#include "bench_common.hpp"
#include "core/baseline.hpp"
#include "core/color_coding.hpp"
#include "graph/generators.hpp"

namespace {

using namespace cca;
using namespace cca::core;
using cca::bench::Series;

}  // namespace

int main() {
  cca::bench::print_header(
      "Table 1: k-cycle detection — colour-coding vs Dolev baseline (k = 5)");

  // Per-colouring cost (Lemma 11): a planted cycle is found after a
  // seed-dependent number of trials; to compare scaling in n we charge a
  // fixed trial budget of 4 colourings for every size.
  const int k = 5;
  const int trials = 4;
  Series cc{"colour-coding (4 trials)", {}, {}};
  Series dolev{"Dolev prior", {}, {}};
  for (const int n : {32, 64, 128, 256}) {
    const auto g = planted_cycle_graph(n, k, 2.0 / n, 3 + static_cast<std::uint64_t>(n));
    const auto r = detect_k_cycle_cc(g, k, 1234, trials);
    cc.add(n, static_cast<double>(r.traffic.rounds));
    const auto d = detect_k_cycle_dolev(g, k);
    dolev.add(n, static_cast<double>(d.traffic.rounds));
  }
  cca::bench::print_series_table({cc, dolev});
  cca::bench::print_fit(cc, "O(n^rho) per trial batch (rho = 0.288 implemented)");
  cca::bench::print_fit(dolev, "O~(n^{1-2/k}) = O~(n^0.6) at k = 5");

  cca::bench::print_header("k-sweep at n = 64: the 2^{O(k)} factor");
  std::printf("%-4s %-26s %-22s\n", "k", "colour-coding (1 trial)", "Dolev baseline");
  for (const int kk : {3, 4, 5, 6, 7}) {
    const auto g = planted_cycle_graph(64, kk, 0.03, 17 + static_cast<std::uint64_t>(kk));
    const auto r = detect_k_cycle_cc(g, kk, 99, 1);
    const auto d = detect_k_cycle_dolev(g, kk);
    std::printf("%-4d %-26lld %-22lld\n", kk,
                static_cast<long long>(r.traffic.rounds),
                static_cast<long long>(d.traffic.rounds));
  }
  std::printf("\ncolour-coding rounds grow ~3^k per trial (subset products);\n"
              "the Dolev baseline improves with k (exponent 1-2/k) until its\n"
              "group unions degenerate at small n — exactly Table 1's trade-off.\n");
  return 0;
}
