// google-benchmark microbenchmarks for the LOCAL matrix kernels that run
// inside each simulated node: schoolbook vs Strassen vs the bilinear-
// algorithm interpreter, plus the capped-polynomial ring used by Lemma 18.
//
// Local computation is free in the congested clique model; these benches
// exist because the simulator's wall-clock is dominated by node-local
// kernels and the ablation informs the cutoff choices.
#include <benchmark/benchmark.h>

#include "matrix/bilinear.hpp"
#include "matrix/ops.hpp"
#include "matrix/poly.hpp"
#include "matrix/semiring.hpp"
#include "matrix/strassen.hpp"
#include "util/rng.hpp"

namespace {

using namespace cca;

Matrix<std::int64_t> random_matrix(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m(i, j) = rng.next_in(-100, 100);
  return m;
}

void BM_Schoolbook(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const IntRing ring;
  const auto a = random_matrix(n, 1);
  const auto b = random_matrix(n, 2);
  for (auto _ : state) benchmark::DoNotOptimize(multiply(ring, a, b));
  state.SetComplexityN(n);
}
BENCHMARK(BM_Schoolbook)->RangeMultiplier(2)->Range(32, 256)->Complexity();

void BM_Strassen(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const IntRing ring;
  const auto a = random_matrix(n, 1);
  const auto b = random_matrix(n, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(strassen_multiply(ring, a, b, 64));
  state.SetComplexityN(n);
}
BENCHMARK(BM_Strassen)->RangeMultiplier(2)->Range(32, 256)->Complexity();

void BM_MinPlusProduct(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const MinPlusSemiring sr;
  Rng rng(3);
  Matrix<std::int64_t> a(n, n, MinPlusSemiring::kInf);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (rng.chance(3, 4)) a(i, j) = rng.next_in(0, 100);
  for (auto _ : state) benchmark::DoNotOptimize(multiply(sr, a, a));
}
BENCHMARK(BM_MinPlusProduct)->RangeMultiplier(2)->Range(32, 128);

void BM_BilinearInterpreter(benchmark::State& state) {
  // apply_bilinear on a tensor power: the Step 2/6 workload shape.
  const int depth = static_cast<int>(state.range(0));
  const auto alg = tensor_power(strassen_algorithm(), depth);
  const IntRing ring;
  const auto a = random_matrix(alg.d, 4);
  const auto b = random_matrix(alg.d, 5);
  for (auto _ : state) benchmark::DoNotOptimize(apply_bilinear(ring, alg, a, b));
}
BENCHMARK(BM_BilinearInterpreter)->DenseRange(1, 4);

void BM_PolyProduct(benchmark::State& state) {
  // Lemma 18 entries: cap = 2M+1 polynomial convolutions.
  const int cap = static_cast<int>(state.range(0));
  const PolyRing ring{cap};
  Rng rng(6);
  Matrix<CappedPoly> a(16, 16, ring.zero());
  for (int i = 0; i < 16; ++i)
    for (int j = 0; j < 16; ++j)
      a(i, j) = CappedPoly::monomial(cap, static_cast<int>(rng.next_below(
                                              static_cast<std::uint64_t>(cap))));
  for (auto _ : state) benchmark::DoNotOptimize(multiply(ring, a, a));
}
BENCHMARK(BM_PolyProduct)->RangeMultiplier(2)->Range(4, 64);

}  // namespace

BENCHMARK_MAIN();
