// Table 1, rows "matrix multiplication (semiring)" and "(ring)":
// measured rounds for the Section 2.1 and 2.2 algorithms against the naive
// baseline, with fitted exponents.
//
// Paper bounds: semiring O(n^{1/3}); ring O(n^{1-2/omega}) — with the
// implemented Strassen tensor (sigma = log2 7) the target exponent is
// 1 - 2/sigma ~ 0.288. The fast series uses the matched-depth family
// (m(d) ~ n); a fixed-depth series is also shown to make the depth
// granularity visible (the paper's +epsilon in Theorem 1).
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>

#include "bench_common.hpp"
#include "clique/network.hpp"
#include "clique/socket_transport.hpp"
#include "core/engine.hpp"
#include "core/mm.hpp"
#include "matrix/codec.hpp"
#include "matrix/ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace cca;
using namespace cca::core;
using cca::bench::Series;

Matrix<std::int64_t> random_matrix(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m(i, j) = rng.next_in(0, 1000);
  return m;
}

Matrix<std::int64_t> random_sparse_matrix(int n, std::int64_t nnz,
                                          std::uint64_t seed) {
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, 0);
  std::int64_t placed = 0;
  while (placed < nnz) {
    const int i = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    const int j = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (m(i, j) != 0) continue;
    m(i, j) = rng.next_in(1, 1000);
    ++placed;
  }
  return m;
}

clique::TrafficStats run_sparse(int n, std::int64_t nnz) {
  clique::Network net(n);
  const auto a = random_sparse_matrix(n, nnz, 1);
  const auto b = random_sparse_matrix(n, nnz, 2);
  (void)mm_semiring_sparse(net, IntRing{}, I64Codec{}, a, b);
  return net.stats();
}

clique::TrafficStats run_auto(int n, std::int64_t nnz) {
  const IntMmEngine engine(MmKind::Auto, n);
  clique::Network net(engine.clique_n());
  const auto a = random_sparse_matrix(n, nnz, 1);
  const auto b = random_sparse_matrix(n, nnz, 2);
  (void)engine.multiply(net, a, b);
  return net.stats();
}

clique::TrafficStats run_semiring(int n, MmStepProfile* profile = nullptr) {
  clique::Network net(n);
  const IntRing ring;
  const I64Codec codec;
  const auto a = random_matrix(n, 1);
  const auto b = random_matrix(n, 2);
  (void)mm_semiring_3d(net, ring, codec, a, b, profile);
  return net.stats();
}

clique::TrafficStats run_fast(int n, int depth,
                              MmStepProfile* profile = nullptr) {
  const auto plan = plan_fast_mm(n, depth);
  clique::Network net(plan.clique_n);
  const IntRing ring;
  const I64Codec codec;
  const auto alg = tensor_power(strassen_algorithm(), depth);
  const auto a = pad_matrix(random_matrix(n, 1), plan.clique_n, std::int64_t{0});
  const auto b = pad_matrix(random_matrix(n, 2), plan.clique_n, std::int64_t{0});
  (void)mm_fast_bilinear(net, ring, codec, alg, a, b, profile);
  return net.stats();
}

void print_profile(const char* what, const MmStepProfile& profile) {
  std::int64_t total = 0;
  for (const auto& s : profile.steps) total += s.ns;
  std::printf("%s (total %.1f ms):\n", what,
              static_cast<double>(total) / 1e6);
  for (const auto& s : profile.steps)
    std::printf("  %-24s %9.2f ms  (%4.1f%%)\n", s.name,
                static_cast<double>(s.ns) / 1e6,
                total > 0 ? 100.0 * static_cast<double>(s.ns) /
                                static_cast<double>(total)
                          : 0.0);
}

/// One rank's semiring product over a socket mesh (inputs replicated from
/// the same seeds as run_semiring, so results/stats match the arena run).
clique::TrafficStats run_semiring_socket(int n, int rank, int nprocs,
                                         int port_base) {
  const auto mesh = clique::SocketMesh::connect_tcp(rank, nprocs, port_base);
  clique::TransportScope scope(clique::SocketTransport::factory(mesh));
  clique::Network net(n);
  (void)mm_semiring_3d(net, IntRing{}, I64Codec{}, random_matrix(n, 1),
                       random_matrix(n, 2));
  return net.stats();
}

/// The --transport=socket smoke series: the parent plays rank 0 and forks
/// ranks 1..P-1 re-executing this binary in a hidden worker mode. Rounds
/// are asserted bit-identical to the arena run (that is the CI gate); the
/// exchange wall is recorded next to the arena wall as a finding, not a
/// gate — localhost TCP pays real syscalls per superstep.
int run_socket_series(cca::bench::JsonReport& json) {
  cca::bench::print_header(
      "SocketTransport smoke: P ranks over localhost TCP vs in-process "
      "arena");
  int failures = 0;
  int config = 0;
  const int port_lo =
      23000 + static_cast<int>(getpid() % 16384);  // avoid TIME_WAIT reuse
  for (const int nprocs : {1, 2, 4}) {
    for (const int n : {27, 64}) {
      const int port_base = port_lo + 8 * config++;
      const auto t0 = cca::bench::now_ns();
      const auto arena = run_semiring(n);
      const auto t1 = cca::bench::now_ns();

      std::vector<pid_t> kids;
      for (int r = 1; r < nprocs; ++r) {
        const pid_t pid = fork();
        if (pid == 0) {
          char spec[64];
          std::snprintf(spec, sizeof spec, "--socket-worker=%d:%d:%d:%d", r,
                        nprocs, port_base, n);
          execl("/proc/self/exe", "bench_mm", spec,
                static_cast<char*>(nullptr));
          _exit(127);
        }
        kids.push_back(pid);
      }
      const auto t2 = cca::bench::now_ns();
      const auto socket = run_semiring_socket(n, 0, nprocs, port_base);
      const auto t3 = cca::bench::now_ns();
      for (const pid_t pid : kids) {
        int status = 0;
        waitpid(pid, &status, 0);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++failures;
      }
      if (socket.rounds != arena.rounds ||
          socket.total_words != arena.total_words ||
          socket.schedule_hits != arena.schedule_hits)
        ++failures;

      char label[32];
      std::snprintf(label, sizeof label, "mm_socket_p%d", nprocs);
      json.add(label, n, socket.rounds, t3 - t2);
      std::printf(
          "  P=%d n=%3d  rounds=%4lld (arena %4lld)  socket %7.1f ms vs "
          "arena %7.1f ms%s\n",
          nprocs, n, static_cast<long long>(socket.rounds),
          static_cast<long long>(arena.rounds),
          static_cast<double>(t3 - t2) / 1e6,
          static_cast<double>(t1 - t0) / 1e6,
          failures > 0 ? "  [MISMATCH]" : "");
    }
  }
  json.note(
      "mm_socket_p{1,2,4} (PR 9): semiring_3d over the localhost "
      "SocketTransport, parent as rank 0 plus forked worker ranks. Rounds, "
      "total_words and schedule_hits are asserted bit-identical to the "
      "in-process arena run (the count all-gather hands every rank the "
      "same canonical demand list) and only rounds are gated; the recorded "
      "wall is the full sharded run including the per-superstep TCP "
      "exchanges, so it sits well above the arena wall at these tiny sizes "
      "— the series exists to pin accounting identity and keep the "
      "exchange overhead visible, not to win wall-clock.");
  json.write();
  if (failures > 0) {
    std::fprintf(stderr, "socket smoke: %d failure(s)\n", failures);
    return 1;
  }
  return 0;
}

std::int64_t run_naive(int n) {
  clique::Network net(n);
  const IntRing ring;
  const auto a = random_matrix(n, 1);
  const auto b = random_matrix(n, 2);
  (void)mm_naive_broadcast(net, ring, 1, a, b);
  return net.stats().rounds;
}

}  // namespace

int main(int argc, char** argv) {
  cca::bench::JsonReport json("mm", argc, argv);

  // Hidden worker mode for --transport=socket: this process is rank R of a
  // P-rank mesh (spawned by run_socket_series via fork/exec).
  for (int i = 1; i < argc; ++i) {
    int rank = 0, nprocs = 0, port_base = 0, n = 0;
    if (std::sscanf(argv[i], "--socket-worker=%d:%d:%d:%d", &rank, &nprocs,
                    &port_base, &n) == 4) {
      (void)run_semiring_socket(n, rank, nprocs, port_base);
      return 0;
    }
  }
  if (cca::bench::has_flag(argc, argv, "--transport=socket"))
    return run_socket_series(json);

  // --steps: per-step wall-clock breakdown (stage / deliver / local kernel)
  // for the sizes whose totals the main table reports, then exit. This is
  // the tool that located the non-monotonic semiring_3d spike at n=343.
  if (cca::bench::has_flag(argc, argv, "--steps")) {
    cca::bench::print_header("Per-step wall-clock breakdown");
    for (const int n : {216, 343, 512}) {
      MmStepProfile profile;
      (void)run_semiring(n, &profile);
      char what[64];
      std::snprintf(what, sizeof what, "semiring_3d n=%d", n);
      print_profile(what, profile);
    }
    {
      MmStepProfile profile;
      (void)run_fast(343, 3, &profile);
      print_profile("fast_bilinear n=343 depth=3 (clique 576)", profile);
    }
    if (json.enabled())
      std::printf("(--steps is a diagnostic mode; BENCH json not written)\n");
    return 0;
  }

  // --batch: the multi-query engine. B=8 same-shape products through
  // shared supersteps (IntMmEngine::multiply_batch) against the same 8
  // products run as independent sequential queries, each on its own
  // Network — the serving scenario batching targets. Reports rounds and
  // wall-clock for both; the batch must win both (test_batch.cpp pins the
  // rounds claim).
  if (cca::bench::has_flag(argc, argv, "--batch")) {
    cca::bench::print_header(
        "Batched multiply: B=8 shared supersteps vs 8 per-query runs");
    struct Config {
      MmKind kind;
      const char* name;
      int n;
    };
    for (const auto& cfg :
         {Config{MmKind::Semiring3D, "semiring_3d", 125},
          Config{MmKind::Semiring3D, "semiring_3d", 216},
          Config{MmKind::Fast, "fast_bilinear", 125},
          Config{MmKind::Fast, "fast_bilinear", 216}}) {
      const std::size_t b_count = 8;
      const IntMmEngine engine(cfg.kind, cfg.n);
      const int big = engine.clique_n();
      std::vector<Matrix<std::int64_t>> as, bs;
      for (std::size_t b = 0; b < b_count; ++b) {
        as.push_back(pad_matrix(random_matrix(cfg.n, b + 1), big,
                                std::int64_t{0}));
        bs.push_back(pad_matrix(random_matrix(cfg.n, b + 100), big,
                                std::int64_t{0}));
      }
      std::int64_t seq_rounds = 0;
      const auto t0 = cca::bench::now_ns();
      for (std::size_t b = 0; b < b_count; ++b) {
        clique::Network net(big);
        (void)engine.multiply(net, as[b], bs[b]);
        seq_rounds += net.stats().rounds;
      }
      const auto t1 = cca::bench::now_ns();
      clique::Network net(big);
      (void)engine.multiply_batch(
          net, std::span<const Matrix<std::int64_t>>(as),
          std::span<const Matrix<std::int64_t>>(bs));
      const auto t2 = cca::bench::now_ns();
      std::printf(
          "  %-13s n=%3d (clique %3d)  8 queries: %5lld rounds %7.1f ms   "
          "batch: %5lld rounds %7.1f ms  (%.2fx wall, %.2fx rounds)\n",
          cfg.name, cfg.n, big, static_cast<long long>(seq_rounds),
          static_cast<double>(t1 - t0) / 1e6,
          static_cast<long long>(net.stats().rounds),
          static_cast<double>(t2 - t1) / 1e6,
          static_cast<double>(t1 - t0) / static_cast<double>(t2 - t1),
          static_cast<double>(seq_rounds) /
              static_cast<double>(net.stats().rounds));
    }
    if (json.enabled())
      std::printf("(--batch is a diagnostic mode; BENCH json not written)\n");
    return 0;
  }

  // --sparse: density sweep at fixed n — where is the sparse/dense
  // crossover? Diagnostic companion of the committed mm_sparse series.
  if (cca::bench::has_flag(argc, argv, "--sparse")) {
    cca::bench::print_header(
        "Sparse crossover: rounds vs density at n=216 (dense 3D = 42)");
    const int n = 216;
    clique::Network dense_net(n);
    (void)mm_semiring_3d(dense_net, IntRing{}, I64Codec{},
                         random_matrix(n, 1), random_matrix(n, 2));
    const auto dense_rounds = dense_net.stats().rounds;
    std::printf("  %-14s %10s %10s %10s  (dense 3D: %lld rounds)\n", "nnz",
                "sparse", "auto", "auto picks", static_cast<long long>(dense_rounds));
    const auto n64 = static_cast<std::int64_t>(n);
    for (const auto nnz :
         {n64, 3 * n64, n64 * 14 /* ~n^1.5 */, n64 * 40, n64 * 80,
          n64 * 120, n64 * 160, n64 * (n64 - 1) / 3}) {
      const auto t0 = cca::bench::now_ns();
      const auto s = run_sparse(n, nnz);
      const auto t1 = cca::bench::now_ns();
      const auto a = run_auto(n, nnz);
      const auto t2 = cca::bench::now_ns();
      const bool picked_sparse = a.rounds == s.rounds;
      std::printf("  nnz=%9lld %10lld %10lld %10s   (%6.1f / %6.1f ms)\n",
                  static_cast<long long>(nnz),
                  static_cast<long long>(s.rounds),
                  static_cast<long long>(a.rounds),
                  picked_sparse ? "sparse" : "dense+1",
                  static_cast<double>(t1 - t0) / 1e6,
                  static_cast<double>(t2 - t1) / 1e6);
    }
    std::printf(
        "\nThe crossover sits where the contribute volume ~1.5 T / n^2 "
        "meets the dense engine's ~6 n^{1/3}: measured at nnz ~ 40n at "
        "n=216 (density ~0.19, where sparse's 43 rounds tie dense+1); "
        "below it Auto charges exactly the sparse rounds, above it dense "
        "plus the 1 announcement round.\n");
    if (json.enabled())
      std::printf("(--sparse is a diagnostic mode; BENCH json not written)\n");
    return 0;
  }

  // --smoke: tiny sizes only, for CI (asserts the perf path still runs and
  // emits valid JSON; no thresholds).
  const bool smoke = cca::bench::has_flag(argc, argv, "--smoke");

  cca::bench::print_header(
      "Table 1: matrix multiplication round complexity (semiring / ring / naive)");

  // Two metrics per series: the measured rounds of the executable Koenig
  // schedule, and the schedule-independent lower bound (what an exactly
  // optimal Lenzen router would pay). The bound isolates the algorithm's
  // bandwidth exponent from router constants.
  Series semi{"semiring 3D", {}, {}};
  Series semi_bound{"semiring 3D (bound)", {}, {}};
  Series naive{"naive broadcast", {}, {}};
  const std::vector<int> semi_sizes =
      smoke ? std::vector<int>{27, 64} : std::vector<int>{27, 64, 125, 216,
                                                          343, 512};
  for (const int n : semi_sizes) {
    const auto t0 = cca::bench::now_ns();
    const auto s = run_semiring(n);
    const auto t1 = cca::bench::now_ns();
    json.add("semiring_3d", n, s.rounds, t1 - t0);
    semi.add(n, static_cast<double>(s.rounds));
    semi_bound.add(n, static_cast<double>(s.bound_rounds));
    naive.add(n, static_cast<double>(run_naive(n)));
  }
  cca::bench::print_series_table({semi, semi_bound, naive});
  cca::bench::print_fit(semi, "O(n^{1/3})");
  cca::bench::print_fit(semi_bound, "O(n^{1/3}) (6 n^{1/3} exactly)");
  cca::bench::print_fit(naive, "O(n)");

  std::printf(
      "\nFast bilinear (Section 2.2), matched-depth family (m(d) ~ n):\n");
  Series fast{"fast (Strassen^k)", {}, {}};
  Series fast_bound{"fast (bound)", {}, {}};
  struct FastConfig {
    int n;
    int depth;
  };
  const std::vector<FastConfig> family =
      smoke ? std::vector<FastConfig>{{7, 1}, {49, 2}}
            : std::vector<FastConfig>{{7, 1}, {49, 2}, {343, 3}};
  for (const auto& f : family) {
    const auto plan = plan_fast_mm(f.n, f.depth);
    const auto t0 = cca::bench::now_ns();
    const auto s = run_fast(f.n, f.depth);
    const auto t1 = cca::bench::now_ns();
    json.add("fast_bilinear", plan.clique_n, s.rounds, t1 - t0);
    std::printf("  n=%4d  depth=%d  padded clique N=%4d  rounds=%lld  "
                "(lower bound %lld)\n",
                f.n, f.depth, plan.clique_n,
                static_cast<long long>(s.rounds),
                static_cast<long long>(s.bound_rounds));
    fast.add(plan.clique_n, static_cast<double>(s.rounds));
    fast_bound.add(plan.clique_n, static_cast<double>(s.bound_rounds));
  }
  cca::bench::print_fit(fast,
                        "O(n^{1-2/sigma}) = O(n^0.288) for sigma = log2 7 "
                        "(paper: O(n^0.158) with omega < 2.373)");
  cca::bench::print_fit(fast_bound, "same, schedule-independent bound");

  std::printf("\nFixed-depth series (depth 2), showing the linear-in-N tail "
              "between depth jumps:\n");
  Series fixed{"fast depth=2", {}, {}};
  const std::vector<int> fixed_sizes =
      smoke ? std::vector<int>{64, 144}
            : std::vector<int>{64, 144, 256, 400, 576};
  for (const int n : fixed_sizes) {
    fixed.add(n, static_cast<double>(run_fast(n, 2).rounds));
  }
  cca::bench::print_series_table({fixed});
  cca::bench::print_fit(fixed, "O(n) at fixed depth (epsilon-tail of Thm 1)");

  std::printf(
      "\nSparse engine at nnz ~ n^{3/2} (the paper's sparsity-sensitive "
      "regime) and nnz-adaptive Auto dispatch:\n");
  Series sparse{"sparse (rho=n^1.5)", {}, {}};
  Series autoe{"auto dispatch", {}, {}};
  const std::vector<int> sparse_sizes =
      smoke ? std::vector<int>{27, 64} : std::vector<int>{27, 64, 125, 216,
                                                          343};
  for (const int n : sparse_sizes) {
    const auto nnz = static_cast<std::int64_t>(n) * isqrt(n);
    const auto t0 = cca::bench::now_ns();
    const auto s = run_sparse(n, nnz);
    const auto t1 = cca::bench::now_ns();
    const auto a = run_auto(n, nnz);
    const auto t2 = cca::bench::now_ns();
    json.add("mm_sparse", n, s.rounds, t1 - t0);
    json.add("mm_auto", n, a.rounds, t2 - t1);
    sparse.add(n, static_cast<double>(s.rounds));
    autoe.add(n, static_cast<double>(a.rounds));
  }
  cca::bench::print_series_table({sparse, autoe});
  cca::bench::print_fit(sparse,
                        "O((rho_A rho_B)^{1/3}/n + 1) -> near-flat at this "
                        "density (vs 3D's n^{1/3})");

  std::printf("\nNote: absolute crossover fast-vs-semiring requires n beyond "
              "laptop simulation for sigma=2.807; the reproduced claim is "
              "the exponent ordering 0.288 < 0.333 < 1 (see EXPERIMENTS.md).\n");
  json.note(
      "semiring_3d clique_n=343 spike (--steps finding): >94% of the time is "
      "deliver(), i.e. KoenigRelay Euler-split scheduling. At n=343 each pair "
      "carries c2=49 words (odd), so the colouring's identical-halves "
      "collapse never fires and the class log is built at word granularity "
      "(O(words*log maxdeg)); at n=512 c2=64=2^6 collapses six levels and "
      "schedules ~7x faster despite ~2.6x more words. Non-monotonicity is a "
      "parity property of the per-pair word count, not of n.");
  json.note(
      "fast_bilinear clique_n=576 (--steps finding): staging/encode and local "
      "kernels are <10% after the zero-copy staged-encode and int64-kernel "
      "work; the remaining ~90% is the Step 3/5 KoenigRelay schedules "
      "(18 and 9 words/pair, odd-dominated), bounded below by the exact "
      "class-sequence volume.");
  json.note(
      "mm_sparse / mm_auto series (PR 4): random matrices with rho = n^{1.5} "
      "nonzeros each. The sparse engine's rounds are near-constant at this "
      "density (announce 2 + gather ~2 + distribute ~2 + contribute, the "
      "last shrinking relative to n as the triple volume T ~ rho^2/n grows "
      "slower than n^2), versus the dense 3D engine's ~6 n^{1/3}: >=2x "
      "fewer rounds from n=125 (15 vs 38) widening to ~4.4x at n=343 (12 "
      "vs 53). mm_auto == mm_sparse rounds at every benched density (the "
      "dispatch announcement IS the sparse algorithm's step 0, and the "
      "planner schedules the exact demand lists the engines stage, so the "
      "choice is never wrong). Measured crossover (bench_mm --sparse, "
      "n=216): sparse wins until nnz ~ 40n (density ~0.19, avg degree ~40 "
      "— far above realistic sparse workloads); at 80n it is 139 vs 43 "
      "rounds and Auto has switched to dense+1.");
  json.note(
      "odd-word pad (PR 4): mm_semiring_3d step 1 pads odd per-pair groups "
      ">= 17 words by one zero word, restoring the identical-halves "
      "collapse the ROADMAP's clique_n=343 finding identified (49 -> 50 = "
      "2 * 25 words/pair). Rounds pinned unchanged (53 at 343: the padded "
      "step-1 schedule costs the same 34 rounds; step 3 stays unpadded "
      "because ITS padded schedule measures one round worse there), wall "
      "546 -> ~340 ms. Step-1 scheduling alone halves (379 -> 189 ms), "
      "and the n=729 step-1 split drops 2321 -> 1186 ms.");
  json.note(
      "--batch finding (PR 3): B=8 products through shared supersteps vs 8 "
      "per-query networks: 1.1-5.2x wall and 1.03-1.22x fewer rounds "
      "(semiring_3d n=125: 5.2x wall, 304->250 rounds). Against 8 "
      "sequential calls on ONE network the batch is roughly par on wall "
      "(the schedule cache already collapses the repeats) but still "
      "strictly fewer rounds: batching B-fold word counts multiplies every "
      "demand by 8=2^3, which both collapses three extra Euler-split "
      "levels and lets the relay spread blocks over otherwise-idle "
      "intermediates.");
  json.write();
  return 0;
}
