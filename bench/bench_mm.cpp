// Table 1, rows "matrix multiplication (semiring)" and "(ring)":
// measured rounds for the Section 2.1 and 2.2 algorithms against the naive
// baseline, with fitted exponents.
//
// Paper bounds: semiring O(n^{1/3}); ring O(n^{1-2/omega}) — with the
// implemented Strassen tensor (sigma = log2 7) the target exponent is
// 1 - 2/sigma ~ 0.288. The fast series uses the matched-depth family
// (m(d) ~ n); a fixed-depth series is also shown to make the depth
// granularity visible (the paper's +epsilon in Theorem 1).
#include <cstdio>

#include "bench_common.hpp"
#include "clique/network.hpp"
#include "core/engine.hpp"
#include "core/mm.hpp"
#include "matrix/codec.hpp"
#include "matrix/ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace cca;
using namespace cca::core;
using cca::bench::Series;

Matrix<std::int64_t> random_matrix(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m(i, j) = rng.next_in(0, 1000);
  return m;
}

clique::TrafficStats run_semiring(int n, MmStepProfile* profile = nullptr) {
  clique::Network net(n);
  const IntRing ring;
  const I64Codec codec;
  const auto a = random_matrix(n, 1);
  const auto b = random_matrix(n, 2);
  (void)mm_semiring_3d(net, ring, codec, a, b, profile);
  return net.stats();
}

clique::TrafficStats run_fast(int n, int depth,
                              MmStepProfile* profile = nullptr) {
  const auto plan = plan_fast_mm(n, depth);
  clique::Network net(plan.clique_n);
  const IntRing ring;
  const I64Codec codec;
  const auto alg = tensor_power(strassen_algorithm(), depth);
  const auto a = pad_matrix(random_matrix(n, 1), plan.clique_n, std::int64_t{0});
  const auto b = pad_matrix(random_matrix(n, 2), plan.clique_n, std::int64_t{0});
  (void)mm_fast_bilinear(net, ring, codec, alg, a, b, profile);
  return net.stats();
}

void print_profile(const char* what, const MmStepProfile& profile) {
  std::int64_t total = 0;
  for (const auto& s : profile.steps) total += s.ns;
  std::printf("%s (total %.1f ms):\n", what,
              static_cast<double>(total) / 1e6);
  for (const auto& s : profile.steps)
    std::printf("  %-24s %9.2f ms  (%4.1f%%)\n", s.name,
                static_cast<double>(s.ns) / 1e6,
                total > 0 ? 100.0 * static_cast<double>(s.ns) /
                                static_cast<double>(total)
                          : 0.0);
}

std::int64_t run_naive(int n) {
  clique::Network net(n);
  const IntRing ring;
  const auto a = random_matrix(n, 1);
  const auto b = random_matrix(n, 2);
  (void)mm_naive_broadcast(net, ring, 1, a, b);
  return net.stats().rounds;
}

}  // namespace

int main(int argc, char** argv) {
  cca::bench::JsonReport json("mm", argc, argv);

  // --steps: per-step wall-clock breakdown (stage / deliver / local kernel)
  // for the sizes whose totals the main table reports, then exit. This is
  // the tool that located the non-monotonic semiring_3d spike at n=343.
  if (cca::bench::has_flag(argc, argv, "--steps")) {
    cca::bench::print_header("Per-step wall-clock breakdown");
    for (const int n : {216, 343, 512}) {
      MmStepProfile profile;
      (void)run_semiring(n, &profile);
      char what[64];
      std::snprintf(what, sizeof what, "semiring_3d n=%d", n);
      print_profile(what, profile);
    }
    {
      MmStepProfile profile;
      (void)run_fast(343, 3, &profile);
      print_profile("fast_bilinear n=343 depth=3 (clique 576)", profile);
    }
    if (json.enabled())
      std::printf("(--steps is a diagnostic mode; BENCH json not written)\n");
    return 0;
  }

  // --batch: the multi-query engine. B=8 same-shape products through
  // shared supersteps (IntMmEngine::multiply_batch) against the same 8
  // products run as independent sequential queries, each on its own
  // Network — the serving scenario batching targets. Reports rounds and
  // wall-clock for both; the batch must win both (test_batch.cpp pins the
  // rounds claim).
  if (cca::bench::has_flag(argc, argv, "--batch")) {
    cca::bench::print_header(
        "Batched multiply: B=8 shared supersteps vs 8 per-query runs");
    struct Config {
      MmKind kind;
      const char* name;
      int n;
    };
    for (const auto& cfg :
         {Config{MmKind::Semiring3D, "semiring_3d", 125},
          Config{MmKind::Semiring3D, "semiring_3d", 216},
          Config{MmKind::Fast, "fast_bilinear", 125},
          Config{MmKind::Fast, "fast_bilinear", 216}}) {
      const std::size_t b_count = 8;
      const IntMmEngine engine(cfg.kind, cfg.n);
      const int big = engine.clique_n();
      std::vector<Matrix<std::int64_t>> as, bs;
      for (std::size_t b = 0; b < b_count; ++b) {
        as.push_back(pad_matrix(random_matrix(cfg.n, b + 1), big,
                                std::int64_t{0}));
        bs.push_back(pad_matrix(random_matrix(cfg.n, b + 100), big,
                                std::int64_t{0}));
      }
      std::int64_t seq_rounds = 0;
      const auto t0 = cca::bench::now_ns();
      for (std::size_t b = 0; b < b_count; ++b) {
        clique::Network net(big);
        (void)engine.multiply(net, as[b], bs[b]);
        seq_rounds += net.stats().rounds;
      }
      const auto t1 = cca::bench::now_ns();
      clique::Network net(big);
      (void)engine.multiply_batch(
          net, std::span<const Matrix<std::int64_t>>(as),
          std::span<const Matrix<std::int64_t>>(bs));
      const auto t2 = cca::bench::now_ns();
      std::printf(
          "  %-13s n=%3d (clique %3d)  8 queries: %5lld rounds %7.1f ms   "
          "batch: %5lld rounds %7.1f ms  (%.2fx wall, %.2fx rounds)\n",
          cfg.name, cfg.n, big, static_cast<long long>(seq_rounds),
          static_cast<double>(t1 - t0) / 1e6,
          static_cast<long long>(net.stats().rounds),
          static_cast<double>(t2 - t1) / 1e6,
          static_cast<double>(t1 - t0) / static_cast<double>(t2 - t1),
          static_cast<double>(seq_rounds) /
              static_cast<double>(net.stats().rounds));
    }
    if (json.enabled())
      std::printf("(--batch is a diagnostic mode; BENCH json not written)\n");
    return 0;
  }

  // --smoke: tiny sizes only, for CI (asserts the perf path still runs and
  // emits valid JSON; no thresholds).
  const bool smoke = cca::bench::has_flag(argc, argv, "--smoke");

  cca::bench::print_header(
      "Table 1: matrix multiplication round complexity (semiring / ring / naive)");

  // Two metrics per series: the measured rounds of the executable Koenig
  // schedule, and the schedule-independent lower bound (what an exactly
  // optimal Lenzen router would pay). The bound isolates the algorithm's
  // bandwidth exponent from router constants.
  Series semi{"semiring 3D", {}, {}};
  Series semi_bound{"semiring 3D (bound)", {}, {}};
  Series naive{"naive broadcast", {}, {}};
  const std::vector<int> semi_sizes =
      smoke ? std::vector<int>{27, 64} : std::vector<int>{27, 64, 125, 216,
                                                          343, 512};
  for (const int n : semi_sizes) {
    const auto t0 = cca::bench::now_ns();
    const auto s = run_semiring(n);
    const auto t1 = cca::bench::now_ns();
    json.add("semiring_3d", n, s.rounds, t1 - t0);
    semi.add(n, static_cast<double>(s.rounds));
    semi_bound.add(n, static_cast<double>(s.bound_rounds));
    naive.add(n, static_cast<double>(run_naive(n)));
  }
  cca::bench::print_series_table({semi, semi_bound, naive});
  cca::bench::print_fit(semi, "O(n^{1/3})");
  cca::bench::print_fit(semi_bound, "O(n^{1/3}) (6 n^{1/3} exactly)");
  cca::bench::print_fit(naive, "O(n)");

  std::printf(
      "\nFast bilinear (Section 2.2), matched-depth family (m(d) ~ n):\n");
  Series fast{"fast (Strassen^k)", {}, {}};
  Series fast_bound{"fast (bound)", {}, {}};
  struct FastConfig {
    int n;
    int depth;
  };
  const std::vector<FastConfig> family =
      smoke ? std::vector<FastConfig>{{7, 1}, {49, 2}}
            : std::vector<FastConfig>{{7, 1}, {49, 2}, {343, 3}};
  for (const auto& f : family) {
    const auto plan = plan_fast_mm(f.n, f.depth);
    const auto t0 = cca::bench::now_ns();
    const auto s = run_fast(f.n, f.depth);
    const auto t1 = cca::bench::now_ns();
    json.add("fast_bilinear", plan.clique_n, s.rounds, t1 - t0);
    std::printf("  n=%4d  depth=%d  padded clique N=%4d  rounds=%lld  "
                "(lower bound %lld)\n",
                f.n, f.depth, plan.clique_n,
                static_cast<long long>(s.rounds),
                static_cast<long long>(s.bound_rounds));
    fast.add(plan.clique_n, static_cast<double>(s.rounds));
    fast_bound.add(plan.clique_n, static_cast<double>(s.bound_rounds));
  }
  cca::bench::print_fit(fast,
                        "O(n^{1-2/sigma}) = O(n^0.288) for sigma = log2 7 "
                        "(paper: O(n^0.158) with omega < 2.373)");
  cca::bench::print_fit(fast_bound, "same, schedule-independent bound");

  std::printf("\nFixed-depth series (depth 2), showing the linear-in-N tail "
              "between depth jumps:\n");
  Series fixed{"fast depth=2", {}, {}};
  const std::vector<int> fixed_sizes =
      smoke ? std::vector<int>{64, 144}
            : std::vector<int>{64, 144, 256, 400, 576};
  for (const int n : fixed_sizes) {
    fixed.add(n, static_cast<double>(run_fast(n, 2).rounds));
  }
  cca::bench::print_series_table({fixed});
  cca::bench::print_fit(fixed, "O(n) at fixed depth (epsilon-tail of Thm 1)");

  std::printf("\nNote: absolute crossover fast-vs-semiring requires n beyond "
              "laptop simulation for sigma=2.807; the reproduced claim is "
              "the exponent ordering 0.288 < 0.333 < 1 (see EXPERIMENTS.md).\n");
  json.note(
      "semiring_3d clique_n=343 spike (--steps finding): >94% of the time is "
      "deliver(), i.e. KoenigRelay Euler-split scheduling. At n=343 each pair "
      "carries c2=49 words (odd), so the colouring's identical-halves "
      "collapse never fires and the class log is built at word granularity "
      "(O(words*log maxdeg)); at n=512 c2=64=2^6 collapses six levels and "
      "schedules ~7x faster despite ~2.6x more words. Non-monotonicity is a "
      "parity property of the per-pair word count, not of n.");
  json.note(
      "fast_bilinear clique_n=576 (--steps finding): staging/encode and local "
      "kernels are <10% after the zero-copy staged-encode and int64-kernel "
      "work; the remaining ~90% is the Step 3/5 KoenigRelay schedules "
      "(18 and 9 words/pair, odd-dominated), bounded below by the exact "
      "class-sequence volume.");
  json.note(
      "--batch finding (PR 3): B=8 products through shared supersteps vs 8 "
      "per-query networks: 1.1-5.2x wall and 1.03-1.22x fewer rounds "
      "(semiring_3d n=125: 5.2x wall, 304->250 rounds). Against 8 "
      "sequential calls on ONE network the batch is roughly par on wall "
      "(the schedule cache already collapses the repeats) but still "
      "strictly fewer rounds: batching B-fold word counts multiplies every "
      "demand by 8=2^3, which both collapses three extra Euler-split "
      "levels and lets the relay spread blocks over otherwise-idle "
      "intermediates.");
  json.write();
  return 0;
}
