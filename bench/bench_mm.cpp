// Table 1, rows "matrix multiplication (semiring)" and "(ring)":
// measured rounds for the Section 2.1 and 2.2 algorithms against the naive
// baseline, with fitted exponents.
//
// Paper bounds: semiring O(n^{1/3}); ring O(n^{1-2/omega}) — with the
// implemented Strassen tensor (sigma = log2 7) the target exponent is
// 1 - 2/sigma ~ 0.288. The fast series uses the matched-depth family
// (m(d) ~ n); a fixed-depth series is also shown to make the depth
// granularity visible (the paper's +epsilon in Theorem 1).
#include <cstdio>

#include "bench_common.hpp"
#include "clique/network.hpp"
#include "core/mm.hpp"
#include "matrix/codec.hpp"
#include "matrix/ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace cca;
using namespace cca::core;
using cca::bench::Series;

Matrix<std::int64_t> random_matrix(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m(i, j) = rng.next_in(0, 1000);
  return m;
}

clique::TrafficStats run_semiring(int n) {
  clique::Network net(n);
  const IntRing ring;
  const I64Codec codec;
  const auto a = random_matrix(n, 1);
  const auto b = random_matrix(n, 2);
  (void)mm_semiring_3d(net, ring, codec, a, b);
  return net.stats();
}

clique::TrafficStats run_fast(int n, int depth) {
  const auto plan = plan_fast_mm(n, depth);
  clique::Network net(plan.clique_n);
  const IntRing ring;
  const I64Codec codec;
  const auto alg = tensor_power(strassen_algorithm(), depth);
  const auto a = pad_matrix(random_matrix(n, 1), plan.clique_n, std::int64_t{0});
  const auto b = pad_matrix(random_matrix(n, 2), plan.clique_n, std::int64_t{0});
  (void)mm_fast_bilinear(net, ring, codec, alg, a, b);
  return net.stats();
}

std::int64_t run_naive(int n) {
  clique::Network net(n);
  const IntRing ring;
  const auto a = random_matrix(n, 1);
  const auto b = random_matrix(n, 2);
  (void)mm_naive_broadcast(net, ring, 1, a, b);
  return net.stats().rounds;
}

}  // namespace

int main(int argc, char** argv) {
  cca::bench::JsonReport json("mm", argc, argv);
  cca::bench::print_header(
      "Table 1: matrix multiplication round complexity (semiring / ring / naive)");

  // Two metrics per series: the measured rounds of the executable Koenig
  // schedule, and the schedule-independent lower bound (what an exactly
  // optimal Lenzen router would pay). The bound isolates the algorithm's
  // bandwidth exponent from router constants.
  Series semi{"semiring 3D", {}, {}};
  Series semi_bound{"semiring 3D (bound)", {}, {}};
  Series naive{"naive broadcast", {}, {}};
  for (const int n : {27, 64, 125, 216, 343, 512}) {
    const auto t0 = cca::bench::now_ns();
    const auto s = run_semiring(n);
    const auto t1 = cca::bench::now_ns();
    json.add("semiring_3d", n, s.rounds, t1 - t0);
    semi.add(n, static_cast<double>(s.rounds));
    semi_bound.add(n, static_cast<double>(s.bound_rounds));
    naive.add(n, static_cast<double>(run_naive(n)));
  }
  cca::bench::print_series_table({semi, semi_bound, naive});
  cca::bench::print_fit(semi, "O(n^{1/3})");
  cca::bench::print_fit(semi_bound, "O(n^{1/3}) (6 n^{1/3} exactly)");
  cca::bench::print_fit(naive, "O(n)");

  std::printf(
      "\nFast bilinear (Section 2.2), matched-depth family (m(d) ~ n):\n");
  Series fast{"fast (Strassen^k)", {}, {}};
  Series fast_bound{"fast (bound)", {}, {}};
  const struct {
    int n;
    int depth;
  } family[] = {{7, 1}, {49, 2}, {343, 3}};
  for (const auto& f : family) {
    const auto plan = plan_fast_mm(f.n, f.depth);
    const auto t0 = cca::bench::now_ns();
    const auto s = run_fast(f.n, f.depth);
    const auto t1 = cca::bench::now_ns();
    json.add("fast_bilinear", plan.clique_n, s.rounds, t1 - t0);
    std::printf("  n=%4d  depth=%d  padded clique N=%4d  rounds=%lld  "
                "(lower bound %lld)\n",
                f.n, f.depth, plan.clique_n,
                static_cast<long long>(s.rounds),
                static_cast<long long>(s.bound_rounds));
    fast.add(plan.clique_n, static_cast<double>(s.rounds));
    fast_bound.add(plan.clique_n, static_cast<double>(s.bound_rounds));
  }
  cca::bench::print_fit(fast,
                        "O(n^{1-2/sigma}) = O(n^0.288) for sigma = log2 7 "
                        "(paper: O(n^0.158) with omega < 2.373)");
  cca::bench::print_fit(fast_bound, "same, schedule-independent bound");

  std::printf("\nFixed-depth series (depth 2), showing the linear-in-N tail "
              "between depth jumps:\n");
  Series fixed{"fast depth=2", {}, {}};
  for (const int n : {64, 144, 256, 400, 576}) {
    fixed.add(n, static_cast<double>(run_fast(n, 2).rounds));
  }
  cca::bench::print_series_table({fixed});
  cca::bench::print_fit(fixed, "O(n) at fixed depth (epsilon-tail of Thm 1)");

  std::printf("\nNote: absolute crossover fast-vs-semiring requires n beyond "
              "laptop simulation for sigma=2.807; the reproduced claim is "
              "the exponent ordering 0.288 < 0.333 < 1 (see EXPERIMENTS.md).\n");
  json.write();
  return 0;
}
