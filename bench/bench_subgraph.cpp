// Table 1 rows "triangle counting", "4-cycle counting", "4-cycle detection":
// this-work engines vs prior-work baselines, rounds vs n.
//
// Paper bounds: counting O(n^rho) (prior: Dolev et al. O(n^{1/3})),
// 4-cycle detection O(1) (prior: O~(n^{1/2}) via Dolev subgraph detection).
#include <cstdio>

#include "bench_common.hpp"
#include "core/baseline.hpp"
#include "core/counting.hpp"
#include "core/four_cycle.hpp"
#include "graph/generators.hpp"

namespace {

using namespace cca;
using namespace cca::core;
using cca::bench::Series;

}  // namespace

int main() {
  cca::bench::print_header("Table 1: triangle / 4-cycle counting rounds");

  Series tri_fast{"triangles fast", {}, {}};
  Series tri_semi{"triangles 3D (prior)", {}, {}};
  Series c4_fast{"4-cycles fast", {}, {}};
  Series c5_fast{"5-cycles fast", {}, {}};
  for (const int n : {27, 64, 125, 216, 343}) {
    const auto g = gnp_random_graph(n, 8.0 / n, 7 + static_cast<std::uint64_t>(n));
    tri_fast.add(n, static_cast<double>(count_triangles_cc(g, MmKind::Fast).traffic.rounds));
    tri_semi.add(n, static_cast<double>(
                        count_triangles_cc(g, MmKind::Semiring3D).traffic.rounds));
    c4_fast.add(n, static_cast<double>(count_4cycles_cc(g, MmKind::Fast).traffic.rounds));
    c5_fast.add(n, static_cast<double>(count_5cycles_cc(g, MmKind::Fast).traffic.rounds));
  }
  cca::bench::print_series_table({tri_fast, tri_semi, c4_fast, c5_fast});
  cca::bench::print_fit(tri_fast, "O(n^rho), rho = 0.288 implemented (0.158 w/ Le Gall)");
  cca::bench::print_fit(tri_semi, "O(n^{1/3}) (Dolev et al. partition = 3D semiring)");
  cca::bench::print_fit(c4_fast, "O(n^rho)");
  cca::bench::print_fit(c5_fast, "O(n^rho) (two products; k=5 trace formula)");

  cca::bench::print_header(
      "Table 1: 4-cycle DETECTION — Theorem 4 O(1) vs counting vs Dolev prior");

  Series det_const{"Thm 4 detector", {}, {}};
  Series det_dolev{"Dolev k=4 (prior)", {}, {}};
  Series det_count{"via counting", {}, {}};
  for (const int n : {64, 128, 256, 512}) {
    // Sparse worst case for the detector: no early exit.
    const auto g = gnp_random_graph(n, 2.5 / n, 11 + static_cast<std::uint64_t>(n));
    det_const.add(n, static_cast<double>(detect_4cycle_const(g).traffic.rounds));
    det_dolev.add(n, static_cast<double>(detect_k_cycle_dolev(g, 4).traffic.rounds));
    det_count.add(n, static_cast<double>(count_4cycles_cc(g).traffic.rounds));
  }
  cca::bench::print_series_table({det_const, det_dolev, det_count});
  cca::bench::print_fit(det_const, "O(1)  <- must be flat");
  cca::bench::print_fit(det_dolev, "O~(n^{1/2}) (prior work)");
  cca::bench::print_fit(det_count, "O(n^rho)");

  std::printf("\nDense instances (phase-1 pigeonhole shortcut of Theorem 4):\n");
  for (const int n : {64, 256}) {
    const auto g = gnp_random_graph(n, 0.5, 3);
    const auto r = detect_4cycle_const(g);
    std::printf("  n=%4d dense: found=%d rounds=%lld\n", n, r.found ? 1 : 0,
                static_cast<long long>(r.traffic.rounds));
  }

  cca::bench::print_header(
      "Sparse workloads: triangle counting with the nnz-adaptive engine");

  // Power-law graphs at ~2n edges — the regime real social workloads live
  // in, where the dense engines pay their full n^rho regardless while the
  // Auto engine's announcement routes everything through the sparse path.
  Series spa_auto{"auto (sparse path)", {}, {}};
  Series spa_fast{"fast (dense)", {}, {}};
  Series spa_semi{"3D (dense)", {}, {}};
  for (const int n : {27, 64, 125, 216, 343}) {
    const auto g = power_law_graph(n, 2 * static_cast<std::int64_t>(n), 2.3,
                                   31 + static_cast<std::uint64_t>(n));
    spa_auto.add(n, static_cast<double>(
                        count_triangles_cc(g, MmKind::Auto).traffic.rounds));
    spa_fast.add(n, static_cast<double>(
                        count_triangles_cc(g, MmKind::Fast).traffic.rounds));
    spa_semi.add(n, static_cast<double>(
                        count_triangles_cc(g, MmKind::Semiring3D).traffic.rounds));
  }
  cca::bench::print_series_table({spa_auto, spa_fast, spa_semi});
  cca::bench::print_fit(spa_auto, "near-flat: rounds follow nnz, not n");
  cca::bench::print_fit(spa_fast, "O(n^rho) regardless of density");
  cca::bench::print_fit(spa_semi, "O(n^{1/3}) regardless of density");

  std::printf(
      "\nMedium density (p = 0.05): the prior baseline's cost grows with the "
      "edge volume while Theorem 4 stays flat:\n");
  Series med_const{"Thm 4", {}, {}};
  Series med_dolev{"Dolev k=4", {}, {}};
  for (const int n : {64, 128, 256, 512}) {
    const auto g = gnp_random_graph(n, 0.05, 21 + static_cast<std::uint64_t>(n));
    med_const.add(n, static_cast<double>(detect_4cycle_const(g).traffic.rounds));
    med_dolev.add(n, static_cast<double>(detect_k_cycle_dolev(g, 4).traffic.rounds));
  }
  cca::bench::print_series_table({med_const, med_dolev});
  cca::bench::print_fit(med_const, "O(1)");
  cca::bench::print_fit(med_dolev, "grows with m k^2 q^{k-2} / n");
  return 0;
}
