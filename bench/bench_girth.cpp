// Table 1 row "girth": Theorem 15 (undirected) and Corollary 16 (directed).
// Paper bound: O~(n^rho); first non-trivial girth algorithm in this model.
#include <cstdio>

#include "bench_common.hpp"
#include "core/girth.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace cca;
using namespace cca::core;
using cca::bench::Series;

}  // namespace

int main() {
  cca::bench::print_header("Table 1: girth (undirected, Theorem 15)");

  // Sparse family: the Lemma 14 dichotomy takes the learn-the-graph path
  // at cost O(m/n) = O(1) for constant average degree.
  Series sparse{"sparse (m ~ 2n)", {}, {}};
  for (const int n : {64, 128, 256, 512}) {
    const auto g = gnp_random_graph(n, 4.0 / n, 5 + static_cast<std::uint64_t>(n));
    const auto r = girth_undirected_cc(g, 77);
    sparse.add(n, static_cast<double>(r.traffic.rounds));
    std::printf("  n=%4d girth=%lld sparse-path=%d rounds=%lld\n", n,
                static_cast<long long>(r.girth), r.used_sparse_path ? 1 : 0,
                static_cast<long long>(r.traffic.rounds));
  }
  cca::bench::print_fit(sparse, "O(m/n) = O(1) for constant degree");

  // Dense family: girth <= l guaranteed; exact detection paths fire.
  std::printf("\nDense family (p = 0.4): detection path, girth 3 or 4\n");
  Series dense{"dense (p = 0.4)", {}, {}};
  for (const int n : {64, 125, 216, 343}) {
    const auto g = gnp_random_graph(n, 0.4, 9 + static_cast<std::uint64_t>(n));
    const auto r = girth_undirected_cc(g, 78);
    dense.add(n, static_cast<double>(r.traffic.rounds));
    std::printf("  n=%4d girth=%lld sparse-path=%d rounds=%lld\n", n,
                static_cast<long long>(r.girth), r.used_sparse_path ? 1 : 0,
                static_cast<long long>(r.traffic.rounds));
  }
  cca::bench::print_fit(dense, "O~(n^rho) (rho = 0.288 implemented)");

  cca::bench::print_header("Table 1: girth (directed, Corollary 16)");
  // Identical planted girth 6 at every n: a 6-cycle on nodes [0,6) plus
  // acyclic (low -> high) noise arcs on [6, n) only, which cannot create
  // shorter cycles. The doubling + binary-search product counts are then
  // the same for every n and the fit isolates the per-product cost.
  Series directed{"directed girth", {}, {}};
  Series directed_bound{"directed girth (bound)", {}, {}};
  for (const int n : {32, 64, 128, 216}) {
    auto g = Graph::directed(n);
    for (int i = 0; i < 6; ++i) g.add_edge(i, (i + 1) % 6);
    Rng rng(13 + static_cast<std::uint64_t>(n));
    for (int u = 6; u < n; ++u)
      for (int v = u + 1; v < n; ++v)
        if (rng.chance(2, static_cast<std::uint64_t>(n))) g.add_edge(u, v);
    const auto r = girth_directed_cc(g);
    directed.add(n, static_cast<double>(r.traffic.rounds));
    directed_bound.add(n, static_cast<double>(r.traffic.bound_rounds));
    std::printf("  n=%4d girth=%lld rounds=%lld (lower bound %lld)\n", n,
                static_cast<long long>(r.girth),
                static_cast<long long>(r.traffic.rounds),
                static_cast<long long>(r.traffic.bound_rounds));
  }
  cca::bench::print_fit(directed, "O~(n^rho) (O(log n) Boolean products)");
  cca::bench::print_fit(directed_bound, "same, schedule-independent bound");
  return 0;
}
