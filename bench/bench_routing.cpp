// Routing substrate benchmark: the executable counterparts of Lenzen's
// O(1) routing theorem [46] and Dolev et al.'s oblivious routing
// [24, Lemma 1], which every algorithm in this repository builds on.
#include <cstdio>

#include "bench_common.hpp"
#include "clique/routing.hpp"
#include "util/rng.hpp"

namespace {

using namespace cca;
using namespace cca::clique;

/// Balanced Lenzen instance: every node sends `load` words to every other.
std::vector<Demand> balanced(int n, std::int64_t load_per_pair) {
  std::vector<Demand> out;
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d)
      if (s != d) out.push_back({s, d, load_per_pair});
  return out;
}

/// Skewed instance: node 0 floods half the clique.
std::vector<Demand> skewed(int n, std::int64_t words) {
  std::vector<Demand> out;
  for (int d = 1; d <= n / 2; ++d) out.push_back({0, d, words});
  return out;
}

}  // namespace

int main() {
  cca::bench::print_header(
      "Lenzen-balanced instances (n words in/out per node): rounds must be "
      "O(1) in n");
  std::printf("%-8s %-10s %-10s %-10s %-10s\n", "n", "direct", "hash",
              "random", "koenig");
  Rng rng(42);
  for (const int n : {16, 32, 64, 128, 256}) {
    const auto d = balanced(n, 1);
    std::printf("%-8d %-10lld %-10lld %-10lld %-10lld\n", n,
                static_cast<long long>(rounds_direct(n, d)),
                static_cast<long long>(rounds_hash_relay(n, d)),
                static_cast<long long>(rounds_random_relay(n, d, rng)),
                static_cast<long long>(rounds_koenig_relay(n, d)));
  }

  cca::bench::print_header(
      "Load sweep at n = 64 (k words per ordered pair): relays scale with "
      "k, direct with k too (already balanced)");
  std::printf("%-8s %-10s %-10s %-10s\n", "k", "direct", "hash", "koenig");
  for (const std::int64_t k : {1, 2, 4, 8, 16}) {
    const auto d = balanced(64, k);
    std::printf("%-8lld %-10lld %-10lld %-10lld\n", static_cast<long long>(k),
                static_cast<long long>(rounds_direct(64, d)),
                static_cast<long long>(rounds_hash_relay(64, d)),
                static_cast<long long>(rounds_koenig_relay(64, d)));
  }

  cca::bench::print_header(
      "Skewed instances (node 0 sends n words to each of n/2 receivers): "
      "relays beat direct by ~n/2");
  std::printf("%-8s %-10s %-10s %-10s %-12s\n", "n", "direct", "hash",
              "koenig", "lower bound");
  for (const int n : {32, 64, 128, 256}) {
    const auto d = skewed(n, n);
    const auto lower = static_cast<long long>(n) * (n / 2) / n;
    std::printf("%-8d %-10lld %-10lld %-10lld %-12lld\n", n,
                static_cast<long long>(rounds_direct(n, d)),
                static_cast<long long>(rounds_hash_relay(n, d)),
                static_cast<long long>(rounds_koenig_relay(n, d)), lower);
  }
  std::printf("\nkoenig = Euler-split edge colouring (constructive Koenig "
              "decomposition): deterministic, within a small constant of the "
              "per-node lower bound on every instance.\n");
  return 0;
}
