// Routing substrate benchmark: the executable counterparts of Lenzen's
// O(1) routing theorem [46] and Dolev et al.'s oblivious routing
// [24, Lemma 1], which every algorithm in this repository builds on.
//
// `--json` writes BENCH_routing.json: the SCHEDULER-WALL series — host
// nanoseconds spent computing one relay schedule from scratch (no cache)
// for the exact Euler split run serially (split_tasks = 1), the exact
// split run as 4 parallel subtree tasks, and the greedy first-fit
// colouring. The exact-serial and exact-tasks4 rows must carry IDENTICAL
// rounds (the split is bit-identical for every task count — the property
// tests/test_routing.cpp pins per class); scripts/bench_compare.py gates
// both rows against the committed baseline, so a CI machine with any core
// count re-proves the identity on every run. The greedy rows document the
// <= 2x round bound's measured slack. `--smoke` restricts to tiny sizes.
#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "bench_common.hpp"
#include "clique/routing.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace cca;
using namespace cca::clique;

/// Balanced Lenzen instance: every node sends `load` words to every other.
std::vector<Demand> balanced(int n, std::int64_t load_per_pair) {
  std::vector<Demand> out;
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d)
      if (s != d) out.push_back({s, d, load_per_pair});
  return out;
}

/// Skewed instance: node 0 floods half the clique.
std::vector<Demand> skewed(int n, std::int64_t words) {
  std::vector<Demand> out;
  for (int d = 1; d <= n / 2; ++d) out.push_back({0, d, words});
  return out;
}

/// Ragged instance in deliver()'s canonical (src, dst)-ascending order:
/// ~16 destinations per source with word counts spread over [1, 32] — the
/// degree/width profile of the sparse engine's distribute and contribute
/// phases, which is where the scheduler wall is actually spent in the
/// APSP / girth workloads (uniform instances split too easily to stress
/// the Euler recursion).
std::vector<Demand> ragged(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Demand> out;
  for (int s = 0; s < n; ++s) {
    const int deg = 8 + static_cast<int>(rng.next_below(17));
    std::vector<int> dsts;
    for (int i = 0; i < deg; ++i) {
      int d = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      if (d == s) d = (d + 1) % n;
      dsts.push_back(d);
    }
    std::sort(dsts.begin(), dsts.end());
    dsts.erase(std::unique(dsts.begin(), dsts.end()), dsts.end());
    for (const int d : dsts) out.push_back({s, d, rng.next_in(1, 32)});
  }
  return out;
}

/// Wall-clock one scheduling function, min of `reps` fresh computations.
template <typename Fn>
std::pair<Schedule, std::int64_t> time_schedule(Fn&& fn, int reps = 3) {
  Schedule sched = fn();  // warmup (untimed)
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = cca::bench::now_ns();
    sched = fn();
    const auto t1 = cca::bench::now_ns();
    best = std::min(best, t1 - t0);
  }
  return {sched, best};
}

}  // namespace

int main(int argc, char** argv) {
  cca::bench::JsonReport json("routing", argc, argv);
  const bool smoke = cca::bench::has_flag(argc, argv, "--smoke");

  cca::bench::print_header(
      "Scheduler wall-clock on ragged instances (~16 dsts/src, 1-32 words): "
      "exact Euler split serial vs 4-task vs greedy first-fit");
  std::printf("  workers=%d (CCA_THREADS overrides)\n", parallel_workers());
  std::printf("  %5s  %10s  %12s  %12s  %12s  %7s  %7s\n", "n", "demands",
              "serial ms", "tasks4 ms", "greedy ms", "rounds", "greedy");
  const std::vector<int> sizes = smoke ? std::vector<int>{27, 64}
                                       : std::vector<int>{64, 125, 216, 343,
                                                          512};
  for (const int n : sizes) {
    const auto d = ragged(n, 13 + static_cast<std::uint64_t>(n));
    const auto [serial, wall_serial] =
        time_schedule([&] { return schedule_koenig_relay(n, d, 1); });
    const auto [tasks4, wall_tasks4] =
        time_schedule([&] { return schedule_koenig_relay(n, d, 4); });
    const auto [greedy, wall_greedy] =
        time_schedule([&] { return schedule_greedy_relay(n, d); });
    if (serial.rounds != tasks4.rounds || serial.classes != tasks4.classes) {
      std::fprintf(stderr,
                   "FATAL: parallel split diverged at n=%d (serial %lld "
                   "rounds, tasks4 %lld)\n",
                   n, static_cast<long long>(serial.rounds),
                   static_cast<long long>(tasks4.rounds));
      return 1;
    }
    json.add("sched_exact_serial", n, serial.rounds, wall_serial);
    json.add("sched_exact_tasks4", n, tasks4.rounds, wall_tasks4);
    json.add("sched_greedy", n, greedy.rounds, wall_greedy);
    std::printf("  %5d  %10zu  %12.3f  %12.3f  %12.3f  %7lld  %7lld\n", n,
                d.size(), static_cast<double>(wall_serial) * 1e-6,
                static_cast<double>(wall_tasks4) * 1e-6,
                static_cast<double>(wall_greedy) * 1e-6,
                static_cast<long long>(serial.rounds),
                static_cast<long long>(greedy.rounds));
  }
  std::printf("(exact-serial and exact-tasks4 rounds are bit-identical by "
              "construction — the bench aborts otherwise; greedy rounds are "
              "bounded by 2x the optimum, so at most ~2x the exact rows)\n");

  cca::bench::print_header(
      "Lenzen-balanced instances (n words in/out per node): rounds must be "
      "O(1) in n");
  std::printf("%-8s %-10s %-10s %-10s %-10s %-10s\n", "n", "direct", "hash",
              "random", "koenig", "greedy");
  Rng rng(42);
  for (const int n : {16, 32, 64, 128, 256}) {
    const auto d = balanced(n, 1);
    std::printf("%-8d %-10lld %-10lld %-10lld %-10lld %-10lld\n", n,
                static_cast<long long>(rounds_direct(n, d)),
                static_cast<long long>(rounds_hash_relay(n, d)),
                static_cast<long long>(rounds_random_relay(n, d, rng)),
                static_cast<long long>(rounds_koenig_relay(n, d)),
                static_cast<long long>(rounds_greedy_relay(n, d)));
  }

  cca::bench::print_header(
      "Load sweep at n = 64 (k words per ordered pair): relays scale with "
      "k, direct with k too (already balanced)");
  std::printf("%-8s %-10s %-10s %-10s\n", "k", "direct", "hash", "koenig");
  for (const std::int64_t k : {1, 2, 4, 8, 16}) {
    const auto d = balanced(64, k);
    std::printf("%-8lld %-10lld %-10lld %-10lld\n", static_cast<long long>(k),
                static_cast<long long>(rounds_direct(64, d)),
                static_cast<long long>(rounds_hash_relay(64, d)),
                static_cast<long long>(rounds_koenig_relay(64, d)));
  }

  cca::bench::print_header(
      "Skewed instances (node 0 sends n words to each of n/2 receivers): "
      "relays beat direct by ~n/2");
  std::printf("%-8s %-10s %-10s %-10s %-12s\n", "n", "direct", "hash",
              "koenig", "lower bound");
  for (const int n : {32, 64, 128, 256}) {
    const auto d = skewed(n, n);
    const auto lower = static_cast<long long>(n) * (n / 2) / n;
    std::printf("%-8d %-10lld %-10lld %-10lld %-12lld\n", n,
                static_cast<long long>(rounds_direct(n, d)),
                static_cast<long long>(rounds_hash_relay(n, d)),
                static_cast<long long>(rounds_koenig_relay(n, d)), lower);
  }
  std::printf("\nkoenig = Euler-split edge colouring (constructive Koenig "
              "decomposition): deterministic, within a small constant of the "
              "per-node lower bound on every instance.\n");
  json.note(
      "scheduler-wall series (PR 6): wall columns are min-of-3 fresh "
      "schedule computations (no cache). sched_exact_serial and "
      "sched_exact_tasks4 must stay round-identical — the parallel Euler "
      "split's colour classes are bit-identical for every task count; the "
      "committed baseline machine is single-core, so the tasks4 wall shows "
      "task-management overhead, not speedup (multi-core CI runs see the "
      "speedup; the gate checks rounds equality and wall blowout only). "
      "sched_greedy documents the measured slack under the <= 2x first-fit "
      "bound for an O(words) scheduling pass.");
  json.write();
  return 0;
}
