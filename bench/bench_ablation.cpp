// Ablations for the design choices DESIGN.md calls out:
//   1. routing discipline inside the MM algorithms (Koenig vs hash vs
//      random vs direct),
//   2. Strassen tensor depth in the fast algorithm,
//   3. padding overhead at non-admissible sizes,
//   4. witness tracking overhead in the distance product (Section 3.3),
//   5. colour-coding trial budget vs detection success (Theorem 3).
#include <cstdio>

#include "bench_common.hpp"
#include "clique/broadcast.hpp"
#include "clique/network.hpp"
#include "core/color_coding.hpp"
#include "core/distance_product.hpp"
#include "core/mm.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"
#include "matrix/codec.hpp"
#include "util/rng.hpp"

namespace {

using namespace cca;
using namespace cca::core;

Matrix<std::int64_t> random_matrix(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m(i, j) = rng.next_in(0, 100);
  return m;
}

Matrix<std::int64_t> random_minplus(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, MinPlusSemiring::kInf);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (rng.chance(3, 4)) m(i, j) = rng.next_in(0, 50);
  return m;
}

}  // namespace

int main() {
  cca::bench::print_header("Ablation 1: router inside semiring MM (n = 216)");
  for (const auto& [router, name] :
       std::initializer_list<std::pair<clique::Router, const char*>>{
           {clique::Router::KoenigRelay, "koenig (default)"},
           {clique::Router::HashRelay, "hash"},
           {clique::Router::RandomRelay, "random"},
           {clique::Router::Direct, "direct"}}) {
    clique::Network net(216, router);
    const IntRing ring;
    const I64Codec codec;
    (void)mm_semiring_3d(net, ring, codec, random_matrix(216, 1),
                         random_matrix(216, 2));
    std::printf("  %-18s %6lld rounds\n", name,
                static_cast<long long>(net.stats().rounds));
  }

  cca::bench::print_header(
      "Ablation 2: Strassen tensor depth for n = 343 (fast MM)");
  for (int depth = 0; depth <= 3; ++depth) {
    const auto plan = plan_fast_mm(343, depth);
    clique::Network net(plan.clique_n);
    const IntRing ring;
    const I64Codec codec;
    const auto alg = tensor_power(strassen_algorithm(), depth);
    (void)mm_fast_bilinear(
        net, ring, codec, alg,
        pad_matrix(random_matrix(343, 1), plan.clique_n, std::int64_t{0}),
        pad_matrix(random_matrix(343, 2), plan.clique_n, std::int64_t{0}));
    std::printf("  depth=%d  d=%2d m=%4d padded N=%4d  rounds=%6lld\n", depth,
                plan.d, plan.m, plan.clique_n,
                static_cast<long long>(net.stats().rounds));
  }
  std::printf("(auto-planner picks depth %d)\n", plan_fast_mm_auto(343).depth);

  cca::bench::print_header(
      "Ablation 3: padding overhead of the 3D algorithm near a cube edge");
  for (const int n : {125, 126, 150, 200, 215, 216}) {
    const int padded = semiring_clique_size(n);
    clique::Network net(padded);
    const IntRing ring;
    const I64Codec codec;
    (void)mm_semiring_3d(net, ring, codec,
                         pad_matrix(random_matrix(n, 1), padded, std::int64_t{0}),
                         pad_matrix(random_matrix(n, 2), padded, std::int64_t{0}));
    std::printf("  n=%4d -> clique %4d (x%.2f nodes)  rounds=%5lld\n", n,
                padded, static_cast<double>(padded) / n,
                static_cast<long long>(net.stats().rounds));
  }

  cca::bench::print_header(
      "Ablation 4: witness tracking overhead in the distance product");
  for (const int n : {64, 125, 216}) {
    const auto a = random_minplus(n, 3);
    const auto b = random_minplus(n, 4);
    std::int64_t plain = 0, witnessed = 0;
    {
      clique::Network net(n);
      (void)dp_semiring(net, a, b);
      plain = net.stats().rounds;
    }
    {
      clique::Network net(n);
      (void)dp_semiring_witness(net, a, b);
      witnessed = net.stats().rounds;
    }
    std::printf("  n=%4d  plain=%5lld  witnessed=%5lld  (x%.2f)\n", n,
                static_cast<long long>(plain),
                static_cast<long long>(witnessed),
                static_cast<double>(witnessed) / static_cast<double>(plain));
  }

  cca::bench::print_header(
      "Ablation 5: colour-coding trial budget vs success (k = 5, n = 48)");
  const auto g = planted_cycle_graph(48, 5, 0.02, 77);
  const bool truth = ref_has_k_cycle(g, 5);
  for (const int trials : {1, 2, 4, 8, 16, 32}) {
    int found = 0;
    const int repeats = 10;
    std::int64_t rounds = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      const auto r = detect_k_cycle_cc(g, 5, 1000 + static_cast<std::uint64_t>(rep),
                                       trials);
      if (r.found) ++found;
      rounds += r.traffic.rounds;
    }
    std::printf("  trials=%2d  success=%2d/%d  avg rounds=%lld  (truth: %d)\n",
                trials, found, repeats,
                static_cast<long long>(rounds / repeats), truth ? 1 : 0);
  }
  std::printf("(paper's e^k ln n bound for k=5, n=48 is ~575 trials for "
              "1-1/n confidence; small budgets already succeed on planted "
              "instances)\n");

  cca::bench::print_header(
      "Ablation 6: bit-packed Boolean transport (the '/ log n' factor of "
      "Table 1's prior-work rows)");
  for (const int n : {64, 216, 512}) {
    Rng rng(9);
    Matrix<std::uint8_t> a(n, n, 0);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) a(i, j) = rng.chance(1, 3) ? 1 : 0;
    const BoolSemiring sr;
    std::int64_t unpacked = 0;
    std::int64_t packed = 0;
    {
      clique::Network net(n);
      (void)mm_semiring_3d(net, sr, ByteCodec{}, a, a);
      unpacked = net.stats().rounds;
    }
    {
      clique::Network net(n);
      (void)mm_semiring_3d(net, sr, PackedBoolCodec{}, a, a);
      packed = net.stats().rounds;
    }
    std::printf("  n=%4d  Boolean MM: unpacked=%5lld  packed=%4lld  (x%.1f)\n",
                n, static_cast<long long>(unpacked),
                static_cast<long long>(packed),
                static_cast<double>(unpacked) / static_cast<double>(packed));
  }

  cca::bench::print_header(
      "Ablation 7: broadcast clique vs unicast clique (Corollary 24)");
  std::printf("%-8s %-22s %-22s\n", "n", "broadcast MM (Thm bound)",
              "unicast MM (Thm 1)");
  for (const int n : {27, 64, 125, 216}) {
    clique::Network net(n);
    const IntRing ring;
    const I64Codec codec;
    (void)mm_semiring_3d(net, ring, codec, random_matrix(n, 1),
                         random_matrix(n, 2));
    std::printf("%-8d %-22lld %-22lld\n", n,
                static_cast<long long>(clique::broadcast_mm_rounds(n)),
                static_cast<long long>(net.stats().rounds));
  }
  std::printf("(broadcast clique: matrix multiplication needs Omega~(n) "
              "rounds [38]; the 2n-round announce-everything strategy is "
              "optimal up to polylog factors)\n");
  return 0;
}
