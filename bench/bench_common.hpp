// Shared helpers for the Table 1 benchmark binaries.
//
// Every bench prints paper-style tables: a sweep of clique sizes with the
// measured round counts, followed by a log-log exponent fit compared with
// the paper's asymptotic bound. Round counts come from the simulator's
// exact schedule accounting (see src/clique/), never from formulas.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/fit.hpp"
#include "util/table.hpp"

namespace cca::bench {

/// Monotonic nanosecond timestamp for wall-clock measurements.
inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Machine-readable perf record, opt-in via `--json` on any bench binary.
/// Collected rows are written to BENCH_<name>.json in the working directory
/// so the perf trajectory across PRs can be diffed and plotted.
class JsonReport {
 public:
  JsonReport(const std::string& name, int argc, char** argv) : name_(name) {
    for (int i = 1; i < argc; ++i)
      if (std::string(argv[i]) == "--json") enabled_ = true;
  }

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Record one measured configuration: the clique (padded) size, the exact
  /// simulated rounds, and the measured wall-clock per operation.
  void add(const std::string& label, long long clique_n, long long rounds,
           std::int64_t wall_ns_per_op) {
    rows_.push_back({label, clique_n, rounds, wall_ns_per_op});
  }

  /// Attach a free-form finding to the report (written as a "notes" array);
  /// used to record profiling conclusions next to the numbers they explain.
  void note(std::string text) { notes_.push_back(std::move(text)); }

  /// Write BENCH_<name>.json (no-op unless --json was passed).
  void write() const {
    if (!enabled_) return;
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", name_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const auto& r = rows_[i];
      std::fprintf(f,
                   "    {\"label\": \"%s\", \"clique_n\": %lld, "
                   "\"rounds\": %lld, \"wall_ns_per_op\": %lld}%s\n",
                   r.label.c_str(), r.clique_n, r.rounds,
                   static_cast<long long>(r.wall_ns_per_op),
                   i + 1 < rows_.size() ? "," : "");
    }
    if (notes_.empty()) {
      std::fprintf(f, "  ]\n}\n");
    } else {
      std::fprintf(f, "  ],\n  \"notes\": [\n");
      for (std::size_t i = 0; i < notes_.size(); ++i) {
        std::string escaped;
        for (const char c : notes_[i]) {
          if (c == '"' || c == '\\') escaped.push_back('\\');
          escaped.push_back(c);
        }
        std::fprintf(f, "    \"%s\"%s\n", escaped.c_str(),
                     i + 1 < notes_.size() ? "," : "");
      }
      std::fprintf(f, "  ]\n}\n");
    }
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  }

 private:
  struct Row {
    std::string label;
    long long clique_n;
    long long rounds;
    std::int64_t wall_ns_per_op;
  };
  std::string name_;
  bool enabled_ = false;
  std::vector<Row> rows_;
  std::vector<std::string> notes_;
};

/// True when `flag` (e.g. "--steps") was passed on the command line.
inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == flag) return true;
  return false;
}

struct Series {
  std::string name;
  std::vector<double> n;
  std::vector<double> rounds;

  void add(double n_value, double rounds_value) {
    n.push_back(n_value);
    rounds.push_back(rounds_value);
  }
};

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Print a fitted exponent line: "name: rounds ~ a * n^c (R^2) vs paper n^p".
inline void print_fit(const Series& s, const std::string& paper_bound) {
  if (s.n.size() < 2) return;
  const auto f = fit_power_law(s.n, s.rounds);
  std::printf("%-28s measured rounds ~ %.2f * n^%.3f  (R^2 = %.3f)   paper: %s\n",
              s.name.c_str(), f.coefficient, f.exponent, f.r_squared,
              paper_bound.c_str());
}

/// Print several series against a shared n column.
inline void print_series_table(const std::vector<Series>& series) {
  if (series.empty() || series[0].n.empty()) return;
  std::vector<std::string> headers{"n"};
  for (const auto& s : series) headers.push_back(s.name + " rounds");
  Table t(headers);
  for (std::size_t i = 0; i < series[0].n.size(); ++i) {
    std::vector<std::string> row{fmt_int(static_cast<long long>(series[0].n[i]))};
    for (const auto& s : series)
      row.push_back(i < s.rounds.size()
                        ? fmt_int(static_cast<long long>(s.rounds[i]))
                        : "-");
    t.add_row(std::move(row));
  }
  std::fputs(t.to_string().c_str(), stdout);
}

}  // namespace cca::bench
