// Shared helpers for the Table 1 benchmark binaries.
//
// Every bench prints paper-style tables: a sweep of clique sizes with the
// measured round counts, followed by a log-log exponent fit compared with
// the paper's asymptotic bound. Round counts come from the simulator's
// exact schedule accounting (see src/clique/), never from formulas.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "util/fit.hpp"
#include "util/table.hpp"

namespace cca::bench {

struct Series {
  std::string name;
  std::vector<double> n;
  std::vector<double> rounds;

  void add(double n_value, double rounds_value) {
    n.push_back(n_value);
    rounds.push_back(rounds_value);
  }
};

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Print a fitted exponent line: "name: rounds ~ a * n^c (R^2) vs paper n^p".
inline void print_fit(const Series& s, const std::string& paper_bound) {
  if (s.n.size() < 2) return;
  const auto f = fit_power_law(s.n, s.rounds);
  std::printf("%-28s measured rounds ~ %.2f * n^%.3f  (R^2 = %.3f)   paper: %s\n",
              s.name.c_str(), f.coefficient, f.exponent, f.r_squared,
              paper_bound.c_str());
}

/// Print several series against a shared n column.
inline void print_series_table(const std::vector<Series>& series) {
  if (series.empty() || series[0].n.empty()) return;
  std::vector<std::string> headers{"n"};
  for (const auto& s : series) headers.push_back(s.name + " rounds");
  Table t(headers);
  for (std::size_t i = 0; i < series[0].n.size(); ++i) {
    std::vector<std::string> row{fmt_int(static_cast<long long>(series[0].n[i]))};
    for (const auto& s : series)
      row.push_back(i < s.rounds.size()
                        ? fmt_int(static_cast<long long>(s.rounds[i]))
                        : "-");
    t.add_row(std::move(row));
  }
  std::fputs(t.to_string().c_str(), stdout);
}

}  // namespace cca::bench
