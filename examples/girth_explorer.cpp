// Scenario: structural audit of graph families via the girth (Theorem 15 /
// Corollary 16) — the first congested clique girth algorithm.
//
// Computes the girth of several structured graphs and of a random digraph,
// showing how the algorithm switches between the sparse path (learn the
// graph in O(m/n) rounds) and the dense path (matrix-product cycle
// detection), exactly the Lemma 14 dichotomy.
#include <cstdio>

#include "core/girth.hpp"
#include "graph/generators.hpp"
#include "matrix/semiring.hpp"

using namespace cca;
using namespace cca::core;

namespace {

void report(const char* name, const Graph& g, std::uint64_t seed) {
  const auto r = girth_undirected_cc(g, seed);
  if (r.girth >= MinPlusSemiring::kInf)
    std::printf("%-24s girth = (acyclic)  path=%s rounds=%lld\n", name,
                r.used_sparse_path ? "sparse" : "dense",
                static_cast<long long>(r.traffic.rounds));
  else
    std::printf("%-24s girth = %-9lld path=%s rounds=%lld\n", name,
                static_cast<long long>(r.girth),
                r.used_sparse_path ? "sparse" : "dense",
                static_cast<long long>(r.traffic.rounds));
}

}  // namespace

int main() {
  std::printf("undirected girth (Theorem 15):\n");
  report("Petersen graph", petersen_graph(), 1);
  report("5x7 grid", grid_graph(5, 7), 2);
  report("64-cycle", cycle_graph(64), 3);
  report("K_{16,16}", complete_bipartite(16, 16), 4);
  report("K_48", complete_graph(48), 5);
  report("binary tree (63)", binary_tree(63), 6);
  report("G(96, 0.3)", gnp_random_graph(96, 0.3, 77), 7);

  std::printf("\ndirected girth (Corollary 16):\n");
  {
    const auto g = cycle_graph(17, /*directed=*/true);
    const auto r = girth_directed_cc(g);
    std::printf("%-24s girth = %-9lld rounds=%lld\n", "directed 17-cycle",
                static_cast<long long>(r.girth),
                static_cast<long long>(r.traffic.rounds));
  }
  {
    auto g = gnp_random_graph(64, 0.04, 13, /*directed=*/true);
    const auto r = girth_directed_cc(g);
    if (r.girth >= MinPlusSemiring::kInf)
      std::printf("%-24s girth = (acyclic)  rounds=%lld\n", "G(64, .04) directed",
                  static_cast<long long>(r.traffic.rounds));
    else
      std::printf("%-24s girth = %-9lld rounds=%lld\n", "G(64, .04) directed",
                  static_cast<long long>(r.girth),
                  static_cast<long long>(r.traffic.rounds));
  }
  return 0;
}
