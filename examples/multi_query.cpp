// Multi-query serving demo: the batched multiply engine versus per-query
// networks.
//
// Scenario: a fleet of tenants each asks an analytics question about its
// own graph — "how many triangles?" and "what are the exact shortest
// paths?". Served naively, every query spins its own clique computation and
// pays its own routing schedules. The batch engine instead runs all B
// same-shape queries through SHARED supersteps (one Koenig schedule per
// superstep carries the concatenated per-pair messages), and the
// demand-fingerprint schedule cache makes every repeated superstep shape a
// scheduling no-op. Build with -DCCA_BUILD_EXAMPLES=ON.
#include <chrono>
#include <cstdio>
#include <span>
#include <vector>

#include "clique/network.hpp"
#include "core/apsp.hpp"
#include "core/counting.hpp"
#include "graph/generators.hpp"

namespace {

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  using namespace cca;
  const int n = 64;        // nodes per tenant graph
  const std::size_t tenants = 8;

  std::vector<Graph> graphs;
  for (std::size_t t = 0; t < tenants; ++t)
    graphs.push_back(gnp_random_graph(n, 0.2 + 0.05 * static_cast<double>(t),
                                      1000 + t));
  const std::span<const Graph> gs(graphs.data(), graphs.size());

  std::printf("serving %zu tenants, %d-node graphs each\n\n", tenants, n);

  // --- Triangle counts ----------------------------------------------------
  {
    std::int64_t seq_rounds = 0;
    const auto t0 = now_ms();
    std::vector<std::int64_t> seq_counts;
    for (const auto& g : graphs) {
      const auto r = core::count_triangles_cc(g, core::MmKind::Semiring3D);
      seq_counts.push_back(r.count);
      seq_rounds += r.traffic.rounds;
    }
    const auto t1 = now_ms();
    const auto batch =
        core::count_triangles_cc_batch(gs, core::MmKind::Semiring3D);
    const auto t2 = now_ms();

    std::printf("triangle counts  :");
    for (const auto c : batch.counts) std::printf(" %lld", (long long)c);
    std::printf("\n");
    for (std::size_t t = 0; t < tenants; ++t)
      if (batch.counts[t] != seq_counts[t]) std::printf("  MISMATCH!\n");
    std::printf("  one query at a time: %5lld rounds  %4lld ms\n",
                (long long)seq_rounds, (long long)(t1 - t0));
    std::printf("  batched supersteps : %5lld rounds  %4lld ms  "
                "(schedule cache: %lld hits / %lld misses)\n\n",
                (long long)batch.traffic.rounds, (long long)(t2 - t1),
                (long long)batch.traffic.schedule_hits,
                (long long)batch.traffic.schedule_misses);
  }

  // --- Exact APSP with routing tables ------------------------------------
  {
    std::int64_t seq_rounds = 0;
    const auto t0 = now_ms();
    for (const auto& g : graphs) {
      const auto r = core::apsp_semiring(g);
      seq_rounds += r.traffic.rounds;
    }
    const auto t1 = now_ms();
    const auto batch = core::apsp_semiring_batch(gs);
    const auto t2 = now_ms();

    std::printf("exact APSP (distances + next hops, all tenants)\n");
    std::printf("  one query at a time: %5lld rounds  %4lld ms\n",
                (long long)seq_rounds, (long long)(t1 - t0));
    std::printf("  batched squarings  : %5lld rounds  %4lld ms  "
                "(schedule cache: %lld hits / %lld misses)\n",
                (long long)batch.traffic.rounds, (long long)(t2 - t1),
                (long long)batch.traffic.schedule_hits,
                (long long)batch.traffic.schedule_misses);
  }
  return 0;
}
