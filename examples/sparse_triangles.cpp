// Sparse-workload walkthrough: triangle counting on a power-law graph with
// the nnz-adaptive multiplication engine.
//
// Real graph workloads are sparse — a social graph on a million nodes has
// tens of edges per node, not thousands — and their degree profiles are
// heavy-tailed. The dense engines of Table 1 charge their full n^rho rounds
// regardless; the sparse engine announces the nonzero profile in one round
// and pays rounds that follow the edge volume instead. MmKind::Auto makes
// the choice per product from the announced counts, so the SAME application
// code serves both regimes, and a mid-algorithm densification (A^2 of a
// sparse graph can be dense) simply flips the dispatch.
//
// Build with -DCCA_BUILD_EXAMPLES=ON; run from anywhere.
#include <cstdio>

#include "clique/network.hpp"
#include "core/counting.hpp"
#include "core/engine.hpp"
#include "core/mm.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"
#include "matrix/codec.hpp"

int main() {
  using namespace cca;
  using core::MmKind;

  const int n = 216;
  const auto g = power_law_graph(n, 3 * n, 2.3, 42);
  std::printf("power-law graph: n=%d, m=%lld (avg degree %.1f)\n", n,
              static_cast<long long>(g.num_edges()),
              2.0 * static_cast<double>(g.num_edges()) / n);

  const auto want = ref_count_triangles(g);
  std::printf("reference triangle count: %lld\n\n",
              static_cast<long long>(want));

  for (const auto kind :
       {MmKind::Auto, MmKind::Fast, MmKind::Semiring3D, MmKind::Naive}) {
    const char* name = kind == MmKind::Auto         ? "auto (nnz dispatch)"
                       : kind == MmKind::Fast       ? "fast bilinear"
                       : kind == MmKind::Semiring3D ? "semiring 3D"
                                                    : "naive broadcast";
    const auto r = core::count_triangles_cc(g, kind);
    std::printf("  %-20s count=%lld  rounds=%6lld  words=%9lld%s\n", name,
                static_cast<long long>(r.count),
                static_cast<long long>(r.traffic.rounds),
                static_cast<long long>(r.traffic.total_words),
                r.count == want ? "" : "  <-- WRONG");
  }

  // The same dispatch, driven directly: the sparse engine wins while the
  // input is sparse, and hands over to the dense 3D engine as the matrix
  // fills in (A^2 of a sparse graph is much denser than A).
  std::printf("\ndirect dispatch on A and on A^2 (n=%d clique):\n", n);
  const auto a = g.adjacency();
  const IntRing ring;
  const I64Codec codec;
  clique::Network net(n);
  core::AutoEngineChoice choice{};
  const auto a2 = core::mm_semiring_auto(net, ring, codec, a, a, nullptr,
                                         &choice);
  std::printf("  A * A   : %s, cumulative rounds %lld\n",
              choice == core::AutoEngineChoice::Sparse ? "sparse" : "dense",
              static_cast<long long>(net.stats().rounds));
  (void)core::mm_semiring_auto(net, ring, codec, a2, a2, nullptr, &choice);
  std::printf("  A^2*A^2 : %s, cumulative rounds %lld\n",
              choice == core::AutoEngineChoice::Sparse ? "sparse" : "dense",
              static_cast<long long>(net.stats().rounds));
  return 0;
}
