// Scenario: routing tables for a weighted wide-area network.
//
// A synthetic ISP-like topology (ring backbone + regional stars + shortcut
// links, latency weights) is solved with the paper's APSP algorithms:
// exact distances AND next-hop routing tables via witnessed min-plus
// squaring (Corollary 6 + Section 3.4), then the (1+o(1))-approximation
// (Theorem 9) to show the cheap near-optimal alternative.
#include <cstdio>

#include "core/apsp.hpp"
#include "graph/graph.hpp"
#include "matrix/semiring.hpp"
#include "util/rng.hpp"

using namespace cca;
using namespace cca::core;

namespace {

Graph isp_topology(int regions, int per_region, std::uint64_t seed) {
  Rng rng(seed);
  const int n = regions * per_region;
  auto g = Graph::undirected(n);
  // Backbone ring over the region gateways (node r*per_region).
  for (int r = 0; r < regions; ++r)
    g.add_edge(r * per_region, ((r + 1) % regions) * per_region,
               10 + rng.next_in(0, 5));
  // Regional stars: cheap local links.
  for (int r = 0; r < regions; ++r)
    for (int i = 1; i < per_region; ++i)
      g.add_edge(r * per_region, r * per_region + i, 1 + rng.next_in(0, 2));
  // A few long-haul shortcuts.
  for (int s = 0; s < regions; ++s) {
    const int u = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    const int v = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u != v) g.add_edge(u, v, 20 + rng.next_in(0, 20));
  }
  return g;
}

}  // namespace

int main() {
  const int regions = 8;
  const int per_region = 8;
  const auto g = isp_topology(regions, per_region, 99);
  const int n = g.n();
  std::printf("ISP topology: %d routers, %lld links\n\n", n,
              static_cast<long long>(g.num_edges()));

  // Exact distances + routing tables (Corollary 6).
  const auto exact = apsp_semiring(g);
  std::printf("exact APSP + routing tables: %lld rounds\n",
              static_cast<long long>(exact.traffic.rounds));

  // Show a route: from the last leaf to the far gateway.
  const int src = n - 1;
  const int dst = per_region;  // gateway of region 1
  std::printf("route %d -> %d (latency %lld): %d", src, dst,
              static_cast<long long>(exact.dist(src, dst)), src);
  for (int hop = src; hop != dst;) {
    hop = exact.next_hop(hop, dst);
    std::printf(" -> %d", hop);
    if (hop < 0) break;
  }
  std::printf("\n\n");

  // Approximate distances (Theorem 9): far fewer words for big weights.
  const auto approx = apsp_approx(g, /*delta=*/0.25);
  double worst = 1.0;
  for (int u = 0; u < n; ++u)
    for (int v = 0; v < n; ++v)
      if (exact.dist(u, v) > 0 && exact.dist(u, v) < MinPlusSemiring::kInf)
        worst = std::max(worst, static_cast<double>(approx.dist(u, v)) /
                                    static_cast<double>(exact.dist(u, v)));
  std::printf("(1+o(1))-approx APSP: %lld rounds, worst stretch %.3f\n",
              static_cast<long long>(approx.traffic.rounds), worst);

  // Network diameter from the exact distances.
  std::int64_t diam = 0;
  for (int u = 0; u < n; ++u)
    for (int v = 0; v < n; ++v)
      if (exact.dist(u, v) < MinPlusSemiring::kInf)
        diam = std::max(diam, exact.dist(u, v));
  std::printf("weighted diameter   : %lld\n", static_cast<long long>(diam));
  return 0;
}
