// Scenario: community analytics on a social network.
//
// A synthetic social graph (overlapping communities + random weak ties) is
// analysed with the paper's subgraph machinery: exact triangle and 4-cycle
// counts (Corollary 2) give the global clustering coefficient, the O(1)
// 4-cycle detector (Theorem 4) answers "is there any rectangle of
// friendships at all?", and colour-coding (Theorem 3) looks for a 6-person
// friendship ring.
#include <cstdio>

#include "core/color_coding.hpp"
#include "core/counting.hpp"
#include "core/four_cycle.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

using namespace cca;
using namespace cca::core;

namespace {

/// n people in n/16 overlapping communities plus sparse weak ties.
Graph social_graph(int n, std::uint64_t seed) {
  Rng rng(seed);
  auto g = Graph::undirected(n);
  const int communities = n / 16;
  for (int c = 0; c < communities; ++c) {
    // Community c spans a window of ~20 people with dense links.
    const int base = c * 16;
    const int size = std::min(20, n - base);
    for (int i = 0; i < size; ++i)
      for (int j = i + 1; j < size; ++j)
        if (rng.chance(2, 5)) g.add_edge(base + i, base + j);
  }
  // Weak ties across the whole graph.
  for (int e = 0; e < n; ++e) {
    const int u = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    const int v = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u != v) g.add_edge(u, v);
  }
  return g;
}

}  // namespace

int main() {
  const int n = 128;
  const auto g = social_graph(n, 42);
  std::printf("social graph: %d people, %lld friendships\n\n", n,
              static_cast<long long>(g.num_edges()));

  // Triangles -> global clustering coefficient. One fast matrix product.
  const auto tri = count_triangles_cc(g);
  std::int64_t wedges = 0;
  for (int v = 0; v < n; ++v) {
    const std::int64_t d = g.out_degree(v);
    wedges += d * (d - 1) / 2;
  }
  std::printf("triangles          : %lld   (%lld rounds)\n",
              static_cast<long long>(tri.count),
              static_cast<long long>(tri.traffic.rounds));
  if (wedges > 0)
    std::printf("clustering coeff   : %.4f\n",
                3.0 * static_cast<double>(tri.count) /
                    static_cast<double>(wedges));

  // Rectangles of friendships.
  const auto c4 = count_4cycles_cc(g);
  std::printf("4-cycles           : %lld   (%lld rounds)\n",
              static_cast<long long>(c4.count),
              static_cast<long long>(c4.traffic.rounds));

  // Existence only: Theorem 4's detector answers in O(1) rounds.
  const auto det = detect_4cycle_const(g);
  std::printf("any 4-cycle?       : %s    (%lld rounds — constant!)\n",
              det.found ? "yes" : "no",
              static_cast<long long>(det.traffic.rounds));

  // Pentagon motifs (two products; the k=5 trace formula).
  const auto c5 = count_5cycles_cc(g);
  std::printf("5-cycles           : %lld   (%lld rounds)\n",
              static_cast<long long>(c5.count),
              static_cast<long long>(c5.traffic.rounds));

  // A 6-ring of friends via colour-coding.
  const auto six = detect_k_cycle_cc(g, 6, /*seed=*/7, /*max_trials=*/40);
  std::printf("6-ring found?      : %s    (%d colourings, %lld rounds)\n",
              six.found ? "yes" : "no", six.trials,
              static_cast<long long>(six.traffic.rounds));
  return 0;
}
