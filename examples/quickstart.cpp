// Quickstart: multiply two matrices on a simulated congested clique and
// read off the exact round cost, comparing the three engines of Theorem 1.
//
//   $ ./examples/quickstart
//
// Walks through the core API: build a Network, run mm_semiring_3d /
// mm_fast_bilinear / mm_naive_broadcast, inspect TrafficStats.
#include <cstdio>

#include "clique/network.hpp"
#include "core/mm.hpp"
#include "matrix/codec.hpp"
#include "matrix/ops.hpp"
#include "util/rng.hpp"

using namespace cca;
using namespace cca::core;

int main() {
  // A 64-node congested clique; 64 = 4^3 is admissible for the 3D
  // algorithm and 64 = 8^2 with 4 | 8 for the depth-2 Strassen scheme.
  const int n = 64;

  // Random integer inputs; node v holds row v of both (the paper's input
  // distribution).
  Rng rng(2015);
  Matrix<std::int64_t> a(n, n, 0);
  Matrix<std::int64_t> b(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      a(i, j) = rng.next_in(-9, 9);
      b(i, j) = rng.next_in(-9, 9);
    }
  const IntRing ring;
  const I64Codec codec;
  const auto reference = multiply(ring, a, b);

  std::printf("multiplying two %dx%d integer matrices on an %d-node clique\n\n",
              n, n, n);

  {  // Section 2.1: the 3D semiring algorithm, O(n^{1/3}) rounds.
    clique::Network net(n);
    const auto p = mm_semiring_3d(net, ring, codec, a, b);
    std::printf("semiring 3D   : %3lld rounds (%6lld words moved)  correct=%d\n",
                static_cast<long long>(net.stats().rounds),
                static_cast<long long>(net.stats().total_words),
                p == reference);
  }

  {  // Section 2.2: Strassen tensor power, O(n^{1-2/sigma}) rounds.
    const auto plan = plan_fast_mm(n, /*depth=*/2);  // d=4, m=49 <= 64
    clique::Network net(plan.clique_n);
    const auto alg = tensor_power(strassen_algorithm(), plan.depth);
    const auto p = mm_fast_bilinear(net, ring, codec, alg, a, b);
    std::printf("fast bilinear : %3lld rounds (%6lld words moved)  correct=%d\n",
                static_cast<long long>(net.stats().rounds),
                static_cast<long long>(net.stats().total_words),
                p == reference);
  }

  {  // The trivial baseline: everyone learns everything, O(n) rounds.
    clique::Network net(n);
    const auto p = mm_naive_broadcast(net, ring, 1, a, b);
    std::printf("naive         : %3lld rounds                       correct=%d\n",
                static_cast<long long>(net.stats().rounds), p == reference);
  }

  std::printf(
      "\nEvery round count is produced by scheduling the algorithm's real\n"
      "messages under the one-word-per-link-per-round constraint — see\n"
      "src/clique/routing.hpp for the disciplines.\n");
  return 0;
}
