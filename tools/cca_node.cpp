// Rank worker for multi-process clique runs (see scripts/run_cluster.py).
//
// Each of the P ranks runs this binary with the SAME workload arguments
// (the SPMD contract: inputs are regenerated identically from --seed on
// every rank). The run is self-checking: the rank first executes the
// workload on a single-process in-process arena — the oracle — and then
// again over the socket mesh with an ambient TransportScope, and exits
// nonzero unless
//   * every result entry this rank OWNS is bit-identical to the oracle, and
//   * every deterministic TrafficStats field (rounds, bound_rounds,
//     supersteps, total_words, max_node_send/recv, schedule hits/misses,
//     faults_injected, retransmit rounds/words) is bit-identical to the
//     oracle's.
// The second property is the refactor's core claim: Network's accounting
// only ever sees the canonical demand list, which the socket backend
// reconstructs identically on every rank (socket_transport.hpp) — and the
// hardened fault path plans from the same common-knowledge metadata, so
// even injected faults charge identically.
//
// Usage:
//   cca_node --rank R --nprocs P --port-base B
//            --workload {mm,mm_sparse,apsp,apsp_auto,apsp_batch,seidel,
//                        witness,triangles,fault_mix} --n N [--seed S]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "clique/fault.hpp"
#include "clique/network.hpp"
#include "clique/socket_transport.hpp"
#include "clique/transport.hpp"
#include "core/apsp.hpp"
#include "core/counting.hpp"
#include "core/engine.hpp"
#include "core/mm.hpp"
#include "graph/generators.hpp"
#include "matrix/codec.hpp"
#include "matrix/semiring.hpp"
#include "util/rng.hpp"

namespace {

using namespace cca;
using namespace cca::core;

struct Options {
  int rank = -1;
  int nprocs = -1;
  int port_base = -1;
  std::string workload;
  int n = 0;
  std::uint64_t seed = 1;
};

[[noreturn]] void usage_fail(const char* msg) {
  std::fprintf(stderr,
               "cca_node: %s\n"
               "usage: cca_node --rank R --nprocs P --port-base B "
               "--workload {mm,mm_sparse,apsp,apsp_auto,apsp_batch,seidel,"
               "witness,triangles,fault_mix} --n N [--seed S]\n",
               msg);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) usage_fail(flag);
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--rank") == 0)
      o.rank = std::atoi(need("--rank needs a value"));
    else if (std::strcmp(argv[i], "--nprocs") == 0)
      o.nprocs = std::atoi(need("--nprocs needs a value"));
    else if (std::strcmp(argv[i], "--port-base") == 0)
      o.port_base = std::atoi(need("--port-base needs a value"));
    else if (std::strcmp(argv[i], "--workload") == 0)
      o.workload = need("--workload needs a value");
    else if (std::strcmp(argv[i], "--n") == 0)
      o.n = std::atoi(need("--n needs a value"));
    else if (std::strcmp(argv[i], "--seed") == 0)
      o.seed = static_cast<std::uint64_t>(
          std::strtoull(need("--seed needs a value"), nullptr, 10));
    else
      usage_fail("unknown flag");
  }
  if (o.rank < 0 || o.nprocs < 1 || o.rank >= o.nprocs)
    usage_fail("--rank/--nprocs out of range");
  if (o.port_base <= 0) usage_fail("--port-base required");
  if (o.workload.empty()) usage_fail("--workload required");
  if (o.n < 1) usage_fail("--n must be >= 1");
  return o;
}

Matrix<std::int64_t> random_matrix(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m(i, j) = rng.next_in(0, 1000);
  return m;
}

Matrix<std::int64_t> random_sparse_matrix(int n, std::int64_t nnz,
                                          std::uint64_t seed) {
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, 0);
  std::int64_t placed = 0;
  while (placed < nnz) {
    const int i =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    const int j =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (m(i, j) != 0) continue;
    m(i, j) = rng.next_in(1, 1000);
    ++placed;
  }
  return m;
}

int g_failures = 0;

void check_i64(std::int64_t got, std::int64_t want, const char* what,
               int rank) {
  if (got == want) return;
  std::fprintf(stderr,
               "cca_node[rank %d]: MISMATCH: %s: sharded %lld vs oracle "
               "%lld\n",
               rank, what, static_cast<long long>(got),
               static_cast<long long>(want));
  ++g_failures;
}

/// The deterministic TrafficStats fields (wall-clock telemetry excluded).
void check_stats(const clique::TrafficStats& got,
                 const clique::TrafficStats& want, int rank) {
  check_i64(got.rounds, want.rounds, "rounds", rank);
  check_i64(got.bound_rounds, want.bound_rounds, "bound_rounds", rank);
  check_i64(got.supersteps, want.supersteps, "supersteps", rank);
  check_i64(got.total_words, want.total_words, "total_words", rank);
  check_i64(got.max_node_send, want.max_node_send, "max_node_send", rank);
  check_i64(got.max_node_recv, want.max_node_recv, "max_node_recv", rank);
  check_i64(got.schedule_hits, want.schedule_hits, "schedule_hits", rank);
  check_i64(got.schedule_misses, want.schedule_misses, "schedule_misses",
            rank);
  check_i64(got.faults_injected, want.faults_injected, "faults_injected",
            rank);
  check_i64(got.retransmit_rounds, want.retransmit_rounds,
            "retransmit_rounds", rank);
  check_i64(got.retransmit_words, want.retransmit_words, "retransmit_words",
            rank);
}

template <typename V>
void check_owned_rows(const Matrix<V>& got, const Matrix<V>& want,
                      clique::NodeSpan own, int rank, const char* what) {
  const int rows = std::min(own.end, got.rows());
  for (int u = own.begin; u < rows; ++u)
    for (int v = 0; v < got.cols(); ++v)
      if (got(u, v) != want(u, v)) {
        std::fprintf(stderr,
                     "cca_node[rank %d]: MISMATCH: %s(%d,%d): sharded %lld "
                     "vs oracle %lld\n",
                     rank, what, u, v, static_cast<long long>(got(u, v)),
                     static_cast<long long>(want(u, v)));
        ++g_failures;
        return;
      }
}

/// mm / mm_sparse: explicit Network at clique size n.
void run_mm(const Options& o, bool sparse,
            const std::shared_ptr<clique::SocketMesh>& mesh) {
  const IntRing ring;
  const I64Codec codec;
  const auto a = sparse ? random_sparse_matrix(o.n, 2 * o.n, o.seed)
                        : random_matrix(o.n, o.seed);
  const auto b = sparse ? random_sparse_matrix(o.n, 2 * o.n, o.seed + 1)
                        : random_matrix(o.n, o.seed + 1);

  // Oracle: single-process arena, no ambient scope.
  clique::Network oracle_net(o.n);
  const auto oracle = sparse
                          ? mm_semiring_sparse(oracle_net, ring, codec, a, b)
                          : mm_semiring_3d(oracle_net, ring, codec, a, b);

  // Sharded run over the mesh.
  clique::TransportScope scope(clique::SocketTransport::factory(mesh));
  clique::Network net(o.n);
  const auto got = sparse ? mm_semiring_sparse(net, ring, codec, a, b)
                          : mm_semiring_3d(net, ring, codec, a, b);

  check_owned_rows(got, oracle, net.owned(), o.rank, "product");
  check_stats(net.stats(), oracle_net.stats(), o.rank);
}

/// apsp / apsp_auto: the Network is constructed INSIDE apsp_semiring —
/// exactly the path TransportScope exists for. The Auto kind additionally
/// exercises the sharded nnz census and dispatch hysteresis: the engine
/// trace must match the oracle call for call.
void run_apsp(const Options& o, MmKind kind,
              const std::shared_ptr<clique::SocketMesh>& mesh) {
  const auto g = random_weighted_graph(o.n, 0.35, 1, 50, o.seed);
  const auto oracle = apsp_semiring(g, kind);

  clique::TransportScope scope(clique::SocketTransport::factory(mesh));
  const auto got = apsp_semiring(g, kind);

  const auto own = clique::shard_span(semiring_clique_size(o.n), o.nprocs,
                                      o.rank);
  check_owned_rows(got.dist, oracle.dist, own, o.rank, "dist");
  check_i64(static_cast<std::int64_t>(got.engine_trace.size()),
            static_cast<std::int64_t>(oracle.engine_trace.size()),
            "engine trace length", o.rank);
  check_stats(got.traffic, oracle.traffic, o.rank);
}

/// apsp_batch: three graphs' APSP through the batched Auto dispatcher —
/// the sharded batch announcement and census must reproduce the oracle's
/// per-member results and the shared dispatch trace.
void run_apsp_batch(const Options& o,
                    const std::shared_ptr<clique::SocketMesh>& mesh) {
  std::vector<Graph> gs;
  for (int b = 0; b < 3; ++b)
    gs.push_back(random_weighted_graph(o.n, 0.35, 1, 50, o.seed +
                                       static_cast<std::uint64_t>(b)));
  const auto oracle = apsp_semiring_batch(gs, MmKind::Auto);

  clique::TransportScope scope(clique::SocketTransport::factory(mesh));
  const auto got = apsp_semiring_batch(gs, MmKind::Auto);

  const auto own = clique::shard_span(semiring_clique_size(o.n), o.nprocs,
                                      o.rank);
  for (std::size_t b = 0; b < gs.size(); ++b)
    check_owned_rows(got.dist[b], oracle.dist[b], own, o.rank, "dist");
  check_i64(static_cast<std::int64_t>(got.engine_trace.size()),
            static_cast<std::int64_t>(oracle.engine_trace.size()),
            "engine trace length", o.rank);
  check_stats(got.traffic, oracle.traffic, o.rank);
}

/// seidel: recursive unweighted APSP whose per-level products are
/// re-replicated to every rank, so the FULL distance matrix must match.
void run_seidel(const Options& o,
                const std::shared_ptr<clique::SocketMesh>& mesh) {
  const auto g = gnp_random_graph(o.n, 0.4, o.seed);
  const auto oracle = apsp_seidel(g);

  clique::TransportScope scope(clique::SocketTransport::factory(mesh));
  const auto got = apsp_seidel(g);

  check_owned_rows(got.dist, oracle.dist, clique::NodeSpan{0, o.n}, o.rank,
                   "dist");
  check_stats(got.traffic, oracle.traffic, o.rank);
}

/// witness: a replicated exact distance matrix (computed in-process, like
/// any other replicated INPUT) feeds the witnessed product that derives
/// next hops; owned rows of the table must match the oracle.
void run_witness(const Options& o,
                 const std::shared_ptr<clique::SocketMesh>& mesh) {
  const auto g = random_weighted_graph(o.n, 0.35, 1, 50, o.seed);
  const auto base = apsp_semiring(g, MmKind::Semiring3D);

  clique::TrafficStats oracle_traffic;
  const auto oracle =
      routing_table_from_distances(g, base.dist, &oracle_traffic);

  clique::TransportScope scope(clique::SocketTransport::factory(mesh));
  clique::TrafficStats got_traffic;
  const auto got = routing_table_from_distances(g, base.dist, &got_traffic);

  const auto own = clique::shard_span(semiring_clique_size(o.n), o.nprocs,
                                      o.rank);
  check_owned_rows(got, oracle, own, o.rank, "next_hop");
  check_stats(got_traffic, oracle_traffic, o.rank);
}

/// fault_mix: drop + corrupt + duplicate faults under the socket backend.
/// Every rank draws the identical counter-mode coins from the plan seed,
/// so the injected faults, the retransmission charges, and the repaired
/// product must all be bit-identical to the single-process oracle.
void run_fault_mix(const Options& o,
                   const std::shared_ptr<clique::SocketMesh>& mesh) {
  const IntRing ring;
  const I64Codec codec;
  const auto a = random_matrix(o.n, o.seed);
  const auto b = random_matrix(o.n, o.seed + 1);

  clique::FaultPlan plan;
  plan.seed = 0xfa11u ^ o.seed;
  plan.drop_prob = 0.05;
  plan.corrupt_prob = 0.05;
  plan.duplicate_prob = 0.02;

  clique::Network oracle_net(o.n);
  oracle_net.install_faults(plan);
  const auto oracle = mm_semiring_3d(oracle_net, ring, codec, a, b);

  clique::TransportScope scope(clique::SocketTransport::factory(mesh));
  clique::Network net(o.n);
  net.install_faults(plan);
  const auto got = mm_semiring_3d(net, ring, codec, a, b);

  check_owned_rows(got, oracle, net.owned(), o.rank, "product");
  check_stats(net.stats(), oracle_net.stats(), o.rank);
}

/// triangles: single-count workload; the count is derived from a synced
/// broadcast, so every rank must hold the oracle's exact value.
void run_triangles(const Options& o,
                   const std::shared_ptr<clique::SocketMesh>& mesh) {
  const auto g = gnp_random_graph(o.n, 0.4, o.seed);
  const auto oracle = count_triangles_cc(g, MmKind::Semiring3D);

  clique::TransportScope scope(clique::SocketTransport::factory(mesh));
  const auto got = count_triangles_cc(g, MmKind::Semiring3D);

  check_i64(got.count, oracle.count, "triangle count", o.rank);
  check_stats(got.traffic, oracle.traffic, o.rank);
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  try {
    const auto mesh =
        clique::SocketMesh::connect_tcp(o.rank, o.nprocs, o.port_base);
    if (o.workload == "mm")
      run_mm(o, /*sparse=*/false, mesh);
    else if (o.workload == "mm_sparse")
      run_mm(o, /*sparse=*/true, mesh);
    else if (o.workload == "apsp")
      run_apsp(o, MmKind::Semiring3D, mesh);
    else if (o.workload == "apsp_auto")
      run_apsp(o, MmKind::Auto, mesh);
    else if (o.workload == "apsp_batch")
      run_apsp_batch(o, mesh);
    else if (o.workload == "seidel")
      run_seidel(o, mesh);
    else if (o.workload == "witness")
      run_witness(o, mesh);
    else if (o.workload == "fault_mix")
      run_fault_mix(o, mesh);
    else if (o.workload == "triangles")
      run_triangles(o, mesh);
    else
      usage_fail("unknown --workload");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cca_node[rank %d]: FATAL: %s\n", o.rank, e.what());
    return 3;
  }
  if (g_failures > 0) {
    std::fprintf(stderr, "cca_node[rank %d]: FAILED (%d mismatches)\n",
                 o.rank, g_failures);
    return 1;
  }
  std::printf("cca_node[rank %d]: OK (%s n=%d P=%d)\n", o.rank,
              o.workload.c_str(), o.n, o.nprocs);
  return 0;
}
