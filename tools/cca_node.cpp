// Rank worker for multi-process clique runs (see scripts/run_cluster.py).
//
// Each of the P ranks runs this binary with the SAME workload arguments
// (the SPMD contract: inputs are regenerated identically from --seed on
// every rank). The run is self-checking: the rank first executes the
// workload on a single-process in-process arena — the oracle — and then
// again over the socket mesh with an ambient TransportScope, and exits
// nonzero unless
//   * every result entry this rank OWNS is bit-identical to the oracle, and
//   * every deterministic TrafficStats field (rounds, bound_rounds,
//     supersteps, total_words, max_node_send/recv, schedule hits/misses)
//     is bit-identical to the oracle's.
// The second property is the refactor's core claim: Network's accounting
// only ever sees the canonical demand list, which the socket backend
// reconstructs identically on every rank (socket_transport.hpp).
//
// Usage:
//   cca_node --rank R --nprocs P --port-base B
//            --workload {mm,mm_sparse,apsp,triangles} --n N [--seed S]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>

#include "clique/network.hpp"
#include "clique/socket_transport.hpp"
#include "clique/transport.hpp"
#include "core/apsp.hpp"
#include "core/counting.hpp"
#include "core/engine.hpp"
#include "core/mm.hpp"
#include "graph/generators.hpp"
#include "matrix/codec.hpp"
#include "matrix/semiring.hpp"
#include "util/rng.hpp"

namespace {

using namespace cca;
using namespace cca::core;

struct Options {
  int rank = -1;
  int nprocs = -1;
  int port_base = -1;
  std::string workload;
  int n = 0;
  std::uint64_t seed = 1;
};

[[noreturn]] void usage_fail(const char* msg) {
  std::fprintf(stderr,
               "cca_node: %s\n"
               "usage: cca_node --rank R --nprocs P --port-base B "
               "--workload {mm,mm_sparse,apsp,triangles} --n N [--seed S]\n",
               msg);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) usage_fail(flag);
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--rank") == 0)
      o.rank = std::atoi(need("--rank needs a value"));
    else if (std::strcmp(argv[i], "--nprocs") == 0)
      o.nprocs = std::atoi(need("--nprocs needs a value"));
    else if (std::strcmp(argv[i], "--port-base") == 0)
      o.port_base = std::atoi(need("--port-base needs a value"));
    else if (std::strcmp(argv[i], "--workload") == 0)
      o.workload = need("--workload needs a value");
    else if (std::strcmp(argv[i], "--n") == 0)
      o.n = std::atoi(need("--n needs a value"));
    else if (std::strcmp(argv[i], "--seed") == 0)
      o.seed = static_cast<std::uint64_t>(
          std::strtoull(need("--seed needs a value"), nullptr, 10));
    else
      usage_fail("unknown flag");
  }
  if (o.rank < 0 || o.nprocs < 1 || o.rank >= o.nprocs)
    usage_fail("--rank/--nprocs out of range");
  if (o.port_base <= 0) usage_fail("--port-base required");
  if (o.workload.empty()) usage_fail("--workload required");
  if (o.n < 1) usage_fail("--n must be >= 1");
  return o;
}

Matrix<std::int64_t> random_matrix(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m(i, j) = rng.next_in(0, 1000);
  return m;
}

Matrix<std::int64_t> random_sparse_matrix(int n, std::int64_t nnz,
                                          std::uint64_t seed) {
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, 0);
  std::int64_t placed = 0;
  while (placed < nnz) {
    const int i =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    const int j =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (m(i, j) != 0) continue;
    m(i, j) = rng.next_in(1, 1000);
    ++placed;
  }
  return m;
}

int g_failures = 0;

void check_i64(std::int64_t got, std::int64_t want, const char* what,
               int rank) {
  if (got == want) return;
  std::fprintf(stderr,
               "cca_node[rank %d]: MISMATCH: %s: sharded %lld vs oracle "
               "%lld\n",
               rank, what, static_cast<long long>(got),
               static_cast<long long>(want));
  ++g_failures;
}

/// The deterministic TrafficStats fields (wall-clock telemetry excluded).
void check_stats(const clique::TrafficStats& got,
                 const clique::TrafficStats& want, int rank) {
  check_i64(got.rounds, want.rounds, "rounds", rank);
  check_i64(got.bound_rounds, want.bound_rounds, "bound_rounds", rank);
  check_i64(got.supersteps, want.supersteps, "supersteps", rank);
  check_i64(got.total_words, want.total_words, "total_words", rank);
  check_i64(got.max_node_send, want.max_node_send, "max_node_send", rank);
  check_i64(got.max_node_recv, want.max_node_recv, "max_node_recv", rank);
  check_i64(got.schedule_hits, want.schedule_hits, "schedule_hits", rank);
  check_i64(got.schedule_misses, want.schedule_misses, "schedule_misses",
            rank);
}

void check_owned_rows(const Matrix<std::int64_t>& got,
                      const Matrix<std::int64_t>& want,
                      clique::NodeSpan own, int rank, const char* what) {
  const int rows = std::min(own.end, got.rows());
  for (int u = own.begin; u < rows; ++u)
    for (int v = 0; v < got.cols(); ++v)
      if (got(u, v) != want(u, v)) {
        std::fprintf(stderr,
                     "cca_node[rank %d]: MISMATCH: %s(%d,%d): sharded %lld "
                     "vs oracle %lld\n",
                     rank, what, u, v, static_cast<long long>(got(u, v)),
                     static_cast<long long>(want(u, v)));
        ++g_failures;
        return;
      }
}

/// mm / mm_sparse: explicit Network at clique size n.
void run_mm(const Options& o, bool sparse,
            const std::shared_ptr<clique::SocketMesh>& mesh) {
  const IntRing ring;
  const I64Codec codec;
  const auto a = sparse ? random_sparse_matrix(o.n, 2 * o.n, o.seed)
                        : random_matrix(o.n, o.seed);
  const auto b = sparse ? random_sparse_matrix(o.n, 2 * o.n, o.seed + 1)
                        : random_matrix(o.n, o.seed + 1);

  // Oracle: single-process arena, no ambient scope.
  clique::Network oracle_net(o.n);
  const auto oracle = sparse
                          ? mm_semiring_sparse(oracle_net, ring, codec, a, b)
                          : mm_semiring_3d(oracle_net, ring, codec, a, b);

  // Sharded run over the mesh.
  clique::TransportScope scope(clique::SocketTransport::factory(mesh));
  clique::Network net(o.n);
  const auto got = sparse ? mm_semiring_sparse(net, ring, codec, a, b)
                          : mm_semiring_3d(net, ring, codec, a, b);

  check_owned_rows(got, oracle, net.owned(), o.rank, "product");
  check_stats(net.stats(), oracle_net.stats(), o.rank);
}

/// apsp: the Network is constructed INSIDE apsp_semiring — exactly the
/// path TransportScope exists for. Sharded runs must fix the 3D engine.
void run_apsp(const Options& o,
              const std::shared_ptr<clique::SocketMesh>& mesh) {
  const auto g = random_weighted_graph(o.n, 0.35, 1, 50, o.seed);
  const auto oracle = apsp_semiring(g, MmKind::Semiring3D);

  clique::TransportScope scope(clique::SocketTransport::factory(mesh));
  const auto got = apsp_semiring(g, MmKind::Semiring3D);

  const auto own = clique::shard_span(semiring_clique_size(o.n), o.nprocs,
                                      o.rank);
  check_owned_rows(got.dist, oracle.dist, own, o.rank, "dist");
  check_stats(got.traffic, oracle.traffic, o.rank);
}

/// triangles: single-count workload; the count is derived from a synced
/// broadcast, so every rank must hold the oracle's exact value.
void run_triangles(const Options& o,
                   const std::shared_ptr<clique::SocketMesh>& mesh) {
  const auto g = gnp_random_graph(o.n, 0.4, o.seed);
  const auto oracle = count_triangles_cc(g, MmKind::Semiring3D);

  clique::TransportScope scope(clique::SocketTransport::factory(mesh));
  const auto got = count_triangles_cc(g, MmKind::Semiring3D);

  check_i64(got.count, oracle.count, "triangle count", o.rank);
  check_stats(got.traffic, oracle.traffic, o.rank);
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  try {
    const auto mesh =
        clique::SocketMesh::connect_tcp(o.rank, o.nprocs, o.port_base);
    if (o.workload == "mm")
      run_mm(o, /*sparse=*/false, mesh);
    else if (o.workload == "mm_sparse")
      run_mm(o, /*sparse=*/true, mesh);
    else if (o.workload == "apsp")
      run_apsp(o, mesh);
    else if (o.workload == "triangles")
      run_triangles(o, mesh);
    else
      usage_fail("unknown --workload");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cca_node[rank %d]: FATAL: %s\n", o.rank, e.what());
    return 3;
  }
  if (g_failures > 0) {
    std::fprintf(stderr, "cca_node[rank %d]: FAILED (%d mismatches)\n",
                 o.rank, g_failures);
    return 1;
  }
  std::printf("cca_node[rank %d]: OK (%s n=%d P=%d)\n", o.rank,
              o.workload.c_str(), o.n, o.nprocs);
  return 0;
}
