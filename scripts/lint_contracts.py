#!/usr/bin/env python3
"""Repo-specific contract linter for the congested-clique simulator.

Statically enforces the data-plane contracts that util/analysis.hpp checks
at runtime, plus a few hygiene rules the general-purpose tools don't know
about. Rules (suppress a finding with `// lint:allow(<rule>): reason` on
the offending line or the line above):

  deliver-in-parallel   deliver()/discard_staged() called inside a
                        cca::parallel_for lambda. Phase changes are
                        single-threaded by contract (network.hpp).
  parallel-staging-src  send/send_words/stage inside a parallel_for lambda
                        whose source argument is not the lambda's own
                        induction parameter. The staging contract allows
                        one distinct src per iteration; anything else needs
                        a human to certify per-iteration src disjointness.
  stale-inbox-span      a span variable bound to inbox() and used after a
                        later deliver() in the same scope. Inbox views die
                        at deliver() (StaleInboxSpan at runtime).
  semiring-zero-test    a semiring implementation (zero/one/add/mul) with
                        no reference to the zero contract or its audit
                        tests. Engines skip zero() entries wholesale, so
                        every semiring must document/test absorption.
  header-hygiene        missing #pragma once in a header, `using namespace
                        std`, or a .cpp that does not include its own
                        header first (catches headers that only compile
                        because of include order).

Multi-process rules (the sharded data plane, clique/socket_transport.hpp):

  full-range-staging    a parallel_for in src/ that iterates the FULL node
                        range (literal 0 lower bound) and stages from its
                        induction variable. Under a sharded transport only
                        OWNED sources may stage (Network asserts owns(src));
                        engine loops must walk net.owned(), or the site must
                        be owns_all()-guarded and carry an allow tag.
  transport-deliver     deliver()/discard_staged() invoked directly on a
                        Transport object outside clique/network.cpp and the
                        transport implementations. Worker-rank code must go
                        through Network::deliver() — that IS the exchange
                        barrier; calling the backend directly would run the
                        socket exchange without charging rounds.
  inbox-span-exchange   a raw span variable bound to inbox() in src/ engine
                        code where the same scope later delivers. Identical
                        detection to stale-inbox-span, but reported even
                        when the use precedes the deliver: under sockets
                        the exchange rewrites the arena, so spans held
                        across ANY exchange in scope should migrate to
                        analysis::InboxLease (generation-checked on every
                        access) rather than rely on use-before-deliver
                        ordering.

Exit status: 0 when clean, 1 when any unsuppressed finding remains.
`--fix-list` prints one clickable `file:line: rule` per finding.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCAN_DIRS = ("src", "tests", "bench", "examples")

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
LAMBDA_RE = re.compile(
    r"\[[^\]\n]*\]\s*\(\s*(?:const\s+)?[\w:<>]+(?:\s*[&*])?(?:\s+(\w+))?\s*\)"
)
PHASE_RE = re.compile(r"(?:\.|->)\s*(deliver|discard_staged)\s*\(")
STAGE_RE = re.compile(r"(?:\.|->)\s*(send_words|send|stage)\s*\(")
INBOX_BIND_RE = re.compile(
    r"(?:auto|std::span<[^;>]*>)\s*(?:const\s*)?&?\s*(\w+)\s*=\s*"
    r"[\w.\->]+(?:\.|->)inbox\s*\("
)
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\s*$", re.MULTILINE)
USING_STD_RE = re.compile(r"^\s*using\s+namespace\s+std\s*;")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
ZERO_CONTRACT_RE = re.compile(r"zero[\s-]contract|ZeroSkipAudit", re.IGNORECASE)


class Finding:
    def __init__(self, path: Path, line: int, rule: str, msg: str):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.msg = msg

    def location(self) -> str:
        return f"{self.path.relative_to(REPO)}:{self.line}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving offsets so
    line numbers computed against the stripped text match the original."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            q, j = c, i + 1
            while j < n and text[j] != q:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (q if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def match_brace(text: str, open_idx: int) -> int:
    """Index one past the brace matching text[open_idx] == '{' (len(text)
    when unbalanced)."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def allowed(lines: list[str], lineno: int, rule: str) -> bool:
    for candidate in (lineno, lineno - 1):
        if 1 <= candidate <= len(lines):
            m = ALLOW_RE.search(lines[candidate - 1])
            if m and rule in [r.strip() for r in m.group(1).split(",")]:
                return True
    return False


def first_argument(code: str, call_open: int) -> str:
    """The first argument of the call whose '(' sits at call_open."""
    depth, i = 0, call_open
    start = call_open + 1
    while i < len(code):
        c = code[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                return code[start:i].strip()
        elif c == "," and depth == 1:
            return code[start:i].strip()
        i += 1
    return ""


def lint_parallel_regions(path: Path, raw: str, code: str,
                          lines: list[str]) -> list[Finding]:
    findings = []
    for m in re.finditer(r"\bparallel_for\s*\(", code):
        # The lambda belongs to THIS call: only look inside a short window,
        # or an unmatchable signature would silently latch onto the next
        # lambda in the file.
        lam = LAMBDA_RE.search(code, m.end(), m.end() + 200)
        if not lam:
            continue
        body_open = code.find("{", lam.end())
        if body_open < 0:
            continue
        body_end = match_brace(code, body_open)
        body = code[body_open:body_end]
        induction = lam.group(1)
        for pm in PHASE_RE.finditer(body):
            ln = line_of(code, body_open + pm.start())
            if not allowed(lines, ln, "deliver-in-parallel"):
                findings.append(Finding(
                    path, ln, "deliver-in-parallel",
                    f"{pm.group(1)}() inside a parallel_for lambda; phase "
                    "changes must run on the serial thread"))
        for sm in STAGE_RE.finditer(body):
            call_open = body.index("(", sm.end() - 1)
            src_arg = first_argument(body, call_open)
            if induction is not None and src_arg == induction:
                continue
            ln = line_of(code, body_open + sm.start())
            if not allowed(lines, ln, "parallel-staging-src"):
                findings.append(Finding(
                    path, ln, "parallel-staging-src",
                    f"{sm.group(1)}() src argument '{src_arg}' is not the "
                    f"parallel_for induction variable '{induction}'; "
                    "certify per-iteration src disjointness with "
                    "lint:allow(parallel-staging-src) or restructure"))
        _ = raw
    return findings


def lint_stale_inbox(path: Path, code: str, lines: list[str]) -> list[Finding]:
    findings = []
    for m in INBOX_BIND_RE.finditer(code):
        var = m.group(1)
        decl_end = m.end()
        # The innermost scope: walk forward until braces close below the
        # declaration's depth.
        depth, i, scope_end = 0, decl_end, len(code)
        while i < len(code):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth < 0:
                    scope_end = i
                    break
            i += 1
        scope = code[decl_end:scope_end]
        dm = re.search(r"(?:\.|->)\s*deliver\s*\(", scope)
        if not dm:
            continue
        after = scope[dm.end():]
        um = re.search(r"\b%s\b" % re.escape(var), after)
        if not um:
            continue
        ln = line_of(code, decl_end + dm.end() + um.start())
        if not allowed(lines, ln, "stale-inbox-span"):
            findings.append(Finding(
                path, ln, "stale-inbox-span",
                f"inbox view '{var}' used after a deliver() in the same "
                "scope; inbox spans die at deliver() "
                "(analysis::InboxLease faults this at runtime)"))
    return findings


def lint_semirings(path: Path, raw: str, code: str,
                   lines: list[str]) -> list[Finding]:
    findings = []
    for m in re.finditer(r"\b(?:struct|class)\s+(\w+)\s*(?:final\s*)?{", code):
        body_end = match_brace(code, code.index("{", m.start()))
        body = code[m.start():body_end]
        if not all(re.search(p, body) for p in
                   (r"\bzero\s*\(", r"\bone\s*\(", r"\badd\s*\(",
                    r"\bmul\s*\(")):
            continue
        ln = line_of(code, m.start())
        # The reference may live in the doc comment above the struct or
        # inside it — check the raw text of the struct span plus the
        # preceding 15 lines.
        lo = max(0, ln - 16)
        hi = line_of(code, body_end)
        context = "\n".join(lines[lo:hi])
        if ZERO_CONTRACT_RE.search(context):
            continue
        if not allowed(lines, ln, "semiring-zero-test"):
            findings.append(Finding(
                path, ln, "semiring-zero-test",
                f"semiring '{m.group(1)}' has no zero-contract reference; "
                "engines skip zero() entries wholesale — document the "
                "absorption law and point at its audit test "
                "(see matrix/semiring.hpp, tests/test_matrix.cpp "
                "ZeroSkipAudit)"))
        _ = raw
    return findings


# Transport implementations and the accounting layer legitimately drive the
# backend phase ops; everyone else must go through Network (the exchange
# barrier, where rounds are charged).
TRANSPORT_PHASE_EXEMPT = {
    Path("src/clique/network.cpp"),
    Path("src/clique/network.hpp"),
    Path("src/clique/transport.cpp"),
    Path("src/clique/transport.hpp"),
    Path("src/clique/socket_transport.cpp"),
    Path("src/clique/socket_transport.hpp"),
}

TRANSPORT_PHASE_RE = re.compile(
    r"\b(\w*transport\w*)\s*(?:\.|->)\s*(deliver|discard_staged)\s*\(",
    re.IGNORECASE,
)


def lint_multiproc(path: Path, code: str, lines: list[str]) -> list[Finding]:
    findings = []
    rel = path.relative_to(REPO)
    if rel.parts[0] != "src":
        return findings

    # full-range-staging: a full-node-range parallel loop that stages from
    # its induction variable stages from sources this rank may not own.
    for m in re.finditer(r"\bparallel_for\s*\(\s*0\s*,", code):
        lam = LAMBDA_RE.search(code, m.end(), m.end() + 200)
        if not lam:
            continue
        body_open = code.find("{", lam.end())
        if body_open < 0:
            continue
        body = code[body_open:match_brace(code, body_open)]
        induction = lam.group(1)
        for sm in STAGE_RE.finditer(body):
            call_open = body.index("(", sm.end() - 1)
            if first_argument(body, call_open) != induction:
                continue  # parallel-staging-src owns the mismatched case
            ln = line_of(code, body_open + sm.start())
            if not allowed(lines, ln, "full-range-staging"):
                findings.append(Finding(
                    path, ln, "full-range-staging",
                    f"{sm.group(1)}() from induction variable "
                    f"'{induction}' of a FULL-range parallel_for; sharded "
                    "transports reject non-owned sources — iterate "
                    "net.owned(), or guard the call path with owns_all() "
                    "and certify with lint:allow(full-range-staging)"))
            break  # one finding per loop is enough

    # transport-deliver: phase ops belong to Network, not call sites.
    if rel not in TRANSPORT_PHASE_EXEMPT:
        for m in TRANSPORT_PHASE_RE.finditer(code):
            ln = line_of(code, m.start())
            if not allowed(lines, ln, "transport-deliver"):
                findings.append(Finding(
                    path, ln, "transport-deliver",
                    f"{m.group(2)}() called directly on '{m.group(1)}'; "
                    "worker code must use Network::deliver() — the exchange "
                    "barrier that also charges rounds"))

    # inbox-span-exchange: a raw inbox span whose innermost scope later
    # delivers should be an analysis::InboxLease (generation-checked), even
    # if every current use happens before the exchange.
    for m in INBOX_BIND_RE.finditer(code):
        var = m.group(1)
        decl_end = m.end()
        depth, i, scope_end = 0, decl_end, len(code)
        while i < len(code):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth < 0:
                    scope_end = i
                    break
            i += 1
        scope = code[decl_end:scope_end]
        dm = re.search(r"(?:\.|->)\s*deliver\s*\(", scope)
        if not dm:
            continue
        if re.search(r"\b%s\b" % re.escape(var), scope[dm.end():]):
            continue  # stale-inbox-span reports the use-after-deliver case
        ln = line_of(code, m.start())
        if not allowed(lines, ln, "inbox-span-exchange"):
            findings.append(Finding(
                path, ln, "inbox-span-exchange",
                f"raw inbox span '{var}' held in a scope that later "
                "delivers; under the socket backend the exchange rewrites "
                "the arena — use analysis::InboxLease so every access is "
                "generation-checked"))
    return findings


def lint_header_hygiene(path: Path, raw: str, code: str,
                        lines: list[str]) -> list[Finding]:
    findings = []
    rel = path.relative_to(REPO)
    if path.suffix == ".hpp" and not PRAGMA_ONCE_RE.search(raw):
        findings.append(Finding(path, 1, "header-hygiene",
                                "header is missing #pragma once"))
    for i, text in enumerate(code.splitlines(), start=1):
        if USING_STD_RE.match(text) and not allowed(lines, i, "header-hygiene"):
            findings.append(Finding(path, i, "header-hygiene",
                                    "`using namespace std` is banned"))
    if path.suffix == ".cpp" and rel.parts[0] == "src":
        own = path.with_suffix(".hpp")
        if own.exists():
            own_rel = str(own.relative_to(REPO / "src"))
            # Include paths live inside string literals, which the stripped
            # text blanks — match against the raw lines.
            for i, text in enumerate(lines, start=1):
                m = INCLUDE_RE.match(text)
                if not m:
                    continue
                if m.group(1) != own_rel and not allowed(lines, i,
                                                         "header-hygiene"):
                    findings.append(Finding(
                        path, i, "header-hygiene",
                        f'first project include must be "{own_rel}" (the '
                        "self-include-first rule keeps headers "
                        "self-contained)"))
                break
    return findings


def lint_file(path: Path) -> list[Finding]:
    raw = path.read_text(encoding="utf-8")
    code = strip_comments_and_strings(raw)
    lines = raw.splitlines()
    findings = []
    findings += lint_parallel_regions(path, raw, code, lines)
    findings += lint_multiproc(path, code, lines)
    findings += lint_stale_inbox(path, code, lines)
    findings += lint_semirings(path, raw, code, lines)
    findings += lint_header_hygiene(path, raw, code, lines)
    return findings


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", type=Path,
                    help="files to lint (default: src tests bench examples)")
    ap.add_argument("--fix-list", action="store_true",
                    help="print one clickable file:line per finding")
    args = ap.parse_args()

    if args.paths:
        files = [p.resolve() for p in args.paths]
    else:
        files = sorted(
            f for d in SCAN_DIRS
            for f in (REPO / d).rglob("*")
            if f.suffix in (".hpp", ".cpp") and (REPO / d).exists()
        )

    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f))

    if args.fix_list:
        for f in findings:
            print(f"{f.location()}: {f.rule}")
    else:
        for f in findings:
            print(f"{f.location()}: [{f.rule}] {f.msg}")
        print(f"lint_contracts: {len(findings)} finding(s) in "
              f"{len(files)} file(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
