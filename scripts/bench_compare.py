#!/usr/bin/env python3
"""Baseline-comparison gate for the BENCH_*.json perf records.

Usage: bench_compare.py BASELINE FRESH [--wall-tolerance FACTOR]

Compares a freshly measured bench JSON (CI smoke run) against the committed
baseline (full run from the last PR that touched perf). Rows are matched on
(label, clique_n); rows present in only one file are reported but do not
fail the gate (smoke runs measure a subset of the full sweep, and new
benchmarks have no baseline yet).

Gates:
  * rounds must be EXACTLY equal. Round counts come from the simulator's
    deterministic schedule accounting, so any drift means an algorithm or
    router change that must be re-baselined deliberately (by committing the
    regenerated BENCH json in the same PR).
  * wall_ns_per_op may be at most FACTOR times the baseline (default 5.0 —
    generous because CI machines are slower and noisier than the machine
    that wrote the baseline; the gate exists to catch catastrophic
    wall-clock regressions, not percent-level ones). Rows whose baseline
    wall is below --wall-floor-ms (default 10 ms) are exempt: they are
    timed as a single shot, where one scheduler hiccup swamps the signal.

Exit status: 0 when every matched row passes, 1 otherwise.
"""

import argparse
import json
import sys


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    return {(r["label"], r["clique_n"]): r for r in doc.get("rows", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--wall-tolerance", type=float, default=5.0,
                    help="max allowed fresh/baseline wall-clock ratio")
    ap.add_argument("--wall-floor-ms", type=float, default=10.0,
                    help="skip the wall gate when the baseline is below this "
                         "(single-shot sub-10ms timings are scheduler noise)")
    args = ap.parse_args()

    base = load_rows(args.baseline)
    fresh = load_rows(args.fresh)

    matched = sorted(set(base) & set(fresh))
    only_base = sorted(set(base) - set(fresh))
    only_fresh = sorted(set(fresh) - set(base))
    failures = []

    for key in matched:
        b, f = base[key], fresh[key]
        label = f"{key[0]} (clique_n={key[1]})"
        row_ok = True
        if b["rounds"] != f["rounds"]:
            row_ok = False
            failures.append(
                f"ROUNDS DRIFT {label}: baseline {b['rounds']} != fresh "
                f"{f['rounds']} — round accounting is deterministic; "
                f"re-baseline deliberately if the algorithm changed")
        ratio = None
        if b["wall_ns_per_op"] > args.wall_floor_ms * 1e6:
            ratio = f["wall_ns_per_op"] / b["wall_ns_per_op"]
            if ratio > args.wall_tolerance:
                row_ok = False
                failures.append(
                    f"WALL REGRESSION {label}: {ratio:.2f}x baseline "
                    f"({b['wall_ns_per_op'] / 1e6:.1f} ms -> "
                    f"{f['wall_ns_per_op'] / 1e6:.1f} ms, tolerance "
                    f"{args.wall_tolerance:.1f}x)")
        if row_ok:
            wall = (f"wall {ratio:.2f}x baseline" if ratio is not None
                    else "wall not gated (baseline below floor)")
            print(f"ok {label}: rounds {f['rounds']}, {wall}")

    for key in only_fresh:
        print(f"note: no baseline for {key[0]} (clique_n={key[1]}) — "
              f"new benchmark, not gated")
    for key in only_base:
        print(f"note: baseline row {key[0]} (clique_n={key[1]}) not "
              f"measured in this run")

    if not matched:
        failures.append("no rows matched between baseline and fresh run")

    if failures:
        print("\n".join("FAIL " + f for f in failures), file=sys.stderr)
        return 1
    print(f"bench gate passed: {len(matched)} rows compared")
    return 0


if __name__ == "__main__":
    sys.exit(main())
