#!/usr/bin/env python3
"""Fork/exec launcher for multi-process clique runs.

Spawns P ranks of the self-checking `cca_node` worker (tools/cca_node.cpp)
with identical workload arguments, wires them together over a localhost TCP
mesh (rank r listens on port_base + r; lower ranks dial higher ranks), waits
for all of them, and reports pass/fail. Each rank independently cross-checks
its sharded run against a single-process in-process oracle — bit-identical
owned result rows AND bit-identical deterministic TrafficStats — so a green
launcher run is a full distributed-correctness check, not just "it didn't
crash".

Usage:
  scripts/run_cluster.py --nprocs 4 --workload mm --n 27 [--seed 7]
  scripts/run_cluster.py --nprocs 2 --workload apsp --n 8 \
      --binary build/cca_node
"""

import argparse
import os
import socket
import subprocess
import sys


def find_binary(explicit):
    if explicit:
        if not os.path.isfile(explicit):
            sys.exit(f"run_cluster: binary not found: {explicit}")
        return explicit
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    candidates = [
        os.path.join(root, d, "cca_node")
        for d in ("build", "build-asan", "build-tsan")
    ]
    for c in candidates:
        if os.path.isfile(c):
            return c
    sys.exit(
        "run_cluster: no cca_node binary found (looked in build*/); "
        "build it with `cmake --build build --target cca_node` or pass "
        "--binary"
    )


def free_port_base(nprocs):
    """Reserve nprocs consecutive ports by binding them all, then release.

    There is an inherent race between releasing and the ranks re-binding,
    but the ranks retry nothing on bind (fail fast), so collisions surface
    as an immediate clean failure rather than a hang.
    """
    for base in range(20000, 60000, max(nprocs, 16)):
        socks = []
        try:
            for r in range(nprocs):
                s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                s.bind(("127.0.0.1", base + r))
                socks.append(s)
            return base
        except OSError:
            continue
        finally:
            for s in socks:
                s.close()
    sys.exit("run_cluster: no free port range found")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--nprocs", type=int, required=True, help="rank count P")
    ap.add_argument(
        "--workload",
        required=True,
        choices=[
            "mm",
            "mm_sparse",
            "apsp",
            "apsp_auto",
            "apsp_batch",
            "seidel",
            "witness",
            "triangles",
            "fault_mix",
        ],
    )
    ap.add_argument("--n", type=int, required=True, help="clique size n")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--port-base", type=int, default=0,
                    help="first listen port (default: auto-pick a free range)")
    ap.add_argument("--binary", default=None,
                    help="path to cca_node (default: search build*/)")
    ap.add_argument("--timeout", type=float, default=120.0,
                    help="per-run wall clock limit in seconds")
    args = ap.parse_args()

    if args.nprocs < 1:
        sys.exit("run_cluster: --nprocs must be >= 1")
    if args.nprocs > args.n:
        sys.exit(
            f"run_cluster: P={args.nprocs} ranks need P <= n={args.n} "
            "(every rank must own at least one node)"
        )

    binary = find_binary(args.binary)
    port_base = args.port_base or free_port_base(args.nprocs)

    procs = []
    for rank in range(args.nprocs):
        cmd = [
            binary,
            "--rank", str(rank),
            "--nprocs", str(args.nprocs),
            "--port-base", str(port_base),
            "--workload", args.workload,
            "--n", str(args.n),
            "--seed", str(args.seed),
        ]
        # Capture stderr so a failing rank's diagnostics (mismatch reports,
        # typed ownership errors) can be surfaced with its exit status
        # instead of interleaving silently with the other ranks.
        procs.append(subprocess.Popen(cmd, stderr=subprocess.PIPE, text=True))

    def reap_all():
        for p in procs:
            if p.poll() is None:
                p.kill()
        for p in procs:
            try:
                p.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                pass

    failed = []
    try:
        for rank, p in enumerate(procs):
            try:
                _, err = p.communicate(timeout=args.timeout)
            except subprocess.TimeoutExpired:
                reap_all()
                sys.exit(
                    f"run_cluster: TIMEOUT after {args.timeout:.0f}s "
                    f"(workload={args.workload} n={args.n} P={args.nprocs})"
                )
            if p.returncode != 0:
                failed.append((rank, p.returncode))
                if err:
                    sys.stderr.write(
                        f"--- rank {rank} stderr (exit {p.returncode}) ---\n"
                    )
                    sys.stderr.write(err)
    except KeyboardInterrupt:
        # ^C mid-run: kill and reap every straggler child so no rank is
        # left holding its listen port or spinning in the mesh handshake.
        reap_all()
        sys.exit(
            f"run_cluster: interrupted (workload={args.workload} "
            f"n={args.n} P={args.nprocs}); all ranks reaped"
        )

    if failed:
        detail = ", ".join(f"rank {r} exit {rc}" for r, rc in failed)
        print(
            f"run_cluster: FAILED ({detail}) workload={args.workload} "
            f"n={args.n} P={args.nprocs}",
            file=sys.stderr,
        )
        sys.exit(1)
    print(
        f"run_cluster: PASS workload={args.workload} n={args.n} "
        f"P={args.nprocs} port_base={port_base}"
    )


if __name__ == "__main__":
    main()
