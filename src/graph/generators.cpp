#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace cca {

Graph gnp_random_graph(int n, double p, std::uint64_t seed, bool directed) {
  CCA_VALIDATE(p >= 0.0 && p <= 1.0, "edge probability p must lie in [0, 1]");
  Rng rng(seed);
  auto g = directed ? Graph::directed(n) : Graph::undirected(n);
  for (int u = 0; u < n; ++u)
    for (int v = directed ? 0 : u + 1; v < n; ++v) {
      if (u == v) continue;
      if (rng.next_double() < p) g.add_edge(u, v);
    }
  return g;
}

Graph random_weighted_graph(int n, double p, std::int64_t min_w,
                            std::int64_t max_w, std::uint64_t seed,
                            bool directed) {
  CCA_VALIDATE(p >= 0.0 && p <= 1.0, "edge probability p must lie in [0, 1]");
  CCA_VALIDATE(min_w <= max_w, "weight range requires min_w <= max_w");
  Rng rng(seed);
  auto g = directed ? Graph::directed(n) : Graph::undirected(n);
  for (int u = 0; u < n; ++u)
    for (int v = directed ? 0 : u + 1; v < n; ++v) {
      if (u == v) continue;
      if (rng.next_double() < p) g.add_edge(u, v, rng.next_in(min_w, max_w));
    }
  return g;
}

Graph random_weighted_dag(int n, double p, std::int64_t min_w,
                          std::int64_t max_w, std::uint64_t seed) {
  CCA_VALIDATE(p >= 0.0 && p <= 1.0, "edge probability p must lie in [0, 1]");
  CCA_VALIDATE(min_w <= max_w, "weight range requires min_w <= max_w");
  Rng rng(seed);
  auto g = Graph::directed(n);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (rng.next_double() < p) g.add_edge(u, v, rng.next_in(min_w, max_w));
  return g;
}

Graph cycle_graph(int n, bool directed) {
  CCA_VALIDATE(n >= (directed ? 2 : 3),
               "cycle needs >= 2 (directed) or >= 3 (undirected) nodes");
  auto g = directed ? Graph::directed(n) : Graph::undirected(n);
  for (int v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  return g;
}

Graph path_graph(int n, bool directed) {
  auto g = directed ? Graph::directed(n) : Graph::undirected(n);
  for (int v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph complete_graph(int n) {
  auto g = Graph::undirected(n);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

Graph complete_bipartite(int a, int b) {
  auto g = Graph::undirected(a + b);
  for (int u = 0; u < a; ++u)
    for (int v = 0; v < b; ++v) g.add_edge(u, a + v);
  return g;
}

Graph petersen_graph() {
  auto g = Graph::undirected(10);
  // Outer 5-cycle, inner pentagram, spokes.
  for (int v = 0; v < 5; ++v) {
    g.add_edge(v, (v + 1) % 5);
    g.add_edge(5 + v, 5 + (v + 2) % 5);
    g.add_edge(v, 5 + v);
  }
  return g;
}

Graph grid_graph(int a, int b) {
  CCA_VALIDATE(a >= 1 && b >= 1, "grid dimensions must be >= 1");
  auto g = Graph::undirected(a * b);
  auto id = [b](int i, int j) { return i * b + j; };
  for (int i = 0; i < a; ++i)
    for (int j = 0; j < b; ++j) {
      if (i + 1 < a) g.add_edge(id(i, j), id(i + 1, j));
      if (j + 1 < b) g.add_edge(id(i, j), id(i, j + 1));
    }
  return g;
}

Graph random_sparse_graph(int n, std::int64_t m, std::uint64_t seed) {
  CCA_VALIDATE(n >= 0, "graph size n must be >= 0");
  const std::int64_t max_m = static_cast<std::int64_t>(n) * (n - 1) / 2;
  CCA_VALIDATE(m >= 0 && m <= max_m,
               "edge count m must lie in [0, n*(n-1)/2]");
  Rng rng(seed);
  auto g = Graph::undirected(n);
  // Dense targets invert the sampling (pick the complement) so the loop
  // stays expected O(m) draws either way.
  if (2 * m <= max_m) {
    while (g.num_edges() < m) {
      const int u = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      const int v = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      if (u == v || g.has_arc(u, v)) continue;
      g.add_edge(u, v);
    }
    return g;
  }
  while (g.num_edges() < max_m - m) {  // sample the complement's edges
    const int u = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    const int v = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v || g.has_arc(u, v)) continue;
    g.add_edge(u, v);
  }
  auto inverted = Graph::undirected(n);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (!g.has_arc(u, v)) inverted.add_edge(u, v);
  return inverted;
}

Graph power_law_graph(int n, std::int64_t m_target, double alpha,
                      std::uint64_t seed) {
  CCA_VALIDATE(n >= 0 && m_target >= 0, "n and m_target must be >= 0");
  CCA_VALIDATE(alpha > 2.0, "power-law exponent alpha must be > 2");
  Rng rng(seed);
  auto g = Graph::undirected(n);
  if (n < 2 || m_target == 0) return g;
  // Chung–Lu weights w_i = (i+1)^{-1/(alpha-1)}, scaled so sum_i w_i = 2m.
  std::vector<double> w(static_cast<std::size_t>(n));
  double sum = 0.0;
  const double exponent = -1.0 / (alpha - 1.0);
  for (int i = 0; i < n; ++i) {
    w[static_cast<std::size_t>(i)] = std::pow(static_cast<double>(i + 1), exponent);
    sum += w[static_cast<std::size_t>(i)];
  }
  const double scale = 2.0 * static_cast<double>(m_target) / sum;
  for (auto& x : w) x *= scale;
  const double total = 2.0 * static_cast<double>(m_target);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) {
      const double p = std::min(
          1.0, w[static_cast<std::size_t>(u)] * w[static_cast<std::size_t>(v)] /
                   total);
      if (rng.next_double() < p) g.add_edge(u, v);
    }
  return g;
}

Graph planted_cycle_graph(int n, int k, double noise_p, std::uint64_t seed,
                          bool directed) {
  CCA_VALIDATE(k >= (directed ? 2 : 3) && k <= n,
               "planted cycle length k must fit the graph");
  Rng rng(seed);
  auto g = gnp_random_graph(n, noise_p, rng.next(), directed);
  std::vector<int> nodes(static_cast<std::size_t>(n));
  std::iota(nodes.begin(), nodes.end(), 0);
  rng.shuffle(nodes);
  for (int i = 0; i < k; ++i)
    g.add_edge(nodes[static_cast<std::size_t>(i)],
               nodes[static_cast<std::size_t>((i + 1) % k)]);
  return g;
}

Graph random_bipartite_graph(int half, double p, std::uint64_t seed) {
  Rng rng(seed);
  auto g = Graph::undirected(2 * half);
  for (int u = 0; u < half; ++u)
    for (int v = 0; v < half; ++v)
      if (rng.next_double() < p) g.add_edge(u, half + v);
  return g;
}

Graph binary_tree(int n) {
  auto g = Graph::undirected(n);
  for (int v = 1; v < n; ++v) g.add_edge(v, (v - 1) / 2);
  return g;
}

}  // namespace cca
