// Centralized (single-machine) reference algorithms.
//
// Every distributed algorithm in src/core/ is validated against these
// classical implementations. They are deliberately written with different
// techniques than the distributed versions (e.g. Floyd–Warshall vs iterated
// squaring, codegree counting vs trace formulas) so that agreement is
// meaningful evidence of correctness.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "matrix/matrix.hpp"

namespace cca {

/// All-pairs shortest path distances by Floyd–Warshall.
/// Unreachable pairs hold MinPlusSemiring::kInf. Negative arc weights are
/// allowed as long as the graph has no negative cycle (checked; violations
/// abort). Diagonal entries are 0.
[[nodiscard]] Matrix<std::int64_t> ref_apsp(const Graph& g);

/// Unweighted all-pairs distances by n breadth-first searches.
[[nodiscard]] Matrix<std::int64_t> ref_bfs_apsp(const Graph& g);

/// Number of triangles: 3-cliques for undirected graphs, directed 3-cycles
/// for directed graphs.
[[nodiscard]] std::int64_t ref_count_triangles(const Graph& g);

/// Number of (simple) 4-cycles. Undirected graphs use codegree counting;
/// directed graphs use bounded enumeration.
[[nodiscard]] std::int64_t ref_count_4cycles(const Graph& g);

/// Existence of a simple k-cycle (directed cycle for directed graphs).
/// Exponential-time DFS enumeration; intended for test-sized graphs.
[[nodiscard]] bool ref_has_k_cycle(const Graph& g, int k);

/// Number of simple 5-cycles of an undirected graph, by path enumeration
/// with a minimum-vertex representative; intended for test-sized graphs.
[[nodiscard]] std::int64_t ref_count_5cycles(const Graph& g);

/// Girth: length of the shortest cycle (shortest directed cycle for directed
/// graphs); MinPlusSemiring::kInf if the graph is acyclic.
[[nodiscard]] std::int64_t ref_girth(const Graph& g);

/// Largest finite shortest-path distance over reachable pairs (the weighted
/// diameter restricted to reachable pairs; 0 for an edgeless graph).
[[nodiscard]] std::int64_t ref_weighted_diameter(const Graph& g);

}  // namespace cca
