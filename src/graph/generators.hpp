// Graph generators for tests, examples, and benchmarks.
//
// All generators are deterministic functions of their seed. Several produce
// graphs with a known structural property (exact girth, planted k-cycle) so
// that the distributed algorithms can be validated without trusting any
// reference implementation.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace cca {

/// Erdos–Renyi G(n, p); `directed` picks arcs independently per ordered pair.
[[nodiscard]] Graph gnp_random_graph(int n, double p, std::uint64_t seed,
                                     bool directed = false);

/// G(n, p) with independent uniform integer weights in [min_w, max_w].
[[nodiscard]] Graph random_weighted_graph(int n, double p,
                                          std::int64_t min_w,
                                          std::int64_t max_w,
                                          std::uint64_t seed,
                                          bool directed = false);

/// Random DAG (arcs only from lower to higher index) with weights in
/// [min_w, max_w]; min_w may be negative — a DAG has no cycles, so shortest
/// paths remain well defined (used to exercise Corollary 6's negative
/// weights).
[[nodiscard]] Graph random_weighted_dag(int n, double p, std::int64_t min_w,
                                        std::int64_t max_w,
                                        std::uint64_t seed);

/// Simple cycle 0-1-...-(n-1)-0; directed variant orients it one way.
[[nodiscard]] Graph cycle_graph(int n, bool directed = false);

/// Simple path 0-1-...-(n-1).
[[nodiscard]] Graph path_graph(int n, bool directed = false);

/// Complete graph K_n (girth 3 for n >= 3).
[[nodiscard]] Graph complete_graph(int n);

/// Complete bipartite graph K_{a,b} (girth 4 when a, b >= 2).
[[nodiscard]] Graph complete_bipartite(int a, int b);

/// The Petersen graph (n = 10, girth 5).
[[nodiscard]] Graph petersen_graph();

/// a x b grid graph (girth 4 when a, b >= 2).
[[nodiscard]] Graph grid_graph(int a, int b);

/// Uniform random undirected graph with EXACTLY m edges (G(n, m)): the
/// sparse-workload generator — edge count, not probability, is the knob the
/// sparsity-sensitive engines dispatch on. Requires 0 <= m <= n(n-1)/2.
[[nodiscard]] Graph random_sparse_graph(int n, std::int64_t m,
                                        std::uint64_t seed);

/// Chung–Lu power-law graph: expected node degrees proportional to
/// (i+1)^{-1/(alpha-1)} (degree exponent alpha > 2), scaled so the expected
/// edge count is ~m_target. The heavy-tailed degree profile real social /
/// web workloads show — a few dense columns among many near-empty ones —
/// which is exactly the imbalance the sparse engine's worker groups exist
/// to absorb. The realized edge count is random around m_target.
[[nodiscard]] Graph power_law_graph(int n, std::int64_t m_target,
                                    double alpha, std::uint64_t seed);

/// Random graph with a planted k-cycle on randomly chosen nodes, plus
/// G(n, p) noise edges. The planted cycle guarantees a k-cycle exists; it
/// does NOT guarantee k is the girth (tests use reference algorithms or
/// p = 0 for exact claims).
[[nodiscard]] Graph planted_cycle_graph(int n, int k, double noise_p,
                                        std::uint64_t seed,
                                        bool directed = false);

/// Bipartite double cover of a random graph — bipartite, so it has no odd
/// cycles; useful as a negative instance for triangle/5-cycle detection.
[[nodiscard]] Graph random_bipartite_graph(int half, double p,
                                           std::uint64_t seed);

/// Balanced binary tree on n nodes (acyclic: girth = infinity).
[[nodiscard]] Graph binary_tree(int n);

}  // namespace cca
