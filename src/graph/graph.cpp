#include "graph/graph.hpp"

#include "util/contracts.hpp"

namespace cca {

// The validation must run before the vector members are sized: a negative n
// cast to size_t would throw length_error ahead of the typed error.
Graph::Graph(int n, bool directed)
    : n_((CCA_VALIDATE(n >= 0, "graph size n must be >= 0"), n)),
      directed_(directed),
      out_(static_cast<std::size_t>(n)),
      in_(static_cast<std::size_t>(n)),
      weight_(n, n, kAbsent) {}

void Graph::add_edge(int u, int v, std::int64_t weight) {
  CCA_VALIDATE(u >= 0 && u < n_ && v >= 0 && v < n_,
               "edge endpoints must be existing nodes");
  CCA_VALIDATE(u != v, "self-loops are not supported");
  CCA_VALIDATE(weight != kAbsent,
               "edge weight collides with the absent-arc sentinel");
  auto insert_arc = [this](int a, int b, std::int64_t w) {
    if (weight_(a, b) == kAbsent) {
      out_[static_cast<std::size_t>(a)].emplace_back(b, w);
      in_[static_cast<std::size_t>(b)].emplace_back(a, w);
    } else {
      for (auto& [nbr, wt] : out_[static_cast<std::size_t>(a)])
        if (nbr == b) wt = w;
      for (auto& [nbr, wt] : in_[static_cast<std::size_t>(b)])
        if (nbr == a) wt = w;
    }
    weight_(a, b) = w;
  };
  const bool fresh = weight_(u, v) == kAbsent;
  insert_arc(u, v, weight);
  if (!directed_) insert_arc(v, u, weight);
  if (fresh) ++m_;
}

bool Graph::has_arc(int u, int v) const {
  CCA_EXPECTS(u >= 0 && u < n_ && v >= 0 && v < n_);
  return weight_(u, v) != kAbsent;
}

std::int64_t Graph::arc_weight(int u, int v) const {
  CCA_EXPECTS(has_arc(u, v));
  return weight_(u, v);
}

const std::vector<std::pair<int, std::int64_t>>& Graph::out_arcs(int u) const {
  CCA_EXPECTS(u >= 0 && u < n_);
  return out_[static_cast<std::size_t>(u)];
}

const std::vector<std::pair<int, std::int64_t>>& Graph::in_arcs(int u) const {
  CCA_EXPECTS(u >= 0 && u < n_);
  return in_[static_cast<std::size_t>(u)];
}

int Graph::out_degree(int u) const {
  return static_cast<int>(out_arcs(u).size());
}

int Graph::in_degree(int u) const { return static_cast<int>(in_arcs(u).size()); }

Matrix<std::int64_t> Graph::adjacency() const {
  Matrix<std::int64_t> a(n_, n_, 0);
  for (int u = 0; u < n_; ++u)
    for (const auto& [v, w] : out_arcs(u)) a(u, v) = 1;
  return a;
}

Matrix<std::uint8_t> Graph::adjacency_bool() const {
  Matrix<std::uint8_t> a(n_, n_, 0);
  for (int u = 0; u < n_; ++u)
    for (const auto& [v, w] : out_arcs(u)) a(u, v) = 1;
  return a;
}

Matrix<std::int64_t> Graph::weight_matrix() const {
  Matrix<std::int64_t> w(n_, n_, MinPlusSemiring::kInf);
  for (int u = 0; u < n_; ++u) {
    w(u, u) = 0;
    for (const auto& [v, wt] : out_arcs(u)) w(u, v) = wt;
  }
  return w;
}

}  // namespace cca
