// Graph type shared by the distributed algorithms, the generators, and the
// centralized reference implementations.
//
// In the congested clique the input graph G and the communication topology
// share the node set: node v initially knows exactly its own incident edges
// (its row of the adjacency/weight matrix). The distributed algorithms in
// src/core/ respect that: everything node v stages on the network in the
// first superstep derives from row v only.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "matrix/matrix.hpp"
#include "matrix/semiring.hpp"

namespace cca {

class Graph {
 public:
  /// Simple undirected graph on n nodes (edges stored as two arcs).
  [[nodiscard]] static Graph undirected(int n) { return Graph(n, false); }
  /// Simple directed graph on n nodes (no self-loops).
  [[nodiscard]] static Graph directed(int n) { return Graph(n, true); }

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] bool is_directed() const noexcept { return directed_; }

  /// Insert (or re-weight) an edge. Undirected graphs add both arcs.
  /// Self-loops are rejected (the paper's graphs are loopless).
  void add_edge(int u, int v, std::int64_t weight = 1);

  [[nodiscard]] bool has_arc(int u, int v) const;
  /// Weight of an existing arc; requires has_arc(u, v).
  [[nodiscard]] std::int64_t arc_weight(int u, int v) const;

  /// Out-neighbours (sorted by insertion; use sort_arcs() for sorted order).
  [[nodiscard]] const std::vector<std::pair<int, std::int64_t>>& out_arcs(
      int u) const;
  /// In-neighbours with weights.
  [[nodiscard]] const std::vector<std::pair<int, std::int64_t>>& in_arcs(
      int u) const;

  [[nodiscard]] int out_degree(int u) const;
  [[nodiscard]] int in_degree(int u) const;
  /// Number of edges: arcs for directed graphs, edges for undirected.
  [[nodiscard]] std::int64_t num_edges() const noexcept { return m_; }

  /// 0/1 adjacency matrix over the integers (undirected graphs symmetric).
  [[nodiscard]] Matrix<std::int64_t> adjacency() const;
  /// 0/1 adjacency matrix as bytes (Boolean semiring value type).
  [[nodiscard]] Matrix<std::uint8_t> adjacency_bool() const;
  /// Weight matrix over min-plus: 0 on the diagonal, arc weight on arcs,
  /// MinPlusSemiring::kInf elsewhere (the matrix W of Section 3.3).
  [[nodiscard]] Matrix<std::int64_t> weight_matrix() const;

 private:
  Graph(int n, bool directed);

  int n_;
  bool directed_;
  std::int64_t m_ = 0;
  std::vector<std::vector<std::pair<int, std::int64_t>>> out_;
  std::vector<std::vector<std::pair<int, std::int64_t>>> in_;
  // Arc existence/weight lookup table; kAbsent marks non-arcs.
  static constexpr std::int64_t kAbsent =
      std::numeric_limits<std::int64_t>::min();
  Matrix<std::int64_t> weight_;
};

}  // namespace cca
