#include "graph/reference.hpp"

#include <algorithm>
#include <deque>
#include <vector>

#include "matrix/semiring.hpp"
#include "util/contracts.hpp"

namespace cca {

namespace {
constexpr std::int64_t kInf = MinPlusSemiring::kInf;
}  // namespace

Matrix<std::int64_t> ref_apsp(const Graph& g) {
  const int n = g.n();
  Matrix<std::int64_t> d = g.weight_matrix();
  for (int k = 0; k < n; ++k)
    for (int i = 0; i < n; ++i) {
      const auto dik = d(i, k);
      if (dik >= kInf) continue;
      for (int j = 0; j < n; ++j) {
        const auto dkj = d(k, j);
        if (dkj >= kInf) continue;
        if (dik + dkj < d(i, j)) d(i, j) = dik + dkj;
      }
    }
  for (int v = 0; v < n; ++v) CCA_ENSURES(d(v, v) >= 0);  // no negative cycle
  return d;
}

Matrix<std::int64_t> ref_bfs_apsp(const Graph& g) {
  const int n = g.n();
  Matrix<std::int64_t> d(n, n, kInf);
  std::deque<int> queue;
  for (int s = 0; s < n; ++s) {
    d(s, s) = 0;
    queue.clear();
    queue.push_back(s);
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      for (const auto& [v, w] : g.out_arcs(u)) {
        (void)w;
        if (d(s, v) >= kInf) {
          d(s, v) = d(s, u) + 1;
          queue.push_back(v);
        }
      }
    }
  }
  return d;
}

std::int64_t ref_count_triangles(const Graph& g) {
  const int n = g.n();
  std::int64_t count = 0;
  if (!g.is_directed()) {
    for (int u = 0; u < n; ++u)
      for (int v = u + 1; v < n; ++v) {
        if (!g.has_arc(u, v)) continue;
        for (int w = v + 1; w < n; ++w)
          if (g.has_arc(v, w) && g.has_arc(w, u)) ++count;
      }
  } else {
    // Directed 3-cycles; representative = rotation starting at the minimum.
    for (int u = 0; u < n; ++u)
      for (int v = u + 1; v < n; ++v) {
        if (!g.has_arc(u, v)) continue;
        for (int w = u + 1; w < n; ++w) {
          if (w == v) continue;
          if (g.has_arc(v, w) && g.has_arc(w, u)) ++count;
        }
      }
  }
  return count;
}

std::int64_t ref_count_4cycles(const Graph& g) {
  const int n = g.n();
  std::int64_t count = 0;
  if (!g.is_directed()) {
    // Each 4-cycle is determined by its two opposite pairs; summing
    // C(codegree, 2) over unordered pairs counts every cycle twice.
    for (int u = 0; u < n; ++u)
      for (int w = u + 1; w < n; ++w) {
        std::int64_t codeg = 0;
        for (const auto& [x, wt] : g.out_arcs(u)) {
          (void)wt;
          if (x != w && g.has_arc(x, w)) ++codeg;
        }
        count += codeg * (codeg - 1) / 2;
      }
    CCA_ASSERT(count % 2 == 0);
    return count / 2;
  }
  // Directed: enumerate with the minimum node first; each directed 4-cycle
  // has exactly one such representation.
  for (int a = 0; a < n; ++a)
    for (const auto& [b, w1] : g.out_arcs(a)) {
      (void)w1;
      if (b <= a) continue;
      for (const auto& [c, w2] : g.out_arcs(b)) {
        (void)w2;
        if (c <= a || c == b) continue;
        for (const auto& [d, w3] : g.out_arcs(c)) {
          (void)w3;
          if (d <= a || d == b || d == c) continue;
          if (g.has_arc(d, a)) ++count;
        }
      }
    }
  return count;
}

namespace {

bool dfs_k_cycle(const Graph& g, int start, int current, int remaining,
                 std::vector<char>& on_path) {
  if (remaining == 0) return g.has_arc(current, start);
  for (const auto& [next, w] : g.out_arcs(current)) {
    (void)w;
    // Fix `start` as the minimum node of the cycle to prune the search.
    if (next <= start || on_path[static_cast<std::size_t>(next)]) continue;
    on_path[static_cast<std::size_t>(next)] = 1;
    if (dfs_k_cycle(g, start, next, remaining - 1, on_path)) return true;
    on_path[static_cast<std::size_t>(next)] = 0;
  }
  return false;
}

}  // namespace

bool ref_has_k_cycle(const Graph& g, int k) {
  CCA_EXPECTS(k >= (g.is_directed() ? 2 : 3));
  if (k > g.n()) return false;
  std::vector<char> on_path(static_cast<std::size_t>(g.n()), 0);
  for (int s = 0; s < g.n(); ++s) {
    on_path[static_cast<std::size_t>(s)] = 1;
    if (dfs_k_cycle(g, s, s, k - 1, on_path)) return true;
    on_path[static_cast<std::size_t>(s)] = 0;
  }
  return false;
}

std::int64_t ref_count_5cycles(const Graph& g) {
  CCA_EXPECTS(!g.is_directed());
  const int n = g.n();
  std::int64_t count = 0;
  // Enumerate 5-paths a-b-c-d-e with a the minimum and b < e to fix one
  // representative per cycle (5 rotations x 2 reflections collapse to the
  // min-rooted, direction-normalised tuple).
  for (int a = 0; a < n; ++a)
    for (const auto& [b, w1] : g.out_arcs(a)) {
      (void)w1;
      if (b <= a) continue;
      for (const auto& [c, w2] : g.out_arcs(b)) {
        (void)w2;
        if (c <= a || c == b) continue;
        for (const auto& [d, w3] : g.out_arcs(c)) {
          (void)w3;
          if (d <= a || d == b || d == c) continue;
          for (const auto& [e, w4] : g.out_arcs(d)) {
            (void)w4;
            if (e <= b || e == c || e == d) continue;  // e > b fixes direction
            if (g.has_arc(e, a)) ++count;
          }
        }
      }
    }
  return count;
}

std::int64_t ref_girth(const Graph& g) {
  const int n = g.n();
  std::int64_t best = kInf;
  std::vector<std::int64_t> dist(static_cast<std::size_t>(n));
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::deque<int> queue;

  if (!g.is_directed()) {
    // BFS from every root; a non-tree edge (u,v) closes a walk of length
    // dist[u] + dist[v] + 1 which contains a cycle no longer than that, and
    // for a root on a shortest cycle the bound is attained.
    for (int r = 0; r < n; ++r) {
      std::fill(dist.begin(), dist.end(), kInf);
      std::fill(parent.begin(), parent.end(), -1);
      dist[static_cast<std::size_t>(r)] = 0;
      queue.clear();
      queue.push_back(r);
      while (!queue.empty()) {
        const int u = queue.front();
        queue.pop_front();
        if (2 * dist[static_cast<std::size_t>(u)] >= best) break;  // prune
        for (const auto& [v, w] : g.out_arcs(u)) {
          (void)w;
          if (dist[static_cast<std::size_t>(v)] >= kInf) {
            dist[static_cast<std::size_t>(v)] =
                dist[static_cast<std::size_t>(u)] + 1;
            parent[static_cast<std::size_t>(v)] = u;
            queue.push_back(v);
          } else if (parent[static_cast<std::size_t>(u)] != v &&
                     parent[static_cast<std::size_t>(v)] != u) {
            best = std::min(best, dist[static_cast<std::size_t>(u)] +
                                      dist[static_cast<std::size_t>(v)] + 1);
          }
        }
      }
    }
    return best;
  }

  // Directed: girth = min over arcs (u -> v) of dist(v, u) + 1.
  for (int s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), kInf);
    dist[static_cast<std::size_t>(s)] = 0;
    queue.clear();
    queue.push_back(s);
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      for (const auto& [v, w] : g.out_arcs(u)) {
        (void)w;
        if (dist[static_cast<std::size_t>(v)] >= kInf) {
          dist[static_cast<std::size_t>(v)] =
              dist[static_cast<std::size_t>(u)] + 1;
          queue.push_back(v);
        }
      }
    }
    for (const auto& [u, w] : g.in_arcs(s)) {
      (void)w;
      if (dist[static_cast<std::size_t>(u)] < kInf)
        best = std::min(best, dist[static_cast<std::size_t>(u)] + 1);
    }
  }
  return best;
}

std::int64_t ref_weighted_diameter(const Graph& g) {
  const auto d = ref_apsp(g);
  std::int64_t best = 0;
  for (int u = 0; u < g.n(); ++u)
    for (int v = 0; v < g.n(); ++v)
      if (d(u, v) < kInf) best = std::max(best, d(u, v));
  return best;
}

}  // namespace cca
