// Dense row-major matrix container used throughout the library.
//
// Deliberately minimal: the interesting algebra lives in semiring.hpp and
// ops.hpp; this type only owns storage and provides block (submatrix)
// access, which the distributed algorithms use to carve the partitioning
// schemes of Sections 2.1 and 2.2 of the paper.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "util/contracts.hpp"

namespace cca {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix with every entry set to `init`.
  Matrix(int rows, int cols, T init = T{})
      : rows_(rows),
        cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              std::move(init)) {
    CCA_EXPECTS(rows >= 0 && cols >= 0);
  }

  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }

  [[nodiscard]] T& operator()(int i, int j) {
    CCA_EXPECTS(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(j)];
  }
  [[nodiscard]] const T& operator()(int i, int j) const {
    CCA_EXPECTS(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(j)];
  }

  /// Raw row access for tight inner loops.
  [[nodiscard]] T* row(int i) {
    CCA_EXPECTS(i >= 0 && i < rows_);
    return data_.data() +
           static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_);
  }
  [[nodiscard]] const T* row(int i) const {
    CCA_EXPECTS(i >= 0 && i < rows_);
    return data_.data() +
           static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_);
  }

  /// Copy of the block with top-left corner (r0, c0) and size h x w.
  /// Rows are copied contiguously (memmove for trivially copyable T).
  [[nodiscard]] Matrix block(int r0, int c0, int h, int w) const {
    CCA_EXPECTS(r0 >= 0 && c0 >= 0 && h >= 0 && w >= 0);
    CCA_EXPECTS(r0 + h <= rows_ && c0 + w <= cols_);
    Matrix out(h, w);
    for (int i = 0; i < h; ++i) {
      const T* src = row(r0 + i) + c0;
      std::copy(src, src + w, out.row(i));
    }
    return out;
  }

  /// Write `src` into this matrix with top-left corner (r0, c0).
  void paste(int r0, int c0, const Matrix& src) {
    CCA_EXPECTS(r0 >= 0 && c0 >= 0);
    CCA_EXPECTS(r0 + src.rows() <= rows_ && c0 + src.cols() <= cols_);
    for (int i = 0; i < src.rows(); ++i) {
      const T* from = src.row(i);
      std::copy(from, from + src.cols(), row(r0 + i) + c0);
    }
  }

  /// Enlarged/cropped copy; new cells (if any) take value `fill`.
  [[nodiscard]] Matrix resized(int rows, int cols, T fill) const {
    Matrix out(rows, cols, std::move(fill));
    const int h = rows < rows_ ? rows : rows_;
    const int w = cols < cols_ ? cols : cols_;
    for (int i = 0; i < h; ++i) {
      const T* src = row(i);
      std::copy(src, src + w, out.row(i));
    }
    return out;
  }

  [[nodiscard]] Matrix transposed() const {
    Matrix out(cols_, rows_);
    for (int i = 0; i < rows_; ++i)
      for (int j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
    return out;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<T> data_;
};

}  // namespace cca
