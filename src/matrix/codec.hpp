// Entry <-> machine-word codecs for network transmission.
//
// The congested clique charges one round per word per link; a matrix entry
// that needs b bits costs ceil(b/64) words. These codecs define that cost
// for each entry type and perform the (de)serialisation. The polynomial
// codec's width equals the polynomial cap, which is how the O(M) factor of
// Lemma 18 enters the measured round counts; the packed Boolean codec fits
// 64 entries in a word, which is how the "/ log n" factors in Table 1's
// prior-work rows arise.
//
// Codecs encode BLOCKS: the distributed algorithms move contiguous
// submatrix pieces, and a block codec may use fewer words than
// entries x words-per-entry (bit packing). `words_for(count)` must be the
// exact encoded size of a `count`-entry block.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "matrix/poly.hpp"
#include "util/contracts.hpp"

namespace cca {

using EncodedWord = std::uint64_t;

/// 64-bit signed integers: one word per entry (covers poly(n)-bounded
/// values, min-plus distances with the infinity sentinel, and counts).
struct I64Codec {
  using Value = std::int64_t;
  [[nodiscard]] std::size_t words_for(std::size_t entries) const noexcept {
    return entries;
  }
  void encode_block(const std::vector<Value>& vals,
                    std::vector<EncodedWord>& out) const {
    for (const auto v : vals) out.push_back(std::bit_cast<EncodedWord>(v));
  }
  [[nodiscard]] std::vector<Value> decode_block(const EncodedWord* words,
                                                std::size_t count) const {
    std::vector<Value> out(count);
    for (std::size_t i = 0; i < count; ++i)
      out[i] = std::bit_cast<Value>(words[i]);
    return out;
  }
};

/// Byte-valued entries (Boolean semiring), one word per entry — the
/// unpacked default matching the paper's headline bounds.
struct ByteCodec {
  using Value = std::uint8_t;
  [[nodiscard]] std::size_t words_for(std::size_t entries) const noexcept {
    return entries;
  }
  void encode_block(const std::vector<Value>& vals,
                    std::vector<EncodedWord>& out) const {
    for (const auto v : vals) out.push_back(v);
  }
  [[nodiscard]] std::vector<Value> decode_block(const EncodedWord* words,
                                                std::size_t count) const {
    std::vector<Value> out(count);
    for (std::size_t i = 0; i < count; ++i)
      out[i] = static_cast<Value>(words[i]);
    return out;
  }
};

/// Bit-packed Booleans: 64 entries per word. Using this codec with the
/// Boolean-semiring products reproduces the O(log n)-factor savings the
/// prior-work rows of Table 1 exploit (Dolev et al.'s O(n^{1/3}/log n)).
struct PackedBoolCodec {
  using Value = std::uint8_t;
  [[nodiscard]] std::size_t words_for(std::size_t entries) const noexcept {
    return (entries + 63) / 64;
  }
  void encode_block(const std::vector<Value>& vals,
                    std::vector<EncodedWord>& out) const {
    const std::size_t base = out.size();
    out.resize(base + words_for(vals.size()), 0);
    for (std::size_t i = 0; i < vals.size(); ++i)
      if (vals[i] != 0) out[base + i / 64] |= EncodedWord{1} << (i % 64);
  }
  [[nodiscard]] std::vector<Value> decode_block(const EncodedWord* words,
                                                std::size_t count) const {
    std::vector<Value> out(count);
    for (std::size_t i = 0; i < count; ++i)
      out[i] = static_cast<Value>((words[i / 64] >> (i % 64)) & 1);
    return out;
  }
};

/// Capped polynomials: `cap` words per entry (one per coefficient).
struct PolyCodec {
  using Value = CappedPoly;
  int cap = 1;

  [[nodiscard]] std::size_t words_for(std::size_t entries) const noexcept {
    return entries * static_cast<std::size_t>(cap);
  }
  void encode_block(const std::vector<Value>& vals,
                    std::vector<EncodedWord>& out) const {
    for (const auto& v : vals) {
      CCA_EXPECTS(v.cap() == cap);
      for (int d = 0; d < cap; ++d)
        out.push_back(std::bit_cast<EncodedWord>(v.coeff(d)));
    }
  }
  [[nodiscard]] std::vector<Value> decode_block(const EncodedWord* words,
                                                std::size_t count) const {
    std::vector<Value> out;
    out.reserve(count);
    for (std::size_t e = 0; e < count; ++e) {
      CappedPoly p(cap);
      for (int d = 0; d < cap; ++d)
        p.coeff(d) = std::bit_cast<std::int64_t>(
            words[e * static_cast<std::size_t>(cap) +
                  static_cast<std::size_t>(d)]);
      out.push_back(std::move(p));
    }
    return out;
  }
};

}  // namespace cca
