// Entry <-> machine-word codecs for network transmission.
//
// The congested clique charges one round per word per link; a matrix entry
// that needs b bits costs ceil(b/64) words. These codecs define that cost
// for each entry type and perform the (de)serialisation. The polynomial
// codec's width equals the polynomial cap, which is how the O(M) factor of
// Lemma 18 enters the measured round counts; the packed Boolean codec fits
// 64 entries in a word, which is how the "/ log n" factors in Table 1's
// prior-work rows arise.
//
// Codecs encode BLOCKS: the distributed algorithms move contiguous
// submatrix pieces, and a block codec may use fewer words than
// entries x words-per-entry (bit packing). `words_for(count)` must be the
// exact encoded size of a `count`-entry block.
//
// Each codec exposes two symmetric interfaces:
//  * encode_into / decode_into — zero-copy forms writing into caller-owned
//    memory (a Network::stage span on the send side, a scratch buffer or
//    matrix row on the receive side). encode_into writes every word it owns
//    (no read-modify-write), so staged spans need no pre-zeroing;
//    decode_into overwrites out[0..count) and never allocates (the
//    polynomial codec reuses the coefficient storage of the scratch entries
//    when the caps match).
//  * encode_block / decode_block — the allocating conveniences, implemented
//    on top of the zero-copy forms.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "matrix/poly.hpp"
#include "util/contracts.hpp"

namespace cca {

using EncodedWord = std::uint64_t;

/// 64-bit signed integers: one word per entry (covers poly(n)-bounded
/// values, min-plus distances with the infinity sentinel, and counts).
struct I64Codec {
  using Value = std::int64_t;
  [[nodiscard]] std::size_t words_for(std::size_t entries) const noexcept {
    return entries;
  }
  void encode_into(std::span<const Value> vals, EncodedWord* out) const {
    for (std::size_t i = 0; i < vals.size(); ++i)
      out[i] = std::bit_cast<EncodedWord>(vals[i]);
  }
  void decode_into(const EncodedWord* words, std::size_t count,
                   Value* out) const {
    for (std::size_t i = 0; i < count; ++i)
      out[i] = std::bit_cast<Value>(words[i]);
  }
  void encode_block(const std::vector<Value>& vals,
                    std::vector<EncodedWord>& out) const {
    const std::size_t base = out.size();
    out.resize(base + words_for(vals.size()));
    encode_into(vals, out.data() + base);
  }
  [[nodiscard]] std::vector<Value> decode_block(const EncodedWord* words,
                                                std::size_t count) const {
    std::vector<Value> out(count);
    decode_into(words, count, out.data());
    return out;
  }
};

/// Byte-valued entries (Boolean semiring), one word per entry — the
/// unpacked default matching the paper's headline bounds.
struct ByteCodec {
  using Value = std::uint8_t;
  [[nodiscard]] std::size_t words_for(std::size_t entries) const noexcept {
    return entries;
  }
  void encode_into(std::span<const Value> vals, EncodedWord* out) const {
    for (std::size_t i = 0; i < vals.size(); ++i) out[i] = vals[i];
  }
  void decode_into(const EncodedWord* words, std::size_t count,
                   Value* out) const {
    for (std::size_t i = 0; i < count; ++i)
      out[i] = static_cast<Value>(words[i]);
  }
  void encode_block(const std::vector<Value>& vals,
                    std::vector<EncodedWord>& out) const {
    const std::size_t base = out.size();
    out.resize(base + words_for(vals.size()));
    encode_into(vals, out.data() + base);
  }
  [[nodiscard]] std::vector<Value> decode_block(const EncodedWord* words,
                                                std::size_t count) const {
    std::vector<Value> out(count);
    decode_into(words, count, out.data());
    return out;
  }
};

/// Bit-packed Booleans: 64 entries per word. Using this codec with the
/// Boolean-semiring products reproduces the O(log n)-factor savings the
/// prior-work rows of Table 1 exploit (Dolev et al.'s O(n^{1/3}/log n)).
struct PackedBoolCodec {
  using Value = std::uint8_t;
  [[nodiscard]] std::size_t words_for(std::size_t entries) const noexcept {
    return (entries + 63) / 64;
  }
  void encode_into(std::span<const Value> vals, EncodedWord* out) const {
    // Assemble each word in a register and store it whole, so the
    // destination needs no pre-zeroing.
    const std::size_t nwords = words_for(vals.size());
    for (std::size_t w = 0; w < nwords; ++w) {
      EncodedWord word = 0;
      const std::size_t lo = w * 64;
      const std::size_t hi =
          lo + 64 < vals.size() ? lo + 64 : vals.size();
      for (std::size_t i = lo; i < hi; ++i)
        if (vals[i] != 0) word |= EncodedWord{1} << (i - lo);
      out[w] = word;
    }
  }
  void decode_into(const EncodedWord* words, std::size_t count,
                   Value* out) const {
    for (std::size_t i = 0; i < count; ++i)
      out[i] = static_cast<Value>((words[i / 64] >> (i % 64)) & 1);
  }
  void encode_block(const std::vector<Value>& vals,
                    std::vector<EncodedWord>& out) const {
    const std::size_t base = out.size();
    out.resize(base + words_for(vals.size()));
    encode_into(vals, out.data() + base);
  }
  [[nodiscard]] std::vector<Value> decode_block(const EncodedWord* words,
                                                std::size_t count) const {
    std::vector<Value> out(count);
    decode_into(words, count, out.data());
    return out;
  }
};

/// Sparse coordinate blocks: a block is a list of (index, value) pairs with
/// the indices packed two per word (32 bits each — enough for any in-clique
/// row/column index) followed by the values encoded as ONE block of the
/// wrapped value codec. Wrapping PackedBoolCodec therefore packs the value
/// stream 64 entries per word exactly as the dense path does, so the sparse
/// engine inherits every "/ log n" saving of Table 1's prior-work rows on
/// Boolean inputs. `words_for(nnz)` is the exact encoded size of an
/// nnz-pair block; the pair count itself travels out-of-band (the sparse
/// multiplication messages carry explicit count header words, because a
/// receiver cannot always invert words -> pairs for bit-packing codecs).
///
/// Zero-copy contract (PR 2): encode_into writes every word it owns — the
/// half-filled tail of an odd index word is stored whole with the upper 32
/// bits zero — so staged spans need no pre-zeroing; decode_into never
/// allocates beyond what the wrapped codec's decode_into does.
template <typename ValueCodec>
struct SparseCodec {
  using Value = typename ValueCodec::Value;
  using Index = std::uint32_t;
  ValueCodec values{};

  /// Words for the packed index stream alone.
  [[nodiscard]] static std::size_t index_words(std::size_t nnz) noexcept {
    return (nnz + 1) / 2;
  }
  [[nodiscard]] std::size_t words_for(std::size_t nnz) const noexcept {
    return index_words(nnz) + values.words_for(nnz);
  }
  void encode_into(std::span<const Index> idx, std::span<const Value> vals,
                   EncodedWord* out) const {
    CCA_EXPECTS(idx.size() == vals.size());
    const std::size_t iw = index_words(idx.size());
    for (std::size_t w = 0; w < iw; ++w) {
      EncodedWord word = static_cast<EncodedWord>(idx[2 * w]);
      if (2 * w + 1 < idx.size())
        word |= static_cast<EncodedWord>(idx[2 * w + 1]) << 32;
      out[w] = word;
    }
    values.encode_into(vals, out + iw);
  }
  void decode_into(const EncodedWord* words, std::size_t nnz, Index* idx,
                   Value* vals) const {
    for (std::size_t i = 0; i < nnz; ++i)
      idx[i] = static_cast<Index>((words[i / 2] >> (32 * (i % 2))) &
                                  0xffffffffu);
    values.decode_into(words + index_words(nnz), nnz, vals);
  }
  void encode_block(const std::vector<Index>& idx,
                    const std::vector<Value>& vals,
                    std::vector<EncodedWord>& out) const {
    const std::size_t base = out.size();
    out.resize(base + words_for(idx.size()));
    encode_into(idx, vals, out.data() + base);
  }
};

/// Capped polynomials: `cap` words per entry (one per coefficient).
struct PolyCodec {
  using Value = CappedPoly;
  int cap = 1;

  [[nodiscard]] std::size_t words_for(std::size_t entries) const noexcept {
    return entries * static_cast<std::size_t>(cap);
  }
  void encode_into(std::span<const Value> vals, EncodedWord* out) const {
    for (std::size_t e = 0; e < vals.size(); ++e) {
      const auto& v = vals[e];
      CCA_EXPECTS(v.cap() == cap);
      for (int d = 0; d < cap; ++d)
        out[e * static_cast<std::size_t>(cap) + static_cast<std::size_t>(d)] =
            std::bit_cast<EncodedWord>(v.coeff(d));
    }
  }
  /// Decode into scratch entries, reusing each entry's heap-backed
  /// coefficient storage when its cap already matches (the steady state of
  /// a reused scratch buffer) — the distance-product / APSP inner loops
  /// stop allocating per message.
  void decode_into(const EncodedWord* words, std::size_t count,
                   Value* out) const {
    for (std::size_t e = 0; e < count; ++e) {
      Value& p = out[e];
      if (p.cap() != cap) p = CappedPoly(cap);
      for (int d = 0; d < cap; ++d)
        p.coeff(d) = std::bit_cast<std::int64_t>(
            words[e * static_cast<std::size_t>(cap) +
                  static_cast<std::size_t>(d)]);
    }
  }
  void encode_block(const std::vector<Value>& vals,
                    std::vector<EncodedWord>& out) const {
    const std::size_t base = out.size();
    out.resize(base + words_for(vals.size()));
    encode_into(vals, out.data() + base);
  }
  [[nodiscard]] std::vector<Value> decode_block(const EncodedWord* words,
                                                std::size_t count) const {
    std::vector<Value> out(count);
    decode_into(words, count, out.data());
    return out;
  }
};

}  // namespace cca
