// Sequential Strassen multiplication over an arbitrary ring.
//
// Two roles in this repository: (a) a verified fast local kernel and the
// subject of the bench_local_mm microbenchmark, and (b) an independent
// reference implementation against which the bilinear-algorithm machinery
// (bilinear.hpp) and the distributed fast multiplication (Section 2.2) are
// cross-checked.
#pragma once

#include "matrix/matrix.hpp"
#include "matrix/ops.hpp"
#include "matrix/semiring.hpp"
#include "util/math.hpp"

namespace cca {

namespace detail {

template <Ring R>
Matrix<typename R::Value> strassen_pow2(const R& r,
                                        const Matrix<typename R::Value>& a,
                                        const Matrix<typename R::Value>& b,
                                        int cutoff) {
  const int n = a.rows();
  if (n <= cutoff) return multiply(r, a, b);
  const int h = n / 2;

  auto quad = [&](const Matrix<typename R::Value>& m, int qi, int qj) {
    return m.block(qi * h, qj * h, h, h);
  };
  auto sub = [&](const Matrix<typename R::Value>& x,
                 const Matrix<typename R::Value>& y) {
    Matrix<typename R::Value> out(h, h, r.zero());
    for (int i = 0; i < h; ++i)
      for (int j = 0; j < h; ++j) out(i, j) = r.sub(x(i, j), y(i, j));
    return out;
  };

  const auto a11 = quad(a, 0, 0), a12 = quad(a, 0, 1);
  const auto a21 = quad(a, 1, 0), a22 = quad(a, 1, 1);
  const auto b11 = quad(b, 0, 0), b12 = quad(b, 0, 1);
  const auto b21 = quad(b, 1, 0), b22 = quad(b, 1, 1);

  const auto p1 = strassen_pow2(r, add(r, a11, a22), add(r, b11, b22), cutoff);
  const auto p2 = strassen_pow2(r, add(r, a21, a22), b11, cutoff);
  const auto p3 = strassen_pow2(r, a11, sub(b12, b22), cutoff);
  const auto p4 = strassen_pow2(r, a22, sub(b21, b11), cutoff);
  const auto p5 = strassen_pow2(r, add(r, a11, a12), b22, cutoff);
  const auto p6 = strassen_pow2(r, sub(a21, a11), add(r, b11, b12), cutoff);
  const auto p7 = strassen_pow2(r, sub(a12, a22), add(r, b21, b22), cutoff);

  Matrix<typename R::Value> out(n, n, r.zero());
  for (int i = 0; i < h; ++i)
    for (int j = 0; j < h; ++j) {
      // c11 = p1 + p4 - p5 + p7, c12 = p3 + p5,
      // c21 = p2 + p4,           c22 = p1 - p2 + p3 + p6.
      out(i, j) = r.add(r.sub(r.add(p1(i, j), p4(i, j)), p5(i, j)), p7(i, j));
      out(i, j + h) = r.add(p3(i, j), p5(i, j));
      out(i + h, j) = r.add(p2(i, j), p4(i, j));
      out(i + h, j + h) =
          r.add(r.add(r.sub(p1(i, j), p2(i, j)), p3(i, j)), p6(i, j));
    }
  return out;
}

}  // namespace detail

/// Strassen product of square matrices over ring `r`. Inputs of any size are
/// zero-padded to the next power of two; `cutoff` switches to schoolbook.
template <Ring R>
[[nodiscard]] Matrix<typename R::Value> strassen_multiply(
    const R& r, const Matrix<typename R::Value>& a,
    const Matrix<typename R::Value>& b, int cutoff = 64) {
  CCA_EXPECTS(a.rows() == a.cols() && b.rows() == b.cols());
  CCA_EXPECTS(a.rows() == b.rows());
  CCA_EXPECTS(cutoff >= 1);
  const int n = a.rows();
  if (n == 0) return {};
  const int p = static_cast<int>(ceil_pow2(n));
  if (p == n)
    return detail::strassen_pow2(r, a, b, cutoff);
  const auto pa = a.resized(p, p, r.zero());
  const auto pb = b.resized(p, p, r.zero());
  return detail::strassen_pow2(r, pa, pb, cutoff).block(0, 0, n, n);
}

}  // namespace cca
