// Specialized node-local multiplication kernels.
//
// The distributed algorithms' supersteps interleave communication (charged
// in rounds) with free local computation; the local products are the
// wall-clock hot spots of the simulator. local_multiply() dispatches on the
// semiring: the Boolean semiring runs a bit-packed kernel (64 adjacency
// entries per machine word, OR-accumulated row-wise — the same word-level
// trick the PackedBoolCodec uses on the wire), the min-plus semiring runs a
// cache-blocked tropical kernel, the integer ring runs a transposed-B
// blocked dot-product kernel, and every other algebra falls back to the
// generic schoolbook multiply() from ops.hpp.
//
// All kernels are EXACTLY result-equivalent to multiply(s, a, b): Boolean
// OR/AND and min/plus are associative and commutative, so reassociating the
// accumulation cannot change any output entry. Round accounting is
// untouched — these run strictly between supersteps.
//
// To add a kernel specialization for a new semiring: implement the kernel,
// add a non-template local_multiply overload for the semiring type (overload
// resolution prefers it over the generic template), and extend the
// equivalence tests in tests/test_kernels.cpp with random-input comparisons
// against multiply().
#pragma once

#include <cstdint>

#include "matrix/matrix.hpp"
#include "matrix/ops.hpp"
#include "matrix/semiring.hpp"

namespace cca {

/// Boolean matrix product via bit-packing: rows of `b` are packed 64
/// columns per word; row i of the output is the OR of the packed rows
/// selected by the nonzero entries of row i of `a`. Result-identical to
/// multiply(BoolSemiring{}, a, b) at ~64 entries per word-op for CANONICAL
/// inputs (every entry 0 or 1 — what the graph adjacencies and codecs
/// produce). Non-canonical bytes would diverge: the semiring's bitwise AND
/// distinguishes 2&1 == 0 from "both nonzero", the packed kernel does not.
[[nodiscard]] Matrix<std::uint8_t> multiply_bool_packed(
    const Matrix<std::uint8_t>& a, const Matrix<std::uint8_t>& b);

/// Min-plus (tropical) matrix product with cache blocking over the
/// contraction dimension and +infinity clamping that mirrors
/// MinPlusSemiring::mul's saturation. Result-identical to
/// multiply(MinPlusSemiring{}, a, b).
[[nodiscard]] Matrix<std::int64_t> multiply_minplus_blocked(
    const Matrix<std::int64_t>& a, const Matrix<std::int64_t>& b);

/// Integer-ring (Z, +, *) matrix product: B is transposed once into a
/// contiguous scratch so every inner loop is a dot product over two
/// contiguous rows, tiled 4 output columns at a time to keep four
/// accumulators live. Two's-complement + and * are associative and
/// commutative, so the result is bit-identical to multiply(IntRing{}, a, b)
/// regardless of accumulation order. This is the node-local kernel of the
/// fast bilinear path (Section 2.2) and of the integer products behind
/// cycle counting.
[[nodiscard]] Matrix<std::int64_t> multiply_i64_blocked(
    const Matrix<std::int64_t>& a, const Matrix<std::int64_t>& b);

/// Semiring-dispatched local product: specialized kernel when one exists,
/// generic multiply() otherwise.
template <Semiring S>
[[nodiscard]] Matrix<typename S::Value> local_multiply(
    const S& s, const Matrix<typename S::Value>& a,
    const Matrix<typename S::Value>& b) {
  return multiply(s, a, b);
}

[[nodiscard]] inline Matrix<std::uint8_t> local_multiply(
    const BoolSemiring&, const Matrix<std::uint8_t>& a,
    const Matrix<std::uint8_t>& b) {
  return multiply_bool_packed(a, b);
}

[[nodiscard]] inline Matrix<std::int64_t> local_multiply(
    const MinPlusSemiring&, const Matrix<std::int64_t>& a,
    const Matrix<std::int64_t>& b) {
  return multiply_minplus_blocked(a, b);
}

[[nodiscard]] inline Matrix<std::int64_t> local_multiply(
    const IntRing&, const Matrix<std::int64_t>& a,
    const Matrix<std::int64_t>& b) {
  return multiply_i64_blocked(a, b);
}

}  // namespace cca
