// Local (single-node) matrix operations, generic over the semiring.
//
// These are the kernels executed inside each node's free local computation
// in the distributed algorithms, and the ground truth the distributed
// results are tested against.
#pragma once

#include "matrix/matrix.hpp"
#include "matrix/semiring.hpp"

namespace cca {

/// Identity matrix of the semiring.
template <Semiring S>
[[nodiscard]] Matrix<typename S::Value> identity(const S& s, int n) {
  Matrix<typename S::Value> out(n, n, s.zero());
  for (int i = 0; i < n; ++i) out(i, i) = s.one();
  return out;
}

/// Entrywise sum.
template <Semiring S>
[[nodiscard]] Matrix<typename S::Value> add(const S& s,
                                            const Matrix<typename S::Value>& a,
                                            const Matrix<typename S::Value>& b) {
  CCA_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix<typename S::Value> out(a.rows(), a.cols(), s.zero());
  for (int i = 0; i < a.rows(); ++i)
    for (int j = 0; j < a.cols(); ++j) out(i, j) = s.add(a(i, j), b(i, j));
  return out;
}

/// Schoolbook product with i-k-j loop order (cache friendly for row-major).
template <Semiring S>
[[nodiscard]] Matrix<typename S::Value> multiply(
    const S& s, const Matrix<typename S::Value>& a,
    const Matrix<typename S::Value>& b) {
  CCA_EXPECTS(a.cols() == b.rows());
  Matrix<typename S::Value> out(a.rows(), b.cols(), s.zero());
  for (int i = 0; i < a.rows(); ++i) {
    auto* out_row = out.row(i);
    const auto* a_row = a.row(i);
    for (int k = 0; k < a.cols(); ++k) {
      const auto aik = a_row[k];
      // Sound because the Semiring contract makes zero() a two-sided
      // annihilator AND the additive identity: every skipped term would
      // have been add(acc, mul(zero, b)) == add(acc, zero) == acc. A mul
      // that wrapped instead of annihilating (e.g. a min-plus evaluating
      // inf + w for negative w) would make this skip UNSOUND on exactly
      // the entries it never evaluates — which is why the contract is
      // pinned against a no-skip reference in test_matrix.cpp, and why the
      // sparse engine may drop zeros from the wire wholesale.
      if (aik == s.zero()) continue;  // big win on sparse inputs
      const auto* b_row = b.row(k);
      for (int j = 0; j < b.cols(); ++j)
        out_row[j] = s.add(out_row[j], s.mul(aik, b_row[j]));
    }
  }
  return out;
}

/// Matrix power by repeated squaring; exp >= 0 (exp == 0 gives identity).
template <Semiring S>
[[nodiscard]] Matrix<typename S::Value> power(const S& s,
                                              Matrix<typename S::Value> base,
                                              long long exp) {
  CCA_EXPECTS(base.rows() == base.cols());
  CCA_EXPECTS(exp >= 0);
  auto result = identity(s, base.rows());
  while (exp > 0) {
    if (exp & 1) result = multiply(s, result, base);
    exp >>= 1;
    if (exp > 0) base = multiply(s, base, base);
  }
  return result;
}

/// Trace (sum of diagonal entries under the semiring's addition).
template <Semiring S>
[[nodiscard]] typename S::Value trace(const S& s,
                                      const Matrix<typename S::Value>& a) {
  CCA_EXPECTS(a.rows() == a.cols());
  auto t = s.zero();
  for (int i = 0; i < a.rows(); ++i) t = s.add(t, a(i, i));
  return t;
}

}  // namespace cca
