#include "matrix/bilinear.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace cca {

double BilinearAlgorithm::sigma() const {
  CCA_EXPECTS(d >= 1 && m >= 1);
  if (d == 1) return 3.0;  // conventional; a 1x1 product is a single scalar mul
  return std::log(static_cast<double>(m)) / std::log(static_cast<double>(d));
}

BilinearAlgorithm schoolbook_algorithm(int d) {
  CCA_EXPECTS(d >= 1);
  BilinearAlgorithm alg;
  alg.d = d;
  alg.m = d * d * d;
  alg.alpha.resize(static_cast<std::size_t>(alg.m));
  alg.beta.resize(static_cast<std::size_t>(alg.m));
  alg.lambda.resize(static_cast<std::size_t>(d * d));
  int w = 0;
  for (int i = 0; i < d; ++i)
    for (int k = 0; k < d; ++k)
      for (int j = 0; j < d; ++j) {
        alg.alpha[static_cast<std::size_t>(w)] = {{i * d + k, 1}};
        alg.beta[static_cast<std::size_t>(w)] = {{k * d + j, 1}};
        alg.lambda[static_cast<std::size_t>(i * d + j)].push_back({w, 1});
        ++w;
      }
  return alg;
}

BilinearAlgorithm strassen_algorithm() {
  // Index convention for 2x2: 0 = (1,1), 1 = (1,2), 2 = (2,1), 3 = (2,2).
  BilinearAlgorithm alg;
  alg.d = 2;
  alg.m = 7;
  alg.alpha = {
      {{0, 1}, {3, 1}},   // p1 = (a11 + a22)(b11 + b22)
      {{2, 1}, {3, 1}},   // p2 = (a21 + a22) b11
      {{0, 1}},           // p3 = a11 (b12 - b22)
      {{3, 1}},           // p4 = a22 (b21 - b11)
      {{0, 1}, {1, 1}},   // p5 = (a11 + a12) b22
      {{2, 1}, {0, -1}},  // p6 = (a21 - a11)(b11 + b12)
      {{1, 1}, {3, -1}},  // p7 = (a12 - a22)(b21 + b22)
  };
  alg.beta = {
      {{0, 1}, {3, 1}},  {{0, 1}},          {{1, 1}, {3, -1}},
      {{2, 1}, {0, -1}}, {{3, 1}},          {{0, 1}, {1, 1}},
      {{2, 1}, {3, 1}},
  };
  alg.lambda = {
      {{0, 1}, {3, 1}, {4, -1}, {6, 1}},  // c11 = p1 + p4 - p5 + p7
      {{2, 1}, {4, 1}},                   // c12 = p3 + p5
      {{1, 1}, {3, 1}},                   // c21 = p2 + p4
      {{0, 1}, {1, -1}, {2, 1}, {5, 1}},  // c22 = p1 - p2 + p3 + p6
  };
  return alg;
}

BilinearAlgorithm tensor(const BilinearAlgorithm& a,
                         const BilinearAlgorithm& b) {
  BilinearAlgorithm out;
  out.d = a.d * b.d;
  out.m = a.m * b.m;
  out.alpha.resize(static_cast<std::size_t>(out.m));
  out.beta.resize(static_cast<std::size_t>(out.m));
  out.lambda.resize(static_cast<std::size_t>(out.d) *
                    static_cast<std::size_t>(out.d));

  // Entry (i,j) of the composed d1*d2 matrix corresponds to the pair of
  // entries (i1,j1) in the outer algorithm and (i2,j2) in the inner one,
  // with i = i1*d2 + i2 and j = j1*d2 + j2.
  auto compose_entry = [&](int outer_index, int inner_index) {
    const int i1 = outer_index / a.d;
    const int j1 = outer_index % a.d;
    const int i2 = inner_index / b.d;
    const int j2 = inner_index % b.d;
    return (i1 * b.d + i2) * out.d + (j1 * b.d + j2);
  };

  for (int w1 = 0; w1 < a.m; ++w1)
    for (int w2 = 0; w2 < b.m; ++w2) {
      const auto w = static_cast<std::size_t>(w1 * b.m + w2);
      for (const auto& ca : a.alpha[static_cast<std::size_t>(w1)])
        for (const auto& cb : b.alpha[static_cast<std::size_t>(w2)])
          out.alpha[w].push_back(
              {compose_entry(ca.index, cb.index), ca.coeff * cb.coeff});
      for (const auto& ca : a.beta[static_cast<std::size_t>(w1)])
        for (const auto& cb : b.beta[static_cast<std::size_t>(w2)])
          out.beta[w].push_back(
              {compose_entry(ca.index, cb.index), ca.coeff * cb.coeff});
    }

  for (int e1 = 0; e1 < a.d * a.d; ++e1)
    for (int e2 = 0; e2 < b.d * b.d; ++e2) {
      auto& row = out.lambda[static_cast<std::size_t>(compose_entry(e1, e2))];
      for (const auto& ca : a.lambda[static_cast<std::size_t>(e1)])
        for (const auto& cb : b.lambda[static_cast<std::size_t>(e2)])
          row.push_back({ca.index * b.m + cb.index, ca.coeff * cb.coeff});
    }
  return out;
}

BilinearAlgorithm tensor_power(const BilinearAlgorithm& a, int k) {
  CCA_EXPECTS(k >= 0);
  BilinearAlgorithm out;
  out.d = 1;
  out.m = 1;
  out.alpha = {{{0, 1}}};
  out.beta = {{{0, 1}}};
  out.lambda = {{{0, 1}}};
  for (int i = 0; i < k; ++i) out = tensor(out, a);
  return out;
}

bool verify_bilinear(const BilinearAlgorithm& alg) {
  const int d = alg.d;
  // Dense tensors of the coefficient families for O(1) lookup.
  const auto dd = static_cast<std::size_t>(d) * static_cast<std::size_t>(d);
  const auto md = static_cast<std::size_t>(alg.m);
  std::vector<std::int64_t> a(md * dd), b(md * dd), l(dd * md);
  for (int w = 0; w < alg.m; ++w) {
    for (const auto& c : alg.alpha[static_cast<std::size_t>(w)])
      a[static_cast<std::size_t>(w) * dd + static_cast<std::size_t>(c.index)] +=
          c.coeff;
    for (const auto& c : alg.beta[static_cast<std::size_t>(w)])
      b[static_cast<std::size_t>(w) * dd + static_cast<std::size_t>(c.index)] +=
          c.coeff;
  }
  for (std::size_t e = 0; e < dd; ++e)
    for (const auto& c : alg.lambda[e])
      l[e * md + static_cast<std::size_t>(c.index)] += c.coeff;

  // Brent equations: sum_w alpha_w[a1,a2] beta_w[b1,b2] lambda[(i,j)][w]
  // must equal [a2==b1][i==a1][j==b2].
  for (int a1 = 0; a1 < d; ++a1)
    for (int a2 = 0; a2 < d; ++a2)
      for (int b1 = 0; b1 < d; ++b1)
        for (int b2 = 0; b2 < d; ++b2)
          for (int i = 0; i < d; ++i)
            for (int j = 0; j < d; ++j) {
              std::int64_t sum = 0;
              const auto ea = static_cast<std::size_t>(a1 * d + a2);
              const auto eb = static_cast<std::size_t>(b1 * d + b2);
              const auto el = static_cast<std::size_t>(i * d + j);
              for (std::size_t w = 0; w < md; ++w)
                sum += a[w * dd + ea] * b[w * dd + eb] * l[el * md + w];
              const std::int64_t want =
                  (a2 == b1 && i == a1 && j == b2) ? 1 : 0;
              if (sum != want) return false;
            }
  return true;
}

}  // namespace cca
