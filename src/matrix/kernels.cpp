#include "matrix/kernels.hpp"

#include <algorithm>
#include <vector>

#include "util/contracts.hpp"

namespace cca {

Matrix<std::uint8_t> multiply_bool_packed(const Matrix<std::uint8_t>& a,
                                          const Matrix<std::uint8_t>& b) {
  CCA_EXPECTS(a.cols() == b.rows());
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.cols();
  Matrix<std::uint8_t> out(n, m, 0);
  if (n == 0 || k == 0 || m == 0) return out;

  const std::size_t words_per_row = (static_cast<std::size_t>(m) + 63) / 64;
  std::vector<std::uint64_t> packed(static_cast<std::size_t>(k) *
                                        words_per_row,
                                    0);
  for (int r = 0; r < k; ++r) {
    const std::uint8_t* brow = b.row(r);
    std::uint64_t* prow = packed.data() +
                          static_cast<std::size_t>(r) * words_per_row;
    for (int j = 0; j < m; ++j)
      if (brow[j] != 0)
        prow[static_cast<std::size_t>(j) / 64] |=
            std::uint64_t{1} << (static_cast<std::size_t>(j) % 64);
  }

  std::vector<std::uint64_t> acc(words_per_row);
  for (int i = 0; i < n; ++i) {
    std::fill(acc.begin(), acc.end(), 0);
    const std::uint8_t* arow = a.row(i);
    for (int r = 0; r < k; ++r) {
      if (arow[r] == 0) continue;
      const std::uint64_t* prow = packed.data() +
                                  static_cast<std::size_t>(r) * words_per_row;
      for (std::size_t w = 0; w < words_per_row; ++w) acc[w] |= prow[w];
    }
    std::uint8_t* orow = out.row(i);
    for (int j = 0; j < m; ++j)
      orow[j] = static_cast<std::uint8_t>(
          (acc[static_cast<std::size_t>(j) / 64] >>
           (static_cast<std::size_t>(j) % 64)) &
          1);
  }
  return out;
}

Matrix<std::int64_t> multiply_i64_blocked(const Matrix<std::int64_t>& a,
                                          const Matrix<std::int64_t>& b) {
  CCA_EXPECTS(a.cols() == b.rows());
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.cols();
  Matrix<std::int64_t> out(n, m, 0);
  if (n == 0 || k == 0 || m == 0) return out;

  // Pack B^T once: column j of B becomes the contiguous run bt[j*k .. j*k+k)
  // so each output entry is a dot product of two contiguous int64 runs.
  std::vector<std::int64_t> bt(static_cast<std::size_t>(k) *
                               static_cast<std::size_t>(m));
  for (int r = 0; r < k; ++r) {
    const std::int64_t* brow = b.row(r);
    for (int j = 0; j < m; ++j)
      bt[static_cast<std::size_t>(j) * static_cast<std::size_t>(k) +
         static_cast<std::size_t>(r)] = brow[j];
  }

  // Four output columns at a time: the A row is read once per tile and four
  // independent accumulators keep the multiply pipeline full.
  const std::size_t ks = static_cast<std::size_t>(k);
  for (int i = 0; i < n; ++i) {
    const std::int64_t* arow = a.row(i);
    std::int64_t* orow = out.row(i);
    int j = 0;
    for (; j + 4 <= m; j += 4) {
      const std::int64_t* c0 = bt.data() + static_cast<std::size_t>(j) * ks;
      const std::int64_t* c1 = c0 + ks;
      const std::int64_t* c2 = c1 + ks;
      const std::int64_t* c3 = c2 + ks;
      std::int64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
      for (int r = 0; r < k; ++r) {
        const std::int64_t air = arow[r];
        s0 += air * c0[r];
        s1 += air * c1[r];
        s2 += air * c2[r];
        s3 += air * c3[r];
      }
      orow[j] = s0;
      orow[j + 1] = s1;
      orow[j + 2] = s2;
      orow[j + 3] = s3;
    }
    for (; j < m; ++j) {
      const std::int64_t* col = bt.data() + static_cast<std::size_t>(j) * ks;
      std::int64_t acc = 0;
      for (int r = 0; r < k; ++r) acc += arow[r] * col[r];
      orow[j] = acc;
    }
  }
  return out;
}

Matrix<std::int64_t> multiply_minplus_blocked(const Matrix<std::int64_t>& a,
                                              const Matrix<std::int64_t>& b) {
  CCA_EXPECTS(a.cols() == b.rows());
  constexpr std::int64_t kInf = MinPlusSemiring::kInf;
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.cols();
  Matrix<std::int64_t> out(n, m, kInf);
  if (n == 0 || k == 0 || m == 0) return out;

  // Rows of b with no infinite entry take a branch-free inner loop; rows
  // with infinities mirror MinPlusSemiring::mul's saturation exactly by
  // skipping those entries (aik + inf must NOT compete, even for aik < 0).
  std::vector<std::uint8_t> row_has_inf(static_cast<std::size_t>(k), 0);
  for (int r = 0; r < k; ++r) {
    const std::int64_t* brow = b.row(r);
    for (int j = 0; j < m; ++j)
      if (brow[j] >= kInf) {
        row_has_inf[static_cast<std::size_t>(r)] = 1;
        break;
      }
  }

  constexpr int kBlock = 64;  // contraction-dimension tile kept hot in L1
  for (int r0 = 0; r0 < k; r0 += kBlock) {
    const int r1 = std::min(r0 + kBlock, k);
    for (int i = 0; i < n; ++i) {
      std::int64_t* orow = out.row(i);
      const std::int64_t* arow = a.row(i);
      for (int r = r0; r < r1; ++r) {
        const auto aik = arow[r];
        if (aik >= kInf) continue;  // infinite row entry contributes nothing
        const std::int64_t* brow = b.row(r);
        if (!row_has_inf[static_cast<std::size_t>(r)]) {
          for (int j = 0; j < m; ++j) {
            const auto cand = aik + brow[j];
            if (cand < orow[j]) orow[j] = cand;
          }
        } else {
          for (int j = 0; j < m; ++j) {
            if (brow[j] >= kInf) continue;
            const auto cand = aik + brow[j];
            if (cand < orow[j]) orow[j] = cand;
          }
        }
      }
    }
  }
  return out;
}

}  // namespace cca
