// Capped (truncated) integer polynomials: the ring Z[X] / X^cap.
//
// Lemma 18 of the paper embeds the min-plus (distance) product into a ring
// product by mapping entry w to X^w; products of n x n matrices then have
// entries of degree < cap = 2M + 1 with coefficients of absolute value
// poly(n), and the distance is recovered as the lowest degree with a
// non-zero coefficient. Transmitting one entry costs `cap` machine words,
// which is exactly the paper's O(M) bandwidth factor in Lemma 18.
#pragma once

#include <cstdint>
#include <vector>

#include "util/contracts.hpp"

namespace cca {

class CappedPoly {
 public:
  /// The zero polynomial with `cap` tracked coefficients (degrees 0..cap-1).
  CappedPoly() = default;  // cap 0; usable only as a placeholder
  explicit CappedPoly(int cap) : coeff_(static_cast<std::size_t>(cap)) {
    CCA_EXPECTS(cap >= 0);
  }

  /// coeff * X^degree (degrees >= cap are truncated away).
  static CappedPoly monomial(int cap, int degree, std::int64_t coeff = 1) {
    CCA_EXPECTS(degree >= 0);
    CappedPoly p(cap);
    if (degree < cap) p.coeff_[static_cast<std::size_t>(degree)] = coeff;
    return p;
  }

  [[nodiscard]] int cap() const noexcept {
    return static_cast<int>(coeff_.size());
  }
  [[nodiscard]] std::int64_t coeff(int degree) const {
    CCA_EXPECTS(degree >= 0 && degree < cap());
    return coeff_[static_cast<std::size_t>(degree)];
  }
  [[nodiscard]] std::int64_t& coeff(int degree) {
    CCA_EXPECTS(degree >= 0 && degree < cap());
    return coeff_[static_cast<std::size_t>(degree)];
  }

  /// Lowest degree with a non-zero coefficient, or -1 if zero.
  [[nodiscard]] int min_degree() const noexcept {
    for (int d = 0; d < cap(); ++d)
      if (coeff_[static_cast<std::size_t>(d)] != 0) return d;
    return -1;
  }

  friend bool operator==(const CappedPoly& a, const CappedPoly& b) {
    return a.coeff_ == b.coeff_;
  }

 private:
  std::vector<std::int64_t> coeff_;
};

/// The ring Z[X]/X^cap. All values flowing through it must share `cap`.
/// Zero contract: the all-zero-coefficient polynomial annihilates the
/// truncated convolution (tests/test_matrix.cpp ZeroSkipAudit).
struct PolyRing {
  using Value = CappedPoly;
  int cap = 1;

  [[nodiscard]] Value zero() const { return CappedPoly(cap); }
  [[nodiscard]] Value one() const { return CappedPoly::monomial(cap, 0); }

  [[nodiscard]] Value add(const Value& a, const Value& b) const {
    CCA_EXPECTS(a.cap() == cap && b.cap() == cap);
    Value out(cap);
    for (int d = 0; d < cap; ++d) out.coeff(d) = a.coeff(d) + b.coeff(d);
    return out;
  }
  [[nodiscard]] Value sub(const Value& a, const Value& b) const {
    CCA_EXPECTS(a.cap() == cap && b.cap() == cap);
    Value out(cap);
    for (int d = 0; d < cap; ++d) out.coeff(d) = a.coeff(d) - b.coeff(d);
    return out;
  }
  [[nodiscard]] Value mul(const Value& a, const Value& b) const {
    CCA_EXPECTS(a.cap() == cap && b.cap() == cap);
    Value out(cap);
    for (int i = 0; i < cap; ++i) {
      const auto ai = a.coeff(i);
      if (ai == 0) continue;
      for (int j = 0; i + j < cap; ++j) {
        const auto bj = b.coeff(j);
        if (bj != 0) out.coeff(i + j) += ai * bj;
      }
    }
    return out;
  }
};

}  // namespace cca
