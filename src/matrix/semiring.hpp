// Semiring and ring structures for matrix algebra.
//
// The paper's algorithms are generic over the algebra: the 3D algorithm of
// Section 2.1 works over any semiring (Theorem 1 part 1) and the bilinear
// scheme of Section 2.2 needs a ring (Lemma 10). The applications use
//   * the integer ring          — cycle counting (Corollary 2), Seidel,
//   * the Boolean semiring      — reachability, colour-coding, girth,
//   * the min-plus semiring     — distance products / APSP (Section 3.3),
//   * capped polynomial rings   — the Lemma 18 embedding (see poly.hpp).
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>

namespace cca {

/// Semantic contract (beyond the syntactic requirements below): add is
/// associative and commutative with identity zero(), mul is associative
/// with identity one() and distributes over add, and zero() is a TWO-SIDED
/// MULTIPLICATIVE ANNIHILATOR: mul(zero(), x) == mul(x, zero()) == zero()
/// for every representable x — including values outside the "canonical"
/// range (a saturating min-plus mul must return infinity for
/// mul(finite, inf) even when the finite operand is negative, never the
/// wrapped sum inf + w). The annihilator law is load-bearing, not a
/// nicety: the schoolbook multiply() skips zero left operands
/// (ops.hpp:multiply), and the sparse engine (mm_semiring_sparse) drops
/// zero entries from the wire entirely, so a semiring whose zero fails to
/// annihilate would make those paths disagree with the no-skip sum.
/// tests/test_matrix.cpp pins the law and the skip/no-skip equivalence for
/// every semiring in the repo, with adversarial negative-weight and
/// infinity mixes for the tropical ones.
template <typename S>
concept Semiring = requires(const S s, typename S::Value a, typename S::Value b) {
  typename S::Value;
  { s.zero() } -> std::same_as<typename S::Value>;
  { s.one() } -> std::same_as<typename S::Value>;
  { s.add(a, b) } -> std::same_as<typename S::Value>;
  { s.mul(a, b) } -> std::same_as<typename S::Value>;
};

template <typename S>
concept Ring = Semiring<S> && requires(const S s, typename S::Value a,
                                       typename S::Value b) {
  { s.sub(a, b) } -> std::same_as<typename S::Value>;
};

/// The ring (Z, +, *) on 64-bit integers. Zero contract: the literal 0
/// annihilates products exactly (tests/test_matrix.cpp ZeroSkipAudit).
struct IntRing {
  using Value = std::int64_t;
  [[nodiscard]] Value zero() const noexcept { return 0; }
  [[nodiscard]] Value one() const noexcept { return 1; }
  [[nodiscard]] Value add(Value a, Value b) const noexcept { return a + b; }
  [[nodiscard]] Value sub(Value a, Value b) const noexcept { return a - b; }
  [[nodiscard]] Value mul(Value a, Value b) const noexcept { return a * b; }
};

/// The Boolean semiring ({0,1}, or, and). Value is a byte, not bool, to keep
/// Matrix<Value> free of vector<bool> proxy issues. Zero contract:
/// 0 & x == 0 for every byte (tests/test_matrix.cpp ZeroSkipAudit).
struct BoolSemiring {
  using Value = std::uint8_t;
  [[nodiscard]] Value zero() const noexcept { return 0; }
  [[nodiscard]] Value one() const noexcept { return 1; }
  [[nodiscard]] Value add(Value a, Value b) const noexcept {
    return static_cast<Value>(a | b);
  }
  [[nodiscard]] Value mul(Value a, Value b) const noexcept {
    return static_cast<Value>(a & b);
  }
};

/// The min-plus (tropical) semiring on 64-bit integers with +infinity.
/// "zero" is +infinity (identity of min), "one" is 0 (identity of +).
/// Zero contract: mul saturates at kInf for ANY operand — negative weights
/// included, never the wrapped sum inf + w (tests/test_matrix.cpp
/// ZeroSkipAudit pins the adversarial mixes).
struct MinPlusSemiring {
  using Value = std::int64_t;
  /// Sentinel infinity; small enough that inf + inf does not overflow.
  static constexpr Value kInf = std::numeric_limits<Value>::max() / 4;

  [[nodiscard]] Value zero() const noexcept { return kInf; }
  [[nodiscard]] Value one() const noexcept { return 0; }
  [[nodiscard]] Value add(Value a, Value b) const noexcept {
    return a < b ? a : b;
  }
  [[nodiscard]] Value mul(Value a, Value b) const noexcept {
    if (a >= kInf || b >= kInf) return kInf;
    return a + b;
  }
  [[nodiscard]] static bool is_inf(Value a) noexcept { return a >= kInf; }
};

static_assert(Ring<IntRing>);
static_assert(Semiring<BoolSemiring>);
static_assert(Semiring<MinPlusSemiring>);

/// The semiring element c·1 for c >= 0 (c additions of one(), done ONCE per
/// coefficient). By distributivity c·x = (c·1)·x in any semiring, so an
/// integer coefficient applies as one multiply-accumulate per entry instead
/// of |c| repeated additions per entry. Shared by the bilinear coefficient
/// machinery (apply_bilinear, mm_fast_bilinear Steps 2/6).
template <Semiring S>
[[nodiscard]] typename S::Value scalar_of(const S& s, std::int64_t c) {
  auto acc = s.zero();
  for (std::int64_t i = 0; i < c; ++i) acc = s.add(acc, s.one());
  return acc;
}

}  // namespace cca
