// Bilinear matrix multiplication algorithms as data (paper Section 2.2).
//
// A bilinear algorithm for d x d matrices with m scalar multiplications is a
// triple of coefficient families (alpha, beta, lambda):
//
//   S^(w) = sum_{ij} alpha_ijw S_ij,   T^(w) = sum_{ij} beta_ijw T_ij,
//   P^(w) = S^(w) * T^(w),             P_ij  = sum_w lambda_ijw P^(w).
//
// Lemma 10 of the paper turns ANY such algorithm into a congested clique
// matrix multiplication running in O(n^{1-2/sigma}) rounds where m(d) =
// O(d^sigma). We represent the coefficients sparsely, provide Strassen's
// <2,2,2;7> algorithm and the trivial <d,d,d;d^3> algorithm as instances,
// and build larger instances by tensor powering — exactly the family the
// paper's Lemma 10 requires.
#pragma once

#include <cstdint>
#include <vector>

#include "matrix/matrix.hpp"
#include "matrix/semiring.hpp"

namespace cca {

/// One sparse coefficient: `entry` indexes a d*d matrix entry (i*d + j) for
/// alpha/beta, or a product index w for lambda rows.
struct SparseCoeff {
  int index = 0;
  std::int64_t coeff = 0;
};

/// A bilinear algorithm <d,d,d;m>. Coefficients are stored sparsely:
/// alpha[w], beta[w] list the input entries combined into the w-th product;
/// lambda[i*d+j] lists the products combined into output entry (i,j).
struct BilinearAlgorithm {
  int d = 1;
  int m = 1;
  std::vector<std::vector<SparseCoeff>> alpha;   ///< size m
  std::vector<std::vector<SparseCoeff>> beta;    ///< size m
  std::vector<std::vector<SparseCoeff>> lambda;  ///< size d*d

  /// sigma such that m == d^sigma (the algorithm's exponent).
  [[nodiscard]] double sigma() const;
};

/// The trivial schoolbook algorithm <d,d,d;d^3>.
[[nodiscard]] BilinearAlgorithm schoolbook_algorithm(int d);

/// Strassen's algorithm <2,2,2;7>.
[[nodiscard]] BilinearAlgorithm strassen_algorithm();

/// Tensor (Kronecker) product of two bilinear algorithms:
/// <d1 d2, d1 d2, d1 d2; m1 m2>.
[[nodiscard]] BilinearAlgorithm tensor(const BilinearAlgorithm& a,
                                       const BilinearAlgorithm& b);

/// k-fold tensor power (k >= 0; k == 0 gives the trivial <1,1,1;1>).
[[nodiscard]] BilinearAlgorithm tensor_power(const BilinearAlgorithm& a,
                                             int k);

/// Apply the algorithm once (no recursion) to d x d matrices over a ring.
/// This is the sequential reference for both the tests and the distributed
/// implementation of Section 2.2.
template <Ring R>
[[nodiscard]] Matrix<typename R::Value> apply_bilinear(
    const R& r, const BilinearAlgorithm& alg,
    const Matrix<typename R::Value>& s, const Matrix<typename R::Value>& t) {
  CCA_EXPECTS(s.rows() == alg.d && s.cols() == alg.d);
  CCA_EXPECTS(t.rows() == alg.d && t.cols() == alg.d);
  using V = typename R::Value;

  // A coefficient applies as one multiply-accumulate: c·x = (c·1)·x by
  // distributivity (exact in any ring, see scalar_of), with the |c| == 1
  // add/sub fast path.
  auto accumulate = [&](V& acc, const V& term, std::int64_t coeff) {
    if (coeff == 0) return;
    if (coeff == 1) {
      acc = r.add(acc, term);
      return;
    }
    if (coeff == -1) {
      acc = r.sub(acc, term);
      return;
    }
    const V scaled = r.mul(scalar_of(r, coeff > 0 ? coeff : -coeff), term);
    acc = coeff > 0 ? r.add(acc, scaled) : r.sub(acc, scaled);
  };

  auto combine = [&](const std::vector<SparseCoeff>& coeffs,
                     const Matrix<V>& mat) {
    V acc = r.zero();
    for (const auto& c : coeffs)
      accumulate(acc, mat(c.index / alg.d, c.index % alg.d), c.coeff);
    return acc;
  };

  std::vector<V> products(static_cast<std::size_t>(alg.m), r.zero());
  for (int w = 0; w < alg.m; ++w)
    products[static_cast<std::size_t>(w)] =
        r.mul(combine(alg.alpha[static_cast<std::size_t>(w)], s),
              combine(alg.beta[static_cast<std::size_t>(w)], t));

  Matrix<V> p(alg.d, alg.d, r.zero());
  for (int i = 0; i < alg.d; ++i)
    for (int j = 0; j < alg.d; ++j) {
      V acc = r.zero();
      for (const auto& c :
           alg.lambda[static_cast<std::size_t>(i * alg.d + j)])
        accumulate(acc, products[static_cast<std::size_t>(c.index)], c.coeff);
      p(i, j) = acc;
    }
  return p;
}

/// Exhaustive symbolic verification that `alg` computes matrix products:
/// checks sum_w alpha_w[ab] beta_w[cd] lambda[ij][w] == [b==c][i==a][j==d]
/// for all entry combinations. O(d^6 m) — use on small d only.
[[nodiscard]] bool verify_bilinear(const BilinearAlgorithm& alg);

}  // namespace cca
