#include "util/math.hpp"

#include "util/contracts.hpp"

namespace cca {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept {
  CCA_EXPECTS(a >= 0 && b > 0);
  return (a + b - 1) / b;
}

std::int64_t isqrt(std::int64_t x) noexcept {
  CCA_EXPECTS(x >= 0);
  if (x < 2) return x;
  // Newton iteration from a double estimate, then correct.
  auto r = static_cast<std::int64_t>(__builtin_sqrt(static_cast<double>(x)));
  while (r > 0 && r * r > x) --r;
  while ((r + 1) * (r + 1) <= x) ++r;
  return r;
}

std::int64_t icbrt(std::int64_t x) noexcept {
  CCA_EXPECTS(x >= 0);
  if (x < 2) return x;
  auto r = static_cast<std::int64_t>(
      __builtin_cbrt(static_cast<double>(x)));
  while (r > 0 && r * r * r > x) --r;
  while ((r + 1) * (r + 1) * (r + 1) <= x) ++r;
  return r;
}

bool is_perfect_square(std::int64_t x) noexcept {
  if (x < 0) return false;
  const std::int64_t r = isqrt(x);
  return r * r == x;
}

bool is_perfect_cube(std::int64_t x) noexcept {
  if (x < 0) return false;
  const std::int64_t r = icbrt(x);
  return r * r * r == x;
}

std::int64_t ipow(std::int64_t base, int exp) noexcept {
  CCA_EXPECTS(exp >= 0);
  std::int64_t result = 1;
  for (int i = 0; i < exp; ++i) result *= base;
  return result;
}

std::int64_t next_cube(std::int64_t x) noexcept {
  CCA_EXPECTS(x >= 0);
  std::int64_t r = icbrt(x);
  if (r * r * r < x) ++r;
  return r * r * r;
}

std::int64_t next_square(std::int64_t x) noexcept {
  CCA_EXPECTS(x >= 0);
  std::int64_t r = isqrt(x);
  if (r * r < x) ++r;
  return r * r;
}

std::int64_t next_square_with_root_multiple(std::int64_t x,
                                            std::int64_t d) noexcept {
  CCA_EXPECTS(x >= 0 && d >= 1);
  std::int64_t r = isqrt(x);
  if (r * r < x) ++r;
  r = ceil_div(r, d) * d;
  return r * r;
}

std::int64_t floor_pow2(std::int64_t x) noexcept {
  CCA_EXPECTS(x >= 1);
  std::int64_t p = 1;
  while (p * 2 <= x) p *= 2;
  return p;
}

std::int64_t ceil_pow2(std::int64_t x) noexcept {
  CCA_EXPECTS(x >= 1);
  std::int64_t p = 1;
  while (p < x) p *= 2;
  return p;
}

int ilog2(std::int64_t x) noexcept {
  CCA_EXPECTS(x >= 1);
  int k = 0;
  while ((std::int64_t{1} << (k + 1)) <= x) ++k;
  return k;
}

std::vector<std::int64_t> mixed_radix(
    std::int64_t v, const std::vector<std::int64_t>& radices) {
  std::int64_t prod = 1;
  for (const auto r : radices) {
    CCA_EXPECTS(r >= 1);
    prod *= r;
  }
  CCA_EXPECTS(v >= 0 && v < prod);
  std::vector<std::int64_t> digits(radices.size());
  for (std::size_t i = radices.size(); i-- > 0;) {
    digits[i] = v % radices[i];
    v /= radices[i];
  }
  return digits;
}

std::int64_t from_mixed_radix(const std::vector<std::int64_t>& digits,
                              const std::vector<std::int64_t>& radices) {
  CCA_EXPECTS(digits.size() == radices.size());
  std::int64_t v = 0;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    CCA_EXPECTS(digits[i] >= 0 && digits[i] < radices[i]);
    v = v * radices[i] + digits[i];
  }
  return v;
}

}  // namespace cca
