#include "util/fit.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace cca {

PowerFit fit_power_law(const std::vector<double>& xs,
                       const std::vector<double>& ys) {
  CCA_EXPECTS(xs.size() == ys.size());
  CCA_EXPECTS(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());

  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    CCA_EXPECTS(xs[i] > 0 && ys[i] > 0);
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
  }

  const double denom = n * sxx - sx * sx;
  PowerFit fit;
  if (denom == 0) {
    // All x identical; exponent is undefined, report a flat fit.
    fit.exponent = 0.0;
    fit.coefficient = std::exp(sy / n);
    fit.r_squared = 1.0;
    return fit;
  }
  const double slope = (n * sxy - sx * sy) / denom;
  const double intercept = (sy - slope * sx) / n;
  fit.exponent = slope;
  fit.coefficient = std::exp(intercept);

  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = intercept + slope * std::log(xs[i]);
    const double resid = std::log(ys[i]) - pred;
    ss_res += resid * resid;
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace cca
