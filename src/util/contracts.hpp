// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").
//
// Contracts stay enabled in all build types: the library is a research
// artifact where silent corruption of round accounting would invalidate
// results. Two distinct failure families:
//
//  * CCA_EXPECTS / CCA_ENSURES / CCA_ASSERT — programmer-error contracts.
//    Default behaviour aborts with a diagnostic. A long-running service
//    embedding the engine can switch the process to
//    ContractFailureMode::Throw, turning violations into catchable
//    cca::ContractViolation exceptions so one poisoned request cannot take
//    the whole service down. The mode is process-global and atomic.
//
//  * CCA_VALIDATE — rejection of bad USER input (n < 1, non-square or
//    mismatched matrices, negative bounds) at engine entry points. Always
//    throws cca::InvalidArgument regardless of the contract mode: user
//    input errors are recoverable by the caller by construction and must
//    never abort, nor silently corrupt state deep in a staging loop.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace cca {

/// A programmer-error contract (CCA_EXPECTS / CCA_ENSURES / CCA_ASSERT)
/// failed while the process runs in ContractFailureMode::Throw.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Bad user input detected at an engine entry point (CCA_VALIDATE). Always
/// thrown — argument errors are the caller's to handle, in every mode.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// What a failed CCA_EXPECTS / CCA_ENSURES / CCA_ASSERT does.
enum class ContractFailureMode {
  Abort,  ///< fprintf diagnostic + std::abort() (default; research runs)
  Throw,  ///< throw cca::ContractViolation (service mode)
};

namespace detail {

inline std::atomic<ContractFailureMode>& contract_mode() noexcept {
  static std::atomic<ContractFailureMode> mode{ContractFailureMode::Abort};
  return mode;
}

}  // namespace detail

inline void set_contract_failure_mode(ContractFailureMode m) noexcept {
  detail::contract_mode().store(m, std::memory_order_relaxed);
}

[[nodiscard]] inline ContractFailureMode contract_failure_mode() noexcept {
  return detail::contract_mode().load(std::memory_order_relaxed);
}

namespace detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  char msg[512];
  std::snprintf(msg, sizeof msg, "%s violation: (%s) at %s:%d", kind, expr,
                file, line);
  if (contract_failure_mode() == ContractFailureMode::Throw)
    throw ContractViolation(msg);
  std::fprintf(stderr, "%s\n", msg);
  std::abort();
}

[[noreturn]] inline void invalid_argument_failure(const char* what,
                                                  const char* expr,
                                                  const char* file, int line) {
  char msg[512];
  std::snprintf(msg, sizeof msg, "invalid argument: %s [(%s) at %s:%d]", what,
                expr, file, line);
  throw InvalidArgument(msg);
}

}  // namespace detail

}  // namespace cca

#define CCA_EXPECTS(expr)                                                  \
  ((expr) ? static_cast<void>(0)                                           \
          : ::cca::detail::contract_failure("precondition", #expr,         \
                                            __FILE__, __LINE__))

#define CCA_ENSURES(expr)                                                  \
  ((expr) ? static_cast<void>(0)                                           \
          : ::cca::detail::contract_failure("postcondition", #expr,        \
                                            __FILE__, __LINE__))

#define CCA_ASSERT(expr)                                                   \
  ((expr) ? static_cast<void>(0)                                           \
          : ::cca::detail::contract_failure("invariant", #expr,            \
                                            __FILE__, __LINE__))

/// Reject bad user input with a typed cca::InvalidArgument. `what` is a
/// human-readable description of the requirement ("n must be >= 1").
#define CCA_VALIDATE(expr, what)                                           \
  ((expr) ? static_cast<void>(0)                                           \
          : ::cca::detail::invalid_argument_failure(what, #expr,           \
                                                    __FILE__, __LINE__))
