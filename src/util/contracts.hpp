// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").
//
// Violations indicate programmer error, never user input error; they abort
// with a diagnostic. Contracts stay enabled in all build types: the library
// is a research artifact where silent corruption of round accounting would
// invalidate results.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cca::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violation: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace cca::detail

#define CCA_EXPECTS(expr)                                                  \
  ((expr) ? static_cast<void>(0)                                           \
          : ::cca::detail::contract_failure("precondition", #expr,         \
                                            __FILE__, __LINE__))

#define CCA_ENSURES(expr)                                                  \
  ((expr) ? static_cast<void>(0)                                           \
          : ::cca::detail::contract_failure("postcondition", #expr,        \
                                            __FILE__, __LINE__))

#define CCA_ASSERT(expr)                                                   \
  ((expr) ? static_cast<void>(0)                                           \
          : ::cca::detail::contract_failure("invariant", #expr,            \
                                            __FILE__, __LINE__))
