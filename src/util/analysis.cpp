#include "util/analysis.hpp"

#include <cstdio>
#include <cstdlib>

// StagingTracker's slot bookkeeping deliberately uses relaxed atomics: the
// tracker only ever compares tokens within ONE parallel_for region, whose
// fork/join already orders every slot access, so stronger orders would buy
// nothing. Under ThreadSanitizer the relaxed pair still carries no
// happens-before edge, so TSan would (correctly, per its model) not link a
// worker's token store to the next reader's load. The explicit
// __tsan_release / __tsan_acquire annotations publish that fork/join edge
// on the slot address, keeping instrumented runs quiet without upgrading
// the memory order the production build pays for.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CCA_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define CCA_TSAN 1
#endif
#ifdef CCA_TSAN
extern "C" {
void __tsan_acquire(void* addr);
void __tsan_release(void* addr);
}
#define CCA_TSAN_ACQUIRE(addr) __tsan_acquire(addr)
#define CCA_TSAN_RELEASE(addr) __tsan_release(addr)
#else
#define CCA_TSAN_ACQUIRE(addr) (void)(addr)
#define CCA_TSAN_RELEASE(addr) (void)(addr)
#endif

namespace cca::analysis {

namespace {

std::string format_violation(const Violation& v) {
  std::string out = contract_name(v.kind);
  out += " violation";
  if (v.src >= 0) out += " src=" + std::to_string(v.src);
  if (v.dst >= 0) out += " dst=" + std::to_string(v.dst);
  if (v.superstep >= 0) out += " superstep=" + std::to_string(v.superstep);
  if (!v.detail.empty()) {
    out += ": ";
    out += v.detail;
  }
  return out;
}

/// Deferred-raise state: set by fail() inside parallel regions (Throw
/// mode), consumed by raise_pending(). The message mutex-guards the
/// formatted text; the flag is the cheap signal.
std::atomic<bool> g_pending{false};
std::mutex g_pending_mu;
std::string g_pending_msg;

}  // namespace

void Report::clear() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    violations_.clear();
  }
  g_pending.store(false, std::memory_order_relaxed);
}

bool has_pending() noexcept {
  return g_pending.load(std::memory_order_relaxed);
}

void raise_pending() {
  if (!g_pending.exchange(false, std::memory_order_acq_rel)) return;
  std::string msg;
  {
    const std::lock_guard<std::mutex> lock(g_pending_mu);
    msg = g_pending_msg;
  }
  throw ContractViolation(msg);
}

std::string Report::to_string() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& v : violations_) {
    out += format_violation(v);
    out += '\n';
  }
  return out;
}

void fail(Violation v) {
  const std::string msg = format_violation(v);
  const ContractKind kind = v.kind;
  Report::instance().record(std::move(v));
  if (contract_failure_mode() != ContractFailureMode::Throw) {
    std::fprintf(stderr, "%s\n", msg.c_str());
    std::abort();
  }
  // Throw mode. An exception escaping a parallel_for worker thread would
  // std::terminate, and one escaping the calling thread's chunk would
  // unwind state the workers still reference — so in-region detections
  // are deferred to the next serial checkpoint. DeliverInParallel is the
  // exception: the violating thread is about to mutate every outbox, so
  // letting it proceed to "defer" would be the race itself; throwing here
  // stops the phase change (worst case, an undetached worker terminates
  // the process — still strictly better than silent corruption).
  if (in_parallel_region() && kind != ContractKind::DeliverInParallel) {
    {
      const std::lock_guard<std::mutex> lock(g_pending_mu);
      g_pending_msg = msg;
    }
    g_pending.store(true, std::memory_order_release);
    return;
  }
  throw ContractViolation(msg);
}

void StagingTracker::check_stage(int src, std::int64_t superstep) {
  if (src < 0 || static_cast<std::size_t>(src) >= slots_.size()) return;
  const std::uint64_t epoch = parallel_region_epoch();
  if (epoch == 0) {
    // Serial staging is a safe point: surface any violation a worker
    // deferred. The staging contract itself constrains parallel regions
    // only; clear the slot so a stale parallel-epoch owner cannot alias a
    // later epoch (epochs are monotone, so this is belt-and-braces).
    raise_pending();
    slots_[static_cast<std::size_t>(src)].owner.store(
        0, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t token = (epoch << 20) | thread_token();
  auto& slot = slots_[static_cast<std::size_t>(src)].owner;
  CCA_TSAN_ACQUIRE(&slot);
  const std::uint64_t cur = slot.load(std::memory_order_relaxed);
  if (cur != 0 && (cur >> 20) == epoch && cur != token) {
    fail({ContractKind::CrossSourceStaging, src, -1, superstep,
          "source staged by thread " + std::to_string(cur & 0xfffff) +
              " and thread " + std::to_string(thread_token()) +
              " within one parallel_for region (epoch " +
              std::to_string(epoch) + ")"});
  }
  slot.store(token, std::memory_order_relaxed);
  CCA_TSAN_RELEASE(&slot);
}

void StagingTracker::check_phase_change(const char* what,
                                        std::int64_t superstep) {
  if (!in_parallel_region()) {
    // The serial checkpoint every superstep passes through: a violation
    // deferred from inside the preceding parallel region surfaces here,
    // before the delivery it poisoned proceeds.
    raise_pending();
    return;
  }
  fail({ContractKind::DeliverInParallel, -1, -1, superstep,
        std::string(what) +
            " invoked inside a cca::parallel_for region (epoch " +
            std::to_string(parallel_region_epoch()) + ")"});
}

}  // namespace cca::analysis
