#include "util/parallel.hpp"

#include <cstdlib>
#include <thread>
#include <vector>

namespace cca {

int parallel_workers() {
  static const int workers = [] {
    if (const char* env = std::getenv("CCA_THREADS")) {
      const int requested = std::atoi(env);
      if (requested >= 1) return requested;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return workers;
}

namespace {

thread_local bool t_in_parallel_region = false;

/// RAII marker for the duration of one chunk execution. Saves and restores
/// the prior value so a nested parallel_for (including the serial fallback)
/// does not clear the flag for the remainder of the enclosing chunk.
struct RegionMark {
  RegionMark() noexcept : prior(t_in_parallel_region) {
    t_in_parallel_region = true;
  }
  ~RegionMark() noexcept { t_in_parallel_region = prior; }
  bool prior;
};

}  // namespace

bool in_parallel_region() noexcept { return t_in_parallel_region; }

namespace detail {

void parallel_for_impl(int begin, int end,
                       const std::function<void(int, int)>& chunk) {
  const int count = end - begin;
  if (count <= 0) return;
  const int workers = std::min(parallel_workers(), count);
  if (workers <= 1) {
    const RegionMark mark;
    chunk(begin, end);
    return;
  }
  // Block partition; the calling thread takes the first block so a worker
  // group of w costs w-1 thread spawns. Per-node matrix products are
  // millisecond-scale, which dwarfs the spawn overhead.
  std::vector<std::thread> group;
  group.reserve(static_cast<std::size_t>(workers) - 1);
  const int base = count / workers;
  const int extra = count % workers;
  int at = begin;
  int first_end = 0;
  for (int w = 0; w < workers; ++w) {
    const int len = base + (w < extra ? 1 : 0);
    if (w == 0) {
      first_end = at + len;
    } else {
      group.emplace_back([&chunk](int b, int e) {
        const RegionMark mark;
        chunk(b, e);
      }, at, at + len);
    }
    at += len;
  }
  {
    const RegionMark mark;
    chunk(begin, first_end);
  }
  for (auto& t : group) t.join();
}

}  // namespace detail

}  // namespace cca
