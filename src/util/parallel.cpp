#include "util/parallel.hpp"

#include <cstdlib>
#include <thread>
#include <vector>

namespace cca {

int parallel_workers() {
  static const int workers = [] {
    if (const char* env = std::getenv("CCA_THREADS")) {
      const int requested = std::atoi(env);
      if (requested >= 1) return requested;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return workers;
}

namespace detail {

void parallel_for_impl(int begin, int end,
                       const std::function<void(int, int)>& chunk) {
  const int count = end - begin;
  if (count <= 0) return;
  const int workers = std::min(parallel_workers(), count);
  if (workers <= 1) {
    chunk(begin, end);
    return;
  }
  // Block partition; the calling thread takes the first block so a worker
  // group of w costs w-1 thread spawns. Per-node matrix products are
  // millisecond-scale, which dwarfs the spawn overhead.
  std::vector<std::thread> group;
  group.reserve(static_cast<std::size_t>(workers) - 1);
  const int base = count / workers;
  const int extra = count % workers;
  int at = begin;
  int first_end = 0;
  for (int w = 0; w < workers; ++w) {
    const int len = base + (w < extra ? 1 : 0);
    if (w == 0) {
      first_end = at + len;
    } else {
      group.emplace_back(chunk, at, at + len);
    }
    at += len;
  }
  chunk(begin, first_end);
  for (auto& t : group) t.join();
}

}  // namespace detail

}  // namespace cca
