#include "util/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

namespace cca {

int parallel_workers() {
  static const int workers = [] {
    if (const char* env = std::getenv("CCA_THREADS")) {
      const int requested = std::atoi(env);
      if (requested >= 1) return requested;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return workers;
}

namespace {

thread_local bool t_in_parallel_region = false;
thread_local std::uint64_t t_region_epoch = 0;

std::uint64_t next_region_epoch() noexcept {
  // Monotone nonzero epochs, one per parallel_for invocation. Relaxed is
  // enough: the value is only compared for equality, and it reaches the
  // workers through the std::thread constructor (which synchronizes-with
  // the thread body).
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// RAII marker for the duration of one chunk execution. Saves and restores
/// the prior values so a nested parallel_for (including the serial
/// fallback) does not clear the flag/epoch for the remainder of the
/// enclosing chunk.
struct RegionMark {
  explicit RegionMark(std::uint64_t epoch) noexcept
      : prior_in(t_in_parallel_region), prior_epoch(t_region_epoch) {
    t_in_parallel_region = true;
    t_region_epoch = epoch;
  }
  ~RegionMark() noexcept {
    t_in_parallel_region = prior_in;
    t_region_epoch = prior_epoch;
  }
  bool prior_in;
  std::uint64_t prior_epoch;
};

}  // namespace

bool in_parallel_region() noexcept { return t_in_parallel_region; }

std::uint64_t parallel_region_epoch() noexcept {
  return t_in_parallel_region ? t_region_epoch : 0;
}

std::uint32_t thread_token() noexcept {
  static std::atomic<std::uint32_t> counter{0};
  thread_local const std::uint32_t token =
      counter.fetch_add(1, std::memory_order_relaxed) + 1;
  return token;
}

namespace detail {

// Happens-before audit (the TSan contract of the worker group):
//  * chunk state flows into each worker through the std::thread
//    constructor, which synchronizes-with the start of the thread body —
//    every write the caller made before parallel_for is visible to every
//    worker without further synchronization.
//  * workers write only their own disjoint index blocks (the documented
//    fn contract), so no two threads touch the same location while the
//    region runs.
//  * thread::join() at the end synchronizes-with each worker's
//    completion, so all worker writes are visible to the caller before
//    parallel_for returns. There are no other cross-thread channels: the
//    region bookkeeping (t_in_parallel_region / t_region_epoch) is
//    thread_local, and the epoch/token counters are atomics.
void parallel_for_impl(int begin, int end,
                       const std::function<void(int, int)>& chunk) {
  const int count = end - begin;
  if (count <= 0) return;
  const int workers = std::min(parallel_workers(), count);
  const std::uint64_t epoch = next_region_epoch();
  if (workers <= 1) {
    const RegionMark mark(epoch);
    chunk(begin, end);
    return;
  }
  // Block partition; the calling thread takes the first block so a worker
  // group of w costs w-1 thread spawns. Per-node matrix products are
  // millisecond-scale, which dwarfs the spawn overhead.
  std::vector<std::thread> group;
  group.reserve(static_cast<std::size_t>(workers) - 1);
  const int base = count / workers;
  const int extra = count % workers;
  int at = begin;
  int first_end = 0;
  for (int w = 0; w < workers; ++w) {
    const int len = base + (w < extra ? 1 : 0);
    if (w == 0) {
      first_end = at + len;
    } else {
      group.emplace_back([&chunk, epoch](int b, int e) {
        const RegionMark mark(epoch);
        chunk(b, e);
      }, at, at + len);
    }
    at += len;
  }
  {
    const RegionMark mark(epoch);
    chunk(begin, first_end);
  }
  for (auto& t : group) t.join();
}

}  // namespace detail

}  // namespace cca
