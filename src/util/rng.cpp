#include "util/rng.hpp"

#include "util/contracts.hpp"

namespace cca {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  // Seed all 256 bits through SplitMix64 per the xoshiro authors' advice.
  std::uint64_t x = seed;
  for (auto& s : s_) {
    x = splitmix64(x);
    s = x;
  }
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  CCA_EXPECTS(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  CCA_EXPECTS(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   next_below(span));
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) noexcept {
  CCA_EXPECTS(den > 0);
  return next_below(den) < num;
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Rng Rng::split() noexcept { return Rng(next()); }

}  // namespace cca
