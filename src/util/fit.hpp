// Log–log least-squares exponent fitting.
//
// The benchmark harness reproduces Table 1 of the paper by measuring round
// counts over a sweep of clique sizes n and fitting rounds ≈ a · n^c; the
// fitted c is compared against the paper's asymptotic exponent.
#pragma once

#include <cstddef>
#include <vector>

namespace cca {

struct PowerFit {
  double exponent = 0.0;     ///< c in rounds ≈ a * n^c
  double coefficient = 0.0;  ///< a
  double r_squared = 0.0;    ///< goodness of fit in log–log space
};

/// Fit y ≈ a * x^c by least squares on (log x, log y).
/// Requires xs.size() == ys.size() >= 2 and all values strictly positive.
PowerFit fit_power_law(const std::vector<double>& xs,
                       const std::vector<double>& ys);

}  // namespace cca
