// Minimal fork-join helper for the "free" node-local computation phases of
// the distributed algorithms.
//
// The congested clique model charges only for communication; each node's
// local work between supersteps is unbounded and embarrassingly parallel
// across the n simulated nodes. parallel_for runs those per-node loops on a
// small worker group (std::thread, block-partitioned indices). Callers must
// keep network mutation (send/deliver) OUT of the parallel region: Network
// staging is single-threaded by design, while const reads of delivered
// inboxes are safe from any thread.
#pragma once

#include <cstdint>
#include <functional>

namespace cca {

/// Worker count used by parallel_for: the CCA_THREADS environment variable
/// when set (clamped to >= 1), otherwise std::thread::hardware_concurrency.
[[nodiscard]] int parallel_workers();

/// True while the calling thread is executing a parallel_for chunk
/// (including the calling thread's own block). Single-threaded phase-change
/// operations (Network::deliver) assert on this to catch network mutation
/// from inside parallel regions.
[[nodiscard]] bool in_parallel_region() noexcept;

/// Identifier of the parallel_for region the calling thread is currently
/// executing a chunk of, or 0 when it is not inside one. Every
/// parallel_for invocation (including the serial fallback and nested
/// calls) draws a fresh nonzero epoch, so two chunk executions share an
/// epoch if and only if they belong to the SAME parallel_for call — the
/// fact the analysis layer's staging-ownership checker keys on: one
/// source staged from two distinct threads of one epoch is a violation of
/// the per-source exclusivity contract, while successive regions may
/// legally repartition sources over different workers.
[[nodiscard]] std::uint64_t parallel_region_epoch() noexcept;

/// Small dense identifier of the calling thread (assigned on first use
/// from a global counter; stable for the thread's lifetime). Cheaper and
/// more report-friendly than hashing std::thread::id, and usable as a
/// token in the analysis layer's per-source ownership slots.
[[nodiscard]] std::uint32_t thread_token() noexcept;

namespace detail {

/// Runs chunk(begin, end) over a block partition of [begin, end).
void parallel_for_impl(int begin, int end,
                       const std::function<void(int, int)>& chunk);

}  // namespace detail

/// Run fn(i) for every i in [begin, end), partitioned over the workers.
/// Falls back to a serial loop for single-worker configurations or trivial
/// ranges. fn must be safe to invoke concurrently for distinct indices.
template <typename Fn>
void parallel_for(int begin, int end, Fn&& fn) {
  detail::parallel_for_impl(begin, end, [&fn](int b, int e) {
    for (int i = b; i < e; ++i) fn(i);
  });
}

}  // namespace cca
