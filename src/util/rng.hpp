// Deterministic pseudo-random number generation.
//
// All randomized components of the library (colour-coding trials, witness
// sampling, graph generators) draw from this engine with explicit seeds so
// that every test and benchmark run is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace cca {

/// xoshiro256** by Blackman & Vigna, seeded through SplitMix64.
/// Deliberately not std::mt19937: we want a stable cross-platform stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit word.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with probability num/den. Requires den > 0.
  bool chance(std::uint64_t num, std::uint64_t den) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (for per-node or per-trial streams).
  Rng split() noexcept;

 private:
  std::uint64_t s_[4];
};

/// SplitMix64 single step; used for cheap stateless hashing as well.
std::uint64_t splitmix64(std::uint64_t x) noexcept;

}  // namespace cca
