// Small integer-arithmetic helpers shared by the partitioning schemes of the
// distributed matrix multiplication algorithms (Sections 2.1 and 2.2 of the
// paper): exact roots, ceiling division, admissible clique sizes, and
// mixed-radix node labels.
#pragma once

#include <cstdint>
#include <vector>

namespace cca {

/// Ceiling of a/b for non-negative integers. Requires b > 0.
std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept;

/// Floor of the square root.
std::int64_t isqrt(std::int64_t x) noexcept;

/// Floor of the cube root.
std::int64_t icbrt(std::int64_t x) noexcept;

/// True iff x == k^2 for some integer k.
bool is_perfect_square(std::int64_t x) noexcept;

/// True iff x == k^3 for some integer k.
bool is_perfect_cube(std::int64_t x) noexcept;

/// Integer power base^exp (no overflow checking; callers use small values).
std::int64_t ipow(std::int64_t base, int exp) noexcept;

/// Smallest perfect cube >= x. Requires x >= 0.
std::int64_t next_cube(std::int64_t x) noexcept;

/// Smallest perfect square >= x. Requires x >= 0.
std::int64_t next_square(std::int64_t x) noexcept;

/// Smallest m >= x such that m is a perfect square and d divides sqrt(m).
/// Requires x >= 0, d >= 1.
std::int64_t next_square_with_root_multiple(std::int64_t x,
                                            std::int64_t d) noexcept;

/// Round x down to the largest power of two <= x. Requires x >= 1.
std::int64_t floor_pow2(std::int64_t x) noexcept;

/// Round x up to the smallest power of two >= x. Requires x >= 1.
std::int64_t ceil_pow2(std::int64_t x) noexcept;

/// Floor of log2(x). Requires x >= 1.
int ilog2(std::int64_t x) noexcept;

/// Decompose v in a mixed-radix system with the given digit bounds,
/// most-significant digit first: v = d0*(r1*r2*...) + d1*(r2*...) + ... .
/// Requires 0 <= v < product(radices).
std::vector<std::int64_t> mixed_radix(std::int64_t v,
                                      const std::vector<std::int64_t>& radices);

/// Inverse of mixed_radix.
std::int64_t from_mixed_radix(const std::vector<std::int64_t>& digits,
                              const std::vector<std::int64_t>& radices);

}  // namespace cca
