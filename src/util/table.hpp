// Minimal ASCII table renderer used by the benchmark binaries to print
// paper-style result tables (rows of Table 1, parameter sweeps).
#pragma once

#include <string>
#include <vector>

namespace cca {

class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Render with aligned columns, header underline, and `| |` separators.
  std::string to_string() const;

  /// Number of data rows currently held.
  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers for table cells.
std::string fmt_double(double v, int precision = 3);
std::string fmt_int(long long v);

}  // namespace cca
