// Runtime concurrency & lifetime contract instrumentation.
//
// The data plane rests on contracts that asserts alone state but cannot
// localise: the per-source staging ownership invariant (network.hpp
// "Thread-safety invariant"), the single-threadedness of phase changes
// (deliver / discard_staged), and the span-validity windows around
// stage()/deliver(). This header turns them into machine-checked ones:
//
//  * ContractKind / Violation / Report — a process-global, thread-safe
//    violation log. Every detected violation is recorded (which contract,
//    which src/dst, which superstep) BEFORE the fault is raised through
//    the typed cca::ContractViolation path (contracts.hpp), so a service
//    in ContractFailureMode::Throw gets a catchable typed error AND a
//    queryable report, while the default Abort mode dies at the violation
//    site with the same formatted diagnostic.
//
//  * StagingTracker — per-Network ownership checker. Records the staging
//    thread per source and faults on cross-source staging from a parallel
//    region (one source staged by two distinct threads of one
//    cca::parallel_for epoch — the detectable signature of an iteration
//    staging outside its own src) and on deliver()/discard_staged()
//    executed inside a parallel region.
//
//  * StagedLease / InboxLease — generation-validated span wrappers. Every
//    access revalidates against Network::stage_generation(src) /
//    inbox_generation(), so a span used across its invalidation point (a
//    same-source staging call, or deliver()) faults with a typed
//    StaleStagedSpan / StaleInboxSpan violation at the USE site instead
//    of silently aliasing relocated memory. This is the portable,
//    always-on counterpart of the CCA_SANITIZE poison relocation.
//
// Cost model: checking is a process-global runtime toggle
// (analysis::set_checking / ScopedChecking). A CCA_CHECKED build only
// changes the DEFAULT to on, so the full suite runs checked in the CI
// analysis legs while plain builds pay one relaxed atomic load per
// staging call — no rounds, words, schedules, or message bytes ever
// depend on the toggle, keeping every pinned TrafficStats row
// bit-identical by construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/contracts.hpp"
#include "util/parallel.hpp"

namespace cca::analysis {

/// The machine-checked contracts. Names match the prose contracts in
/// network.hpp / transport.hpp.
enum class ContractKind {
  /// One source staged by two distinct threads within one parallel_for
  /// epoch (per-source outbox exclusivity).
  CrossSourceStaging,
  /// deliver() / discard_staged() invoked from inside a parallel region.
  DeliverInParallel,
  /// A staged span accessed after its source's stage generation moved.
  StaleStagedSpan,
  /// An inbox view accessed after deliver() rebuilt the arena.
  StaleInboxSpan,
};

[[nodiscard]] constexpr const char* contract_name(ContractKind k) noexcept {
  switch (k) {
    case ContractKind::CrossSourceStaging: return "cross-source-staging";
    case ContractKind::DeliverInParallel: return "deliver-in-parallel";
    case ContractKind::StaleStagedSpan: return "stale-staged-span";
    case ContractKind::StaleInboxSpan: return "stale-inbox-span";
  }
  return "unknown-contract";
}

/// One detected violation: which contract, which pair, which superstep
/// (deliveries completed on the offending network when it fired; -1 when
/// the site has no network context).
struct Violation {
  ContractKind kind = ContractKind::CrossSourceStaging;
  int src = -1;
  int dst = -1;
  std::int64_t superstep = -1;
  std::string detail;  ///< formatted site diagnostics (threads, epochs, ...)
};

/// Process-global violation log. Thread-safe; recording is cheap enough
/// for the failure path (violations are by definition exceptional).
class Report {
 public:
  [[nodiscard]] static Report& instance() {
    static Report r;
    return r;
  }

  void record(const Violation& v) {
    const std::lock_guard<std::mutex> lock(mu_);
    violations_.push_back(v);
  }

  [[nodiscard]] std::vector<Violation> violations() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return violations_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return violations_.size();
  }

  [[nodiscard]] std::size_t count(ContractKind k) const {
    const std::lock_guard<std::mutex> lock(mu_);
    std::size_t c = 0;
    for (const auto& v : violations_)
      if (v.kind == k) ++c;
    return c;
  }

  /// Drop every recorded violation AND any pending deferred raise.
  void clear();

  /// Human-readable report, one violation per line.
  [[nodiscard]] std::string to_string() const;

 private:
  mutable std::mutex mu_;
  std::vector<Violation> violations_;
};

namespace detail {

inline std::atomic<bool>& checking_flag() noexcept {
#ifdef CCA_CHECKED
  static std::atomic<bool> on{true};
#else
  static std::atomic<bool> on{false};
#endif
  return on;
}

}  // namespace detail

/// Whether the instrumented checkers are active. Defaults to on in
/// CCA_CHECKED builds, off otherwise; runtime-overridable either way so
/// the checker's own tests run in every build configuration.
[[nodiscard]] inline bool checking_enabled() noexcept {
  return detail::checking_flag().load(std::memory_order_relaxed);
}

inline void set_checking(bool on) noexcept {
  detail::checking_flag().store(on, std::memory_order_relaxed);
}

/// RAII checking toggle (tests; scoped hardening of a service region).
class ScopedChecking {
 public:
  explicit ScopedChecking(bool on = true) noexcept
      : prior_(checking_enabled()) {
    set_checking(on);
  }
  ~ScopedChecking() noexcept { set_checking(prior_); }
  ScopedChecking(const ScopedChecking&) = delete;
  ScopedChecking& operator=(const ScopedChecking&) = delete;

 private:
  bool prior_;
};

/// Record the violation, then raise it through the typed contract path.
/// In ContractFailureMode::Abort (the default): formatted diagnostic +
/// abort at the violation site, from any thread. In Throw mode: throws
/// cca::ContractViolation immediately when that is safe — outside
/// parallel regions, and for DeliverInParallel (where proceeding would
/// race the phase change) — but a violation detected INSIDE a
/// parallel_for chunk is deferred: an exception escaping a worker thread
/// would std::terminate, so the violation is recorded, flagged pending,
/// and rethrown from the next serial checkpoint (the next deliver /
/// discard_staged / serial staging call, or an explicit raise_pending()).
/// The report entry always carries the exact detection site either way.
void fail(Violation v);

/// Throw the deferred cca::ContractViolation, if one is pending. Called
/// by the tracker's serial checkpoints; callers driving the network
/// manually after a parallel region may also poll it directly.
void raise_pending();

/// Whether a deferred violation is waiting to be raised.
[[nodiscard]] bool has_pending() noexcept;

/// Per-Network staging-ownership checker. All methods are no-ops while
/// checking is disabled. Thread-safety: on_stage may run concurrently
/// from staging threads (the slots are relaxed atomics — the checker must
/// itself be TSan-clean); on_deliver runs from the delivering thread.
class StagingTracker {
 public:
  StagingTracker() = default;
  explicit StagingTracker(int n) { resize(n); }

  void resize(int n) {
    slots_ = std::vector<Slot>(static_cast<std::size_t>(n < 0 ? 0 : n));
  }

  /// Hook for every staging operation (send / send_words / stage) for
  /// `src`. Faults CrossSourceStaging if another thread already staged
  /// for `src` within the current parallel_for epoch. `superstep` is the
  /// report coordinate (deliveries completed on the owning network).
  void on_stage(int src, std::int64_t superstep) {
    if (!checking_enabled()) return;
    check_stage(src, superstep);
  }

  /// Hook for deliver()/discard_staged(): faults DeliverInParallel when
  /// called inside a parallel region. `what` names the operation.
  void on_phase_change(const char* what, std::int64_t superstep) {
    if (!checking_enabled()) return;
    check_phase_change(what, superstep);
  }

 private:
  // Owner token per source: (parallel_for epoch << 20) | thread_token.
  // 20 bits of thread token is far beyond any plausible worker count; the
  // epoch occupying the high bits means tokens from different regions
  // never compare equal. Token 0 = unclaimed / last staged serially.
  struct Slot {
    std::atomic<std::uint64_t> owner{0};
  };

  void check_stage(int src, std::int64_t superstep);
  void check_phase_change(const char* what, std::int64_t superstep);

  std::vector<Slot> slots_;
};

/// Generation-validated wrapper over Net::stage(): every access checks
/// that src's stage generation still matches the acquisition point, so a
/// lease used after a same-source staging call or deliver() faults with a
/// typed StaleStagedSpan at the use site. Net is a template parameter
/// only to keep util/ below clique/ in the layering; it is
/// clique::Network in practice.
template <typename Net>
class StagedLease {
 public:
  StagedLease(Net& net, int src, int dst, std::size_t nwords)
      : net_(&net),
        src_(src),
        dst_(dst),
        span_(net.stage(src, dst, nwords)),
        gen_(net.stage_generation(src)) {}

  /// The staged words; faults if the lease went stale.
  [[nodiscard]] std::span<std::uint64_t> span() const {
    validate();
    return span_;
  }

  [[nodiscard]] bool stale() const {
    return net_->stage_generation(src_) != gen_;
  }

 private:
  void validate() const {
    if (!stale()) return;
    fail({ContractKind::StaleStagedSpan, src_, dst_,
          net_->stats().supersteps,
          "staged span acquired at generation " + std::to_string(gen_) +
              " used at generation " +
              std::to_string(net_->stage_generation(src_))});
  }

  Net* net_;
  int src_;
  int dst_;
  std::span<std::uint64_t> span_;
  std::uint64_t gen_;
};

/// Generation-validated wrapper over Net::inbox(): every access checks
/// the network-wide inbox generation, so a view held across deliver()
/// faults with a typed StaleInboxSpan at the use site.
template <typename Net>
class InboxLease {
 public:
  InboxLease(const Net& net, int dst, int src)
      : net_(&net),
        dst_(dst),
        src_(src),
        span_(net.inbox(dst, src)),
        gen_(net.inbox_generation()) {}

  [[nodiscard]] std::span<const std::uint64_t> span() const {
    validate();
    return span_;
  }

  [[nodiscard]] bool stale() const {
    return net_->inbox_generation() != gen_;
  }

 private:
  void validate() const {
    if (!stale()) return;
    fail({ContractKind::StaleInboxSpan, src_, dst_,
          net_->stats().supersteps,
          "inbox view acquired at generation " + std::to_string(gen_) +
              " used at generation " +
              std::to_string(net_->inbox_generation())});
  }

  const Net* net_;
  int dst_;
  int src_;
  std::span<const std::uint64_t> span_;
  std::uint64_t gen_;
};

}  // namespace cca::analysis
