// k-cycle detection by colour-coding (paper Lemma 11 and Theorem 3).
//
// Given a colouring c : V -> [k], a COLOURFUL k-cycle (every colour used
// exactly once) is found with O(3^k) distributed matrix products through the
// recursion
//
//   C^(X) = OR over Y subset X, |Y| = ceil(|X|/2) of  C^(Y) A C^(X\Y),
//
// evaluated over the integers with clamping (an entry is nonzero iff the
// Boolean value is 1). A k-cycle exists iff C^([k])[u,v] = 1 for some arc
// (v,u). Random colourings make any fixed k-cycle colourful with
// probability >= e^{-k}, so e^k ln n trials find an existing cycle with
// high probability (Theorem 3); detection never reports false positives.
#pragma once

#include <cstdint>
#include <vector>

#include "clique/network.hpp"
#include "core/engine.hpp"
#include "graph/graph.hpp"

namespace cca::core {

struct DetectOutcome {
  bool found = false;
  int trials = 0;                ///< colourings attempted
  clique::TrafficStats traffic;  ///< rounds and words consumed
};

/// Lemma 11: detect a colourful k-cycle under the given colouring
/// (colour[v] in [0, k) for real nodes). Runs on the caller's clique with
/// `a` the padded adjacency matrix of g. Deterministic.
[[nodiscard]] bool detect_colourful_cycle(clique::Network& net,
                                          const IntMmEngine& engine,
                                          const Matrix<std::int64_t>& a,
                                          const Graph& g,
                                          const std::vector<int>& colour,
                                          int k);

/// Theorem 3: randomized k-cycle detection. Tries up to `max_trials`
/// colourings (default -1 = ceil(e^k ln n), the paper's bound) and stops at
/// the first hit. One-sided error: `found` is always sound; a false "not
/// found" happens with probability n^{-Omega(1)} at the default trial count.
[[nodiscard]] DetectOutcome detect_k_cycle_cc(const Graph& g, int k,
                                              std::uint64_t seed,
                                              int max_trials = -1,
                                              MmKind kind = MmKind::Fast,
                                              int depth = -1);

}  // namespace cca::core
