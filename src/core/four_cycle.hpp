// Constant-round 4-cycle detection (paper Theorem 4, with the Lemma 12
// tile partition).
//
// The algorithm never multiplies matrices. Phase 1 checks the total 2-walk
// count |P(x,*,*)| = sum_{y in N(x)} deg(y) at every x; if some x has at
// least 2n-1 walks a 4-cycle must exist (pigeonhole over endpoints z). If
// not, sum_y deg(y)^2 < 2n^2, so the disjoint-tile partition A(y) x B(y) of
// Lemma 12 exists; the 2-walk set P(*,y,*) is split into chunks of <= 8
// neighbours, scattered over the tile rows, forwarded tile-row -> tile-
// column (at most one tile per ordered link, hence <= 8 words per link),
// and finally every x gathers its own P(x,*,*) (< 2n-1 words) to look for a
// repeated endpoint z. Every superstep moves O(n) words per node, so the
// whole run is O(1) rounds — independent of n.
#pragma once

#include <cstdint>
#include <vector>

#include "clique/network.hpp"
#include "graph/graph.hpp"

namespace cca::core {

/// One tile of the Lemma 12 partition: rows [row0, row0+size) x columns
/// [col0, col0+size) of the k x k square, owned by node y.
struct Tile {
  int y = -1;
  int row0 = 0;
  int col0 = 0;
  int size = 0;
};

/// Deterministic Lemma 12 tiling: given all degrees (public after one
/// broadcast round), allocate disjoint tiles with size(y) >= deg(y)/8 inside
/// the k x k square, k = largest power of two <= n. Requires
/// sum_y deg(y)^2 < 2 n^2 and n >= 8 (the caller's phase 1 establishes the
/// former). Nodes with degree 0 receive no tile. Every node computes the
/// same tiling locally.
[[nodiscard]] std::vector<Tile> lemma12_tiling(
    const std::vector<std::int64_t>& degrees, int n);

struct FourCycleOutcome {
  bool found = false;
  clique::TrafficStats traffic;
};

/// Theorem 4: detect whether the (undirected) graph contains a 4-cycle in
/// O(1) rounds. Deterministic and exact. Graphs with fewer than 32 nodes
/// fall back to learning the whole graph (also O(1) rounds at that size).
[[nodiscard]] FourCycleOutcome detect_4cycle_const(const Graph& g);

}  // namespace cca::core
