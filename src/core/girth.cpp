#include "core/girth.hpp"

#include <cmath>

#include "clique/broadcast.hpp"
#include "clique/primitives.hpp"
#include "core/color_coding.hpp"
#include "core/counting.hpp"
#include "core/four_cycle.hpp"
#include "graph/reference.hpp"
#include "matrix/semiring.hpp"
#include "util/contracts.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace cca::core {

namespace {

constexpr std::int64_t kInf = MinPlusSemiring::kInf;

clique::Word pack_pair(int a, int b) {
  return (static_cast<clique::Word>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

/// Learn the whole graph at every node and compute the girth locally.
/// Cost: O(m/n) rounds through the dissemination primitive.
std::int64_t girth_by_learning(clique::Network& net, const Graph& g) {
  const int n = g.n();
  std::vector<std::vector<clique::Word>> per_node(
      static_cast<std::size_t>(n));
  for (int u = 0; u < n; ++u)
    for (const auto& [v, w] : g.out_arcs(u)) {
      (void)w;
      if (g.is_directed() || u < v)
        per_node[static_cast<std::size_t>(u)].push_back(pack_pair(u, v));
    }
  const auto edges = clique::disseminate(net, per_node);
  auto learned = g.is_directed() ? Graph::directed(n) : Graph::undirected(n);
  for (const auto w : edges) {
    const int u = static_cast<int>(w >> 32);
    const int v = static_cast<int>(w & 0xffffffffu);
    learned.add_edge(u, v);
  }
  return ref_girth(learned);
}

}  // namespace

GirthOutcome girth_undirected_cc(const Graph& g, std::uint64_t seed,
                                 MmKind kind, int depth, int trial_factor) {
  CCA_EXPECTS(!g.is_directed());
  CCA_EXPECTS(trial_factor >= 1);
  const int n = g.n();

  GirthOutcome out;
  clique::TrafficStats total{};

  // Every node learns all degrees (1 round) and hence the edge count.
  std::int64_t m = 0;
  {
    clique::Network net(std::max(1, n));
    std::vector<clique::Word> deg(static_cast<std::size_t>(std::max(1, n)), 0);
    for (int v = 0; v < n; ++v)
      deg[static_cast<std::size_t>(v)] =
          static_cast<clique::Word>(g.out_degree(v));
    const auto all = clique::broadcast_all(net, std::move(deg));
    for (const auto d : all) m += static_cast<std::int64_t>(d);
    m /= 2;
    total = net.stats();
  }

  // Sparse/dense dichotomy at l = ceil(2 + 2/rho) (Theorem 15). rho comes
  // from the engine actually in use, so the threshold adapts to the
  // implemented sigma (Strassen by default) exactly as the theorem requires.
  // The threshold is Theorem 15's uniform n^{1 + 2/l} form. The former
  // 1.0 + 1.0 / (ell / 2) evaluated ell / 2 under INTEGER division, i.e.
  // n^{1 + 1/floor(l/2)} — for EVEN l the two coincide, but for odd l
  // (the Fast engine's l = 9) the floor form kept a wider sparse side
  // (n^{1.25} vs n^{1+2/9}). That is the classical girth-(l+1) Moore
  // bound, so graphs in the gap band COULD still be learned within the
  // stated budget; the theorem's dichotomy, however, is stated at
  // n^{1+2/l}, and above it the dense path must be taken for the round
  // bound to follow from the detection cascade alone (the k <= l cascade
  // plus the learning fallback stays exact for any girth, so the choice
  // of threshold never affects answers). test_girth.cpp pins an odd-l
  // band instance whose dichotomy choice flips to dense.
  const double rho = IntMmEngine(kind, std::max(1, n), depth).rho();
  const int ell = static_cast<int>(std::ceil(2.0 + 2.0 / rho));
  const double threshold =
      std::pow(static_cast<double>(std::max(1, n)), 1.0 + 2.0 / ell) + n;

  if (static_cast<double>(m) <= threshold || n < 3) {
    clique::Network net(std::max(1, n));
    out.girth = girth_by_learning(net, g);
    out.used_sparse_path = true;
    total += net.stats();
    out.traffic = total;
    return out;
  }

  // Dense: the girth is at most ell; detect cycles of length 3, 4, ..., ell.
  // The per-k Monte Carlo seeds derive from one shared seed, agreed in a
  // real broadcast round (this charge was previously missing entirely: the
  // trials consumed `seed` with no round, word, or superstep accounted).
  Rng rng([&] {
    clique::Network net(std::max(1, n));
    const auto agreed = clique::agree_on_seed(net, 0, seed);
    total += net.stats();
    return agreed;
  }());
  for (int k = 3; k <= ell; ++k) {
    bool found = false;
    clique::TrafficStats s{};
    if (k == 3) {
      const auto r = count_triangles_cc(g, kind, depth);
      found = r.count > 0;
      s = r.traffic;
    } else if (k == 4) {
      const auto r = detect_4cycle_const(g);
      found = r.found;
      s = r.traffic;
    } else {
      const double bound = std::exp(k) * std::log(static_cast<double>(n));
      const int trials =
          trial_factor * static_cast<int>(std::ceil(bound));
      const auto r = detect_k_cycle_cc(g, k, rng.next(), trials, kind, depth);
      found = r.found;
      s = r.traffic;
    }
    total += s;
    if (found) {
      out.girth = k;
      out.traffic = total;
      return out;
    }
  }

  // All detections missed (possible only through Monte Carlo failure at
  // k >= 5): fall back to learning the graph so the answer stays correct.
  clique::Network net(std::max(1, n));
  out.girth = girth_by_learning(net, g);
  out.used_sparse_path = true;
  total += net.stats();
  out.traffic = total;
  return out;
}

GirthOutcome girth_directed_cc(const Graph& g, MmKind kind, int depth) {
  CCA_EXPECTS(g.is_directed());
  const int n = g.n();
  GirthOutcome out;
  if (n == 0) {
    out.girth = kInf;
    return out;
  }

  const IntMmEngine engine(kind, std::max(1, n), depth);
  const int big = engine.clique_n();
  clique::Network net(big);

  const auto a = pad_matrix(g.adjacency(), big, std::int64_t{0});

  // One dispatch context across the doubling and binary-search products:
  // B^(i) reachability only grows, so under MmKind::Auto the early sparse
  // powers pay sparse rounds and the densified ones replay a locked dense
  // engine (see MmDispatchContext).
  MmDispatchContext ctx;

  // Has some node a closed walk? Each node checks its own diagonal entry
  // and the flags are OR-combined in one broadcast round.
  auto any_diag = [&](const Matrix<std::int64_t>& b) {
    std::vector<clique::Word> flags(static_cast<std::size_t>(big), 0);
    bool any = false;
    for (int v = 0; v < n; ++v)
      if (b(v, v) != 0) {
        flags[static_cast<std::size_t>(v)] = 1;
        any = true;
      }
    (void)clique::broadcast_all(net, std::move(flags));
    return any;
  };

  auto bool_mul_or_a = [&](const Matrix<std::int64_t>& x,
                           const Matrix<std::int64_t>& y) {
    auto p = engine.multiply(net, x, y, &ctx);
    for (int i = 0; i < big; ++i)
      for (int j = 0; j < big; ++j)
        p(i, j) = (p(i, j) != 0 || a(i, j) != 0) ? 1 : 0;
    return p;
  };

  // Doubling phase: B^(1), B^(2), B^(4), ... until a diagonal hit.
  // B^(i)[u,v] = 1 iff there is a path of length 1..i from u to v.
  std::vector<Matrix<std::int64_t>> powers;  // powers[t] = B^(2^t)
  powers.push_back(a);
  std::int64_t reach = 1;
  if (any_diag(a)) {
    // Girth is 2 at minimum length... a has zero diagonal (no self-loops),
    // so this cannot trigger; kept for matrices with loops.
    out.girth = 1;
    out.traffic = net.stats();
    return out;
  }
  while (reach < n) {
    auto next = bool_mul_or_a(powers.back(), powers.back());
    reach *= 2;
    const bool hit = any_diag(next);
    powers.push_back(std::move(next));
    if (hit) break;
  }
  if (!any_diag(powers.back())) {
    out.girth = kInf;  // acyclic
    out.traffic = net.stats();
    return out;
  }

  // Binary search: girth in (reach/2, reach]. Maintain B^(lo) with no
  // diagonal hit and add saved powers of two from high to low.
  std::int64_t lo = reach / 2;
  Matrix<std::int64_t> blo =
      lo == 0 ? Matrix<std::int64_t>() : powers[static_cast<std::size_t>(
                                             ilog2(lo))];
  for (int t = static_cast<int>(powers.size()) - 2; t >= 0; --t) {
    const auto step = std::int64_t{1} << t;
    if (lo + step >= reach) continue;  // candidate >= known-hit bound
    Matrix<std::int64_t> cand =
        lo == 0 ? powers[static_cast<std::size_t>(t)]
                : bool_mul_or_a(blo, powers[static_cast<std::size_t>(t)]);
    if (!any_diag(cand)) {
      lo += step;
      blo = std::move(cand);
    }
  }
  out.girth = lo + 1;
  out.traffic = net.stats();
  return out;
}

}  // namespace cca::core
