#include "core/engine.hpp"

#include "clique/fault.hpp"

namespace cca::core {

IntMmEngine::IntMmEngine(MmKind kind, int n, int depth) : kind_(kind) {
  CCA_VALIDATE(n >= 1, "matrix dimension n must be >= 1");
  switch (kind_) {
    case MmKind::Fast: {
      const FastPlan plan =
          depth >= 0 ? plan_fast_mm(n, depth) : plan_fast_mm_auto(n);
      clique_n_ = plan.clique_n;
      alg_ = tensor_power(strassen_algorithm(), plan.depth);
      break;
    }
    case MmKind::Semiring3D:
      clique_n_ = semiring_clique_size(n);
      break;
    case MmKind::Naive:
      clique_n_ = n;
      break;
    case MmKind::Auto: {
      // The sparse engine admits any n; Semiring3D needs a cube, so the
      // padded clique is the cube and the Fast engine joins the candidate
      // set only when that cube happens to be admissible for a nontrivial
      // tensor power (e.g. 64 = 4^3 = 8^2 with d = 4 | 8).
      clique_n_ = semiring_clique_size(n);
      const FastPlan plan = plan_fast_mm_auto(clique_n_);
      if (plan.depth >= 1 && plan.clique_n == clique_n_) {
        alg_ = tensor_power(strassen_algorithm(), plan.depth);
        fast_ok_ = true;
      }
      break;
    }
  }
}

double IntMmEngine::rho() const noexcept {
  switch (kind_) {
    case MmKind::Fast:
      return 1.0 - 2.0 / alg_.sigma();
    case MmKind::Semiring3D:
    case MmKind::Auto:  // density-independent worst case (see engine.hpp)
      return 1.0 / 3.0;
    case MmKind::Naive:
      return 1.0;
  }
  return 1.0;
}

Matrix<std::int64_t> IntMmEngine::multiply(clique::Network& net,
                                           const Matrix<std::int64_t>& a,
                                           const Matrix<std::int64_t>& b,
                                           MmDispatchContext* ctx) const {
  CCA_EXPECTS(net.n() == clique_n_);
  CCA_VALIDATE(a.rows() == a.cols() && b.rows() == b.cols(),
               "input matrices must be square");
  CCA_VALIDATE(a.rows() == clique_n_ && b.rows() == clique_n_,
               "matrix dimensions must match the engine's clique size");
  const IntRing ring;
  const I64Codec codec;
  // A product is a pure protocol over the captured inputs, so a crash mid
  // product (typed PeerFailure from a hardened deliver) simply re-runs it
  // after charged liveness votes — this hardens every engine built on
  // multiply: Seidel APSP, triangle/cycle counting, girth, color coding.
  return clique::with_peer_recovery(net, [&] {
    switch (kind_) {
      case MmKind::Fast:
        return mm_fast_bilinear(net, ring, codec, alg_, a, b);
      case MmKind::Semiring3D:
        return mm_semiring_3d(net, ring, codec, a, b);
      case MmKind::Naive:
        return mm_naive_broadcast(net, ring, 1, a, b);
      case MmKind::Auto:
        // The bilinear candidate is full-ownership-only (its coefficient
        // combination reads every node's blocks), so a sharded dispatch
        // drops it — every rank plans the same candidate set either way.
        return mm_semiring_auto(net, ring, codec, a, b,
                                fast_ok_ && net.owns_all() ? &alg_ : nullptr,
                                nullptr, nullptr, ctx);
    }
    return Matrix<std::int64_t>{};
  });
}

std::vector<Matrix<std::int64_t>> IntMmEngine::multiply_batch(
    clique::Network& net, std::span<const Matrix<std::int64_t>> as,
    std::span<const Matrix<std::int64_t>> bs,
    MmDispatchContext* ctx) const {
  CCA_EXPECTS(net.n() == clique_n_);
  CCA_VALIDATE(!as.empty() && as.size() == bs.size(),
               "batch operands must be non-empty and of equal length");
  for (std::size_t b = 0; b < as.size(); ++b) {
    CCA_VALIDATE(as[b].rows() == as[b].cols() &&
                     bs[b].rows() == bs[b].cols(),
                 "batch matrices must be square");
    CCA_VALIDATE(as[b].rows() == clique_n_ && bs[b].rows() == clique_n_,
                 "batch matrix dimensions must match the engine's clique "
                 "size");
  }
  const IntRing ring;
  const I64Codec codec;
  // Same idempotent re-run recovery as multiply(), for the whole batch.
  return clique::with_peer_recovery(net, [&] {
    switch (kind_) {
      case MmKind::Fast:
        return mm_fast_bilinear_batch(net, ring, codec, alg_, as, bs);
      case MmKind::Semiring3D:
        return mm_semiring_3d_batch(net, ring, codec, as, bs);
      case MmKind::Naive: {
        std::vector<Matrix<std::int64_t>> out;
        out.reserve(as.size());
        for (std::size_t b = 0; b < as.size(); ++b)
          out.push_back(mm_naive_broadcast(net, ring, 1, as[b], bs[b]));
        return out;
      }
      case MmKind::Auto:
        // Same full-ownership gate on the bilinear candidate as multiply().
        return mm_semiring_auto_batch(
            net, ring, codec, as, bs, ctx,
            fast_ok_ && net.owns_all() ? &alg_ : nullptr);
    }
    return std::vector<Matrix<std::int64_t>>{};
  });
}

}  // namespace cca::core
