#include "core/engine.hpp"

namespace cca::core {

IntMmEngine::IntMmEngine(MmKind kind, int n, int depth) : kind_(kind) {
  CCA_EXPECTS(n >= 1);
  switch (kind_) {
    case MmKind::Fast: {
      const FastPlan plan =
          depth >= 0 ? plan_fast_mm(n, depth) : plan_fast_mm_auto(n);
      clique_n_ = plan.clique_n;
      alg_ = tensor_power(strassen_algorithm(), plan.depth);
      break;
    }
    case MmKind::Semiring3D:
      clique_n_ = semiring_clique_size(n);
      break;
    case MmKind::Naive:
      clique_n_ = n;
      break;
    case MmKind::Auto: {
      // The sparse engine admits any n; Semiring3D needs a cube, so the
      // padded clique is the cube and the Fast engine joins the candidate
      // set only when that cube happens to be admissible for a nontrivial
      // tensor power (e.g. 64 = 4^3 = 8^2 with d = 4 | 8).
      clique_n_ = semiring_clique_size(n);
      const FastPlan plan = plan_fast_mm_auto(clique_n_);
      if (plan.depth >= 1 && plan.clique_n == clique_n_) {
        alg_ = tensor_power(strassen_algorithm(), plan.depth);
        fast_ok_ = true;
      }
      break;
    }
  }
}

double IntMmEngine::rho() const noexcept {
  switch (kind_) {
    case MmKind::Fast:
      return 1.0 - 2.0 / alg_.sigma();
    case MmKind::Semiring3D:
    case MmKind::Auto:  // density-independent worst case (see engine.hpp)
      return 1.0 / 3.0;
    case MmKind::Naive:
      return 1.0;
  }
  return 1.0;
}

Matrix<std::int64_t> IntMmEngine::multiply(clique::Network& net,
                                           const Matrix<std::int64_t>& a,
                                           const Matrix<std::int64_t>& b) const {
  CCA_EXPECTS(net.n() == clique_n_);
  const IntRing ring;
  const I64Codec codec;
  switch (kind_) {
    case MmKind::Fast:
      return mm_fast_bilinear(net, ring, codec, alg_, a, b);
    case MmKind::Semiring3D:
      return mm_semiring_3d(net, ring, codec, a, b);
    case MmKind::Naive:
      return mm_naive_broadcast(net, ring, 1, a, b);
    case MmKind::Auto:
      return mm_semiring_auto(net, ring, codec, a, b,
                              fast_ok_ ? &alg_ : nullptr);
  }
  return {};
}

std::vector<Matrix<std::int64_t>> IntMmEngine::multiply_batch(
    clique::Network& net, std::span<const Matrix<std::int64_t>> as,
    std::span<const Matrix<std::int64_t>> bs) const {
  CCA_EXPECTS(net.n() == clique_n_);
  CCA_EXPECTS(!as.empty() && as.size() == bs.size());
  const IntRing ring;
  const I64Codec codec;
  switch (kind_) {
    case MmKind::Fast:
      return mm_fast_bilinear_batch(net, ring, codec, alg_, as, bs);
    case MmKind::Semiring3D:
      return mm_semiring_3d_batch(net, ring, codec, as, bs);
    case MmKind::Naive: {
      std::vector<Matrix<std::int64_t>> out;
      out.reserve(as.size());
      for (std::size_t b = 0; b < as.size(); ++b)
        out.push_back(mm_naive_broadcast(net, ring, 1, as[b], bs[b]));
      return out;
    }
    case MmKind::Auto:
      return multiply_batch_auto(net, as, bs);
  }
  return {};
}

std::vector<Matrix<std::int64_t>> IntMmEngine::multiply_batch_auto(
    clique::Network& net, std::span<const Matrix<std::int64_t>> as,
    std::span<const Matrix<std::int64_t>> bs) const {
  const IntRing ring;
  const I64Codec codec;
  const int n = clique_n_;
  const std::size_t batch = as.size();
  if (batch == 1 || n == 1) {
    std::vector<Matrix<std::int64_t>> out;
    out.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b)
      out.push_back(multiply(net, as[b], bs[b]));
    return out;
  }

  // Shared announcement superstep: every node ships the B packed per-row
  // nnz pairs over every link (direct schedule, B rounds) so the whole
  // batch dispatches at once.
  std::vector<SparsePattern> s_rows, t_rows;
  s_rows.reserve(batch);
  t_rows.reserve(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    s_rows.push_back(sparse_pattern(ring, as[b]));
    t_rows.push_back(sparse_pattern(ring, bs[b]));
  }
  parallel_for(0, n, [&](int v) {
    const auto vs = static_cast<std::size_t>(v);
    for (int u = 0; u < n; ++u) {
      if (u == v) continue;
      const auto msg = net.stage(v, u, batch);
      for (std::size_t b = 0; b < batch; ++b)
        msg[b] = detail::pack_nnz_pair(s_rows[b][vs].size(),
                                       t_rows[b][vs].size());
    }
  });
  net.deliver(clique::Router::Direct);

  // Sparse plans for every product, against the shared batched 3D engine.
  constexpr auto kMax = std::numeric_limits<std::int64_t>::max();
  std::vector<SparseMmStructure> sts(batch);
  std::int64_t sparse_total = 0;
  for (std::size_t b = 0; b < batch && sparse_total < kMax; ++b) {
    if (sparse_triple_count(n, s_rows[b], t_rows[b]) > sparse_plan_cap(n)) {
      sparse_total = kMax;
      break;
    }
    sts[b] = build_sparse_mm_structure(
        n, s_rows[b], t_rows[b],
        [&](std::size_t c) { return codec.words_for(c); });
    sparse_total += sparse_planned_rounds(net, sts[b]);
  }
  const int c = static_cast<int>(icbrt(n));
  const auto steps = semiring3d_superstep_demands(
      n, codec.words_for(static_cast<std::size_t>(c) * c), batch);
  std::int64_t batch3d = kMax;
  if (relay_round_lower_bound(n, steps.first) +
          relay_round_lower_bound(n, steps.second) <
      sparse_total)
    batch3d = net.prepare_schedule(steps.first) +
              net.prepare_schedule(steps.second);

  std::vector<Matrix<std::int64_t>> out;
  out.reserve(batch);
  // Ties prefer the sparse path, matching mm_semiring_auto (and the skip
  // gate's soundness argument, which assumes exactly that).
  if (sparse_total <= batch3d) {
    for (std::size_t b = 0; b < batch; ++b)
      out.push_back(detail::mm_semiring_sparse_staged(net, ring, codec,
                                                      as[b], bs[b], sts[b]));
    return out;
  }
  return mm_semiring_3d_batch(net, ring, codec, as, bs);
}

}  // namespace cca::core
