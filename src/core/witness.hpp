// Witness detection for distance products (paper Section 3.4, Lemma 21).
//
// A witness matrix Q for P = S * T (min-plus) satisfies
// P[u,v] = S[u,Q[u,v]] + T[Q[u,v],v]. The semiring product produces
// witnesses directly (dp_semiring_witness); the fast products do not, so the
// paper adapts the centralized machinery of Seidel / Alon–Naor / Zwick:
//
//  1. unique witnesses — O(log n) products of index-masked copies recover
//     the witness bit by bit wherever it is unique;
//  2. the general case — randomized column sampling reduces every pair to
//     the unique case with constant probability per trial, using
//     O(log^3 n) products overall.
//
// Everything here is generic over a distance-product oracle so it runs on
// top of either dp_semiring or dp_ring_embedded.
#pragma once

#include <cstdint>
#include <functional>

#include "clique/network.hpp"
#include "matrix/matrix.hpp"

namespace cca::core {

/// A distance-product oracle: multiplies two n x n min-plus matrices on the
/// caller's clique, charging its rounds there.
using DpOracle = std::function<Matrix<std::int64_t>(
    const Matrix<std::int64_t>&, const Matrix<std::int64_t>&)>;

/// Candidate witnesses recovered bit-by-bit from index-masked products;
/// correct wherever the witness is unique (Section 3.4, "Finding unique
/// witnesses"). Uses ceil(log2 n) oracle calls. Entries without a finite
/// product value are -1; other entries are candidates requiring
/// verification.
[[nodiscard]] Matrix<int> unique_witness_candidates(
    const Matrix<std::int64_t>& s, const Matrix<std::int64_t>& t,
    const Matrix<std::int64_t>& p, const DpOracle& oracle);

/// O(1)-round distributed verification: returns ok(u,v) = 1 iff q(u,v) is a
/// valid witness for p(u,v). Node u ships (q, S[u,q], P[u,v]) to v, which
/// checks against its column of T (obtained by a one-superstep transpose)
/// and replies one bit; every node sends/receives O(n) words.
[[nodiscard]] Matrix<std::uint8_t> verify_witnesses(
    clique::Network& net, const Matrix<std::int64_t>& s,
    const Matrix<std::int64_t>& t, const Matrix<std::int64_t>& p,
    const Matrix<int>& q);

/// Full randomized witness detection (Lemma 21): returns Q with valid
/// witnesses for every finite entry of p, with high probability (failed
/// entries stay -1; the caller may re-run with a new seed). `trial_factor`
/// is the constant c in the paper's m = ceil(c log n) trials per level.
[[nodiscard]] Matrix<int> dp_witnesses(clique::Network& net,
                                       const Matrix<std::int64_t>& s,
                                       const Matrix<std::int64_t>& t,
                                       const Matrix<std::int64_t>& p,
                                       const DpOracle& oracle,
                                       std::uint64_t seed,
                                       int trial_factor = 3);

}  // namespace cca::core
