#include "core/counting.hpp"

#include <algorithm>

#include "clique/primitives.hpp"
#include "util/contracts.hpp"
#include "util/parallel.hpp"

namespace cca::core {

namespace {

/// Transpose the real n x n corner of a row-distributed matrix: node v sends
/// entry (v, u) to node u. O(n) words per node, so O(1) rounds by relay.
Matrix<std::int64_t> transpose_distributed(clique::Network& net, int n,
                                           const Matrix<std::int64_t>& m) {
  Matrix<std::int64_t> out(n, n, 0);
  if (net.n() == 1) {
    out(0, 0) = m(0, 0);
    return out;
  }
  // Parallel staged encode over senders (each v owns its outbox); the
  // receive side reads distinct output rows per node. Both walks cover
  // only the OWNED shard (everything in-process): only owned source rows
  // of m are authoritative, and only owned destinations' inboxes are
  // filled — the returned transpose is authoritative on owned rows.
  const clique::NodeSpan own = net.owned();
  parallel_for(own.begin, std::min(own.end, n), [&](int v) {
    for (int u = 0; u < n; ++u) {
      const auto span = net.stage(v, u, 1);
      span[0] = static_cast<clique::Word>(m(v, u));
    }
  });
  net.deliver();
  parallel_for(own.begin, std::min(own.end, n), [&](int u) {
    for (int v = 0; v < n; ++v) {
      const auto in = net.inbox(u, v);
      CCA_ASSERT(in.size() == 1);
      out(u, v) = static_cast<std::int64_t>(in[0]);
    }
  });
  return out;
}

/// Sum one word per node known at all nodes after a broadcast round.
std::int64_t broadcast_and_sum(clique::Network& net,
                               const std::vector<std::int64_t>& per_node) {
  std::vector<clique::Word> words(per_node.size());
  for (std::size_t i = 0; i < per_node.size(); ++i)
    words[i] = static_cast<clique::Word>(per_node[i]);
  const auto all = clique::broadcast_all(net, std::move(words));
  std::int64_t sum = 0;
  for (const auto w : all) sum += static_cast<std::int64_t>(w);
  return sum;
}

/// Batched all-to-all announcement: every node contributes one word PER
/// GRAPH and all B broadcasts share one superstep (each link carries the B
/// words, so the direct schedule costs exactly B rounds — the same rounds
/// as B sequential broadcast_all calls, in one delivery, with the words
/// actually staged). Returns the per-graph sums.
std::vector<std::int64_t> broadcast_and_sum_batch(
    clique::Network& net,
    const std::vector<std::vector<std::int64_t>>& per_graph) {
  const int n = net.n();
  const std::size_t batch = per_graph.size();
  std::vector<std::int64_t> sums(batch, 0);
  if (n == 1) {
    for (std::size_t b = 0; b < batch; ++b) sums[b] = per_graph[b][0];
    return sums;
  }
  parallel_for(0, n, [&](int v) {
    for (int u = 0; u < n; ++u) {
      if (u == v) continue;
      // lint:allow(full-range-staging): sole caller validates owns_all().
      const auto msg = net.stage(v, u, batch);
      for (std::size_t b = 0; b < batch; ++b)
        msg[b] = static_cast<clique::Word>(
            per_graph[b][static_cast<std::size_t>(v)]);
    }
  });
  net.deliver(clique::Router::Direct);
  // Sum the DELIVERED words (as node 0 would), own contribution aside: the
  // result must depend on what the network carried, so a staging-layout
  // bug surfaces as a wrong count, not as silently-correct local math.
  for (int v = 0; v < n; ++v) {
    if (v == 0) {
      for (std::size_t b = 0; b < batch; ++b) sums[b] += per_graph[b][0];
      continue;
    }
    const auto in = net.inbox(0, v);
    CCA_ASSERT(in.size() == batch);
    for (std::size_t b = 0; b < batch; ++b)
      sums[b] += static_cast<std::int64_t>(in[b]);
  }
  return sums;
}

}  // namespace

CountOutcome count_triangles_cc(const Graph& g, MmKind kind, int depth) {
  const int n = g.n();
  const IntMmEngine engine(kind, n, depth);
  const int big = engine.clique_n();
  clique::Network net(big);

  const auto a = pad_matrix(g.adjacency(), big, std::int64_t{0});
  const auto a2 = engine.multiply(net, a, a);

  // tr(A^3) = sum_{u,v} A^2[u,v] A[v,u]; undirected graphs have A symmetric
  // so A[v,u] is already node u's local data, digraphs need a transpose.
  Matrix<std::int64_t> at(n, n, 0);
  if (g.is_directed()) {
    at = transpose_distributed(net, big, a).block(0, 0, n, n);
  } else {
    at = g.adjacency();
  }
  // Owned rows only: under sharding they are the authoritative slice of
  // A^2, and broadcast_and_sum's underlying broadcast syncs the partials.
  std::vector<std::int64_t> partial(static_cast<std::size_t>(big), 0);
  const clique::NodeSpan own = net.owned();
  parallel_for(own.begin, std::min(own.end, n), [&](int u) {
    std::int64_t acc = 0;
    for (int v = 0; v < n; ++v) acc += a2(u, v) * at(u, v);
    partial[static_cast<std::size_t>(u)] = acc;
  });
  const auto tr = broadcast_and_sum(net, partial);
  const std::int64_t divisor = g.is_directed() ? 3 : 6;
  CCA_ASSERT(tr % divisor == 0);
  return {tr / divisor, net.stats()};
}

BatchCountOutcome count_triangles_cc_batch(std::span<const Graph> gs,
                                           MmKind kind, int depth) {
  const std::size_t batch = gs.size();
  CCA_EXPECTS(batch >= 1);
  int max_n = 1;
  for (const auto& g : gs) {
    CCA_EXPECTS(!g.is_directed());
    max_n = std::max(max_n, g.n());
  }
  const IntMmEngine engine(kind, max_n, depth);
  const int big = engine.clique_n();
  clique::Network net(big);
  // Genuinely full-ownership: the batched partial-sum fold reads node 0's
  // inboxes.
  clique::require_full_ownership(
      net, "count_triangles_cc_batch",
      "run count_triangles_cc per graph for sharded runs");

  // All B squarings A_b^2 through shared supersteps on the one padded
  // clique (smaller graphs ride along with inert zero rows).
  std::vector<Matrix<std::int64_t>> as;
  as.reserve(batch);
  for (const auto& g : gs)
    as.push_back(pad_matrix(g.adjacency(), big, std::int64_t{0}));
  const auto a2s = engine.multiply_batch(
      net, std::span<const Matrix<std::int64_t>>(as),
      std::span<const Matrix<std::int64_t>>(as));

  // tr(A^3) partials are local per node (A symmetric); the B partial-sum
  // broadcasts share one superstep.
  std::vector<std::vector<std::int64_t>> partials(
      batch, std::vector<std::int64_t>(static_cast<std::size_t>(big), 0));
  for (std::size_t b = 0; b < batch; ++b) {
    const int n = gs[b].n();
    const auto& a2 = a2s[b];
    const auto at = gs[b].adjacency();
    parallel_for(0, n, [&](int u) {
      std::int64_t acc = 0;
      for (int v = 0; v < n; ++v) acc += a2(u, v) * at(u, v);
      partials[b][static_cast<std::size_t>(u)] = acc;
    });
  }
  const auto traces = broadcast_and_sum_batch(net, partials);

  BatchCountOutcome out;
  out.counts.reserve(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    CCA_ASSERT(traces[b] % 6 == 0);
    out.counts.push_back(traces[b] / 6);
  }
  out.traffic = net.stats();
  return out;
}

CountOutcome count_4cycles_cc(const Graph& g, MmKind kind, int depth) {
  const int n = g.n();
  const IntMmEngine engine(kind, n, depth);
  const int big = engine.clique_n();
  clique::Network net(big);

  const auto a = pad_matrix(g.adjacency(), big, std::int64_t{0});
  const auto a2 = engine.multiply(net, a, a);

  // tr(A^4) = sum_{u,v} A^2[u,v] A^2[v,u]: one transpose superstep of the
  // real corner of A^2 (padded rows/columns of A^2 are zero).
  const auto a2t = transpose_distributed(net, big, a2).block(0, 0, n, n);

  std::vector<std::int64_t> partial(static_cast<std::size_t>(big), 0);
  const clique::NodeSpan own = net.owned();
  parallel_for(own.begin, std::min(own.end, n), [&](int u) {
    std::int64_t acc = 0;
    for (int v = 0; v < n; ++v) acc += a2(u, v) * a2t(u, v);
    partial[static_cast<std::size_t>(u)] = acc;
  });
  const auto tr = broadcast_and_sum(net, partial);

  // Correction term: deg(v) for undirected graphs, the number of 2-cycles
  // delta(v) for digraphs — both local knowledge; one broadcast to sum.
  std::vector<std::int64_t> corr(static_cast<std::size_t>(big), 0);
  for (int v = 0; v < n; ++v) {
    std::int64_t dv = 0;
    if (g.is_directed()) {
      for (const auto& [u, w] : g.out_arcs(v)) {
        (void)w;
        if (g.has_arc(u, v)) ++dv;
      }
    } else {
      dv = g.out_degree(v);
    }
    corr[static_cast<std::size_t>(v)] = 2 * dv * dv - dv;
  }
  const auto corr_sum = broadcast_and_sum(net, corr);

  const std::int64_t divisor = g.is_directed() ? 4 : 8;
  CCA_ASSERT((tr - corr_sum) % divisor == 0);
  return {(tr - corr_sum) / divisor, net.stats()};
}

CountOutcome count_5cycles_cc(const Graph& g, MmKind kind, int depth) {
  CCA_EXPECTS(!g.is_directed());
  const int n = g.n();
  const IntMmEngine engine(kind, n, depth);
  const int big = engine.clique_n();
  clique::Network net(big);

  const auto a = pad_matrix(g.adjacency(), big, std::int64_t{0});
  // One dispatch context over both products: A^2's pattern contains every
  // length-2 reachability, so if A * A already went dense the A^2 * A
  // product replays the locked engine with no second announcement.
  MmDispatchContext ctx;
  const auto a2 = engine.multiply(net, a, a, &ctx);
  const auto a3 = engine.multiply(net, a2, a, &ctx);

  // For symmetric A, A^3 is symmetric, so tr(A^5) = sum_{u,v} A^2[u,v]
  // A^3[v,u] = sum_{u,v} A^2[u,v] A^3[u,v] needs no transpose: node u owns
  // row u of both factors. The correction terms use (A^3)_uu and deg(u),
  // both local to node u.
  std::vector<std::int64_t> tr5_part(static_cast<std::size_t>(big), 0);
  std::vector<std::int64_t> tr3_part(static_cast<std::size_t>(big), 0);
  std::vector<std::int64_t> corr_part(static_cast<std::size_t>(big), 0);
  const clique::NodeSpan own = net.owned();
  parallel_for(own.begin, std::min(own.end, n), [&](int u) {
    std::int64_t acc = 0;
    for (int v = 0; v < n; ++v) acc += a2(u, v) * a3(u, v);
    tr5_part[static_cast<std::size_t>(u)] = acc;
    tr3_part[static_cast<std::size_t>(u)] = a3(u, u);
    const std::int64_t d = g.out_degree(u);
    corr_part[static_cast<std::size_t>(u)] = (d - 2) * a3(u, u);
  });
  const auto tr5 = broadcast_and_sum(net, tr5_part);
  const auto tr3 = broadcast_and_sum(net, tr3_part);
  const auto corr = broadcast_and_sum(net, corr_part);

  const auto numerator = tr5 - 5 * tr3 - 5 * corr;
  CCA_ASSERT(numerator % 10 == 0);
  return {numerator / 10, net.stats()};
}

}  // namespace cca::core
