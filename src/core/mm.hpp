// Distributed matrix multiplication on the congested clique — the paper's
// core contribution (Section 2, Theorem 1).
//
//  * mm_semiring_3d   — Section 2.1: the "3D" algorithm; O(n^{1/3}) rounds
//                       over any semiring.
//  * mm_fast_bilinear — Section 2.2 / Lemma 10: turns ANY bilinear algorithm
//                       with m(d) = O(d^sigma) multiplications into an
//                       O(n^{1-2/sigma}) round clique algorithm over a ring.
//  * mm_naive_broadcast — the trivial O(n)-round baseline (everyone learns
//                       both matrices).
//
// Input/output distribution follows the paper: node v holds row v of both
// inputs and ends with row v of the product. The orchestrated simulation
// stages node v's messages exclusively from data node v legitimately holds
// at that point of the algorithm (its input rows, then whatever it received
// in earlier supersteps).
//
// Data plane: both directions are zero-copy. Send staging encodes directly
// into Network::stage spans (no intermediate value/word buffers), and every
// staging loop runs under cca::parallel_for over the SENDERS — legal
// because each source owns its per-source outbox (see Network::stage), and
// layout-preserving because per-source append order is unchanged. Receive
// decoding goes through decode_into straight into matrix rows or reused
// scratch. None of this moves a word: TrafficStats are bit-identical to the
// serial entry-at-a-time implementation.
//
// All functions require net.n() == matrix dimension and an "admissible" n
// (perfect cube for the 3D algorithm; square with d | sqrt(n) and m <= n for
// the bilinear scheme). pad_matrix / semiring_clique_size / plan_fast_mm
// below embed an arbitrary instance into the next admissible size, which is
// how the paper's "assume n^{1/3} is an integer for convenience" is
// discharged.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "clique/network.hpp"
#include "clique/primitives.hpp"
#include "matrix/bilinear.hpp"
#include "matrix/codec.hpp"
#include "matrix/kernels.hpp"
#include "matrix/matrix.hpp"
#include "matrix/ops.hpp"
#include "matrix/semiring.hpp"
#include "util/contracts.hpp"
#include "util/math.hpp"
#include "util/parallel.hpp"

namespace cca::core {

/// Optional per-step wall-clock breakdown of one mm_* invocation (pass a
/// profile pointer to fill it). Steps alternate staging / delivery / local
/// compute, so the breakdown separates encode cost, router cost, and kernel
/// cost — bench_mm --steps prints it.
struct MmStepProfile {
  struct Step {
    const char* name;
    std::int64_t ns;
  };
  std::vector<Step> steps;
};

namespace detail {

/// Lap timer feeding MmStepProfile; all calls are no-ops when profile is
/// null, so the instrumented algorithms pay nothing in normal runs.
class StepClock {
 public:
  explicit StepClock(MmStepProfile* profile) : profile_(profile) {
    if (profile_ != nullptr) last_ = std::chrono::steady_clock::now();
  }
  void lap(const char* name) {
    if (profile_ == nullptr) return;
    const auto t = std::chrono::steady_clock::now();
    profile_->steps.push_back(
        {name, std::chrono::duration_cast<std::chrono::nanoseconds>(t - last_)
                   .count()});
    last_ = t;
  }

 private:
  MmStepProfile* profile_;
  std::chrono::steady_clock::time_point last_;
};

/// Odd-word-count scheduler cliff (ROADMAP `bench_mm --steps` finding): a
/// superstep whose per-pair word count is odd defeats the Euler split's
/// identical-halves collapse, so its KoenigRelay schedule is built at word
/// granularity — the semiring_3d wall-clock spike at clique_n=343
/// (49 words/pair) versus 512 (64 = 2^6, six collapsed levels). Large odd
/// per-pair groups are therefore padded by ONE trailing zero word at stage
/// time; decode offsets are unchanged (receivers simply never read the pad
/// word), so any codec permits it. Small groups are left alone: their class
/// logs are cheap, and the extra word would be pure traffic inflation (for
/// the 1-word PackedBool groups it would double the message). The pinned
/// traffic regressions and the committed BENCH baselines demonstrate the
/// padded sizes' rounds stay no worse.
constexpr std::size_t kOddPadMinWords = 17;

[[nodiscard]] constexpr std::size_t padded_group_words(
    std::size_t words) noexcept {
  return words + (words % 2 != 0 && words >= kOddPadMinWords ? 1 : 0);
}

/// Decode a `count`-entry block that starts at word `word_offset` of a
/// message span into out[0..count), with no allocation. The batch layouts
/// compute offsets in words directly (block k of a B-group lives at
/// k * words_for(block_entries)), which stays exact for bit-packing codecs
/// whose words_for is not additive over entry counts (PackedBoolCodec at
/// non-64-multiple blocks).
template <typename Codec, typename V>
void decode_entries_at(const Codec& codec, std::span<const clique::Word> in,
                       std::size_t word_offset, std::size_t count, V* out) {
  CCA_EXPECTS(word_offset + codec.words_for(count) <= in.size());
  codec.decode_into(in.data() + word_offset, count, out);
}

/// Decode a `count`-entry block from a word span into out[0..count) with no
/// allocation. `prior_entries` is the total entry count of the blocks
/// encoded before it in the same message; every call site sends at most two
/// blocks per message, so codec.words_for(prior_entries) is exactly the
/// word offset (with three or more packed blocks it would NOT be — use
/// decode_entries_at with an explicit word offset there; test_codec.cpp
/// pins both layouts).
template <typename Codec, typename V>
void decode_entries_into(const Codec& codec, std::span<const clique::Word> in,
                         std::size_t prior_entries, std::size_t count,
                         V* out) {
  decode_entries_at(codec, in, codec.words_for(prior_entries), count, out);
}

/// acc[i*w + j] (+|-)= coeff * src(r0+i, c0+j) over an h x w block, where
/// acc is a flat row-major block. |coeff| == 1 skips the multiply (the
/// generic fallback — also the only case a semiring without subtraction
/// could support for positive coefficients); larger coefficients build the
/// scalar once and multiply-accumulate. Negative coefficients use the
/// ring's subtraction.
template <Ring R>
void scaled_accumulate(const R& ring, typename R::Value* acc, int h, int w,
                       const Matrix<typename R::Value>& src, int r0, int c0,
                       std::int64_t coeff) {
  if (coeff == 0) return;
  if (coeff == 1) {
    for (int i = 0; i < h; ++i) {
      const auto* srow = src.row(r0 + i) + c0;
      auto* arow = acc + static_cast<std::size_t>(i) * w;
      for (int j = 0; j < w; ++j) arow[j] = ring.add(arow[j], srow[j]);
    }
    return;
  }
  if (coeff == -1) {
    for (int i = 0; i < h; ++i) {
      const auto* srow = src.row(r0 + i) + c0;
      auto* arow = acc + static_cast<std::size_t>(i) * w;
      for (int j = 0; j < w; ++j) arow[j] = ring.sub(arow[j], srow[j]);
    }
    return;
  }
  const auto scale = scalar_of(ring, coeff > 0 ? coeff : -coeff);
  for (int i = 0; i < h; ++i) {
    const auto* srow = src.row(r0 + i) + c0;
    auto* arow = acc + static_cast<std::size_t>(i) * w;
    if (coeff > 0)
      for (int j = 0; j < w; ++j)
        arow[j] = ring.add(arow[j], ring.mul(scale, srow[j]));
    else
      for (int j = 0; j < w; ++j)
        arow[j] = ring.sub(arow[j], ring.mul(scale, srow[j]));
  }
}

/// dst(r0+i, c0+j) (+|-)= coeff * piece[i*bs + j] over a bs x bs block —
/// the flat-source dual of scaled_accumulate, used when the accumulator is
/// a matrix view and the source is a decoded scratch block.
template <Ring R>
void scaled_accumulate_flat(const R& ring, Matrix<typename R::Value>& dst,
                            int r0, int c0, const typename R::Value* piece,
                            int bs, std::int64_t coeff) {
  if (coeff == 0) return;
  if (coeff == 1 || coeff == -1) {
    for (int i = 0; i < bs; ++i) {
      auto* drow = dst.row(r0 + i) + c0;
      const auto* prow = piece + static_cast<std::size_t>(i) * bs;
      if (coeff > 0)
        for (int j = 0; j < bs; ++j) drow[j] = ring.add(drow[j], prow[j]);
      else
        for (int j = 0; j < bs; ++j) drow[j] = ring.sub(drow[j], prow[j]);
    }
    return;
  }
  const auto scale = scalar_of(ring, coeff > 0 ? coeff : -coeff);
  for (int i = 0; i < bs; ++i) {
    auto* drow = dst.row(r0 + i) + c0;
    const auto* prow = piece + static_cast<std::size_t>(i) * bs;
    if (coeff > 0)
      for (int j = 0; j < bs; ++j)
        drow[j] = ring.add(drow[j], ring.mul(scale, prow[j]));
    else
      for (int j = 0; j < bs; ++j)
        drow[j] = ring.sub(drow[j], ring.mul(scale, prow[j]));
  }
}

}  // namespace detail

/// Section 2.1, batched — B independent semiring products through SHARED
/// supersteps. The executable counterpart of running multiple MM instances
/// at once (Le Gall, "Further Algebraic Algorithms in the Congested
/// Clique"): every (src, dst) pair's B per-product blocks ride in ONE
/// staged message ([S-group][T-group] per role, product b's block at word
/// offset b * block_words inside its group), so the whole batch pays 2
/// deliveries and ONE routing schedule per superstep instead of 2B. Because
/// the relay spreads the B-fold blocks over intermediates, batch rounds are
/// strictly below B sequential runs whenever single-product supersteps
/// leave links idle (they do: tests pin it).
///
/// Requires net.n() == every matrix dimension, net.n() a perfect cube, and
/// as.size() == bs.size() >= 1. Returns the B products in order; the B = 1
/// instance stages byte-identical traffic to the historical single-product
/// code path (the traffic-regression suite pins those stats), except that
/// large odd per-pair groups gain one trailing pad word (see
/// detail::padded_group_words — a wall-clock fix for the odd-word
/// scheduler cliff whose rounds are pinned no worse).
///
/// Note: the paper's Step 1 says node v sends T[v, w3**] to the nodes
/// w in *v2*; for the received pieces to assemble T[v2**, v3**] (rows with
/// FIRST digit v2, as Step 2 requires) the recipients must be w in *v1*.
/// We implement the *v1* version; the totals (2 n^{4/3} words per node per
/// product) are unchanged.
///
/// Sharded execution (net.owned() a proper subspan): inputs must be
/// REPLICATED (every rank passes bit-identical as/bs — the SPMD contract),
/// each rank stages and computes only for its owned nodes, and on return
/// only the OWNED rows of each product are authoritative (non-owned rows
/// stay sr.zero()). Traffic accounting is bit-identical to a
/// single-process run by the transport's construction.
template <Semiring S, typename Codec>
[[nodiscard]] std::vector<Matrix<typename S::Value>> mm_semiring_3d_batch(
    clique::Network& net, const S& sr, const Codec& codec,
    std::span<const Matrix<typename S::Value>> as,
    std::span<const Matrix<typename S::Value>> bs,
    MmStepProfile* profile = nullptr) {
  using V = typename S::Value;
  const int n = net.n();
  const std::size_t batch = as.size();
  CCA_EXPECTS(batch >= 1 && bs.size() == batch);
  for (std::size_t b = 0; b < batch; ++b) {
    CCA_EXPECTS(as[b].rows() == n && as[b].cols() == n);
    CCA_EXPECTS(bs[b].rows() == n && bs[b].cols() == n);
  }
  CCA_EXPECTS(is_perfect_cube(n));
  std::vector<Matrix<V>> out;
  out.reserve(batch);
  if (n == 1) {
    for (std::size_t b = 0; b < batch; ++b) {
      Matrix<V> o(1, 1, sr.zero());
      o(0, 0) = sr.mul(as[b](0, 0), bs[b](0, 0));
      out.push_back(std::move(o));
    }
    return out;
  }
  const int c = static_cast<int>(icbrt(n));
  const int c2 = c * c;
  const auto block_entries = static_cast<std::size_t>(c2);
  const auto block_words = codec.words_for(block_entries);
  const auto group_words = batch * block_words;  // one pair's staged group
  // Step 1's staged size may exceed the payload by one zero pad word (see
  // detail::padded_group_words); all decode offsets below use the payload
  // layout, so the pad is invisible to receivers. Step 3 stays unpadded:
  // its demand graph (one c2-destination group per node, half the volume)
  // measurably absorbs the extra word less often — at clique_n = 343 the
  // padded step 3 costs one extra round while the padded step 1 is free —
  // and its odd schedule is the cheaper of the two to build anyway.
  const auto staged_words = detail::padded_group_words(group_words);
  auto d1 = [c2](int v) { return v / c2; };
  auto d2 = [c, c2](int v) { return (v / c) % c; };
  auto d3 = [c](int v) { return v % c; };
  // This rank's node shard: every stage/compute loop below walks only the
  // owned span. In-process this is [0, n) and the loops are unchanged.
  const clique::NodeSpan own = net.owned();
  detail::StepClock clock(profile);

  // Step 1: node v scatters pieces of its rows S_b[v,*] and T_b[v,*] for
  // every product b, encoding the contiguous row slices straight into one
  // staged group per destination. Senders are independent (one src per
  // iteration), so the loop runs parallel.
  parallel_for(own.begin, own.end, [&](int v) {
    // S_b[v, u2**] to each u in v1** (same first digit as v).
    for (int tail = 0; tail < c2; ++tail) {
      const int u = d1(v) * c2 + tail;
      const auto msg = net.stage(v, u, staged_words);
      for (std::size_t b = 0; b < batch; ++b)
        codec.encode_into(std::span<const V>(as[b].row(v) + d2(u) * c2,
                                             block_entries),
                          msg.data() + b * block_words);
    }
    // T_b[v, w3**] to each w in *v1* (second digit equals v's first digit).
    for (int w1 = 0; w1 < c; ++w1)
      for (int w3 = 0; w3 < c; ++w3) {
        const int w = w1 * c2 + d1(v) * c + w3;
        const auto msg = net.stage(v, w, staged_words);
        for (std::size_t b = 0; b < batch; ++b)
          codec.encode_into(std::span<const V>(bs[b].row(v) + d3(w) * c2,
                                               block_entries),
                            msg.data() + b * block_words);
      }
  });
  clock.lap("step1 stage");
  net.deliver();
  clock.lap("step1 deliver");

  // Each node v now assembles S_b[v1**, v2**] and T_b[v2**, v3**] and
  // multiplies them locally (Step 2), for every b. Per-node work is
  // independent and reads only delivered inbox views, so the nodes run on
  // the worker group; blocks are decoded directly into the assembled
  // matrix rows (sb/tb are reused across b — every row is overwritten).
  std::vector<Matrix<V>> prod(static_cast<std::size_t>(n) * batch);
  parallel_for(own.begin, own.end, [&](int v) {
    Matrix<V> sb(c2, c2, sr.zero());
    Matrix<V> tb(c2, c2, sr.zero());
    for (std::size_t b = 0; b < batch; ++b) {
      for (int tail = 0; tail < c2; ++tail) {
        const int u = d1(v) * c2 + tail;  // sender of S_b[u, v2**]
        detail::decode_entries_at(codec, net.inbox(v, u), b * block_words,
                                  block_entries, sb.row(tail));
      }
      for (int tail = 0; tail < c2; ++tail) {
        const int w = d2(v) * c2 + tail;  // sender of T_b[w, v3**]
        // v received its S group and/or T group from w in one inbox; the S
        // group (if any) comes first — skip it in STAGED words (the group
        // plus its possible pad word).
        const std::size_t at =
            (d1(w) == d1(v) ? staged_words : 0) + b * block_words;
        detail::decode_entries_at(codec, net.inbox(v, w), at, block_entries,
                                  tb.row(tail));
      }
      prod[static_cast<std::size_t>(v) * batch + b] =
          local_multiply(sr, sb, tb);
    }
  });
  clock.lap("step2 local product");

  // Step 3: node v sends P_b^(v2)[u, v3**] to each u in v1** — one
  // contiguous product row per message block, encoded in place.
  parallel_for(own.begin, own.end, [&](int v) {
    for (int tail = 0; tail < c2; ++tail) {
      const int u = d1(v) * c2 + tail;
      const auto msg = net.stage(v, u, group_words);
      for (std::size_t b = 0; b < batch; ++b) {
        const auto& pv = prod[static_cast<std::size_t>(v) * batch + b];
        codec.encode_into(std::span<const V>(pv.row(tail), block_entries),
                          msg.data() + b * block_words);
      }
    }
  });
  clock.lap("step3 stage");
  net.deliver();
  clock.lap("step3 deliver");

  // Step 4: node v sums the received pieces into row v of each product
  // (distinct output rows, so the nodes run concurrently).
  for (std::size_t b = 0; b < batch; ++b)
    out.emplace_back(n, n, sr.zero());
  parallel_for(own.begin, own.end, [&](int v) {
    std::vector<V> piece(block_entries, sr.zero());
    for (int tail = 0; tail < c2; ++tail) {
      const int u = d1(v) * c2 + tail;  // sent P_b^(u2)[v, u3**]
      // Leased: the view is decoded b times across the batch loop, so the
      // generation check pins the no-deliver-in-between contract.
      const analysis::InboxLease<clique::Network> in(net, v, u);
      for (std::size_t b = 0; b < batch; ++b) {
        detail::decode_entries_at(codec, in.span(), b * block_words,
                                  block_entries, piece.data());
        auto* orow = out[b].row(v) + d3(u) * c2;
        for (int j = 0; j < c2; ++j)
          orow[j] = sr.add(orow[j], piece[static_cast<std::size_t>(j)]);
      }
    }
  });
  clock.lap("step4 combine");
  return out;
}

/// Section 2.1 — semiring matrix multiplication in O(n^{1/3}) rounds.
///
/// Requires net.n() == s.rows() == s.cols() == t.rows() == t.cols() and
/// net.n() a perfect cube. Returns the full product (row v of which is the
/// output of node v). This is the batch-of-one instance of
/// mm_semiring_3d_batch; its staged traffic is byte-identical to the
/// historical single-product implementation.
template <Semiring S, typename Codec>
[[nodiscard]] Matrix<typename S::Value> mm_semiring_3d(
    clique::Network& net, const S& sr, const Codec& codec,
    const Matrix<typename S::Value>& s, const Matrix<typename S::Value>& t,
    MmStepProfile* profile = nullptr) {
  using V = typename S::Value;
  auto res = mm_semiring_3d_batch(
      net, sr, codec, std::span<const Matrix<V>>(&s, 1),
      std::span<const Matrix<V>>(&t, 1), profile);
  return std::move(res.front());
}

/// Parameters of one fast multiplication instance (Section 2.2).
struct FastPlan {
  int depth = 0;      ///< tensor-power exponent k of the base algorithm
  int d = 1;          ///< block grid dimension (base_d^k)
  int m = 1;          ///< number of block products (base_m^k)
  int clique_n = 1;   ///< admissible clique/matrix size (square, d | sqrt)
};

/// Smallest admissible instance for matrices of size n with a forced depth:
/// clique_n is a perfect square, d = base_d^depth divides sqrt(clique_n),
/// and m = base_m^depth <= clique_n.
[[nodiscard]] FastPlan plan_fast_mm(int n, int depth, int base_d = 2,
                                    int base_m = 7);

/// Auto-select the largest depth whose m fits below n (the paper's
/// "fix d so that m(d) = n"), then pad.
[[nodiscard]] FastPlan plan_fast_mm_auto(int n, int base_d = 2,
                                         int base_m = 7);

/// Section 2.2 / Lemma 10, batched — B independent ring products through
/// SHARED supersteps (same scheme as mm_semiring_3d_batch: per-pair
/// messages of the B products concatenate into one staged group, so the
/// batch pays one routing schedule per superstep). Message layouts put
/// product b's blocks at word offsets computed in whole blocks — [S_b T_b]
/// pairs in Steps 1 and 3, b * blk_words groups in Steps 5 and 7 — so
/// B = 1 is byte-identical to the historical single-product path.
///
/// `alg` must be a bilinear algorithm for d x d matrices with m products,
/// with d | sqrt(net.n()) and m <= net.n(); tensor_power(strassen, k)
/// satisfies this for admissible sizes from plan_fast_mm. Runs in
/// O(B n^{1 - 2/sigma}) rounds where m = d^sigma.
template <Ring R, typename Codec>
[[nodiscard]] std::vector<Matrix<typename R::Value>> mm_fast_bilinear_batch(
    clique::Network& net, const R& ring, const Codec& codec,
    const BilinearAlgorithm& alg,
    std::span<const Matrix<typename R::Value>> as,
    std::span<const Matrix<typename R::Value>> bs_in,
    MmStepProfile* profile = nullptr) {
  using V = typename R::Value;
  const int n = net.n();
  // Genuinely full-ownership: the bilinear scheme's coefficient
  // combination reads every node's received blocks.
  clique::require_full_ownership(
      net, "mm_fast_bilinear",
      "use the 3D or sparse engine for sharded runs");
  const std::size_t batch = as.size();
  CCA_EXPECTS(batch >= 1 && bs_in.size() == batch);
  for (std::size_t b = 0; b < batch; ++b) {
    CCA_EXPECTS(as[b].rows() == n && as[b].cols() == n);
    CCA_EXPECTS(bs_in[b].rows() == n && bs_in[b].cols() == n);
  }
  CCA_EXPECTS(is_perfect_square(n));
  const int sq = static_cast<int>(isqrt(n));
  const int d = alg.d;
  const int m = alg.m;
  CCA_EXPECTS(d >= 1 && sq % d == 0);
  CCA_EXPECTS(m <= n);
  const int bs = sq / d;        // fine block size (n^{1/2} / d)
  const int big = n / d;        // coarse block size (rows per first digit)
  std::vector<Matrix<V>> out;
  out.reserve(batch);
  if (n == 1) {
    for (std::size_t b = 0; b < batch; ++b) {
      Matrix<V> o(1, 1, ring.zero());
      o(0, 0) = ring.mul(as[b](0, 0), bs_in[b](0, 0));
      out.push_back(std::move(o));
    }
    return out;
  }
  const auto row_entries = static_cast<std::size_t>(sq);
  const auto row_words = codec.words_for(row_entries);
  const auto blk_entries = static_cast<std::size_t>(bs) *
                           static_cast<std::size_t>(bs);
  const auto blk_words = codec.words_for(blk_entries);
  detail::StepClock clock(profile);

  // Node digits (v1, v2, v3) in radices (d, sq, sq/d) and labels (x1, x2).
  auto label_of = [sq](int x1, int x2) { return x1 * sq + x2; };

  // Columns with second digit x2, in increasing order: for i in [d], the
  // range [i*big + x2*bs, i*big + (x2+1)*bs).
  auto for_each_col_x2 = [&](int x2, auto&& fn) {
    for (int i = 0; i < d; ++i)
      for (int off = 0; off < bs; ++off) fn(i * big + x2 * bs + off);
  };

  // Step 1: node v sends S_b[v, *x2*] and T_b[v, *x2*] to label (v2, x2) —
  // the B single-product [S piece, T piece] messages concatenated in one
  // staged span (product b's pair starts at word 2b * row_words). The
  // columns for x2 are d contiguous bs-runs, gathered into a per-sender
  // scratch and encoded straight into network memory.
  parallel_for(0, n, [&](int v) {
    const int v2 = (v / bs) % sq;
    std::vector<V> tmp(row_entries, ring.zero());
    for (int x2 = 0; x2 < sq; ++x2) {
      const int u = label_of(v2, x2);
      // lint:allow(full-range-staging): owns_all() validated at entry.
      const auto msg = net.stage(v, u, 2 * batch * row_words);
      for (std::size_t b = 0; b < batch; ++b) {
        int lj = 0;
        for_each_col_x2(x2, [&](int j) {
          tmp[static_cast<std::size_t>(lj++)] = as[b](v, j);
        });
        codec.encode_into(std::span<const V>(tmp.data(), row_entries),
                          msg.data() + 2 * b * row_words);
        lj = 0;
        for_each_col_x2(x2, [&](int j) {
          tmp[static_cast<std::size_t>(lj++)] = bs_in[b](v, j);
        });
        codec.encode_into(std::span<const V>(tmp.data(), row_entries),
                          msg.data() + (2 * b + 1) * row_words);
      }
    }
  });
  clock.lap("step1 stage");
  net.deliver();
  clock.lap("step1 deliver");

  // Node u = (x1,x2) assembles the sq x sq local views S_b[*x1*, *x2*] and
  // T_b[*x1*, *x2*]: local row index of sender v is v1*bs + v3; each piece
  // decodes directly into the local-view row.
  std::vector<Matrix<V>> sloc(static_cast<std::size_t>(n) * batch);
  std::vector<Matrix<V>> tloc(static_cast<std::size_t>(n) * batch);
  parallel_for(0, n, [&](int u) {
    const int x1 = u / sq;
    for (std::size_t b = 0; b < batch; ++b) {
      Matrix<V> sl(sq, sq, ring.zero());
      Matrix<V> tl(sq, sq, ring.zero());
      for (int v1 = 0; v1 < d; ++v1)
        for (int v3 = 0; v3 < bs; ++v3) {
          const int v = v1 * big + x1 * bs + v3;  // sender with v2 == x1
          const int lrow = v1 * bs + v3;
          const auto in = net.inbox(u, v);
          detail::decode_entries_at(codec, in, 2 * b * row_words,
                                    row_entries, sl.row(lrow));
          detail::decode_entries_at(codec, in, (2 * b + 1) * row_words,
                                    row_entries, tl.row(lrow));
        }
      sloc[static_cast<std::size_t>(u) * batch + b] = std::move(sl);
      tloc[static_cast<std::size_t>(u) * batch + b] = std::move(tl);
    }
  });
  clock.lap("step1 assemble");

  // Step 2 (local): linear combinations S_b^(w)[x1*, x2*], T_b^(w)[x1*,
  // x2*], built in flat per-sender scratch blocks with one
  // multiply-accumulate per coefficient (see scaled_accumulate). Step 3:
  // the B [shat, that] pairs encode into one staged span to node w, for
  // every w in [m].
  parallel_for(0, n, [&](int u) {
    std::vector<V> shat(blk_entries, ring.zero());
    std::vector<V> that(blk_entries, ring.zero());
    for (int w = 0; w < m; ++w) {
      // lint:allow(full-range-staging): owns_all() validated at entry.
      const auto msg = net.stage(u, w, 2 * batch * blk_words);
      for (std::size_t b = 0; b < batch; ++b) {
        const auto& sl = sloc[static_cast<std::size_t>(u) * batch + b];
        const auto& tl = tloc[static_cast<std::size_t>(u) * batch + b];
        std::fill(shat.begin(), shat.end(), ring.zero());
        std::fill(that.begin(), that.end(), ring.zero());
        for (const auto& cfc : alg.alpha[static_cast<std::size_t>(w)])
          detail::scaled_accumulate(ring, shat.data(), bs, bs, sl,
                                    (cfc.index / d) * bs,
                                    (cfc.index % d) * bs, cfc.coeff);
        for (const auto& cfc : alg.beta[static_cast<std::size_t>(w)])
          detail::scaled_accumulate(ring, that.data(), bs, bs, tl,
                                    (cfc.index / d) * bs,
                                    (cfc.index % d) * bs, cfc.coeff);
        codec.encode_into(std::span<const V>(shat.data(), blk_entries),
                          msg.data() + 2 * b * blk_words);
        codec.encode_into(std::span<const V>(that.data(), blk_entries),
                          msg.data() + (2 * b + 1) * blk_words);
      }
    }
  });
  clock.lap("step2-3 combine+stage");
  net.deliver();
  clock.lap("step3 deliver");

  // Step 4 (local at product nodes): assemble S_b^(w), T_b^(w), multiply.
  std::vector<Matrix<V>> phat(static_cast<std::size_t>(m) * batch);
  parallel_for(0, m, [&](int w) {
    std::vector<V> sbuf(blk_entries, ring.zero());
    std::vector<V> tbuf(blk_entries, ring.zero());
    for (std::size_t b = 0; b < batch; ++b) {
      Matrix<V> sw(big, big, ring.zero());
      Matrix<V> tw(big, big, ring.zero());
      for (int x1 = 0; x1 < sq; ++x1)
        for (int x2 = 0; x2 < sq; ++x2) {
          const int u = label_of(x1, x2);
          const auto in = net.inbox(w, u);
          detail::decode_entries_at(codec, in, 2 * b * blk_words,
                                    blk_entries, sbuf.data());
          detail::decode_entries_at(codec, in, (2 * b + 1) * blk_words,
                                    blk_entries, tbuf.data());
          for (int i = 0; i < bs; ++i) {
            const auto* sp = sbuf.data() + static_cast<std::size_t>(i) * bs;
            const auto* tp = tbuf.data() + static_cast<std::size_t>(i) * bs;
            auto* swrow = sw.row(x1 * bs + i) + x2 * bs;
            auto* twrow = tw.row(x1 * bs + i) + x2 * bs;
            for (int j = 0; j < bs; ++j) {
              swrow[j] = sp[j];
              twrow[j] = tp[j];
            }
          }
        }
      phat[static_cast<std::size_t>(w) * batch + b] =
          local_multiply(ring, sw, tw);
    }
  });
  clock.lap("step4 product");

  // Step 5: node w returns P_b^(w)[x1*, x2*] to label (x1, x2), the B
  // blocks concatenated (product b at word b * blk_words).
  parallel_for(0, m, [&](int w) {
    std::vector<V> tmp(blk_entries, ring.zero());
    for (int x1 = 0; x1 < sq; ++x1)
      for (int x2 = 0; x2 < sq; ++x2) {
        // lint:allow(full-range-staging): owns_all() validated at entry.
        const auto msg = net.stage(w, label_of(x1, x2), batch * blk_words);
        for (std::size_t b = 0; b < batch; ++b) {
          const auto& pw = phat[static_cast<std::size_t>(w) * batch + b];
          for (int i = 0; i < bs; ++i) {
            const auto* prow = pw.row(x1 * bs + i) + x2 * bs;
            auto* tp = tmp.data() + static_cast<std::size_t>(i) * bs;
            for (int j = 0; j < bs; ++j) tp[j] = prow[j];
          }
          codec.encode_into(std::span<const V>(tmp.data(), blk_entries),
                            msg.data() + b * blk_words);
        }
      }
  });
  clock.lap("step5 stage");
  net.deliver();
  clock.lap("step5 deliver");

  // Step 6 (local): P_b[ix1*, jx2*] = sum_w lambda_ijw P_b^(w)[x1*, x2*],
  // assembled into the sq x sq local view P_b[*x1*, *x2*]. Pieces decode
  // into one flat scratch (m consecutive bs x bs blocks) and each lambda
  // coefficient applies as a single multiply-accumulate.
  std::vector<Matrix<V>> ploc(static_cast<std::size_t>(n) * batch);
  parallel_for(0, n, [&](int u) {
    std::vector<V> pieces(static_cast<std::size_t>(m) * blk_entries,
                          ring.zero());
    for (std::size_t b = 0; b < batch; ++b) {
      for (int w = 0; w < m; ++w)
        detail::decode_entries_at(
            codec, net.inbox(u, w), b * blk_words, blk_entries,
            pieces.data() + static_cast<std::size_t>(w) * blk_entries);
      Matrix<V> pl(sq, sq, ring.zero());
      for (int i = 0; i < d; ++i)
        for (int j = 0; j < d; ++j)
          for (const auto& cfc :
               alg.lambda[static_cast<std::size_t>(i * d + j)]) {
            const auto* piece = pieces.data() +
                                static_cast<std::size_t>(cfc.index) *
                                    blk_entries;
            detail::scaled_accumulate_flat(ring, pl, i * bs, j * bs, piece,
                                           bs, cfc.coeff);
          }
      ploc[static_cast<std::size_t>(u) * batch + b] = std::move(pl);
    }
  });
  clock.lap("step6 recombine");

  // Step 7: node (x1, x2) sends P_b[r, *x2*] to r for each r in *x1* — the
  // B contiguous local-view rows concatenated, encoded in place.
  parallel_for(0, sq * sq, [&](int u) {
    const int x1 = u / sq;
    for (int r1 = 0; r1 < d; ++r1)
      for (int r3 = 0; r3 < bs; ++r3) {
        const int r = r1 * big + x1 * bs + r3;
        // lint:allow(full-range-staging): owns_all() validated at entry.
        const auto msg = net.stage(u, r, batch * row_words);
        for (std::size_t b = 0; b < batch; ++b) {
          const auto& pl = ploc[static_cast<std::size_t>(u) * batch + b];
          codec.encode_into(
              std::span<const V>(pl.row(r1 * bs + r3), row_entries),
              msg.data() + b * row_words);
        }
      }
  });
  clock.lap("step7 stage");
  net.deliver();
  clock.lap("step7 deliver");

  for (std::size_t b = 0; b < batch; ++b)
    out.emplace_back(n, n, ring.zero());
  parallel_for(0, n, [&](int r) {
    const int r2 = (r / bs) % sq;
    std::vector<V> entries(row_entries, ring.zero());
    for (int x2 = 0; x2 < sq; ++x2) {
      const int u = label_of(r2, x2);
      const auto in = net.inbox(r, u);
      for (std::size_t b = 0; b < batch; ++b) {
        detail::decode_entries_at(codec, in, b * row_words, row_entries,
                                  entries.data());
        int lj = 0;
        for_each_col_x2(x2, [&](int j) {
          out[b](r, j) = entries[static_cast<std::size_t>(lj)];
          ++lj;
        });
      }
    }
  });
  clock.lap("step8 output");
  return out;
}

/// Section 2.2 / Lemma 10 — fast bilinear matrix multiplication.
///
/// `alg` must be a bilinear algorithm for d x d matrices with m products,
/// with d | sqrt(net.n()) and m <= net.n(); tensor_power(strassen, k)
/// satisfies this for admissible sizes from plan_fast_mm. Runs in
/// O(n^{1 - 2/sigma}) rounds where m = d^sigma. This is the batch-of-one
/// instance of mm_fast_bilinear_batch; its staged traffic is byte-identical
/// to the historical single-product implementation.
template <Ring R, typename Codec>
[[nodiscard]] Matrix<typename R::Value> mm_fast_bilinear(
    clique::Network& net, const R& ring, const Codec& codec,
    const BilinearAlgorithm& alg, const Matrix<typename R::Value>& s,
    const Matrix<typename R::Value>& t, MmStepProfile* profile = nullptr) {
  using V = typename R::Value;
  auto res = mm_fast_bilinear_batch(
      net, ring, codec, alg, std::span<const Matrix<V>>(&s, 1),
      std::span<const Matrix<V>>(&t, 1), profile);
  return std::move(res.front());
}

/// The trivial baseline: every node broadcasts its rows of both inputs so
/// everyone knows the full matrices, then computes its own output row
/// locally. Exactly 2n words per ordered link, hence 2n rounds (direct
/// schedule); the payload is charged but not materialised.
template <Semiring S>
[[nodiscard]] Matrix<typename S::Value> mm_naive_broadcast(
    clique::Network& net, const S& sr, int words_per_entry,
    const Matrix<typename S::Value>& s, const Matrix<typename S::Value>& t) {
  const int n = net.n();
  CCA_EXPECTS(s.rows() == n && s.cols() == n);
  CCA_EXPECTS(t.rows() == n && t.cols() == n);
  CCA_EXPECTS(words_per_entry >= 1);
  // Genuinely full-ownership: the broadcast is charged but never
  // materialised, so a sharded rank cannot learn the non-owned rows.
  clique::require_full_ownership(
      net, "mm_naive_broadcast",
      "its broadcast is charged but never materialised; use a sharded "
      "engine");
  if (n > 1)
    net.charge_rounds(2 * static_cast<std::int64_t>(n) * words_per_entry);
  return multiply(sr, s, t);
}

// ---------------------------------------------------------------------------
// Sparse multiplication (the paper's sparsity-sensitive regime; Le Gall,
// OPODIS'16 sharpens the same rectangular/sparse setting).
// ---------------------------------------------------------------------------
//
// mm_semiring_sparse multiplies matrices with rho_S, rho_T nonzeros in
// rounds governed by the nonzero volume instead of n:
//
//   1. announce     — every node broadcasts its per-row nnz of S and T,
//                     packed into one word (1 round, Theorem-1-style
//                     dissemination of the load profile);
//   2. gather       — node i relays each off-diagonal nonzero S[i,k] to the
//                     column holder k (value only: the row index is the
//                     sender id). KoenigRelay spreads the rho_S words;
//   3. announce     — column holders broadcast their column nnz (1 round),
//                     after which EVERY node can compute the same balanced
//                     partition of the T = sum_k colS(k) * rowT(k) nonzero
//                     triples: intermediate k gets g_k ~ ceil(t_k n / T)
//                     workers (clique::disseminate-style g-mod-n balancing,
//                     with node k itself as worker 0 so the balanced common
//                     case moves nothing);
//   4. distribute   — holder k ships each extra worker a chunk of column k
//                     plus row k of T as SparseCodec blocks;
//   5. contribute   — workers multiply their triples, merge contributions
//                     per output row across their intermediates, and send
//                     node i its row-i contributions as a SparseCodec
//                     block; receivers fold with the semiring add.
//
// At rho ~ n^{3/2} the measured rounds beat the dense 3D engine by >= 2x
// (BENCH_mm.json pins it); at full density the triple volume makes it
// useless, which is what MmKind::Auto's dispatch is for. Results are
// element-identical to mm_semiring_3d for every semiring whose zero is an
// additive identity AND a multiplicative annihilator (the documented
// Semiring contract — see semiring.hpp; skipping zero operands is exactly
// the ops.hpp `multiply` zero-skip, audited in test_matrix.cpp).
//
// Unlike the dense engines, ANY net.n() == dimension >= 1 is admissible (no
// cube/square constraint): the balanced partition does not need a grid.

/// Per-row sorted nonzero column indices — the value-independent shape the
/// announcements move and the planner consumes.
using SparsePattern = std::vector<std::vector<int>>;

/// Value-independent plan of one sparse multiplication: the balanced triple
/// partition and the exact per-superstep demand lists (canonical (src, dst)
/// ascending — the order Network::deliver emits, so planned schedules are
/// cache hits for the staged run). Built by build_sparse_mm_structure; the
/// executor (mm_semiring_sparse) and the dispatcher (mm_semiring_auto /
/// IntMmEngine Auto) consume the SAME structure, which is what makes the
/// dispatcher's planned rounds exactly the rounds the sparse path charges.
struct SparseMmStructure {
  bool trivial = false;      ///< rho_s == 0 or rho_t == 0: product is zero
  std::int64_t rho_s = 0;    ///< global nnz of S
  std::int64_t rho_t = 0;    ///< global nnz of T
  std::int64_t triples = 0;  ///< T = sum_k colS(k) * rowT(k)
  /// Column pattern of S: s_cols[k] = ascending row ids with S[i,k] != 0.
  std::vector<std::vector<int>> s_cols;
  /// Workers per intermediate (0 when t_k == 0, else in [1, colS(k)]).
  std::vector<int> group_size;
  /// extras[k] = the g_k - 1 extra worker node ids (worker 0 is node k).
  std::vector<std::vector<int>> extras;
  /// Per worker: its extra-chunk assignments (intermediate k, chunk index r
  /// in [1, g_k)), ascending by k.
  std::vector<std::vector<std::pair<int, int>>> worker_extras;
  /// Per worker: ascending (output row i, merged contribution entry count),
  /// including the worker's own row (i == w, which moves no words).
  std::vector<std::vector<std::pair<int, int>>> contrib;
  /// Canonical demand lists of the three staged supersteps.
  std::vector<clique::Demand> gather, distribute, contribute;
};

/// Chunk r (0-based) of a cnt-entry column split over g workers:
/// [first, last) with sizes as equal as possible, larger chunks first.
[[nodiscard]] std::pair<int, int> sparse_chunk_bounds(int cnt, int g, int r);

/// Demand-shape quantisation bucket for the sparse plan: counts <= 8 stay
/// exact, larger counts round up to the next power of two. The planner
/// sizes the distribute / contribute messages (and the worker partition)
/// from BUCKETED counts and the executor pads each block to its bucket, so
/// consecutive squarings whose per-row counts drift WITHIN their buckets
/// emit byte-identical demand lists and replay the previous iteration's
/// routing schedule from the ScheduleCache instead of re-running the Euler
/// split. Padding bound: a bucketed block is < 2x its exact size (counts
/// <= 8 are exact; above 8 the next power of two is < 2c and every codec's
/// words_for is monotone with words_for(2c) <= 2 words_for(c)), and the
/// padded rounds are still charged for real — the accounting never
/// understates. The gather phase deliberately stays exact (one value per
/// nonzero; there is no block to pad), so gather misses the cache whenever
/// the pattern itself grows — the documented limitation of shape
/// quantisation.
[[nodiscard]] constexpr std::int64_t sparse_count_bucket(
    std::int64_t c) noexcept {
  if (c <= 8) return c;
  std::int64_t p = 16;
  while (p < c) p *= 2;
  return p;
}

/// Message-size alignment for the staged distribute / contribute messages:
/// each per-pair message rounds up to a multiple of the phase's alignment
/// (zero-filled by stage()). The motivation is the HOST cost of the Euler
/// split: with every per-pair demand divisible by 2^k, the split's first k
/// levels produce element-identical halves and the scheduler traverses ONE
/// subtree per level (the identical-halves collapse), duplicating the class
/// log instead of re-walking word-granularity trails. The contribute phase
/// carries the bulk of the sparse plan's words in the most ragged shapes,
/// so it aligns to 8 from n >= 200 (measured ~5x less scheduling wall at
/// n=216 for < 17% extra words, with round counts unchanged there) and to
/// 4 below (at n = 64 and n = 125 the 8-word padding measurably costs
/// relay rounds — the padded volume is a larger fraction of n-1 ports —
/// so smaller cliques keep the cheaper alignment); distribute aligns to 4
/// at every size. The
/// padding is charged for real (at most align-1 extra words per pair per
/// phase, on top of the < 2x bucket bound); the gather phase stays exact —
/// its messages are a single value wide, where alignment would multiply
/// the volume for no collapse benefit.
inline constexpr std::int64_t kSparseDistributeAlign = 4;
[[nodiscard]] constexpr std::int64_t sparse_contribute_align(int n) noexcept {
  return n >= 200 ? 8 : 4;
}
[[nodiscard]] constexpr std::int64_t sparse_msg_align(std::int64_t w,
                                                      std::int64_t a) noexcept {
  return (w + a - 1) / a * a;
}

/// Nonzero pattern of a matrix under the semiring's zero.
template <Semiring S>
[[nodiscard]] SparsePattern sparse_pattern(const S& sr,
                                           const Matrix<typename S::Value>& m) {
  SparsePattern rows(static_cast<std::size_t>(m.rows()));
  for (int i = 0; i < m.rows(); ++i)
    for (int j = 0; j < m.cols(); ++j)
      if (!(m(i, j) == sr.zero()))
        rows[static_cast<std::size_t>(i)].push_back(j);
  return rows;
}

/// Build the full sparse plan. `value_words(c)` must be the wrapped value
/// codec's words_for(c) (SparseCodec adds the packed index words itself).
/// Cost: O(rho_s + rho_t + T + n) local work — the symbolic counterpart of
/// the multiplication, which is why the Auto dispatcher bounds T before
/// planning.
[[nodiscard]] SparseMmStructure build_sparse_mm_structure(
    int n, const SparsePattern& s_rows, const SparsePattern& t_rows,
    const std::function<std::size_t(std::size_t)>& value_words);

/// Exact triple count T = sum_k colS(k) * rowT(k) straight from the
/// patterns — the O(rho + n) pre-filter the dispatcher runs before paying
/// for the full structure.
[[nodiscard]] std::int64_t sparse_triple_count(int n,
                                               const SparsePattern& s_rows,
                                               const SparsePattern& t_rows);

/// The exact step-1 / step-3 demand lists mm_semiring_3d (batch B) stages
/// on an n-clique with block_words words per per-product block, including
/// the step-1 odd-group pad — canonical order, ready for
/// Network::prepare_schedule.
[[nodiscard]] std::pair<std::vector<clique::Demand>,
                        std::vector<clique::Demand>>
semiring3d_superstep_demands(int n, std::size_t block_words,
                             std::size_t batch = 1);

/// Planned KoenigRelay rounds of mm_semiring_3d (batch B): schedules the
/// demand lists above through net's cache, so a subsequent real run
/// replays the schedules. Excludes nothing — the 3D algorithm charges only
/// its two deliveries.
[[nodiscard]] std::int64_t semiring3d_planned_rounds(clique::Network& net,
                                                     int n,
                                                     std::size_t block_words,
                                                     std::size_t batch = 1);

/// The four superstep demand lists of mm_fast_bilinear (batch 1) for `alg`
/// on an n-clique with the given codec widths (row_words =
/// words_for(sqrt(n)), blk_words = words_for((sqrt(n)/d)^2)).
[[nodiscard]] std::vector<std::vector<clique::Demand>>
fast_bilinear_superstep_demands(int n, const BilinearAlgorithm& alg,
                                std::size_t row_words, std::size_t blk_words);

/// Planned KoenigRelay rounds of mm_fast_bilinear (batch 1) for `alg`.
[[nodiscard]] std::int64_t fast_bilinear_planned_rounds(
    clique::Network& net, int n, const BilinearAlgorithm& alg,
    std::size_t row_words, std::size_t blk_words);

/// Schedule-independent lower bound on the two-phase relay's rounds for a
/// demand list: every word must leave its source and reach its destination
/// through the n per-phase ports (the relay counts the self-loop hop as
/// free capacity, so the divisor is n, not n-1). Building a demand list is
/// cheap; the Euler split is not — the Auto dispatcher uses this bound to
/// SKIP scheduling a dense candidate that provably cannot beat the sparse
/// plan (sound: the actual schedule is never below the bound, so the
/// skipped engine never had the fewest rounds; ties go to the sparse
/// preference order anyway). test_sparse.cpp pins bound <= measured on the
/// real engine shapes.
[[nodiscard]] std::int64_t relay_round_lower_bound(
    int n, const std::vector<clique::Demand>& demands);

/// Per-node volume accumulators for the build-free sparse lower bound: one
/// (out, in) pair per staged sparse superstep. The batch dispatcher
/// accumulates several products into one instance (merged supersteps add
/// volumes per node) before taking one bound per phase.
struct SparsePhaseVolumes {
  explicit SparsePhaseVolumes(int n)
      : gather_out(static_cast<std::size_t>(n), 0),
        gather_in(static_cast<std::size_t>(n), 0),
        distribute_out(static_cast<std::size_t>(n), 0),
        distribute_in(static_cast<std::size_t>(n), 0),
        contribute_out(static_cast<std::size_t>(n), 0),
        contribute_in(static_cast<std::size_t>(n), 0) {}
  std::vector<std::int64_t> gather_out, gather_in;
  std::vector<std::int64_t> distribute_out, distribute_in;
  std::vector<std::int64_t> contribute_out, contribute_in;
};

/// relay_round_lower_bound straight from per-node volume arrays (same
/// divide-by-n soundness argument, no demand list materialised).
[[nodiscard]] std::int64_t relay_volume_lower_bound(
    int n, const std::vector<std::int64_t>& out,
    const std::vector<std::int64_t>& in);

/// Accumulate one product's per-node volume LOWER BOUNDS for the three
/// staged sparse supersteps WITHOUT building the O(T) structure — O(nnz + n)
/// work. Gather and distribute volumes are exact (they follow from the
/// count profiles and the shared quantised partition); contribute is a
/// sound underestimate: each distinct (worker, output row) pair ships one
/// merged message whose entry count is at least the largest contributing
/// T-row count (the union can only be larger, and the bucketed frame can
/// only pad further). This is the tier-1 gate that lets the Auto dispatcher
/// skip building and scheduling a sparse plan that provably cannot win —
/// the densified iterations of an APSP run drop from three Euler splits
/// over millions of plan-words to a sub-millisecond volume scan.
void add_sparse_volume_lower_bound(
    int n, const SparsePattern& s_rows, const SparsePattern& t_rows,
    const std::function<std::size_t(std::size_t)>& value_words,
    SparsePhaseVolumes& acc);

/// Build-free lower bound on sparse_planned_rounds for one product:
/// 1 (column-count announcement) + the three phase bounds; 0 when the
/// product is trivial. Sound: never exceeds the planned (hence charged)
/// rounds — pinned by test_sparse.cpp.
[[nodiscard]] std::int64_t sparse_round_lower_bound(
    int n, const SparsePattern& s_rows, const SparsePattern& t_rows,
    const std::function<std::size_t(std::size_t)>& value_words);

/// Triple-volume ceiling (~4 n^{7/3}) above which the Auto dispatcher does
/// not even build the sparse plan: past it the contribute phase dwarfs the
/// dense engines and the O(T) symbolic merge would be wasted work.
[[nodiscard]] std::int64_t sparse_plan_cap(int n);

/// Planned rounds of the staged sparse phases for a built structure
/// (column announcement + the three scheduled supersteps; 0 when trivial),
/// through net's schedule cache — shared by the single-product and batch
/// Auto dispatchers so their cost models cannot drift apart. When the
/// partial sum already exceeds `abort_above`, the remaining phases are NOT
/// scheduled and the (partial, already > abort_above) sum returns — sound
/// for the dispatcher's strict comparisons because the full plan can only
/// be larger, and it saves the losing candidate's residual Euler splits.
[[nodiscard]] std::int64_t sparse_planned_rounds(
    clique::Network& net, const SparseMmStructure& st,
    std::int64_t abort_above = std::numeric_limits<std::int64_t>::max());

/// Batched planned rounds of the staged sparse phases for B built
/// structures sharing every superstep (the mm_semiring_sparse_batch /
/// batched-Auto cost model): live column-count announcements (one word per
/// link per non-trivial product, one shared superstep) plus the schedules
/// of the three MERGED demand lists — per-product canonical demands summed
/// per (src, dst), exactly what Network::deliver derives from the batched
/// staging. Shared with the executor so the cost models cannot drift.
[[nodiscard]] std::int64_t sparse_planned_rounds_batch(
    clique::Network& net, std::span<const SparseMmStructure> sts,
    std::int64_t abort_above = std::numeric_limits<std::int64_t>::max());

namespace detail {

/// The staged phases of the sparse algorithm AFTER the row-nnz announcement
/// (gather -> column-count announcement -> distribute -> contribute), for a
/// BATCH of B products sharing every superstep: product b's per-pair block
/// follows product b-1's inside the same staged message (block membership
/// and sizes come from the structures, which every node derives from the
/// announcements), so the whole batch pays ONE routing schedule per phase.
/// A dispatcher that already announced can run the remainder without paying
/// the announcement twice. Charges exactly
///   live + sched(merged gather) + sched(merged distribute)
///        + sched(merged contribute)
/// rounds, where live = #non-trivial products (their column-count
/// announcements share one superstep, one word per link each) — the same
/// value sparse_planned_rounds_batch computes from the structures. The
/// batch-of-one instance stages byte-identical traffic to the historical
/// single-product implementation (pinned in test_sparse.cpp).
template <Semiring S, typename Codec>
[[nodiscard]] std::vector<Matrix<typename S::Value>>
mm_semiring_sparse_staged_batch(
    clique::Network& net, const S& sr, const Codec& codec,
    std::span<const Matrix<typename S::Value>> ss,
    std::span<const Matrix<typename S::Value>> ts,
    std::span<const SparseMmStructure> sts,
    MmStepProfile* profile = nullptr) {
  using V = typename S::Value;
  using SC = SparseCodec<Codec>;
  using Index = typename SC::Index;
  const SC scodec{codec};
  const int n = net.n();
  const std::size_t batch = ss.size();
  CCA_EXPECTS(ts.size() == batch && sts.size() == batch);
  std::vector<Matrix<V>> out;
  out.reserve(batch);
  for (std::size_t b = 0; b < batch; ++b) out.emplace_back(n, n, sr.zero());
  std::int64_t live = 0;
  for (const auto& st : sts)
    if (!st.trivial) ++live;
  if (live == 0) return out;
  const auto vw1 = codec.words_for(1);
  // This rank's shard: staging and inbox-reading loops walk only owned
  // nodes (in-process that is [0, n)); loops over REPLICATED inputs stay
  // full-range. Under sharding only the owned output rows are
  // authoritative — see mm_semiring_3d_batch's sharded-execution note.
  const clique::NodeSpan own = net.owned();
  detail::StepClock clock(profile);

  // Gather: every off-diagonal nonzero S_b[i,k] travels to column holder k
  // as a bare value (the row index is the sender id) — except entries of
  // columns whose intermediate forms no triple: the step-0 announcement
  // already told every node those values stay put (matching the plans'
  // gather demands). The "k forms a triple" verdict comes from the PLAN
  // (group_size[k] > 0 exactly when colS(k) and rowT(k) are both
  // nonempty), which every rank derived from the announced census — never
  // from a value scan of T rows a sharded rank does not hold. For a staged
  // nonzero S_b[i,k], colS(k) contains i, so the plan verdict coincides
  // with the historical "T row k alive" test. Senders own distinct
  // outboxes, so the staging loop is parallel-over-senders; a pair's
  // per-product values concatenate in product order.
  parallel_for(own.begin, own.end, [&](int i) {
    for (std::size_t b = 0; b < batch; ++b) {
      if (sts[b].trivial) continue;
      for (int k = 0; k < n; ++k) {
        if (k == i ||
            sts[b].group_size[static_cast<std::size_t>(k)] == 0 ||
            ss[b](i, k) == sr.zero())
          continue;
        const auto msg = net.stage(i, k, vw1);
        codec.encode_into(std::span<const V>(&ss[b](i, k), 1), msg.data());
      }
    }
  });
  clock.lap("gather stage");
  net.deliver();
  clock.lap("gather deliver");

  // Column holders decode their columns (distinct k per iteration), the
  // per-sender word offset advancing across products. Dead columns
  // (t_k == 0, nothing gathered) keep no values — no chunk ever references
  // them.
  std::vector<std::vector<std::vector<V>>> colvals(
      batch, std::vector<std::vector<V>>(static_cast<std::size_t>(n)));
  parallel_for(own.begin, own.end, [&](int k) {
    const auto ks = static_cast<std::size_t>(k);
    std::vector<std::size_t> off(static_cast<std::size_t>(n), 0);
    for (std::size_t b = 0; b < batch; ++b) {
      if (sts[b].trivial || sts[b].group_size[ks] == 0) continue;
      const auto& rows = sts[b].s_cols[ks];
      auto& vals = colvals[b][ks];
      vals.assign(rows.size(), sr.zero());
      for (std::size_t r = 0; r < rows.size(); ++r) {
        const int i = rows[r];
        if (i == k) {
          vals[r] = ss[b](k, k);
          continue;
        }
        const auto in = net.inbox(k, i);
        auto& at = off[static_cast<std::size_t>(i)];
        CCA_ASSERT(at + vw1 <= in.size());
        codec.decode_into(in.data() + at, 1, &vals[r]);
        at += vw1;
      }
    }
    // Every gathered word must be consumed — the structures and the
    // staging loop derive the same per-pair volumes (the batch analogue of
    // the single-product in.size() == vw1 assert).
    for (int i = 0; i < n; ++i)
      CCA_ASSERT(off[static_cast<std::size_t>(i)] ==
                 net.inbox(k, i).size());
  });
  clock.lap("gather decode");

  // Column-count announcement: with the row counts from the first
  // announcement this gives every node every live product's t_k profile,
  // hence the same balanced worker partitions the structures encode. The
  // live products' counts ride one superstep (one word per link each), so
  // the charge is broadcast_all's 1 round per live product.
  if (n > 1) net.charge_rounds(live);

  // Sparse views of the T rows (needed by distribute and by local work).
  std::vector<std::vector<std::vector<Index>>> trow_idx(
      batch, std::vector<std::vector<Index>>(static_cast<std::size_t>(n)));
  std::vector<std::vector<std::vector<V>>> trow_val(
      batch, std::vector<std::vector<V>>(static_cast<std::size_t>(n)));
  // Only the holder (owned k) stages or locally multiplies its T row.
  parallel_for(own.begin, own.end, [&](int k) {
    const auto ks = static_cast<std::size_t>(k);
    for (std::size_t b = 0; b < batch; ++b) {
      if (sts[b].trivial) continue;
      auto& idx = trow_idx[b][ks];
      auto& val = trow_val[b][ks];
      for (int j = 0; j < n; ++j) {
        if (ts[b](k, j) == sr.zero()) continue;
        idx.push_back(static_cast<Index>(j));
        val.push_back(ts[b](k, j));
      }
    }
  });

  // Distribute: holder k ships chunk r of its column plus its T row to each
  // extra worker, as [a_cnt][b_cnt] header words followed by two
  // SparseCodec blocks; per-pair messages concatenate in product order.
  // Frames are sized by the QUANTISED counts (sparse_count_bucket) while
  // the headers carry the real counts, so both sides derive the same
  // padded offsets — matching the planner's quantised demand words. The
  // pad words are stage()'s zero fill.
  const auto frame_words = [&scodec](std::size_t c) {
    return scodec.words_for(static_cast<std::size_t>(
        sparse_count_bucket(static_cast<std::int64_t>(c))));
  };
  // Whole-message alignment (see sparse_msg_align): both sides derive the
  // same aligned stride, the tail pad words are stage()'s zero fill.
  const auto dist_align = [](std::size_t w) {
    return static_cast<std::size_t>(sparse_msg_align(
        static_cast<std::int64_t>(w), kSparseDistributeAlign));
  };
  const auto contrib_align = [n](std::size_t w) {
    return static_cast<std::size_t>(sparse_msg_align(
        static_cast<std::int64_t>(w), sparse_contribute_align(n)));
  };
  parallel_for(own.begin, own.end, [&](int k) {
    const auto ks = static_cast<std::size_t>(k);
    std::vector<Index> aidx;
    for (std::size_t b = 0; b < batch; ++b) {
      if (sts[b].trivial) continue;
      const auto& st = sts[b];
      const int g = st.group_size[ks];
      const auto& rows = st.s_cols[ks];
      for (int r = 1; r < g; ++r) {
        const int w = st.extras[ks][static_cast<std::size_t>(r - 1)];
        const auto [lo, hi] =
            sparse_chunk_bounds(static_cast<int>(rows.size()), g, r);
        const auto a_cnt = static_cast<std::size_t>(hi - lo);
        const auto b_cnt = trow_idx[b][ks].size();
        const auto a_frame = frame_words(a_cnt);
        // Leased: the span is written by three encode steps with index
        // building in between — the generation check pins that no
        // same-source staging sneaks between them.
        const analysis::StagedLease<clique::Network> msg(
            net, k, w, dist_align(2 + a_frame + frame_words(b_cnt)));
        msg.span()[0] = a_cnt;
        msg.span()[1] = b_cnt;
        aidx.clear();
        for (int x = lo; x < hi; ++x)
          aidx.push_back(
              static_cast<Index>(rows[static_cast<std::size_t>(x)]));
        scodec.encode_into(
            aidx, std::span<const V>(colvals[b][ks].data() + lo, a_cnt),
            msg.span().data() + 2);
        scodec.encode_into(trow_idx[b][ks], trow_val[b][ks],
                           msg.span().data() + 2 + a_frame);
      }
    }
  });
  clock.lap("distribute stage");
  net.deliver();
  clock.lap("distribute deliver");

  // Contribute: every worker multiplies its triples per product, merging
  // contributions per output row across its intermediates (union of the
  // T-row patterns — entries are sent when TOUCHED, value zero or not, so
  // the message sizes are exactly the structures' value-independent
  // counts). The worker's own row folds locally; every other row ships as
  // [cnt] + SparseCodec block, product b's blocks after product b-1's.
  parallel_for(own.begin, own.end, [&](int w) {
    const auto ws = static_cast<std::size_t>(w);
    std::vector<std::size_t> doff(static_cast<std::size_t>(n), 0);
    // Work items: (a-row id, a-value, intermediate k) triples from the
    // own chunk plus every received chunk, grouped per output row. The
    // n-sized scratch is shared across the products (each product's row
    // loop restores acc/touched to zero and clears its row slots), so the
    // per-superstep allocation stays O(n), not O(B n).
    struct Item {
      int k;
      const std::vector<Index>* bidx;
      const std::vector<V>* bval;
    };
    std::vector<Item> items;
    std::vector<std::vector<std::pair<std::size_t, V>>> per_row(
        static_cast<std::size_t>(n));
    auto row_slot = [&](int i) -> std::vector<std::pair<std::size_t, V>>& {
      return per_row[static_cast<std::size_t>(i)];
    };
    std::vector<int> rows_touched;
    auto add_entry = [&](int i, std::size_t item, const V& aval) {
      if (row_slot(i).empty()) rows_touched.push_back(i);
      row_slot(i).push_back({item, aval});
    };
    std::vector<V> acc(static_cast<std::size_t>(n), sr.zero());
    std::vector<std::uint8_t> touched(static_cast<std::size_t>(n), 0);
    std::vector<Index> jlist;
    std::vector<V> vlist;
    for (std::size_t b = 0; b < batch; ++b) {
      if (sts[b].trivial) continue;
      const auto& st = sts[b];
      items.clear();
      // Own chunk (worker 0 of intermediate w).
      if (st.group_size[ws] >= 1) {
        const auto& rows = st.s_cols[ws];
        const auto [lo, hi] = sparse_chunk_bounds(
            static_cast<int>(rows.size()), st.group_size[ws], 0);
        items.push_back({w, &trow_idx[b][ws], &trow_val[b][ws]});
        for (int x = lo; x < hi; ++x)
          add_entry(rows[static_cast<std::size_t>(x)], items.size() - 1,
                    colvals[b][ws][static_cast<std::size_t>(x)]);
      }
      // Received chunks, ascending by intermediate, read at the pair's
      // running word offset (earlier products' chunks precede). Decoded
      // blocks must outlive the loop, so they land in stable per-item
      // storage.
      const auto& ext = st.worker_extras[ws];
      std::vector<std::vector<Index>> dec_aidx(ext.size()),
          dec_bidx(ext.size());
      std::vector<std::vector<V>> dec_aval(ext.size()), dec_bval(ext.size());
      for (std::size_t e = 0; e < ext.size(); ++e) {
        const int k = ext[e].first;
        // Leased: the view feeds two offset decodes with resizes in
        // between, and the surrounding loop stages contributions — the
        // generation check pins that stage() never invalidates inboxes.
        const analysis::InboxLease<clique::Network> in(net, w, k);
        auto& at = doff[static_cast<std::size_t>(k)];
        CCA_ASSERT(at + 2 <= in.span().size());
        const auto a_cnt = static_cast<std::size_t>(in.span()[at]);
        const auto b_cnt = static_cast<std::size_t>(in.span()[at + 1]);
        dec_aidx[e].resize(a_cnt);
        dec_aval[e].resize(a_cnt, sr.zero());
        dec_bidx[e].resize(b_cnt);
        dec_bval[e].resize(b_cnt, sr.zero());
        // Blocks sit at quantised-frame offsets (see the distribute
        // staging); the real header counts bound what is decoded.
        const auto a_frame = frame_words(a_cnt);
        scodec.decode_into(in.span().data() + at + 2, a_cnt,
                           dec_aidx[e].data(), dec_aval[e].data());
        scodec.decode_into(in.span().data() + at + 2 + a_frame, b_cnt,
                           dec_bidx[e].data(), dec_bval[e].data());
        at += dist_align(2 + a_frame + frame_words(b_cnt));
        items.push_back({k, &dec_bidx[e], &dec_bval[e]});
        for (std::size_t x = 0; x < a_cnt; ++x)
          add_entry(static_cast<int>(dec_aidx[e][x]), items.size() - 1,
                    dec_aval[e][x]);
      }
      std::sort(rows_touched.begin(), rows_touched.end());

      // Per output row: accumulate over the row's (item, a-value) pairs.
      std::size_t contrib_at = 0;
      for (const int i : rows_touched) {
        jlist.clear();
        for (const auto& [item, aval] : row_slot(i)) {
          const auto& bidx = *items[item].bidx;
          const auto& bval = *items[item].bval;
          for (std::size_t x = 0; x < bidx.size(); ++x) {
            const auto j = bidx[x];
            const auto prod = sr.mul(aval, bval[x]);
            if (touched[j] == 0) {
              touched[j] = 1;
              jlist.push_back(j);
              acc[j] = prod;
            } else {
              acc[j] = sr.add(acc[j], prod);
            }
          }
        }
        std::sort(jlist.begin(), jlist.end());
        // The plan's symbolic merge must agree with the numeric one.
        CCA_ASSERT(contrib_at < st.contrib[ws].size());
        CCA_ASSERT(st.contrib[ws][contrib_at].first == i);
        CCA_ASSERT(st.contrib[ws][contrib_at].second ==
                   static_cast<int>(jlist.size()));
        ++contrib_at;
        if (i == w) {
          auto* orow = out[b].row(w);
          for (const auto j : jlist)
            orow[j] = sr.add(orow[j], acc[j]);
        } else {
          const auto msg =
              net.stage(w, i, contrib_align(1 + frame_words(jlist.size())));
          msg[0] = jlist.size();
          vlist.clear();
          for (const auto j : jlist) vlist.push_back(acc[j]);
          scodec.encode_into(jlist, vlist, msg.data() + 1);
        }
        for (const auto j : jlist) {
          touched[j] = 0;
          acc[j] = sr.zero();
        }
        row_slot(i).clear();
      }
      CCA_ASSERT(contrib_at == st.contrib[ws].size());
      rows_touched.clear();
    }
  });
  clock.lap("contribute stage");
  net.deliver();
  clock.lap("contribute deliver");

  // Fold the delivered contributions into the output rows (distinct row per
  // iteration); each sender's message parses product by product, block
  // membership coming from the structures' sorted contrib lists.
  parallel_for(own.begin, own.end, [&](int i) {
    std::vector<Index> jbuf;
    std::vector<V> vbuf;
    for (int w = 0; w < n; ++w) {
      if (w == i) continue;
      // Leased: the view is parsed product by product across the batch
      // loop (resizes and folds in between).
      const analysis::InboxLease<clique::Network> in(net, i, w);
      if (in.span().empty()) continue;
      std::size_t at = 0;
      for (std::size_t b = 0; b < batch; ++b) {
        if (sts[b].trivial) continue;
        const auto& cl = sts[b].contrib[static_cast<std::size_t>(w)];
        const auto it = std::lower_bound(
            cl.begin(), cl.end(), i,
            [](const std::pair<int, int>& p, int x) { return p.first < x; });
        if (it == cl.end() || it->first != i) continue;
        const auto cnt = static_cast<std::size_t>(in.span()[at]);
        CCA_ASSERT(cnt == static_cast<std::size_t>(it->second));
        CCA_ASSERT(at + contrib_align(1 + frame_words(cnt)) <=
                   in.span().size());
        jbuf.resize(cnt);
        vbuf.assign(cnt, sr.zero());
        scodec.decode_into(in.span().data() + at + 1, cnt, jbuf.data(),
                           vbuf.data());
        auto* orow = out[b].row(i);
        for (std::size_t x = 0; x < cnt; ++x)
          orow[jbuf[x]] = sr.add(orow[jbuf[x]], vbuf[x]);
        at += contrib_align(1 + frame_words(cnt));
      }
      CCA_ASSERT(at == in.span().size());
    }
  });
  clock.lap("contribute fold");
  return out;
}

/// Batch-of-one wrapper: the historical single-product staged phases.
/// Charges exactly
///   (trivial ? 0 : 1 + sched(gather) + sched(distribute) + sched(contribute))
/// rounds — the same value the planner computes from the structure.
template <Semiring S, typename Codec>
[[nodiscard]] Matrix<typename S::Value> mm_semiring_sparse_staged(
    clique::Network& net, const S& sr, const Codec& codec,
    const Matrix<typename S::Value>& s, const Matrix<typename S::Value>& t,
    const SparseMmStructure& st, MmStepProfile* profile = nullptr) {
  using V = typename S::Value;
  auto res = mm_semiring_sparse_staged_batch(
      net, sr, codec, std::span<const Matrix<V>>(&s, 1),
      std::span<const Matrix<V>>(&t, 1),
      std::span<const SparseMmStructure>(&st, 1), profile);
  return std::move(res.front());
}

/// Pack the two per-row nnz counts into the announcement word.
[[nodiscard]] inline clique::Word pack_nnz_pair(std::size_t a,
                                                std::size_t b) noexcept {
  return (static_cast<clique::Word>(a) << 32) | static_cast<clique::Word>(b);
}

/// Under sharding: rebuild the non-owned rows of every (S, T) pattern pair
/// from the announced per-row counts via the uncharged common-knowledge
/// side channel (allgather_node_blocks), so every rank leaves holding the
/// identical GLOBAL patterns — the plan, the hysteresis verdicts, and the
/// gather conditions all derive from announced data, never from a value
/// scan of rows this rank does not hold. `counts[b][v]` is product b's
/// packed (nnzS, nnzT) announcement word for node v. No-op under full
/// ownership (every rank already holds every row).
inline void allgather_sparse_patterns(
    clique::Network& net, std::span<SparsePattern> s_rows,
    std::span<SparsePattern> t_rows,
    std::span<const std::vector<clique::Word>> counts) {
  if (net.owns_all()) return;
  const int n = net.n();
  const clique::NodeSpan own = net.owned();
  const std::size_t batch = s_rows.size();
  CCA_EXPECTS(t_rows.size() == batch && counts.size() == batch);
  std::vector<std::size_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (int v = 0; v < n; ++v) {
    const auto vs = static_cast<std::size_t>(v);
    std::size_t sz = 0;
    for (std::size_t b = 0; b < batch; ++b) {
      const auto w = counts[b][vs];
      sz += static_cast<std::size_t>(w >> 32) +
            static_cast<std::size_t>(w & 0xffffffffULL);
    }
    offsets[vs + 1] = offsets[vs] + sz;
  }
  std::vector<clique::Word> data(offsets[static_cast<std::size_t>(n)], 0);
  for (int v = own.begin; v < own.end; ++v) {
    auto at = offsets[static_cast<std::size_t>(v)];
    for (std::size_t b = 0; b < batch; ++b) {
      for (const int j : s_rows[b][static_cast<std::size_t>(v)])
        data[at++] = static_cast<clique::Word>(j);
      for (const int j : t_rows[b][static_cast<std::size_t>(v)])
        data[at++] = static_cast<clique::Word>(j);
    }
    CCA_ASSERT(at == offsets[static_cast<std::size_t>(v) + 1]);
  }
  net.allgather_node_blocks(data, offsets);
  for (int v = 0; v < n; ++v) {
    if (own.contains(v)) continue;
    const auto vs = static_cast<std::size_t>(v);
    auto at = offsets[vs];
    for (std::size_t b = 0; b < batch; ++b) {
      const auto w = counts[b][vs];
      auto& srow = s_rows[b][vs];
      auto& trow = t_rows[b][vs];
      srow.clear();
      trow.clear();
      for (std::size_t x = 0; x < static_cast<std::size_t>(w >> 32); ++x)
        srow.push_back(static_cast<int>(data[at++]));
      for (std::size_t x = 0;
           x < static_cast<std::size_t>(w & 0xffffffffULL); ++x)
        trow.push_back(static_cast<int>(data[at++]));
    }
  }
}

/// The 1-round per-row nnz announcement shared by mm_semiring_sparse and
/// the Auto dispatcher: node v broadcasts (nnzS(row v), nnzT(row v)).
/// Under sharding each rank announces its OWNED rows' counts and then
/// repairs the patterns' non-owned rows from the census
/// (allgather_sparse_patterns), so the call returns with bit-identical
/// global patterns on every rank. P=1 stages and charges byte-identical
/// traffic to the historical full-ownership path.
inline void sparse_nnz_announce(clique::Network& net, SparsePattern& s_rows,
                                SparsePattern& t_rows) {
  const int n = net.n();
  const clique::NodeSpan own = net.owned();
  std::vector<clique::Word> packed(static_cast<std::size_t>(n), 0);
  for (int v = own.begin; v < own.end; ++v)
    packed[static_cast<std::size_t>(v)] =
        pack_nnz_pair(s_rows[static_cast<std::size_t>(v)].size(),
                      t_rows[static_cast<std::size_t>(v)].size());
  const auto counts = clique::broadcast_all(net, std::move(packed));
  allgather_sparse_patterns(net, std::span<SparsePattern>(&s_rows, 1),
                            std::span<SparsePattern>(&t_rows, 1),
                            std::span<const std::vector<clique::Word>>(
                                &counts, 1));
}

}  // namespace detail

/// Sparsity-sensitive semiring multiplication (see the section comment
/// above). Requires net.n() == dimensions of s, t; ANY n >= 1 is
/// admissible. Result-identical to mm_semiring_3d under the Semiring zero
/// contract; rounds scale with the nonzero volume.
template <Semiring S, typename Codec>
[[nodiscard]] Matrix<typename S::Value> mm_semiring_sparse(
    clique::Network& net, const S& sr, const Codec& codec,
    const Matrix<typename S::Value>& s, const Matrix<typename S::Value>& t,
    MmStepProfile* profile = nullptr) {
  using V = typename S::Value;
  const int n = net.n();
  CCA_EXPECTS(s.rows() == n && s.cols() == n);
  CCA_EXPECTS(t.rows() == n && t.cols() == n);
  if (n == 1) {
    Matrix<V> o(1, 1, sr.zero());
    o(0, 0) = sr.mul(s(0, 0), t(0, 0));
    return o;
  }
  auto s_rows = sparse_pattern(sr, s);
  auto t_rows = sparse_pattern(sr, t);
  detail::sparse_nnz_announce(net, s_rows, t_rows);
  const auto st = build_sparse_mm_structure(
      n, s_rows, t_rows,
      [&](std::size_t c) { return codec.words_for(c); });
  return detail::mm_semiring_sparse_staged(net, sr, codec, s, t, st, profile);
}

/// Sparsity-sensitive BATCHED multiplication: B products through SHARED
/// sparse supersteps (gather / distribute / contribute each pay one routing
/// schedule for the whole batch, per-pair blocks concatenated in product
/// order). The row-nnz announcements ride one superstep — B packed words
/// per link, i.e. broadcast_all's 1-round accounting once per product — so
/// the B = 1 instance charges and stages byte-identical traffic to
/// mm_semiring_sparse (pinned in test_sparse.cpp); B > 1 runs in strictly
/// fewer rounds than B sequential calls whenever the single-product
/// supersteps leave links idle.
template <Semiring S, typename Codec>
[[nodiscard]] std::vector<Matrix<typename S::Value>> mm_semiring_sparse_batch(
    clique::Network& net, const S& sr, const Codec& codec,
    std::span<const Matrix<typename S::Value>> as,
    std::span<const Matrix<typename S::Value>> bs,
    MmStepProfile* profile = nullptr) {
  using V = typename S::Value;
  const int n = net.n();
  const std::size_t batch = as.size();
  CCA_EXPECTS(batch >= 1 && bs.size() == batch);
  for (std::size_t b = 0; b < batch; ++b) {
    CCA_EXPECTS(as[b].rows() == n && as[b].cols() == n);
    CCA_EXPECTS(bs[b].rows() == n && bs[b].cols() == n);
  }
  if (n == 1) {
    std::vector<Matrix<V>> out;
    out.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      Matrix<V> o(1, 1, sr.zero());
      o(0, 0) = sr.mul(as[b](0, 0), bs[b](0, 0));
      out.push_back(std::move(o));
    }
    return out;
  }
  std::vector<SparseMmStructure> sts(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const auto s_rows = sparse_pattern(sr, as[b]);
    const auto t_rows = sparse_pattern(sr, bs[b]);
    sts[b] = build_sparse_mm_structure(
        n, s_rows, t_rows,
        [&](std::size_t c) { return codec.words_for(c); });
  }
  net.charge_rounds(static_cast<std::int64_t>(batch));  // B-word announcement
  return detail::mm_semiring_sparse_staged_batch(
      net, sr, codec, as, bs, std::span<const SparseMmStructure>(sts),
      profile);
}

/// Which engine mm_semiring_auto / IntMmEngine's Auto mode selected.
enum class AutoEngineChoice { Sparse, Semiring3D, Fast, Naive };

/// Persistent dispatch state for ITERATED multiplications on one network
/// (APSP squarings, Seidel levels, girth's Boolean doubling, bounded /
/// approximate distance iterations): carries the densification hysteresis
/// and a per-call engine trace across calls to mm_semiring_auto /
/// mm_semiring_auto_batch (and the IntMmEngine wrappers that forward it).
///
/// Hysteresis: these workloads square an iterate whose nonzero pattern only
/// ever GROWS (min-plus squaring and Boolean doubling are monotone in the
/// pattern; the approximate products' admission windows widen level over
/// level), so once a dense engine plans fewer rounds than the sparse plan
/// it keeps winning. Every node derives that verdict from the same
/// announcements, so from the next call on the planner stops re-announcing
/// and replays the locked dense choice directly — locked iterations charge
/// exactly the dense engine's rounds, with NO announcement round. `trace`
/// records every call's choice in order; the densification flip is the
/// first Sparse -> dense transition (bench_apsp --sparse prints it, and
/// test_sparse.cpp pins the flip index on a power-law input).
struct MmDispatchContext {
  bool dense_locked = false;  ///< a dense engine has won once — stay dense
  AutoEngineChoice locked_choice = AutoEngineChoice::Semiring3D;
  std::vector<AutoEngineChoice> trace;  ///< per-call engine choices
};

namespace detail {
/// Per-engine EWMA of the HOST wall time mm_semiring_auto spent costing
/// that candidate (indexed by preference rank: Sparse, Semiring3D, Fast,
/// Naive). 0 means "no history yet". Only maintained while the wall
/// tiebreak is enabled; purely a host-side heuristic signal, never part of
/// the round accounting.
struct AutoWallEwma {
  std::atomic<std::int64_t> ns[4];
};
inline AutoWallEwma& auto_wall_ewma() {
  static AutoWallEwma e;
  return e;
}
inline std::atomic<bool>& auto_wall_tiebreak_flag() {
  static std::atomic<bool> on{false};
  return on;
}
}  // namespace detail

/// Opt-in (default OFF) wall-aware tiebreak for tiny-n ONE-SHOT multiplies
/// (no MmDispatchContext). The round model cannot separate engines whose
/// plans land within one round of each other at small n, but their host
/// planning cost can differ by orders of magnitude (the Euler split on an
/// n^2 demand list vs. a sparse merge). When enabled, mm_semiring_auto
/// times each candidate it actually costs, keeps a per-engine EWMA, and —
/// among candidates whose PLANNED rounds land within 1 of the winner —
/// prefers the engine with the lower measured planning wall.
///
/// Strictly wall-only and rounds-gated: the tiebreak never overrides a
/// strict rounds winner (a candidate more than one round worse is never
/// picked), never runs under an MmDispatchContext (iterated workloads keep
/// the deterministic hysteresis trace), and never runs on a sharded
/// network (wall times are rank-local; ranks must reach identical picks).
/// With the toggle off — the default — dispatch is byte-identical to the
/// historical rounds-then-preference policy.
inline void set_auto_wall_tiebreak(bool on) {
  detail::auto_wall_tiebreak_flag().store(on, std::memory_order_relaxed);
}
[[nodiscard]] inline bool auto_wall_tiebreak() {
  return detail::auto_wall_tiebreak_flag().load(std::memory_order_relaxed);
}

/// nnz-adaptive dispatch: one real announcement round, then the engine with
/// the fewest PLANNED rounds runs (plans are exact — they schedule the very
/// demand lists the engines stage, through the net's schedule cache, so a
/// plan is never wrong and never wasted). The sparse plan reuses the
/// announcement as its own step 0, so Auto-chosen-sparse charges exactly
/// mm_semiring_sparse's rounds; a dense choice pays its engine plus the one
/// announcement round. Planning itself is free local computation, in the
/// same sense the routing layer's schedule construction is; the sparse plan
/// is only attempted while the triple volume T stays under ~4 n^{7/3}
/// (beyond it the contribute phase alone dwarfs the dense engines, and the
/// O(T) symbolic merge would be wasted work).
///
/// `fast_alg` optionally adds the Section 2.2 engine as a candidate (rings
/// only; it must be admissible for n). The Semiring3D candidate requires n
/// to be a perfect cube; Sparse and Naive are always available, so any
/// n >= 1 works. Assumes the net's default router is KoenigRelay (the
/// planner schedules with it). `ctx` (optional) makes the dispatch
/// PER-ITERATION: the context's hysteresis skips announcement and planning
/// once a dense engine has won (see MmDispatchContext), and its trace
/// records this call's choice.
template <Semiring S, typename Codec>
[[nodiscard]] Matrix<typename S::Value> mm_semiring_auto(
    clique::Network& net, const S& sr, const Codec& codec,
    const Matrix<typename S::Value>& s, const Matrix<typename S::Value>& t,
    const BilinearAlgorithm* fast_alg = nullptr,
    AutoEngineChoice* chosen = nullptr, MmStepProfile* profile = nullptr,
    MmDispatchContext* ctx = nullptr) {
  using V = typename S::Value;
  constexpr auto kMax = std::numeric_limits<std::int64_t>::max();
  const int n = net.n();
  CCA_EXPECTS(s.rows() == n && s.cols() == n);
  CCA_EXPECTS(t.rows() == n && t.cols() == n);
  if (n == 1) {
    if (chosen != nullptr) *chosen = AutoEngineChoice::Sparse;
    if (ctx != nullptr) ctx->trace.push_back(AutoEngineChoice::Sparse);
    Matrix<V> o(1, 1, sr.zero());
    o(0, 0) = sr.mul(s(0, 0), t(0, 0));
    return o;
  }
  // Single mapping from a dense pick to its engine, shared by the
  // hysteresis replay and the fresh dispatch below so the two cannot
  // drift apart.
  auto run_dense = [&](AutoEngineChoice pick) -> Matrix<V> {
    if (pick == AutoEngineChoice::Naive)
      return mm_naive_broadcast(net, sr,
                                static_cast<int>(codec.words_for(1)), s, t);
    if constexpr (Ring<S>) {
      if (pick == AutoEngineChoice::Fast) {
        CCA_EXPECTS(fast_alg != nullptr);
        return mm_fast_bilinear(net, sr, codec, *fast_alg, s, t, profile);
      }
    }
    CCA_EXPECTS(pick == AutoEngineChoice::Semiring3D);
    return mm_semiring_3d(net, sr, codec, s, t, profile);
  };
  if (ctx != nullptr && ctx->dense_locked) {
    // Densification hysteresis: the locked dense engine replays directly,
    // with no announcement round and no pattern scan (see
    // MmDispatchContext — every node reached the same lock from the same
    // announcements, so nobody needs to announce again).
    const auto pick = ctx->locked_choice;
    ctx->trace.push_back(pick);
    if (chosen != nullptr) *chosen = pick;
    return run_dense(pick);
  }
  auto s_rows = sparse_pattern(sr, s);
  auto t_rows = sparse_pattern(sr, t);
  detail::sparse_nnz_announce(net, s_rows, t_rows);

  // Candidate costs AFTER the shared announcement. Planning is free in the
  // clique model but NOT on the host: the Euler split is the simulator's
  // wall-clock hot spot, and even BUILDING the O(T) sparse structure is
  // real work on densified iterates. So under the exact policy every
  // candidate first gets a cheap lower bound — the sparse one build-free
  // (sparse_round_lower_bound) — and candidates are then costed for real
  // in ascending-bound order, skipping any whose bound cannot beat (or,
  // on a tie, out-prefer) the best actual so far, with the sparse plan's
  // remaining phases aborted as soon as its partial sum loses. The skips
  // are sound (actual rounds never undercut the bound) and preference-
  // preserving, so the pick is provably the one the unabridged comparison
  // makes; when a scheduled candidate IS chosen, the planning was free
  // anyway — the real run replays the cached schedules. Under the Greedy
  // policy scheduling is O(words), gating would save nothing, and the
  // looser greedy rounds ARE the run's real cost — so every candidate is
  // costed for real and Auto's model weighs the greedy scheduler's output
  // directly.
  const bool gate =
      net.schedule_policy() == clique::SchedulePolicy::ExactKoenig;
  const auto vw = [&](std::size_t c) { return codec.words_for(c); };
  const std::int64_t wpe = static_cast<std::int64_t>(codec.words_for(1));
  const std::int64_t naive_cost = 2 * static_cast<std::int64_t>(n) * wpe;

  SparseMmStructure st;
  const bool sparse_adm =
      sparse_triple_count(n, s_rows, t_rows) <= sparse_plan_cap(n);
  const std::int64_t sparse_lb =
      sparse_adm ? (gate ? sparse_round_lower_bound(n, s_rows, t_rows, vw)
                         : 0)
                 : kMax;
  std::pair<std::vector<clique::Demand>, std::vector<clique::Demand>>
      steps3d;
  std::int64_t semi3d_lb = kMax;
  if (is_perfect_cube(n)) {
    const auto c2 = static_cast<std::size_t>(icbrt(n) * icbrt(n));
    steps3d = semiring3d_superstep_demands(n, codec.words_for(c2));
    semi3d_lb = gate ? relay_round_lower_bound(n, steps3d.first) +
                           relay_round_lower_bound(n, steps3d.second)
                     : 0;
  }
  std::vector<std::vector<clique::Demand>> stepsf;
  std::int64_t fast_lb = kMax;
  if constexpr (Ring<S>) {
    if (fast_alg != nullptr) {
      stepsf = fast_bilinear_superstep_demands(
          n, *fast_alg, codec.words_for(static_cast<std::size_t>(isqrt(n))),
          codec.words_for(static_cast<std::size_t>(
              (isqrt(n) / fast_alg->d) * (isqrt(n) / fast_alg->d))));
      fast_lb = 0;
      if (gate)
        for (const auto& step : stepsf)
          fast_lb += relay_round_lower_bound(n, step);
    }
  }

  // Candidates are costed in ascending (bound, preference) order — the
  // branch-and-bound heuristic: the lowest bound is the likeliest winner,
  // and once a winner's ACTUAL cost is known every remaining candidate
  // whose bound cannot beat it is skipped without scheduling a single
  // demand list. Evaluation order never affects the pick (every candidate
  // is either costed exactly, aborted at a value provably above the final
  // best, or skipped because its bound cannot win) — but it decides how
  // much losing plans cost on the host. A one-shot sparse-winning multiply
  // at n = 343 is the extreme case: sparse's actual (~18 rounds) is below
  // the dense bounds, so the dense engines' n^2-demand Euler splits
  // (hundreds of host ms, useless to the sparse run) are never computed.
  // Costing a candidate that the ITERATED workloads later run is free
  // either way: its schedules land in the ScheduleCache and the real run
  // replays them. Ties keep the preference order Sparse > Semiring3D >
  // Fast > Naive, matching the historical dispatch.
  std::int64_t best = kMax;
  AutoEngineChoice pick = AutoEngineChoice::Naive;
  int best_pref = 4;
  struct Cand {
    AutoEngineChoice choice;
    int pref;
    std::int64_t lb;
  };
  Cand cands[4] = {{AutoEngineChoice::Sparse, 0, sparse_lb},
                   {AutoEngineChoice::Semiring3D, 1, semi3d_lb},
                   {AutoEngineChoice::Fast, 2, fast_lb},
                   {AutoEngineChoice::Naive, 3, naive_cost}};
  std::sort(std::begin(cands), std::end(cands),
            [](const Cand& a, const Cand& b) {
              return a.lb != b.lb ? a.lb < b.lb : a.pref < b.pref;
            });
  // Wall tiebreak bookkeeping (see set_auto_wall_tiebreak): only armed for
  // one-shot full-ownership dispatch with the toggle on, so the default
  // path pays no clock reads and stays byte-identical.
  const bool wall_tb = auto_wall_tiebreak() && ctx == nullptr &&
                       net.owns_all();
  std::int64_t actual_of[4] = {kMax, kMax, kMax, kMax};
  for (const auto& cand : cands) {
    if (cand.lb == kMax) continue;  // inadmissible
    if (cand.lb > best || (cand.lb == best && cand.pref > best_pref))
      continue;  // cannot win: actual >= bound, and ties keep preference
    std::int64_t actual = kMax;
    const auto cost_t0 = wall_tb ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
    switch (cand.choice) {
      case AutoEngineChoice::Sparse:
        st = build_sparse_mm_structure(n, s_rows, t_rows, vw);
        actual = sparse_planned_rounds(net, st, gate ? best : kMax);
        break;
      case AutoEngineChoice::Semiring3D:
        actual = net.prepare_schedule(steps3d.first);
        if (!gate || actual <= best)
          actual += net.prepare_schedule(steps3d.second);
        else
          actual = kMax;
        break;
      case AutoEngineChoice::Fast:
        actual = 0;
        for (const auto& step : stepsf) {
          actual += net.prepare_schedule(step);
          if (gate && actual > best) {
            actual = kMax;
            break;
          }
        }
        break;
      case AutoEngineChoice::Naive:
        actual = naive_cost;
        break;
    }
    if (wall_tb) {
      actual_of[cand.pref] = actual;
      const auto sample = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - cost_t0)
                              .count();
      auto& slot = detail::auto_wall_ewma().ns[cand.pref];
      const auto old = slot.load(std::memory_order_relaxed);
      slot.store(old <= 0 ? sample : (3 * old + sample) / 4,
                 std::memory_order_relaxed);
    }
    if (actual < best || (actual == best && cand.pref < best_pref)) {
      best = actual;
      pick = cand.choice;
      best_pref = cand.pref;
    }
  }
  if (wall_tb && best != kMax) {
    // Among actually-costed candidates whose planned rounds land within 1
    // of the winner, defer to the engine with the lower planning-wall
    // history. Candidates with no history (EWMA 0) never displace the
    // rounds winner, so the first few calls behave exactly as before.
    static constexpr AutoEngineChoice kByPref[4] = {
        AutoEngineChoice::Sparse, AutoEngineChoice::Semiring3D,
        AutoEngineChoice::Fast, AutoEngineChoice::Naive};
    std::int64_t best_wall = kMax;
    int wall_pref = -1;
    for (int p = 0; p < 4; ++p) {
      if (actual_of[p] == kMax || actual_of[p] > best + 1) continue;
      const auto w =
          detail::auto_wall_ewma().ns[p].load(std::memory_order_relaxed);
      if (w > 0 && w < best_wall) {
        best_wall = w;
        wall_pref = p;
      }
    }
    if (wall_pref >= 0 && wall_pref != best_pref &&
        detail::auto_wall_ewma().ns[best_pref].load(
            std::memory_order_relaxed) > best_wall) {
      best = actual_of[wall_pref];
      best_pref = wall_pref;
      pick = kByPref[wall_pref];
    }
  }
  if (chosen != nullptr) *chosen = pick;
  if (ctx != nullptr) {
    ctx->trace.push_back(pick);
    if (pick != AutoEngineChoice::Sparse) {
      // The iterate densifies monotonically, so a dense winner stays the
      // winner: lock it and stop re-announcing.
      ctx->dense_locked = true;
      ctx->locked_choice = pick;
    }
  }
  if (pick == AutoEngineChoice::Sparse)
    return detail::mm_semiring_sparse_staged(net, sr, codec, s, t, st,
                                             profile);
  return run_dense(pick);
}

/// Batched nnz-adaptive dispatch — the batch counterpart of
/// mm_semiring_auto, and the engine under IntMmEngine::multiply_batch's
/// Auto mode and the multi-graph APSP path. One shared announcement
/// superstep (B packed per-row-nnz words per link, direct schedule — B
/// rounds, actually staged), then whichever of the BATCHED sparse engine
/// (all B products through shared sparse supersteps, costed on the merged
/// demand lists) and the batched 3D engine plans fewer rounds runs. Ties
/// prefer the sparse path, matching mm_semiring_auto (and the skip gate's
/// soundness argument, which assumes exactly that). `ctx` carries the same
/// densification hysteresis: once a dense choice wins, later calls skip
/// the announcement and replay the batched 3D engine directly. `fast_alg`
/// only participates in the batch-of-one delegation (the batched dense
/// candidate is the 3D engine — the bilinear path has no batched sparse
/// rival worth planning against here).
template <Semiring S, typename Codec>
[[nodiscard]] std::vector<Matrix<typename S::Value>> mm_semiring_auto_batch(
    clique::Network& net, const S& sr, const Codec& codec,
    std::span<const Matrix<typename S::Value>> as,
    std::span<const Matrix<typename S::Value>> bs,
    MmDispatchContext* ctx = nullptr,
    const BilinearAlgorithm* fast_alg = nullptr) {
  using V = typename S::Value;
  constexpr auto kMax = std::numeric_limits<std::int64_t>::max();
  const int n = net.n();
  const std::size_t batch = as.size();
  CCA_EXPECTS(batch >= 1 && bs.size() == batch);
  for (std::size_t b = 0; b < batch; ++b) {
    CCA_EXPECTS(as[b].rows() == n && as[b].cols() == n);
    CCA_EXPECTS(bs[b].rows() == n && bs[b].cols() == n);
  }
  if (batch == 1 || n == 1) {
    std::vector<Matrix<V>> out;
    out.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b)
      out.push_back(mm_semiring_auto(net, sr, codec, as[b], bs[b], fast_alg,
                                     nullptr, nullptr, ctx));
    return out;
  }
  if (ctx != nullptr && ctx->dense_locked) {
    // Hysteresis replay with no announcement. The batch dispatcher's only
    // dense candidate is the batched 3D engine, so a Fast/Naive lock from
    // an earlier single-product call also lands here (3D is the
    // batch-shaped dense engine). On a non-cube clique the batched 3D
    // engine is inadmissible: replay through the single-product locked
    // path instead (still announcement-free — one trace entry per
    // product), so a locked context NEVER re-announces or re-plans.
    if (is_perfect_cube(n)) {
      ctx->trace.push_back(AutoEngineChoice::Semiring3D);
      return mm_semiring_3d_batch(net, sr, codec, as, bs);
    }
    // One trace entry per batched call (matching the cube branch), so
    // trace length == iteration count regardless of clique shape; the
    // scratch context reproduces the lock without double-recording.
    MmDispatchContext replay;
    replay.dense_locked = true;
    replay.locked_choice = ctx->locked_choice;
    ctx->trace.push_back(ctx->locked_choice);
    std::vector<Matrix<V>> out;
    out.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b)
      out.push_back(mm_semiring_auto(net, sr, codec, as[b], bs[b], fast_alg,
                                     nullptr, nullptr, &replay));
    return out;
  }

  // Shared announcement superstep: every node ships the B packed per-row
  // nnz pairs over every link (direct schedule, B rounds) so the whole
  // batch dispatches at once. Each rank stages only its owned sources'
  // words; the delivery reconstructs the identical global demand list on
  // every rank, so the B-round charge matches the single-process path.
  std::vector<SparsePattern> s_rows, t_rows;
  s_rows.reserve(batch);
  t_rows.reserve(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    s_rows.push_back(sparse_pattern(sr, as[b]));
    t_rows.push_back(sparse_pattern(sr, bs[b]));
  }
  const clique::NodeSpan own = net.owned();
  parallel_for(own.begin, own.end, [&](int v) {
    const auto vs = static_cast<std::size_t>(v);
    for (int u = 0; u < n; ++u) {
      if (u == v) continue;
      const auto msg = net.stage(v, u, batch);
      for (std::size_t b = 0; b < batch; ++b)
        msg[b] = detail::pack_nnz_pair(s_rows[b][vs].size(),
                                       t_rows[b][vs].size());
    }
  });
  net.deliver(clique::Router::Direct);
  if (!net.owns_all()) {
    // Census decode: owned rows' counts come from the local patterns
    // (authoritative by the SPMD contract); every other node's packed
    // words are read from one owned destination's inboxes — every
    // destination received every announcement, so own.begin serves. The
    // patterns' non-owned rows (scanned from rows this rank does not
    // hold) are then rebuilt from the census, after which every rank
    // holds bit-identical global patterns and the dispatch below is
    // rank-deterministic.
    std::vector<std::vector<clique::Word>> counts(
        batch, std::vector<clique::Word>(static_cast<std::size_t>(n), 0));
    for (int v = own.begin; v < own.end; ++v)
      for (std::size_t b = 0; b < batch; ++b)
        counts[b][static_cast<std::size_t>(v)] = detail::pack_nnz_pair(
            s_rows[b][static_cast<std::size_t>(v)].size(),
            t_rows[b][static_cast<std::size_t>(v)].size());
    const int d = own.begin;
    for (int v = 0; v < n; ++v) {
      if (own.contains(v)) continue;
      const auto in = net.inbox(d, v);
      CCA_ASSERT(in.size() == batch);
      for (std::size_t b = 0; b < batch; ++b)
        counts[b][static_cast<std::size_t>(v)] = in[b];
    }
    detail::allgather_sparse_patterns(
        net, std::span<SparsePattern>(s_rows),
        std::span<SparsePattern>(t_rows),
        std::span<const std::vector<clique::Word>>(counts));
  }

  // Candidate costs, gated exactly as in mm_semiring_auto: build-free
  // lower bounds first, then the actual plans in ascending-bound order
  // with early abort, so under the exact policy the loser's Euler splits
  // (and, when sparse loses on the bound alone, even its O(T) structure
  // builds) are skipped. Under the Greedy policy both candidates are
  // costed for real (bounds forced to 0, aborts off) — greedy scheduling
  // is cheap and its looser rounds ARE the run's cost.
  const bool gate =
      net.schedule_policy() == clique::SchedulePolicy::ExactKoenig;
  const auto vw = [&](std::size_t c) { return codec.words_for(c); };
  std::vector<SparseMmStructure> sts(batch);
  bool sparse_built = false;
  bool sparse_ok = true;
  for (std::size_t b = 0; b < batch; ++b)
    if (sparse_triple_count(n, s_rows[b], t_rows[b]) > sparse_plan_cap(n)) {
      sparse_ok = false;
      break;
    }
  // Batch sparse bound: the merged phase demands move the per-pair SUM of
  // the per-product volumes, so the volume bound on the accumulated
  // SparsePhaseVolumes lower-bounds the merged schedules; each live
  // (non-trivial) product additionally plans its one handshake round.
  std::int64_t sparse_lb = kMax;
  if (sparse_ok) {
    sparse_lb = 0;
    if (gate) {
      SparsePhaseVolumes vols(n);
      std::int64_t live = 0;
      for (std::size_t b = 0; b < batch; ++b) {
        std::int64_t rho_s = 0, rho_t = 0;
        for (const auto& row : s_rows[b])
          rho_s += static_cast<std::int64_t>(row.size());
        for (const auto& row : t_rows[b])
          rho_t += static_cast<std::int64_t>(row.size());
        if (rho_s == 0 || rho_t == 0) continue;  // trivial: plans 0 rounds
        ++live;
        add_sparse_volume_lower_bound(n, s_rows[b], t_rows[b], vw, vols);
      }
      if (live > 0)
        sparse_lb =
            live +
            relay_volume_lower_bound(n, vols.gather_out, vols.gather_in) +
            relay_volume_lower_bound(n, vols.distribute_out,
                                     vols.distribute_in) +
            relay_volume_lower_bound(n, vols.contribute_out,
                                     vols.contribute_in);
    }
  }
  std::pair<std::vector<clique::Demand>, std::vector<clique::Demand>>
      steps3d;
  std::int64_t batch3d_lb = kMax;
  if (is_perfect_cube(n)) {
    const int c = static_cast<int>(icbrt(n));
    steps3d = semiring3d_superstep_demands(
        n, codec.words_for(static_cast<std::size_t>(c) * c), batch);
    batch3d_lb = gate ? relay_round_lower_bound(n, steps3d.first) +
                            relay_round_lower_bound(n, steps3d.second)
                      : 0;
  }
  auto build_all = [&] {
    for (std::size_t b = 0; b < batch; ++b)
      sts[b] = build_sparse_mm_structure(n, s_rows[b], t_rows[b], vw);
    sparse_built = true;
  };
  // No dense candidate at all (non-cube clique) and a hopeless triple
  // volume: correctness wins — build the sparse plan anyway.
  if (!sparse_ok && batch3d_lb == kMax) {
    build_all();
    sparse_lb = 0;  // sole candidate: admissible after all
  }

  // Lower bound ascending, ties prefer sparse — same branch-and-bound
  // heuristic as mm_semiring_auto: cost the likeliest winner first, then
  // the other candidate either aborts against that concrete actual or (on
  // the dense side) is skipped outright when its bound cannot win. A
  // sparse-winning batch never pays the 3D n^2-demand Euler split on the
  // host; a dense-winning batch never completes the sparse merge's
  // scheduling. The pick is order-independent: a skipped candidate's
  // actual >= its bound > best, and tied bounds still evaluate sparse (the
  // <= gates), so tie-prefers-sparse is preserved.
  std::int64_t sparse_total = kMax;
  std::int64_t batch3d = kMax;
  auto eval_sparse = [&](std::int64_t abort_above) {
    if (!sparse_built) build_all();
    sparse_total = sparse_planned_rounds_batch(
        net, std::span<const SparseMmStructure>(sts), abort_above);
  };
  auto eval_3d = [&](std::int64_t best_so_far) {
    batch3d = net.prepare_schedule(steps3d.first);
    if (!gate || batch3d <= best_so_far)
      batch3d += net.prepare_schedule(steps3d.second);
    else
      batch3d = kMax;
  };
  if (sparse_lb != kMax && sparse_lb <= batch3d_lb) {
    eval_sparse(kMax);
    if (batch3d_lb <= sparse_total) eval_3d(gate ? sparse_total : kMax);
  } else if (batch3d_lb != kMax) {
    eval_3d(kMax);
    if (sparse_lb != kMax && sparse_lb <= batch3d)
      eval_sparse(gate ? batch3d : kMax);
  }

  if (sparse_total <= batch3d) {
    if (ctx != nullptr) ctx->trace.push_back(AutoEngineChoice::Sparse);
    return detail::mm_semiring_sparse_staged_batch(
        net, sr, codec, as, bs, std::span<const SparseMmStructure>(sts));
  }
  if (ctx != nullptr) {
    ctx->trace.push_back(AutoEngineChoice::Semiring3D);
    ctx->dense_locked = true;
    ctx->locked_choice = AutoEngineChoice::Semiring3D;
  }
  return mm_semiring_3d_batch(net, sr, codec, as, bs);
}

/// Pad a square matrix to dimension `to`, filling new cells with `fill`
/// (use the semiring zero so padded rows/columns stay inert).
template <typename V>
[[nodiscard]] Matrix<V> pad_matrix(const Matrix<V>& m, int to, V fill) {
  CCA_EXPECTS(to >= m.rows() && m.rows() == m.cols());
  return m.resized(to, to, std::move(fill));
}

/// Admissible clique size for the 3D algorithm: the next perfect cube.
[[nodiscard]] int semiring_clique_size(int n);

}  // namespace cca::core
