// Distributed matrix multiplication on the congested clique — the paper's
// core contribution (Section 2, Theorem 1).
//
//  * mm_semiring_3d   — Section 2.1: the "3D" algorithm; O(n^{1/3}) rounds
//                       over any semiring.
//  * mm_fast_bilinear — Section 2.2 / Lemma 10: turns ANY bilinear algorithm
//                       with m(d) = O(d^sigma) multiplications into an
//                       O(n^{1-2/sigma}) round clique algorithm over a ring.
//  * mm_naive_broadcast — the trivial O(n)-round baseline (everyone learns
//                       both matrices).
//
// Input/output distribution follows the paper: node v holds row v of both
// inputs and ends with row v of the product. The orchestrated simulation
// stages node v's messages exclusively from data node v legitimately holds
// at that point of the algorithm (its input rows, then whatever it received
// in earlier supersteps).
//
// All functions require net.n() == matrix dimension and an "admissible" n
// (perfect cube for the 3D algorithm; square with d | sqrt(n) and m <= n for
// the bilinear scheme). pad_matrix / semiring_clique_size / plan_fast_mm
// below embed an arbitrary instance into the next admissible size, which is
// how the paper's "assume n^{1/3} is an integer for convenience" is
// discharged.
#pragma once

#include <span>
#include <vector>

#include "clique/network.hpp"
#include "matrix/bilinear.hpp"
#include "matrix/kernels.hpp"
#include "matrix/matrix.hpp"
#include "matrix/ops.hpp"
#include "matrix/semiring.hpp"
#include "util/contracts.hpp"
#include "util/math.hpp"
#include "util/parallel.hpp"

namespace cca::core {

namespace detail {

/// Decode a `count`-entry block from a word vector. `prior_entries` is the
/// total entry count of the blocks encoded before it in the same message;
/// every call site sends at most two blocks per message, so
/// codec.words_for(prior_entries) is exactly the word offset.
template <typename Codec>
auto decode_entries(const Codec& codec, std::span<const clique::Word> in,
                    std::size_t prior_entries, std::size_t count) {
  const auto offset = codec.words_for(prior_entries);
  CCA_EXPECTS(offset + codec.words_for(count) <= in.size());
  return codec.decode_block(in.data() + offset, count);
}

}  // namespace detail

/// Section 2.1 — semiring matrix multiplication in O(n^{1/3}) rounds.
///
/// Requires net.n() == s.rows() == s.cols() == t.rows() == t.cols() and
/// net.n() a perfect cube. Returns the full product (row v of which is the
/// output of node v).
///
/// Note: the paper's Step 1 says node v sends T[v, w3**] to the nodes
/// w in *v2*; for the received pieces to assemble T[v2**, v3**] (rows with
/// FIRST digit v2, as Step 2 requires) the recipients must be w in *v1*.
/// We implement the *v1* version; the totals (2 n^{4/3} words per node) are
/// unchanged.
template <Semiring S, typename Codec>
[[nodiscard]] Matrix<typename S::Value> mm_semiring_3d(
    clique::Network& net, const S& sr, const Codec& codec,
    const Matrix<typename S::Value>& s, const Matrix<typename S::Value>& t) {
  using V = typename S::Value;
  const int n = net.n();
  CCA_EXPECTS(s.rows() == n && s.cols() == n);
  CCA_EXPECTS(t.rows() == n && t.cols() == n);
  CCA_EXPECTS(is_perfect_cube(n));
  if (n == 1) {
    Matrix<V> out(1, 1, sr.zero());
    out(0, 0) = sr.mul(s(0, 0), t(0, 0));
    return out;
  }
  const int c = static_cast<int>(icbrt(n));
  const int c2 = c * c;
  auto d1 = [c2](int v) { return v / c2; };
  auto d2 = [c, c2](int v) { return (v / c) % c; };
  auto d3 = [c](int v) { return v % c; };

  // Step 1: node v scatters pieces of its rows S[v,*] and T[v,*].
  {
    std::vector<clique::Word> buf;
    std::vector<V> tmp;
    for (int v = 0; v < n; ++v) {
      // S[v, u2**] to each u in v1** (same first digit as v).
      for (int tail = 0; tail < c2; ++tail) {
        const int u = d1(v) * c2 + tail;
        tmp.clear();
        for (int j = d2(u) * c2; j < (d2(u) + 1) * c2; ++j)
          tmp.push_back(s(v, j));
        buf.clear();
        codec.encode_block(tmp, buf);
        net.send_words(v, u, buf);
      }
      // T[v, w3**] to each w in *v1* (second digit equals v's first digit).
      for (int w1 = 0; w1 < c; ++w1)
        for (int w3 = 0; w3 < c; ++w3) {
          const int w = w1 * c2 + d1(v) * c + w3;
          tmp.clear();
          for (int j = d3(w) * c2; j < (d3(w) + 1) * c2; ++j)
            tmp.push_back(t(v, j));
          buf.clear();
          codec.encode_block(tmp, buf);
          net.send_words(v, w, buf);
        }
    }
  }
  net.deliver();

  // Each node v now assembles S[v1**, v2**] and T[v2**, v3**] and multiplies
  // them locally (Step 2). Per-node work is independent and reads only
  // delivered inbox views, so the nodes run on the worker group.
  std::vector<Matrix<V>> prod(static_cast<std::size_t>(n));
  parallel_for(0, n, [&](int v) {
    Matrix<V> sb(c2, c2, sr.zero());
    Matrix<V> tb(c2, c2, sr.zero());
    for (int tail = 0; tail < c2; ++tail) {
      const int u = d1(v) * c2 + tail;  // sender of S[u, v2**]
      const auto su = detail::decode_entries(
          codec, net.inbox(v, u), 0, static_cast<std::size_t>(c2));
      for (int j = 0; j < c2; ++j) sb(tail, j) = su[static_cast<std::size_t>(j)];
    }
    for (int tail = 0; tail < c2; ++tail) {
      const int w = d2(v) * c2 + tail;  // sender of T[w, v3**]
      // v received its S piece and/or T piece from w in one inbox; the S
      // piece (if any) comes first — compute its length to skip it.
      std::size_t at = 0;
      if (d1(w) == d1(v)) at = static_cast<std::size_t>(c2);  // w also sent S
      const auto tw = detail::decode_entries(codec, net.inbox(v, w), at,
                                             static_cast<std::size_t>(c2));
      for (int j = 0; j < c2; ++j) tb(tail, j) = tw[static_cast<std::size_t>(j)];
    }
    prod[static_cast<std::size_t>(v)] = local_multiply(sr, sb, tb);
  });

  // Step 3: node v sends P^(v2)[u, v3**] to each u in v1**.
  {
    std::vector<clique::Word> buf;
    std::vector<V> tmp;
    for (int v = 0; v < n; ++v) {
      const auto& pv = prod[static_cast<std::size_t>(v)];
      for (int tail = 0; tail < c2; ++tail) {
        const int u = d1(v) * c2 + tail;
        tmp.clear();
        for (int j = 0; j < c2; ++j) tmp.push_back(pv(tail, j));
        buf.clear();
        codec.encode_block(tmp, buf);
        net.send_words(v, u, buf);
      }
    }
  }
  net.deliver();

  // Step 4: node v sums the received pieces into row v of the product
  // (distinct output rows, so the nodes run concurrently).
  Matrix<V> out(n, n, sr.zero());
  parallel_for(0, n, [&](int v) {
    for (int tail = 0; tail < c2; ++tail) {
      const int u = d1(v) * c2 + tail;  // sent P^(u2)[v, u3**]
      const auto piece = detail::decode_entries(codec, net.inbox(v, u), 0,
                                                static_cast<std::size_t>(c2));
      const int col0 = d3(u) * c2;
      for (int j = 0; j < c2; ++j)
        out(v, col0 + j) =
            sr.add(out(v, col0 + j), piece[static_cast<std::size_t>(j)]);
    }
  });
  return out;
}

/// Parameters of one fast multiplication instance (Section 2.2).
struct FastPlan {
  int depth = 0;      ///< tensor-power exponent k of the base algorithm
  int d = 1;          ///< block grid dimension (base_d^k)
  int m = 1;          ///< number of block products (base_m^k)
  int clique_n = 1;   ///< admissible clique/matrix size (square, d | sqrt)
};

/// Smallest admissible instance for matrices of size n with a forced depth:
/// clique_n is a perfect square, d = base_d^depth divides sqrt(clique_n),
/// and m = base_m^depth <= clique_n.
[[nodiscard]] FastPlan plan_fast_mm(int n, int depth, int base_d = 2,
                                    int base_m = 7);

/// Auto-select the largest depth whose m fits below n (the paper's
/// "fix d so that m(d) = n"), then pad.
[[nodiscard]] FastPlan plan_fast_mm_auto(int n, int base_d = 2,
                                         int base_m = 7);

/// Section 2.2 / Lemma 10 — fast bilinear matrix multiplication.
///
/// `alg` must be a bilinear algorithm for d x d matrices with m products,
/// with d | sqrt(net.n()) and m <= net.n(); tensor_power(strassen, k)
/// satisfies this for admissible sizes from plan_fast_mm. Runs in
/// O(n^{1 - 2/sigma}) rounds where m = d^sigma.
template <Ring R, typename Codec>
[[nodiscard]] Matrix<typename R::Value> mm_fast_bilinear(
    clique::Network& net, const R& ring, const Codec& codec,
    const BilinearAlgorithm& alg, const Matrix<typename R::Value>& s,
    const Matrix<typename R::Value>& t) {
  using V = typename R::Value;
  const int n = net.n();
  CCA_EXPECTS(s.rows() == n && s.cols() == n);
  CCA_EXPECTS(t.rows() == n && t.cols() == n);
  CCA_EXPECTS(is_perfect_square(n));
  const int sq = static_cast<int>(isqrt(n));
  const int d = alg.d;
  const int m = alg.m;
  CCA_EXPECTS(d >= 1 && sq % d == 0);
  CCA_EXPECTS(m <= n);
  const int bs = sq / d;        // fine block size (n^{1/2} / d)
  const int big = n / d;        // coarse block size (rows per first digit)
  if (n == 1) {
    Matrix<V> out(1, 1, ring.zero());
    out(0, 0) = ring.mul(s(0, 0), t(0, 0));
    return out;
  }

  // Node digits (v1, v2, v3) in radices (d, sq, sq/d) and labels (x1, x2).
  auto label_of = [sq](int x1, int x2) { return x1 * sq + x2; };

  // Columns with second digit x2, in increasing order: for i in [d], the
  // range [i*big + x2*bs, i*big + (x2+1)*bs).
  auto for_each_col_x2 = [&](int x2, auto&& fn) {
    for (int i = 0; i < d; ++i)
      for (int off = 0; off < bs; ++off) fn(i * big + x2 * bs + off);
  };

  // Step 1: node v sends S[v, *x2*] and T[v, *x2*] to label (v2, x2),
  // as two blocks (S piece, then T piece).
  {
    std::vector<clique::Word> buf;
    std::vector<V> tmp;
    for (int v = 0; v < n; ++v) {
      const int v2 = (v / bs) % sq;
      for (int x2 = 0; x2 < sq; ++x2) {
        const int u = label_of(v2, x2);
        buf.clear();
        tmp.clear();
        for_each_col_x2(x2, [&](int j) { tmp.push_back(s(v, j)); });
        codec.encode_block(tmp, buf);
        tmp.clear();
        for_each_col_x2(x2, [&](int j) { tmp.push_back(t(v, j)); });
        codec.encode_block(tmp, buf);
        net.send_words(v, u, buf);
      }
    }
  }
  net.deliver();

  // Node u = (x1,x2) assembles the sq x sq local views S[*x1*, *x2*] and
  // T[*x1*, *x2*]: local row index of sender v is v1*bs + v3, local column
  // index of global column j = i*big + x2*bs + off is i*bs + off.
  std::vector<Matrix<V>> sloc(static_cast<std::size_t>(n));
  std::vector<Matrix<V>> tloc(static_cast<std::size_t>(n));
  parallel_for(0, n, [&](int u) {
    const int x1 = u / sq;
    Matrix<V> sl(sq, sq, ring.zero());
    Matrix<V> tl(sq, sq, ring.zero());
    for (int v1 = 0; v1 < d; ++v1)
      for (int v3 = 0; v3 < bs; ++v3) {
        const int v = v1 * big + x1 * bs + v3;  // sender with v2 == x1
        const int lrow = v1 * bs + v3;
        const auto s_piece = detail::decode_entries(
            codec, net.inbox(u, v), 0, static_cast<std::size_t>(sq));
        const auto t_piece = detail::decode_entries(
            codec, net.inbox(u, v), static_cast<std::size_t>(sq),
            static_cast<std::size_t>(sq));
        for (int lj = 0; lj < sq; ++lj) {
          sl(lrow, lj) = s_piece[static_cast<std::size_t>(lj)];
          tl(lrow, lj) = t_piece[static_cast<std::size_t>(lj)];
        }
      }
    sloc[static_cast<std::size_t>(u)] = std::move(sl);
    tloc[static_cast<std::size_t>(u)] = std::move(tl);
  });

  // Step 2 (local): linear combinations S^(w)[x1*, x2*], T^(w)[x1*, x2*].
  // Step 3: send both to node w, for every w in [m].
  auto axpy = [&](Matrix<V>& acc, std::int64_t coeff, const Matrix<V>& src,
                  int r0, int c0) {
    for (int i = 0; i < bs; ++i)
      for (int j = 0; j < bs; ++j) {
        if (coeff >= 0)
          for (std::int64_t rep = 0; rep < coeff; ++rep)
            acc(i, j) = ring.add(acc(i, j), src(r0 + i, c0 + j));
        else
          for (std::int64_t rep = 0; rep < -coeff; ++rep)
            acc(i, j) = ring.sub(acc(i, j), src(r0 + i, c0 + j));
      }
  };
  {
    std::vector<clique::Word> buf;
    std::vector<V> tmp;
    for (int u = 0; u < n; ++u) {
      const auto& sl = sloc[static_cast<std::size_t>(u)];
      const auto& tl = tloc[static_cast<std::size_t>(u)];
      for (int w = 0; w < m; ++w) {
        Matrix<V> shat(bs, bs, ring.zero());
        Matrix<V> that(bs, bs, ring.zero());
        for (const auto& cfc : alg.alpha[static_cast<std::size_t>(w)])
          axpy(shat, cfc.coeff, sl, (cfc.index / d) * bs,
               (cfc.index % d) * bs);
        for (const auto& cfc : alg.beta[static_cast<std::size_t>(w)])
          axpy(that, cfc.coeff, tl, (cfc.index / d) * bs,
               (cfc.index % d) * bs);
        buf.clear();
        tmp.clear();
        for (int i = 0; i < bs; ++i)
          for (int j = 0; j < bs; ++j) tmp.push_back(shat(i, j));
        codec.encode_block(tmp, buf);
        tmp.clear();
        for (int i = 0; i < bs; ++i)
          for (int j = 0; j < bs; ++j) tmp.push_back(that(i, j));
        codec.encode_block(tmp, buf);
        net.send_words(u, w, buf);
      }
    }
  }
  net.deliver();

  // Step 4 (local at product nodes): assemble S^(w), T^(w) and multiply.
  std::vector<Matrix<V>> phat(static_cast<std::size_t>(m));
  parallel_for(0, m, [&](int w) {
    Matrix<V> sw(big, big, ring.zero());
    Matrix<V> tw(big, big, ring.zero());
    for (int x1 = 0; x1 < sq; ++x1)
      for (int x2 = 0; x2 < sq; ++x2) {
        const int u = label_of(x1, x2);
        const auto s_piece = detail::decode_entries(
            codec, net.inbox(w, u), 0, static_cast<std::size_t>(bs * bs));
        const auto t_piece = detail::decode_entries(
            codec, net.inbox(w, u), static_cast<std::size_t>(bs * bs),
            static_cast<std::size_t>(bs * bs));
        for (int i = 0; i < bs; ++i)
          for (int j = 0; j < bs; ++j) {
            sw(x1 * bs + i, x2 * bs + j) =
                s_piece[static_cast<std::size_t>(i * bs + j)];
            tw(x1 * bs + i, x2 * bs + j) =
                t_piece[static_cast<std::size_t>(i * bs + j)];
          }
      }
    phat[static_cast<std::size_t>(w)] = local_multiply(ring, sw, tw);
  });

  // Step 5: node w returns P^(w)[x1*, x2*] to label (x1, x2).
  {
    std::vector<clique::Word> buf;
    std::vector<V> tmp;
    for (int w = 0; w < m; ++w) {
      const auto& pw = phat[static_cast<std::size_t>(w)];
      for (int x1 = 0; x1 < sq; ++x1)
        for (int x2 = 0; x2 < sq; ++x2) {
          tmp.clear();
          for (int i = 0; i < bs; ++i)
            for (int j = 0; j < bs; ++j)
              tmp.push_back(pw(x1 * bs + i, x2 * bs + j));
          buf.clear();
          codec.encode_block(tmp, buf);
          net.send_words(w, label_of(x1, x2), buf);
        }
    }
  }
  net.deliver();

  // Step 6 (local): P[ix1*, jx2*] = sum_w lambda_ijw P^(w)[x1*, x2*],
  // assembled into the sq x sq local view P[*x1*, *x2*].
  std::vector<Matrix<V>> ploc(static_cast<std::size_t>(n));
  parallel_for(0, n, [&](int u) {
    std::vector<Matrix<V>> pieces;
    pieces.reserve(static_cast<std::size_t>(m));
    for (int w = 0; w < m; ++w)
      pieces.push_back(Matrix<V>(bs, bs, ring.zero()));
    for (int w = 0; w < m; ++w) {
      const auto entries = detail::decode_entries(
          codec, net.inbox(u, w), 0, static_cast<std::size_t>(bs * bs));
      auto& piece = pieces[static_cast<std::size_t>(w)];
      for (int i = 0; i < bs; ++i)
        for (int j = 0; j < bs; ++j)
          piece(i, j) = entries[static_cast<std::size_t>(i * bs + j)];
    }
    Matrix<V> pl(sq, sq, ring.zero());
    for (int i = 0; i < d; ++i)
      for (int j = 0; j < d; ++j)
        for (const auto& cfc :
             alg.lambda[static_cast<std::size_t>(i * d + j)]) {
          const auto& piece = pieces[static_cast<std::size_t>(cfc.index)];
          for (int a = 0; a < bs; ++a)
            for (int b = 0; b < bs; ++b) {
              auto& cell = pl(i * bs + a, j * bs + b);
              if (cfc.coeff >= 0)
                for (std::int64_t rep = 0; rep < cfc.coeff; ++rep)
                  cell = ring.add(cell, piece(a, b));
              else
                for (std::int64_t rep = 0; rep < -cfc.coeff; ++rep)
                  cell = ring.sub(cell, piece(a, b));
            }
        }
    ploc[static_cast<std::size_t>(u)] = std::move(pl);
  });

  // Step 7: node (x1, x2) sends P[r, *x2*] to r for each r in *x1*.
  {
    std::vector<clique::Word> buf;
    std::vector<V> tmp;
    for (int x1 = 0; x1 < sq; ++x1)
      for (int x2 = 0; x2 < sq; ++x2) {
        const int u = label_of(x1, x2);
        const auto& pl = ploc[static_cast<std::size_t>(u)];
        for (int r1 = 0; r1 < d; ++r1)
          for (int r3 = 0; r3 < bs; ++r3) {
            const int r = r1 * big + x1 * bs + r3;
            tmp.clear();
            for (int lj = 0; lj < sq; ++lj)
              tmp.push_back(pl(r1 * bs + r3, lj));
            buf.clear();
            codec.encode_block(tmp, buf);
            net.send_words(u, r, buf);
          }
      }
  }
  net.deliver();

  Matrix<V> out(n, n, ring.zero());
  parallel_for(0, n, [&](int r) {
    const int r2 = (r / bs) % sq;
    for (int x2 = 0; x2 < sq; ++x2) {
      const int u = label_of(r2, x2);
      const auto entries = detail::decode_entries(
          codec, net.inbox(r, u), 0, static_cast<std::size_t>(sq));
      int lj = 0;
      for_each_col_x2(x2, [&](int j) {
        out(r, j) = entries[static_cast<std::size_t>(lj)];
        ++lj;
      });
    }
  });
  return out;
}

/// The trivial baseline: every node broadcasts its rows of both inputs so
/// everyone knows the full matrices, then computes its own output row
/// locally. Exactly 2n words per ordered link, hence 2n rounds (direct
/// schedule); the payload is charged but not materialised.
template <Semiring S>
[[nodiscard]] Matrix<typename S::Value> mm_naive_broadcast(
    clique::Network& net, const S& sr, int words_per_entry,
    const Matrix<typename S::Value>& s, const Matrix<typename S::Value>& t) {
  const int n = net.n();
  CCA_EXPECTS(s.rows() == n && s.cols() == n);
  CCA_EXPECTS(t.rows() == n && t.cols() == n);
  CCA_EXPECTS(words_per_entry >= 1);
  if (n > 1)
    net.charge_rounds(2 * static_cast<std::int64_t>(n) * words_per_entry);
  return multiply(sr, s, t);
}

/// Pad a square matrix to dimension `to`, filling new cells with `fill`
/// (use the semiring zero so padded rows/columns stay inert).
template <typename V>
[[nodiscard]] Matrix<V> pad_matrix(const Matrix<V>& m, int to, V fill) {
  CCA_EXPECTS(to >= m.rows() && m.rows() == m.cols());
  return m.resized(to, to, std::move(fill));
}

/// Admissible clique size for the 3D algorithm: the next perfect cube.
[[nodiscard]] int semiring_clique_size(int n);

}  // namespace cca::core
