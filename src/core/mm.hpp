// Distributed matrix multiplication on the congested clique — the paper's
// core contribution (Section 2, Theorem 1).
//
//  * mm_semiring_3d   — Section 2.1: the "3D" algorithm; O(n^{1/3}) rounds
//                       over any semiring.
//  * mm_fast_bilinear — Section 2.2 / Lemma 10: turns ANY bilinear algorithm
//                       with m(d) = O(d^sigma) multiplications into an
//                       O(n^{1-2/sigma}) round clique algorithm over a ring.
//  * mm_naive_broadcast — the trivial O(n)-round baseline (everyone learns
//                       both matrices).
//
// Input/output distribution follows the paper: node v holds row v of both
// inputs and ends with row v of the product. The orchestrated simulation
// stages node v's messages exclusively from data node v legitimately holds
// at that point of the algorithm (its input rows, then whatever it received
// in earlier supersteps).
//
// Data plane: both directions are zero-copy. Send staging encodes directly
// into Network::stage spans (no intermediate value/word buffers), and every
// staging loop runs under cca::parallel_for over the SENDERS — legal
// because each source owns its per-source outbox (see Network::stage), and
// layout-preserving because per-source append order is unchanged. Receive
// decoding goes through decode_into straight into matrix rows or reused
// scratch. None of this moves a word: TrafficStats are bit-identical to the
// serial entry-at-a-time implementation.
//
// All functions require net.n() == matrix dimension and an "admissible" n
// (perfect cube for the 3D algorithm; square with d | sqrt(n) and m <= n for
// the bilinear scheme). pad_matrix / semiring_clique_size / plan_fast_mm
// below embed an arbitrary instance into the next admissible size, which is
// how the paper's "assume n^{1/3} is an integer for convenience" is
// discharged.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "clique/network.hpp"
#include "matrix/bilinear.hpp"
#include "matrix/kernels.hpp"
#include "matrix/matrix.hpp"
#include "matrix/ops.hpp"
#include "matrix/semiring.hpp"
#include "util/contracts.hpp"
#include "util/math.hpp"
#include "util/parallel.hpp"

namespace cca::core {

/// Optional per-step wall-clock breakdown of one mm_* invocation (pass a
/// profile pointer to fill it). Steps alternate staging / delivery / local
/// compute, so the breakdown separates encode cost, router cost, and kernel
/// cost — bench_mm --steps prints it.
struct MmStepProfile {
  struct Step {
    const char* name;
    std::int64_t ns;
  };
  std::vector<Step> steps;
};

namespace detail {

/// Lap timer feeding MmStepProfile; all calls are no-ops when profile is
/// null, so the instrumented algorithms pay nothing in normal runs.
class StepClock {
 public:
  explicit StepClock(MmStepProfile* profile) : profile_(profile) {
    if (profile_ != nullptr) last_ = std::chrono::steady_clock::now();
  }
  void lap(const char* name) {
    if (profile_ == nullptr) return;
    const auto t = std::chrono::steady_clock::now();
    profile_->steps.push_back(
        {name, std::chrono::duration_cast<std::chrono::nanoseconds>(t - last_)
                   .count()});
    last_ = t;
  }

 private:
  MmStepProfile* profile_;
  std::chrono::steady_clock::time_point last_;
};

/// Decode a `count`-entry block that starts at word `word_offset` of a
/// message span into out[0..count), with no allocation. The batch layouts
/// compute offsets in words directly (block k of a B-group lives at
/// k * words_for(block_entries)), which stays exact for bit-packing codecs
/// whose words_for is not additive over entry counts (PackedBoolCodec at
/// non-64-multiple blocks).
template <typename Codec, typename V>
void decode_entries_at(const Codec& codec, std::span<const clique::Word> in,
                       std::size_t word_offset, std::size_t count, V* out) {
  CCA_EXPECTS(word_offset + codec.words_for(count) <= in.size());
  codec.decode_into(in.data() + word_offset, count, out);
}

/// Decode a `count`-entry block from a word span into out[0..count) with no
/// allocation. `prior_entries` is the total entry count of the blocks
/// encoded before it in the same message; every call site sends at most two
/// blocks per message, so codec.words_for(prior_entries) is exactly the
/// word offset (with three or more packed blocks it would NOT be — use
/// decode_entries_at with an explicit word offset there; test_codec.cpp
/// pins both layouts).
template <typename Codec, typename V>
void decode_entries_into(const Codec& codec, std::span<const clique::Word> in,
                         std::size_t prior_entries, std::size_t count,
                         V* out) {
  decode_entries_at(codec, in, codec.words_for(prior_entries), count, out);
}

/// acc[i*w + j] (+|-)= coeff * src(r0+i, c0+j) over an h x w block, where
/// acc is a flat row-major block. |coeff| == 1 skips the multiply (the
/// generic fallback — also the only case a semiring without subtraction
/// could support for positive coefficients); larger coefficients build the
/// scalar once and multiply-accumulate. Negative coefficients use the
/// ring's subtraction.
template <Ring R>
void scaled_accumulate(const R& ring, typename R::Value* acc, int h, int w,
                       const Matrix<typename R::Value>& src, int r0, int c0,
                       std::int64_t coeff) {
  if (coeff == 0) return;
  if (coeff == 1) {
    for (int i = 0; i < h; ++i) {
      const auto* srow = src.row(r0 + i) + c0;
      auto* arow = acc + static_cast<std::size_t>(i) * w;
      for (int j = 0; j < w; ++j) arow[j] = ring.add(arow[j], srow[j]);
    }
    return;
  }
  if (coeff == -1) {
    for (int i = 0; i < h; ++i) {
      const auto* srow = src.row(r0 + i) + c0;
      auto* arow = acc + static_cast<std::size_t>(i) * w;
      for (int j = 0; j < w; ++j) arow[j] = ring.sub(arow[j], srow[j]);
    }
    return;
  }
  const auto scale = scalar_of(ring, coeff > 0 ? coeff : -coeff);
  for (int i = 0; i < h; ++i) {
    const auto* srow = src.row(r0 + i) + c0;
    auto* arow = acc + static_cast<std::size_t>(i) * w;
    if (coeff > 0)
      for (int j = 0; j < w; ++j)
        arow[j] = ring.add(arow[j], ring.mul(scale, srow[j]));
    else
      for (int j = 0; j < w; ++j)
        arow[j] = ring.sub(arow[j], ring.mul(scale, srow[j]));
  }
}

/// dst(r0+i, c0+j) (+|-)= coeff * piece[i*bs + j] over a bs x bs block —
/// the flat-source dual of scaled_accumulate, used when the accumulator is
/// a matrix view and the source is a decoded scratch block.
template <Ring R>
void scaled_accumulate_flat(const R& ring, Matrix<typename R::Value>& dst,
                            int r0, int c0, const typename R::Value* piece,
                            int bs, std::int64_t coeff) {
  if (coeff == 0) return;
  if (coeff == 1 || coeff == -1) {
    for (int i = 0; i < bs; ++i) {
      auto* drow = dst.row(r0 + i) + c0;
      const auto* prow = piece + static_cast<std::size_t>(i) * bs;
      if (coeff > 0)
        for (int j = 0; j < bs; ++j) drow[j] = ring.add(drow[j], prow[j]);
      else
        for (int j = 0; j < bs; ++j) drow[j] = ring.sub(drow[j], prow[j]);
    }
    return;
  }
  const auto scale = scalar_of(ring, coeff > 0 ? coeff : -coeff);
  for (int i = 0; i < bs; ++i) {
    auto* drow = dst.row(r0 + i) + c0;
    const auto* prow = piece + static_cast<std::size_t>(i) * bs;
    if (coeff > 0)
      for (int j = 0; j < bs; ++j)
        drow[j] = ring.add(drow[j], ring.mul(scale, prow[j]));
    else
      for (int j = 0; j < bs; ++j)
        drow[j] = ring.sub(drow[j], ring.mul(scale, prow[j]));
  }
}

}  // namespace detail

/// Section 2.1, batched — B independent semiring products through SHARED
/// supersteps. The executable counterpart of running multiple MM instances
/// at once (Le Gall, "Further Algebraic Algorithms in the Congested
/// Clique"): every (src, dst) pair's B per-product blocks ride in ONE
/// staged message ([S-group][T-group] per role, product b's block at word
/// offset b * block_words inside its group), so the whole batch pays 2
/// deliveries and ONE routing schedule per superstep instead of 2B. Because
/// the relay spreads the B-fold blocks over intermediates, batch rounds are
/// strictly below B sequential runs whenever single-product supersteps
/// leave links idle (they do: tests pin it).
///
/// Requires net.n() == every matrix dimension, net.n() a perfect cube, and
/// as.size() == bs.size() >= 1. Returns the B products in order; the B = 1
/// instance stages byte-identical traffic to the historical single-product
/// code path (the traffic-regression suite pins those stats).
///
/// Note: the paper's Step 1 says node v sends T[v, w3**] to the nodes
/// w in *v2*; for the received pieces to assemble T[v2**, v3**] (rows with
/// FIRST digit v2, as Step 2 requires) the recipients must be w in *v1*.
/// We implement the *v1* version; the totals (2 n^{4/3} words per node per
/// product) are unchanged.
template <Semiring S, typename Codec>
[[nodiscard]] std::vector<Matrix<typename S::Value>> mm_semiring_3d_batch(
    clique::Network& net, const S& sr, const Codec& codec,
    std::span<const Matrix<typename S::Value>> as,
    std::span<const Matrix<typename S::Value>> bs,
    MmStepProfile* profile = nullptr) {
  using V = typename S::Value;
  const int n = net.n();
  const std::size_t batch = as.size();
  CCA_EXPECTS(batch >= 1 && bs.size() == batch);
  for (std::size_t b = 0; b < batch; ++b) {
    CCA_EXPECTS(as[b].rows() == n && as[b].cols() == n);
    CCA_EXPECTS(bs[b].rows() == n && bs[b].cols() == n);
  }
  CCA_EXPECTS(is_perfect_cube(n));
  std::vector<Matrix<V>> out;
  out.reserve(batch);
  if (n == 1) {
    for (std::size_t b = 0; b < batch; ++b) {
      Matrix<V> o(1, 1, sr.zero());
      o(0, 0) = sr.mul(as[b](0, 0), bs[b](0, 0));
      out.push_back(std::move(o));
    }
    return out;
  }
  const int c = static_cast<int>(icbrt(n));
  const int c2 = c * c;
  const auto block_entries = static_cast<std::size_t>(c2);
  const auto block_words = codec.words_for(block_entries);
  const auto group_words = batch * block_words;  // one pair's staged group
  auto d1 = [c2](int v) { return v / c2; };
  auto d2 = [c, c2](int v) { return (v / c) % c; };
  auto d3 = [c](int v) { return v % c; };
  detail::StepClock clock(profile);

  // Step 1: node v scatters pieces of its rows S_b[v,*] and T_b[v,*] for
  // every product b, encoding the contiguous row slices straight into one
  // staged group per destination. Senders are independent (one src per
  // iteration), so the loop runs parallel.
  parallel_for(0, n, [&](int v) {
    // S_b[v, u2**] to each u in v1** (same first digit as v).
    for (int tail = 0; tail < c2; ++tail) {
      const int u = d1(v) * c2 + tail;
      const auto msg = net.stage(v, u, group_words);
      for (std::size_t b = 0; b < batch; ++b)
        codec.encode_into(std::span<const V>(as[b].row(v) + d2(u) * c2,
                                             block_entries),
                          msg.data() + b * block_words);
    }
    // T_b[v, w3**] to each w in *v1* (second digit equals v's first digit).
    for (int w1 = 0; w1 < c; ++w1)
      for (int w3 = 0; w3 < c; ++w3) {
        const int w = w1 * c2 + d1(v) * c + w3;
        const auto msg = net.stage(v, w, group_words);
        for (std::size_t b = 0; b < batch; ++b)
          codec.encode_into(std::span<const V>(bs[b].row(v) + d3(w) * c2,
                                               block_entries),
                            msg.data() + b * block_words);
      }
  });
  clock.lap("step1 stage");
  net.deliver();
  clock.lap("step1 deliver");

  // Each node v now assembles S_b[v1**, v2**] and T_b[v2**, v3**] and
  // multiplies them locally (Step 2), for every b. Per-node work is
  // independent and reads only delivered inbox views, so the nodes run on
  // the worker group; blocks are decoded directly into the assembled
  // matrix rows (sb/tb are reused across b — every row is overwritten).
  std::vector<Matrix<V>> prod(static_cast<std::size_t>(n) * batch);
  parallel_for(0, n, [&](int v) {
    Matrix<V> sb(c2, c2, sr.zero());
    Matrix<V> tb(c2, c2, sr.zero());
    for (std::size_t b = 0; b < batch; ++b) {
      for (int tail = 0; tail < c2; ++tail) {
        const int u = d1(v) * c2 + tail;  // sender of S_b[u, v2**]
        detail::decode_entries_at(codec, net.inbox(v, u), b * block_words,
                                  block_entries, sb.row(tail));
      }
      for (int tail = 0; tail < c2; ++tail) {
        const int w = d2(v) * c2 + tail;  // sender of T_b[w, v3**]
        // v received its S group and/or T group from w in one inbox; the S
        // group (if any) comes first — skip it in words.
        const std::size_t at =
            (d1(w) == d1(v) ? group_words : 0) + b * block_words;
        detail::decode_entries_at(codec, net.inbox(v, w), at, block_entries,
                                  tb.row(tail));
      }
      prod[static_cast<std::size_t>(v) * batch + b] =
          local_multiply(sr, sb, tb);
    }
  });
  clock.lap("step2 local product");

  // Step 3: node v sends P_b^(v2)[u, v3**] to each u in v1** — one
  // contiguous product row per message block, encoded in place.
  parallel_for(0, n, [&](int v) {
    for (int tail = 0; tail < c2; ++tail) {
      const int u = d1(v) * c2 + tail;
      const auto msg = net.stage(v, u, group_words);
      for (std::size_t b = 0; b < batch; ++b) {
        const auto& pv = prod[static_cast<std::size_t>(v) * batch + b];
        codec.encode_into(std::span<const V>(pv.row(tail), block_entries),
                          msg.data() + b * block_words);
      }
    }
  });
  clock.lap("step3 stage");
  net.deliver();
  clock.lap("step3 deliver");

  // Step 4: node v sums the received pieces into row v of each product
  // (distinct output rows, so the nodes run concurrently).
  for (std::size_t b = 0; b < batch; ++b)
    out.emplace_back(n, n, sr.zero());
  parallel_for(0, n, [&](int v) {
    std::vector<V> piece(block_entries, sr.zero());
    for (int tail = 0; tail < c2; ++tail) {
      const int u = d1(v) * c2 + tail;  // sent P_b^(u2)[v, u3**]
      const auto in = net.inbox(v, u);
      for (std::size_t b = 0; b < batch; ++b) {
        detail::decode_entries_at(codec, in, b * block_words, block_entries,
                                  piece.data());
        auto* orow = out[b].row(v) + d3(u) * c2;
        for (int j = 0; j < c2; ++j)
          orow[j] = sr.add(orow[j], piece[static_cast<std::size_t>(j)]);
      }
    }
  });
  clock.lap("step4 combine");
  return out;
}

/// Section 2.1 — semiring matrix multiplication in O(n^{1/3}) rounds.
///
/// Requires net.n() == s.rows() == s.cols() == t.rows() == t.cols() and
/// net.n() a perfect cube. Returns the full product (row v of which is the
/// output of node v). This is the batch-of-one instance of
/// mm_semiring_3d_batch; its staged traffic is byte-identical to the
/// historical single-product implementation.
template <Semiring S, typename Codec>
[[nodiscard]] Matrix<typename S::Value> mm_semiring_3d(
    clique::Network& net, const S& sr, const Codec& codec,
    const Matrix<typename S::Value>& s, const Matrix<typename S::Value>& t,
    MmStepProfile* profile = nullptr) {
  using V = typename S::Value;
  auto res = mm_semiring_3d_batch(
      net, sr, codec, std::span<const Matrix<V>>(&s, 1),
      std::span<const Matrix<V>>(&t, 1), profile);
  return std::move(res.front());
}

/// Parameters of one fast multiplication instance (Section 2.2).
struct FastPlan {
  int depth = 0;      ///< tensor-power exponent k of the base algorithm
  int d = 1;          ///< block grid dimension (base_d^k)
  int m = 1;          ///< number of block products (base_m^k)
  int clique_n = 1;   ///< admissible clique/matrix size (square, d | sqrt)
};

/// Smallest admissible instance for matrices of size n with a forced depth:
/// clique_n is a perfect square, d = base_d^depth divides sqrt(clique_n),
/// and m = base_m^depth <= clique_n.
[[nodiscard]] FastPlan plan_fast_mm(int n, int depth, int base_d = 2,
                                    int base_m = 7);

/// Auto-select the largest depth whose m fits below n (the paper's
/// "fix d so that m(d) = n"), then pad.
[[nodiscard]] FastPlan plan_fast_mm_auto(int n, int base_d = 2,
                                         int base_m = 7);

/// Section 2.2 / Lemma 10, batched — B independent ring products through
/// SHARED supersteps (same scheme as mm_semiring_3d_batch: per-pair
/// messages of the B products concatenate into one staged group, so the
/// batch pays one routing schedule per superstep). Message layouts put
/// product b's blocks at word offsets computed in whole blocks — [S_b T_b]
/// pairs in Steps 1 and 3, b * blk_words groups in Steps 5 and 7 — so
/// B = 1 is byte-identical to the historical single-product path.
///
/// `alg` must be a bilinear algorithm for d x d matrices with m products,
/// with d | sqrt(net.n()) and m <= net.n(); tensor_power(strassen, k)
/// satisfies this for admissible sizes from plan_fast_mm. Runs in
/// O(B n^{1 - 2/sigma}) rounds where m = d^sigma.
template <Ring R, typename Codec>
[[nodiscard]] std::vector<Matrix<typename R::Value>> mm_fast_bilinear_batch(
    clique::Network& net, const R& ring, const Codec& codec,
    const BilinearAlgorithm& alg,
    std::span<const Matrix<typename R::Value>> as,
    std::span<const Matrix<typename R::Value>> bs_in,
    MmStepProfile* profile = nullptr) {
  using V = typename R::Value;
  const int n = net.n();
  const std::size_t batch = as.size();
  CCA_EXPECTS(batch >= 1 && bs_in.size() == batch);
  for (std::size_t b = 0; b < batch; ++b) {
    CCA_EXPECTS(as[b].rows() == n && as[b].cols() == n);
    CCA_EXPECTS(bs_in[b].rows() == n && bs_in[b].cols() == n);
  }
  CCA_EXPECTS(is_perfect_square(n));
  const int sq = static_cast<int>(isqrt(n));
  const int d = alg.d;
  const int m = alg.m;
  CCA_EXPECTS(d >= 1 && sq % d == 0);
  CCA_EXPECTS(m <= n);
  const int bs = sq / d;        // fine block size (n^{1/2} / d)
  const int big = n / d;        // coarse block size (rows per first digit)
  std::vector<Matrix<V>> out;
  out.reserve(batch);
  if (n == 1) {
    for (std::size_t b = 0; b < batch; ++b) {
      Matrix<V> o(1, 1, ring.zero());
      o(0, 0) = ring.mul(as[b](0, 0), bs_in[b](0, 0));
      out.push_back(std::move(o));
    }
    return out;
  }
  const auto row_entries = static_cast<std::size_t>(sq);
  const auto row_words = codec.words_for(row_entries);
  const auto blk_entries = static_cast<std::size_t>(bs) *
                           static_cast<std::size_t>(bs);
  const auto blk_words = codec.words_for(blk_entries);
  detail::StepClock clock(profile);

  // Node digits (v1, v2, v3) in radices (d, sq, sq/d) and labels (x1, x2).
  auto label_of = [sq](int x1, int x2) { return x1 * sq + x2; };

  // Columns with second digit x2, in increasing order: for i in [d], the
  // range [i*big + x2*bs, i*big + (x2+1)*bs).
  auto for_each_col_x2 = [&](int x2, auto&& fn) {
    for (int i = 0; i < d; ++i)
      for (int off = 0; off < bs; ++off) fn(i * big + x2 * bs + off);
  };

  // Step 1: node v sends S_b[v, *x2*] and T_b[v, *x2*] to label (v2, x2) —
  // the B single-product [S piece, T piece] messages concatenated in one
  // staged span (product b's pair starts at word 2b * row_words). The
  // columns for x2 are d contiguous bs-runs, gathered into a per-sender
  // scratch and encoded straight into network memory.
  parallel_for(0, n, [&](int v) {
    const int v2 = (v / bs) % sq;
    std::vector<V> tmp(row_entries, ring.zero());
    for (int x2 = 0; x2 < sq; ++x2) {
      const int u = label_of(v2, x2);
      const auto msg = net.stage(v, u, 2 * batch * row_words);
      for (std::size_t b = 0; b < batch; ++b) {
        int lj = 0;
        for_each_col_x2(x2, [&](int j) {
          tmp[static_cast<std::size_t>(lj++)] = as[b](v, j);
        });
        codec.encode_into(std::span<const V>(tmp.data(), row_entries),
                          msg.data() + 2 * b * row_words);
        lj = 0;
        for_each_col_x2(x2, [&](int j) {
          tmp[static_cast<std::size_t>(lj++)] = bs_in[b](v, j);
        });
        codec.encode_into(std::span<const V>(tmp.data(), row_entries),
                          msg.data() + (2 * b + 1) * row_words);
      }
    }
  });
  clock.lap("step1 stage");
  net.deliver();
  clock.lap("step1 deliver");

  // Node u = (x1,x2) assembles the sq x sq local views S_b[*x1*, *x2*] and
  // T_b[*x1*, *x2*]: local row index of sender v is v1*bs + v3; each piece
  // decodes directly into the local-view row.
  std::vector<Matrix<V>> sloc(static_cast<std::size_t>(n) * batch);
  std::vector<Matrix<V>> tloc(static_cast<std::size_t>(n) * batch);
  parallel_for(0, n, [&](int u) {
    const int x1 = u / sq;
    for (std::size_t b = 0; b < batch; ++b) {
      Matrix<V> sl(sq, sq, ring.zero());
      Matrix<V> tl(sq, sq, ring.zero());
      for (int v1 = 0; v1 < d; ++v1)
        for (int v3 = 0; v3 < bs; ++v3) {
          const int v = v1 * big + x1 * bs + v3;  // sender with v2 == x1
          const int lrow = v1 * bs + v3;
          const auto in = net.inbox(u, v);
          detail::decode_entries_at(codec, in, 2 * b * row_words,
                                    row_entries, sl.row(lrow));
          detail::decode_entries_at(codec, in, (2 * b + 1) * row_words,
                                    row_entries, tl.row(lrow));
        }
      sloc[static_cast<std::size_t>(u) * batch + b] = std::move(sl);
      tloc[static_cast<std::size_t>(u) * batch + b] = std::move(tl);
    }
  });
  clock.lap("step1 assemble");

  // Step 2 (local): linear combinations S_b^(w)[x1*, x2*], T_b^(w)[x1*,
  // x2*], built in flat per-sender scratch blocks with one
  // multiply-accumulate per coefficient (see scaled_accumulate). Step 3:
  // the B [shat, that] pairs encode into one staged span to node w, for
  // every w in [m].
  parallel_for(0, n, [&](int u) {
    std::vector<V> shat(blk_entries, ring.zero());
    std::vector<V> that(blk_entries, ring.zero());
    for (int w = 0; w < m; ++w) {
      const auto msg = net.stage(u, w, 2 * batch * blk_words);
      for (std::size_t b = 0; b < batch; ++b) {
        const auto& sl = sloc[static_cast<std::size_t>(u) * batch + b];
        const auto& tl = tloc[static_cast<std::size_t>(u) * batch + b];
        std::fill(shat.begin(), shat.end(), ring.zero());
        std::fill(that.begin(), that.end(), ring.zero());
        for (const auto& cfc : alg.alpha[static_cast<std::size_t>(w)])
          detail::scaled_accumulate(ring, shat.data(), bs, bs, sl,
                                    (cfc.index / d) * bs,
                                    (cfc.index % d) * bs, cfc.coeff);
        for (const auto& cfc : alg.beta[static_cast<std::size_t>(w)])
          detail::scaled_accumulate(ring, that.data(), bs, bs, tl,
                                    (cfc.index / d) * bs,
                                    (cfc.index % d) * bs, cfc.coeff);
        codec.encode_into(std::span<const V>(shat.data(), blk_entries),
                          msg.data() + 2 * b * blk_words);
        codec.encode_into(std::span<const V>(that.data(), blk_entries),
                          msg.data() + (2 * b + 1) * blk_words);
      }
    }
  });
  clock.lap("step2-3 combine+stage");
  net.deliver();
  clock.lap("step3 deliver");

  // Step 4 (local at product nodes): assemble S_b^(w), T_b^(w), multiply.
  std::vector<Matrix<V>> phat(static_cast<std::size_t>(m) * batch);
  parallel_for(0, m, [&](int w) {
    std::vector<V> sbuf(blk_entries, ring.zero());
    std::vector<V> tbuf(blk_entries, ring.zero());
    for (std::size_t b = 0; b < batch; ++b) {
      Matrix<V> sw(big, big, ring.zero());
      Matrix<V> tw(big, big, ring.zero());
      for (int x1 = 0; x1 < sq; ++x1)
        for (int x2 = 0; x2 < sq; ++x2) {
          const int u = label_of(x1, x2);
          const auto in = net.inbox(w, u);
          detail::decode_entries_at(codec, in, 2 * b * blk_words,
                                    blk_entries, sbuf.data());
          detail::decode_entries_at(codec, in, (2 * b + 1) * blk_words,
                                    blk_entries, tbuf.data());
          for (int i = 0; i < bs; ++i) {
            const auto* sp = sbuf.data() + static_cast<std::size_t>(i) * bs;
            const auto* tp = tbuf.data() + static_cast<std::size_t>(i) * bs;
            auto* swrow = sw.row(x1 * bs + i) + x2 * bs;
            auto* twrow = tw.row(x1 * bs + i) + x2 * bs;
            for (int j = 0; j < bs; ++j) {
              swrow[j] = sp[j];
              twrow[j] = tp[j];
            }
          }
        }
      phat[static_cast<std::size_t>(w) * batch + b] =
          local_multiply(ring, sw, tw);
    }
  });
  clock.lap("step4 product");

  // Step 5: node w returns P_b^(w)[x1*, x2*] to label (x1, x2), the B
  // blocks concatenated (product b at word b * blk_words).
  parallel_for(0, m, [&](int w) {
    std::vector<V> tmp(blk_entries, ring.zero());
    for (int x1 = 0; x1 < sq; ++x1)
      for (int x2 = 0; x2 < sq; ++x2) {
        const auto msg = net.stage(w, label_of(x1, x2), batch * blk_words);
        for (std::size_t b = 0; b < batch; ++b) {
          const auto& pw = phat[static_cast<std::size_t>(w) * batch + b];
          for (int i = 0; i < bs; ++i) {
            const auto* prow = pw.row(x1 * bs + i) + x2 * bs;
            auto* tp = tmp.data() + static_cast<std::size_t>(i) * bs;
            for (int j = 0; j < bs; ++j) tp[j] = prow[j];
          }
          codec.encode_into(std::span<const V>(tmp.data(), blk_entries),
                            msg.data() + b * blk_words);
        }
      }
  });
  clock.lap("step5 stage");
  net.deliver();
  clock.lap("step5 deliver");

  // Step 6 (local): P_b[ix1*, jx2*] = sum_w lambda_ijw P_b^(w)[x1*, x2*],
  // assembled into the sq x sq local view P_b[*x1*, *x2*]. Pieces decode
  // into one flat scratch (m consecutive bs x bs blocks) and each lambda
  // coefficient applies as a single multiply-accumulate.
  std::vector<Matrix<V>> ploc(static_cast<std::size_t>(n) * batch);
  parallel_for(0, n, [&](int u) {
    std::vector<V> pieces(static_cast<std::size_t>(m) * blk_entries,
                          ring.zero());
    for (std::size_t b = 0; b < batch; ++b) {
      for (int w = 0; w < m; ++w)
        detail::decode_entries_at(
            codec, net.inbox(u, w), b * blk_words, blk_entries,
            pieces.data() + static_cast<std::size_t>(w) * blk_entries);
      Matrix<V> pl(sq, sq, ring.zero());
      for (int i = 0; i < d; ++i)
        for (int j = 0; j < d; ++j)
          for (const auto& cfc :
               alg.lambda[static_cast<std::size_t>(i * d + j)]) {
            const auto* piece = pieces.data() +
                                static_cast<std::size_t>(cfc.index) *
                                    blk_entries;
            detail::scaled_accumulate_flat(ring, pl, i * bs, j * bs, piece,
                                           bs, cfc.coeff);
          }
      ploc[static_cast<std::size_t>(u) * batch + b] = std::move(pl);
    }
  });
  clock.lap("step6 recombine");

  // Step 7: node (x1, x2) sends P_b[r, *x2*] to r for each r in *x1* — the
  // B contiguous local-view rows concatenated, encoded in place.
  parallel_for(0, sq * sq, [&](int u) {
    const int x1 = u / sq;
    for (int r1 = 0; r1 < d; ++r1)
      for (int r3 = 0; r3 < bs; ++r3) {
        const int r = r1 * big + x1 * bs + r3;
        const auto msg = net.stage(u, r, batch * row_words);
        for (std::size_t b = 0; b < batch; ++b) {
          const auto& pl = ploc[static_cast<std::size_t>(u) * batch + b];
          codec.encode_into(
              std::span<const V>(pl.row(r1 * bs + r3), row_entries),
              msg.data() + b * row_words);
        }
      }
  });
  clock.lap("step7 stage");
  net.deliver();
  clock.lap("step7 deliver");

  for (std::size_t b = 0; b < batch; ++b)
    out.emplace_back(n, n, ring.zero());
  parallel_for(0, n, [&](int r) {
    const int r2 = (r / bs) % sq;
    std::vector<V> entries(row_entries, ring.zero());
    for (int x2 = 0; x2 < sq; ++x2) {
      const int u = label_of(r2, x2);
      const auto in = net.inbox(r, u);
      for (std::size_t b = 0; b < batch; ++b) {
        detail::decode_entries_at(codec, in, b * row_words, row_entries,
                                  entries.data());
        int lj = 0;
        for_each_col_x2(x2, [&](int j) {
          out[b](r, j) = entries[static_cast<std::size_t>(lj)];
          ++lj;
        });
      }
    }
  });
  clock.lap("step8 output");
  return out;
}

/// Section 2.2 / Lemma 10 — fast bilinear matrix multiplication.
///
/// `alg` must be a bilinear algorithm for d x d matrices with m products,
/// with d | sqrt(net.n()) and m <= net.n(); tensor_power(strassen, k)
/// satisfies this for admissible sizes from plan_fast_mm. Runs in
/// O(n^{1 - 2/sigma}) rounds where m = d^sigma. This is the batch-of-one
/// instance of mm_fast_bilinear_batch; its staged traffic is byte-identical
/// to the historical single-product implementation.
template <Ring R, typename Codec>
[[nodiscard]] Matrix<typename R::Value> mm_fast_bilinear(
    clique::Network& net, const R& ring, const Codec& codec,
    const BilinearAlgorithm& alg, const Matrix<typename R::Value>& s,
    const Matrix<typename R::Value>& t, MmStepProfile* profile = nullptr) {
  using V = typename R::Value;
  auto res = mm_fast_bilinear_batch(
      net, ring, codec, alg, std::span<const Matrix<V>>(&s, 1),
      std::span<const Matrix<V>>(&t, 1), profile);
  return std::move(res.front());
}

/// The trivial baseline: every node broadcasts its rows of both inputs so
/// everyone knows the full matrices, then computes its own output row
/// locally. Exactly 2n words per ordered link, hence 2n rounds (direct
/// schedule); the payload is charged but not materialised.
template <Semiring S>
[[nodiscard]] Matrix<typename S::Value> mm_naive_broadcast(
    clique::Network& net, const S& sr, int words_per_entry,
    const Matrix<typename S::Value>& s, const Matrix<typename S::Value>& t) {
  const int n = net.n();
  CCA_EXPECTS(s.rows() == n && s.cols() == n);
  CCA_EXPECTS(t.rows() == n && t.cols() == n);
  CCA_EXPECTS(words_per_entry >= 1);
  if (n > 1)
    net.charge_rounds(2 * static_cast<std::int64_t>(n) * words_per_entry);
  return multiply(sr, s, t);
}

/// Pad a square matrix to dimension `to`, filling new cells with `fill`
/// (use the semiring zero so padded rows/columns stay inert).
template <typename V>
[[nodiscard]] Matrix<V> pad_matrix(const Matrix<V>& m, int to, V fill) {
  CCA_EXPECTS(to >= m.rows() && m.rows() == m.cols());
  return m.resized(to, to, std::move(fill));
}

/// Admissible clique size for the 3D algorithm: the next perfect cube.
[[nodiscard]] int semiring_clique_size(int n);

}  // namespace cca::core
