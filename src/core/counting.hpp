// Triangle and 4-cycle counting on the congested clique (Corollary 2).
//
// Both counts come from trace formulas on powers of the adjacency matrix
// (Itai–Rodeh for triangles, Alon–Yuster–Zwick for 4-cycles):
//
//   undirected: #C3 = tr(A^3)/6,  #C4 = (tr(A^4) - sum_v(2 deg^2 - deg))/8
//   directed:   #C3 = tr(A^3)/3,  #C4 = (tr(A^4) - sum_v(2 delta^2 - delta))/4
//
// where delta(v) counts the 2-cycles through v. One distributed matrix
// product computes A^2; tr(A^3) = sum_{uv} A^2[u,v] A[v,u] and
// tr(A^4) = sum_{uv} A^2[u,v] A^2[v,u] then need only a transpose superstep
// (O(1) rounds) and a partial-sum broadcast — so the total cost is one
// product: O(n^rho) rounds with the fast engine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "clique/network.hpp"
#include "core/engine.hpp"
#include "graph/graph.hpp"

namespace cca::core {

struct CountOutcome {
  std::int64_t count = 0;
  clique::TrafficStats traffic;  ///< rounds and word counts consumed
};

/// Outcome of a multi-query counting batch: per-graph counts plus the
/// SHARED network's total cost (strictly below the sum of independent runs
/// whenever the single-graph supersteps leave link capacity idle).
struct BatchCountOutcome {
  std::vector<std::int64_t> counts;
  clique::TrafficStats traffic;
};

/// Triangle counts for B graphs at once — the multi-query form of
/// count_triangles_cc: all B products A_b^2 run through shared supersteps
/// (IntMmEngine::multiply_batch) on one clique padded for the largest
/// graph, and the B partial-sum broadcasts share their supersteps too (each
/// node announces B words in one go). Counts are identical to per-graph
/// runs. Undirected graphs only (the per-graph transpose superstep of the
/// directed path would serialise the batch).
[[nodiscard]] BatchCountOutcome count_triangles_cc_batch(
    std::span<const Graph> gs, MmKind kind = MmKind::Auto, int depth = -1);

/// Number of triangles (3-cliques / directed 3-cycles) of g, computed on a
/// padded clique with the chosen engine. `depth` forces the Strassen tensor
/// power for MmKind::Fast (-1 = auto).
[[nodiscard]] CountOutcome count_triangles_cc(const Graph& g,
                                              MmKind kind = MmKind::Auto,
                                              int depth = -1);

/// Number of simple 4-cycles (directed 4-cycles for digraphs).
[[nodiscard]] CountOutcome count_4cycles_cc(const Graph& g,
                                            MmKind kind = MmKind::Auto,
                                            int depth = -1);

/// Number of simple 5-cycles in an UNDIRECTED graph. The paper notes that
/// the Alon–Yuster–Zwick trace formulas extend to k in {5,6,7}; this is
/// the k = 5 instance:
///
///   #C5 = ( tr(A^5) - 5 tr(A^3) - 5 sum_v (deg(v)-2) (A^3)_vv ) / 10.
///
/// Two distributed products (A^2, then A^3 = A^2 A); tr(A^5) =
/// sum_{u,v} A^2[u,v] A^3[u,v] is local per row for symmetric A, and the
/// diagonal/degree terms are local — so the cost stays O(n^rho).
[[nodiscard]] CountOutcome count_5cycles_cc(const Graph& g,
                                            MmKind kind = MmKind::Auto,
                                            int depth = -1);

}  // namespace cca::core
