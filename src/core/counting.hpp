// Triangle and 4-cycle counting on the congested clique (Corollary 2).
//
// Both counts come from trace formulas on powers of the adjacency matrix
// (Itai–Rodeh for triangles, Alon–Yuster–Zwick for 4-cycles):
//
//   undirected: #C3 = tr(A^3)/6,  #C4 = (tr(A^4) - sum_v(2 deg^2 - deg))/8
//   directed:   #C3 = tr(A^3)/3,  #C4 = (tr(A^4) - sum_v(2 delta^2 - delta))/4
//
// where delta(v) counts the 2-cycles through v. One distributed matrix
// product computes A^2; tr(A^3) = sum_{uv} A^2[u,v] A[v,u] and
// tr(A^4) = sum_{uv} A^2[u,v] A^2[v,u] then need only a transpose superstep
// (O(1) rounds) and a partial-sum broadcast — so the total cost is one
// product: O(n^rho) rounds with the fast engine.
#pragma once

#include <cstdint>

#include "clique/network.hpp"
#include "core/engine.hpp"
#include "graph/graph.hpp"

namespace cca::core {

struct CountOutcome {
  std::int64_t count = 0;
  clique::TrafficStats traffic;  ///< rounds and word counts consumed
};

/// Number of triangles (3-cliques / directed 3-cycles) of g, computed on a
/// padded clique with the chosen engine. `depth` forces the Strassen tensor
/// power for MmKind::Fast (-1 = auto).
[[nodiscard]] CountOutcome count_triangles_cc(const Graph& g,
                                              MmKind kind = MmKind::Fast,
                                              int depth = -1);

/// Number of simple 4-cycles (directed 4-cycles for digraphs).
[[nodiscard]] CountOutcome count_4cycles_cc(const Graph& g,
                                            MmKind kind = MmKind::Fast,
                                            int depth = -1);

/// Number of simple 5-cycles in an UNDIRECTED graph. The paper notes that
/// the Alon–Yuster–Zwick trace formulas extend to k in {5,6,7}; this is
/// the k = 5 instance:
///
///   #C5 = ( tr(A^5) - 5 tr(A^3) - 5 sum_v (deg(v)-2) (A^3)_vv ) / 10.
///
/// Two distributed products (A^2, then A^3 = A^2 A); tr(A^5) =
/// sum_{u,v} A^2[u,v] A^3[u,v] is local per row for symmetric A, and the
/// diagonal/degree terms are local — so the cost stays O(n^rho).
[[nodiscard]] CountOutcome count_5cycles_cc(const Graph& g,
                                            MmKind kind = MmKind::Fast,
                                            int depth = -1);

}  // namespace cca::core
