#include "core/four_cycle.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "clique/primitives.hpp"
#include "util/analysis.hpp"
#include "util/contracts.hpp"
#include "util/math.hpp"
#include "util/parallel.hpp"

namespace cca::core {

namespace {

clique::Word pack_pair(int a, int b) {
  return (static_cast<clique::Word>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

std::pair<int, int> unpack_pair(clique::Word w) {
  return {static_cast<int>(w >> 32),
          static_cast<int>(w & 0xffffffffu)};
}

/// Buddy allocator over the k x k square: blocks are power-of-two aligned
/// sub-squares; allocating in non-increasing size order never fragments.
class BuddyAllocator {
 public:
  explicit BuddyAllocator(int k) : k_(k) {
    CCA_EXPECTS(k >= 1 && (k & (k - 1)) == 0);
    free_.resize(static_cast<std::size_t>(ilog2(k)) + 1);
    free_[static_cast<std::size_t>(ilog2(k))].push_back({0, 0});
  }

  /// Allocate an aligned size x size block (size a power of two <= k).
  [[nodiscard]] std::pair<int, int> allocate(int size) {
    const auto level = static_cast<std::size_t>(ilog2(size));
    CCA_EXPECTS(size >= 1 && (size & (size - 1)) == 0 && size <= k_);
    auto split_level = level;
    while (split_level < free_.size() && free_[split_level].empty())
      ++split_level;
    CCA_EXPECTS(split_level < free_.size());  // capacity proven by Lemma 12
    while (split_level > level) {
      const auto [r, c] = free_[split_level].back();
      free_[split_level].pop_back();
      const int half = 1 << (split_level - 1);
      free_[split_level - 1].push_back({r, c});
      free_[split_level - 1].push_back({r, c + half});
      free_[split_level - 1].push_back({r + half, c});
      free_[split_level - 1].push_back({r + half, c + half});
      --split_level;
    }
    const auto block = free_[level].back();
    free_[level].pop_back();
    return block;
  }

 private:
  int k_;
  std::vector<std::vector<std::pair<int, int>>> free_;
};

}  // namespace

std::vector<Tile> lemma12_tiling(const std::vector<std::int64_t>& degrees,
                                 int n) {
  CCA_EXPECTS(static_cast<int>(degrees.size()) == n);
  CCA_EXPECTS(n >= 8);
  const int k = static_cast<int>(floor_pow2(n));

  struct Request {
    int y;
    int size;
  };
  std::vector<Request> requests;
  for (int y = 0; y < n; ++y) {
    const auto deg = degrees[static_cast<std::size_t>(y)];
    CCA_EXPECTS(deg >= 0);
    if (deg == 0) continue;
    // f(y) = deg/4 rounded down to a power of two, at least 1; then
    // f(y) >= deg/8 and sum f^2 <= n + sum deg^2/16 < n + n^2/8 <= k^2.
    const auto f = static_cast<int>(floor_pow2(std::max<std::int64_t>(
        1, deg / 4)));
    requests.push_back({y, f});
  }
  std::sort(requests.begin(), requests.end(), [](const Request& a,
                                                 const Request& b) {
    if (a.size != b.size) return a.size > b.size;
    return a.y < b.y;
  });

  BuddyAllocator alloc(k);
  std::vector<Tile> tiles;
  tiles.reserve(requests.size());
  for (const auto& req : requests) {
    const auto [r, c] = alloc.allocate(req.size);
    tiles.push_back({req.y, r, c, req.size});
  }
  std::sort(tiles.begin(), tiles.end(),
            [](const Tile& a, const Tile& b) { return a.y < b.y; });
  return tiles;
}

namespace {

/// Fallback for tiny cliques: every node learns the whole graph (O(1)
/// rounds at bounded n) and checks for a 4-cycle locally.
FourCycleOutcome detect_small(const Graph& g) {
  const int n = g.n();
  clique::Network net(n);
  std::vector<std::vector<clique::Word>> per_node(
      static_cast<std::size_t>(n));
  for (int u = 0; u < n; ++u)
    for (const auto& [v, w] : g.out_arcs(u)) {
      (void)w;
      if (u < v)
        per_node[static_cast<std::size_t>(u)].push_back(pack_pair(u, v));
    }
  const auto edges = clique::disseminate(net, per_node);

  // Codegree check on the learned graph.
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (const auto w : edges) {
    const auto [u, v] = unpack_pair(w);
    adj[static_cast<std::size_t>(u)].push_back(v);
    adj[static_cast<std::size_t>(v)].push_back(u);
  }
  for (int u = 0; u < n; ++u)
    for (int w = u + 1; w < n; ++w) {
      int codeg = 0;
      for (const int x : adj[static_cast<std::size_t>(u)])
        if (x != w &&
            std::find(adj[static_cast<std::size_t>(w)].begin(),
                      adj[static_cast<std::size_t>(w)].end(),
                      x) != adj[static_cast<std::size_t>(w)].end())
          ++codeg;
      if (codeg >= 2) return {true, net.stats()};
    }
  return {false, net.stats()};
}

}  // namespace

FourCycleOutcome detect_4cycle_const(const Graph& g) {
  CCA_EXPECTS(!g.is_directed());
  const int n = g.n();
  if (n < 32) return detect_small(g);

  clique::Network net(n);
  // Genuinely full-ownership: the Lemma-12 tile relay stages from
  // tile-local sources and reads every node's inbox.
  clique::require_full_ownership(net, "detect_4cycle_const",
                                 "no sharded equivalent exists");

  // Round 1: every node broadcasts its degree.
  std::vector<clique::Word> deg_words(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v)
    deg_words[static_cast<std::size_t>(v)] =
        static_cast<clique::Word>(g.out_degree(v));
  const auto deg_all = clique::broadcast_all(net, std::move(deg_words));
  std::vector<std::int64_t> deg(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v)
    deg[static_cast<std::size_t>(v)] =
        static_cast<std::int64_t>(deg_all[static_cast<std::size_t>(v)]);

  // Phase 1: |P(x,*,*)| = sum_{y in N(x)} deg(y); >= 2n-1 forces a 4-cycle.
  std::vector<clique::Word> flags(static_cast<std::size_t>(n), 0);
  bool overflow = false;
  for (int x = 0; x < n; ++x) {
    std::int64_t walks = 0;
    for (const auto& [y, w] : g.out_arcs(x)) {
      (void)w;
      walks += deg[static_cast<std::size_t>(y)];
    }
    if (walks >= 2 * static_cast<std::int64_t>(n) - 1) {
      flags[static_cast<std::size_t>(x)] = 1;
      overflow = true;
    }
  }
  (void)clique::broadcast_all(net, std::move(flags));
  if (overflow) return {true, net.stats()};

  // Phase 2: Lemma 12 tiling (computed identically at every node).
  const auto tiles = lemma12_tiling(deg, n);
  std::vector<int> tile_of(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < tiles.size(); ++i)
    tile_of[static_cast<std::size_t>(tiles[i].y)] = static_cast<int>(i);

  // Sorted neighbour lists define the deterministic chunking: chunk i of
  // N(y) is the index range [i*deg/f, (i+1)*deg/f), of size at most 8.
  auto sorted_neighbours = [&](int y) {
    std::vector<int> nb;
    nb.reserve(g.out_arcs(y).size());
    for (const auto& [v, w] : g.out_arcs(y)) {
      (void)w;
      nb.push_back(v);
    }
    std::sort(nb.begin(), nb.end());
    return nb;
  };
  auto chunk_range = [&](std::int64_t degree, int f, int i) {
    const auto lo = static_cast<std::int64_t>(i) * degree / f;
    const auto hi = static_cast<std::int64_t>(i + 1) * degree / f;
    return std::pair<int, int>{static_cast<int>(lo), static_cast<int>(hi)};
  };

  // Step 1: y scatters chunk i of N(y) to tile-row node A(y)[i] = row0 + i.
  // Each tile has a distinct owner y (the sender), so tiles stage in
  // parallel; chunk words write straight into the staged span.
  parallel_for(0, static_cast<int>(tiles.size()), [&](int ti) {
    const auto& t = tiles[static_cast<std::size_t>(ti)];
    const auto nb = sorted_neighbours(t.y);
    for (int i = 0; i < t.size; ++i) {
      const auto [lo, hi] =
          chunk_range(static_cast<std::int64_t>(nb.size()), t.size, i);
      if (lo == hi) continue;
      // t.y is this tile's unique owner (tiles partition the y sources —
      // see the Step 1 comment above), so per-iteration src disjointness
      // holds without src == ti.
      // lint:allow(parallel-staging-src): tiles partition the y sources
      const auto span = net.stage(t.y, t.row0 + i,
                                  static_cast<std::size_t>(hi - lo));
      for (int idx = lo; idx < hi; ++idx)
        span[static_cast<std::size_t>(idx - lo)] =
            static_cast<clique::Word>(nb[static_cast<std::size_t>(idx)]);
    }
  });
  net.deliver();

  // Step 2: tile-row node a forwards its chunk of N(y) to every tile-column
  // node b in B(y); at most one tile covers any ordered pair (a, b), so
  // every link carries at most 8 words — delivered directly. The inbox
  // views stay valid while staging (only deliver() rebuilds the arena), so
  // a forwards zero-copy from its inbox span, in parallel over senders a.
  // The lease revalidates that invariant at each use under analysis
  // checking (and is a plain span read otherwise).
  parallel_for(0, n, [&](int a) {
    for (const auto& t : tiles) {
      if (a < t.row0 || a >= t.row0 + t.size) continue;
      const analysis::InboxLease<clique::Network> words(net, a, t.y);
      for (int b = t.col0; b < t.col0 + t.size; ++b)
        // lint:allow(full-range-staging): owns_all() validated at entry.
        net.send_words(a, b, words.span());
    }
  });
  net.deliver(clique::Router::Direct);

  // Step 3 (local) + final gather: b reassembles N(y) for its tiles, forms
  // W(y,b) = N(y) x {y} x NB(y,b), and routes each 2-walk (x, y, z) to x.
  // Senders b are distinct per iteration, so the loop runs parallel.
  parallel_for(0, n, [&](int b) {
    for (const auto& t : tiles) {
      if (b < t.col0 || b >= t.col0 + t.size) continue;
      // Chunks arrive from a = row0..row0+size-1 in rank order.
      std::vector<int> ny;
      ny.reserve(static_cast<std::size_t>(deg[static_cast<std::size_t>(t.y)]));
      for (int i = 0; i < t.size; ++i) {
        const auto words = net.inbox(b, t.row0 + i);
        for (const auto w : words) ny.push_back(static_cast<int>(w));
      }
      CCA_ASSERT(static_cast<std::int64_t>(ny.size()) ==
                 deg[static_cast<std::size_t>(t.y)]);
      const int j = b - t.col0;
      const auto [lo, hi] =
          chunk_range(static_cast<std::int64_t>(ny.size()), t.size, j);
      for (int zi = lo; zi < hi; ++zi) {
        const int z = ny[static_cast<std::size_t>(zi)];
        for (const int x : ny)
          // lint:allow(full-range-staging): owns_all() validated at entry.
          net.send(b, x, pack_pair(t.y, z));
      }
    }
  });
  net.deliver();

  // Step 4: x scans its gathered P(x,*,*) for a repeated endpoint z != x.
  std::vector<clique::Word> found_flags(static_cast<std::size_t>(n), 0);
  bool found = false;
  {
    std::vector<int> count(static_cast<std::size_t>(n), 0);
    for (int x = 0; x < n; ++x) {
      std::vector<int> touched;
      for (int b = 0; b < n; ++b) {
        for (const auto w : net.inbox(x, b)) {
          const auto [y, z] = unpack_pair(w);
          (void)y;
          if (z == x) continue;
          if (++count[static_cast<std::size_t>(z)] == 2) {
            found = true;
            found_flags[static_cast<std::size_t>(x)] = 1;
          }
          touched.push_back(z);
        }
      }
      for (const int z : touched) count[static_cast<std::size_t>(z)] = 0;
    }
  }
  (void)clique::broadcast_all(net, std::move(found_flags));
  return {found, net.stats()};
}

}  // namespace cca::core
