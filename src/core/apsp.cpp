#include "core/apsp.hpp"

#include <algorithm>

#include "clique/fault.hpp"
#include "clique/primitives.hpp"
#include "core/distance_product.hpp"
#include "core/mm.hpp"
#include "matrix/semiring.hpp"
#include "util/contracts.hpp"
#include "util/math.hpp"

namespace cca::core {

namespace {

constexpr std::int64_t kInf = MinPlusSemiring::kInf;

/// Squarings needed so that paths of up to n-1 edges are covered.
int squaring_iterations(int n) {
  int iters = 0;
  std::int64_t hops = 1;
  while (hops < n - 1) {
    hops *= 2;
    ++iters;
  }
  return iters;
}

/// One broadcast round teaches every node the global maximum finite entry
/// (each node contributes its row maximum).
///
/// Unsigned round-trip audit: the maxima travel as raw Words, so a
/// NEGATIVE entry would be corrupted twice over — max-folded against the
/// 0 initialiser (silently clamped) and, had it won, reinterpreted as a
/// huge unsigned value by the receivers' fold. That cannot happen here:
/// the only caller is apsp_approx, whose entry contract
/// (CCA_EXPECTS(w >= 0) on every arc) keeps every finite entry of every
/// iterate non-negative. The assert pins that PER ENTRY, where a negative
/// value would actually appear — asserting on row_max would be vacuous,
/// since the fold starts at 0. Negative-weight APSP goes through
/// apsp_semiring, whose witness codec bit-casts entries instead
/// (regression in test_apsp.cpp).
std::int64_t broadcast_max_finite(clique::Network& net,
                                  const Matrix<std::int64_t>& d, int n) {
  // Each rank contributes only its OWNED rows' maxima (the only
  // authoritative ones under sharding; non-owned slots stay 0, inert in
  // the fold) — the broadcast then makes the global maximum common
  // knowledge on every rank.
  const clique::NodeSpan own = net.owned();
  std::vector<clique::Word> words(static_cast<std::size_t>(net.n()), 0);
  for (int u = own.begin; u < std::min(own.end, n); ++u) {
    std::int64_t row_max = 0;
    for (int v = 0; v < d.cols(); ++v)
      if (d(u, v) < kInf) {
        CCA_ASSERT(d(u, v) >= 0);  // would alias as an unsigned maximum
        row_max = std::max(row_max, d(u, v));
      }
    words[static_cast<std::size_t>(u)] = static_cast<clique::Word>(row_max);
  }
  const auto all = clique::broadcast_all(net, std::move(words));
  std::int64_t best = 0;
  for (const auto w : all)
    best = std::max(best, static_cast<std::int64_t>(w));
  return best;
}

/// Re-replicates a row-distributed big x big iterate: each rank packs its
/// OWNED rows and the allgather rebuilds the non-owned ones, after which
/// every rank holds the identical matrix (no-op in-process). Seidel's
/// recursion reads full iterates at every level — stability scans, the
/// degree column sums, and the Lemma 17 parity test — so its products'
/// outputs are repaired to common knowledge right after each multiply
/// instead of rewriting every scan to owned ranges.
void replicate_rows(clique::Network& net, Matrix<std::int64_t>& m) {
  if (net.owns_all()) return;
  const int big = net.n();
  CCA_EXPECTS(m.rows() == big && m.cols() == big);
  const clique::NodeSpan own = net.owned();
  const auto cols = static_cast<std::size_t>(big);
  std::vector<std::size_t> offsets(static_cast<std::size_t>(big) + 1, 0);
  for (int v = 0; v < big; ++v)
    offsets[static_cast<std::size_t>(v) + 1] =
        offsets[static_cast<std::size_t>(v)] + cols;
  std::vector<clique::Word> data(offsets[static_cast<std::size_t>(big)], 0);
  for (int v = own.begin; v < own.end; ++v)
    for (std::size_t j = 0; j < cols; ++j)
      data[offsets[static_cast<std::size_t>(v)] + j] =
          static_cast<clique::Word>(m(v, static_cast<int>(j)));
  net.allgather_node_blocks(data, offsets);
  for (int v = 0; v < big; ++v) {
    if (own.contains(v)) continue;
    for (std::size_t j = 0; j < cols; ++j)
      m(v, static_cast<int>(j)) = static_cast<std::int64_t>(
          data[offsets[static_cast<std::size_t>(v)] + j]);
  }
}

ApspOutcome make_trivial(const Graph& g) {
  ApspOutcome out;
  const int n = g.n();
  out.dist = Matrix<std::int64_t>(n, n, kInf);
  out.next_hop = Matrix<int>(n, n, -1);
  for (int v = 0; v < n; ++v) out.dist(v, v) = 0;
  return out;
}

}  // namespace

ApspOutcome apsp_semiring(const Graph& g, MmKind kind) {
  CCA_VALIDATE(kind == MmKind::Auto || kind == MmKind::Semiring3D,
               "apsp_semiring supports MmKind::Auto and MmKind::Semiring3D");
  const int n = g.n();
  if (n <= 1) return make_trivial(g);

  const int big = semiring_clique_size(n);
  clique::Network net(big);
  // Sharded execution (an ambient TransportScope made the internal Network
  // a proper shard): both engines read and write only owned rows, so the
  // iteration is self-consistent — Auto's nnz census announces owned rows
  // and rebuilds the non-owned pattern rows as common knowledge, so every
  // rank reaches the identical dispatch (non-owned iterate rows are the
  // semiring zero after the first squaring, exactly what the census
  // repairs). On return only the owned rows of dist/next_hop are
  // authoritative.
  const clique::NodeSpan own = net.owned();

  auto d = pad_matrix(g.weight_matrix(), big, kInf);
  Matrix<int> next(n, n, -1);
  for (int u = 0; u < n; ++u)
    for (const auto& [v, w] : g.out_arcs(u)) {
      (void)w;
      next(u, v) = v;
    }

  // Upper bound on the squarings ever needed; the convergence vote below
  // exits as soon as an iterate stops improving. The dispatch context
  // carries the per-iteration nnz dispatch (Auto): sparse rounds while the
  // iterate is mostly infinite, a locked dense engine once it fills in.
  const int iters = squaring_iterations(n);
  MmDispatchContext ctx;
  for (int it = 0; it < iters; ++it) {
    // Crash recovery: a squaring that dies mid-protocol (typed PeerFailure
    // out of a hardened deliver) restarts from the CURRENT iterate after
    // charged liveness votes — sound because min-plus squaring is
    // idempotent, so re-squaring an iterate never overshoots the fixpoint.
    auto [d2, q] = clique::with_peer_recovery(net, [&] {
      return kind == MmKind::Auto ? dp_semiring_witness_auto(net, d, d, &ctx)
                                  : dp_semiring_witness(net, d, d);
    });
    // Improvement flags feed the convergence vote; entries outside the
    // real n x n corner are inert (padded rows are all-infinite), so
    // scanning the real rows is exact. Each rank scans only its OWNED
    // rows (the only authoritative ones under sharding; everything
    // in-process) — the vote broadcast below syncs the rest.
    std::vector<clique::Word> improved_row(static_cast<std::size_t>(big), 0);
    for (int u = own.begin; u < std::min(own.end, n); ++u)
      for (int v = 0; v < n; ++v) {
        if (d2(u, v) >= d(u, v)) continue;
        improved_row[static_cast<std::size_t>(u)] = 1;
        const int w = q(u, v);
        CCA_ASSERT(w >= 0 && w < n && w != u);
        // The witness w splits the improved path; its first hop is already
        // known at node u (routing-table invariant of Section 3.3).
        next(u, v) = next(u, w);
      }
    d = std::move(d2);
    if (it + 1 == iters) break;  // hop bound reached: nothing to decide
    // Convergence vote, charged for real like agree_on_seed: every node
    // announces "did any entry of my row improve" (one word per link, 1
    // round) and everyone exits together when nobody improved — min-plus
    // squaring is monotone, so a fixed point stays fixed. Deriving the
    // exit decision from the BROADCAST flags makes it identical on every
    // rank of a sharded run (and unchanged in-process). The seed ran all
    // squaring_iterations(n) squarings regardless, paying full dense
    // supersteps to square an already-idempotent matrix.
    improved_row = clique::broadcast_all(net, std::move(improved_row));
    const bool improved =
        std::any_of(improved_row.begin(), improved_row.end(),
                    [](clique::Word f) { return f != 0; });
    if (!improved) break;
  }

  ApspOutcome out;
  out.dist = d.block(0, 0, n, n);
  out.next_hop = std::move(next);
  for (int v = 0; v < n; ++v) CCA_ENSURES(out.dist(v, v) >= 0);
  out.traffic = net.stats();
  out.engine_trace = std::move(ctx.trace);
  return out;
}

ApspBatchOutcome apsp_semiring_batch(std::span<const Graph> gs,
                                     MmKind kind) {
  CCA_VALIDATE(kind == MmKind::Auto || kind == MmKind::Semiring3D,
               "apsp_semiring_batch supports MmKind::Auto and "
               "MmKind::Semiring3D");
  const std::size_t batch = gs.size();
  CCA_VALIDATE(batch >= 1, "batch must contain at least one graph");
  ApspBatchOutcome out;
  int max_n = 1;
  for (const auto& g : gs) max_n = std::max(max_n, g.n());
  if (max_n <= 1) {
    for (const auto& g : gs) {
      auto t = make_trivial(g);
      out.dist.push_back(std::move(t.dist));
      out.next_hop.push_back(std::move(t.next_hop));
    }
    return out;
  }

  const int big = semiring_clique_size(max_n);
  clique::Network net(big);
  // Sharded execution mirrors apsp_semiring: each rank scans only its
  // owned rows of every member's iterate, and the convergence vote below
  // derives its exit from the BROADCAST flags, so every rank exits the
  // same iteration. On return only the owned rows of each dist/next_hop
  // are authoritative.
  const clique::NodeSpan own = net.owned();

  // Padded per-graph state; graphs smaller than max_n simply carry inert
  // infinite rows. Extra squarings past a small graph's own log n are
  // no-ops (its min-plus matrix is already idempotent), so one shared
  // iteration count is exact for every graph.
  std::vector<Matrix<std::int64_t>> d(batch);
  std::vector<Matrix<int>> next(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    d[b] = pad_matrix(gs[b].weight_matrix(), big, kInf);
    next[b] = Matrix<int>(gs[b].n(), gs[b].n(), -1);
    for (int u = 0; u < gs[b].n(); ++u)
      for (const auto& [v, w] : gs[b].out_arcs(u)) {
        (void)w;
        next[b](u, v) = v;
      }
  }

  const int iters = squaring_iterations(max_n);
  MmDispatchContext ctx;
  for (int it = 0; it < iters; ++it) {
    // One batched witness-carrying squaring: every graph's (d, d) product
    // rides the same two supersteps (nnz-dispatched as a batch under
    // Auto), and the schedule cache replays the Koenig schedule across
    // iterations.
    // Same idempotent-restart recovery as apsp_semiring: the whole batched
    // squaring re-runs from the members' current iterates.
    auto sq = clique::with_peer_recovery(net, [&] {
      return kind == MmKind::Auto
                 ? dp_semiring_witness_batch_auto(
                       net, std::span<const Matrix<std::int64_t>>(d),
                       std::span<const Matrix<std::int64_t>>(d), &ctx)
                 : dp_semiring_witness_batch(
                       net, std::span<const Matrix<std::int64_t>>(d),
                       std::span<const Matrix<std::int64_t>>(d));
    });
    std::vector<clique::Word> improved_row(static_cast<std::size_t>(big), 0);
    for (std::size_t b = 0; b < batch; ++b) {
      const int n = gs[b].n();
      const auto& [d2, q] = sq[b];
      for (int u = own.begin; u < std::min(own.end, n); ++u)
        for (int v = 0; v < n; ++v) {
          if (d2(u, v) >= d[b](u, v)) continue;
          improved_row[static_cast<std::size_t>(u)] = 1;
          const int w = q(u, v);
          CCA_ASSERT(w >= 0 && w < n && w != u);
          next[b](u, v) = next[b](u, w);
        }
      d[b] = std::move(sq[b].dist);
    }
    if (it + 1 == iters) break;
    // Shared convergence vote: one round, exiting only when EVERY graph's
    // iterate stopped improving. Members that converge earlier ride along
    // unchanged (min-plus squaring is idempotent past convergence), which
    // is the same shared-iteration-count argument as the padding above —
    // so one vote word per node stays correct for early-exiting members.
    // The exit derives from the BROADCAST flags (not the local scan), so
    // every rank of a sharded run exits the same iteration.
    improved_row = clique::broadcast_all(net, std::move(improved_row));
    const bool improved =
        std::any_of(improved_row.begin(), improved_row.end(),
                    [](clique::Word f) { return f != 0; });
    if (!improved) break;
  }

  for (std::size_t b = 0; b < batch; ++b) {
    const int n = gs[b].n();
    out.dist.push_back(d[b].block(0, 0, n, n));
    out.next_hop.push_back(std::move(next[b]));
    for (int v = 0; v < n; ++v) CCA_ENSURES(out.dist.back()(v, v) >= 0);
  }
  out.traffic = net.stats();
  out.engine_trace = std::move(ctx.trace);
  return out;
}

ApspOutcome apsp_seidel(const Graph& g, MmKind kind, int depth) {
  CCA_VALIDATE(!g.is_directed(), "apsp_seidel requires an undirected graph");
  const int n = g.n();
  if (n <= 1) return make_trivial(g);

  const IntMmEngine engine(kind, n, depth);
  const int big = engine.clique_n();
  clique::Network net(big);
  // Sharded execution: every level's product output is re-replicated via
  // replicate_rows (see above), so the recursion's full-iterate scans stay
  // valid on every rank and the stability / parity decisions are common
  // knowledge. In-process the replication is a no-op and the level
  // structure is byte-identical to the historical run.

  // Recursive Seidel over 0/1 adjacency matrices (padded nodes isolated).
  // Distances use kInf for disconnected pairs; squared-graph stabilisation
  // replaces the paper's connectivity assumption. One dispatch context
  // serves every level's products: the downward squarings densify the
  // adjacency monotonically, and by the time the upward D2 * A products
  // run the iterate is dense, so the hysteresis lock is already in place.
  MmDispatchContext ctx;
  auto seidel = [&](auto&& self, const Matrix<std::int64_t>& a,
                    int depth_guard) -> Matrix<std::int64_t> {
    CCA_EXPECTS(depth_guard < 2 * ilog2(std::max(2, n)) + 4);

    // Adjacency of G^2: A2 = A*A over Z, then boolean OR with A (local).
    auto a2 = engine.multiply(net, a, a, &ctx);
    replicate_rows(net, a2);
    Matrix<std::int64_t> c(big, big, 0);
    bool stable = true;
    for (int i = 0; i < big; ++i)
      for (int j = 0; j < big; ++j) {
        c(i, j) = (i != j && (a(i, j) != 0 || a2(i, j) != 0)) ? 1 : 0;
        if (c(i, j) != a(i, j)) stable = false;
      }
    // Stability flags are OR-combined in one broadcast round.
    net.charge_rounds(1);

    if (stable) {
      Matrix<std::int64_t> d(big, big, kInf);
      for (int i = 0; i < big; ++i)
        for (int j = 0; j < big; ++j) {
          if (i == j)
            d(i, j) = 0;
          else if (a(i, j) != 0)
            d(i, j) = 1;
        }
      return d;
    }

    const auto d2 = self(self, c, depth_guard + 1);

    // Lemma 17: S = D2 * A over the integers (infinite entries of D2 are
    // replaced by 0, which is sound: they pair only with A[k,v] = 0 for v
    // in the same component as u).
    Matrix<std::int64_t> d2z(big, big, 0);
    for (int i = 0; i < big; ++i)
      for (int j = 0; j < big; ++j)
        if (d2(i, j) < kInf) d2z(i, j) = d2(i, j);
    auto s = engine.multiply(net, d2z, a, &ctx);
    replicate_rows(net, s);

    // One broadcast round teaches every node all degrees of this level.
    net.charge_rounds(1);
    std::vector<std::int64_t> deg(static_cast<std::size_t>(big), 0);
    for (int v = 0; v < big; ++v) {
      std::int64_t dv = 0;
      for (int u = 0; u < big; ++u) dv += a(u, v);
      deg[static_cast<std::size_t>(v)] = dv;
    }

    Matrix<std::int64_t> d(big, big, kInf);
    for (int u = 0; u < big; ++u)
      for (int v = 0; v < big; ++v) {
        if (u == v) {
          d(u, v) = 0;
          continue;
        }
        if (d2(u, v) >= kInf) continue;  // different components
        const auto duv2 = d2(u, v);
        d(u, v) = (s(u, v) >= duv2 * deg[static_cast<std::size_t>(v)])
                      ? 2 * duv2
                      : 2 * duv2 - 1;
      }
    return d;
  };

  const auto a = pad_matrix(g.adjacency(), big, std::int64_t{0});
  const auto dist = seidel(seidel, a, 0);

  ApspOutcome out;
  out.dist = dist.block(0, 0, n, n);
  out.traffic = net.stats();
  out.engine_trace = std::move(ctx.trace);
  return out;
}

namespace {

/// Lemma 19 core: iterated bounded squaring on an existing clique. `ctx`
/// (optional) routes every embedded product through the nnz-adaptive
/// dispatcher — the clamped iterate densifies monotonically, so the
/// context's hysteresis is sound across the squarings.
Matrix<std::int64_t> bounded_squaring(clique::Network& net,
                                      const BilinearAlgorithm& alg,
                                      Matrix<std::int64_t> d, int n,
                                      std::int64_t m_bound,
                                      MmDispatchContext* ctx = nullptr) {
  auto clamp = [&](Matrix<std::int64_t>& x) {
    for (int i = 0; i < x.rows(); ++i)
      for (int j = 0; j < x.cols(); ++j)
        if (x(i, j) > m_bound) x(i, j) = kInf;
  };
  clamp(d);
  const int iters = squaring_iterations(n);
  for (int it = 0; it < iters; ++it) {
    d = dp_ring_embedded(net, alg, d, d, m_bound, ctx);
    clamp(d);
  }
  return d;
}

}  // namespace

ApspOutcome apsp_bounded(const Graph& g, std::int64_t m_bound, int depth) {
  CCA_VALIDATE(m_bound >= 0, "distance bound M must be >= 0");
  const int n = g.n();
  if (n <= 1) return make_trivial(g);
  for (int u = 0; u < n; ++u)
    for (const auto& [v, w] : g.out_arcs(u)) {
      (void)v;
      CCA_VALIDATE(w >= 0, "apsp_bounded requires non-negative weights");
    }

  const FastPlan plan =
      depth >= 0 ? plan_fast_mm(n, depth) : plan_fast_mm_auto(n);
  const auto alg = tensor_power(strassen_algorithm(), plan.depth);
  clique::Network net(plan.clique_n);
  // Sharded execution rides the nnz-adaptive dispatcher inside
  // dp_ring_embedded (the ctx below routes every embedded product through
  // it), which drops the full-ownership bilinear candidate when sharded;
  // on return only the owned rows of dist are authoritative (the clamp is
  // elementwise, so garbage non-owned rows stay inert).

  const auto w0 = pad_matrix(g.weight_matrix(), plan.clique_n, kInf);
  MmDispatchContext ctx;
  const auto d = bounded_squaring(net, alg, w0, n, m_bound, &ctx);

  ApspOutcome out;
  out.dist = d.block(0, 0, n, n);
  out.traffic = net.stats();
  out.engine_trace = std::move(ctx.trace);
  return out;
}

ApspOutcome apsp_small_diameter(const Graph& g, int depth) {
  const int n = g.n();
  if (n <= 1) return make_trivial(g);
  for (int u = 0; u < n; ++u)
    for (const auto& [v, w] : g.out_arcs(u)) {
      (void)v;
      // Corollary 8: positive integer weights.
      CCA_VALIDATE(w >= 1,
                   "apsp_small_diameter requires positive integer weights");
    }

  const FastPlan plan =
      depth >= 0 ? plan_fast_mm(n, depth) : plan_fast_mm_auto(n);
  const auto alg = tensor_power(strassen_algorithm(), plan.depth);
  const int big = plan.clique_n;
  clique::Network net(big);
  // Genuinely full-ownership: both the reachability closure and the
  // ctx-less bounded squarings run the fixed bilinear engine directly,
  // and the completeness check scans the full distance iterate.
  clique::require_full_ownership(
      net, "apsp_small_diameter",
      "use apsp_bounded or apsp_semiring for sharded runs");

  // (1) Reachability closure by Boolean squaring (entries clamped to 0/1).
  const IntRing ring;
  const I64Codec codec;
  Matrix<std::int64_t> reach = pad_matrix(g.adjacency(), big, std::int64_t{0});
  for (int v = 0; v < big; ++v) reach(v, v) = 1;
  for (int it = 0; it < squaring_iterations(n) + 1; ++it) {
    auto r2 = mm_fast_bilinear(net, ring, codec, alg, reach, reach);
    for (int i = 0; i < big; ++i)
      for (int j = 0; j < big; ++j) reach(i, j) = r2(i, j) != 0 ? 1 : 0;
  }

  // (2)+(3) Guess U, compute distances up to U, check completeness (one
  // flag broadcast per guess), and double until every reachable pair is
  // covered.
  const auto w0 = pad_matrix(g.weight_matrix(), big, kInf);
  std::int64_t u_guess = 1;
  for (;;) {
    const auto d = bounded_squaring(net, alg, w0, n, u_guess);
    bool complete = true;
    for (int a = 0; a < n && complete; ++a)
      for (int b = 0; b < n; ++b)
        if (reach(a, b) != 0 && d(a, b) >= kInf) {
          complete = false;
          break;
        }
    net.charge_rounds(1);  // completeness flags
    if (complete) {
      ApspOutcome out;
      out.dist = d.block(0, 0, n, n);
      out.traffic = net.stats();
      return out;
    }
    u_guess *= 2;
    CCA_ASSERT(u_guess <= static_cast<std::int64_t>(n) * (std::int64_t{1} << 40));
  }
}

ApspOutcome apsp_approx(const Graph& g, double delta, int depth) {
  CCA_VALIDATE(delta > 0, "approximation parameter delta must be > 0");
  const int n = g.n();
  if (n <= 1) return make_trivial(g);
  for (int u = 0; u < n; ++u)
    for (const auto& [v, w] : g.out_arcs(u)) {
      (void)v;
      CCA_VALIDATE(w >= 0, "apsp_approx requires non-negative weights");
    }

  const FastPlan plan =
      depth >= 0 ? plan_fast_mm(n, depth) : plan_fast_mm_auto(n);
  const auto alg = tensor_power(strassen_algorithm(), plan.depth);
  clique::Network net(plan.clique_n);
  // Sharded execution mirrors apsp_bounded: the ctx routes every level's
  // embedded product through the nnz-adaptive dispatcher (bilinear
  // candidate dropped when sharded), broadcast_max_finite folds only owned
  // rows, and dp_approx's admission scans skip infinite entries — so the
  // garbage non-owned rows of the iterate never feed a decision. On return
  // only the owned rows of dist are authoritative.

  auto d = pad_matrix(g.weight_matrix(), plan.clique_n, kInf);
  const int iters = squaring_iterations(n);
  // One context across all iterations AND approximation levels: the
  // admission windows widen level over level and the distances only
  // decrease iteration over iteration, so the embedded products' nonzero
  // patterns grow monotonically — the hysteresis precondition.
  MmDispatchContext ctx;
  for (int it = 0; it < iters; ++it) {
    const auto m_cur = broadcast_max_finite(net, d, n);
    d = dp_approx(net, alg, d, d, m_cur, delta, &ctx);
  }

  ApspOutcome out;
  out.dist = d.block(0, 0, n, n);
  out.traffic = net.stats();
  out.engine_trace = std::move(ctx.trace);
  return out;
}

ApspOutcome apsp_approx_auto(const Graph& g, int depth) {
  // The (1+o(1)) delta schedule: delta(n) = 1/ceil(log2 n)^2 gives
  // (1 + delta)^ceil(log2 n) <= exp(1/ceil(log2 n)) = 1 + o(1).
  const int log_n = ilog2(std::max(2, g.n() - 1)) + 1;
  const double delta = 1.0 / (static_cast<double>(log_n) * log_n);
  return apsp_approx(g, delta, depth);
}

Matrix<int> routing_table_from_distances(const Graph& g,
                                         const Matrix<std::int64_t>& dist,
                                         clique::TrafficStats* traffic) {
  const int n = g.n();
  CCA_VALIDATE(dist.rows() == n && dist.cols() == n,
               "distance matrix dimensions must match the graph");
  Matrix<int> next(n, n, -1);
  if (n <= 1) return next;

  const int big = semiring_clique_size(n);
  clique::Network net(big);
  // Sharded execution: `dist` must be replicated on every rank (it is an
  // INPUT, exactly like the graph); the witness product then fills only
  // owned rows, so the verification scan and the table below cover the
  // owned range — on return only the owned rows of `next` are
  // authoritative.
  const clique::NodeSpan own = net.owned();

  // W with an infinite diagonal: the witness of min_w W(u,w) + D(w,v) is
  // then a genuine outgoing arc, i.e. a valid first hop.
  auto w = pad_matrix(g.weight_matrix(), big, kInf);
  for (int v = 0; v < n; ++v) w(v, v) = kInf;
  const auto d = pad_matrix(dist, big, kInf);

  const auto [prod, wit] = clique::with_peer_recovery(
      net, [&] { return dp_semiring_witness(net, w, d); });
  for (int u = own.begin; u < std::min(own.end, n); ++u)
    for (int v = 0; v < n; ++v) {
      if (u == v || dist(u, v) >= kInf) continue;
      // A true distance matrix satisfies prod == dist off the diagonal.
      CCA_ASSERT(prod(u, v) == dist(u, v));
      next(u, v) = wit(u, v);
    }
  if (traffic != nullptr) *traffic = net.stats();
  return next;
}

}  // namespace cca::core
