#include "core/color_coding.hpp"

#include <cmath>
#include <map>

#include "clique/broadcast.hpp"
#include "clique/primitives.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace cca::core {

namespace {

int popcount(unsigned mask) { return __builtin_popcount(mask); }

class ColourfulPathFinder {
 public:
  ColourfulPathFinder(clique::Network& net, const IntMmEngine& engine,
                      const Matrix<std::int64_t>& a,
                      const std::vector<int>& colour)
      : net_(net), engine_(engine), a_(a), colour_(colour) {}

  /// C^(X): Boolean matrix of colourful |X|-vertex paths (as 0/1 integers).
  const Matrix<std::int64_t>& paths(unsigned mask) {
    if (const auto it = memo_.find(mask); it != memo_.end()) return it->second;
    const int big = net_.n();
    Matrix<std::int64_t> c(big, big, 0);
    if (popcount(mask) == 1) {
      const int colour_bit = __builtin_ctz(mask);
      for (int v = 0; v < static_cast<int>(colour_.size()); ++v)
        if (colour_[static_cast<std::size_t>(v)] == colour_bit) c(v, v) = 1;
    } else {
      const int half = (popcount(mask) + 1) / 2;
      // Enumerate submasks Y of `mask` with |Y| = ceil(|X|/2).
      for (unsigned y = mask; y > 0; y = (y - 1) & mask) {
        if (popcount(y) != half) continue;
        const auto& left = paths(y);
        const auto& right = paths(mask ^ y);
        auto la = engine_.multiply(net_, left, a_);
        auto lar = engine_.multiply(net_, la, right);
        for (int i = 0; i < big; ++i)
          for (int j = 0; j < big; ++j)
            if (lar(i, j) != 0) c(i, j) = 1;
      }
    }
    return memo_.emplace(mask, std::move(c)).first->second;
  }

 private:
  clique::Network& net_;
  const IntMmEngine& engine_;
  const Matrix<std::int64_t>& a_;
  const std::vector<int>& colour_;
  std::map<unsigned, Matrix<std::int64_t>> memo_;
};

}  // namespace

bool detect_colourful_cycle(clique::Network& net, const IntMmEngine& engine,
                            const Matrix<std::int64_t>& a, const Graph& g,
                            const std::vector<int>& colour, int k) {
  CCA_EXPECTS(k >= 2 && k <= 20);
  CCA_EXPECTS(static_cast<int>(colour.size()) == g.n());
  CCA_EXPECTS(net.n() == engine.clique_n());
  const unsigned full = (1u << k) - 1;
  ColourfulPathFinder finder(net, engine, a, colour);
  const auto& c = finder.paths(full);

  // Close the cycle: node u knows its in-arcs, so checking C[u,v] && (v,u)
  // in E is local; one broadcast round ORs the per-node flags.
  const int n = g.n();
  std::vector<clique::Word> flags(static_cast<std::size_t>(net.n()), 0);
  for (int u = 0; u < n; ++u) {
    for (const auto& [v, w] : g.in_arcs(u)) {
      (void)w;
      if (c(u, v) != 0) {
        flags[static_cast<std::size_t>(u)] = 1;
        break;
      }
    }
  }
  const auto all = clique::broadcast_all(net, std::move(flags));
  for (const auto f : all)
    if (f != 0) return true;
  return false;
}

DetectOutcome detect_k_cycle_cc(const Graph& g, int k, std::uint64_t seed,
                                int max_trials, MmKind kind, int depth) {
  const int n = g.n();
  CCA_EXPECTS(k >= (g.is_directed() ? 2 : 3));
  const IntMmEngine engine(kind, n, depth);
  clique::Network net(engine.clique_n());

  if (k > n) return {false, 0, net.stats()};

  const auto a = pad_matrix(g.adjacency(), engine.clique_n(), std::int64_t{0});

  if (max_trials < 0) {
    const double bound =
        std::exp(k) * std::log(std::max(2.0, static_cast<double>(n)));
    max_trials = static_cast<int>(std::ceil(bound));
  }

  // One round establishes the shared seed for the colouring sequence —
  // staged and delivered through the network so the broadcast's words are
  // accounted, not just its round.
  Rng rng(clique::agree_on_seed(net, 0, seed));

  DetectOutcome out;
  std::vector<int> colour(static_cast<std::size_t>(n));
  for (int trial = 0; trial < max_trials; ++trial) {
    for (auto& c : colour)
      c = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(k)));
    ++out.trials;
    if (detect_colourful_cycle(net, engine, a, g, colour, k)) {
      out.found = true;
      break;
    }
  }
  out.traffic = net.stats();
  return out;
}

}  // namespace cca::core
