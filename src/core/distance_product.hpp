// Distance (min-plus / tropical) products on the congested clique
// (paper Section 3.3).
//
//  * dp_semiring          — exact product via the 3D semiring algorithm.
//  * dp_semiring_witness  — same, also returning a witness matrix Q with
//                           P[u,v] = S[u,Q[u,v]] + T[Q[u,v],v] (the "easily
//                           modified to produce witnesses" of Section 3.3).
//  * dp_ring_embedded     — Lemma 18: embeds the product into the ring
//                           Z[X]/X^{2M+1} and runs the FAST multiplication;
//                           O(M n^rho) rounds.
//  * dp_approx            — Lemma 20: a (1+delta)-approximate product from
//                           O(log_{1+delta} M) scaled exact products with
//                           O(1/delta)-bounded entries.
//
// Distances use MinPlusSemiring::kInf as infinity throughout.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "clique/network.hpp"
#include "matrix/bilinear.hpp"
#include "matrix/matrix.hpp"
#include "matrix/semiring.hpp"

namespace cca::core {

struct MmDispatchContext;  // core/mm.hpp — iterated-dispatch state

/// Exact distance product P = S * T (min-plus) in O(n^{1/3}) rounds.
/// Requires net.n() == dimension of S, T and a perfect cube.
[[nodiscard]] Matrix<std::int64_t> dp_semiring(clique::Network& net,
                                               const Matrix<std::int64_t>& s,
                                               const Matrix<std::int64_t>& t);

/// Exact distance product via the FIXED sparse engine: finite entries are
/// the min-plus nonzeros (kInf is the annihilating semiring zero the
/// documented Semiring contract licenses skipping), so rounds scale with
/// the finite-entry volume. Any net.n() == dimension is admissible.
[[nodiscard]] Matrix<std::int64_t> dp_semiring_sparse(
    clique::Network& net, const Matrix<std::int64_t>& s,
    const Matrix<std::int64_t>& t);

/// Sparsity-sensitive exact distance product: finite entries are the
/// min-plus nonzeros, so a graph with few edges (most pairs at infinity)
/// announces its per-row finite counts in one round and dispatches to the
/// sparse engine when its planned rounds beat the dense 3D path — the
/// engine-level hook that makes the output of the first few APSP squarings
/// (still mostly infinite) cheap before the distance matrix fills in.
/// Admits ANY net.n() == dimension (the 3D candidate needs a cube; the
/// sparse and naive candidates do not).
[[nodiscard]] Matrix<std::int64_t> dp_semiring_auto(
    clique::Network& net, const Matrix<std::int64_t>& s,
    const Matrix<std::int64_t>& t);

struct WitnessedProduct {
  Matrix<std::int64_t> dist;
  /// witness(u,v) = k with dist(u,v) = S(u,k) + T(k,v); -1 if dist is inf.
  Matrix<int> witness;
};

/// Exact distance product with witnesses (entries cost two words).
[[nodiscard]] WitnessedProduct dp_semiring_witness(
    clique::Network& net, const Matrix<std::int64_t>& s,
    const Matrix<std::int64_t>& t);

/// Witness-carrying distance product via the fixed sparse engine — the
/// sparse engine lifted to the min-plus-with-witness semiring, whose zero
/// {inf, -1} is an additive identity AND two-sided annihilator (infinite
/// entries lift to exactly that zero), so finite entries are the nonzeros
/// just as in dp_semiring_sparse. Distances AND witnesses are
/// element-identical to dp_semiring_witness: the lexicographic witness add
/// is a total-order min, so no merge order can change the chosen witness —
/// but callers should rely only on the documented witness contract
/// (dist(u,v) = S(u,Q(u,v)) + T(Q(u,v),v)), which is what the tests
/// assert. Any net.n() == dimension is admissible.
[[nodiscard]] WitnessedProduct dp_semiring_witness_sparse(
    clique::Network& net, const Matrix<std::int64_t>& s,
    const Matrix<std::int64_t>& t);

/// nnz-adaptive witnessed product: one announcement of per-row finite
/// counts, then whichever of the sparse / 3D witness engines plans fewer
/// rounds runs (mm_semiring_auto under the witness semiring). `ctx`
/// (optional) carries the densification hysteresis and engine trace across
/// iterated squarings — the hook apsp_semiring uses for per-iteration
/// dispatch: sparse rounds while the iterate is mostly infinite, a single
/// flip to the dense engine once squaring has filled it in.
[[nodiscard]] WitnessedProduct dp_semiring_witness_auto(
    clique::Network& net, const Matrix<std::int64_t>& s,
    const Matrix<std::int64_t>& t, MmDispatchContext* ctx = nullptr);

/// B independent witnessed distance products through SHARED supersteps
/// (mm_semiring_3d_batch under the witness-carrying semiring): one routing
/// schedule per superstep serves the whole batch. Results are
/// element-identical to B sequential dp_semiring_witness calls. This is the
/// engine under the multi-query APSP path (apsp_semiring_batch).
[[nodiscard]] std::vector<WitnessedProduct> dp_semiring_witness_batch(
    clique::Network& net, std::span<const Matrix<std::int64_t>> ss,
    std::span<const Matrix<std::int64_t>> ts);

/// Batched nnz-adaptive witnessed products through SHARED supersteps
/// (mm_semiring_auto_batch under the witness semiring): one B-word
/// announcement superstep, then either the batched sparse engine or the
/// batched 3D engine for the whole batch. Element-identical to B
/// dp_semiring_witness calls; the engine under apsp_semiring_batch.
[[nodiscard]] std::vector<WitnessedProduct> dp_semiring_witness_batch_auto(
    clique::Network& net, std::span<const Matrix<std::int64_t>> ss,
    std::span<const Matrix<std::int64_t>> ts,
    MmDispatchContext* ctx = nullptr);

/// Lemma 18: distance product of matrices with entries in {0,...,M} u {inf}
/// via the polynomial-ring embedding and the fast bilinear multiplication.
/// Entries greater than M (other than inf) are treated as inf.
/// Requires an admissible net for `alg` (see mm_fast_bilinear).
///
/// With `ctx` the embedded product goes through the nnz-adaptive
/// dispatcher instead of the fixed bilinear engine: zero polynomials (=
/// infinite distances) are the ring zeros, so a mostly-infinite iterate
/// pays sparse rounds until it densifies, with the context's hysteresis
/// across calls — the hook behind apsp_bounded / apsp_approx. ctx ==
/// nullptr keeps the historical fixed-engine path bit-identical.
[[nodiscard]] Matrix<std::int64_t> dp_ring_embedded(
    clique::Network& net, const BilinearAlgorithm& alg,
    const Matrix<std::int64_t>& s, const Matrix<std::int64_t>& t,
    std::int64_t m_bound, MmDispatchContext* ctx = nullptr);

/// Lemma 20: matrix P~ with P <= P~ <= (1+delta) P entrywise, where
/// P = S * T, for entries in {0,...,M} u {inf}. Uses
/// O(log_{1+delta} M) calls to dp_ring_embedded with entry bound O(1/delta).
/// `ctx` (optional) threads the per-product nnz dispatch through every
/// level's embedded product (admission windows widen level over level, so
/// the hysteresis stays monotone).
[[nodiscard]] Matrix<std::int64_t> dp_approx(clique::Network& net,
                                             const BilinearAlgorithm& alg,
                                             const Matrix<std::int64_t>& s,
                                             const Matrix<std::int64_t>& t,
                                             std::int64_t m_bound,
                                             double delta,
                                             MmDispatchContext* ctx = nullptr);

}  // namespace cca::core
