// Dispatcher over the three matrix-multiplication engines of Table 1:
// fast bilinear (Section 2.2), semiring 3D (Section 2.1), and the naive
// full-broadcast baseline. The graph applications (cycles, girth, APSP) are
// written against this interface so each can be benchmarked with either the
// paper's algorithm or the prior-work/baseline engine.
#pragma once

#include <span>
#include <vector>

#include "clique/network.hpp"
#include "core/mm.hpp"
#include "matrix/bilinear.hpp"
#include "matrix/codec.hpp"
#include "matrix/matrix.hpp"

namespace cca::core {

enum class MmKind {
  Fast,         ///< Section 2.2 with a Strassen tensor power (O(n^{0.288}))
  Semiring3D,   ///< Section 2.1 (O(n^{1/3}))
  Naive,        ///< everyone learns everything (O(n))
  /// nnz-adaptive dispatch: one announcement round, then whichever of the
  /// sparse engine / Semiring3D / Fast (when the padded clique admits it) /
  /// Naive has the fewest planned rounds for the ANNOUNCED nonzero counts
  /// runs (see mm_semiring_auto). The sparse choice reuses the announcement
  /// as its own step 0, so sparse inputs cost exactly mm_semiring_sparse;
  /// dense inputs cost the best dense engine plus the single announcement
  /// round.
  Auto,
};

/// Engine for integer (ring) products of n x n matrices on a clique.
/// Construction fixes the padded clique size; `multiply` then runs products
/// of that padded dimension.
class IntMmEngine {
 public:
  /// `n` is the problem dimension; `depth` forces the Strassen tensor power
  /// for MmKind::Fast (-1 = automatic, the paper's "fix d so m(d) = n").
  IntMmEngine(MmKind kind, int n, int depth = -1);

  [[nodiscard]] MmKind kind() const noexcept { return kind_; }
  /// Admissible clique (and padded matrix) dimension.
  [[nodiscard]] int clique_n() const noexcept { return clique_n_; }
  /// The engine's round exponent sigma-derived rho (for girth's threshold).
  /// Auto reports its density-independent worst case, 1/3: whatever the
  /// announced nnz, it never plans more rounds than Semiring3D plus the one
  /// announcement round, and the sparse dispatch can only improve on that —
  /// so girth's ell = ceil(2 + 2/rho) threshold stays valid as stated.
  [[nodiscard]] double rho() const noexcept;

  /// Product of clique_n() x clique_n() integer matrices. `ctx` (optional,
  /// Auto only) threads the per-iteration dispatch state of an ITERATED
  /// caller (Seidel levels, girth doubling, APSP squarings) through
  /// mm_semiring_auto: each call re-plans from the CURRENT iterate's nnz
  /// announcement, and the context's hysteresis stops re-announcing once a
  /// dense engine has won (see MmDispatchContext).
  [[nodiscard]] Matrix<std::int64_t> multiply(
      clique::Network& net, const Matrix<std::int64_t>& a,
      const Matrix<std::int64_t>& b, MmDispatchContext* ctx = nullptr) const;

  /// B independent products as[i] * bs[i] through SHARED supersteps (the
  /// multi-instance engine: one routing schedule per superstep carries all
  /// B per-pair messages concatenated). Results are element-identical to B
  /// sequential multiply() calls; for the Fast and Semiring3D kinds the
  /// batch costs strictly fewer total rounds than the B sequential calls
  /// whenever their supersteps leave link capacity idle. The Naive kind has
  /// no shared superstep to exploit (every broadcast already saturates all
  /// links) and degrades to the sequential loop.
  [[nodiscard]] std::vector<Matrix<std::int64_t>> multiply_batch(
      clique::Network& net, std::span<const Matrix<std::int64_t>> as,
      std::span<const Matrix<std::int64_t>> bs,
      MmDispatchContext* ctx = nullptr) const;

 private:
  MmKind kind_;
  int clique_n_;
  BilinearAlgorithm alg_;   // used by MmKind::Fast and Auto's fast candidate
  bool fast_ok_ = false;    // Auto: alg_ is admissible at clique_n_
};

}  // namespace cca::core
