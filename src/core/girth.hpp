// Girth computation on the congested clique (paper Theorem 15 for
// undirected graphs, Corollary 16 for directed graphs).
//
// Undirected: the Moore-bound trade-off (Lemma 14) says a graph with girth
// g has at most n^{1 + 1/floor((g-1)/2)} + n edges. So either the graph is
// sparse enough for every node to learn it outright (O(m/n) = O(n^rho)
// rounds via dissemination) or its girth is at most l = ceil(2 + 2/rho) and
// short-cycle detection finds it: k = 3 by exact triangle counting, k = 4 by
// the exact O(1)-round detector of Theorem 4, k >= 5 by colour-coding
// (one-sided Monte Carlo; a missed detection can only overestimate, and the
// final fallback learns the graph).
//
// Directed: iterated Boolean squaring B^(2i) = B^(i) B^(i) OR A finds the
// smallest power with a nonzero diagonal, then binary search pins the exact
// girth (Itai–Rodeh; O(log n) products).
#pragma once

#include <cstdint>

#include "clique/network.hpp"
#include "core/engine.hpp"
#include "graph/graph.hpp"

namespace cca::core {

struct GirthOutcome {
  /// Girth, or MinPlusSemiring::kInf when the graph is acyclic.
  std::int64_t girth = 0;
  bool used_sparse_path = false;  ///< undirected only: learned the graph
  clique::TrafficStats traffic;
};

/// Theorem 15. `trial_factor` scales the colour-coding trial counts used
/// for k >= 5 (the default suffices with high probability for test sizes).
[[nodiscard]] GirthOutcome girth_undirected_cc(const Graph& g,
                                               std::uint64_t seed,
                                               MmKind kind = MmKind::Auto,
                                               int depth = -1,
                                               int trial_factor = 1);

/// Corollary 16.
[[nodiscard]] GirthOutcome girth_directed_cc(const Graph& g,
                                             MmKind kind = MmKind::Auto,
                                             int depth = -1);

}  // namespace cca::core
