#include "core/distance_product.hpp"

#include <cmath>
#include <span>

#include "core/mm.hpp"
#include "matrix/codec.hpp"
#include "matrix/poly.hpp"
#include "util/contracts.hpp"
#include "util/parallel.hpp"

namespace cca::core {

namespace {

constexpr std::int64_t kInf = MinPlusSemiring::kInf;

/// Min-plus value carrying the summation index that attained it. The pair
/// (distance, witness) ordered lexicographically is a bona fide semiring:
/// add = lexicographic min, mul = (d1 + d2, left witness). The left witness
/// is the column index of the S-side entry, planted at lift time.
struct WDist {
  std::int64_t d = kInf;
  std::int64_t w = -1;
  friend bool operator==(const WDist&, const WDist&) = default;
};

/// Zero contract: {kInf, -1} annihilates mul even against {kInf, w} values
/// carrying a planted witness (which compare UNEQUAL to zero) — audited by
/// the WitnessMinPlusAudit mirror in tests/test_matrix.cpp ZeroSkipAudit.
struct WitnessMinPlus {
  using Value = WDist;
  [[nodiscard]] Value zero() const noexcept { return {kInf, -1}; }
  [[nodiscard]] Value one() const noexcept { return {0, -1}; }
  [[nodiscard]] Value add(const Value& a, const Value& b) const noexcept {
    if (a.d != b.d) return a.d < b.d ? a : b;
    return a.w <= b.w ? a : b;
  }
  [[nodiscard]] Value mul(const Value& a, const Value& b) const noexcept {
    if (a.d >= kInf || b.d >= kInf) return {kInf, -1};
    return {a.d + b.d, a.w};
  }
};

struct WDistCodec {
  using Value = WDist;
  [[nodiscard]] std::size_t words_for(std::size_t entries) const noexcept {
    return 2 * entries;
  }
  void encode_into(std::span<const Value> vals, clique::Word* out) const {
    for (std::size_t i = 0; i < vals.size(); ++i) {
      out[2 * i] = static_cast<clique::Word>(vals[i].d);
      out[2 * i + 1] = static_cast<clique::Word>(vals[i].w);
    }
  }
  void decode_into(const clique::Word* words, std::size_t count,
                   Value* out) const {
    for (std::size_t i = 0; i < count; ++i)
      out[i] = {static_cast<std::int64_t>(words[2 * i]),
                static_cast<std::int64_t>(words[2 * i + 1])};
  }
  void encode_block(const std::vector<Value>& vals,
                    std::vector<clique::Word>& out) const {
    const std::size_t base = out.size();
    out.resize(base + words_for(vals.size()));
    encode_into(vals, out.data() + base);
  }
  [[nodiscard]] std::vector<Value> decode_block(const clique::Word* words,
                                                std::size_t count) const {
    std::vector<Value> out(count);
    decode_into(words, count, out.data());
    return out;
  }
};

/// Lift S entries to carry their column index as witness. Infinite entries
/// lift to the EXACT semiring zero {kInf, -1} — not {kInf, j} — so the
/// sparse engine's pattern scan (and the Auto dispatcher's announcement)
/// sees them as zeros. Element-identical to the historical lift: every
/// product term passes through mul, which annihilates any d >= kInf to
/// {kInf, -1} before it can reach an output entry.
Matrix<WDist> lift_with_witness(const Matrix<std::int64_t>& m) {
  const int n = m.rows();
  Matrix<WDist> out(n, n);
  parallel_for(0, n, [&](int i) {
    for (int j = 0; j < n; ++j)
      out(i, j) = {m(i, j), m(i, j) >= kInf ? -1 : j};
  });
  return out;
}

/// Lift T entries witness-less ({d, -1}); infinite entries are the exact
/// semiring zero.
Matrix<WDist> lift_plain(const Matrix<std::int64_t>& m) {
  const int n = m.rows();
  Matrix<WDist> out(n, n);
  parallel_for(0, n, [&](int i) {
    for (int j = 0; j < n; ++j) out(i, j) = {m(i, j), -1};
  });
  return out;
}

/// Project a witness-semiring product back to (distances, witnesses).
WitnessedProduct unpack_witnessed(const Matrix<WDist>& prod) {
  const int n = prod.rows();
  WitnessedProduct o{Matrix<std::int64_t>(n, n, kInf), Matrix<int>(n, n, -1)};
  parallel_for(0, n, [&](int i) {
    for (int j = 0; j < n; ++j) {
      o.dist(i, j) = prod(i, j).d >= kInf ? kInf : prod(i, j).d;
      o.witness(i, j) =
          prod(i, j).d >= kInf ? -1 : static_cast<int>(prod(i, j).w);
    }
  });
  return o;
}

}  // namespace

Matrix<std::int64_t> dp_semiring(clique::Network& net,
                                 const Matrix<std::int64_t>& s,
                                 const Matrix<std::int64_t>& t) {
  const MinPlusSemiring sr;
  const I64Codec codec;
  return mm_semiring_3d(net, sr, codec, s, t);
}

Matrix<std::int64_t> dp_semiring_auto(clique::Network& net,
                                      const Matrix<std::int64_t>& s,
                                      const Matrix<std::int64_t>& t) {
  const MinPlusSemiring sr;
  const I64Codec codec;
  return mm_semiring_auto(net, sr, codec, s, t);
}

Matrix<std::int64_t> dp_semiring_sparse(clique::Network& net,
                                        const Matrix<std::int64_t>& s,
                                        const Matrix<std::int64_t>& t) {
  const MinPlusSemiring sr;
  const I64Codec codec;
  return mm_semiring_sparse(net, sr, codec, s, t);
}

WitnessedProduct dp_semiring_witness_sparse(clique::Network& net,
                                            const Matrix<std::int64_t>& s,
                                            const Matrix<std::int64_t>& t) {
  const WitnessMinPlus sr;
  const WDistCodec codec;
  return unpack_witnessed(
      mm_semiring_sparse(net, sr, codec, lift_with_witness(s), lift_plain(t)));
}

WitnessedProduct dp_semiring_witness_auto(clique::Network& net,
                                          const Matrix<std::int64_t>& s,
                                          const Matrix<std::int64_t>& t,
                                          MmDispatchContext* ctx) {
  const WitnessMinPlus sr;
  const WDistCodec codec;
  return unpack_witnessed(mm_semiring_auto(net, sr, codec,
                                           lift_with_witness(s), lift_plain(t),
                                           nullptr, nullptr, nullptr, ctx));
}

std::vector<WitnessedProduct> dp_semiring_witness_batch_auto(
    clique::Network& net, std::span<const Matrix<std::int64_t>> ss,
    std::span<const Matrix<std::int64_t>> ts, MmDispatchContext* ctx) {
  const std::size_t batch = ss.size();
  CCA_EXPECTS(batch >= 1 && ts.size() == batch);
  const WitnessMinPlus sr;
  const WDistCodec codec;
  std::vector<Matrix<WDist>> ws(batch), wt(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    ws[b] = lift_with_witness(ss[b]);
    wt[b] = lift_plain(ts[b]);
  }
  const auto prods = mm_semiring_auto_batch(
      net, sr, codec, std::span<const Matrix<WDist>>(ws),
      std::span<const Matrix<WDist>>(wt), ctx);
  std::vector<WitnessedProduct> out;
  out.reserve(batch);
  for (std::size_t b = 0; b < batch; ++b)
    out.push_back(unpack_witnessed(prods[b]));
  return out;
}

WitnessedProduct dp_semiring_witness(clique::Network& net,
                                     const Matrix<std::int64_t>& s,
                                     const Matrix<std::int64_t>& t) {
  auto res = dp_semiring_witness_batch(
      net, std::span<const Matrix<std::int64_t>>(&s, 1),
      std::span<const Matrix<std::int64_t>>(&t, 1));
  return std::move(res.front());
}

std::vector<WitnessedProduct> dp_semiring_witness_batch(
    clique::Network& net, std::span<const Matrix<std::int64_t>> ss,
    std::span<const Matrix<std::int64_t>> ts) {
  const std::size_t batch = ss.size();
  CCA_EXPECTS(batch >= 1 && ts.size() == batch);
  const int n = ss[0].rows();
  for (std::size_t b = 0; b < batch; ++b) {
    CCA_EXPECTS(ss[b].rows() == n && ss[b].cols() == n);
    CCA_EXPECTS(ts[b].rows() == n && ts[b].cols() == n);
  }
  // Lift: S entries carry their column index as witness, T entries none
  // (node-local row transforms — run on the worker group).
  std::vector<Matrix<WDist>> ws(batch), wt(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    ws[b] = lift_with_witness(ss[b]);
    wt[b] = lift_plain(ts[b]);
  }
  const WitnessMinPlus sr;
  const WDistCodec codec;
  const auto prods = mm_semiring_3d_batch(
      net, sr, codec, std::span<const Matrix<WDist>>(ws),
      std::span<const Matrix<WDist>>(wt));

  std::vector<WitnessedProduct> out;
  out.reserve(batch);
  for (std::size_t b = 0; b < batch; ++b)
    out.push_back(unpack_witnessed(prods[b]));
  return out;
}

Matrix<std::int64_t> dp_ring_embedded(clique::Network& net,
                                      const BilinearAlgorithm& alg,
                                      const Matrix<std::int64_t>& s,
                                      const Matrix<std::int64_t>& t,
                                      std::int64_t m_bound,
                                      MmDispatchContext* ctx) {
  CCA_EXPECTS(m_bound >= 0);
  const int n = s.rows();
  CCA_EXPECTS(s.cols() == n && t.rows() == n && t.cols() == n);
  const int cap = static_cast<int>(2 * m_bound + 1);
  const PolyRing ring{cap};
  const PolyCodec codec{cap};

  // Entry w in {0..M} becomes X^w; everything else becomes 0 (= infinity).
  // Both the lift and the min-degree extraction are node-local row work.
  auto embed = [&](const Matrix<std::int64_t>& src) {
    Matrix<CappedPoly> out(n, n, ring.zero());
    parallel_for(0, n, [&](int i) {
      for (int j = 0; j < n; ++j) {
        const auto v = src(i, j);
        if (v >= 0 && v <= m_bound)
          out(i, j) = CappedPoly::monomial(cap, static_cast<int>(v));
      }
    });
    return out;
  };

  // ctx routes the embedded product through the nnz-adaptive dispatcher
  // (zero polynomials — infinite distances — are the ring zeros, so a
  // mostly-infinite iterate pays sparse rounds); ctx == nullptr keeps the
  // historical fixed bilinear engine bit-identical. The bilinear candidate
  // is full-ownership-only, so a sharded dispatch drops it from the
  // candidate set — every rank plans over the same candidates either way.
  const auto es = embed(s);
  const auto et = embed(t);
  const auto prod =
      ctx != nullptr
          ? mm_semiring_auto(net, ring, codec, es, et,
                             net.owns_all() ? &alg : nullptr, nullptr,
                             nullptr, ctx)
          : mm_fast_bilinear(net, ring, codec, alg, es, et);

  Matrix<std::int64_t> out(n, n, kInf);
  parallel_for(0, n, [&](int i) {
    for (int j = 0; j < n; ++j) {
      const int deg = prod(i, j).min_degree();
      if (deg >= 0) out(i, j) = deg;
    }
  });
  return out;
}

Matrix<std::int64_t> dp_approx(clique::Network& net,
                               const BilinearAlgorithm& alg,
                               const Matrix<std::int64_t>& s,
                               const Matrix<std::int64_t>& t,
                               std::int64_t m_bound, double delta,
                               MmDispatchContext* ctx) {
  CCA_EXPECTS(delta > 0);
  CCA_EXPECTS(m_bound >= 0);
  const int n = s.rows();
  CCA_EXPECTS(s.cols() == n && t.rows() == n && t.cols() == n);

  // Scaled entries are bounded by ceil(2(1+delta)/delta) (Lemma 20).
  const auto scaled_bound =
      static_cast<std::int64_t>(std::ceil(2.0 * (1.0 + delta) / delta));

  // ceil(v / base^i) with monotone adjustment against floating error:
  // returns the least q with q * base^i >= v under the same double rounding
  // used everywhere else, so the Lemma 20 inequalities hold as evaluated.
  auto scale_up = [](std::int64_t v, double p) {
    auto q = static_cast<std::int64_t>(
        std::ceil(static_cast<double>(v) / p));
    while (q > 0 && static_cast<double>(q - 1) * p >= static_cast<double>(v))
      --q;
    while (static_cast<double>(q) * p < static_cast<double>(v)) ++q;
    return q;
  };

  const int levels =
      m_bound <= 1
          ? 1
          : static_cast<int>(std::ceil(std::log(static_cast<double>(m_bound)) /
                                       std::log1p(delta))) +
                1;

  Matrix<std::int64_t> best(n, n, kInf);
  for (int i = 0; i < levels; ++i) {
    const double p = std::pow(1.0 + delta, i);
    const double admit = 2.0 * std::pow(1.0 + delta, i + 1) / delta;
    auto build = [&](const Matrix<std::int64_t>& src) {
      Matrix<std::int64_t> out(n, n, kInf);
      for (int a = 0; a < n; ++a)
        for (int b = 0; b < n; ++b) {
          const auto v = src(a, b);
          if (v >= kInf || static_cast<double>(v) > admit) continue;
          out(a, b) = scale_up(v, p);
          CCA_ASSERT(out(a, b) <= scaled_bound);
        }
      return out;
    };
    const auto pi =
        dp_ring_embedded(net, alg, build(s), build(t), scaled_bound, ctx);
    for (int a = 0; a < n; ++a)
      for (int b = 0; b < n; ++b) {
        if (pi(a, b) >= kInf) continue;
        const auto unscaled = static_cast<std::int64_t>(
            std::floor(static_cast<double>(pi(a, b)) * p));
        if (unscaled < best(a, b)) best(a, b) = unscaled;
      }
  }
  return best;
}

}  // namespace cca::core
