#include "core/baseline.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "clique/primitives.hpp"
#include "graph/reference.hpp"
#include "util/contracts.hpp"
#include "util/math.hpp"

namespace cca::core {

namespace {

clique::Word pack_pair(int a, int b) {
  return (static_cast<clique::Word>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

}  // namespace

BaselineDetectOutcome detect_k_cycle_dolev(const Graph& g, int k) {
  const int n = g.n();
  CCA_EXPECTS(k >= (g.is_directed() ? 2 : 3));
  if (k > n || n == 0) return {false, {}};

  clique::Network net(std::max(1, n));

  // q groups of size ceil(n/q); q = floor(n^{1/k}) keeps q^k <= n tuples.
  int q = static_cast<int>(
      std::floor(std::pow(static_cast<double>(n), 1.0 / k)));
  q = std::max(1, q);
  while (ipow(q, k) > n) --q;  // guard floating-point edge cases
  const int group_size = static_cast<int>(ceil_div(n, q));
  auto group_of = [&](int v) { return std::min(q - 1, v / group_size); };
  const auto tuples = static_cast<int>(ipow(q, k));

  // Which tuples contain a given (unordered) pair of groups? Precomputed
  // identically at every node from public quantities.
  std::vector<std::vector<int>> tuples_of_pair(
      static_cast<std::size_t>(q) * static_cast<std::size_t>(q));
  for (int t = 0; t < tuples; ++t) {
    std::vector<char> has(static_cast<std::size_t>(q), 0);
    int rest = t;
    for (int slot = 0; slot < k; ++slot) {
      has[static_cast<std::size_t>(rest % q)] = 1;
      rest /= q;
    }
    for (int a = 0; a < q; ++a) {
      if (!has[static_cast<std::size_t>(a)]) continue;
      for (int b = a; b < q; ++b)
        if (has[static_cast<std::size_t>(b)])
          tuples_of_pair[static_cast<std::size_t>(a) *
                             static_cast<std::size_t>(q) +
                         static_cast<std::size_t>(b)]
              .push_back(t);
    }
  }

  // Phase 0: balance the edge list over the clique (edge j -> holder j mod
  // n), after a one-round count announcement for the global offsets.
  std::vector<std::vector<clique::Word>> held(static_cast<std::size_t>(n));
  {
    std::vector<clique::Word> counts(static_cast<std::size_t>(n), 0);
    for (int u = 0; u < n; ++u) {
      std::int64_t cnt = 0;
      for (const auto& [v, w] : g.out_arcs(u)) {
        (void)w;
        if (g.is_directed() || u < v) ++cnt;
      }
      counts[static_cast<std::size_t>(u)] = static_cast<clique::Word>(cnt);
    }
    (void)clique::broadcast_all(net, std::move(counts));

    std::int64_t index = 0;
    for (int u = 0; u < n; ++u)
      for (const auto& [v, w] : g.out_arcs(u)) {
        (void)w;
        if (!g.is_directed() && u >= v) continue;
        net.send(u, static_cast<int>(index % n), pack_pair(u, v));
        ++index;
      }
    net.deliver();
    for (int h = 0; h < n; ++h)
      for (int src = 0; src < n; ++src) {
        auto words = net.take_inbox(h, src);
        auto& bucket = held[static_cast<std::size_t>(h)];
        bucket.insert(bucket.end(), words.begin(), words.end());
      }
  }

  // Phase 1: each holder forwards every held edge to the tuple nodes whose
  // group union contains both endpoints' groups.
  for (int h = 0; h < n; ++h)
    for (const auto word : held[static_cast<std::size_t>(h)]) {
      const int u = static_cast<int>(word >> 32);
      const int v = static_cast<int>(word & 0xffffffffu);
      int ga = group_of(u);
      int gb = group_of(v);
      if (ga > gb) std::swap(ga, gb);
      for (const int t : tuples_of_pair[static_cast<std::size_t>(ga) *
                                            static_cast<std::size_t>(q) +
                                        static_cast<std::size_t>(gb)])
        net.send(h, t, word);
    }
  net.deliver();

  // Phase 2 (local): every tuple node searches its learned subgraph.
  bool found = false;
  for (int t = 0; t < tuples && !found; ++t) {
    std::vector<std::pair<int, int>> edges;
    for (int src = 0; src < n; ++src) {
      for (const auto word : net.inbox(t, src))
        edges.emplace_back(static_cast<int>(word >> 32),
                           static_cast<int>(word & 0xffffffffu));
    }
    if (edges.empty()) continue;
    // Remap vertex ids compactly.
    std::vector<int> ids;
    for (const auto& [u, v] : edges) {
      ids.push_back(u);
      ids.push_back(v);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    auto local_id = [&](int v) {
      return static_cast<int>(
          std::lower_bound(ids.begin(), ids.end(), v) - ids.begin());
    };
    auto sub = g.is_directed()
                   ? Graph::directed(static_cast<int>(ids.size()))
                   : Graph::undirected(static_cast<int>(ids.size()));
    for (const auto& [u, v] : edges) sub.add_edge(local_id(u), local_id(v));
    if (ref_has_k_cycle(sub, k)) found = true;
  }
  // One broadcast round ORs the tuple nodes' flags.
  net.charge_rounds(1);

  return {found, net.stats()};
}

ApspOutcome apsp_naive_learn(const Graph& g) {
  const int n = g.n();
  ApspOutcome out;
  if (n == 0) return out;
  clique::Network net(n);

  // Every node contributes its arcs (with weights: two words per arc);
  // dissemination teaches the entire weighted graph to everyone.
  std::vector<std::vector<clique::Word>> per_node(static_cast<std::size_t>(n));
  for (int u = 0; u < n; ++u)
    for (const auto& [v, w] : g.out_arcs(u)) {
      if (!g.is_directed() && u >= v) continue;
      per_node[static_cast<std::size_t>(u)].push_back(pack_pair(u, v));
      per_node[static_cast<std::size_t>(u)].push_back(
          static_cast<clique::Word>(w));
    }
  const auto words = clique::disseminate(net, per_node);
  auto learned = g.is_directed() ? Graph::directed(n) : Graph::undirected(n);
  for (std::size_t i = 0; i + 1 < words.size(); i += 2) {
    const int u = static_cast<int>(words[i] >> 32);
    const int v = static_cast<int>(words[i] & 0xffffffffu);
    learned.add_edge(u, v, static_cast<std::int64_t>(words[i + 1]));
  }
  out.dist = ref_apsp(learned);
  out.traffic = net.stats();
  return out;
}

}  // namespace cca::core
