#include "core/mm.hpp"

namespace cca::core {

int semiring_clique_size(int n) {
  CCA_EXPECTS(n >= 1);
  return static_cast<int>(next_cube(n));
}

FastPlan plan_fast_mm(int n, int depth, int base_d, int base_m) {
  CCA_EXPECTS(n >= 1 && depth >= 0 && base_d >= 1 && base_m >= 1);
  FastPlan plan;
  plan.depth = depth;
  plan.d = static_cast<int>(ipow(base_d, depth));
  plan.m = static_cast<int>(ipow(base_m, depth));
  // clique_n must be a perfect square with d | sqrt(clique_n), at least n
  // (to fit the matrix) and at least m (one node per block product).
  const std::int64_t lower = std::max<std::int64_t>(n, plan.m);
  plan.clique_n =
      static_cast<int>(next_square_with_root_multiple(lower, plan.d));
  return plan;
}

FastPlan plan_fast_mm_auto(int n, int base_d, int base_m) {
  CCA_EXPECTS(n >= 1);
  // Largest depth whose product count fits within n nodes ("fix d so that
  // m(d) = n"); deeper tensor powers would leave block products unhosted.
  int depth = 0;
  std::int64_t products = 1;
  while (products * base_m <= n) {
    products *= base_m;
    ++depth;
  }
  // Among depths <= depth, prefer the least per-node round cost. Step 3/5
  // move ~2(N + m) * bs^2 words through each node with bs^2 = N/d^2, i.e.
  // about (N + m)/d^2 rounds; this also accounts for padding inflation of N.
  FastPlan best = plan_fast_mm(n, 0, base_d, base_m);
  auto cost = [](const FastPlan& p) {
    return (static_cast<double>(p.clique_n) + p.m) /
           (static_cast<double>(p.d) * p.d);
  };
  for (int k = 1; k <= depth; ++k) {
    const FastPlan p = plan_fast_mm(n, k, base_d, base_m);
    if (cost(p) < cost(best)) best = p;
  }
  return best;
}

}  // namespace cca::core
