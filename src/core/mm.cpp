#include "core/mm.hpp"

#include <utility>

namespace cca::core {

std::pair<int, int> sparse_chunk_bounds(int cnt, int g, int r) {
  CCA_EXPECTS(g >= 1 && r >= 0 && r < g && cnt >= g);
  const int base = cnt / g;
  const int rem = cnt % g;
  const int first = r * base + std::min(r, rem);
  return {first, first + base + (r < rem ? 1 : 0)};
}

std::int64_t sparse_triple_count(int n, const SparsePattern& s_rows,
                                 const SparsePattern& t_rows) {
  CCA_EXPECTS(static_cast<int>(s_rows.size()) == n &&
              static_cast<int>(t_rows.size()) == n);
  std::vector<std::int64_t> col_cnt(static_cast<std::size_t>(n), 0);
  for (const auto& row : s_rows)
    for (const int k : row) ++col_cnt[static_cast<std::size_t>(k)];
  std::int64_t triples = 0;
  for (int k = 0; k < n; ++k)
    triples += col_cnt[static_cast<std::size_t>(k)] *
               static_cast<std::int64_t>(t_rows[static_cast<std::size_t>(k)].size());
  return triples;
}

namespace {

/// The worker partition of the sparse plan, computed from QUANTISED count
/// profiles (sparse_count_bucket): intermediate k's weight is
/// bucket(colS(k)) * bucket(rowT(k)), so iterates whose per-row counts
/// drift within their buckets keep the IDENTICAL partition — the structural
/// prerequisite for the distribute / contribute demand lists to repeat
/// across squarings and hit the ScheduleCache. Shared by
/// build_sparse_mm_structure and the build-free lower bound so the gate can
/// never disagree with the plan it is gating.
struct SparseWorkerPartition {
  std::vector<int> group_size;
  std::vector<std::vector<int>> extras;
  std::vector<std::vector<std::pair<int, int>>> worker_extras;
};

SparseWorkerPartition sparse_worker_partition(
    int n, const std::vector<std::int64_t>& col_s,
    const std::vector<std::int64_t>& row_t) {
  SparseWorkerPartition p;
  p.group_size.assign(static_cast<std::size_t>(n), 0);
  p.extras.resize(static_cast<std::size_t>(n));
  p.worker_extras.resize(static_cast<std::size_t>(n));
  std::int64_t qtriples = 0;
  for (int k = 0; k < n; ++k)
    qtriples += sparse_count_bucket(col_s[static_cast<std::size_t>(k)]) *
                sparse_count_bucket(row_t[static_cast<std::size_t>(k)]);
  if (qtriples == 0) return p;
  int pointer = 0;
  for (int k = 0; k < n; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    const auto t_k =
        sparse_count_bucket(col_s[ks]) * sparse_count_bucket(row_t[ks]);
    if (t_k == 0) continue;
    const auto ideal = ceil_div(t_k * n, qtriples);
    const auto cnt = col_s[ks];
    // Replication-efficiency cap: every extra worker receives the FULL T
    // row (b_k entries) alongside its a-chunk, so splitting past ~sqrt(cnt)
    // workers pumps more replicated words out of the holder than it shaves
    // off any worker's contribute load (holder out grows as g * b_k while
    // the per-worker product volume shrinks as cnt * b_k / g — the max of
    // the two is minimized at g = sqrt(cnt)). Power-law hubs are exactly
    // where this bites: deg^2 triples at one intermediate would otherwise
    // demand ~n workers and re-ship the hub row to each of them. The cap
    // too reads the bucketed count; only the cnt bound is exact (chunks
    // must stay nonempty).
    const auto rep_cap = isqrt(sparse_count_bucket(cnt)) + 1;
    const int g =
        static_cast<int>(std::min<std::int64_t>({ideal, rep_cap, cnt, n}));
    p.group_size[ks] = g;
    for (int r = 1; r < g; ++r) {
      if (pointer == k) pointer = (pointer + 1) % n;
      p.extras[ks].push_back(pointer);
      p.worker_extras[static_cast<std::size_t>(pointer)].push_back({k, r});
      pointer = (pointer + 1) % n;
    }
  }
  return p;
}

}  // namespace

SparseMmStructure build_sparse_mm_structure(
    int n, const SparsePattern& s_rows, const SparsePattern& t_rows,
    const std::function<std::size_t(std::size_t)>& value_words) {
  CCA_EXPECTS(n >= 1);
  CCA_EXPECTS(static_cast<int>(s_rows.size()) == n &&
              static_cast<int>(t_rows.size()) == n);
  SparseMmStructure st;
  st.s_cols.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    st.rho_s += static_cast<std::int64_t>(s_rows[static_cast<std::size_t>(i)].size());
    st.rho_t += static_cast<std::int64_t>(t_rows[static_cast<std::size_t>(i)].size());
    for (const int k : s_rows[static_cast<std::size_t>(i)])
      st.s_cols[static_cast<std::size_t>(k)].push_back(i);
  }
  if (st.rho_s == 0 || st.rho_t == 0) {
    st.trivial = true;
    return st;
  }

  // SparseCodec message size for a c-pair block — exact, and its QUANTISED
  // frame variant (see sparse_count_bucket): the distribute / contribute
  // messages are sized by the bucketed counts so shapes repeat across
  // iterations whose counts drift within their buckets.
  auto sparse_words = [&](std::size_t c) {
    return (c + 1) / 2 + value_words(c);
  };
  auto sparse_frame = [&](std::size_t c) {
    return sparse_words(static_cast<std::size_t>(
        sparse_count_bucket(static_cast<std::int64_t>(c))));
  };
  const auto vw1 = static_cast<std::int64_t>(value_words(1));

  // Balanced triple partition over the bucketed count profiles: intermediate
  // k weighs bucket(colS(k)) * bucket(rowT(k)) and gets ~proportional
  // workers, node k first (the common balanced case moves nothing). Extra
  // workers come from a rolling pointer over the node ids — the same
  // g-mod-n flavour of balancing clique::disseminate uses for its word
  // relocation. (st.triples stays the EXACT count: the dispatcher's volume
  // cap reads it.)
  std::vector<std::int64_t> col_s(static_cast<std::size_t>(n)),
      row_t(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    col_s[ks] = static_cast<std::int64_t>(st.s_cols[ks].size());
    row_t[ks] = static_cast<std::int64_t>(t_rows[ks].size());
    st.triples += col_s[ks] * row_t[ks];
  }
  auto part = sparse_worker_partition(n, col_s, row_t);
  st.group_size = std::move(part.group_size);
  st.extras = std::move(part.extras);
  st.worker_extras = std::move(part.worker_extras);

  // Gather demands: every off-diagonal nonzero S[i,k] is one value message
  // i -> k — EXCEPT entries of columns whose T row is empty: the step-0
  // announcement already told every node those intermediates can form no
  // triple, so their values never need to move (disjoint-support inputs
  // would otherwise pay full gather rounds for provably-zero work).
  // (src, dst) ascending because rows and their patterns are.
  for (int i = 0; i < n; ++i)
    for (const int k : s_rows[static_cast<std::size_t>(i)])
      if (k != i && !t_rows[static_cast<std::size_t>(k)].empty())
        st.gather.push_back({i, k, vw1});

  // Distribute demands: holder k -> extra worker, header + chunk + T row.
  for (int k = 0; k < n; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    const int g = st.group_size[ks];
    if (g < 2) continue;
    const auto b_cnt = t_rows[ks].size();
    std::vector<std::pair<int, std::int64_t>> msgs;
    for (int r = 1; r < g; ++r) {
      const auto [lo, hi] =
          sparse_chunk_bounds(static_cast<int>(st.s_cols[ks].size()), g, r);
      const auto words = sparse_msg_align(
          static_cast<std::int64_t>(
              2 + sparse_frame(static_cast<std::size_t>(hi - lo)) +
              sparse_frame(b_cnt)),
          kSparseDistributeAlign);
      msgs.push_back({st.extras[ks][static_cast<std::size_t>(r - 1)], words});
    }
    std::sort(msgs.begin(), msgs.end());
    for (const auto& [w, words] : msgs)
      st.distribute.push_back({k, w, words});
  }

  // Contribute demands: the symbolic merge. Worker w's items are its own
  // chunk (intermediate w) plus its extra chunks; for each output row i the
  // contribution entry count is the union of the T-row patterns of the
  // intermediates pairing with i at w. This mirrors the executor exactly —
  // entries count as TOUCHED regardless of the eventual product value, so
  // the counts (and hence the demands) are value-independent.
  st.contrib.resize(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
  std::vector<int> seen_list;
  std::vector<std::pair<int, int>> pairs;  // (output row i, intermediate k)
  for (int w = 0; w < n; ++w) {
    const auto ws = static_cast<std::size_t>(w);
    pairs.clear();
    if (st.group_size[ws] >= 1) {
      const auto& rows = st.s_cols[ws];
      const auto [lo, hi] = sparse_chunk_bounds(static_cast<int>(rows.size()),
                                                st.group_size[ws], 0);
      for (int x = lo; x < hi; ++x)
        pairs.push_back({rows[static_cast<std::size_t>(x)], w});
    }
    for (const auto& [k, r] : st.worker_extras[ws]) {
      const auto& rows = st.s_cols[static_cast<std::size_t>(k)];
      const auto [lo, hi] = sparse_chunk_bounds(
          static_cast<int>(rows.size()), st.group_size[static_cast<std::size_t>(k)], r);
      for (int x = lo; x < hi; ++x)
        pairs.push_back({rows[static_cast<std::size_t>(x)], k});
    }
    std::sort(pairs.begin(), pairs.end());
    for (std::size_t a = 0; a < pairs.size();) {
      const int i = pairs[a].first;
      std::size_t b = a;
      for (; b < pairs.size() && pairs[b].first == i; ++b)
        for (const int j :
             t_rows[static_cast<std::size_t>(pairs[b].second)])
          if (seen[static_cast<std::size_t>(j)] == 0) {
            seen[static_cast<std::size_t>(j)] = 1;
            seen_list.push_back(j);
          }
      const int cnt = static_cast<int>(seen_list.size());
      st.contrib[ws].push_back({i, cnt});
      if (i != w)
        st.contribute.push_back(
            {w, i,
             sparse_msg_align(
                 static_cast<std::int64_t>(
                     1 + sparse_frame(static_cast<std::size_t>(cnt))),
                 sparse_contribute_align(n))});
      for (const int j : seen_list) seen[static_cast<std::size_t>(j)] = 0;
      seen_list.clear();
      a = b;
    }
  }
  return st;
}

namespace {

/// Emit per-source accumulated words as canonical (src, dst)-ascending
/// demands, skipping self-pairs — the exact list Network::deliver derives
/// from the staged segments.
void emit_demands(int src, std::vector<std::int64_t>& words_by_dst,
                  std::vector<clique::Demand>& out) {
  for (int dst = 0; dst < static_cast<int>(words_by_dst.size()); ++dst) {
    const auto w = words_by_dst[static_cast<std::size_t>(dst)];
    if (w > 0 && dst != src) out.push_back({src, dst, w});
    words_by_dst[static_cast<std::size_t>(dst)] = 0;
  }
}

}  // namespace

std::pair<std::vector<clique::Demand>, std::vector<clique::Demand>>
semiring3d_superstep_demands(int n, std::size_t block_words,
                             std::size_t batch) {
  CCA_EXPECTS(is_perfect_cube(n));
  if (n == 1) return {};
  const int c = static_cast<int>(icbrt(n));
  const int c2 = c * c;
  const auto group =
      static_cast<std::int64_t>(batch * block_words);  // step 3: unpadded
  const auto staged = static_cast<std::int64_t>(
      detail::padded_group_words(batch * block_words));  // step 1: padded
  auto d1 = [c2](int v) { return v / c2; };
  std::vector<std::int64_t> words(static_cast<std::size_t>(n), 0);
  std::vector<clique::Demand> step1, step3;
  for (int v = 0; v < n; ++v) {
    for (int tail = 0; tail < c2; ++tail)
      words[static_cast<std::size_t>(d1(v) * c2 + tail)] += staged;
    for (int w1 = 0; w1 < c; ++w1)
      for (int w3 = 0; w3 < c; ++w3)
        words[static_cast<std::size_t>(w1 * c2 + d1(v) * c + w3)] += staged;
    emit_demands(v, words, step1);
  }
  for (int v = 0; v < n; ++v) {
    for (int tail = 0; tail < c2; ++tail)
      words[static_cast<std::size_t>(d1(v) * c2 + tail)] += group;
    emit_demands(v, words, step3);
  }
  return {std::move(step1), std::move(step3)};
}

std::int64_t semiring3d_planned_rounds(clique::Network& net, int n,
                                       std::size_t block_words,
                                       std::size_t batch) {
  CCA_EXPECTS(net.n() == n);
  if (n == 1) return 0;
  const auto [step1, step3] = semiring3d_superstep_demands(n, block_words, batch);
  return net.prepare_schedule(step1) + net.prepare_schedule(step3);
}

std::vector<std::vector<clique::Demand>> fast_bilinear_superstep_demands(
    int n, const BilinearAlgorithm& alg, std::size_t row_words,
    std::size_t blk_words) {
  CCA_EXPECTS(is_perfect_square(n));
  if (n == 1) return {};
  const int sq = static_cast<int>(isqrt(n));
  const int d = alg.d;
  const int m = alg.m;
  CCA_EXPECTS(d >= 1 && sq % d == 0 && m <= n);
  const int bs = sq / d;
  const int big = n / d;
  const auto rw = static_cast<std::int64_t>(row_words);
  const auto bw = static_cast<std::int64_t>(blk_words);
  std::vector<std::int64_t> words(static_cast<std::size_t>(n), 0);
  std::vector<clique::Demand> s1, s3, s5, s7;
  for (int v = 0; v < n; ++v) {
    const int v2 = (v / bs) % sq;
    for (int x2 = 0; x2 < sq; ++x2)
      words[static_cast<std::size_t>(v2 * sq + x2)] += 2 * rw;
    emit_demands(v, words, s1);
  }
  for (int u = 0; u < n; ++u) {
    for (int w = 0; w < m; ++w)
      words[static_cast<std::size_t>(w)] += 2 * bw;
    emit_demands(u, words, s3);
  }
  for (int w = 0; w < m; ++w) {
    for (int u = 0; u < n; ++u) words[static_cast<std::size_t>(u)] += bw;
    emit_demands(w, words, s5);
  }
  for (int u = 0; u < n; ++u) {
    const int x1 = u / sq;
    for (int r1 = 0; r1 < d; ++r1)
      for (int r3 = 0; r3 < bs; ++r3)
        words[static_cast<std::size_t>(r1 * big + x1 * bs + r3)] += rw;
    emit_demands(u, words, s7);
  }
  std::vector<std::vector<clique::Demand>> out;
  out.push_back(std::move(s1));
  out.push_back(std::move(s3));
  out.push_back(std::move(s5));
  out.push_back(std::move(s7));
  return out;
}

std::int64_t fast_bilinear_planned_rounds(clique::Network& net, int n,
                                          const BilinearAlgorithm& alg,
                                          std::size_t row_words,
                                          std::size_t blk_words) {
  CCA_EXPECTS(net.n() == n);
  if (n == 1) return 0;
  std::int64_t total = 0;
  for (const auto& step :
       fast_bilinear_superstep_demands(n, alg, row_words, blk_words))
    total += net.prepare_schedule(step);
  return total;
}

std::int64_t relay_round_lower_bound(int n,
                                     const std::vector<clique::Demand>& demands) {
  if (n <= 1 || demands.empty()) return 0;
  std::vector<std::int64_t> out(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> in(static_cast<std::size_t>(n), 0);
  for (const auto& d : demands) {
    out[static_cast<std::size_t>(d.src)] += d.words;
    in[static_cast<std::size_t>(d.dst)] += d.words;
  }
  // The relay counts the self-loop as a usable link (a word whose
  // intermediate is its own source or destination skips that hop), so each
  // phase spreads a node's volume over n ports, not n-1 — dividing by n-1
  // here would EXCEED the real schedule on shapes the scheduler balances
  // perfectly (measured: 33 vs an actual 29 for the fast-bilinear step
  // shapes at n=64), silently breaking the skip gate's soundness.
  std::int64_t a = 0, b = 0;
  for (int v = 0; v < n; ++v) {
    a = std::max(a, ceil_div(out[static_cast<std::size_t>(v)], n));
    b = std::max(b, ceil_div(in[static_cast<std::size_t>(v)], n));
  }
  return a + b;
}

std::int64_t relay_volume_lower_bound(int n,
                                      const std::vector<std::int64_t>& out,
                                      const std::vector<std::int64_t>& in) {
  if (n <= 1) return 0;
  std::int64_t a = 0, b = 0;
  for (int v = 0; v < n; ++v) {
    a = std::max(a, ceil_div(out[static_cast<std::size_t>(v)], n));
    b = std::max(b, ceil_div(in[static_cast<std::size_t>(v)], n));
  }
  return a + b;
}

void add_sparse_volume_lower_bound(
    int n, const SparsePattern& s_rows, const SparsePattern& t_rows,
    const std::function<std::size_t(std::size_t)>& value_words,
    SparsePhaseVolumes& acc) {
  CCA_EXPECTS(static_cast<int>(s_rows.size()) == n &&
              static_cast<int>(t_rows.size()) == n);
  auto sparse_words = [&](std::size_t c) {
    return static_cast<std::int64_t>((c + 1) / 2 + value_words(c));
  };
  auto sparse_frame = [&](std::size_t c) {
    return sparse_words(static_cast<std::size_t>(
        sparse_count_bucket(static_cast<std::int64_t>(c))));
  };
  const auto vw1 = static_cast<std::int64_t>(value_words(1));

  // Count profiles and the column pattern — O(nnz + n), the whole budget.
  std::vector<std::int64_t> col_s(static_cast<std::size_t>(n), 0),
      row_t(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> s_cols(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    for (const int k : s_rows[static_cast<std::size_t>(i)]) {
      ++col_s[static_cast<std::size_t>(k)];
      s_cols[static_cast<std::size_t>(k)].push_back(i);
    }
  for (int k = 0; k < n; ++k)
    row_t[static_cast<std::size_t>(k)] =
        static_cast<std::int64_t>(t_rows[static_cast<std::size_t>(k)].size());

  // Gather volumes are exact: one vw1 message per off-diagonal S nonzero
  // whose column has a live T row.
  for (int i = 0; i < n; ++i)
    for (const int k : s_rows[static_cast<std::size_t>(i)])
      if (k != i && row_t[static_cast<std::size_t>(k)] > 0) {
        acc.gather_out[static_cast<std::size_t>(i)] += vw1;
        acc.gather_in[static_cast<std::size_t>(k)] += vw1;
      }

  // The builder's own (quantised) partition: distribute volumes follow
  // exactly, no structure needed.
  const auto part = sparse_worker_partition(n, col_s, row_t);
  for (int k = 0; k < n; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    const int g = part.group_size[ks];
    if (g < 2) continue;
    const auto b_frame =
        sparse_frame(static_cast<std::size_t>(row_t[ks]));
    for (int r = 1; r < g; ++r) {
      const auto [lo, hi] =
          sparse_chunk_bounds(static_cast<int>(col_s[ks]), g, r);
      const auto words = sparse_msg_align(
          2 + sparse_frame(static_cast<std::size_t>(hi - lo)) + b_frame,
          kSparseDistributeAlign);
      acc.distribute_out[ks] += words;
      acc.distribute_in[static_cast<std::size_t>(
          part.extras[ks][static_cast<std::size_t>(r - 1)])] += words;
    }
  }

  // Contribute lower bound. The real phase ships, per distinct
  // (worker, output row) pair with row != worker, ONE message of
  // 1 + frame(|union of contributing T-row patterns|) words. The union is
  // at least as large as the largest contributing T row, the frame at
  // least the exact words — so charging 1 + sparse_words(max rowT) per
  // pair never overestimates. Enumerating the pairs is an O(nnz) sweep:
  // position x of column k lands at chunk r (the sparse_chunk_bounds
  // inverse), worker r == 0 ? k : extras[k][r-1].
  struct Pair {
    int w;
    int i;
    std::int64_t b;
  };
  std::vector<Pair> pairs;
  for (int k = 0; k < n; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    const int g = part.group_size[ks];
    if (g == 0) continue;
    const auto& rows = s_cols[ks];
    for (int r = 0; r < g; ++r) {
      const auto [lo, hi] =
          sparse_chunk_bounds(static_cast<int>(rows.size()), g, r);
      const int w = r == 0 ? k : part.extras[ks][static_cast<std::size_t>(r - 1)];
      for (int x = lo; x < hi; ++x) {
        const int i = rows[static_cast<std::size_t>(x)];
        if (i != w) pairs.push_back({w, i, row_t[ks]});
      }
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    return a.w != b.w ? a.w < b.w : (a.i != b.i ? a.i < b.i : a.b < b.b);
  });
  for (std::size_t a = 0; a < pairs.size();) {
    std::size_t b = a;
    std::int64_t maxb = 0;
    for (; b < pairs.size() && pairs[b].w == pairs[a].w &&
           pairs[b].i == pairs[a].i;
         ++b)
      maxb = std::max(maxb, pairs[b].b);
    // Alignment is monotone, so aligning the per-pair underestimate stays
    // below the real (aligned) message size.
    const auto words = sparse_msg_align(
        1 + sparse_words(static_cast<std::size_t>(maxb)),
        sparse_contribute_align(n));
    acc.contribute_out[static_cast<std::size_t>(pairs[a].w)] += words;
    acc.contribute_in[static_cast<std::size_t>(pairs[a].i)] += words;
    a = b;
  }
}

std::int64_t sparse_round_lower_bound(
    int n, const SparsePattern& s_rows, const SparsePattern& t_rows,
    const std::function<std::size_t(std::size_t)>& value_words) {
  std::int64_t rho_s = 0, rho_t = 0;
  for (const auto& row : s_rows) rho_s += static_cast<std::int64_t>(row.size());
  for (const auto& row : t_rows) rho_t += static_cast<std::int64_t>(row.size());
  if (rho_s == 0 || rho_t == 0) return 0;  // trivial product plans 0 rounds
  SparsePhaseVolumes vols(n);
  add_sparse_volume_lower_bound(n, s_rows, t_rows, value_words, vols);
  return 1 + relay_volume_lower_bound(n, vols.gather_out, vols.gather_in) +
         relay_volume_lower_bound(n, vols.distribute_out, vols.distribute_in) +
         relay_volume_lower_bound(n, vols.contribute_out, vols.contribute_in);
}

std::int64_t sparse_plan_cap(int n) {
  return 4 * static_cast<std::int64_t>(n) * n * icbrt(n);
}

std::int64_t sparse_planned_rounds(clique::Network& net,
                                   const SparseMmStructure& st,
                                   std::int64_t abort_above) {
  if (st.trivial) return 0;
  // Volume bounds of the not-yet-scheduled phases gate each Euler split:
  // an abort returns (exact scheduled prefix) + (volume bounds of the
  // rest) — still a lower bound on the true total, and already above the
  // threshold, so the caller's comparison is unchanged while the losing
  // plan skips its remaining (host-expensive) splits. These bounds read
  // the BUILT phase lists, so they are tighter than the build-free
  // sparse_round_lower_bound the dispatcher used for the admission skip.
  const int n = net.n();
  const std::int64_t lb_d = relay_round_lower_bound(n, st.distribute);
  const std::int64_t lb_c = relay_round_lower_bound(n, st.contribute);
  std::int64_t acc = 1;
  if (acc + relay_round_lower_bound(n, st.gather) + lb_d + lb_c >
      abort_above)
    return acc + relay_round_lower_bound(n, st.gather) + lb_d + lb_c;
  acc += net.prepare_schedule(st.gather);
  if (acc + lb_d + lb_c > abort_above) return acc + lb_d + lb_c;
  acc += net.prepare_schedule(st.distribute);
  if (acc + lb_c > abort_above) return acc + lb_c;
  return acc + net.prepare_schedule(st.contribute);
}

namespace {

/// Merge per-product canonical demand lists into the canonical list of the
/// SHARED batched superstep: the per-pair blocks concatenate on the wire,
/// so words add per (src, dst) — exactly the list Network::deliver derives
/// from the batched staging.
std::vector<clique::Demand> merge_demands(
    std::span<const SparseMmStructure> sts,
    std::vector<clique::Demand> SparseMmStructure::* phase) {
  std::vector<clique::Demand> all;
  for (const auto& st : sts)
    if (!st.trivial)
      all.insert(all.end(), (st.*phase).begin(), (st.*phase).end());
  std::sort(all.begin(), all.end(),
            [](const clique::Demand& a, const clique::Demand& b) {
              return a.src != b.src ? a.src < b.src : a.dst < b.dst;
            });
  std::vector<clique::Demand> out;
  out.reserve(all.size());
  for (const auto& d : all) {
    if (!out.empty() && out.back().src == d.src && out.back().dst == d.dst)
      out.back().words += d.words;
    else
      out.push_back(d);
  }
  return out;
}

}  // namespace

std::int64_t sparse_planned_rounds_batch(
    clique::Network& net, std::span<const SparseMmStructure> sts,
    std::int64_t abort_above) {
  std::int64_t live = 0;
  for (const auto& st : sts)
    if (!st.trivial) ++live;
  if (live == 0) return 0;
  // Same per-phase volume gating as sparse_planned_rounds: abort values
  // are exact-prefix + remaining volume bounds, sound and above threshold.
  const int n = net.n();
  const auto gather = merge_demands(sts, &SparseMmStructure::gather);
  const auto distribute = merge_demands(sts, &SparseMmStructure::distribute);
  const auto contribute = merge_demands(sts, &SparseMmStructure::contribute);
  const std::int64_t lb_d = relay_round_lower_bound(n, distribute);
  const std::int64_t lb_c = relay_round_lower_bound(n, contribute);
  std::int64_t acc = live;
  if (acc + relay_round_lower_bound(n, gather) + lb_d + lb_c > abort_above)
    return acc + relay_round_lower_bound(n, gather) + lb_d + lb_c;
  acc += net.prepare_schedule(gather);
  if (acc + lb_d + lb_c > abort_above) return acc + lb_d + lb_c;
  acc += net.prepare_schedule(distribute);
  if (acc + lb_c > abort_above) return acc + lb_c;
  return acc + net.prepare_schedule(contribute);
}

int semiring_clique_size(int n) {
  CCA_EXPECTS(n >= 1);
  return static_cast<int>(next_cube(n));
}

FastPlan plan_fast_mm(int n, int depth, int base_d, int base_m) {
  CCA_EXPECTS(n >= 1 && depth >= 0 && base_d >= 1 && base_m >= 1);
  FastPlan plan;
  plan.depth = depth;
  plan.d = static_cast<int>(ipow(base_d, depth));
  plan.m = static_cast<int>(ipow(base_m, depth));
  // clique_n must be a perfect square with d | sqrt(clique_n), at least n
  // (to fit the matrix) and at least m (one node per block product).
  const std::int64_t lower = std::max<std::int64_t>(n, plan.m);
  plan.clique_n =
      static_cast<int>(next_square_with_root_multiple(lower, plan.d));
  return plan;
}

FastPlan plan_fast_mm_auto(int n, int base_d, int base_m) {
  CCA_EXPECTS(n >= 1);
  // Largest depth whose product count fits within n nodes ("fix d so that
  // m(d) = n"); deeper tensor powers would leave block products unhosted.
  int depth = 0;
  std::int64_t products = 1;
  while (products * base_m <= n) {
    products *= base_m;
    ++depth;
  }
  // Among depths <= depth, prefer the least per-node round cost. Step 3/5
  // move ~2(N + m) * bs^2 words through each node with bs^2 = N/d^2, i.e.
  // about (N + m)/d^2 rounds; this also accounts for padding inflation of N.
  FastPlan best = plan_fast_mm(n, 0, base_d, base_m);
  auto cost = [](const FastPlan& p) {
    return (static_cast<double>(p.clique_n) + p.m) /
           (static_cast<double>(p.d) * p.d);
  };
  for (int k = 1; k <= depth; ++k) {
    const FastPlan p = plan_fast_mm(n, k, base_d, base_m);
    if (cost(p) < cost(best)) best = p;
  }
  return best;
}

}  // namespace cca::core
