#include "core/mm.hpp"

#include <utility>

namespace cca::core {

std::pair<int, int> sparse_chunk_bounds(int cnt, int g, int r) {
  CCA_EXPECTS(g >= 1 && r >= 0 && r < g && cnt >= g);
  const int base = cnt / g;
  const int rem = cnt % g;
  const int first = r * base + std::min(r, rem);
  return {first, first + base + (r < rem ? 1 : 0)};
}

std::int64_t sparse_triple_count(int n, const SparsePattern& s_rows,
                                 const SparsePattern& t_rows) {
  CCA_EXPECTS(static_cast<int>(s_rows.size()) == n &&
              static_cast<int>(t_rows.size()) == n);
  std::vector<std::int64_t> col_cnt(static_cast<std::size_t>(n), 0);
  for (const auto& row : s_rows)
    for (const int k : row) ++col_cnt[static_cast<std::size_t>(k)];
  std::int64_t triples = 0;
  for (int k = 0; k < n; ++k)
    triples += col_cnt[static_cast<std::size_t>(k)] *
               static_cast<std::int64_t>(t_rows[static_cast<std::size_t>(k)].size());
  return triples;
}

SparseMmStructure build_sparse_mm_structure(
    int n, const SparsePattern& s_rows, const SparsePattern& t_rows,
    const std::function<std::size_t(std::size_t)>& value_words) {
  CCA_EXPECTS(n >= 1);
  CCA_EXPECTS(static_cast<int>(s_rows.size()) == n &&
              static_cast<int>(t_rows.size()) == n);
  SparseMmStructure st;
  st.s_cols.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    st.rho_s += static_cast<std::int64_t>(s_rows[static_cast<std::size_t>(i)].size());
    st.rho_t += static_cast<std::int64_t>(t_rows[static_cast<std::size_t>(i)].size());
    for (const int k : s_rows[static_cast<std::size_t>(i)])
      st.s_cols[static_cast<std::size_t>(k)].push_back(i);
  }
  if (st.rho_s == 0 || st.rho_t == 0) {
    st.trivial = true;
    return st;
  }

  // SparseCodec message size for a c-pair block.
  auto sparse_words = [&](std::size_t c) {
    return (c + 1) / 2 + value_words(c);
  };
  const auto vw1 = static_cast<std::int64_t>(value_words(1));

  // Balanced triple partition: intermediate k owns t_k = colS(k) * rowT(k)
  // triples and gets g_k ~ ceil(t_k n / T) workers, node k first (the
  // common balanced case moves nothing). Extra workers come from a rolling
  // pointer over the node ids — the same g-mod-n flavour of balancing
  // clique::disseminate uses for its word relocation.
  st.group_size.assign(static_cast<std::size_t>(n), 0);
  st.extras.resize(static_cast<std::size_t>(n));
  st.worker_extras.resize(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    st.triples += static_cast<std::int64_t>(st.s_cols[ks].size()) *
                  static_cast<std::int64_t>(t_rows[ks].size());
  }
  int pointer = 0;
  for (int k = 0; k < n; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    const auto t_k = static_cast<std::int64_t>(st.s_cols[ks].size()) *
                     static_cast<std::int64_t>(t_rows[ks].size());
    if (t_k == 0) continue;
    const auto ideal = ceil_div(t_k * n, st.triples);
    const auto cnt = static_cast<std::int64_t>(st.s_cols[ks].size());
    // Replication-efficiency cap: every extra worker receives the FULL T
    // row (b_k entries) alongside its a-chunk, so splitting past ~sqrt(cnt)
    // workers pumps more replicated words out of the holder than it shaves
    // off any worker's contribute load (holder out grows as g * b_k while
    // the per-worker product volume shrinks as cnt * b_k / g — the max of
    // the two is minimized at g = sqrt(cnt)). Power-law hubs are exactly
    // where this bites: deg^2 triples at one intermediate would otherwise
    // demand ~n workers and re-ship the hub row to each of them.
    const auto rep_cap = isqrt(cnt) + 1;
    const int g =
        static_cast<int>(std::min<std::int64_t>({ideal, rep_cap, cnt, n}));
    st.group_size[ks] = g;
    for (int r = 1; r < g; ++r) {
      if (pointer == k) pointer = (pointer + 1) % n;
      st.extras[ks].push_back(pointer);
      st.worker_extras[static_cast<std::size_t>(pointer)].push_back({k, r});
      pointer = (pointer + 1) % n;
    }
  }

  // Gather demands: every off-diagonal nonzero S[i,k] is one value message
  // i -> k — EXCEPT entries of columns whose T row is empty: the step-0
  // announcement already told every node those intermediates can form no
  // triple, so their values never need to move (disjoint-support inputs
  // would otherwise pay full gather rounds for provably-zero work).
  // (src, dst) ascending because rows and their patterns are.
  for (int i = 0; i < n; ++i)
    for (const int k : s_rows[static_cast<std::size_t>(i)])
      if (k != i && !t_rows[static_cast<std::size_t>(k)].empty())
        st.gather.push_back({i, k, vw1});

  // Distribute demands: holder k -> extra worker, header + chunk + T row.
  for (int k = 0; k < n; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    const int g = st.group_size[ks];
    if (g < 2) continue;
    const auto b_cnt = t_rows[ks].size();
    std::vector<std::pair<int, std::int64_t>> msgs;
    for (int r = 1; r < g; ++r) {
      const auto [lo, hi] =
          sparse_chunk_bounds(static_cast<int>(st.s_cols[ks].size()), g, r);
      const auto words = static_cast<std::int64_t>(
          2 + sparse_words(static_cast<std::size_t>(hi - lo)) +
          sparse_words(b_cnt));
      msgs.push_back({st.extras[ks][static_cast<std::size_t>(r - 1)], words});
    }
    std::sort(msgs.begin(), msgs.end());
    for (const auto& [w, words] : msgs)
      st.distribute.push_back({k, w, words});
  }

  // Contribute demands: the symbolic merge. Worker w's items are its own
  // chunk (intermediate w) plus its extra chunks; for each output row i the
  // contribution entry count is the union of the T-row patterns of the
  // intermediates pairing with i at w. This mirrors the executor exactly —
  // entries count as TOUCHED regardless of the eventual product value, so
  // the counts (and hence the demands) are value-independent.
  st.contrib.resize(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
  std::vector<int> seen_list;
  std::vector<std::pair<int, int>> pairs;  // (output row i, intermediate k)
  for (int w = 0; w < n; ++w) {
    const auto ws = static_cast<std::size_t>(w);
    pairs.clear();
    if (st.group_size[ws] >= 1) {
      const auto& rows = st.s_cols[ws];
      const auto [lo, hi] = sparse_chunk_bounds(static_cast<int>(rows.size()),
                                                st.group_size[ws], 0);
      for (int x = lo; x < hi; ++x)
        pairs.push_back({rows[static_cast<std::size_t>(x)], w});
    }
    for (const auto& [k, r] : st.worker_extras[ws]) {
      const auto& rows = st.s_cols[static_cast<std::size_t>(k)];
      const auto [lo, hi] = sparse_chunk_bounds(
          static_cast<int>(rows.size()), st.group_size[static_cast<std::size_t>(k)], r);
      for (int x = lo; x < hi; ++x)
        pairs.push_back({rows[static_cast<std::size_t>(x)], k});
    }
    std::sort(pairs.begin(), pairs.end());
    for (std::size_t a = 0; a < pairs.size();) {
      const int i = pairs[a].first;
      std::size_t b = a;
      for (; b < pairs.size() && pairs[b].first == i; ++b)
        for (const int j :
             t_rows[static_cast<std::size_t>(pairs[b].second)])
          if (seen[static_cast<std::size_t>(j)] == 0) {
            seen[static_cast<std::size_t>(j)] = 1;
            seen_list.push_back(j);
          }
      const int cnt = static_cast<int>(seen_list.size());
      st.contrib[ws].push_back({i, cnt});
      if (i != w)
        st.contribute.push_back(
            {w, i,
             static_cast<std::int64_t>(
                 1 + sparse_words(static_cast<std::size_t>(cnt)))});
      for (const int j : seen_list) seen[static_cast<std::size_t>(j)] = 0;
      seen_list.clear();
      a = b;
    }
  }
  return st;
}

namespace {

/// Emit per-source accumulated words as canonical (src, dst)-ascending
/// demands, skipping self-pairs — the exact list Network::deliver derives
/// from the staged segments.
void emit_demands(int src, std::vector<std::int64_t>& words_by_dst,
                  std::vector<clique::Demand>& out) {
  for (int dst = 0; dst < static_cast<int>(words_by_dst.size()); ++dst) {
    const auto w = words_by_dst[static_cast<std::size_t>(dst)];
    if (w > 0 && dst != src) out.push_back({src, dst, w});
    words_by_dst[static_cast<std::size_t>(dst)] = 0;
  }
}

}  // namespace

std::pair<std::vector<clique::Demand>, std::vector<clique::Demand>>
semiring3d_superstep_demands(int n, std::size_t block_words,
                             std::size_t batch) {
  CCA_EXPECTS(is_perfect_cube(n));
  if (n == 1) return {};
  const int c = static_cast<int>(icbrt(n));
  const int c2 = c * c;
  const auto group =
      static_cast<std::int64_t>(batch * block_words);  // step 3: unpadded
  const auto staged = static_cast<std::int64_t>(
      detail::padded_group_words(batch * block_words));  // step 1: padded
  auto d1 = [c2](int v) { return v / c2; };
  std::vector<std::int64_t> words(static_cast<std::size_t>(n), 0);
  std::vector<clique::Demand> step1, step3;
  for (int v = 0; v < n; ++v) {
    for (int tail = 0; tail < c2; ++tail)
      words[static_cast<std::size_t>(d1(v) * c2 + tail)] += staged;
    for (int w1 = 0; w1 < c; ++w1)
      for (int w3 = 0; w3 < c; ++w3)
        words[static_cast<std::size_t>(w1 * c2 + d1(v) * c + w3)] += staged;
    emit_demands(v, words, step1);
  }
  for (int v = 0; v < n; ++v) {
    for (int tail = 0; tail < c2; ++tail)
      words[static_cast<std::size_t>(d1(v) * c2 + tail)] += group;
    emit_demands(v, words, step3);
  }
  return {std::move(step1), std::move(step3)};
}

std::int64_t semiring3d_planned_rounds(clique::Network& net, int n,
                                       std::size_t block_words,
                                       std::size_t batch) {
  CCA_EXPECTS(net.n() == n);
  if (n == 1) return 0;
  const auto [step1, step3] = semiring3d_superstep_demands(n, block_words, batch);
  return net.prepare_schedule(step1) + net.prepare_schedule(step3);
}

std::vector<std::vector<clique::Demand>> fast_bilinear_superstep_demands(
    int n, const BilinearAlgorithm& alg, std::size_t row_words,
    std::size_t blk_words) {
  CCA_EXPECTS(is_perfect_square(n));
  if (n == 1) return {};
  const int sq = static_cast<int>(isqrt(n));
  const int d = alg.d;
  const int m = alg.m;
  CCA_EXPECTS(d >= 1 && sq % d == 0 && m <= n);
  const int bs = sq / d;
  const int big = n / d;
  const auto rw = static_cast<std::int64_t>(row_words);
  const auto bw = static_cast<std::int64_t>(blk_words);
  std::vector<std::int64_t> words(static_cast<std::size_t>(n), 0);
  std::vector<clique::Demand> s1, s3, s5, s7;
  for (int v = 0; v < n; ++v) {
    const int v2 = (v / bs) % sq;
    for (int x2 = 0; x2 < sq; ++x2)
      words[static_cast<std::size_t>(v2 * sq + x2)] += 2 * rw;
    emit_demands(v, words, s1);
  }
  for (int u = 0; u < n; ++u) {
    for (int w = 0; w < m; ++w)
      words[static_cast<std::size_t>(w)] += 2 * bw;
    emit_demands(u, words, s3);
  }
  for (int w = 0; w < m; ++w) {
    for (int u = 0; u < n; ++u) words[static_cast<std::size_t>(u)] += bw;
    emit_demands(w, words, s5);
  }
  for (int u = 0; u < n; ++u) {
    const int x1 = u / sq;
    for (int r1 = 0; r1 < d; ++r1)
      for (int r3 = 0; r3 < bs; ++r3)
        words[static_cast<std::size_t>(r1 * big + x1 * bs + r3)] += rw;
    emit_demands(u, words, s7);
  }
  std::vector<std::vector<clique::Demand>> out;
  out.push_back(std::move(s1));
  out.push_back(std::move(s3));
  out.push_back(std::move(s5));
  out.push_back(std::move(s7));
  return out;
}

std::int64_t fast_bilinear_planned_rounds(clique::Network& net, int n,
                                          const BilinearAlgorithm& alg,
                                          std::size_t row_words,
                                          std::size_t blk_words) {
  CCA_EXPECTS(net.n() == n);
  if (n == 1) return 0;
  std::int64_t total = 0;
  for (const auto& step :
       fast_bilinear_superstep_demands(n, alg, row_words, blk_words))
    total += net.prepare_schedule(step);
  return total;
}

std::int64_t relay_round_lower_bound(int n,
                                     const std::vector<clique::Demand>& demands) {
  if (n <= 1 || demands.empty()) return 0;
  std::vector<std::int64_t> out(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> in(static_cast<std::size_t>(n), 0);
  for (const auto& d : demands) {
    out[static_cast<std::size_t>(d.src)] += d.words;
    in[static_cast<std::size_t>(d.dst)] += d.words;
  }
  // The relay counts the self-loop as a usable link (a word whose
  // intermediate is its own source or destination skips that hop), so each
  // phase spreads a node's volume over n ports, not n-1 — dividing by n-1
  // here would EXCEED the real schedule on shapes the scheduler balances
  // perfectly (measured: 33 vs an actual 29 for the fast-bilinear step
  // shapes at n=64), silently breaking the skip gate's soundness.
  std::int64_t a = 0, b = 0;
  for (int v = 0; v < n; ++v) {
    a = std::max(a, ceil_div(out[static_cast<std::size_t>(v)], n));
    b = std::max(b, ceil_div(in[static_cast<std::size_t>(v)], n));
  }
  return a + b;
}

std::int64_t sparse_plan_cap(int n) {
  return 4 * static_cast<std::int64_t>(n) * n * icbrt(n);
}

std::int64_t sparse_planned_rounds(clique::Network& net,
                                   const SparseMmStructure& st) {
  if (st.trivial) return 0;
  return 1 + net.prepare_schedule(st.gather) +
         net.prepare_schedule(st.distribute) +
         net.prepare_schedule(st.contribute);
}

namespace {

/// Merge per-product canonical demand lists into the canonical list of the
/// SHARED batched superstep: the per-pair blocks concatenate on the wire,
/// so words add per (src, dst) — exactly the list Network::deliver derives
/// from the batched staging.
std::vector<clique::Demand> merge_demands(
    std::span<const SparseMmStructure> sts,
    std::vector<clique::Demand> SparseMmStructure::* phase) {
  std::vector<clique::Demand> all;
  for (const auto& st : sts)
    if (!st.trivial)
      all.insert(all.end(), (st.*phase).begin(), (st.*phase).end());
  std::sort(all.begin(), all.end(),
            [](const clique::Demand& a, const clique::Demand& b) {
              return a.src != b.src ? a.src < b.src : a.dst < b.dst;
            });
  std::vector<clique::Demand> out;
  out.reserve(all.size());
  for (const auto& d : all) {
    if (!out.empty() && out.back().src == d.src && out.back().dst == d.dst)
      out.back().words += d.words;
    else
      out.push_back(d);
  }
  return out;
}

}  // namespace

std::int64_t sparse_planned_rounds_batch(
    clique::Network& net, std::span<const SparseMmStructure> sts) {
  std::int64_t live = 0;
  for (const auto& st : sts)
    if (!st.trivial) ++live;
  if (live == 0) return 0;
  return live +
         net.prepare_schedule(merge_demands(sts, &SparseMmStructure::gather)) +
         net.prepare_schedule(
             merge_demands(sts, &SparseMmStructure::distribute)) +
         net.prepare_schedule(
             merge_demands(sts, &SparseMmStructure::contribute));
}

int semiring_clique_size(int n) {
  CCA_EXPECTS(n >= 1);
  return static_cast<int>(next_cube(n));
}

FastPlan plan_fast_mm(int n, int depth, int base_d, int base_m) {
  CCA_EXPECTS(n >= 1 && depth >= 0 && base_d >= 1 && base_m >= 1);
  FastPlan plan;
  plan.depth = depth;
  plan.d = static_cast<int>(ipow(base_d, depth));
  plan.m = static_cast<int>(ipow(base_m, depth));
  // clique_n must be a perfect square with d | sqrt(clique_n), at least n
  // (to fit the matrix) and at least m (one node per block product).
  const std::int64_t lower = std::max<std::int64_t>(n, plan.m);
  plan.clique_n =
      static_cast<int>(next_square_with_root_multiple(lower, plan.d));
  return plan;
}

FastPlan plan_fast_mm_auto(int n, int base_d, int base_m) {
  CCA_EXPECTS(n >= 1);
  // Largest depth whose product count fits within n nodes ("fix d so that
  // m(d) = n"); deeper tensor powers would leave block products unhosted.
  int depth = 0;
  std::int64_t products = 1;
  while (products * base_m <= n) {
    products *= base_m;
    ++depth;
  }
  // Among depths <= depth, prefer the least per-node round cost. Step 3/5
  // move ~2(N + m) * bs^2 words through each node with bs^2 = N/d^2, i.e.
  // about (N + m)/d^2 rounds; this also accounts for padding inflation of N.
  FastPlan best = plan_fast_mm(n, 0, base_d, base_m);
  auto cost = [](const FastPlan& p) {
    return (static_cast<double>(p.clique_n) + p.m) /
           (static_cast<double>(p.d) * p.d);
  };
  for (int k = 1; k <= depth; ++k) {
    const FastPlan p = plan_fast_mm(n, k, base_d, base_m);
    if (cost(p) < cost(best)) best = p;
  }
  return best;
}

}  // namespace cca::core
