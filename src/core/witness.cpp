#include "core/witness.hpp"

#include <vector>

#include "clique/broadcast.hpp"
#include "clique/primitives.hpp"
#include "matrix/semiring.hpp"
#include "util/contracts.hpp"
#include "util/math.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace cca::core {

namespace {

constexpr std::int64_t kInf = MinPlusSemiring::kInf;

/// Mask columns (of S) or rows (of T) to the given index set; everything
/// outside becomes +infinity. Local per-node computation in the clique
/// (node u masks its own row), so no rounds are charged.
Matrix<std::int64_t> mask_cols(const Matrix<std::int64_t>& s,
                               const std::vector<std::uint8_t>& keep) {
  Matrix<std::int64_t> out(s.rows(), s.cols(), kInf);
  for (int i = 0; i < s.rows(); ++i)
    for (int j = 0; j < s.cols(); ++j)
      if (keep[static_cast<std::size_t>(j)]) out(i, j) = s(i, j);
  return out;
}

Matrix<std::int64_t> mask_rows(const Matrix<std::int64_t>& t,
                               const std::vector<std::uint8_t>& keep) {
  Matrix<std::int64_t> out(t.rows(), t.cols(), kInf);
  for (int i = 0; i < t.rows(); ++i) {
    if (!keep[static_cast<std::size_t>(i)]) continue;
    for (int j = 0; j < t.cols(); ++j) out(i, j) = t(i, j);
  }
  return out;
}

}  // namespace

Matrix<int> unique_witness_candidates(const Matrix<std::int64_t>& s,
                                      const Matrix<std::int64_t>& t,
                                      const Matrix<std::int64_t>& p,
                                      const DpOracle& oracle) {
  const int n = s.rows();
  CCA_EXPECTS(s.cols() == n && t.rows() == n && t.cols() == n);
  CCA_EXPECTS(p.rows() == n && p.cols() == n);

  Matrix<int> q(n, n, 0);
  const int bits = n > 1 ? ilog2(n - 1) + 1 : 1;
  for (int bit = 0; bit < bits; ++bit) {
    std::vector<std::uint8_t> keep(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k)
      keep[static_cast<std::size_t>(k)] =
          static_cast<std::uint8_t>((k >> bit) & 1);
    const auto pi = oracle(mask_cols(s, keep), mask_rows(t, keep));
    for (int u = 0; u < n; ++u)
      for (int v = 0; v < n; ++v)
        if (p(u, v) < kInf && pi(u, v) == p(u, v)) q(u, v) |= 1 << bit;
  }
  for (int u = 0; u < n; ++u)
    for (int v = 0; v < n; ++v)
      if (p(u, v) >= kInf || q(u, v) >= n) q(u, v) = -1;
  return q;
}

Matrix<std::uint8_t> verify_witnesses(clique::Network& net,
                                      const Matrix<std::int64_t>& s,
                                      const Matrix<std::int64_t>& t,
                                      const Matrix<std::int64_t>& p,
                                      const Matrix<int>& q) {
  const int n = net.n();
  // Genuinely full-ownership: the transpose/probe supersteps read every
  // inbox.
  clique::require_full_ownership(net, "verify_witnesses",
                                 "no sharded equivalent exists");
  CCA_EXPECTS(s.rows() == n && s.cols() == n);
  CCA_EXPECTS(t.rows() == n && t.cols() == n);
  CCA_EXPECTS(p.rows() == n && p.cols() == n);
  CCA_EXPECTS(q.rows() == n && q.cols() == n);

  // Superstep 1: transpose T so node v holds column v (node k owns row k).
  // Staging runs parallel over senders — each k owns its outbox.
  parallel_for(0, n, [&](int k) {
    for (int v = 0; v < n; ++v) {
      // lint:allow(full-range-staging): owns_all() validated at entry.
      const auto span = net.stage(k, v, 1);
      span[0] = static_cast<clique::Word>(t(k, v));
    }
  });
  net.deliver();
  // Node v's column of T, assembled from the inboxes (distinct rows).
  Matrix<std::int64_t> tcol(n, n, kInf);  // tcol(v, k) = T(k, v)
  parallel_for(0, n, [&](int v) {
    for (int k = 0; k < n; ++k) {
      const auto in = net.inbox(v, k);
      CCA_ASSERT(in.size() == 1);
      tcol(v, k) = static_cast<std::int64_t>(in[0]);
    }
  });

  // Superstep 2: node u ships (q, S[u,q], P[u,v]) to v for every v,
  // written straight into the staged span.
  parallel_for(0, n, [&](int u) {
    for (int v = 0; v < n; ++v) {
      const int w = q(u, v);
      const std::int64_t suw = (w >= 0) ? s(u, w) : kInf;
      // lint:allow(full-range-staging): owns_all() validated at entry.
      const auto msg = net.stage(u, v, 3);
      msg[0] = static_cast<clique::Word>(w);
      msg[1] = static_cast<clique::Word>(suw);
      msg[2] = static_cast<clique::Word>(p(u, v));
    }
  });
  net.deliver();

  // Node v checks each claim against its T column and replies one bit
  // (sender of the reply is v, so the loop parallelises over v).
  Matrix<std::uint8_t> ok(n, n, 0);
  parallel_for(0, n, [&](int v) {
    for (int u = 0; u < n; ++u) {
      const auto in = net.inbox(v, u);
      CCA_ASSERT(in.size() == 3);
      const int w = static_cast<int>(static_cast<std::int64_t>(in[0]));
      const auto suw = static_cast<std::int64_t>(in[1]);
      const auto puv = static_cast<std::int64_t>(in[2]);
      bool valid = false;
      if (w >= 0 && w < n && suw < kInf && puv < kInf) {
        const auto tkv = tcol(v, w);
        valid = tkv < kInf && suw + tkv == puv;
      }
      // lint:allow(full-range-staging): owns_all() validated at entry.
      const auto reply = net.stage(v, u, 1);
      reply[0] = valid ? 1 : 0;
    }
  });
  net.deliver();
  parallel_for(0, n, [&](int u) {
    for (int v = 0; v < n; ++v) {
      const auto in = net.inbox(u, v);
      CCA_ASSERT(in.size() == 1);
      ok(u, v) = static_cast<std::uint8_t>(in[0]);
    }
  });
  return ok;
}

Matrix<int> dp_witnesses(clique::Network& net, const Matrix<std::int64_t>& s,
                         const Matrix<std::int64_t>& t,
                         const Matrix<std::int64_t>& p,
                         const DpOracle& oracle, std::uint64_t seed,
                         int trial_factor) {
  const int n = net.n();
  // Rides verify_witnesses, which is genuinely full-ownership only.
  clique::require_full_ownership(
      net, "dp_witnesses", "use dp_semiring_witness for sharded runs");
  CCA_EXPECTS(trial_factor >= 1);
  // One round to agree on the shared random seed — a real broadcast
  // superstep (node 0 sends the seed on each link), not a bare charge, so
  // the words show up in TrafficStats.
  Rng rng(clique::agree_on_seed(net, 0, seed));

  Matrix<int> witness(n, n, -1);
  std::int64_t missing = 0;
  for (int u = 0; u < n; ++u)
    for (int v = 0; v < n; ++v)
      if (p(u, v) < kInf) ++missing;

  // First pass: many pairs have a unique witness already.
  {
    const auto q = unique_witness_candidates(s, t, p, oracle);
    const auto ok = verify_witnesses(net, s, t, p, q);
    for (int u = 0; u < n; ++u)
      for (int v = 0; v < n; ++v)
        if (ok(u, v)) {
          witness(u, v) = q(u, v);
          --missing;
        }
  }

  const int log_n = n > 1 ? ilog2(n - 1) + 1 : 1;
  const int trials = trial_factor * log_n;
  for (int level = 0; level < log_n && missing > 0; ++level) {
    // Targets pairs with between n/2^{level+1} and n/2^{level} witnesses:
    // a sample of 2^{level} columns isolates one with constant probability.
    const auto sample_size = std::int64_t{1} << level;
    for (int trial = 0; trial < trials && missing > 0; ++trial) {
      std::vector<std::uint8_t> keep(static_cast<std::size_t>(n), 0);
      for (std::int64_t i = 0; i < sample_size; ++i)
        keep[static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(n)))] = 1;
      const auto sm = mask_cols(s, keep);
      const auto tm = mask_rows(t, keep);
      const auto pm = oracle(sm, tm);
      const auto q = unique_witness_candidates(sm, tm, pm, oracle);
      const auto ok = verify_witnesses(net, s, t, p, q);
      for (int u = 0; u < n; ++u)
        for (int v = 0; v < n; ++v)
          if (witness(u, v) < 0 && ok(u, v) && p(u, v) < kInf) {
            witness(u, v) = q(u, v);
            --missing;
          }
    }
  }
  return witness;
}

}  // namespace cca::core
