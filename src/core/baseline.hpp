// Prior-work baselines from Table 1 of the paper.
//
//  * detect_k_cycle_dolev — the combinatorial subgraph-detection scheme of
//    Dolev, Lenzen and Peled [24]: partition V into q ~ n^{1/k} groups; a
//    dedicated node per k-tuple of groups learns every edge inside the
//    union of its groups (O(k^2 n^{2-2/k}) words per node, hence
//    O(k^2 n^{1-2/k}) rounds) and searches locally. Deterministic and exact.
//    This is the O~(n^{1-2/k}) row of Table 1 (k = 4 gives the prior
//    4-cycle bound O~(n^{1/2})).
//
//  * apsp_naive_learn — every node learns the entire weighted graph through
//    the dissemination primitive (O(m/n) rounds, Theta(n) on dense graphs)
//    and solves APSP locally. The trivial upper bound the algebraic
//    algorithms are measured against.
//
// The Table 1 "prior work" triangle/4-cycle COUNTING bound (Dolev et al.'s
// O(n^{1/3}) partition algorithm) coincides with the semiring 3D engine:
// run count_*_cc with MmKind::Semiring3D.
#pragma once

#include <cstdint>

#include "clique/network.hpp"
#include "core/apsp.hpp"
#include "graph/graph.hpp"

namespace cca::core {

struct BaselineDetectOutcome {
  bool found = false;
  clique::TrafficStats traffic;
};

/// Dolev et al. k-cycle detection (exact, deterministic).
[[nodiscard]] BaselineDetectOutcome detect_k_cycle_dolev(const Graph& g,
                                                         int k);

/// Naive APSP: learn the whole graph, solve locally.
[[nodiscard]] ApspOutcome apsp_naive_learn(const Graph& g);

}  // namespace cca::core
