// All-pairs shortest paths on the congested clique (paper Section 3.3).
//
//  * apsp_semiring       — Corollary 6: iterated min-plus squaring with the
//                          3D semiring algorithm; O(n^{1/3} log n) rounds.
//                          Produces distances AND routing tables (next hops)
//                          through the witness-carrying semiring product.
//  * apsp_seidel         — Corollary 7: exact unweighted undirected APSP by
//                          Seidel's recursion over fast Boolean/integer
//                          products; O~(n^rho) rounds.
//  * apsp_bounded        — Lemma 19: distances up to M via the Lemma 18
//                          ring embedding; O(M n^rho log n) rounds.
//  * apsp_small_diameter — Corollary 8: doubling search over the weighted
//                          diameter U; O~(U n^rho) rounds.
//  * apsp_approx         — Theorem 9: (1+delta)^ceil(log2 n)-approximate
//                          weighted APSP through the Lemma 20 approximate
//                          products; with the delta SCHEDULE delta(n) =
//                          o(1/log n) — apsp_approx_auto implements
//                          delta(n) = 1/ceil(log2 n)^2 — the accumulated
//                          factor is 1 + O(1/log n) = 1 + o(1), which is
//                          how Theorem 9's headline bound is realised.
//  * apsp_semiring_batch — multi-query engine: B graphs' exact APSP through
//                          SHARED supersteps (batched witness-carrying
//                          min-plus squarings; one routing schedule per
//                          superstep serves the whole batch).
//
// All variants return distances indexed by the original graph's nodes;
// padding to admissible clique sizes is internal. Unreachable pairs hold
// MinPlusSemiring::kInf.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "clique/network.hpp"
#include "core/engine.hpp"
#include "graph/graph.hpp"

namespace cca::core {

struct ApspOutcome {
  Matrix<std::int64_t> dist;
  /// next_hop(u,v) = first node after u on a shortest u->v path; -1 when
  /// v is unreachable or u == v. Only filled by variants documented to
  /// build routing tables (empty matrix otherwise).
  Matrix<int> next_hop;
  clique::TrafficStats traffic;
  /// Per-multiplication engine choices of the nnz-adaptive dispatcher, in
  /// call order (empty for fixed-engine runs). For the iterated squarings
  /// the densification flip — sparse rounds while the iterate is mostly
  /// infinite, dense once squaring has filled it in — is the first
  /// Sparse -> dense transition; bench_apsp --sparse prints it.
  std::vector<AutoEngineChoice> engine_trace;
};

/// Corollary 6: exact APSP for directed graphs with integer weights
/// (negative weights allowed when no negative cycle exists). Builds routing
/// tables. O(n^{1/3} log n) rounds worst case; each squaring goes through
/// the witness-carrying product and a 1-round convergence vote exits the
/// loop as soon as the iterate stops improving (min-plus squaring is
/// monotone, so a fixed point stays fixed — the fixed iteration count of
/// the seed kept squaring an idempotent matrix).
///
/// `kind` selects the per-squaring engine: MmKind::Auto (default)
/// re-dispatches EVERY iteration from the current iterate's finite-entry
/// announcement — sparse graphs pay sparse rounds until squaring densifies
/// the distance matrix, then the dispatch context's hysteresis locks the
/// dense 3D engine (see MmDispatchContext; the choices land in
/// ApspOutcome::engine_trace). MmKind::Semiring3D forces the fixed dense
/// path of the seed. Distances and routing tables are element-identical
/// either way. Dense iterations replay cached Koenig schedules (the
/// shapes repeat), so the schedule cache still collapses the Euler split.
[[nodiscard]] ApspOutcome apsp_semiring(const Graph& g,
                                        MmKind kind = MmKind::Auto);

/// Multi-query exact APSP: the outcomes of apsp_semiring(gs[i]) for B
/// graphs (padded to one shared clique), with every squaring iteration
/// batched through shared supersteps. `traffic` holds the whole batch's
/// cost — strictly below the sum of B independent runs whenever the
/// single-graph supersteps leave link capacity idle. Distances and routing
/// tables are element-identical to the per-graph runs.
struct ApspBatchOutcome {
  std::vector<Matrix<std::int64_t>> dist;
  std::vector<Matrix<int>> next_hop;
  clique::TrafficStats traffic;
  /// Shared per-iteration engine choices (one entry per batched squaring).
  std::vector<AutoEngineChoice> engine_trace;
};
[[nodiscard]] ApspBatchOutcome apsp_semiring_batch(std::span<const Graph> gs,
                                                   MmKind kind = MmKind::Auto);

/// Corollary 7: exact APSP for unweighted undirected graphs via Seidel's
/// algorithm; distances only. O~(n^rho) rounds. The default Auto engine
/// threads one dispatch context through every level's products, so sparse
/// adjacency levels run the sparse engine and the recursion's densifying
/// squarings flip to a locked dense engine (ApspOutcome::engine_trace).
[[nodiscard]] ApspOutcome apsp_seidel(const Graph& g,
                                      MmKind kind = MmKind::Auto,
                                      int depth = -1);

/// Lemma 19: distances up to `m_bound` (larger distances become inf) for
/// non-negative integer weights. O(M n^rho log n) rounds.
[[nodiscard]] ApspOutcome apsp_bounded(const Graph& g, std::int64_t m_bound,
                                       int depth = -1);

/// Corollary 8: exact APSP for positive integer weights by doubling the
/// distance bound until every reachable pair is covered.
[[nodiscard]] ApspOutcome apsp_small_diameter(const Graph& g, int depth = -1);

/// Theorem 9 core: approximate APSP for non-negative integer weights with
/// an EXPLICIT per-product error parameter. The implemented guarantee is
///
///   d(u,v) <= dist(u,v) <= (1 + delta)^ceil(log2 n) * d(u,v)
///
/// — each of the ceil(log2 n) squarings goes through a Lemma 20
/// (1+delta)-approximate product, and the factors compound. A FIXED delta
/// therefore does NOT give (1+o(1)); that headline bound needs the delta
/// schedule delta(n) = o(1/log n) (see apsp_approx_auto), under which
/// (1+delta)^ceil(log2 n) = 1 + O(delta log n) -> 1. test_apsp.cpp asserts
/// the implemented bound on adversarial (exponentially spread) weights.
[[nodiscard]] ApspOutcome apsp_approx(const Graph& g, double delta,
                                      int depth = -1);

/// Theorem 9 as stated — (1+o(1))-approximate APSP — via the concrete
/// delta schedule delta(n) = 1/ceil(log2 n)^2: the accumulated error
/// (1 + 1/log^2 n)^ceil(log2 n) <= e^{1/log n} = 1 + o(1). Rounds grow by
/// the usual Lemma 20 factor O(log^2(1/delta)/delta) relative to a
/// constant-delta run.
[[nodiscard]] ApspOutcome apsp_approx_auto(const Graph& g, int depth = -1);

/// Build a next-hop routing table for ANY exact distance matrix (produced
/// by any of the APSP variants): ONE witnessed distance product W * D
/// yields, for every pair, a neighbour w of u with W(u,w) + D(w,v) =
/// D(u,v) — an optimal first hop. This is how Section 3.3 attaches routing
/// tables to the fast (witness-less) products via Section 3.4 witnesses.
/// `traffic` (optional) receives the rounds consumed.
[[nodiscard]] Matrix<int> routing_table_from_distances(
    const Graph& g, const Matrix<std::int64_t>& dist,
    clique::TrafficStats* traffic = nullptr);

}  // namespace cca::core
