// All-pairs shortest paths on the congested clique (paper Section 3.3).
//
//  * apsp_semiring       — Corollary 6: iterated min-plus squaring with the
//                          3D semiring algorithm; O(n^{1/3} log n) rounds.
//                          Produces distances AND routing tables (next hops)
//                          through the witness-carrying semiring product.
//  * apsp_seidel         — Corollary 7: exact unweighted undirected APSP by
//                          Seidel's recursion over fast Boolean/integer
//                          products; O~(n^rho) rounds.
//  * apsp_bounded        — Lemma 19: distances up to M via the Lemma 18
//                          ring embedding; O(M n^rho log n) rounds.
//  * apsp_small_diameter — Corollary 8: doubling search over the weighted
//                          diameter U; O~(U n^rho) rounds.
//  * apsp_approx         — Theorem 9: (1+o(1))-approximate weighted APSP
//                          through the Lemma 20 approximate products.
//
// All variants return distances indexed by the original graph's nodes;
// padding to admissible clique sizes is internal. Unreachable pairs hold
// MinPlusSemiring::kInf.
#pragma once

#include <cstdint>

#include "clique/network.hpp"
#include "core/engine.hpp"
#include "graph/graph.hpp"

namespace cca::core {

struct ApspOutcome {
  Matrix<std::int64_t> dist;
  /// next_hop(u,v) = first node after u on a shortest u->v path; -1 when
  /// v is unreachable or u == v. Only filled by variants documented to
  /// build routing tables (empty matrix otherwise).
  Matrix<int> next_hop;
  clique::TrafficStats traffic;
};

/// Corollary 6: exact APSP for directed graphs with integer weights
/// (negative weights allowed when no negative cycle exists). Builds routing
/// tables. O(n^{1/3} log n) rounds.
[[nodiscard]] ApspOutcome apsp_semiring(const Graph& g);

/// Corollary 7: exact APSP for unweighted undirected graphs via Seidel's
/// algorithm; distances only. O~(n^rho) rounds.
[[nodiscard]] ApspOutcome apsp_seidel(const Graph& g,
                                      MmKind kind = MmKind::Fast,
                                      int depth = -1);

/// Lemma 19: distances up to `m_bound` (larger distances become inf) for
/// non-negative integer weights. O(M n^rho log n) rounds.
[[nodiscard]] ApspOutcome apsp_bounded(const Graph& g, std::int64_t m_bound,
                                       int depth = -1);

/// Corollary 8: exact APSP for positive integer weights by doubling the
/// distance bound until every reachable pair is covered.
[[nodiscard]] ApspOutcome apsp_small_diameter(const Graph& g, int depth = -1);

/// Theorem 9: (1+o(1))-approximate APSP for non-negative integer weights;
/// the returned distances satisfy d <= dist <= (1+delta)^ceil(log2 n) d.
[[nodiscard]] ApspOutcome apsp_approx(const Graph& g, double delta,
                                      int depth = -1);

/// Build a next-hop routing table for ANY exact distance matrix (produced
/// by any of the APSP variants): ONE witnessed distance product W * D
/// yields, for every pair, a neighbour w of u with W(u,w) + D(w,v) =
/// D(u,v) — an optimal first hop. This is how Section 3.3 attaches routing
/// tables to the fast (witness-less) products via Section 3.4 witnesses.
/// `traffic` (optional) receives the rounds consumed.
[[nodiscard]] Matrix<int> routing_table_from_distances(
    const Graph& g, const Matrix<std::int64_t>& dist,
    clique::TrafficStats* traffic = nullptr);

}  // namespace cca::core
