// The first real (multi-process) data-plane backend: localhost TCP.
//
// A clique of n nodes runs as P <= n OS processes ("ranks"); rank r owns
// the contiguous node shard shard_span(n, P, r). Each rank stages words
// only from its owned sources (asserted by Network), and deliver() runs a
// deterministic two-step exchange over a full mesh of TCP connections:
//
//   1. COUNT ALL-GATHER — every rank sends the per-pair word counts of its
//      owned source rows to every peer. Afterwards every rank holds the
//      identical global count matrix, from which it reconstructs the
//      identical canonical (src asc, dst asc) demand list and per-node
//      volumes. Network then charges the identical rounds on every rank:
//      the routing schedules are pure functions of the demand list, so
//      rounds / total_words / schedule hits and misses are bit-identical
//      to a single-process ArenaTransport oracle by construction.
//   2. PAYLOAD EXCHANGE — every rank lays out the IDENTICAL receiver-major
//      arena from the global counts, scatters its own staged runs into it,
//      and swaps the (owned src -> peer-owned dst) slices pairwise. Because
//      senders ascend contiguously within a receiver, each (receiver,
//      sender-shard) region is one contiguous arena range — frames are
//      simple slices at offsets both sides compute independently.
//
// Exchanges walk peers in ascending rank order and pump each pair's two
// frames full-duplex (poll on read+write), so no send/recv ordering can
// deadlock. Frames are length-prefixed ([magic][per-pair seq][byte count])
// and the sequence numbers assert that both sides agree on which exchange
// this is — ranks run the same deterministic program, so any divergence is
// a bug, not a race.
//
// Scope: staged_snapshot() and discard_staged() act on LOCAL staged state
// only; staged_meta() is the globally consistent view (a non-destructive
// count all-gather mirroring deliver()'s step 1). The hardened fault path
// plans entirely from staged_meta(), so FaultPlan drop/corrupt/duplicate/
// straggler semantics compose with this backend — every rank draws the
// identical coins and charges the identical retransmissions. Crash
// recovery still requires full ownership (Network validates): replaying a
// crashed superstep needs the GLOBAL staged payloads, which live on their
// owning ranks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "clique/transport.hpp"

namespace cca::clique {

/// A full mesh of connected byte streams between P ranks. Construction is
/// either over localhost TCP (connect_tcp: rank r listens on
/// port_base + r, connects to lower ranks, accepts higher ranks) or by
/// adopting pre-connected file descriptors (tests use socketpair()s).
class SocketMesh {
 public:
  /// Adopt pre-connected stream sockets: peer_fds[q] is the fd connected
  /// to rank q (ignored / -1 at q == rank). Takes ownership of the fds.
  SocketMesh(int rank, int nprocs, std::vector<int> peer_fds);
  ~SocketMesh();

  SocketMesh(const SocketMesh&) = delete;
  SocketMesh& operator=(const SocketMesh&) = delete;

  /// Wire the localhost mesh: bind+listen on port_base + rank, connect to
  /// every lower rank (retrying until its listener is up, bounded by
  /// timeout_ms), then accept every higher rank; a one-word hello
  /// identifies each accepted peer. Throws std::runtime_error on failure.
  [[nodiscard]] static std::shared_ptr<SocketMesh> connect_tcp(
      int rank, int nprocs, int port_base, int timeout_ms = 30000);

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int nprocs() const noexcept { return nprocs_; }

  /// Blocking full-duplex exchange of one length-prefixed frame with
  /// `peer`: sends `out`, receives exactly `in.size()` bytes into `in`.
  /// Both directions pump under one poll loop, so neither side's send
  /// order can deadlock the pair. Throws std::runtime_error on protocol
  /// mismatch (bad magic, unexpected sequence number or frame size) or
  /// peer disconnect.
  void exchange(int peer, std::span<const std::byte> out,
                std::span<std::byte> in);

 private:
  int rank_;
  int nprocs_;
  std::vector<int> fds_;        // [peer] connected stream, -1 for self
  std::vector<std::uint64_t> seq_;  // [peer] frames exchanged so far
};

/// Localhost TCP Transport over a SocketMesh. Inherits ArenaTransport's
/// staging machinery and arena layout verbatim; only delivery crosses
/// process boundaries (see the header comment). The P=1 mesh degenerates
/// to ArenaTransport plus nothing — every exchange loop is empty.
class SocketTransport final : public ArenaTransport {
 public:
  /// A transport for an n-node clique sharded over mesh's P ranks.
  /// Requires P <= n (every rank owns at least one node).
  SocketTransport(int n, std::shared_ptr<SocketMesh> mesh);

  [[nodiscard]] NodeSpan owned() const noexcept override { return own_; }

  DeliverySummary deliver() override;

  [[nodiscard]] std::vector<Demand> staged_meta() override;

  void allgather_blocks(std::span<Word> data,
                        std::span<const std::size_t> offsets) override;

  /// The ambient-scope factory for this mesh: every Network(int n)
  /// constructed under TransportScope(SocketTransport::factory(mesh))
  /// shards its clique over the mesh's ranks.
  [[nodiscard]] static TransportScope::Factory factory(
      std::shared_ptr<SocketMesh> mesh);

 private:
  /// Contiguous arena byte range holding the (dst, src in [s_lo, s_hi))
  /// slices for one receiver — the unit of the payload exchange.
  [[nodiscard]] std::span<std::byte> arena_range(NodeId dst, NodeId s_lo,
                                                 NodeId s_hi) noexcept;

  std::shared_ptr<SocketMesh> mesh_;
  NodeSpan own_;
};

}  // namespace cca::clique
