// The congested clique network model.
//
// n nodes communicate in synchronous rounds; in each round every ordered pair
// of nodes may exchange one O(log n)-bit message. We fix the message unit as
// one 64-bit machine word (sufficient for values of absolute value poly(n));
// larger entries are encoded as multiple words, which reproduces the paper's
// "factor b / log n" overhead for b-bit entries (Section 1.1).
//
// Algorithms are written in bulk-synchronous supersteps: every node stages an
// outbox of words computed from its own local state, then `deliver()` moves
// all staged words to the receivers' inboxes and charges the EXACT number of
// clique rounds that a concrete delivery discipline needs (see routing.hpp).
// Round counts are produced by evaluating the discipline's schedule, never by
// plugging n into an asymptotic formula.
//
// Architecture: Network is the ACCOUNTING layer — demand scheduling, round
// charging, TrafficStats, the schedule cache, and the fault/integrity
// machinery. The data plane (staging buffers, delivery arena, inboxes) lives
// behind the clique::Transport seam (transport.hpp); the in-process
// ArenaTransport is the default backend, and a future multi-process backend
// slots in without touching any round accounting.
//
// Fault model (fault.hpp): installing a FaultPlan hardens every deliver() —
// payloads are framed with SplitMix64 checksums (one trailer word per
// nonempty off-diagonal pair, charged for real), deterministic seeded faults
// are injected, verification failures trigger bounded retransmission
// supersteps charged into retransmit_rounds/retransmit_words, and crashes
// surface as typed PeerFailure. With no plan installed the fault path is
// completely bypassed: rounds, words, and schedules are bit-identical to the
// pre-seam engine.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "clique/fault.hpp"
#include "clique/routing.hpp"
#include "clique/transport.hpp"
#include "util/analysis.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace cca::clique {

/// Delivery disciplines. See routing.hpp for the schedules.
enum class Router {
  /// Every word travels on its (src,dst) link; rounds = max link load.
  Direct,
  /// Two-phase relay with deterministic hashed spreading of each (src,dst)
  /// block over intermediates; O(1) rounds for Lenzen-balanced instances.
  HashRelay,
  /// Two-phase relay with a random starting intermediate per block
  /// (Valiant-style); randomized counterpart of HashRelay.
  RandomRelay,
  /// Two-phase relay scheduled by Euler-split edge colouring of the demand
  /// multigraph (a constructive Koenig/Birkhoff decomposition). Deterministic
  /// and near-optimal for arbitrary instances; this is the executable
  /// counterpart of the routing guarantees of Lenzen [46] and
  /// Dolev et al. [24, Lemma 1].
  KoenigRelay,
};

/// Cumulative communication statistics for a Network.
struct TrafficStats {
  std::int64_t rounds = 0;          ///< total clique rounds charged
  /// Schedule-independent lower bound: per superstep every node must push
  /// its staged words through n-1 ports and ingest its received words the
  /// same way, so no routing discipline can beat
  /// max_v ceil(max(out_v, in_v) / (n-1)). Summed over supersteps (explicit
  /// protocol charges count at face value). `rounds / bound_rounds` is the
  /// router's constant-factor overhead.
  std::int64_t bound_rounds = 0;
  std::int64_t supersteps = 0;      ///< delivery operations performed
  std::int64_t total_words = 0;     ///< words moved across the network
  std::int64_t max_node_send = 0;   ///< max words staged by one node, one superstep
  std::int64_t max_node_recv = 0;   ///< max words received by one node, one superstep
  /// Koenig schedule-cache counters: supersteps whose routing schedule was
  /// reused from an earlier byte-identical demand list vs computed fresh.
  /// hits + misses == KoenigRelay supersteps with non-empty demands. The
  /// counters are wall-clock telemetry only: a hit replays the exact same
  /// schedule, so rounds/words are unaffected.
  std::int64_t schedule_hits = 0;
  std::int64_t schedule_misses = 0;
  /// Host wall-clock nanoseconds spent INSIDE the relay scheduler (cache
  /// lookups included) by deliver() and prepare_schedule(). Pure telemetry —
  /// it measures the simulator's own planning cost, never the simulated
  /// rounds — and machine-dependent like recovery_wall_ns.
  std::int64_t schedule_wall_ns = 0;
  /// Fault events injected by the installed FaultPlan: drops, corruptions,
  /// duplicates, straggling nodes, and crash detections, summed over every
  /// delivery attempt.
  std::int64_t faults_injected = 0;
  /// Rounds spent on retransmission attempts (per attempt: one NACK control
  /// round plus the exact schedule of the failed frames). Included in
  /// `rounds` — this field isolates the failure-path share.
  std::int64_t retransmit_rounds = 0;
  /// Words re-sent by retransmission attempts (checksum trailers included).
  /// Included in `total_words`.
  std::int64_t retransmit_words = 0;
  /// Host wall-clock nanoseconds spent inside hardened deliver() calls
  /// (snapshot, checksums, fault coins, verification, retransmission
  /// bookkeeping — scheduler and arena time included). Machine-dependent
  /// telemetry for the fault-path overhead story; 0 when no plan installed.
  std::int64_t recovery_wall_ns = 0;

  friend TrafficStats operator-(const TrafficStats& a, const TrafficStats& b) {
    return TrafficStats{a.rounds - b.rounds,
                        a.bound_rounds - b.bound_rounds,
                        a.supersteps - b.supersteps,
                        a.total_words - b.total_words,
                        a.max_node_send,
                        a.max_node_recv,
                        a.schedule_hits - b.schedule_hits,
                        a.schedule_misses - b.schedule_misses,
                        a.schedule_wall_ns - b.schedule_wall_ns,
                        a.faults_injected - b.faults_injected,
                        a.retransmit_rounds - b.retransmit_rounds,
                        a.retransmit_words - b.retransmit_words,
                        a.recovery_wall_ns - b.recovery_wall_ns};
  }

  /// Accumulate another run's statistics (used by multi-phase algorithms
  /// that run several networks).
  TrafficStats& operator+=(const TrafficStats& o) {
    rounds += o.rounds;
    bound_rounds += o.bound_rounds;
    supersteps += o.supersteps;
    total_words += o.total_words;
    if (o.max_node_send > max_node_send) max_node_send = o.max_node_send;
    if (o.max_node_recv > max_node_recv) max_node_recv = o.max_node_recv;
    schedule_hits += o.schedule_hits;
    schedule_misses += o.schedule_misses;
    schedule_wall_ns += o.schedule_wall_ns;
    faults_injected += o.faults_injected;
    retransmit_rounds += o.retransmit_rounds;
    retransmit_words += o.retransmit_words;
    recovery_wall_ns += o.recovery_wall_ns;
    return *this;
  }
};

/// A congested clique of n nodes with exact round accounting.
class Network {
 public:
  /// Create a clique of n >= 1 nodes on the default in-process arena
  /// backend — unless a clique::TransportScope is live on this thread, in
  /// which case its factory builds the data plane (the hook multi-process
  /// runs use to shard internally-constructed Networks; see
  /// socket_transport.hpp). `seed` feeds the RandomRelay router. If a
  /// clique::FaultScope is live on this thread, its plan is installed
  /// automatically.
  explicit Network(int n, Router default_router = Router::KoenigRelay,
                   std::uint64_t seed = 0x5eed);

  /// Create a clique over a caller-supplied data plane (the Transport
  /// seam). The clique size is transport->n().
  explicit Network(std::unique_ptr<Transport> transport,
                   Router default_router = Router::KoenigRelay,
                   std::uint64_t seed = 0x5eed);

  [[nodiscard]] int n() const noexcept { return n_; }

  /// The contiguous node shard this process owns (the transport's span,
  /// cached). In-process backends own the full span; under a sharded
  /// backend, staging is legal only from owned sources and only the owned
  /// destinations' local state is authoritative after a superstep.
  [[nodiscard]] NodeSpan owned() const noexcept { return owned_; }
  [[nodiscard]] bool owns(NodeId v) const noexcept {
    return owned_.contains(v);
  }
  [[nodiscard]] bool owns_all() const noexcept { return owned_.full(n_); }

  /// Realize common knowledge of one word per node: on entry each rank has
  /// written the slots of its OWNED nodes (slots.size() == n); on return
  /// every rank holds every slot. Free in the clique model — the calling
  /// primitive charges its documented rounds separately — and a no-op when
  /// this process owns everything. Never touches staged state or inboxes.
  void sync_node_words(std::span<Word> slots);

  /// Variable-size variant: node v's block is data[offsets[v],
  /// offsets[v+1]) (offsets has n+1 entries). Same contract as
  /// sync_node_words.
  void allgather_node_blocks(std::span<Word> data,
                             std::span<const std::size_t> offsets);

  /// Stage a single word from src to dst for the current superstep.
  /// Self-sends (src == dst) are legal and free: they bypass the network.
  /// Staging requires owns(src) — under a sharded transport only the
  /// owning rank may speak for a node (asserted).
  void send(NodeId src, NodeId dst, Word w);

  /// Stage a block of words from src to dst (kept in order).
  void send_words(NodeId src, NodeId dst, std::span<const Word> ws);

  /// Reserve `nwords` staged words from src to dst and return a writable
  /// span over them (zero-copy send staging: codecs encode directly into
  /// network memory via encode_into, with no intermediate buffer and no
  /// copy). The reserved words read as zero until written. The span is
  /// valid until the NEXT staging call for the SAME src (stage / send /
  /// send_words may grow src's flat buffer and relocate it) or deliver().
  ///
  /// Thread-safety invariant (asserted in deliver()): each source owns its
  /// per-source outbox exclusively, so staging MAY run under
  /// cca::parallel_for provided every parallel iteration stages from its
  /// own distinct src — no locks needed, and the resulting word layout is
  /// identical to the serial order because per-source append order is
  /// unchanged. Staging from the same src on two threads is a data race.
  /// deliver() itself must stay OUTSIDE parallel regions.
  ///
  /// Both halves of this contract are machine-checked when analysis
  /// checking is on (util/analysis.hpp; default in CCA_CHECKED builds):
  /// same-source staging from two threads of one parallel_for region and
  /// deliver()/discard_staged() inside a region fault with a typed
  /// cca::ContractViolation recorded in analysis::Report.
  [[nodiscard]] std::span<Word> stage(NodeId src, NodeId dst,
                                      std::size_t nwords);

  /// Plan: the exact KoenigRelay rounds a superstep with this demand list
  /// would be charged, WITHOUT staging or delivering anything. `demands`
  /// must be in the canonical (src, dst)-ascending order deliver() emits
  /// (self-pairs and zero-word entries excluded). The computed schedule is
  /// inserted into the schedule cache, so a dispatcher that plans a
  /// superstep and then actually runs it pays the Euler split once — the
  /// planning hook behind MmKind::Auto's engine selection. No TrafficStats
  /// field moves (planning is free local computation in the clique model;
  /// the hit/miss telemetry counts delivered supersteps only).
  [[nodiscard]] std::int64_t prepare_schedule(
      const std::vector<Demand>& demands);

  /// Deliver every staged word using the default router; charges rounds.
  /// With a FaultPlan installed this is the hardened superstep (see the
  /// header comment); it may throw clique::PeerFailure.
  void deliver();

  /// Deliver using an explicit router.
  void deliver(Router router);

  /// Words received by dst from src in the most recent superstep, FIFO.
  /// The span views the delivery arena: it stays valid until the next
  /// deliver() (or take_inbox of the same pair), which rebuilds the arena.
  [[nodiscard]] std::span<const Word> inbox(NodeId dst, NodeId src) const;

  /// Copy the inbox out as an owning vector and mark the pair consumed
  /// (subsequent inbox() calls for the pair see an empty view).
  [[nodiscard]] std::vector<Word> take_inbox(NodeId dst, NodeId src);

  /// Charge rounds for a protocol the caller scheduled manually.
  void charge_rounds(std::int64_t rounds);

  [[nodiscard]] const TrafficStats& stats() const noexcept { return stats_; }

  /// Reset statistics (topology and staged state must be empty). The
  /// schedule cache is deliberately kept: it holds traffic shapes, not
  /// accounting state.
  void reset_stats() noexcept { stats_ = TrafficStats{}; }

  /// Relay scheduling policy for KoenigRelay supersteps (and for
  /// prepare_schedule planning). ExactKoenig — the default, and what every
  /// round-pinned test runs — charges the Euler-split's near-optimal round
  /// counts. Greedy swaps in the first-fit colouring: documented <= 2x the
  /// optimal class count for an O(words) scheduling pass — the rounds
  /// charged are still the EXACT cost of the concrete (looser) schedule.
  /// Changing policy mid-run is legal; cache entries are policy-tagged, so
  /// schedules never leak across policies.
  void set_schedule_policy(SchedulePolicy policy) noexcept {
    schedule_policy_ = policy;
  }
  [[nodiscard]] SchedulePolicy schedule_policy() const noexcept {
    return schedule_policy_;
  }

  /// The Koenig schedule cache (exposed for tests and diagnostics).
  [[nodiscard]] const ScheduleCache& schedule_cache() const noexcept {
    return schedule_cache_;
  }
  /// Drop every cached schedule (subsequent supersteps recompute).
  void clear_schedule_cache() { schedule_cache_.clear(); }

  // --- Fault injection & recovery (see fault.hpp) -----------------------

  /// Install a deterministic fault plan; every subsequent deliver() runs
  /// the hardened integrity protocol. Resets the fault clock. Throws
  /// cca::InvalidArgument on malformed plans (probabilities outside [0,1],
  /// crash_node out of range, non-positive retransmission budget).
  /// Drop/corrupt/duplicate/straggler plans compose with sharded
  /// transports: the hardened path plans from Transport::staged_meta(),
  /// which is common knowledge on every rank, so verdicts and charges stay
  /// bit-identical to the single-process oracle. Crash plans
  /// (crash_node >= 0) still require full ownership — recovering a crashed
  /// superstep replays the GLOBAL staged payloads.
  void install_faults(const FaultPlan& plan);

  /// Remove the plan; deliver() returns to the exact fault-free path.
  void clear_faults() noexcept { fault_plan_.reset(); }

  /// The installed plan, or nullptr.
  [[nodiscard]] const FaultPlan* fault_plan() const noexcept {
    return fault_plan_ ? &*fault_plan_ : nullptr;
  }

  /// Ticks of the fault clock consumed so far (hardened delivers +
  /// liveness votes since install_faults).
  [[nodiscard]] std::int64_t fault_clock() const noexcept {
    return fault_clock_;
  }

  /// Charged liveness vote: every node announces "I am alive" on each of
  /// its links (1 round, like a convergence vote), and the returned flags
  /// are what the vote reveals under the installed plan. Advances the
  /// fault clock, so waiting on a transiently crashed peer makes progress.
  /// Never throws; with no plan every node is alive.
  [[nodiscard]] std::vector<std::uint8_t> liveness_vote();

  /// Drop all staged words without delivering (crash-unwind path; also
  /// invoked by the hardened deliver before it throws).
  void discard_staged();

  /// The data plane behind the seam (exposed for tests/diagnostics).
  [[nodiscard]] const Transport& transport() const noexcept {
    return *transport_;
  }

  /// Debug generation counters for the span-invalidation contract. The
  /// per-source staging generation increments on every send / send_words /
  /// stage call for that source and on deliver(); a span returned by
  /// stage(src, ...) is valid only while stage_generation(src) keeps the
  /// value it had when the span was handed out. The inbox generation
  /// increments on every deliver(): inbox() views are valid only while it
  /// is unchanged. Under CCA_SANITIZE builds the transport additionally
  /// moves the backing buffers to freshly allocated storage at every
  /// generation bump, so code holding a span across its invalidation point
  /// faults as a hard ASan heap-use-after-free at the offending read/write
  /// instead of silently aliasing relocated-but-still-mapped memory.
  [[nodiscard]] std::uint64_t stage_generation(NodeId src) const;
  [[nodiscard]] std::uint64_t inbox_generation() const noexcept {
    return transport_->inbox_generation();
  }

 private:
  /// Exact rounds the given router charges for this demand list (consults
  /// and feeds the schedule cache for KoenigRelay; updates the hit/miss
  /// telemetry and schedule_wall_ns).
  [[nodiscard]] std::int64_t route_rounds(Router router,
                                          const std::vector<Demand>& demands);

  /// The schedule-independent per-superstep lower bound for these volumes.
  [[nodiscard]] std::int64_t volume_bound_rounds(
      const std::vector<std::int64_t>& sent_by,
      const std::vector<std::int64_t>& recv_by) const;

  /// The hardened superstep (plan installed): checksum framing, fault
  /// injection, verification, charged retransmission, crash detection.
  void deliver_hardened(Router router);

  /// True if the plan's crash_node is down at fault-clock `tick`.
  [[nodiscard]] bool node_dead_at(std::int64_t tick) const noexcept;

  int n_;
  NodeSpan owned_;  // transport_->owned(), cached at construction
  Router default_router_;
  SchedulePolicy schedule_policy_ = SchedulePolicy::ExactKoenig;
  Rng rng_;

  // The data plane (staging buffers, delivery arena, inboxes).
  std::unique_ptr<Transport> transport_;

  TrafficStats stats_;

  // Koenig schedules cached by demand fingerprint (see routing.hpp). Only
  // the deterministic KoenigRelay discipline consults it; RandomRelay is
  // seed-dependent and bypasses it by construction.
  ScheduleCache schedule_cache_;

  // Fault layer state: the installed plan (if any) and the deterministic
  // clock its coins are keyed by.
  std::optional<FaultPlan> fault_plan_;
  std::int64_t fault_clock_ = 0;

  // Runtime contract instrumentation (analysis.hpp): per-source staging
  // ownership + phase-change checking. Every hook is a single relaxed
  // atomic load while checking is disabled (the default outside
  // CCA_CHECKED builds); no accounting state ever depends on it.
  analysis::StagingTracker tracker_;
};

/// Typed guard for the few engines whose CENSUS genuinely reads non-owned
/// rows (the bilinear fast path's global demand shape, the naive
/// broadcast's all-to-all gather) and which therefore cannot run under a
/// sharded transport. Everything else in the engine layer is
/// ownership-generic — keep this helper only at those surviving sites
/// (each tagged lint:allow for the contract linter), never as a blanket
/// entry guard. `alternative` names the sharded route the caller should
/// take instead.
inline void require_full_ownership(const Network& net, const char* engine,
                                   const char* alternative) {
  if (net.owns_all()) return;
  char msg[256];
  std::snprintf(msg, sizeof msg,
                "%s requires full node ownership (its census reads non-owned "
                "rows); %s",
                engine, alternative);
  throw InvalidArgument(msg);
}

/// Measures the rounds consumed by a scoped region of an algorithm.
class RoundMeter {
 public:
  explicit RoundMeter(const Network& net) noexcept
      : net_(&net), start_(net.stats()) {}

  [[nodiscard]] std::int64_t rounds() const noexcept {
    return net_->stats().rounds - start_.rounds;
  }
  [[nodiscard]] TrafficStats delta() const noexcept {
    return net_->stats() - start_;
  }

 private:
  const Network* net_;
  TrafficStats start_;
};

}  // namespace cca::clique
