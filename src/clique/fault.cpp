#include "clique/fault.hpp"

#include <cmath>

namespace cca::clique {

std::string PeerFailure::format(Reason reason, NodeId node,
                                std::int64_t fault_clock) {
  std::string msg = reason == Reason::Crash
                        ? "peer failure: node " + std::to_string(node) +
                              " dead during superstep"
                        : "peer failure: retransmission budget exhausted";
  msg += " (fault clock " + std::to_string(fault_clock) + ")";
  return msg;
}

std::uint64_t fault_hash(std::uint64_t seed, std::int64_t fault_clock,
                         int attempt, NodeId src, NodeId dst,
                         FaultKind kind) noexcept {
  // Counter-mode SplitMix64 chain: each field is absorbed through one
  // finalizer round, so the coin depends on the whole event identity and
  // on nothing else — evaluation order cannot matter.
  std::uint64_t h = splitmix64(seed ^ 0x9e3779b97f4a7c15ULL);
  h = splitmix64(h ^ static_cast<std::uint64_t>(fault_clock));
  h = splitmix64(h ^ static_cast<std::uint64_t>(attempt));
  h = splitmix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                          src))
                      << 32 |
                  static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst))));
  h = splitmix64(h ^ static_cast<std::uint64_t>(kind));
  return h;
}

bool fault_coin(std::uint64_t hash, double prob) noexcept {
  if (prob <= 0.0) return false;
  if (prob >= 1.0) return true;
  // Top 53 bits -> uniform double in [0, 1), same construction as
  // Rng::next_double, reproducible on every IEEE-754 platform.
  const double u =
      static_cast<double>(hash >> 11) * 0x1.0p-53;
  return u < prob;
}

Word frame_checksum(NodeId src, NodeId dst,
                    std::span<const Word> payload) noexcept {
  std::uint64_t h = splitmix64(
      0xc4c5c6c7c8c9cacbULL ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32 |
       static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst))));
  for (const Word w : payload) h = splitmix64(h ^ w);
  return h;
}

namespace {

thread_local const FaultPlan* g_ambient_plan = nullptr;

}  // namespace

FaultScope::FaultScope(const FaultPlan& plan) noexcept
    : plan_(plan), prev_(g_ambient_plan) {
  g_ambient_plan = &plan_;
}

FaultScope::~FaultScope() { g_ambient_plan = prev_; }

const FaultPlan* FaultScope::current() noexcept { return g_ambient_plan; }

}  // namespace cca::clique
