#include "clique/socket_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

#include "util/analysis.hpp"
#include "util/contracts.hpp"
#include "util/parallel.hpp"

namespace cca::clique {

namespace {

constexpr std::uint64_t kFrameMagic = 0xccac11c4e5eed5ULL;

struct FrameHeader {
  std::uint64_t magic;
  std::uint64_t seq;
  std::uint64_t bytes;
};

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("SocketMesh: " + what + ": " +
                           std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    sys_fail("fcntl(O_NONBLOCK)");
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best effort: socketpair()-backed meshes (tests) are not TCP.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Blocking write of the whole buffer (fd may be nonblocking: poll+retry).
void write_all(int fd, const void* buf, std::size_t len) {
  const auto* p = static_cast<const std::byte*>(buf);
  while (len > 0) {
    const auto w = ::write(fd, p, len);
    if (w > 0) {
      p += w;
      len -= static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) sys_fail("poll");
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    sys_fail("write");
  }
}

/// Blocking read of exactly len bytes.
void read_all(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<std::byte*>(buf);
  while (len > 0) {
    const auto r = ::read(fd, p, len);
    if (r > 0) {
      p += r;
      len -= static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) throw std::runtime_error("SocketMesh: peer closed");
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLIN;
      pfd.revents = 0;
      if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) sys_fail("poll");
      continue;
    }
    if (errno == EINTR) continue;
    sys_fail("read");
  }
}

/// Mirror of ArenaTransport's serial phase-change check (transport.cpp):
/// deliver() mutates every outbox and the arena and must not run inside a
/// cca::parallel_for region.
void check_phase_change_serial(const char* what) {
  if (cca::analysis::checking_enabled() && in_parallel_region()) {
    cca::analysis::fail(
        {cca::analysis::ContractKind::DeliverInParallel, -1, -1, -1,
         std::string("SocketTransport::") + what +
             " invoked inside a cca::parallel_for region"});
  }
  CCA_EXPECTS(!in_parallel_region());
}

}  // namespace

SocketMesh::SocketMesh(int rank, int nprocs, std::vector<int> peer_fds)
    : rank_(rank),
      nprocs_(nprocs),
      fds_(std::move(peer_fds)),
      seq_(static_cast<std::size_t>(nprocs), 0) {
  CCA_VALIDATE(nprocs_ >= 1, "mesh needs at least one rank");
  CCA_VALIDATE(rank_ >= 0 && rank_ < nprocs_, "rank out of range");
  CCA_VALIDATE(static_cast<int>(fds_.size()) == nprocs_,
               "peer_fds must have one entry per rank");
  for (int q = 0; q < nprocs_; ++q) {
    if (q == rank_) continue;
    CCA_VALIDATE(fds_[static_cast<std::size_t>(q)] >= 0,
                 "missing peer connection");
    set_nonblocking(fds_[static_cast<std::size_t>(q)]);
    set_nodelay(fds_[static_cast<std::size_t>(q)]);
  }
}

SocketMesh::~SocketMesh() {
  for (int q = 0; q < nprocs_; ++q)
    if (q != rank_ && fds_[static_cast<std::size_t>(q)] >= 0)
      ::close(fds_[static_cast<std::size_t>(q)]);
}

std::shared_ptr<SocketMesh> SocketMesh::connect_tcp(int rank, int nprocs,
                                                    int port_base,
                                                    int timeout_ms) {
  CCA_VALIDATE(nprocs >= 1 && rank >= 0 && rank < nprocs,
               "bad rank/nprocs");
  CCA_VALIDATE(port_base > 0 && port_base + nprocs < 65536,
               "port range out of bounds");
  std::vector<int> fds(static_cast<std::size_t>(nprocs), -1);
  if (nprocs == 1) return std::make_shared<SocketMesh>(rank, nprocs, fds);

  auto loopback = [](int port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return addr;
  };

  // Bind the listener FIRST: lower-rank peers connect as soon as the
  // kernel backlog exists, before this rank ever calls accept().
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) sys_fail("socket(listen)");
  const int one = 1;
  (void)::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  auto laddr = loopback(port_base + rank);
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&laddr), sizeof(laddr)) < 0) {
    ::close(lfd);
    sys_fail("bind(" + std::to_string(port_base + rank) + ")");
  }
  if (::listen(lfd, nprocs) < 0) {
    ::close(lfd);
    sys_fail("listen");
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  // Connect to every lower rank, retrying until its listener is bound.
  for (int q = 0; q < rank; ++q) {
    int fd = -1;
    for (;;) {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) sys_fail("socket(connect)");
      auto addr = loopback(port_base + q);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0)
        break;
      ::close(fd);
      fd = -1;
      if (std::chrono::steady_clock::now() >= deadline) {
        ::close(lfd);
        sys_fail("connect to rank " + std::to_string(q) + " timed out");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const auto hello = static_cast<std::uint64_t>(rank);
    write_all(fd, &hello, sizeof(hello));
    fds[static_cast<std::size_t>(q)] = fd;
  }
  // Accept every higher rank; the hello word says who connected.
  for (int got = 0; got < nprocs - 1 - rank; ++got) {
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      ::close(lfd);
      sys_fail("accept");
    }
    std::uint64_t hello = 0;
    read_all(fd, &hello, sizeof(hello));
    const auto peer = static_cast<int>(hello);
    if (peer <= rank || peer >= nprocs ||
        fds[static_cast<std::size_t>(peer)] >= 0) {
      ::close(lfd);
      ::close(fd);
      throw std::runtime_error("SocketMesh: bad hello from peer");
    }
    fds[static_cast<std::size_t>(peer)] = fd;
  }
  ::close(lfd);
  return std::make_shared<SocketMesh>(rank, nprocs, std::move(fds));
}

void SocketMesh::exchange(int peer, std::span<const std::byte> out,
                          std::span<std::byte> in) {
  CCA_EXPECTS(peer >= 0 && peer < nprocs_ && peer != rank_);
  const int fd = fds_[static_cast<std::size_t>(peer)];
  const auto seq = seq_[static_cast<std::size_t>(peer)]++;

  FrameHeader shdr{kFrameMagic, seq, out.size()};
  FrameHeader rhdr{};
  std::size_t sent = 0;                      // bytes of header+payload written
  std::size_t rcvd = 0;                      // bytes of header+payload read
  const std::size_t send_total = sizeof(shdr) + out.size();
  const std::size_t recv_total = sizeof(rhdr) + in.size();

  auto send_chunk = [&]() {
    const void* p;
    std::size_t len;
    if (sent < sizeof(shdr)) {
      p = reinterpret_cast<const std::byte*>(&shdr) + sent;
      len = sizeof(shdr) - sent;
    } else {
      p = out.data() + (sent - sizeof(shdr));
      len = out.size() - (sent - sizeof(shdr));
    }
    const auto w = ::write(fd, p, len);
    if (w > 0)
      sent += static_cast<std::size_t>(w);
    else if (w < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
             errno != EINTR)
      sys_fail("write");
  };
  auto recv_chunk = [&]() {
    void* p;
    std::size_t len;
    if (rcvd < sizeof(rhdr)) {
      p = reinterpret_cast<std::byte*>(&rhdr) + rcvd;
      len = sizeof(rhdr) - rcvd;
    } else {
      p = in.data() + (rcvd - sizeof(rhdr));
      len = in.size() - (rcvd - sizeof(rhdr));
    }
    const auto r = ::read(fd, p, len);
    if (r > 0)
      rcvd += static_cast<std::size_t>(r);
    else if (r == 0)
      throw std::runtime_error("SocketMesh: peer closed mid-exchange");
    else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
      sys_fail("read");
    if (rcvd >= sizeof(rhdr)) {
      // Validate the header as soon as it is complete — a mismatched frame
      // means the two ranks' deterministic programs diverged.
      if (rhdr.magic != kFrameMagic || rhdr.seq != seq ||
          rhdr.bytes != in.size())
        throw std::runtime_error(
            "SocketMesh: frame mismatch from rank " + std::to_string(peer) +
            " (seq " + std::to_string(rhdr.seq) + " want " +
            std::to_string(seq) + ", bytes " + std::to_string(rhdr.bytes) +
            " want " + std::to_string(in.size()) + ")");
    }
  };

  // Full-duplex pump: both directions progress under one poll loop, so the
  // pairwise exchange can never deadlock on a full send buffer.
  while (sent < send_total || rcvd < recv_total) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = 0;
    pfd.revents = 0;
    if (rcvd < recv_total) pfd.events |= POLLIN;
    if (sent < send_total) pfd.events |= POLLOUT;
    const int pr = ::poll(&pfd, 1, -1);
    if (pr < 0) {
      if (errno == EINTR) continue;
      sys_fail("poll");
    }
    if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
        (pfd.revents & POLLIN) == 0)
      throw std::runtime_error("SocketMesh: connection error");
    if ((pfd.revents & POLLOUT) != 0 && sent < send_total) send_chunk();
    if ((pfd.revents & POLLIN) != 0 && rcvd < recv_total) recv_chunk();
  }
}

SocketTransport::SocketTransport(int n, std::shared_ptr<SocketMesh> mesh)
    : ArenaTransport(n), mesh_(std::move(mesh)) {
  CCA_VALIDATE(mesh_ != nullptr, "mesh must not be null");
  CCA_VALIDATE(mesh_->nprocs() <= n,
               "P <= n required: every rank must own at least one node");
  own_ = shard_span(n, mesh_->nprocs(), mesh_->rank());
}

TransportScope::Factory SocketTransport::factory(
    std::shared_ptr<SocketMesh> mesh) {
  return [mesh](int n) -> std::unique_ptr<Transport> {
    return std::make_unique<SocketTransport>(n, mesh);
  };
}

std::span<std::byte> SocketTransport::arena_range(NodeId dst, NodeId s_lo,
                                                  NodeId s_hi) noexcept {
  // Senders ascend contiguously within a receiver, so the (dst, [s_lo,
  // s_hi)) slices are one contiguous arena run.
  const auto lo = in_off_[pair_index(dst, s_lo)];
  const auto hi = in_off_[pair_index(dst, s_hi - 1)] +
                  in_len_[pair_index(dst, s_hi - 1)];
  return {reinterpret_cast<std::byte*>(arena_.data() + lo),
          (hi - lo) * sizeof(Word)};
}

DeliverySummary SocketTransport::deliver() {
  check_phase_change_serial("deliver");
  count_staged_words();

  const int P = mesh_->nprocs();
  const int me = mesh_->rank();
  // Step 1: count all-gather. Each rank's owned source rows of the count
  // matrix are one contiguous block (pair_words_ is src-major); after the
  // ascending-peer exchange every rank holds the identical global counts
  // and derives the identical canonical demand list below.
  const auto nn = static_cast<std::size_t>(n());
  for (int q = 0; q < P; ++q) {
    if (q == me) continue;
    const auto qs = shard_span(n(), P, q);
    const auto mine = std::span<std::size_t>(
        pair_words_.data() + static_cast<std::size_t>(own_.begin) * nn,
        static_cast<std::size_t>(own_.size()) * nn);
    const auto theirs = std::span<std::size_t>(
        pair_words_.data() + static_cast<std::size_t>(qs.begin) * nn,
        static_cast<std::size_t>(qs.size()) * nn);
    mesh_->exchange(q, std::as_bytes(mine), std::as_writable_bytes(theirs));
  }

  auto sum = summarize_counts();
  rebuild_arena();
  scatter_and_clear_outboxes();

  // Step 2: payload exchange. My frame for peer q concatenates, for each
  // dst q owns, the contiguous (dst, my owned sources) arena run — which I
  // just scattered my staged words into. The frame q sends concatenates
  // the (my owned dst, q's sources) runs, received straight into the very
  // arena offsets the layout assigns them (both sides computed the same
  // layout from the same global counts).
  std::vector<std::byte> sbuf;
  std::vector<std::byte> rbuf;
  for (int q = 0; q < P; ++q) {
    if (q == me) continue;
    const auto qs = shard_span(n(), P, q);
    sbuf.clear();
    std::size_t rbytes = 0;
    for (NodeId dst = qs.begin; dst < qs.end; ++dst) {
      const auto run = arena_range(dst, own_.begin, own_.end);
      sbuf.insert(sbuf.end(), run.begin(), run.end());
    }
    for (NodeId dst = own_.begin; dst < own_.end; ++dst)
      rbytes += arena_range(dst, qs.begin, qs.end).size();
    rbuf.resize(rbytes);
    mesh_->exchange(q, std::span<const std::byte>(sbuf),
                    std::span<std::byte>(rbuf));
    std::size_t at = 0;
    for (NodeId dst = own_.begin; dst < own_.end; ++dst) {
      const auto run = arena_range(dst, qs.begin, qs.end);
      if (!run.empty())
        std::memcpy(run.data(), rbuf.data() + at, run.size());
      at += run.size();
    }
  }
  return sum;
}

std::vector<Demand> SocketTransport::staged_meta() {
  // Non-destructive mirror of deliver()'s step-1 count all-gather: the same
  // owned-source-row exchange, but into local scratch — staged state,
  // pair_words_, and all generations stay untouched. Every rank derives the
  // bit-identical canonical demand list from the identical global counts.
  // Callers (the hardened fault path) invoke this in SPMD lockstep, so the
  // extra per-peer frame pair consumes sequence numbers identically on all
  // ranks.
  check_phase_change_serial("staged_meta");
  const int P = mesh_->nprocs();
  const int me = mesh_->rank();
  const auto nn = static_cast<std::size_t>(n());
  std::vector<std::size_t> counts(nn * nn, 0);
  for (NodeId src = own_.begin; src < own_.end; ++src) {
    const auto base = static_cast<std::size_t>(src) * nn;
    for (const auto& seg : out_segs_[static_cast<std::size_t>(src)])
      counts[base + static_cast<std::size_t>(seg.dst)] += seg.len;
  }
  for (int q = 0; q < P; ++q) {
    if (q == me) continue;
    const auto qs = shard_span(n(), P, q);
    const auto mine = std::span<std::size_t>(
        counts.data() + static_cast<std::size_t>(own_.begin) * nn,
        static_cast<std::size_t>(own_.size()) * nn);
    const auto theirs = std::span<std::size_t>(
        counts.data() + static_cast<std::size_t>(qs.begin) * nn,
        static_cast<std::size_t>(qs.size()) * nn);
    mesh_->exchange(q, std::as_bytes(mine), std::as_writable_bytes(theirs));
  }
  std::vector<Demand> out;
  for (int src = 0; src < n(); ++src) {
    const auto base = static_cast<std::size_t>(src) * nn;
    for (int dst = 0; dst < n(); ++dst) {
      const auto words = static_cast<std::int64_t>(
          counts[base + static_cast<std::size_t>(dst)]);
      if (words == 0 || src == dst) continue;
      out.push_back({src, dst, words});
    }
  }
  return out;
}

void SocketTransport::allgather_blocks(std::span<Word> data,
                                       std::span<const std::size_t> offsets) {
  CCA_EXPECTS(static_cast<int>(offsets.size()) == n() + 1);
  CCA_EXPECTS(offsets[static_cast<std::size_t>(n())] <= data.size());
  const int P = mesh_->nprocs();
  const int me = mesh_->rank();
  const auto block = [&](NodeSpan s) {
    const auto lo = offsets[static_cast<std::size_t>(s.begin)];
    const auto hi = offsets[static_cast<std::size_t>(s.end)];
    return std::span<Word>(data.data() + lo, hi - lo);
  };
  for (int q = 0; q < P; ++q) {
    if (q == me) continue;
    const auto qs = shard_span(n(), P, q);
    mesh_->exchange(q, std::as_bytes(block(own_)),
                    std::as_writable_bytes(block(qs)));
  }
}

}  // namespace cca::clique
