// Routing schedules for one congested clique superstep.
//
// A superstep's traffic is summarised by its demand list: for every ordered
// pair (src, dst) the number of words src has staged for dst. Each discipline
// below produces the exact number of rounds its concrete schedule needs:
//
//  * direct           — word stays on its own link; rounds = max link load.
//  * two-phase relay  — every word travels src -> intermediate -> dst, one
//    word per link per round in each phase; rounds = (max phase-A link load)
//    + (max phase-B link load). The disciplines differ only in how words are
//    assigned to intermediates:
//      - hash:   block (src,dst) starts at a deterministic hashed offset and
//                wraps round-robin (oblivious, O(1) for balanced loads);
//      - random: like hash with a random start (Valiant-style);
//      - koenig: Euler-split edge colouring of the demand multigraph; colour
//                class t uses intermediate t mod n. This is a constructive
//                Koenig decomposition and yields near-optimal deterministic
//                schedules for arbitrary demands — the executable counterpart
//                of Lenzen's routing theorem [46] and of the oblivious routing
//                of Dolev et al. [24, Lemma 1].
//
// These functions are exposed separately from Network so that tests can probe
// the schedules directly and the routing benchmark can compare disciplines.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace cca::clique {

/// One entry of a superstep demand list.
struct Demand {
  int src = 0;
  int dst = 0;
  std::int64_t words = 0;

  friend bool operator==(const Demand&, const Demand&) = default;
};

/// Rounds for direct delivery: max over ordered links of the word count.
[[nodiscard]] std::int64_t rounds_direct(int n,
                                         const std::vector<Demand>& demands);

/// Rounds for the two-phase relay with hashed block offsets.
[[nodiscard]] std::int64_t rounds_hash_relay(
    int n, const std::vector<Demand>& demands);

/// Rounds for the two-phase relay with random block offsets.
[[nodiscard]] std::int64_t rounds_random_relay(
    int n, const std::vector<Demand>& demands, Rng& rng);

/// Rounds for the Euler-split (Koenig) relay schedule.
[[nodiscard]] std::int64_t rounds_koenig_relay(
    int n, const std::vector<Demand>& demands);

// ---------------------------------------------------------------------------
// Reusable schedules and the demand-fingerprint schedule cache.
// ---------------------------------------------------------------------------
//
// The Koenig Euler-split is the wall-clock-critical part of the simulator:
// its exact class sequence costs O(words * log maxdegree) work per superstep
// (the bench_mm --steps finding). Iterated workloads — apsp_semiring's
// log n min-plus squarings, Seidel's recursion, apsp_bounded / apsp_approx,
// girth's repeated k-cycle probes — re-run it on demand lists that are
// byte-identical across iterations (the traffic SHAPE depends only on the
// matrix dimensions and codec widths, never on the entry values). A
// Schedule is the split's reusable outcome; the cache keys it by a
// fingerprint of the canonical demand list (deliver() emits demands in
// (src, dst) ascending order, so equal lists hash equally) and verifies the
// full list on every hit, so a fingerprint collision degrades to a
// recompute, never to a wrong round count. The random-relay discipline is
// seed-dependent and must bypass the cache (Network::deliver does).

/// The reusable outcome of one Koenig Euler-split run.
struct Schedule {
  std::int64_t rounds = 0;   ///< phase-A + phase-B relay rounds
  std::int64_t classes = 0;  ///< colour classes of the decomposition
  std::int64_t words = 0;    ///< total words the schedule moves
};

/// Run the Euler-split colouring and return the full Schedule (the
/// `rounds` member is exactly rounds_koenig_relay's value).
[[nodiscard]] Schedule schedule_koenig_relay(int n,
                                             const std::vector<Demand>& demands);

/// Order-sensitive 64-bit fingerprint of a canonical demand list. Callers
/// must pass demands in a canonical order ((src, dst) ascending, as
/// Network::deliver produces them) so that equal traffic shapes collide.
[[nodiscard]] std::uint64_t demand_fingerprint(
    int n, const std::vector<Demand>& demands);

/// Cache of Koenig schedules keyed by demand fingerprint. Hits verify the
/// stored demand list element-wise (exactness over speed: a 64-bit
/// collision degrades to a chained recompute). The cache self-bounds its
/// footprint: when the stored demand entries exceed an internal cap it
/// resets wholesale and repopulates (hit/miss counters survive the reset).
class ScheduleCache {
 public:
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
  };

  /// The schedule for this demand list; computed and inserted on miss.
  /// The reference stays valid until the next get() call. When `hit` is
  /// non-null it receives whether this lookup was served from the cache
  /// (the same fact the internal stats counters record).
  const Schedule& get(int n, const std::vector<Demand>& demands,
                      bool* hit = nullptr);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t entries() const noexcept { return entries_; }
  void clear();

 private:
  struct Entry {
    int n = 0;
    std::vector<Demand> demands;
    Schedule schedule;
  };
  // Fingerprint -> chain of exact entries (chains absorb collisions).
  std::unordered_map<std::uint64_t, std::vector<Entry>> map_;
  Stats stats_;
  std::size_t entries_ = 0;          ///< cached Entry count
  std::size_t cached_demands_ = 0;   ///< total stored Demand elements
};

}  // namespace cca::clique
