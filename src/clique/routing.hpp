// Routing schedules for one congested clique superstep.
//
// A superstep's traffic is summarised by its demand list: for every ordered
// pair (src, dst) the number of words src has staged for dst. Each discipline
// below produces the exact number of rounds its concrete schedule needs:
//
//  * direct           — word stays on its own link; rounds = max link load.
//  * two-phase relay  — every word travels src -> intermediate -> dst, one
//    word per link per round in each phase; rounds = (max phase-A link load)
//    + (max phase-B link load). The disciplines differ only in how words are
//    assigned to intermediates:
//      - hash:   block (src,dst) starts at a deterministic hashed offset and
//                wraps round-robin (oblivious, O(1) for balanced loads);
//      - random: like hash with a random start (Valiant-style);
//      - koenig: Euler-split edge colouring of the demand multigraph; colour
//                class t uses intermediate t mod n. This is a constructive
//                Koenig decomposition and yields near-optimal deterministic
//                schedules for arbitrary demands — the executable counterpart
//                of Lenzen's routing theorem [46] and of the oblivious routing
//                of Dolev et al. [24, Lemma 1].
//
// These functions are exposed separately from Network so that tests can probe
// the schedules directly and the routing benchmark can compare disciplines.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace cca::clique {

/// One entry of a superstep demand list.
struct Demand {
  int src = 0;
  int dst = 0;
  std::int64_t words = 0;
};

/// Rounds for direct delivery: max over ordered links of the word count.
[[nodiscard]] std::int64_t rounds_direct(int n,
                                         const std::vector<Demand>& demands);

/// Rounds for the two-phase relay with hashed block offsets.
[[nodiscard]] std::int64_t rounds_hash_relay(
    int n, const std::vector<Demand>& demands);

/// Rounds for the two-phase relay with random block offsets.
[[nodiscard]] std::int64_t rounds_random_relay(
    int n, const std::vector<Demand>& demands, Rng& rng);

/// Rounds for the Euler-split (Koenig) relay schedule.
[[nodiscard]] std::int64_t rounds_koenig_relay(
    int n, const std::vector<Demand>& demands);

}  // namespace cca::clique
