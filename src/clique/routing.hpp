// Routing schedules for one congested clique superstep.
//
// A superstep's traffic is summarised by its demand list: for every ordered
// pair (src, dst) the number of words src has staged for dst. Each discipline
// below produces the exact number of rounds its concrete schedule needs:
//
//  * direct           — word stays on its own link; rounds = max link load.
//  * two-phase relay  — every word travels src -> intermediate -> dst, one
//    word per link per round in each phase; rounds = (max phase-A link load)
//    + (max phase-B link load). The disciplines differ only in how words are
//    assigned to intermediates:
//      - hash:   block (src,dst) starts at a deterministic hashed offset and
//                wraps round-robin (oblivious, O(1) for balanced loads);
//      - random: like hash with a random start (Valiant-style);
//      - koenig: Euler-split edge colouring of the demand multigraph; colour
//                class t uses intermediate t mod n. This is a constructive
//                Koenig decomposition and yields near-optimal deterministic
//                schedules for arbitrary demands — the executable counterpart
//                of Lenzen's routing theorem [46] and of the oblivious routing
//                of Dolev et al. [24, Lemma 1].
//      - greedy: first-fit edge colouring (Misra–Gries-flavoured bound): each
//                word takes the lowest level free at both its endpoints, so
//                the class count is at most deg(src)+deg(dst)-1 <= 2*maxdeg-1
//                < 2x the optimal (Vizing/Koenig) colour count. One linear
//                pass instead of the Euler split's O(words * log maxdeg).
//
// These functions are exposed separately from Network so that tests can probe
// the schedules directly and the routing benchmark can compare disciplines.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace cca::clique {

/// One entry of a superstep demand list.
struct Demand {
  int src = 0;
  int dst = 0;
  std::int64_t words = 0;

  friend bool operator==(const Demand&, const Demand&) = default;
};

/// Which scheduler a Network (or the cache) runs for relay supersteps.
///
///  * ExactKoenig — the Euler-split colouring: exact near-optimal rounds,
///    O(words * log maxdeg) scheduling wall. The default, and the only
///    policy round-pinned tests may rely on.
///  * Greedy — first-fit colouring: <= 2x the optimal class count (hence
///    ~2x rounds, measured well under that on the bench series) for one
///    O(words) scheduling pass. Opt-in for wall-focused runs; rounds stay
///    exact FOR THE SCHEDULE IT BUILDS (the simulator still counts real
///    rounds of a real relay plan — only the plan is cheaper and looser).
enum class SchedulePolicy { ExactKoenig, Greedy };

/// Rounds for direct delivery: max over ordered links of the word count.
[[nodiscard]] std::int64_t rounds_direct(int n,
                                         const std::vector<Demand>& demands);

/// Rounds for the two-phase relay with hashed block offsets.
[[nodiscard]] std::int64_t rounds_hash_relay(
    int n, const std::vector<Demand>& demands);

/// Rounds for the two-phase relay with random block offsets.
[[nodiscard]] std::int64_t rounds_random_relay(
    int n, const std::vector<Demand>& demands, Rng& rng);

/// Rounds for the Euler-split (Koenig) relay schedule.
[[nodiscard]] std::int64_t rounds_koenig_relay(
    int n, const std::vector<Demand>& demands);

/// Rounds for the greedy first-fit relay schedule (<= ~2x koenig).
[[nodiscard]] std::int64_t rounds_greedy_relay(
    int n, const std::vector<Demand>& demands);

// ---------------------------------------------------------------------------
// Reusable schedules and the demand-fingerprint schedule cache.
// ---------------------------------------------------------------------------
//
// The Koenig Euler-split is the wall-clock-critical part of the simulator:
// its exact class sequence costs O(words * log maxdegree) work per superstep
// (the bench_mm --steps finding). Iterated workloads — apsp_semiring's
// log n min-plus squarings, Seidel's recursion, apsp_bounded / apsp_approx,
// girth's repeated k-cycle probes — re-run it on demand lists that are
// byte-identical across iterations (the traffic SHAPE depends only on the
// matrix dimensions and codec widths, never on the entry values). A
// Schedule is the split's reusable outcome; the cache keys it by a
// fingerprint of the canonical demand list (deliver() emits demands in
// (src, dst) ascending order, so equal lists hash equally) and verifies the
// full list on every hit, so a fingerprint collision degrades to a
// recompute, never to a wrong round count. The random-relay discipline is
// seed-dependent and must bypass the cache (Network::deliver does).

/// The reusable outcome of one relay-schedule computation.
struct Schedule {
  std::int64_t rounds = 0;   ///< phase-A + phase-B relay rounds
  std::int64_t classes = 0;  ///< colour classes of the decomposition
  std::int64_t words = 0;    ///< total words the schedule moves
};

/// Run the Euler-split colouring and return the full Schedule (the
/// `rounds` member is exactly rounds_koenig_relay's value).
///
/// The split recursion runs as `split_tasks` independent subtree tasks under
/// cca::parallel_for (after a serial frontier expansion that reproduces the
/// top of the recursion), with the per-task class logs merged in DFS order —
/// the colour classes, and therefore the rounds, are BIT-IDENTICAL for every
/// task count, including the pure-serial split_tasks <= 1 path (pinned by
/// tests/test_routing.cpp). The parameterless overload picks the task count
/// from cca::parallel_workers() (1 worker => serial).
[[nodiscard]] Schedule schedule_koenig_relay(int n,
                                             const std::vector<Demand>& demands);
[[nodiscard]] Schedule schedule_koenig_relay(int n,
                                             const std::vector<Demand>& demands,
                                             int split_tasks);

/// Run the greedy first-fit colouring (SchedulePolicy::Greedy). Classes
/// <= deg(src)+deg(dst)-1 <= 2*maxdeg-1, i.e. under 2x the optimal count.
[[nodiscard]] Schedule schedule_greedy_relay(
    int n, const std::vector<Demand>& demands);

/// Test/diagnostic introspection: the concrete colour classes of a relay
/// schedule, each class a list of (src, dst) word-ports. A legal schedule
/// has every class a partial matching on ports (no src and no dst twice
/// within a class) and delivers every demanded word exactly once; the
/// schedule-validity property test asserts exactly that for both policies.
[[nodiscard]] std::vector<std::vector<std::pair<int, int>>>
koenig_relay_classes(int n, const std::vector<Demand>& demands,
                     int split_tasks = 0);
[[nodiscard]] std::vector<std::vector<std::pair<int, int>>>
greedy_relay_classes(int n, const std::vector<Demand>& demands);

/// Order-sensitive 64-bit fingerprint of a canonical demand list. Callers
/// must pass demands in a canonical order ((src, dst) ascending, as
/// Network::deliver produces them) so that equal traffic shapes collide.
[[nodiscard]] std::uint64_t demand_fingerprint(
    int n, const std::vector<Demand>& demands);

/// Cache of relay schedules keyed by demand fingerprint, with entries tagged
/// by the SchedulePolicy that computed them (an exact and a greedy schedule
/// of the same shape are distinct entries). Hits verify the stored demand
/// list element-wise (exactness over speed: a 64-bit collision degrades to
/// a chained recompute). The cache bounds its footprint with true LRU
/// eviction: when the stored demand elements would exceed the capacity, the
/// least-recently-used entries are evicted one at a time — eviction can only
/// ever cause a recompute of the SAME deterministic schedule, never a
/// different round count (pinned by tests/test_routing.cpp).
class ScheduleCache {
 public:
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
  };

  /// The schedule for this demand list under `policy`; computed and
  /// inserted on miss. The reference stays valid until the next get() call.
  /// When `hit` is non-null it receives whether this lookup was served from
  /// the cache (the same fact the internal stats counters record).
  const Schedule& get(int n, const std::vector<Demand>& demands,
                      SchedulePolicy policy = SchedulePolicy::ExactKoenig,
                      bool* hit = nullptr);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t entries() const noexcept { return lru_.size(); }
  void clear();

  /// LRU capacity in stored Demand elements (default 1 << 22). Lowering it
  /// below the current footprint evicts immediately on the next get().
  void set_capacity(std::size_t max_cached_demands) noexcept {
    capacity_ = max_cached_demands;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Per-entry reuse observability: how often live entries were served from
  /// the cache since insertion (an entry's count dies with its eviction).
  [[nodiscard]] std::int64_t total_reuse() const noexcept;
  [[nodiscard]] std::int64_t max_entry_reuse() const noexcept;

 private:
  struct Entry {
    int n = 0;
    SchedulePolicy policy = SchedulePolicy::ExactKoenig;
    std::vector<Demand> demands;
    Schedule schedule;
    std::int64_t reuse = 0;  ///< hits served by this entry
    std::uint64_t key = 0;   ///< back-reference for O(1) eviction
  };
  using EntryIt = std::list<Entry>::iterator;

  void evict_to_fit(std::size_t incoming_demands);

  // LRU list (front = most recent) + fingerprint -> chain of iterators
  // (chains absorb collisions).
  std::list<Entry> lru_;
  std::unordered_map<std::uint64_t, std::vector<EntryIt>> map_;
  Stats stats_;
  std::size_t cached_demands_ = 0;  ///< total stored Demand elements
  std::size_t capacity_ = std::size_t{1} << 22;
};

}  // namespace cca::clique
