// Common congested clique communication primitives with exact round charges.
//
// The primitives return the information that every node learns; the calling
// algorithm then uses it in each node's local computation. Costs are those of
// the explicit schedules documented at each function (all are standard
// two-phase broadcast/dissemination patterns; Dolev et al. [24] use the same
// building blocks).
#pragma once

#include <cstdint>
#include <vector>

#include "clique/network.hpp"

namespace cca::clique {

/// Every node announces one word; afterwards every node knows all n words.
/// Schedule: node v sends its word to each other node directly; every link
/// carries exactly one word, so the cost is 1 round (0 when n == 1).
/// Sharded: each rank fills only its OWNED slots; the returned vector is
/// fully populated on every rank (Network::sync_node_words).
[[nodiscard]] std::vector<Word> broadcast_all(Network& net,
                                              std::vector<Word> values);

/// Node src makes `words` known to every node.
/// Schedule: src scatters the words round-robin over the other n-1 nodes
/// (ceil(k/(n-1)) rounds, each link carries at most that many words), then
/// every helper sends each word it holds to every node that does not
/// already hold it — all nodes except src and the helper itself (at most
/// ceil(k/(n-1)) words per link). Cost: 0 if k == 0, 1 if k == 1,
/// otherwise 2 * ceil(k/(n-1)) rounds — EXCEPT n == 2, where the scatter
/// already delivered everything to the only other node and the rebroadcast
/// phase has nobody left to serve, so the cost is ceil(k/(n-1)) = k. (The
/// seed implementation charged the phantom rebroadcast anyway, a 2x
/// overcharge at n == 2; the staged-reference audit in
/// test_traffic_regression.cpp pins the corrected schedule.)
void broadcast_from(Network& net, NodeId src, std::int64_t num_words);

/// Every node v contributes a list of words; afterwards every node knows the
/// concatenation (ordered by contributor id). Used to "learn the whole
/// graph" when it is sparse (girth algorithm, Theorem 15).
///
/// Schedule: (1) every node announces its count — 1 round; (2) words are
/// relayed to balance holders (word with global index g goes to node g mod
/// n; self-sends are free, so a contributor that is its own holder moves
/// nothing) — measured relay cost, about 2*ceil(W/n) rounds for W total
/// words; (3) every holder sends each of its at most ceil(W/n) words to
/// every node that does not already hold it — everyone except the word's
/// contributor and the holder itself. The phase-3 charge is the EXACT
/// maximum link load of that schedule: link (h, u) carries h's share minus
/// the words u itself contributed to it, so the cost is
/// max_{h, u != h} (share_h - contrib_h(u)). For spread-out contributor
/// patterns that equals the classical ceil(W/n); when a holder's share
/// comes entirely from the few nodes it would serve (the adversarial g
/// mod n alignments — most visibly n == 2, where the seed implementation
/// overcharged ceil(W/2) for a phase with nothing left to move) it is
/// strictly less. The staged-reference audit in
/// test_traffic_regression.cpp pins charge == measured schedule.
/// Sharded: only the OWNED contributors' lists are read on each rank; the
/// returned concatenation is fully populated everywhere.
[[nodiscard]] std::vector<Word> disseminate(
    Network& net, const std::vector<std::vector<Word>>& per_node);

}  // namespace cca::clique
