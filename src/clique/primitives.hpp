// Common congested clique communication primitives with exact round charges.
//
// The primitives return the information that every node learns; the calling
// algorithm then uses it in each node's local computation. Costs are those of
// the explicit schedules documented at each function (all are standard
// two-phase broadcast/dissemination patterns; Dolev et al. [24] use the same
// building blocks).
#pragma once

#include <cstdint>
#include <vector>

#include "clique/network.hpp"

namespace cca::clique {

/// Every node announces one word; afterwards every node knows all n words.
/// Schedule: node v sends its word to each other node directly; every link
/// carries exactly one word, so the cost is 1 round (0 when n == 1).
[[nodiscard]] std::vector<Word> broadcast_all(Network& net,
                                              std::vector<Word> values);

/// Node src makes `words` known to every node.
/// Schedule: src scatters the words round-robin over the other n-1 nodes
/// (ceil(k/(n-1)) rounds, each link carries at most that many words), then
/// every helper sends each word it holds to all nodes (again at most
/// ceil(k/(n-1)) words per link). Cost: 0 if k == 0, 1 if k == 1, otherwise
/// 2 * ceil(k/(n-1)) rounds.
void broadcast_from(Network& net, NodeId src, std::int64_t num_words);

/// Every node v contributes a list of words; afterwards every node knows the
/// concatenation (ordered by contributor id). Used to "learn the whole
/// graph" when it is sparse (girth algorithm, Theorem 15).
///
/// Schedule: (1) every node announces its count — 1 round; (2) words are
/// relayed to balance holders (word with global index g goes to node g mod n)
/// — measured relay cost, about 2*ceil(W/n) rounds for W total words;
/// (3) every holder sends each of its at most ceil(W/n) words to all nodes —
/// max-share rounds. All charges are exact for these schedules.
[[nodiscard]] std::vector<Word> disseminate(
    Network& net, const std::vector<std::vector<Word>>& per_node);

}  // namespace cca::clique
