#include "clique/network.hpp"

#include <algorithm>

#include "clique/routing.hpp"
#include "util/contracts.hpp"

namespace cca::clique {

Network::Network(int n, Router default_router, std::uint64_t seed)
    : n_(n),
      default_router_(default_router),
      rng_(seed),
      outbox_(static_cast<std::size_t>(n)),
      inbox_(static_cast<std::size_t>(n)) {
  CCA_EXPECTS(n >= 1);
  for (auto& row : outbox_) row.resize(static_cast<std::size_t>(n));
  for (auto& row : inbox_) row.resize(static_cast<std::size_t>(n));
}

void Network::check_node(NodeId v) const { CCA_EXPECTS(v >= 0 && v < n_); }

void Network::send(NodeId src, NodeId dst, Word w) {
  check_node(src);
  check_node(dst);
  outbox_[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)]
      .push_back(w);
}

void Network::send_words(NodeId src, NodeId dst, std::span<const Word> ws) {
  check_node(src);
  check_node(dst);
  auto& box =
      outbox_[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)];
  box.insert(box.end(), ws.begin(), ws.end());
}

void Network::deliver() { deliver(default_router_); }

void Network::deliver(Router router) {
  // Collect the demand list (self-sends are local and free).
  std::vector<Demand> demands;
  std::int64_t total = 0;
  std::int64_t max_send = 0;
  std::vector<std::int64_t> recv(static_cast<std::size_t>(n_));
  std::vector<std::int64_t> sent_by(static_cast<std::size_t>(n_));
  for (int src = 0; src < n_; ++src) {
    std::int64_t sent = 0;
    for (int dst = 0; dst < n_; ++dst) {
      const auto& box = outbox_[static_cast<std::size_t>(src)]
                               [static_cast<std::size_t>(dst)];
      if (box.empty()) continue;
      const auto words = static_cast<std::int64_t>(box.size());
      if (src != dst) {
        demands.push_back({src, dst, words});
        sent += words;
        recv[static_cast<std::size_t>(dst)] += words;
        total += words;
      }
    }
    sent_by[static_cast<std::size_t>(src)] = sent;
    max_send = std::max(max_send, sent);
  }

  std::int64_t rounds = 0;
  switch (router) {
    case Router::Direct:
      rounds = rounds_direct(n_, demands);
      break;
    case Router::HashRelay:
      rounds = rounds_hash_relay(n_, demands);
      break;
    case Router::RandomRelay:
      rounds = rounds_random_relay(n_, demands, rng_);
      break;
    case Router::KoenigRelay:
      rounds = rounds_koenig_relay(n_, demands);
      break;
  }

  // Move payloads: the delivered content is independent of the schedule.
  for (int dst = 0; dst < n_; ++dst)
    for (int src = 0; src < n_; ++src) {
      auto& in =
          inbox_[static_cast<std::size_t>(dst)][static_cast<std::size_t>(src)];
      in.clear();
      auto& out =
          outbox_[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)];
      if (!out.empty()) in = std::move(out);
      out.clear();
    }

  stats_.rounds += rounds;
  stats_.supersteps += 1;
  stats_.total_words += total;
  stats_.max_node_send = std::max(stats_.max_node_send, max_send);
  if (n_ > 0) {
    const auto max_recv = *std::max_element(recv.begin(), recv.end());
    stats_.max_node_recv = std::max(stats_.max_node_recv, max_recv);
    // Schedule-independent lower bound for this superstep.
    if (n_ > 1 && total > 0) {
      std::int64_t need = 0;
      for (int v = 0; v < n_; ++v) {
        const auto vol = std::max(sent_by[static_cast<std::size_t>(v)],
                                  recv[static_cast<std::size_t>(v)]);
        need = std::max(need, (vol + n_ - 2) / (n_ - 1));
      }
      stats_.bound_rounds += need;
    }
  }
}

const std::vector<Word>& Network::inbox(NodeId dst, NodeId src) const {
  check_node(dst);
  check_node(src);
  return inbox_[static_cast<std::size_t>(dst)][static_cast<std::size_t>(src)];
}

std::vector<Word> Network::take_inbox(NodeId dst, NodeId src) {
  check_node(dst);
  check_node(src);
  return std::move(
      inbox_[static_cast<std::size_t>(dst)][static_cast<std::size_t>(src)]);
}

void Network::charge_rounds(std::int64_t rounds) {
  CCA_EXPECTS(rounds >= 0);
  stats_.rounds += rounds;
  // Explicit protocol charges are taken at face value for the bound too
  // (the primitives charging this way use tight schedules).
  stats_.bound_rounds += rounds;
}

}  // namespace cca::clique
