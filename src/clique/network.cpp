#include "clique/network.hpp"

#include <algorithm>
#include <chrono>

#include "clique/routing.hpp"
#include "util/contracts.hpp"
#include "util/parallel.hpp"

namespace cca::clique {

namespace {

std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

namespace {

/// The default data plane: an ambient TransportScope's factory if one is
/// live on this thread (multi-process runs shard internally-constructed
/// Networks this way), else the in-process arena.
std::unique_ptr<Transport> make_default_transport(int n) {
  if (const TransportScope::Factory* f = TransportScope::current())
    return (*f)(n);
  return std::make_unique<ArenaTransport>(n);
}

}  // namespace

Network::Network(int n, Router default_router, std::uint64_t seed)
    : Network(make_default_transport(n), default_router, seed) {}

Network::Network(std::unique_ptr<Transport> transport, Router default_router,
                 std::uint64_t seed)
    : n_(transport ? transport->n() : 0),
      default_router_(default_router),
      rng_(seed),
      transport_(std::move(transport)) {
  CCA_VALIDATE(transport_ != nullptr, "transport must not be null");
  CCA_VALIDATE(n_ >= 1, "clique size must be >= 1");
  owned_ = transport_->owned();
  CCA_EXPECTS(owned_.begin >= 0 && owned_.begin < owned_.end &&
              owned_.end <= n_);
  tracker_.resize(n_);
  if (const FaultPlan* ambient = FaultScope::current())
    install_faults(*ambient);
}

std::uint64_t Network::stage_generation(NodeId src) const {
  return transport_->stage_generation(src);
}

void Network::send(NodeId src, NodeId dst, Word w) {
  CCA_EXPECTS(owns(src));  // only the owning rank may speak for a node
  tracker_.on_stage(src, stats_.supersteps);
  transport_->send(src, dst, w);
}

void Network::send_words(NodeId src, NodeId dst, std::span<const Word> ws) {
  CCA_EXPECTS(owns(src));
  tracker_.on_stage(src, stats_.supersteps);
  transport_->send_words(src, dst, ws);
}

std::span<Word> Network::stage(NodeId src, NodeId dst, std::size_t nwords) {
  CCA_EXPECTS(owns(src));
  tracker_.on_stage(src, stats_.supersteps);
  return transport_->stage(src, dst, nwords);
}

void Network::sync_node_words(std::span<Word> slots) {
  CCA_EXPECTS(slots.size() == static_cast<std::size_t>(n_));
  if (owns_all()) return;
  // Reuse the variable-size path with unit blocks: offsets[v] = v.
  std::vector<std::size_t> offsets(static_cast<std::size_t>(n_) + 1);
  for (std::size_t v = 0; v < offsets.size(); ++v) offsets[v] = v;
  transport_->allgather_blocks(slots, offsets);
}

void Network::allgather_node_blocks(std::span<Word> data,
                                    std::span<const std::size_t> offsets) {
  CCA_EXPECTS(offsets.size() == static_cast<std::size_t>(n_) + 1);
  CCA_EXPECTS(offsets.back() <= data.size());
  if (owns_all()) return;
  transport_->allgather_blocks(data, offsets);
}

std::int64_t Network::prepare_schedule(const std::vector<Demand>& demands) {
  if (demands.empty()) return 0;
  const auto t0 = wall_now_ns();
  const auto rounds = schedule_cache_.get(n_, demands, schedule_policy_).rounds;
  stats_.schedule_wall_ns += wall_now_ns() - t0;
  return rounds;
}

std::int64_t Network::route_rounds(Router router,
                                   const std::vector<Demand>& demands) {
  switch (router) {
    case Router::Direct:
      return rounds_direct(n_, demands);
    case Router::HashRelay:
      return rounds_hash_relay(n_, demands);
    case Router::RandomRelay:
      // Seed-dependent: each invocation draws fresh intermediates from the
      // network RNG, so its schedule is never cacheable.
      return rounds_random_relay(n_, demands, rng_);
    case Router::KoenigRelay: {
      // The Euler-split is deterministic in the demand list, so iterated
      // workloads with byte-identical traffic shapes (APSP squarings,
      // Seidel levels, girth probes, batched products) pay the
      // O(words * log maxdeg) class sequence once per shape.
      if (demands.empty()) return 0;
      bool hit = false;
      const auto t0 = wall_now_ns();
      const auto rounds =
          schedule_cache_.get(n_, demands, schedule_policy_, &hit).rounds;
      stats_.schedule_wall_ns += wall_now_ns() - t0;
      if (hit)
        ++stats_.schedule_hits;
      else
        ++stats_.schedule_misses;
      return rounds;
    }
  }
  return 0;
}

std::int64_t Network::volume_bound_rounds(
    const std::vector<std::int64_t>& sent_by,
    const std::vector<std::int64_t>& recv_by) const {
  if (n_ <= 1) return 0;
  std::int64_t need = 0;
  for (int v = 0; v < n_; ++v) {
    const auto vol = std::max(sent_by[static_cast<std::size_t>(v)],
                              recv_by[static_cast<std::size_t>(v)]);
    need = std::max(need, (vol + n_ - 2) / (n_ - 1));
  }
  return need;
}

void Network::deliver() { deliver(default_router_); }

void Network::deliver(Router router) {
  // Staging is safe from parallel regions (one src per iteration); the
  // delivery phase change is not — it mutates every outbox and the arena.
  // The tracker hook fires first so an enabled checker reports the typed
  // violation with its superstep coordinate; the bare contract backstops
  // unchecked builds.
  tracker_.on_phase_change("deliver", stats_.supersteps);
  CCA_EXPECTS(!in_parallel_region());
  if (fault_plan_) {
    deliver_hardened(router);
    return;
  }

  // Fault-free path: exactly the pre-seam accounting, with the data plane
  // behind the Transport interface.
  const auto sum = transport_->deliver();

  stats_.rounds += route_rounds(router, sum.demands);
  stats_.supersteps += 1;
  stats_.total_words += sum.total_words;
  const auto max_send =
      *std::max_element(sum.sent_by.begin(), sum.sent_by.end());
  const auto max_recv =
      *std::max_element(sum.recv_by.begin(), sum.recv_by.end());
  stats_.max_node_send = std::max(stats_.max_node_send, max_send);
  stats_.max_node_recv = std::max(stats_.max_node_recv, max_recv);
  // Schedule-independent lower bound for this superstep.
  if (n_ > 1 && sum.total_words > 0)
    stats_.bound_rounds += volume_bound_rounds(sum.sent_by, sum.recv_by);
}

bool Network::node_dead_at(std::int64_t tick) const noexcept {
  if (!fault_plan_) return false;
  const auto& p = *fault_plan_;
  if (p.crash_node < 0 || p.crash_node >= n_) return false;
  if (tick < p.crash_superstep) return false;
  return p.crash_down_for < 0 ||
         tick < p.crash_superstep + p.crash_down_for;
}

void Network::deliver_hardened(Router router) {
  const FaultPlan& plan = *fault_plan_;
  const auto t0 = wall_now_ns();
  const std::int64_t tick = fault_clock_++;
  // All fault accounting is planned from the GLOBAL staged metadata: coin
  // verdicts and wire volumes are pure functions of (src, dst, words) and
  // the plan's counters, so every rank of a sharded transport draws the
  // identical verdicts and charges the identical rounds — bit-identical to
  // the single-process oracle. Payloads enter only through the corruption
  // detection proof below, which needs the staged bits and therefore runs
  // on the frame's owning rank alone.
  const auto meta = transport_->staged_meta();
  const auto snap = transport_->staged_snapshot();
  // snap is the (owned-source) subsequence of meta in the same canonical
  // order; match them up so each frame's payload — where locally present —
  // is at hand for the corruption check.
  std::vector<const StagedPair*> payload_of(meta.size(), nullptr);
  for (std::size_t i = 0, j = 0; i < meta.size() && j < snap.size(); ++i)
    if (snap[j].src == meta[i].src && snap[j].dst == meta[i].dst)
      payload_of[i] = &snap[j++];

  // Per-superstep accumulators, committed in one place whether the
  // superstep succeeds or aborts — failure paths are charged for real.
  std::int64_t rounds = 0;
  std::int64_t bound = 0;
  std::int64_t total = 0;
  std::int64_t injected = 0;
  std::int64_t retrans_rounds = 0;
  std::int64_t retrans_words = 0;
  auto commit = [&] {
    stats_.rounds += rounds;
    stats_.bound_rounds += bound;
    stats_.supersteps += 1;
    stats_.total_words += total;
    stats_.faults_injected += injected;
    stats_.retransmit_rounds += retrans_rounds;
    stats_.retransmit_words += retrans_words;
    stats_.recovery_wall_ns += wall_now_ns() - t0;
  };
  auto update_peaks = [&](const std::vector<std::int64_t>& sent,
                          const std::vector<std::int64_t>& recv) {
    stats_.max_node_send = std::max(
        stats_.max_node_send, *std::max_element(sent.begin(), sent.end()));
    stats_.max_node_recv = std::max(
        stats_.max_node_recv, *std::max_element(recv.begin(), recv.end()));
  };

  // Crash detection. Frames from live senders still travel (and are
  // charged, checksum trailer included) before the verification round
  // reveals the dead peer; frames FROM the dead node were never sent. The
  // superstep then aborts with the typed error — partial inboxes are never
  // exposed, so a silent wrong answer is impossible.
  if (node_dead_at(tick)) {
    const NodeId dead = plan.crash_node;
    bool involved = false;
    for (const auto& d : meta)
      if (d.src == dead || d.dst == dead) {
        involved = true;
        break;
      }
    if (involved) {
      std::vector<Demand> demands;
      std::vector<std::int64_t> sent(static_cast<std::size_t>(n_), 0);
      std::vector<std::int64_t> recv(static_cast<std::size_t>(n_), 0);
      for (const auto& d : meta) {
        if (d.src == dead) continue;
        const auto w = d.words + 1;
        demands.push_back({d.src, d.dst, w});
        sent[static_cast<std::size_t>(d.src)] += w;
        recv[static_cast<std::size_t>(d.dst)] += w;
        total += w;
      }
      rounds = route_rounds(router, demands) + 1;  // +1: the verify round
      bound = volume_bound_rounds(sent, recv) + 1;
      injected = 1;  // the crash
      update_peaks(sent, recv);
      transport_->discard_staged();
      commit();
      throw PeerFailure(PeerFailure::Reason::Crash, dead, tick);
    }
    // The dead node is idle this superstep; the survivors' traffic
    // proceeds and the crash surfaces at its next involvement or vote.
  }

  // One delivery attempt of one frame: draw the deterministic coins, size
  // the wire volume (payload + checksum trailer, doubled if duplicated),
  // and report whether the receiver's verification accepts the frame. The
  // duplicate copy rides the same links and is discarded by framing; a
  // drop loses the frame for the whole attempt (both copies — it models
  // the link, not a packet); a corruption flips one hashed bit of the wire
  // frame and is detected with CERTAINTY: splitmix64 is a bijection, so
  // the absorb chain maps any single-bit difference to a different final
  // checksum — which is exactly what justifies handing the pristine staged
  // bits to the transport once every frame verifies. The verdict itself is
  // payload-independent; the detection proof runs only where the payload
  // is locally staged (every rank on arena, the owning rank under sockets).
  auto attempt_frame = [&](const Demand& d, const StagedPair* payload,
                           int attempt, std::int64_t& wire_words) -> bool {
    const auto len = static_cast<std::size_t>(d.words);
    const auto w = d.words + 1;
    wire_words = w;
    if (fault_coin(fault_hash(plan.seed, tick, attempt, d.src, d.dst,
                              FaultKind::Duplicate),
                   plan.duplicate_prob)) {
      wire_words += w;
      ++injected;
    }
    if (fault_coin(fault_hash(plan.seed, tick, attempt, d.src, d.dst,
                              FaultKind::Drop),
                   plan.drop_prob)) {
      ++injected;
      return false;  // absence is detected by the expected-frame protocol
    }
    const auto corrupt_hash = fault_hash(plan.seed, tick, attempt, d.src,
                                         d.dst, FaultKind::Corrupt);
    if (!fault_coin(corrupt_hash, plan.corrupt_prob)) return true;
    ++injected;
    if (payload != nullptr) {
      std::vector<Word> frame(payload->words.begin(), payload->words.end());
      frame.push_back(frame_checksum(d.src, d.dst, payload->words));
      const auto bit = splitmix64(corrupt_hash) %
                       (static_cast<std::uint64_t>(frame.size()) * 64);
      frame[bit / 64] ^= Word{1} << (bit % 64);
      const bool detected =
          frame_checksum(d.src, d.dst,
                         std::span<const Word>(frame.data(), len)) !=
          frame[len];
      CCA_ASSERT(detected);  // provable: the absorb chain is injective per bit
    }
    return false;
  };

  // Attempt 0: every staged frame.
  std::vector<Demand> demands;
  std::vector<std::int64_t> sent(static_cast<std::size_t>(n_), 0);
  std::vector<std::int64_t> recv(static_cast<std::size_t>(n_), 0);
  std::vector<std::size_t> failed;
  for (std::size_t i = 0; i < meta.size(); ++i) {
    std::int64_t w = 0;
    const bool ok = attempt_frame(meta[i], payload_of[i], 0, w);
    demands.push_back({meta[i].src, meta[i].dst, w});
    sent[static_cast<std::size_t>(meta[i].src)] += w;
    recv[static_cast<std::size_t>(meta[i].dst)] += w;
    total += w;
    if (!ok) failed.push_back(i);
  }
  rounds = route_rounds(router, demands);
  bound = volume_bound_rounds(sent, recv);
  if (!meta.empty()) {
    rounds += 1;  // verification/ack round (explicit protocol charge)
    bound += 1;
    // Straggler: the synchronous barrier waits for the slowest node, so
    // any straggling node delays the whole superstep once. Charged to
    // rounds only — slowness moves no words, so the volume bound is
    // untouched.
    bool straggled = false;
    for (NodeId v = 0; v < n_; ++v)
      if (fault_coin(fault_hash(plan.seed, tick, 0, v, -1,
                                FaultKind::Straggle),
                     plan.straggler_prob)) {
        straggled = true;
        ++injected;
      }
    if (straggled) rounds += plan.straggler_delay;
  }
  update_peaks(sent, recv);

  // Bounded retransmission: each attempt re-sends exactly the failed
  // frames (one NACK control round + the exact schedule of the re-sent
  // demands), re-drawing the fault coins with the attempt salt. The
  // charges land in rounds/total_words AND in the retransmit_* fields so
  // the failure-path share stays visible.
  for (int attempt = 1; !failed.empty(); ++attempt) {
    if (attempt > plan.max_retransmit) {
      transport_->discard_staged();
      commit();
      throw PeerFailure(PeerFailure::Reason::RetransmitExhausted, -1, tick);
    }
    std::vector<Demand> rdemands;
    std::vector<std::int64_t> rsent(static_cast<std::size_t>(n_), 0);
    std::vector<std::int64_t> rrecv(static_cast<std::size_t>(n_), 0);
    std::int64_t rtotal = 0;
    std::vector<std::size_t> still_failed;
    for (const auto i : failed) {
      std::int64_t w = 0;
      const bool ok = attempt_frame(meta[i], payload_of[i], attempt, w);
      rdemands.push_back({meta[i].src, meta[i].dst, w});
      rsent[static_cast<std::size_t>(meta[i].src)] += w;
      rrecv[static_cast<std::size_t>(meta[i].dst)] += w;
      rtotal += w;
      if (!ok) still_failed.push_back(i);
    }
    const auto r = route_rounds(router, rdemands) + 1;  // +1: NACK round
    rounds += r;
    bound += volume_bound_rounds(rsent, rrecv) + 1;
    total += rtotal;
    retrans_rounds += r;
    retrans_words += rtotal;
    update_peaks(rsent, rrecv);
    failed = std::move(still_failed);
  }

  // Every frame verified end-to-end: the transport hands the receivers the
  // pristine staged bits (bit-identical to what verification accepted).
  (void)transport_->deliver();
  commit();
}

std::vector<std::uint8_t> Network::liveness_vote() {
  // One word per link, exactly the convergence-vote charge: every node
  // announces "alive" to every other node, so the flags below are common
  // knowledge after one round.
  if (n_ > 1) charge_rounds(1);
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(n_), 1);
  if (fault_plan_) {
    const auto tick = fault_clock_++;
    if (node_dead_at(tick))
      alive[static_cast<std::size_t>(fault_plan_->crash_node)] = 0;
  }
  return alive;
}

void Network::install_faults(const FaultPlan& plan) {
  CCA_VALIDATE(plan.crash_node < 0 || owns_all(),
               "crash faults require full node ownership: recovering a "
               "crashed superstep replays the GLOBAL staged payloads, which "
               "a sharded transport holds only on their owning ranks. "
               "Drop/corrupt/duplicate/straggler plans compose with sharded "
               "transports — their verdicts and charges are planned from "
               "staged_meta(), which is common knowledge on every rank");
  const auto prob_ok = [](double p) { return p >= 0.0 && p <= 1.0; };
  CCA_VALIDATE(prob_ok(plan.drop_prob) && prob_ok(plan.corrupt_prob) &&
                   prob_ok(plan.duplicate_prob) &&
                   prob_ok(plan.straggler_prob),
               "fault probabilities must lie in [0, 1]");
  CCA_VALIDATE(plan.straggler_delay >= 0, "straggler_delay must be >= 0");
  CCA_VALIDATE(plan.crash_node < n_, "crash_node must be < n");
  CCA_VALIDATE(plan.max_retransmit >= 1, "max_retransmit must be >= 1");
  CCA_VALIDATE(plan.max_recovery_waits >= 0,
               "max_recovery_waits must be >= 0");
  fault_plan_ = plan;
  fault_clock_ = 0;
}

void Network::discard_staged() {
  tracker_.on_phase_change("discard_staged", stats_.supersteps);
  transport_->discard_staged();
}

std::span<const Word> Network::inbox(NodeId dst, NodeId src) const {
  return transport_->inbox(dst, src);
}

std::vector<Word> Network::take_inbox(NodeId dst, NodeId src) {
  return transport_->take_inbox(dst, src);
}

void Network::charge_rounds(std::int64_t rounds) {
  CCA_EXPECTS(rounds >= 0);
  stats_.rounds += rounds;
  // Explicit protocol charges are taken at face value for the bound too
  // (the primitives charging this way use tight schedules).
  stats_.bound_rounds += rounds;
}

}  // namespace cca::clique
