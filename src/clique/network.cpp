#include "clique/network.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "clique/routing.hpp"
#include "util/contracts.hpp"
#include "util/parallel.hpp"

namespace cca::clique {

namespace {

std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Under CCA_SANITIZE, move a buffer's contents to freshly allocated
/// storage. Every staging call and every deliver() runs this on the buffers
/// whose spans it invalidates, so a span held across its documented
/// invalidation point points into freed memory and ASan reports the first
/// use — even when the capacity would have sufficed and the relocation
/// would otherwise silently not happen.
[[maybe_unused]] void poison_relocate(std::vector<Word>& buf) {
#ifdef CCA_SANITIZE
  std::vector<Word> fresh;
  fresh.reserve(buf.capacity());
  fresh.assign(buf.begin(), buf.end());
  buf.swap(fresh);
#else
  (void)buf;
#endif
}

}  // namespace

Network::Network(int n, Router default_router, std::uint64_t seed)
    : n_(n),
      default_router_(default_router),
      rng_(seed),
      out_data_(static_cast<std::size_t>(n)),
      out_segs_(static_cast<std::size_t>(n)),
      in_off_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0),
      in_len_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0),
      pair_words_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                  0),
      stage_gen_(static_cast<std::size_t>(n), 0) {
  CCA_EXPECTS(n >= 1);
}

void Network::check_node(NodeId v) const { CCA_EXPECTS(v >= 0 && v < n_); }

std::uint64_t Network::stage_generation(NodeId src) const {
  check_node(src);
  return stage_gen_[static_cast<std::size_t>(src)];
}

void Network::send(NodeId src, NodeId dst, Word w) {
  check_node(src);
  check_node(dst);
  const auto s = static_cast<std::size_t>(src);
  ++stage_gen_[s];
  poison_relocate(out_data_[s]);
  out_data_[s].push_back(w);
  auto& segs = out_segs_[s];
  if (!segs.empty() && segs.back().dst == dst)
    ++segs.back().len;
  else
    segs.push_back({dst, 1});
}

void Network::send_words(NodeId src, NodeId dst, std::span<const Word> ws) {
  check_node(src);
  check_node(dst);
  if (ws.empty()) return;
  const auto s = static_cast<std::size_t>(src);
  ++stage_gen_[s];
  poison_relocate(out_data_[s]);
  auto& data = out_data_[s];
  data.insert(data.end(), ws.begin(), ws.end());
  auto& segs = out_segs_[s];
  if (!segs.empty() && segs.back().dst == dst)
    segs.back().len += ws.size();
  else
    segs.push_back({dst, ws.size()});
}

std::span<Word> Network::stage(NodeId src, NodeId dst, std::size_t nwords) {
  check_node(src);
  check_node(dst);
  const auto s = static_cast<std::size_t>(src);
  auto& data = out_data_[s];
  const std::size_t base = data.size();
  if (nwords == 0) return {};
  ++stage_gen_[s];
  poison_relocate(data);
  data.resize(base + nwords, 0);
  auto& segs = out_segs_[s];
  if (!segs.empty() && segs.back().dst == dst)
    segs.back().len += nwords;
  else
    segs.push_back({dst, nwords});
  return {data.data() + base, nwords};
}

std::int64_t Network::prepare_schedule(const std::vector<Demand>& demands) {
  if (demands.empty()) return 0;
  const auto t0 = wall_now_ns();
  const auto rounds = schedule_cache_.get(n_, demands, schedule_policy_).rounds;
  stats_.schedule_wall_ns += wall_now_ns() - t0;
  return rounds;
}

void Network::deliver() { deliver(default_router_); }

void Network::deliver(Router router) {
  // Staging is safe from parallel regions (one src per iteration); the
  // delivery phase change is not — it mutates every outbox and the arena.
  CCA_EXPECTS(!in_parallel_region());
  // Pass 1: per-pair word counts from the staged segments.
  std::fill(pair_words_.begin(), pair_words_.end(), 0);
  for (int src = 0; src < n_; ++src) {
    const auto base = static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(n_);
    for (const auto& seg : out_segs_[static_cast<std::size_t>(src)])
      pair_words_[base + static_cast<std::size_t>(seg.dst)] += seg.len;
  }

  // Demand list and per-node volumes (self-sends are local and free). The
  // (src asc, dst asc) order matches the routing schedules' expectations.
  std::vector<Demand> demands;
  std::int64_t total = 0;
  std::int64_t max_send = 0;
  std::vector<std::int64_t> recv(static_cast<std::size_t>(n_));
  std::vector<std::int64_t> sent_by(static_cast<std::size_t>(n_));
  for (int src = 0; src < n_; ++src) {
    std::int64_t sent = 0;
    const auto base = static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(n_);
    for (int dst = 0; dst < n_; ++dst) {
      const auto words =
          static_cast<std::int64_t>(pair_words_[base +
                                                static_cast<std::size_t>(dst)]);
      if (words == 0 || src == dst) continue;
      demands.push_back({src, dst, words});
      sent += words;
      recv[static_cast<std::size_t>(dst)] += words;
      total += words;
    }
    sent_by[static_cast<std::size_t>(src)] = sent;
    max_send = std::max(max_send, sent);
  }

  std::int64_t rounds = 0;
  switch (router) {
    case Router::Direct:
      rounds = rounds_direct(n_, demands);
      break;
    case Router::HashRelay:
      rounds = rounds_hash_relay(n_, demands);
      break;
    case Router::RandomRelay:
      // Seed-dependent: each invocation draws fresh intermediates from the
      // network RNG, so its schedule is never cacheable.
      rounds = rounds_random_relay(n_, demands, rng_);
      break;
    case Router::KoenigRelay:
      // The Euler-split is deterministic in the demand list, so iterated
      // workloads with byte-identical traffic shapes (APSP squarings,
      // Seidel levels, girth probes, batched products) pay the
      // O(words * log maxdeg) class sequence once per shape.
      if (!demands.empty()) {
        bool hit = false;
        const auto t0 = wall_now_ns();
        rounds =
            schedule_cache_.get(n_, demands, schedule_policy_, &hit).rounds;
        stats_.schedule_wall_ns += wall_now_ns() - t0;
        if (hit)
          ++stats_.schedule_hits;
        else
          ++stats_.schedule_misses;
      }
      break;
  }

  // Pass 2: lay out the arena (receiver-major, senders ascending within a
  // receiver) and scatter every source's staged runs into its slices. The
  // delivered content is independent of the schedule.
  std::size_t cursor = 0;
  for (int dst = 0; dst < n_; ++dst)
    for (int src = 0; src < n_; ++src) {
      const auto idx = pair_index(dst, src);
      const auto words = pair_words_[static_cast<std::size_t>(src) *
                                         static_cast<std::size_t>(n_) +
                                     static_cast<std::size_t>(dst)];
      in_off_[idx] = cursor;
      in_len_[idx] = words;
      cursor += words;
    }
  // Every outstanding staged span and inbox view dies here.
  ++inbox_gen_;
  for (auto& g : stage_gen_) ++g;
#ifdef CCA_SANITIZE
  // Rebuild the arena in fresh storage so inbox views held across this
  // deliver() fault under ASan even when the capacity would have sufficed.
  {
    std::vector<Word> fresh(cursor);
    arena_.swap(fresh);
  }
#else
  arena_.resize(cursor);
#endif

  // pair_words_ is consumed as the per-pair write cursor from here on.
  std::fill(pair_words_.begin(), pair_words_.end(), 0);
  for (int src = 0; src < n_; ++src) {
    const auto s = static_cast<std::size_t>(src);
    const auto base = s * static_cast<std::size_t>(n_);
    const Word* read = out_data_[s].data();
    for (const auto& seg : out_segs_[s]) {
      auto& consumed = pair_words_[base + static_cast<std::size_t>(seg.dst)];
      std::memcpy(arena_.data() + in_off_[pair_index(seg.dst, src)] + consumed,
                  read, static_cast<std::size_t>(seg.len) * sizeof(Word));
      consumed += seg.len;
      read += seg.len;
    }
#ifdef CCA_SANITIZE
    // Release (not just clear) the outbox so staged spans held across
    // deliver() dangle deterministically.
    std::vector<Word>().swap(out_data_[s]);
#else
    out_data_[s].clear();
#endif
    out_segs_[s].clear();
  }

  stats_.rounds += rounds;
  stats_.supersteps += 1;
  stats_.total_words += total;
  stats_.max_node_send = std::max(stats_.max_node_send, max_send);
  if (n_ > 0) {
    const auto max_recv = *std::max_element(recv.begin(), recv.end());
    stats_.max_node_recv = std::max(stats_.max_node_recv, max_recv);
    // Schedule-independent lower bound for this superstep.
    if (n_ > 1 && total > 0) {
      std::int64_t need = 0;
      for (int v = 0; v < n_; ++v) {
        const auto vol = std::max(sent_by[static_cast<std::size_t>(v)],
                                  recv[static_cast<std::size_t>(v)]);
        need = std::max(need, (vol + n_ - 2) / (n_ - 1));
      }
      stats_.bound_rounds += need;
    }
  }
}

std::span<const Word> Network::inbox(NodeId dst, NodeId src) const {
  check_node(dst);
  check_node(src);
  const auto idx = pair_index(dst, src);
  return {arena_.data() + in_off_[idx], in_len_[idx]};
}

std::vector<Word> Network::take_inbox(NodeId dst, NodeId src) {
  check_node(dst);
  check_node(src);
  const auto idx = pair_index(dst, src);
  std::vector<Word> out(arena_.data() + in_off_[idx],
                        arena_.data() + in_off_[idx] + in_len_[idx]);
  in_len_[idx] = 0;
  return out;
}

void Network::charge_rounds(std::int64_t rounds) {
  CCA_EXPECTS(rounds >= 0);
  stats_.rounds += rounds;
  // Explicit protocol charges are taken at face value for the bound too
  // (the primitives charging this way use tight schedules).
  stats_.bound_rounds += rounds;
}

}  // namespace cca::clique
