// Deterministic fault injection and recovery for the congested clique.
//
// A FaultPlan installed on a Network turns every deliver() into a hardened
// superstep: each nonempty off-diagonal (src, dst) payload is framed with a
// trailing SplitMix64 checksum word, faults (drop / corrupt / duplicate /
// straggle / crash) are injected from a seeded counter-mode coin stream,
// the receiver verifies every frame, and detected loss or corruption
// triggers bounded retransmission supersteps that are charged for real
// (TrafficStats::retransmit_rounds / retransmit_words) — the accounting
// discipline of the fault-free engine extended to failure paths.
//
// Determinism: every fault coin is a pure function of
// (plan.seed, fault clock, attempt, src, dst, kind), so a run is exactly
// reproducible from its seed regardless of host, thread count, or the
// order the simulator happens to evaluate pairs in. The fault clock
// advances once per hardened deliver() and once per liveness vote.
//
// Recovery: crashes surface as the typed PeerFailure exception, never UB
// or a silent wrong answer. with_peer_recovery() wraps an idempotent
// protocol step (a min-plus squaring, a matrix product): on a crash it
// discards staged state, spends charged liveness votes waiting for the
// peer, and re-runs the step from the caller's last iterate — sound
// because min-plus squaring is idempotent (Censor-Hillel–Paz, arXiv
// 1412.2667), so repeating a squaring can never overshoot the fixpoint.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace cca::clique {

using Word = std::uint64_t;
using NodeId = int;

/// A deterministic fault schedule for one Network. Probabilities are per
/// (pair, attempt); the crash window is expressed in fault-clock ticks
/// (hardened delivers + liveness votes since the plan was installed).
struct FaultPlan {
  std::uint64_t seed = 0xfa11;

  double drop_prob = 0.0;       ///< whole frame lost in flight
  double corrupt_prob = 0.0;    ///< one bit of the frame flipped
  double duplicate_prob = 0.0;  ///< frame delivered twice (words charged)
  double straggler_prob = 0.0;  ///< per-node: superstep straggles

  /// Extra rounds a straggling superstep costs (the synchronous barrier
  /// waits for the slowest node).
  std::int64_t straggler_delay = 1;

  /// Node that crashes at fault-clock tick `crash_superstep`, staying down
  /// for `crash_down_for` ticks (-1 = permanently). -1 disables the crash.
  NodeId crash_node = -1;
  std::int64_t crash_superstep = 0;
  std::int64_t crash_down_for = -1;

  /// Retransmission attempts per superstep before the delivery is declared
  /// failed (PeerFailure::Reason::RetransmitExhausted).
  int max_retransmit = 8;

  /// Charged liveness votes with_peer_recovery() may spend waiting for a
  /// crashed peer before giving up and rethrowing.
  int max_recovery_waits = 64;
};

/// Typed failure of a hardened superstep. Thrown by Network::deliver()
/// (crash detected, or retransmission budget exhausted) and rethrown by
/// with_peer_recovery() when the peer never comes back.
class PeerFailure : public std::runtime_error {
 public:
  enum class Reason {
    Crash,                ///< a peer was dead during the superstep
    RetransmitExhausted,  ///< max_retransmit attempts all failed
  };

  PeerFailure(Reason reason, NodeId node, std::int64_t fault_clock)
      : std::runtime_error(format(reason, node, fault_clock)),
        reason_(reason),
        node_(node),
        fault_clock_(fault_clock) {}

  [[nodiscard]] Reason reason() const noexcept { return reason_; }
  /// The dead peer (Crash) or -1 (RetransmitExhausted).
  [[nodiscard]] NodeId node() const noexcept { return node_; }
  /// Fault-clock tick of the failed superstep.
  [[nodiscard]] std::int64_t fault_clock() const noexcept {
    return fault_clock_;
  }

 private:
  static std::string format(Reason reason, NodeId node,
                            std::int64_t fault_clock);

  Reason reason_;
  NodeId node_;
  std::int64_t fault_clock_;
};

/// Kinds of injected faults; each salts the coin stream differently so the
/// decisions are independent.
enum class FaultKind : std::uint64_t {
  Drop = 1,
  Corrupt = 2,
  Duplicate = 3,
  Straggle = 4,
};

/// The deterministic coin for one (tick, attempt, src, dst, kind) event: a
/// SplitMix64 counter-mode hash, order-independent by construction.
[[nodiscard]] std::uint64_t fault_hash(std::uint64_t seed,
                                       std::int64_t fault_clock, int attempt,
                                       NodeId src, NodeId dst,
                                       FaultKind kind) noexcept;

/// True with probability `prob` under the uniform interpretation of `hash`
/// (53-bit mantissa path, exactly reproducible across platforms).
[[nodiscard]] bool fault_coin(std::uint64_t hash, double prob) noexcept;

/// Frame checksum: SplitMix64 absorbed over (src, dst, payload words). The
/// pair identity is mixed in so a frame misrouted between pairs of equal
/// content still fails verification.
[[nodiscard]] Word frame_checksum(NodeId src, NodeId dst,
                                  std::span<const Word> payload) noexcept;

/// RAII ambient fault plan. Algorithms such as apsp_semiring construct
/// their Network internally; a FaultScope installed around the call makes
/// every Network constructed on this thread while the scope lives pick the
/// plan up at construction. Scopes nest (innermost wins).
class FaultScope {
 public:
  explicit FaultScope(const FaultPlan& plan) noexcept;
  ~FaultScope();

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  /// The innermost live scope's plan on this thread, or nullptr.
  [[nodiscard]] static const FaultPlan* current() noexcept;

 private:
  FaultPlan plan_;
  const FaultPlan* prev_;
};

/// Run an idempotent protocol step with crash recovery. `net` must be the
/// network the step delivers on (its staged state is discarded by the
/// throwing deliver; its liveness votes are charged while waiting). `op`
/// must be safely re-runnable from the caller's current iterate — true for
/// min-plus squarings and plain matrix products, whose function-local
/// state is rebuilt on every call.
///
/// On PeerFailure(Crash): spend up to plan.max_recovery_waits charged
/// liveness votes; as soon as the peer reports alive, re-run op. On
/// RetransmitExhausted, or if the votes run out, rethrow — the caller gets
/// the typed error, never a wrong result.
template <typename Net, typename Op>
auto with_peer_recovery(Net& net, Op&& op) -> decltype(op()) {
  const auto* plan = net.fault_plan();
  if (plan == nullptr) return op();
  int wait_budget = plan->max_recovery_waits;
  for (;;) {
    try {
      return op();
    } catch (const PeerFailure& pf) {
      if (pf.reason() != PeerFailure::Reason::Crash) throw;
      net.discard_staged();
      bool revived = false;
      while (wait_budget > 0) {
        --wait_budget;
        const auto alive = net.liveness_vote();
        if (alive[static_cast<std::size_t>(pf.node())]) {
          revived = true;
          break;
        }
      }
      if (!revived) throw;
    }
  }
}

}  // namespace cca::clique
