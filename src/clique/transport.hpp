// The data-plane seam of the congested clique simulator.
//
// `Transport` is the narrow interface between the accounting layer
// (clique::Network: demand scheduling, round charging, TrafficStats, the
// fault/integrity machinery) and the mechanism that physically moves staged
// words into receiver inboxes. The in-process arena simulator below is the
// default backend; a future multi-process backend (ROADMAP open item 1)
// implements the same six operations over real sockets while Network's
// accounting — which only ever sees the canonical demand list — stays
// byte-for-byte identical.
//
// Contract mirror of the former Network data plane:
//  * staging is per-source exclusive and may run under cca::parallel_for
//    (one src per iteration); deliver()/discard_staged() must not.
//  * spans returned by stage() die at the next same-source staging call or
//    at deliver(); inbox() views die at the next deliver(). The generation
//    counters (and CCA_SANITIZE's poison relocation) make violations fault
//    deterministically instead of silently aliasing relocated memory, and
//    the analysis layer (util/analysis.hpp; default-on in CCA_CHECKED
//    builds) upgrades both contracts to typed, reported ContractViolations:
//    span leases validate the generations at every use, and the staging
//    tracker faults cross-source staging and in-parallel phase changes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "clique/routing.hpp"

namespace cca::clique {

using Word = std::uint64_t;
using NodeId = int;

/// A contiguous shard of the node set, [begin, end). Multi-process backends
/// (socket_transport.hpp) partition the n nodes over P ranks as contiguous
/// spans; the in-process backends own everything. Engines read the span off
/// Network::owned() and stage/compute only their shard.
struct NodeSpan {
  NodeId begin = 0;
  NodeId end = 0;

  [[nodiscard]] int size() const noexcept { return end - begin; }
  [[nodiscard]] bool contains(NodeId v) const noexcept {
    return v >= begin && v < end;
  }
  [[nodiscard]] bool full(int n) const noexcept {
    return begin == 0 && end == n;
  }

  friend bool operator==(const NodeSpan&, const NodeSpan&) = default;
};

/// The canonical contiguous ceil-split of n nodes over nprocs ranks:
/// rank r owns [n*r/nprocs, n*(r+1)/nprocs). Sizes differ by at most one
/// and every rank derives every other rank's span locally — the shard map
/// is common knowledge by construction.
[[nodiscard]] inline NodeSpan shard_span(int n, int nprocs, int rank) noexcept {
  const auto lo = static_cast<NodeId>(
      (static_cast<std::int64_t>(n) * rank) / nprocs);
  const auto hi = static_cast<NodeId>(
      (static_cast<std::int64_t>(n) * (rank + 1)) / nprocs);
  return {lo, hi};
}

/// One staged ordered pair captured before delivery, payload copied out in
/// canonical (src asc, dst asc) order. The integrity layer checksums these
/// and retains them as the retransmission source of truth.
struct StagedPair {
  NodeId src = 0;
  NodeId dst = 0;
  std::vector<Word> words;
};

/// What one delivery moved: the canonical demand list (src asc, dst asc,
/// self-pairs and empty pairs excluded — exactly what the routing schedules
/// expect) plus per-node volumes. Network turns this into rounds and stats;
/// the transport never sees either.
struct DeliverySummary {
  std::vector<Demand> demands;
  std::int64_t total_words = 0;
  std::vector<std::int64_t> sent_by;  ///< words staged by node, this superstep
  std::vector<std::int64_t> recv_by;  ///< words received by node, this superstep
};

/// Abstract data plane: staging, delivery, inboxes. Implementations move
/// words; they never charge rounds (accounting is Network's job).
class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual int n() const noexcept = 0;

  /// Stage a single word from src to dst for the current superstep.
  virtual void send(NodeId src, NodeId dst, Word w) = 0;

  /// Stage a block of words from src to dst (kept in order).
  virtual void send_words(NodeId src, NodeId dst,
                          std::span<const Word> ws) = 0;

  /// Reserve `nwords` staged words from src to dst and return a writable
  /// span over them (zero-copy staging; reads as zero until written).
  [[nodiscard]] virtual std::span<Word> stage(NodeId src, NodeId dst,
                                              std::size_t nwords) = 0;

  /// Copy of every currently staged off-diagonal nonempty pair, canonical
  /// (src asc, dst asc) order. Does not consume the staged state. Sharded
  /// backends see LOCAL staged state only (payloads of non-owned sources
  /// live on their ranks) — globally consistent metadata comes from
  /// staged_meta().
  [[nodiscard]] virtual std::vector<StagedPair> staged_snapshot() const = 0;

  /// The GLOBAL staged metadata: one {src, dst, words} demand per nonempty
  /// off-diagonal staged pair across all ranks, canonical (src asc, dst
  /// asc) order — the skeleton of staged_snapshot() without payloads, and
  /// non-destructive. Sharded backends gather peer counts so every rank
  /// returns the bit-identical list. The hardened (fault-injecting) deliver
  /// path plans from this: fault coins and retransmission charges are pure
  /// functions of (src, dst, words) and the plan's counters, so every rank
  /// draws identical verdicts without ever seeing non-owned payloads.
  [[nodiscard]] virtual std::vector<Demand> staged_meta() {
    std::vector<Demand> out;
    for (const auto& p : staged_snapshot())
      out.push_back({p.src, p.dst, static_cast<std::int64_t>(p.words.size())});
    return out;
  }

  /// Drop all staged words without delivering (crash-unwind path). Bumps
  /// every per-source stage generation.
  virtual void discard_staged() = 0;

  /// Move every staged word to the receivers' inboxes and report what
  /// moved. Invalidates all outstanding staged spans and inbox views.
  virtual DeliverySummary deliver() = 0;

  /// Words received by dst from src in the most recent superstep, FIFO.
  [[nodiscard]] virtual std::span<const Word> inbox(NodeId dst,
                                                    NodeId src) const = 0;

  /// Copy the inbox out as an owning vector and mark the pair consumed.
  [[nodiscard]] virtual std::vector<Word> take_inbox(NodeId dst,
                                                     NodeId src) = 0;

  /// Span-invalidation debug generations (see Network::stage_generation).
  [[nodiscard]] virtual std::uint64_t stage_generation(NodeId src) const = 0;
  [[nodiscard]] virtual std::uint64_t inbox_generation() const noexcept = 0;

  /// The contiguous node shard this process owns. Staging is legal only
  /// from owned sources (asserted by Network); deliver() fills the owned
  /// destinations' inboxes. In-process backends own the full span — the
  /// zero-cost P=1 seam.
  [[nodiscard]] virtual NodeSpan owned() const noexcept { return {0, n()}; }

  /// Uncharged common-knowledge side channel. `offsets` has n()+1 entries;
  /// node v's block is data[offsets[v], offsets[v+1]). On entry each rank
  /// has filled the blocks of its OWNED nodes; on return every rank holds
  /// every block. This realizes, across processes, what the in-process
  /// simulator gets for free from its shared address space (the values a
  /// primitive like broadcast_all returns after separately charging its
  /// documented rounds) — it moves no accounted words and never touches
  /// staged state, inboxes, or generations. Single-process backends
  /// already hold every block: the default is a no-op.
  virtual void allgather_blocks(std::span<Word> data,
                                std::span<const std::size_t> offsets) {
    (void)data;
    (void)offsets;
  }
};

/// RAII ambient transport factory, mirroring FaultScope: algorithms such
/// as apsp_semiring construct their Network internally, so a multi-process
/// run installs a TransportScope and every Network(int n) constructed on
/// this thread while the scope lives builds its data plane through the
/// factory (the socket backend binds its mesh and computes the shard for
/// that n). Scopes nest (innermost wins).
class TransportScope {
 public:
  using Factory = std::function<std::unique_ptr<Transport>(int n)>;

  explicit TransportScope(Factory factory) noexcept;
  ~TransportScope();

  TransportScope(const TransportScope&) = delete;
  TransportScope& operator=(const TransportScope&) = delete;

  /// The innermost live scope's factory on this thread, or nullptr.
  [[nodiscard]] static const Factory* current() noexcept;

 private:
  Factory factory_;
  const Factory* prev_;
};

/// The in-process arena backend: per-source flat staged buffers with
/// run-length destination segments, delivered into one contiguous
/// receiver-major arena per superstep. This is the former Network data
/// plane, moved verbatim behind the seam.
///
/// The staging/arena machinery is deliberately reusable: SocketTransport
/// derives from it, keeps the identical arena layout on every rank, and
/// overrides only deliver() (count all-gather + remote payload exchange)
/// and the ownership/side-channel hooks.
class ArenaTransport : public Transport {
 public:
  explicit ArenaTransport(int n);

  [[nodiscard]] int n() const noexcept override { return n_; }

  void send(NodeId src, NodeId dst, Word w) override;
  void send_words(NodeId src, NodeId dst, std::span<const Word> ws) override;
  [[nodiscard]] std::span<Word> stage(NodeId src, NodeId dst,
                                      std::size_t nwords) override;
  [[nodiscard]] std::vector<StagedPair> staged_snapshot() const override;
  [[nodiscard]] std::vector<Demand> staged_meta() override;
  void discard_staged() override;
  DeliverySummary deliver() override;
  [[nodiscard]] std::span<const Word> inbox(NodeId dst,
                                            NodeId src) const override;
  [[nodiscard]] std::vector<Word> take_inbox(NodeId dst, NodeId src) override;
  [[nodiscard]] std::uint64_t stage_generation(NodeId src) const override;
  [[nodiscard]] std::uint64_t inbox_generation() const noexcept override {
    return inbox_gen_;
  }

 protected:
  void check_node(NodeId v) const;

  [[nodiscard]] std::size_t pair_index(NodeId dst, NodeId src) const noexcept {
    return static_cast<std::size_t>(dst) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(src);
  }

  // deliver() split into its phases so a derived backend can interleave its
  // exchange steps while keeping the canonical summary and arena layout
  // bit-identical. deliver() == count_staged_words(); summarize_counts();
  // rebuild_arena(); scatter_and_clear_outboxes().

  /// Pass 1: fill pair_words_ (indexed src*n + dst) from the staged
  /// segments of every LOCAL outbox.
  void count_staged_words();

  /// The canonical DeliverySummary — (src asc, dst asc) demand list with
  /// self/empty pairs excluded, total and per-node volumes — computed from
  /// the CURRENT pair_words_. Every rank that holds the same global counts
  /// derives the bit-identical summary.
  [[nodiscard]] DeliverySummary summarize_counts() const;

  /// Pass 2a: lay out the receiver-major arena from pair_words_, bump every
  /// generation (all staged spans and inbox views die), and size the arena.
  void rebuild_arena();

  /// Pass 2b: scatter every LOCAL outbox's runs into its arena slices and
  /// release the outboxes. pair_words_ is consumed as the write cursor.
  void scatter_and_clear_outboxes();

  int n_;

  // Staged words, one flat append-only buffer per source. A segment records
  // a run of consecutive words bound for one destination; runs to the same
  // destination concatenate in append order, so per-pair FIFO is preserved
  // without n^2 queues.
  struct Segment {
    NodeId dst;
    std::uint64_t len;
  };
  std::vector<std::vector<Word>> out_data_;      // [src] staged payload
  std::vector<std::vector<Segment>> out_segs_;   // [src] destination runs

  // Delivered words for the current superstep, in one contiguous arena.
  // in_off_/in_len_ (indexed dst*n + src) describe each ordered pair's
  // slice; deliver() rebuilds all three in a single pass over the outboxes.
  std::vector<Word> arena_;
  std::vector<std::size_t> in_off_;
  std::vector<std::size_t> in_len_;
  std::vector<std::size_t> pair_words_;          // scratch: src*n + dst

  // Span-invalidation debug generations. The per-source counter is written
  // only by the thread staging for that source, which the staging contract
  // already makes exclusive.
  std::vector<std::uint64_t> stage_gen_;
  std::uint64_t inbox_gen_ = 0;
};

}  // namespace cca::clique
