// The BROADCAST congested clique (paper Section 4, Corollary 24).
//
// A restricted variant of the model: in each round every node sends the
// SAME O(log n)-bit message to all other nodes. The paper (via Holzer and
// Pinsker [38]) notes that matrix multiplication and APSP require
// Omega~(n) rounds here — unlike the unicast clique where Theorem 1 gives
// O(n^{1/3}) / O(n^{1-2/omega}). This simulator variant exists so the gap
// can be measured: the best broadcast-clique strategy for matrix problems
// is "everyone announces its input row", costing Theta(n) rounds
// (bench_broadcast compares the two models directly).
#pragma once

#include <cstdint>
#include <vector>

#include "clique/network.hpp"
#include "util/contracts.hpp"

namespace cca::clique {

/// Seed agreement on the UNICAST clique: node `src` makes one word (the
/// shared random seed of a Monte Carlo phase) known to every node, with the
/// traffic actually staged and delivered through the Network. Each of src's
/// n-1 links carries exactly one word, so the direct schedule costs exactly
/// 1 round (0 when n == 1) — but unlike a bare charge_rounds(1), the
/// superstep, the n-1 words, and the per-node send/recv maxima all land in
/// TrafficStats.
///
/// The Monte Carlo algorithms (witness detection, colour-coding k-cycle
/// detection, girth) previously claimed "one round to agree on the shared
/// seed" while only charging the round (or, in girth's case, nothing);
/// test_traffic_regression.cpp pins the corrected accounting. Returns the
/// agreed word (every node's copy is checked against the staged one).
/// Must run between supersteps: any other traffic staged at call time
/// would be flushed through this delivery and mis-scheduled.
[[nodiscard]] Word agree_on_seed(Network& net, NodeId src, Word seed);

class BroadcastNetwork {
 public:
  explicit BroadcastNetwork(int n)
      : n_(n),
        queue_(static_cast<std::size_t>(n)),
        inbox_(static_cast<std::size_t>(n)) {
    CCA_EXPECTS(n >= 1);
  }

  [[nodiscard]] int n() const noexcept { return n_; }

  /// Stage one word that node v will broadcast to everyone.
  void broadcast(int v, std::uint64_t word) {
    CCA_EXPECTS(v >= 0 && v < n_);
    queue_[static_cast<std::size_t>(v)].push_back(word);
  }

  /// Deliver all staged broadcasts. Node v's k_v words occupy k_v rounds of
  /// its single (shared) outgoing channel; channels run in parallel, so the
  /// superstep costs max_v k_v rounds.
  void deliver() {
    std::int64_t need = 0;
    for (int v = 0; v < n_; ++v)
      need = std::max(need, static_cast<std::int64_t>(
                                queue_[static_cast<std::size_t>(v)].size()));
    if (n_ > 1) rounds_ += need;
    for (int v = 0; v < n_; ++v) {
      // Swap instead of move: the previous superstep's inbox buffer becomes
      // the next queue, so steady-state delivery allocates nothing.
      inbox_[static_cast<std::size_t>(v)].swap(
          queue_[static_cast<std::size_t>(v)]);
      queue_[static_cast<std::size_t>(v)].clear();
    }
  }

  /// Words node `from` broadcast in the most recent superstep (every node
  /// heard them).
  [[nodiscard]] const std::vector<std::uint64_t>& heard_from(int from) const {
    CCA_EXPECTS(from >= 0 && from < n_);
    return inbox_[static_cast<std::size_t>(from)];
  }

  [[nodiscard]] std::int64_t rounds() const noexcept { return rounds_; }

 private:
  int n_;
  std::int64_t rounds_ = 0;
  std::vector<std::vector<std::uint64_t>> queue_;
  std::vector<std::vector<std::uint64_t>> inbox_;
};

/// Matrix multiplication in the broadcast clique: node v announces its rows
/// of both inputs (2n words); everyone then computes locally. Theta(n)
/// rounds — and Corollary 24 says no broadcast-clique algorithm can do
/// asymptotically better (up to polylog factors).
[[nodiscard]] std::int64_t broadcast_mm_rounds(int n);

}  // namespace cca::clique
