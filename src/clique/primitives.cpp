#include "clique/primitives.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace cca::clique {

std::vector<Word> broadcast_all(Network& net, std::vector<Word> values) {
  CCA_EXPECTS(static_cast<int>(values.size()) == net.n());
  if (net.n() > 1) net.charge_rounds(1);
  return values;
}

void broadcast_from(Network& net, NodeId src, std::int64_t num_words) {
  CCA_EXPECTS(src >= 0 && src < net.n());
  CCA_EXPECTS(num_words >= 0);
  if (net.n() == 1 || num_words == 0) return;
  if (num_words == 1) {
    net.charge_rounds(1);
    return;
  }
  const std::int64_t share = ceil_div(num_words, net.n() - 1);
  // Two-phase cost, except that at n == 2 the scatter already handed every
  // word to the only other node — the rebroadcast phase has no recipient
  // and must not be charged (the audit's k >= 2 drift case).
  net.charge_rounds(net.n() == 2 ? share : 2 * share);
}

std::vector<Word> disseminate(Network& net,
                              const std::vector<std::vector<Word>>& per_node) {
  const int n = net.n();
  CCA_EXPECTS(static_cast<int>(per_node.size()) == n);

  std::vector<Word> all;
  for (const auto& list : per_node)
    all.insert(all.end(), list.begin(), list.end());
  if (n == 1) return all;

  // (1) Announce counts so every node can compute all global offsets.
  {
    std::vector<Word> counts(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v)
      counts[static_cast<std::size_t>(v)] = per_node[static_cast<std::size_t>(v)].size();
    (void)broadcast_all(net, std::move(counts));
  }

  // (2) Balance: word with global index g is routed to holder g mod n
  // (self-sends free — a contributor that is its own holder moves nothing).
  // share/contrib track the phase-3 link loads exactly.
  std::vector<std::int64_t> share(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> contrib(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);
  std::int64_t offset = 0;
  for (int v = 0; v < n; ++v) {
    const auto& list = per_node[static_cast<std::size_t>(v)];
    for (std::size_t j = 0; j < list.size(); ++j) {
      const auto holder =
          static_cast<NodeId>((offset + static_cast<std::int64_t>(j)) %
                              static_cast<std::int64_t>(n));
      net.send(v, holder, list[j]);
      ++share[static_cast<std::size_t>(holder)];
      ++contrib[static_cast<std::size_t>(holder) *
                    static_cast<std::size_t>(n) +
                static_cast<std::size_t>(v)];
    }
    offset += static_cast<std::int64_t>(list.size());
  }
  net.deliver();

  // (3) Every holder sends each held word to every node that does not
  // already hold it (all but the contributor and the holder itself): link
  // (h, u) carries share_h - contrib_h(u) words, and the charge is the
  // exact maximum link load. The seed implementation charged ceil(W/n)
  // unconditionally, overcharging whenever the heaviest holders' shares
  // were contributed by the very nodes they would serve (n == 2 being the
  // extreme: everything already in place, yet ceil(W/2) charged).
  std::int64_t phase3 = 0;
  for (int h = 0; h < n; ++h)
    for (int u = 0; u < n; ++u) {
      if (u == h) continue;
      const auto load =
          share[static_cast<std::size_t>(h)] -
          contrib[static_cast<std::size_t>(h) * static_cast<std::size_t>(n) +
                  static_cast<std::size_t>(u)];
      phase3 = std::max(phase3, load);
    }
  net.charge_rounds(phase3);
  return all;
}

}  // namespace cca::clique
