#include "clique/primitives.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace cca::clique {

std::vector<Word> broadcast_all(Network& net, std::vector<Word> values) {
  CCA_EXPECTS(static_cast<int>(values.size()) == net.n());
  // Under a sharded transport each rank authoritatively filled only its
  // OWNED slots; realize the common knowledge the 1-round schedule below
  // pays for (free side channel, see Network::sync_node_words). In-process
  // this is a no-op and the returned vector is byte-identical.
  net.sync_node_words(values);
  if (net.n() > 1) net.charge_rounds(1);
  return values;
}

void broadcast_from(Network& net, NodeId src, std::int64_t num_words) {
  CCA_EXPECTS(src >= 0 && src < net.n());
  CCA_EXPECTS(num_words >= 0);
  if (net.n() == 1 || num_words == 0) return;
  if (num_words == 1) {
    net.charge_rounds(1);
    return;
  }
  const std::int64_t share = ceil_div(num_words, net.n() - 1);
  // Two-phase cost, except that at n == 2 the scatter already handed every
  // word to the only other node — the rebroadcast phase has no recipient
  // and must not be charged (the audit's k >= 2 drift case).
  net.charge_rounds(net.n() == 2 ? share : 2 * share);
}

std::vector<Word> disseminate(Network& net,
                              const std::vector<std::vector<Word>>& per_node) {
  const int n = net.n();
  CCA_EXPECTS(static_cast<int>(per_node.size()) == n);
  if (n == 1) return per_node[0];

  // Sharded contract: only the OWNED lists of per_node need to be filled
  // on each rank (non-owned lists are ignored); the returned concatenation
  // is reconstructed for everyone. In-process owns everything and the
  // phases below are byte-identical to the historical single-owner code.
  const NodeSpan own = net.owned();

  // (1) Announce counts so every node can compute all global offsets (the
  // broadcast syncs the non-owned slots under sharding).
  std::vector<Word> counts(static_cast<std::size_t>(n), 0);
  for (int v = own.begin; v < own.end; ++v)
    counts[static_cast<std::size_t>(v)] =
        per_node[static_cast<std::size_t>(v)].size();
  counts = broadcast_all(net, std::move(counts));

  // (2) Balance: word with global index g is routed to holder g mod n
  // (self-sends free — a contributor that is its own holder moves nothing).
  // share/contrib track the phase-3 link loads exactly; they are derived
  // from the synced counts, so every rank charges identically while only
  // owned sources actually stage.
  std::vector<std::int64_t> share(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> contrib(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);
  std::int64_t offset = 0;
  for (int v = 0; v < n; ++v) {
    const auto cnt =
        static_cast<std::int64_t>(counts[static_cast<std::size_t>(v)]);
    for (std::int64_t j = 0; j < cnt; ++j) {
      const auto holder = static_cast<NodeId>((offset + j) %
                                              static_cast<std::int64_t>(n));
      if (own.contains(v))
        net.send(v, holder,
                 per_node[static_cast<std::size_t>(v)]
                         [static_cast<std::size_t>(j)]);
      ++share[static_cast<std::size_t>(holder)];
      ++contrib[static_cast<std::size_t>(holder) *
                    static_cast<std::size_t>(n) +
                static_cast<std::size_t>(v)];
    }
    offset += cnt;
  }
  net.deliver();

  // (3) Every holder sends each held word to every node that does not
  // already hold it (all but the contributor and the holder itself): link
  // (h, u) carries share_h - contrib_h(u) words, and the charge is the
  // exact maximum link load. The seed implementation charged ceil(W/n)
  // unconditionally, overcharging whenever the heaviest holders' shares
  // were contributed by the very nodes they would serve (n == 2 being the
  // extreme: everything already in place, yet ceil(W/2) charged).
  std::int64_t phase3 = 0;
  for (int h = 0; h < n; ++h)
    for (int u = 0; u < n; ++u) {
      if (u == h) continue;
      const auto load =
          share[static_cast<std::size_t>(h)] -
          contrib[static_cast<std::size_t>(h) * static_cast<std::size_t>(n) +
                  static_cast<std::size_t>(u)];
      phase3 = std::max(phase3, load);
    }
  net.charge_rounds(phase3);

  // Assemble the concatenation (contributor order). Each rank writes its
  // owned contributors' blocks at their global offsets; the side channel
  // fills in the rest (no-op in-process).
  std::vector<std::size_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (int v = 0; v < n; ++v)
    offsets[static_cast<std::size_t>(v) + 1] =
        offsets[static_cast<std::size_t>(v)] +
        static_cast<std::size_t>(counts[static_cast<std::size_t>(v)]);
  std::vector<Word> all(offsets.back(), 0);
  for (int v = own.begin; v < own.end; ++v)
    std::copy(per_node[static_cast<std::size_t>(v)].begin(),
              per_node[static_cast<std::size_t>(v)].end(),
              all.begin() +
                  static_cast<std::ptrdiff_t>(
                      offsets[static_cast<std::size_t>(v)]));
  net.allgather_node_blocks(all, offsets);
  return all;
}

}  // namespace cca::clique
