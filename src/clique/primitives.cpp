#include "clique/primitives.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace cca::clique {

std::vector<Word> broadcast_all(Network& net, std::vector<Word> values) {
  CCA_EXPECTS(static_cast<int>(values.size()) == net.n());
  if (net.n() > 1) net.charge_rounds(1);
  return values;
}

void broadcast_from(Network& net, NodeId src, std::int64_t num_words) {
  CCA_EXPECTS(src >= 0 && src < net.n());
  CCA_EXPECTS(num_words >= 0);
  if (net.n() == 1 || num_words == 0) return;
  if (num_words == 1) {
    net.charge_rounds(1);
    return;
  }
  const std::int64_t share = ceil_div(num_words, net.n() - 1);
  net.charge_rounds(2 * share);
}

std::vector<Word> disseminate(Network& net,
                              const std::vector<std::vector<Word>>& per_node) {
  const int n = net.n();
  CCA_EXPECTS(static_cast<int>(per_node.size()) == n);

  std::vector<Word> all;
  for (const auto& list : per_node)
    all.insert(all.end(), list.begin(), list.end());
  if (n == 1) return all;

  // (1) Announce counts so every node can compute all global offsets.
  {
    std::vector<Word> counts(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v)
      counts[static_cast<std::size_t>(v)] = per_node[static_cast<std::size_t>(v)].size();
    (void)broadcast_all(net, std::move(counts));
  }

  // (2) Balance: word with global index g is routed to holder g mod n.
  std::int64_t offset = 0;
  for (int v = 0; v < n; ++v) {
    const auto& list = per_node[static_cast<std::size_t>(v)];
    for (std::size_t j = 0; j < list.size(); ++j) {
      const auto holder =
          static_cast<NodeId>((offset + static_cast<std::int64_t>(j)) %
                              static_cast<std::int64_t>(n));
      net.send(v, holder, list[j]);
    }
    offset += static_cast<std::int64_t>(list.size());
  }
  net.deliver();

  // (3) Every holder rebroadcasts its share: link (holder, u) carries the
  // share size, so the cost is the maximum share.
  const std::int64_t total = offset;
  const std::int64_t max_share = ceil_div(total, n);
  net.charge_rounds(max_share);
  return all;
}

}  // namespace cca::clique
