#include "clique/routing.hpp"

#include <algorithm>
#include <cstdint>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace cca::clique {

namespace {

/// Apply `count` words starting at cyclic offset `start` to a difference
/// array over [0, n): every intermediate in the cyclic range gets one word
/// per lap. Full laps contribute uniformly.
void add_cyclic_range(std::vector<std::int64_t>& diff, int n,
                      std::int64_t start, std::int64_t count,
                      std::int64_t& uniform) {
  CCA_EXPECTS(count >= 0 && start >= 0 && start < n);
  uniform += count / n;
  const auto rem = static_cast<int>(count % n);
  if (rem == 0) return;
  const int end = static_cast<int>(start) + rem;
  if (end <= n) {
    diff[static_cast<std::size_t>(start)] += 1;
    if (end < n) diff[static_cast<std::size_t>(end)] -= 1;
  } else {
    diff[static_cast<std::size_t>(start)] += 1;  // [start, n)
    diff[0] += 1;                                // [0, end - n)
    diff[static_cast<std::size_t>(end - n)] -= 1;
  }
}

/// Max value of a cyclic difference array plus its uniform offset.
std::int64_t max_of_diff(const std::vector<std::int64_t>& diff,
                         std::int64_t uniform) {
  std::int64_t run = 0;
  std::int64_t best = 0;
  for (const auto d : diff) {
    run += d;
    best = std::max(best, run);
  }
  return best + uniform;
}

/// Relay rounds when block (src,dst) begins at intermediate offset(src,dst):
/// phase A = max over (src, mid) links, phase B = max over (mid, dst) links.
template <typename OffsetFn>
std::int64_t relay_rounds(int n, const std::vector<Demand>& demands,
                          OffsetFn&& offset) {
  // Phase A: group by source.
  std::vector<std::vector<const Demand*>> by_src(static_cast<std::size_t>(n));
  std::vector<std::vector<const Demand*>> by_dst(static_cast<std::size_t>(n));
  std::vector<std::int64_t> start(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const auto& d = demands[i];
    CCA_EXPECTS(d.src >= 0 && d.src < n && d.dst >= 0 && d.dst < n);
    CCA_EXPECTS(d.words >= 0);
    if (d.words == 0) continue;
    start[i] = offset(d);
    by_src[static_cast<std::size_t>(d.src)].push_back(&d);
    by_dst[static_cast<std::size_t>(d.dst)].push_back(&d);
  }

  auto max_side = [&](const std::vector<std::vector<const Demand*>>& groups) {
    std::int64_t best = 0;
    std::vector<std::int64_t> diff(static_cast<std::size_t>(n));
    for (const auto& group : groups) {
      if (group.empty()) continue;
      std::fill(diff.begin(), diff.end(), 0);
      std::int64_t uniform = 0;
      for (const Demand* d : group)
        add_cyclic_range(diff, n, start[static_cast<std::size_t>(d - demands.data())],
                         d->words, uniform);
      best = std::max(best, max_of_diff(diff, uniform));
    }
    return best;
  };

  const std::int64_t phase_a = max_side(by_src);
  const std::int64_t phase_b = max_side(by_dst);
  return phase_a + phase_b;
}

// ---------------------------------------------------------------------------
// Euler-split edge colouring (constructive Koenig decomposition).
// ---------------------------------------------------------------------------

struct Edge {
  int src;
  int dst;
  std::int64_t count;
};

/// Recursively colour the demand multigraph. Colour classes are produced in
/// leaf (DFS) order; consecutive classes share split ancestry and hence have
/// near-disjoint edge sets, so contiguous BLOCKS of classes are assigned to
/// the same intermediate: class t of C goes through node floor(t*n/C). The
/// total class count is needed before any class can be assigned, so the
/// split recursion logs the class sequence into a flat buffer and the load
/// assignment replays the log once the count is known.
///
/// Two observations keep the schedule exactly as specified while avoiding
/// the naive implementation's Theta(classes * n) blowup:
///  * When every multiplicity is even, the Euler split produces two
///    element-identical halves, so the recursion's subtrees emit identical
///    class sequences. The subtree is traversed once and its logged class
///    range is duplicated in place of the second descent. Uniform word
///    blocks (the matrix algorithms' common case) collapse from 2^k
///    traversals to one.
///  * The odd-leftover trail walk touches only vertices incident to odd
///    edges; adjacency and cursor scratch is reused across recursion nodes
///    and reset per touched vertex, never per clique node.
class KoenigColouring {
 public:
  KoenigColouring(int n, std::vector<std::int64_t>& load_a,
                  std::vector<std::int64_t>& load_b)
      : n_(n),
        load_a_(load_a),
        load_b_(load_b),
        adj_(static_cast<std::size_t>(2 * n)),
        cursor_(static_cast<std::size_t>(2 * n)),
        row_(static_cast<std::size_t>(n)),
        col_(static_cast<std::size_t>(n)) {}

  void colour(const std::vector<Edge>& edges) {
    // Single split traversal: the DFS leaf order of colour classes goes
    // into a flat log (class t = edges [log_bounds_[t], log_bounds_[t+1])).
    // The class count needed for the block assignment is the log length,
    // so no separate counting pass re-runs the splits.
    log_edges_.clear();
    log_bounds_.clear();
    split_walk(edges, 0);
    total_colours_ = static_cast<std::int64_t>(log_bounds_.size());
    if (total_colours_ == 0) return;
    for (std::int64_t t = 0; t < total_colours_; ++t) {
      const int mid = static_cast<int>(t * n_ / total_colours_);
      const std::size_t begin = log_bounds_[static_cast<std::size_t>(t)];
      const std::size_t finish =
          t + 1 < total_colours_ ? log_bounds_[static_cast<std::size_t>(t + 1)]
                                 : log_edges_.size();
      for (std::size_t i = begin; i < finish; ++i)
        add_load(log_edges_[i].first, log_edges_[i].second, mid);
    }
  }

 private:
  struct OddEdge {
    int src;
    int dst;
    bool used = false;
  };

  std::int64_t max_degree(const std::vector<Edge>& edges) {
    // row_/col_ are all-zero between calls; only entries touched by this
    // edge list are accumulated, maxed, and zeroed again — O(|edges|), not
    // O(n), per recursion node.
    for (const auto& e : edges) {
      row_[static_cast<std::size_t>(e.src)] += e.count;
      col_[static_cast<std::size_t>(e.dst)] += e.count;
    }
    std::int64_t best = 0;
    for (const auto& e : edges) {
      best = std::max({best, row_[static_cast<std::size_t>(e.src)],
                       col_[static_cast<std::size_t>(e.dst)]});
      row_[static_cast<std::size_t>(e.src)] = 0;
      col_[static_cast<std::size_t>(e.dst)] = 0;
    }
    return best;
  }

  /// Split the demand multigraph into two halves whose row/column sums are
  /// as equal as possible: even multiplicities are halved arithmetically,
  /// odd leftovers form a simple bipartite graph whose edges are 2-coloured
  /// by alternating along maximal trails (starting at odd-degree vertices
  /// first, so every vertex's degree splits with deviation at most one).
  /// Returns true when the halves are element-identical (no odd leftovers).
  bool euler_split(const std::vector<Edge>& edges, std::vector<Edge>& lo,
                   std::vector<Edge>& hi) {
    lo.clear();
    hi.clear();
    odd_.clear();
    for (const auto& e : edges) {
      const std::int64_t half = e.count / 2;
      if (half > 0) {
        lo.push_back({e.src, e.dst, half});
        hi.push_back({e.src, e.dst, half});
      }
      if (e.count % 2 == 1) odd_.push_back({e.src, e.dst, false});
    }
    if (odd_.empty()) return true;

    // Adjacency over 2n vertices: sources are [0,n), destinations [n,2n).
    // Only vertices incident to an odd edge are touched; their scratch
    // entries are reset on the way out.
    touched_.clear();
    for (std::size_t i = 0; i < odd_.size(); ++i) {
      const auto s = static_cast<std::size_t>(odd_[i].src);
      const auto d = static_cast<std::size_t>(n_ + odd_[i].dst);
      if (adj_[s].empty()) touched_.push_back(static_cast<int>(s));
      if (adj_[d].empty()) touched_.push_back(static_cast<int>(d));
      adj_[s].push_back(static_cast<int>(i));
      adj_[d].push_back(static_cast<int>(i));
    }
    std::sort(touched_.begin(), touched_.end());
    for (const int v : touched_) cursor_[static_cast<std::size_t>(v)] = 0;

    auto walk_trail = [&](int v0) {
      // Maximal trail from v0, alternating edges between lo and hi.
      int v = v0;
      bool to_lo = true;
      for (;;) {
        auto& cu = cursor_[static_cast<std::size_t>(v)];
        const auto& edges_at = adj_[static_cast<std::size_t>(v)];
        while (cu < edges_at.size() &&
               odd_[static_cast<std::size_t>(edges_at[cu])].used)
          ++cu;
        if (cu >= edges_at.size()) return;
        const auto id = static_cast<std::size_t>(edges_at[cu]);
        odd_[id].used = true;
        (to_lo ? lo : hi).push_back({odd_[id].src, odd_[id].dst, 1});
        to_lo = !to_lo;
        const int s = odd_[id].src;
        const int d = n_ + odd_[id].dst;
        v = (v == s) ? d : s;
      }
    };

    // Start trails at odd-degree vertices so trail endpoints pair them up.
    // Untouched vertices have empty adjacency, so visiting the sorted
    // touched set is equivalent to the full 0..2n-1 sweep.
    for (const int v : touched_)
      if (adj_[static_cast<std::size_t>(v)].size() % 2 == 1) walk_trail(v);
    for (const int v : touched_) walk_trail(v);
    for (const int v : touched_) adj_[static_cast<std::size_t>(v)].clear();
    return false;
  }

  void split_walk(std::vector<Edge> edges, int depth) {
    if (edges.empty()) return;
    const std::int64_t deg = max_degree(edges);
    if (deg <= 1) {
      log_class(edges);
      return;
    }
    if (depth > 64) {
      // Termination backstop; never expected (the split strictly shrinks
      // the max degree), but keeps the router total even if it regresses.
      for (const auto& e : edges)
        for (std::int64_t i = 0; i < e.count; ++i)
          log_class({{e.src, e.dst, 1}});
      return;
    }
    std::vector<Edge> lo;
    std::vector<Edge> hi;
    const bool identical = euler_split(edges, lo, hi);
    edges.clear();
    edges.shrink_to_fit();
    if (!identical) {
      split_walk(std::move(lo), depth + 1);
      split_walk(std::move(hi), depth + 1);
      return;
    }
    // Element-identical halves produce identical subtrees: traverse once
    // and duplicate the logged class range in place of the second descent.
    const std::size_t mark_b = log_bounds_.size();
    const std::size_t mark_e = log_edges_.size();
    split_walk(std::move(lo), depth + 1);
    const std::size_t end_b = log_bounds_.size();
    const std::size_t end_e = log_edges_.size();
    const std::size_t delta = end_e - mark_e;
    log_bounds_.reserve(end_b + (end_b - mark_b));
    for (std::size_t b = mark_b; b < end_b; ++b)
      log_bounds_.push_back(log_bounds_[b] + delta);
    log_edges_.resize(end_e + delta);
    std::copy(log_edges_.begin() + static_cast<std::ptrdiff_t>(mark_e),
              log_edges_.begin() + static_cast<std::ptrdiff_t>(end_e),
              log_edges_.begin() + static_cast<std::ptrdiff_t>(end_e));
  }

  void log_class(const std::vector<Edge>& matching) {
    log_bounds_.push_back(log_edges_.size());
    for (const auto& e : matching) {
      CCA_ASSERT(e.count == 1);
      log_edges_.push_back({e.src, e.dst});
    }
  }

  void add_load(int src, int dst, int mid) {
    load_a_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
            static_cast<std::size_t>(mid)] += 1;
    load_b_[static_cast<std::size_t>(mid) * static_cast<std::size_t>(n_) +
            static_cast<std::size_t>(dst)] += 1;
  }

  int n_;
  std::int64_t total_colours_ = 0;
  std::vector<std::int64_t>& load_a_;
  std::vector<std::int64_t>& load_b_;

  // Scratch reused across recursion nodes.
  std::vector<std::vector<int>> adj_;
  std::vector<std::size_t> cursor_;
  std::vector<std::int64_t> row_;
  std::vector<std::int64_t> col_;
  std::vector<OddEdge> odd_;
  std::vector<int> touched_;

  // Flat log of colour classes in DFS leaf order.
  std::vector<std::pair<int, int>> log_edges_;
  std::vector<std::size_t> log_bounds_;
};

}  // namespace

std::int64_t rounds_direct(int n, const std::vector<Demand>& demands) {
  CCA_EXPECTS(n >= 1);
  // Aggregate per ordered link; a demand list may mention a link repeatedly.
  std::int64_t best = 0;
  std::vector<std::int64_t> acc;
  std::vector<std::vector<const Demand*>> by_src(static_cast<std::size_t>(n));
  for (const auto& d : demands) {
    CCA_EXPECTS(d.src >= 0 && d.src < n && d.dst >= 0 && d.dst < n);
    by_src[static_cast<std::size_t>(d.src)].push_back(&d);
  }
  acc.assign(static_cast<std::size_t>(n), 0);
  for (const auto& group : by_src) {
    for (const Demand* d : group) acc[static_cast<std::size_t>(d->dst)] += d->words;
    for (const Demand* d : group) {
      best = std::max(best, acc[static_cast<std::size_t>(d->dst)]);
      acc[static_cast<std::size_t>(d->dst)] = 0;
    }
  }
  return best;
}

std::int64_t rounds_hash_relay(int n, const std::vector<Demand>& demands) {
  CCA_EXPECTS(n >= 1);
  return relay_rounds(n, demands, [n](const Demand& d) {
    const auto key = static_cast<std::uint64_t>(d.src) * 0x1000003ULL +
                     static_cast<std::uint64_t>(d.dst);
    return static_cast<std::int64_t>(splitmix64(key) %
                                     static_cast<std::uint64_t>(n));
  });
}

std::int64_t rounds_random_relay(int n, const std::vector<Demand>& demands,
                                 Rng& rng) {
  CCA_EXPECTS(n >= 1);
  return relay_rounds(n, demands, [n, &rng](const Demand&) {
    return static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(n)));
  });
}

std::int64_t rounds_koenig_relay(int n, const std::vector<Demand>& demands) {
  CCA_EXPECTS(n >= 1);
  std::vector<Edge> edges;
  edges.reserve(demands.size());
  for (const auto& d : demands) {
    CCA_EXPECTS(d.src >= 0 && d.src < n && d.dst >= 0 && d.dst < n);
    CCA_EXPECTS(d.words >= 0);
    if (d.words > 0) edges.push_back({d.src, d.dst, d.words});
  }
  if (edges.empty()) return 0;

  const auto nn = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  std::vector<std::int64_t> load_a(nn);
  std::vector<std::int64_t> load_b(nn);
  KoenigColouring colouring(n, load_a, load_b);
  colouring.colour(edges);

  const auto max_a = *std::max_element(load_a.begin(), load_a.end());
  const auto max_b = *std::max_element(load_b.begin(), load_b.end());
  return max_a + max_b;
}

}  // namespace cca::clique
