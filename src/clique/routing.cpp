#include "clique/routing.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "util/contracts.hpp"
#include "util/math.hpp"
#include "util/parallel.hpp"

namespace cca::clique {

namespace {

/// Apply `count` words starting at cyclic offset `start` to a difference
/// array over [0, n): every intermediate in the cyclic range gets one word
/// per lap. Full laps contribute uniformly.
void add_cyclic_range(std::vector<std::int64_t>& diff, int n,
                      std::int64_t start, std::int64_t count,
                      std::int64_t& uniform) {
  CCA_EXPECTS(count >= 0 && start >= 0 && start < n);
  uniform += count / n;
  const auto rem = static_cast<int>(count % n);
  if (rem == 0) return;
  const int end = static_cast<int>(start) + rem;
  if (end <= n) {
    diff[static_cast<std::size_t>(start)] += 1;
    if (end < n) diff[static_cast<std::size_t>(end)] -= 1;
  } else {
    diff[static_cast<std::size_t>(start)] += 1;  // [start, n)
    diff[0] += 1;                                // [0, end - n)
    diff[static_cast<std::size_t>(end - n)] -= 1;
  }
}

/// Max value of a cyclic difference array plus its uniform offset.
std::int64_t max_of_diff(const std::vector<std::int64_t>& diff,
                         std::int64_t uniform) {
  std::int64_t run = 0;
  std::int64_t best = 0;
  for (const auto d : diff) {
    run += d;
    best = std::max(best, run);
  }
  return best + uniform;
}

/// Relay rounds when block (src,dst) begins at intermediate offset(src,dst):
/// phase A = max over (src, mid) links, phase B = max over (mid, dst) links.
template <typename OffsetFn>
std::int64_t relay_rounds(int n, const std::vector<Demand>& demands,
                          OffsetFn&& offset) {
  // Phase A: group by source.
  std::vector<std::vector<const Demand*>> by_src(static_cast<std::size_t>(n));
  std::vector<std::vector<const Demand*>> by_dst(static_cast<std::size_t>(n));
  std::vector<std::int64_t> start(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const auto& d = demands[i];
    CCA_EXPECTS(d.src >= 0 && d.src < n && d.dst >= 0 && d.dst < n);
    CCA_EXPECTS(d.words >= 0);
    if (d.words == 0) continue;
    start[i] = offset(d);
    by_src[static_cast<std::size_t>(d.src)].push_back(&d);
    by_dst[static_cast<std::size_t>(d.dst)].push_back(&d);
  }

  auto max_side = [&](const std::vector<std::vector<const Demand*>>& groups) {
    std::int64_t best = 0;
    std::vector<std::int64_t> diff(static_cast<std::size_t>(n));
    for (const auto& group : groups) {
      if (group.empty()) continue;
      std::fill(diff.begin(), diff.end(), 0);
      std::int64_t uniform = 0;
      for (const Demand* d : group)
        add_cyclic_range(diff, n, start[static_cast<std::size_t>(d - demands.data())],
                         d->words, uniform);
      best = std::max(best, max_of_diff(diff, uniform));
    }
    return best;
  };

  const std::int64_t phase_a = max_side(by_src);
  const std::int64_t phase_b = max_side(by_dst);
  return phase_a + phase_b;
}

// ---------------------------------------------------------------------------
// Euler-split edge colouring (constructive Koenig decomposition).
// ---------------------------------------------------------------------------

struct Edge {
  int src;
  int dst;
  std::int64_t count;
};

/// One node of the split recursion handed to a worker: a concrete
/// half-multigraph (general counted edges or the packed all-count-1 form)
/// at its recursion depth.
struct SplitTask {
  std::vector<Edge> edges;                 ///< general node (when !packed)
  std::vector<std::uint32_t> packed_edges; ///< packed node (when packed)
  bool packed = false;
  int depth = 0;
};

/// One slot of the expanded frontier, in DFS order. A concrete slot names a
/// task; a dup slot replays the merged log produced by slots
/// [dup_begin, this) — the frontier-level form of the identical-halves
/// subtree duplication.
struct SplitSlot {
  int task = -1;
  std::size_t dup_begin = 0;
  bool dup = false;
};

/// The split recursion machinery with its scratch and class log. One engine
/// per task (and one for the serial path / the frontier expansion): the
/// scratch fully resets between recursion nodes, so engines running disjoint
/// subtrees emit exactly the class sequences the serial recursion would.
///
/// Observations that keep the schedule exactly as specified while avoiding
/// the naive implementation's Theta(classes * n) blowup:
///  * When every multiplicity is even, the Euler split produces two
///    element-identical halves, so the recursion's subtrees emit identical
///    class sequences. The subtree is traversed once and its logged class
///    range is duplicated in place of the second descent. Uniform word
///    blocks (the matrix algorithms' common case) collapse from 2^k
///    traversals to one.
///  * The odd-leftover trail walk touches only vertices incident to odd
///    edges; adjacency and cursor scratch is reused across recursion nodes
///    and reset per touched vertex, never per clique node.
///  * The log stores one packed 32-bit (src, dst) word per class edge, with
///    the exact footprint (the subtree's total word count) reserved up
///    front, so logging is sequential stores and subtree duplication is one
///    memcpy-sized range copy.
///  * Split scratch vectors recycle through a small pool (the recursion
///    allocates nothing in steady state).
class SplitEngine {
 public:
  explicit SplitEngine(int n)
      : n_(n),
        head_(static_cast<std::size_t>(2 * n), -1),
        mark_((static_cast<std::size_t>(2 * n) + 63) / 64, 0),
        oddb_((static_cast<std::size_t>(2 * n) + 63) / 64, 0),
        row_(static_cast<std::size_t>(n)),
        col_(static_cast<std::size_t>(n)),
        row2_(static_cast<std::size_t>(2 * n), 0) {
    // The packed log format holds src and dst in 16 bits each.
    CCA_EXPECTS(n <= 0xffff);
  }

  void reset_log(std::int64_t expected_words) {
    log_edges_.clear();
    log_edges_.reserve(static_cast<std::size_t>(expected_words));
    log_bounds_.clear();
  }

  [[nodiscard]] const std::vector<std::uint32_t>& log_edges() const noexcept {
    return log_edges_;
  }
  [[nodiscard]] const std::vector<std::size_t>& log_bounds() const noexcept {
    return log_bounds_;
  }

  [[nodiscard]] static std::uint32_t pack(int src, int dst) noexcept {
    return (static_cast<std::uint32_t>(src) << 16) |
           static_cast<std::uint32_t>(dst);
  }

  [[nodiscard]] std::vector<Edge> copy_of(const std::vector<Edge>& edges) {
    auto v = acquire();
    v.assign(edges.begin(), edges.end());
    return v;
  }

  /// Run one task's whole subtree into this engine's log.
  void run(SplitTask&& task) {
    if (task.packed)
      split_walk_packed(std::move(task.packed_edges), task.depth);
    else
      split_walk(std::move(task.edges), task.depth);
  }

  /// Serially reproduce the TOP of the split recursion down to at most
  /// `max_depth` levels, emitting the still-unsplit subtrees as concrete
  /// tasks (owned edge lists) and identical-halves duplications as dup
  /// slots — both in the recursion's DFS order, so running the tasks and
  /// concatenating their logs (dup slots replaying the just-merged range)
  /// reproduces the serial class log bit for bit.
  void expand(std::vector<Edge> edges, int depth, int max_depth,
              std::vector<SplitTask>& tasks, std::vector<SplitSlot>& slots) {
    if (edges.empty()) {
      release(std::move(edges));
      return;
    }
    if (depth >= max_depth || depth > 64) {
      emit_task(std::move(edges), depth, tasks, slots);
      return;
    }
    if (max_degree(edges) <= 1) {
      emit_task(std::move(edges), depth, tasks, slots);
      return;
    }
    auto lo = acquire();
    auto hi = acquire();
    const bool identical = euler_split(edges, lo, hi);
    const bool simple_children = max_half_ <= 1;
    release(std::move(edges));
    auto descend = [&](std::vector<Edge>&& child) {
      if (simple_children) {
        auto p = acquire_packed();
        p.reserve(child.size());
        for (const auto& e : child) p.push_back(pack(e.src, e.dst));
        release(std::move(child));
        expand_packed(std::move(p), depth + 1, max_depth, tasks, slots);
      } else {
        expand(std::move(child), depth + 1, max_depth, tasks, slots);
      }
    };
    if (!identical) {
      descend(std::move(lo));
      descend(std::move(hi));
      return;
    }
    release(std::move(hi));
    const std::size_t mark_slot = slots.size();
    descend(std::move(lo));
    if (slots.size() > mark_slot)
      slots.push_back({-1, mark_slot, true});
  }

 private:
  /// Pool-backed copy/acquire of edge scratch vectors: the recursion reuses
  /// vectors instead of allocating one pair per node.
  [[nodiscard]] std::vector<Edge> acquire() {
    if (pool_.empty()) return {};
    auto v = std::move(pool_.back());
    pool_.pop_back();
    v.clear();
    return v;
  }
  void release(std::vector<Edge>&& v) { pool_.push_back(std::move(v)); }
  [[nodiscard]] std::vector<std::uint32_t> acquire_packed() {
    if (packed_pool_.empty()) return {};
    auto v = std::move(packed_pool_.back());
    packed_pool_.pop_back();
    v.clear();
    return v;
  }
  void release_packed(std::vector<std::uint32_t>&& v) {
    packed_pool_.push_back(std::move(v));
  }

  void emit_task(std::vector<Edge>&& edges, int depth,
                 std::vector<SplitTask>& tasks, std::vector<SplitSlot>& slots) {
    slots.push_back({static_cast<int>(tasks.size()), 0, false});
    tasks.push_back({std::move(edges), {}, false, depth});
  }
  void emit_task_packed(std::vector<std::uint32_t>&& es, int depth,
                        std::vector<SplitTask>& tasks,
                        std::vector<SplitSlot>& slots) {
    slots.push_back({static_cast<int>(tasks.size()), 0, false});
    tasks.push_back({{}, std::move(es), true, depth});
  }

  void expand_packed(std::vector<std::uint32_t> es, int depth, int max_depth,
                     std::vector<SplitTask>& tasks,
                     std::vector<SplitSlot>& slots) {
    if (es.empty()) {
      release_packed(std::move(es));
      return;
    }
    if (depth >= max_depth || depth > 64) {
      emit_task_packed(std::move(es), depth, tasks, slots);
      return;
    }
    build_slots(es);
    if (node_deg_ <= 1) {
      unbuild_slots();
      emit_task_packed(std::move(es), depth, tasks, slots);
      return;
    }
    auto lo = acquire_packed();
    auto hi = acquire_packed();
    trail_split_packed(es, lo, hi);
    release_packed(std::move(es));
    expand_packed(std::move(lo), depth + 1, max_depth, tasks, slots);
    expand_packed(std::move(hi), depth + 1, max_depth, tasks, slots);
  }

  /// One edge occurrence in a vertex's adjacency list: slot 2i is the src
  /// side and slot 2i+1 the dst side of odd edge i, so an edge's two slots
  /// always share one (aligned) 16-byte chunk — marking both sides used
  /// after a consume touches the cache line the walk just read. `edge`
  /// doubles as the used flag (kUsedSlot): the walk's skip-chase needs ONE
  /// random load per step instead of separate next/edge/used lookups.
  struct SlotRec {
    int next;
    std::uint32_t edge;
  };
  static constexpr std::uint32_t kUsedSlot = 0xffffffffu;  // src 0xffff illegal

  /// Thread a packed edge list into per-vertex slot lists. Iterating edges
  /// in reverse makes every vertex's list ascend in slot order — exactly
  /// the order a forward push_back build yields, preserving the reference
  /// implementation's lowest-id-first edge selection. Only touched entries
  /// of head_/mark_/oddb_ are written — O(odd edges), never O(n).
  void build_slots(const std::vector<std::uint32_t>& es) {
    touched_.clear();
    slots_.resize(2 * es.size());
    node_deg_ = 0;
    for (std::size_t i = es.size(); i-- > 0;) {
      const auto e = es[i];
      const auto s = static_cast<std::size_t>(e >> 16);
      const auto d = static_cast<std::size_t>(n_) +
                     static_cast<std::size_t>(e & 0xffffu);
      if (head_[s] < 0) touched_.push_back(static_cast<int>(s));
      if (head_[d] < 0) touched_.push_back(static_cast<int>(d));
      slots_[2 * i] = {head_[s], e};
      head_[s] = static_cast<int>(2 * i);
      slots_[2 * i + 1] = {head_[d], e};
      head_[d] = static_cast<int>(2 * i + 1);
      mark_[s >> 6] |= std::uint64_t{1} << (s & 63);
      mark_[d >> 6] |= std::uint64_t{1} << (d & 63);
      oddb_[s >> 6] ^= std::uint64_t{1} << (s & 63);
      oddb_[d >> 6] ^= std::uint64_t{1} << (d & 63);
      // Exact node max degree, free with the threading pass: counters only
      // ever increment, so the running max equals the final max.
      const auto ds = ++row2_[s];
      const auto dd = ++row2_[d];
      if (ds > node_deg_) node_deg_ = ds;
      if (dd > node_deg_) node_deg_ = dd;
    }
  }

  /// Tear down build_slots scratch without running the walks (used when the
  /// just-built node turned out to be a leaf). All set bits in mark_/oddb_
  /// belong to this node, so zeroing whole words via the touched list is
  /// exact.
  void unbuild_slots() {
    for (const int v : touched_) {
      const auto u = static_cast<std::size_t>(v);
      head_[u] = -1;
      row2_[u] = 0;
      mark_[u >> 6] = 0;
      oddb_[u >> 6] = 0;
    }
  }

  struct Consumed {
    int slot;
    std::uint32_t edge;
  };

  /// Pop the lowest-id unused edge at vertex v, dropping the used prefix
  /// of v's list on the way (each slot is dropped at most once, so the
  /// chase is amortised O(1)). Returns slot -1 when v is exhausted.
  Consumed consume_lowest_unused(int v) {
    int slot = head_[static_cast<std::size_t>(v)];
    while (slot >= 0 && slots_[static_cast<std::size_t>(slot)].edge == kUsedSlot)
      slot = slots_[static_cast<std::size_t>(slot)].next;
    if (slot < 0) {
      head_[static_cast<std::size_t>(v)] = -1;
      return {-1, 0};
    }
    const auto e = slots_[static_cast<std::size_t>(slot)].edge;
    head_[static_cast<std::size_t>(v)] =
        slots_[static_cast<std::size_t>(slot)].next;
    slots_[static_cast<std::size_t>(slot)].edge = kUsedSlot;
    slots_[static_cast<std::size_t>(slot ^ 1)].edge = kUsedSlot;
    return {slot, e};
  }

  std::int64_t max_degree(const std::vector<Edge>& edges) {
    // row_/col_ are all-zero between calls; only entries touched by this
    // edge list are accumulated, maxed, and zeroed again — O(|edges|), not
    // O(n), per recursion node.
    for (const auto& e : edges) {
      row_[static_cast<std::size_t>(e.src)] += e.count;
      col_[static_cast<std::size_t>(e.dst)] += e.count;
    }
    std::int64_t best = 0;
    for (const auto& e : edges) {
      best = std::max({best, row_[static_cast<std::size_t>(e.src)],
                       col_[static_cast<std::size_t>(e.dst)]});
      row_[static_cast<std::size_t>(e.src)] = 0;
      col_[static_cast<std::size_t>(e.dst)] = 0;
    }
    return best;
  }

  /// Split the demand multigraph into two halves whose row/column sums are
  /// as equal as possible: even multiplicities are halved arithmetically,
  /// odd leftovers form a simple bipartite graph whose edges are 2-coloured
  /// by alternating along maximal trails (starting at odd-degree vertices
  /// first, so every vertex's degree splits with deviation at most one).
  /// Returns true when the halves are element-identical (no odd leftovers).
  ///
  /// The recursion visits Theta(colour classes) nodes, so the per-node cost
  /// here is the router's wall-clock. Everything is O(odd edges) flat-array
  /// work with NO per-node sorting: per-endpoint intrusive linked lists
  /// (built in one reverse pass, so each vertex's list is in ascending
  /// edge order — exactly the order a forward push_back build yields) and a
  /// touched-vertex bitmap whose ascending-set-bit sweep replaces the
  /// sorted-touched-list sweep. Trails always consume the lowest-unused
  /// edge at each vertex and start in ascending vertex order, identical to
  /// the reference implementation, so the colouring is bit-identical.
  bool euler_split(const std::vector<Edge>& edges, std::vector<Edge>& lo,
                   std::vector<Edge>& hi) {
    lo.clear();
    hi.clear();
    odd_pack_.clear();
    max_half_ = 0;
    for (const auto& e : edges) {
      const std::int64_t half = e.count / 2;
      if (half > 0) {
        lo.push_back({e.src, e.dst, half});
        hi.push_back({e.src, e.dst, half});
        if (half > max_half_) max_half_ = half;
      }
      if (e.count % 2 == 1) odd_pack_.push_back(pack(e.src, e.dst));
    }
    if (odd_pack_.empty()) return true;

    build_slots(odd_pack_);

    auto walk_trail = [&](int v0) {
      // Maximal trail from v0, alternating edges between lo and hi. Each
      // vertex's list head skips already-used occurrences lazily, so the
      // chosen edge is always the lowest-id unused edge at the vertex —
      // the rem_ counters only shortcut the discovery that none is left.
      int v = v0;
      bool to_lo = true;
      for (;;) {
        const auto c = consume_lowest_unused(v);
        if (c.slot < 0) return;
        const int src = static_cast<int>(c.edge >> 16);
        const int dst = static_cast<int>(c.edge & 0xffffu);
        (to_lo ? lo : hi).push_back({src, dst, 1});
        to_lo = !to_lo;
        // Even slot = arrived via the src side, continue at the dst side.
        v = (c.slot & 1) == 0 ? n_ + dst : src;
      }
    };

    // Start trails at odd-degree vertices first, in ascending vertex order
    // (bitmap sweep), then close the remaining Eulerian tours the same way.
    // Untouched vertices carry no bits, so this matches a full 0..2n-1
    // sweep of the reference implementation; the rem_ gate skips exhausted
    // vertices without touching the edge arrays (a reference walk_trail
    // call there is a no-op).
    const std::size_t words = mark_.size();
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = oddb_[w];
      oddb_[w] = 0;
      while (bits != 0) {
        const int v = static_cast<int>(w * 64) +
                      std::countr_zero(bits);
        bits &= bits - 1;
        if (head_[static_cast<std::size_t>(v)] >= 0) walk_trail(v);
      }
    }
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = mark_[w];
      while (bits != 0) {
        const int v = static_cast<int>(w * 64) + std::countr_zero(bits);
        bits &= bits - 1;
        if (head_[static_cast<std::size_t>(v)] >= 0) walk_trail(v);
      }
      mark_[w] = 0;
    }
    for (const int v : touched_) {
      head_[static_cast<std::size_t>(v)] = -1;
      row2_[static_cast<std::size_t>(v)] = 0;  // degree counters, see build
    }
    return false;
  }

  // -------------------------------------------------------------------
  // All-count-1 fast path. Once every entry of a node has multiplicity 1
  // (the endgame of every split tree — it holds the vast majority of the
  // recursion's edge volume), halving is a no-op and every entry is an odd
  // leftover, so a split is exactly one trail walk. This path stores
  // entries packed ((src << 16) | dst, count implicitly 1) and runs the
  // SAME trail mechanics as euler_split — adjacency threaded in reverse
  // entry order, bitmap sweeps in ascending vertex order, lowest-unused-
  // edge selection — so the emitted class sequence is bit-identical to the
  // general path's; only the entry storage is 4x denser.
  // -------------------------------------------------------------------

  /// Trail-split of an all-count-1 multigraph: the packed counterpart of
  /// euler_split's odd-leftover walk (which is the whole split here). Each
  /// child recomputes its own exact max degree inside ITS build_slots
  /// (node_deg_), so no separate degree pass runs anywhere.
  void trail_split_packed(const std::vector<std::uint32_t>& es,
                          std::vector<std::uint32_t>& lo,
                          std::vector<std::uint32_t>& hi) {
    // The caller already ran build_slots(es). Scratch-size the halves once
    // and emit through raw cursors (the walk's serial chain pays no vector
    // bookkeeping); truncate afterwards.
    lo.resize(es.size());
    hi.resize(es.size());
    std::uint32_t* out[2] = {lo.data(), hi.data()};

    auto walk_trail = [&](int v0) {
      int v = v0;
      int side = 0;
      for (;;) {
        const auto c = consume_lowest_unused(v);
        if (c.slot < 0) return;
        const auto e = c.edge;
        *out[side]++ = e;
        side ^= 1;
        v = (c.slot & 1) == 0
                ? n_ + static_cast<int>(e & 0xffffu)
                : static_cast<int>(e >> 16);
      }
    };

    const std::size_t words = mark_.size();
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = oddb_[w];
      oddb_[w] = 0;
      while (bits != 0) {
        const int v = static_cast<int>(w * 64) + std::countr_zero(bits);
        bits &= bits - 1;
        if (head_[static_cast<std::size_t>(v)] >= 0) walk_trail(v);
      }
    }
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = mark_[w];
      while (bits != 0) {
        const int v = static_cast<int>(w * 64) + std::countr_zero(bits);
        bits &= bits - 1;
        if (head_[static_cast<std::size_t>(v)] >= 0) walk_trail(v);
      }
      mark_[w] = 0;
    }
    for (const int v : touched_) {
      head_[static_cast<std::size_t>(v)] = -1;
      row2_[static_cast<std::size_t>(v)] = 0;
    }
    lo.resize(static_cast<std::size_t>(out[0] - lo.data()));
    hi.resize(static_cast<std::size_t>(out[1] - hi.data()));
  }

  void split_walk_packed(std::vector<std::uint32_t> es, int depth) {
    if (es.empty()) {
      release_packed(std::move(es));
      return;
    }
    if (depth > 64) {
      for (const auto e : es) {
        log_bounds_.push_back(log_edges_.size());
        log_edges_.push_back(e);
      }
      release_packed(std::move(es));
      return;
    }
    build_slots(es);
    if (node_deg_ <= 1) {
      // Leaf: one colour class; tear the scratch back down and log it.
      unbuild_slots();
      log_bounds_.push_back(log_edges_.size());
      log_edges_.insert(log_edges_.end(), es.begin(), es.end());
      release_packed(std::move(es));
      return;
    }
    auto lo = acquire_packed();
    auto hi = acquire_packed();
    trail_split_packed(es, lo, hi);
    release_packed(std::move(es));
    split_walk_packed(std::move(lo), depth + 1);
    split_walk_packed(std::move(hi), depth + 1);
  }

  void split_walk(std::vector<Edge> edges, int depth) {
    if (edges.empty()) {
      release(std::move(edges));
      return;
    }
    const std::int64_t deg = max_degree(edges);
    if (deg <= 1) {
      log_class(edges);
      release(std::move(edges));
      return;
    }
    if (depth > 64) {
      // Termination backstop; never expected (the split strictly shrinks
      // the max degree), but keeps the router total even if it regresses.
      for (const auto& e : edges)
        for (std::int64_t i = 0; i < e.count; ++i) {
          log_bounds_.push_back(log_edges_.size());
          log_edges_.push_back(pack(e.src, e.dst));
        }
      release(std::move(edges));
      return;
    }
    auto lo = acquire();
    auto hi = acquire();
    const bool identical = euler_split(edges, lo, hi);
    // Every child entry is either a halved count (<= max_half_) or an odd
    // leftover (count 1): once max_half_ <= 1, the children live entirely
    // in the all-count-1 regime and descend through the packed fast path.
    const bool simple_children = max_half_ <= 1;
    release(std::move(edges));
    auto descend = [&](std::vector<Edge>&& child) {
      if (simple_children) {
        auto p = acquire_packed();
        p.reserve(child.size());
        for (const auto& e : child) p.push_back(pack(e.src, e.dst));
        release(std::move(child));
        split_walk_packed(std::move(p), depth + 1);
      } else {
        split_walk(std::move(child), depth + 1);
      }
    };
    if (!identical) {
      descend(std::move(lo));
      descend(std::move(hi));
      return;
    }
    release(std::move(hi));
    // Element-identical halves produce identical subtrees: traverse once
    // and duplicate the logged class range in place of the second descent.
    const std::size_t mark_b = log_bounds_.size();
    const std::size_t mark_e = log_edges_.size();
    descend(std::move(lo));
    const std::size_t end_b = log_bounds_.size();
    const std::size_t end_e = log_edges_.size();
    const std::size_t delta = end_e - mark_e;
    log_bounds_.reserve(end_b + (end_b - mark_b));
    for (std::size_t b = mark_b; b < end_b; ++b)
      log_bounds_.push_back(log_bounds_[b] + delta);
    log_edges_.resize(end_e + delta);
    std::copy(log_edges_.begin() + static_cast<std::ptrdiff_t>(mark_e),
              log_edges_.begin() + static_cast<std::ptrdiff_t>(end_e),
              log_edges_.begin() + static_cast<std::ptrdiff_t>(end_e));
  }

  void log_class(const std::vector<Edge>& matching) {
    log_bounds_.push_back(log_edges_.size());
    for (const auto& e : matching) {
      CCA_ASSERT(e.count == 1);
      log_edges_.push_back(pack(e.src, e.dst));
    }
  }

  int n_;

  // Scratch reused across recursion nodes.
  std::vector<int> head_;            ///< per vertex: first unused slot, -1 idle
  std::vector<std::uint64_t> mark_;  ///< touched-vertex bitmap
  std::vector<std::uint64_t> oddb_;  ///< odd-degree parity bitmap
  std::vector<SlotRec> slots_;       ///< per slot (2 per odd edge): next+edge
  std::vector<std::int64_t> row_;
  std::vector<std::int64_t> col_;
  std::vector<std::int64_t> row2_;       ///< build-fused node degree counters
  std::vector<std::uint32_t> odd_pack_;  ///< odd edges, (src << 16) | dst
  std::vector<int> touched_;
  std::int64_t max_half_ = 0;            ///< max halved count of last split
  std::int64_t node_deg_ = 0;            ///< max degree of last built node
  std::vector<std::vector<Edge>> pool_;
  std::vector<std::vector<std::uint32_t>> packed_pool_;

  // Flat log of colour classes in DFS leaf order, packed (src << 16) | dst.
  std::vector<std::uint32_t> log_edges_;
  std::vector<std::size_t> log_bounds_;
};

/// Default Euler-split task count: serial when the worker group is one
/// thread (the CCA_THREADS=1 CI leg runs the pure-serial recursion), a few
/// tasks per worker otherwise so the block partition stays balanced even
/// when subtree sizes skew.
int default_split_tasks() {
  const int workers = parallel_workers();
  if (workers <= 1) return 1;
  return std::min(64, 2 * workers);
}

/// Smallest expansion depth whose full frontier holds >= `tasks` subtrees.
int expansion_depth_for(int tasks) {
  int depth = 0;
  int width = 1;
  while (width < tasks && depth < 6) {
    width *= 2;
    ++depth;
  }
  return depth;
}

/// Drives the split (serial or task-parallel), merges the per-task class
/// logs in DFS order, and replays the merged log onto the load matrices.
/// Colour classes are produced in leaf (DFS) order; consecutive classes
/// share split ancestry and hence have near-disjoint edge sets, so
/// contiguous BLOCKS of classes are assigned to the same intermediate:
/// class t of C goes through node floor(t*n/C). The total class count is
/// needed before any class can be assigned, so the split logs the class
/// sequence and the load assignment replays the log once the count is
/// known.
///
/// Both load matrices are intermediate-major (load_a[mid][src],
/// load_b[mid][dst]). All edges of one class share one mid, so a class
/// replay touches exactly two rows — resident in L1 — instead of striding
/// across the whole n^2 arrays per edge. The load MULTISET is unchanged,
/// hence so are the maxima and the round total.
class KoenigColouring {
 public:
  KoenigColouring(int n, std::vector<std::int64_t>& load_a,
                  std::vector<std::int64_t>& load_b)
      : n_(n), load_a_(load_a), load_b_(load_b), root_(n) {}

  [[nodiscard]] std::int64_t total_colours() const noexcept {
    return total_colours_;
  }

  /// The merged class log (valid after colour()): class t covers packed
  /// edges [bounds()[t], bounds()[t+1]) of edges().
  [[nodiscard]] const std::vector<std::uint32_t>& edges() const noexcept {
    return *edges_view_;
  }
  [[nodiscard]] const std::vector<std::size_t>& bounds() const noexcept {
    return *bounds_view_;
  }

  void colour(const std::vector<Edge>& edges, int split_tasks) {
    std::int64_t total_words = 0;
    for (const auto& e : edges) total_words += e.count;

    if (split_tasks <= 1) {
      // Pure serial path: one engine walks the whole recursion. This is
      // the reference sequence every parallel run must reproduce.
      root_.reset_log(total_words);
      root_.run({root_.copy_of(edges), {}, false, 0});
      edges_view_ = &root_.log_edges();
      bounds_view_ = &root_.log_bounds();
    } else {
      // Expand the top of the recursion serially into independent subtree
      // tasks (plus dup slots for identical-halves collapses), run every
      // concrete task on its own engine under parallel_for, and merge the
      // logs in DFS slot order. Each engine's scratch starts clean and the
      // expansion performs the exact splits the serial recursion would, so
      // the merged log is bit-identical to the serial one for ANY task
      // count (pinned by tests/test_routing.cpp).
      std::vector<SplitTask> tasks;
      std::vector<SplitSlot> slots;
      root_.expand(root_.copy_of(edges), 0, expansion_depth_for(split_tasks),
                   tasks, slots);
      std::vector<SplitEngine> engines;
      engines.reserve(tasks.size());
      for (std::size_t t = 0; t < tasks.size(); ++t) engines.emplace_back(n_);
      parallel_for(0, static_cast<int>(tasks.size()), [&](int t) {
        const auto ts = static_cast<std::size_t>(t);
        std::int64_t words = 0;
        if (tasks[ts].packed)
          words = static_cast<std::int64_t>(tasks[ts].packed_edges.size());
        else
          for (const auto& e : tasks[ts].edges) words += e.count;
        engines[ts].reset_log(words);
        engines[ts].run(std::move(tasks[ts]));
      });

      merged_edges_.clear();
      merged_edges_.reserve(static_cast<std::size_t>(total_words));
      merged_bounds_.clear();
      std::vector<std::size_t> slot_b(slots.size()), slot_e(slots.size());
      for (std::size_t i = 0; i < slots.size(); ++i) {
        slot_b[i] = merged_bounds_.size();
        slot_e[i] = merged_edges_.size();
        if (!slots[i].dup) {
          const auto& eng = engines[static_cast<std::size_t>(slots[i].task)];
          const std::size_t base = merged_edges_.size();
          for (const auto b : eng.log_bounds())
            merged_bounds_.push_back(b + base);
          merged_edges_.insert(merged_edges_.end(), eng.log_edges().begin(),
                               eng.log_edges().end());
        } else {
          // Replay the merged output of the duplicated sibling subtree —
          // the same arithmetic as the serial identical-halves collapse,
          // applied to the merged ranges.
          const std::size_t mb = slot_b[slots[i].dup_begin];
          const std::size_t me = slot_e[slots[i].dup_begin];
          const std::size_t end_b = merged_bounds_.size();
          const std::size_t end_e = merged_edges_.size();
          const std::size_t delta = end_e - me;
          merged_bounds_.reserve(end_b + (end_b - mb));
          for (std::size_t b = mb; b < end_b; ++b)
            merged_bounds_.push_back(merged_bounds_[b] + delta);
          merged_edges_.resize(end_e + delta);
          std::copy(merged_edges_.begin() + static_cast<std::ptrdiff_t>(me),
                    merged_edges_.begin() + static_cast<std::ptrdiff_t>(end_e),
                    merged_edges_.begin() + static_cast<std::ptrdiff_t>(end_e));
        }
      }
      edges_view_ = &merged_edges_;
      bounds_view_ = &merged_bounds_;
    }

    // Replay the class log onto the load matrices.
    const auto& log_edges = *edges_view_;
    const auto& log_bounds = *bounds_view_;
    total_colours_ = static_cast<std::int64_t>(log_bounds.size());
    if (total_colours_ == 0) return;
    for (std::int64_t t = 0; t < total_colours_; ++t) {
      const auto mid = static_cast<std::size_t>(t * n_ / total_colours_);
      const std::size_t begin = log_bounds[static_cast<std::size_t>(t)];
      const std::size_t finish =
          t + 1 < total_colours_ ? log_bounds[static_cast<std::size_t>(t + 1)]
                                 : log_edges.size();
      auto* la = load_a_.data() + mid * static_cast<std::size_t>(n_);
      auto* lb = load_b_.data() + mid * static_cast<std::size_t>(n_);
      for (std::size_t i = begin; i < finish; ++i) {
        const auto e = log_edges[i];
        ++la[e >> 16];
        ++lb[e & 0xffffu];
      }
    }
  }

 private:
  int n_;
  std::int64_t total_colours_ = 0;
  std::vector<std::int64_t>& load_a_;  ///< intermediate-major: [mid][src]
  std::vector<std::int64_t>& load_b_;  ///< intermediate-major: [mid][dst]
  SplitEngine root_;
  std::vector<std::uint32_t> merged_edges_;
  std::vector<std::size_t> merged_bounds_;
  const std::vector<std::uint32_t>* edges_view_ = nullptr;
  const std::vector<std::size_t>* bounds_view_ = nullptr;
};

std::vector<Edge> demand_edges(int n, const std::vector<Demand>& demands,
                               std::int64_t* total_words) {
  std::vector<Edge> edges;
  edges.reserve(demands.size());
  std::int64_t words = 0;
  for (const auto& d : demands) {
    CCA_EXPECTS(d.src >= 0 && d.src < n && d.dst >= 0 && d.dst < n);
    CCA_EXPECTS(d.words >= 0);
    if (d.words > 0) {
      edges.push_back({d.src, d.dst, d.words});
      words += d.words;
    }
  }
  if (total_words != nullptr) *total_words = words;
  return edges;
}

// ---------------------------------------------------------------------------
// Greedy first-fit edge colouring (SchedulePolicy::Greedy).
// ---------------------------------------------------------------------------

/// Assign every demanded word the LOWEST level (colour) unused at both its
/// endpoints: per level each src sends at most one word and each dst
/// receives at most one, so every level is a partial matching on ports by
/// construction. A word of (s, d) only ever sees levels blocked by s's own
/// words or d's own words, so its level is < deg(s) + deg(d) - 1
/// <= 2*maxdeg - 1 — under twice the optimal (chromatic index >= maxdeg)
/// colour count, the Misra–Gries bound shape. One linear scan over per-
/// vertex level bitsets (with first-free hints) replaces the Euler split's
/// O(words * log maxdeg) class construction.
///
/// Levels map to intermediates exactly like Koenig classes (level t of C
/// goes through node floor(t*n/C)) and the rounds are the same exact
/// max-load sum over the CONCRETE plan — the accounting stays honest; only
/// the plan is up to ~2x looser.
Schedule greedy_relay_impl(int n, const std::vector<Demand>& demands,
                           std::vector<std::uint32_t>* levels_out,
                           std::int64_t* classes_out) {
  CCA_EXPECTS(n >= 1);
  Schedule sched;
  std::int64_t total_words = 0;
  for (const auto& d : demands) {
    CCA_EXPECTS(d.src >= 0 && d.src < n && d.dst >= 0 && d.dst < n);
    CCA_EXPECTS(d.words >= 0);
    total_words += d.words;
  }
  sched.words = total_words;
  if (total_words == 0) return sched;

  const auto un = static_cast<std::size_t>(n);
  std::vector<std::vector<std::uint64_t>> send_used(un), recv_used(un);
  std::vector<std::size_t> send_hint(un, 0), recv_hint(un, 0);
  std::vector<std::uint32_t> levels;
  levels.reserve(static_cast<std::size_t>(total_words));
  std::uint32_t max_level = 0;

  for (const auto& d : demands) {
    if (d.words == 0) continue;
    auto& su = send_used[static_cast<std::size_t>(d.src)];
    auto& ru = recv_used[static_cast<std::size_t>(d.dst)];
    std::size_t w = std::max(send_hint[static_cast<std::size_t>(d.src)],
                             recv_hint[static_cast<std::size_t>(d.dst)]);
    std::int64_t remaining = d.words;
    while (remaining > 0) {
      if (w >= su.size()) su.resize(w + 1, 0);
      if (w >= ru.size()) ru.resize(w + 1, 0);
      std::uint64_t free = ~(su[w] | ru[w]);
      while (free != 0 && remaining > 0) {
        const int bit = std::countr_zero(free);
        free &= free - 1;
        su[w] |= std::uint64_t{1} << bit;
        ru[w] |= std::uint64_t{1} << bit;
        const auto level =
            static_cast<std::uint32_t>(w * 64 + static_cast<std::size_t>(bit));
        levels.push_back(level);
        if (level > max_level) max_level = level;
        --remaining;
      }
      ++w;
    }
    auto& sh = send_hint[static_cast<std::size_t>(d.src)];
    while (sh < su.size() && su[sh] == ~std::uint64_t{0}) ++sh;
    auto& rh = recv_hint[static_cast<std::size_t>(d.dst)];
    while (rh < ru.size() && ru[rh] == ~std::uint64_t{0}) ++rh;
  }

  const std::int64_t classes = static_cast<std::int64_t>(max_level) + 1;
  sched.classes = classes;

  const auto nn = un * un;
  std::vector<std::int64_t> load_a(nn, 0), load_b(nn, 0);
  std::size_t at = 0;
  for (const auto& d : demands) {
    for (std::int64_t wds = 0; wds < d.words; ++wds) {
      const auto mid = static_cast<std::size_t>(
          static_cast<std::int64_t>(levels[at++]) * n / classes);
      ++load_a[mid * un + static_cast<std::size_t>(d.src)];
      ++load_b[mid * un + static_cast<std::size_t>(d.dst)];
    }
  }
  const auto max_a = *std::max_element(load_a.begin(), load_a.end());
  const auto max_b = *std::max_element(load_b.begin(), load_b.end());
  sched.rounds = max_a + max_b;
  if (levels_out != nullptr) *levels_out = std::move(levels);
  if (classes_out != nullptr) *classes_out = classes;
  return sched;
}

}  // namespace

std::int64_t rounds_direct(int n, const std::vector<Demand>& demands) {
  CCA_EXPECTS(n >= 1);
  // Aggregate per ordered link; a demand list may mention a link repeatedly.
  std::int64_t best = 0;
  std::vector<std::int64_t> acc;
  std::vector<std::vector<const Demand*>> by_src(static_cast<std::size_t>(n));
  for (const auto& d : demands) {
    CCA_EXPECTS(d.src >= 0 && d.src < n && d.dst >= 0 && d.dst < n);
    by_src[static_cast<std::size_t>(d.src)].push_back(&d);
  }
  acc.assign(static_cast<std::size_t>(n), 0);
  for (const auto& group : by_src) {
    for (const Demand* d : group) acc[static_cast<std::size_t>(d->dst)] += d->words;
    for (const Demand* d : group) {
      best = std::max(best, acc[static_cast<std::size_t>(d->dst)]);
      acc[static_cast<std::size_t>(d->dst)] = 0;
    }
  }
  return best;
}

std::int64_t rounds_hash_relay(int n, const std::vector<Demand>& demands) {
  CCA_EXPECTS(n >= 1);
  return relay_rounds(n, demands, [n](const Demand& d) {
    const auto key = static_cast<std::uint64_t>(d.src) * 0x1000003ULL +
                     static_cast<std::uint64_t>(d.dst);
    return static_cast<std::int64_t>(splitmix64(key) %
                                     static_cast<std::uint64_t>(n));
  });
}

std::int64_t rounds_random_relay(int n, const std::vector<Demand>& demands,
                                 Rng& rng) {
  CCA_EXPECTS(n >= 1);
  return relay_rounds(n, demands, [n, &rng](const Demand&) {
    return static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(n)));
  });
}

std::int64_t rounds_koenig_relay(int n, const std::vector<Demand>& demands) {
  return schedule_koenig_relay(n, demands).rounds;
}

std::int64_t rounds_greedy_relay(int n, const std::vector<Demand>& demands) {
  return schedule_greedy_relay(n, demands).rounds;
}

Schedule schedule_koenig_relay(int n, const std::vector<Demand>& demands) {
  return schedule_koenig_relay(n, demands, default_split_tasks());
}

Schedule schedule_koenig_relay(int n, const std::vector<Demand>& demands,
                               int split_tasks) {
  CCA_EXPECTS(n >= 1);
  Schedule sched;
  const auto edges = demand_edges(n, demands, &sched.words);
  if (edges.empty()) return sched;

  const auto nn = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  std::vector<std::int64_t> load_a(nn);
  std::vector<std::int64_t> load_b(nn);
  KoenigColouring colouring(n, load_a, load_b);
  colouring.colour(edges, split_tasks);

  const auto max_a = *std::max_element(load_a.begin(), load_a.end());
  const auto max_b = *std::max_element(load_b.begin(), load_b.end());
  sched.rounds = max_a + max_b;
  sched.classes = colouring.total_colours();
  return sched;
}

Schedule schedule_greedy_relay(int n, const std::vector<Demand>& demands) {
  return greedy_relay_impl(n, demands, nullptr, nullptr);
}

std::vector<std::vector<std::pair<int, int>>> koenig_relay_classes(
    int n, const std::vector<Demand>& demands, int split_tasks) {
  CCA_EXPECTS(n >= 1);
  const auto edges = demand_edges(n, demands, nullptr);
  if (edges.empty()) return {};
  const auto nn = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  std::vector<std::int64_t> load_a(nn), load_b(nn);
  KoenigColouring colouring(n, load_a, load_b);
  colouring.colour(edges, split_tasks <= 0 ? default_split_tasks()
                                           : split_tasks);
  const auto& log_edges = colouring.edges();
  const auto& log_bounds = colouring.bounds();
  std::vector<std::vector<std::pair<int, int>>> classes(log_bounds.size());
  for (std::size_t t = 0; t < log_bounds.size(); ++t) {
    const std::size_t finish =
        t + 1 < log_bounds.size() ? log_bounds[t + 1] : log_edges.size();
    for (std::size_t i = log_bounds[t]; i < finish; ++i)
      classes[t].emplace_back(static_cast<int>(log_edges[i] >> 16),
                              static_cast<int>(log_edges[i] & 0xffffu));
  }
  return classes;
}

std::vector<std::vector<std::pair<int, int>>> greedy_relay_classes(
    int n, const std::vector<Demand>& demands) {
  std::vector<std::uint32_t> levels;
  std::int64_t classes_n = 0;
  (void)greedy_relay_impl(n, demands, &levels, &classes_n);
  std::vector<std::vector<std::pair<int, int>>> classes(
      static_cast<std::size_t>(classes_n));
  std::size_t at = 0;
  for (const auto& d : demands)
    for (std::int64_t w = 0; w < d.words; ++w)
      classes[levels[at++]].emplace_back(d.src, d.dst);
  return classes;
}

std::uint64_t demand_fingerprint(int n, const std::vector<Demand>& demands) {
  // Order-sensitive SplitMix64 chaining over (n, src, dst, words). The
  // callers pass the canonical (src, dst)-ascending list, so byte-identical
  // traffic shapes — and only those — are meant to collide.
  std::uint64_t h =
      splitmix64(0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(n));
  for (const auto& d : demands) {
    const auto pair =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(d.src)) << 32) |
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(d.dst));
    h = splitmix64(h ^ pair);
    h = splitmix64(h ^ static_cast<std::uint64_t>(d.words));
  }
  return h;
}

const Schedule& ScheduleCache::get(int n, const std::vector<Demand>& demands,
                                   SchedulePolicy policy, bool* hit) {
  const auto key = demand_fingerprint(n, demands);
  if (const auto it = map_.find(key); it != map_.end()) {
    for (const auto eit : it->second)
      if (eit->n == n && eit->policy == policy && eit->demands == demands) {
        ++stats_.hits;
        ++eit->reuse;
        lru_.splice(lru_.begin(), lru_, eit);
        if (hit != nullptr) *hit = true;
        return eit->schedule;
      }
  }
  ++stats_.misses;
  if (hit != nullptr) *hit = false;

  evict_to_fit(demands.size());

  Schedule sched = policy == SchedulePolicy::Greedy
                       ? schedule_greedy_relay(n, demands)
                       : schedule_koenig_relay(n, demands);
  cached_demands_ += demands.size();
  lru_.push_front(Entry{n, policy, demands, sched, 0, key});
  map_[key].push_back(lru_.begin());
  return lru_.front().schedule;
}

void ScheduleCache::evict_to_fit(std::size_t incoming_demands) {
  while (!lru_.empty() && cached_demands_ + incoming_demands > capacity_) {
    const auto victim = std::prev(lru_.end());
    const auto cit = map_.find(victim->key);
    CCA_ASSERT(cit != map_.end());
    auto& chain = cit->second;
    chain.erase(std::find(chain.begin(), chain.end(), victim));
    if (chain.empty()) map_.erase(cit);
    cached_demands_ -= victim->demands.size();
    lru_.erase(victim);
    ++stats_.evictions;
  }
}

std::int64_t ScheduleCache::total_reuse() const noexcept {
  std::int64_t total = 0;
  for (const auto& e : lru_) total += e.reuse;
  return total;
}

std::int64_t ScheduleCache::max_entry_reuse() const noexcept {
  std::int64_t best = 0;
  for (const auto& e : lru_) best = std::max(best, e.reuse);
  return best;
}

void ScheduleCache::clear() {
  lru_.clear();
  map_.clear();
  cached_demands_ = 0;
  stats_ = Stats{};
}

}  // namespace cca::clique
