#include "clique/routing.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace cca::clique {

namespace {

/// Apply `count` words starting at cyclic offset `start` to a difference
/// array over [0, n): every intermediate in the cyclic range gets one word
/// per lap. Full laps contribute uniformly.
void add_cyclic_range(std::vector<std::int64_t>& diff, int n,
                      std::int64_t start, std::int64_t count,
                      std::int64_t& uniform) {
  CCA_EXPECTS(count >= 0 && start >= 0 && start < n);
  uniform += count / n;
  const auto rem = static_cast<int>(count % n);
  if (rem == 0) return;
  const int end = static_cast<int>(start) + rem;
  if (end <= n) {
    diff[static_cast<std::size_t>(start)] += 1;
    if (end < n) diff[static_cast<std::size_t>(end)] -= 1;
  } else {
    diff[static_cast<std::size_t>(start)] += 1;  // [start, n)
    diff[0] += 1;                                // [0, end - n)
    diff[static_cast<std::size_t>(end - n)] -= 1;
  }
}

/// Max value of a cyclic difference array plus its uniform offset.
std::int64_t max_of_diff(const std::vector<std::int64_t>& diff,
                         std::int64_t uniform) {
  std::int64_t run = 0;
  std::int64_t best = 0;
  for (const auto d : diff) {
    run += d;
    best = std::max(best, run);
  }
  return best + uniform;
}

/// Relay rounds when block (src,dst) begins at intermediate offset(src,dst):
/// phase A = max over (src, mid) links, phase B = max over (mid, dst) links.
template <typename OffsetFn>
std::int64_t relay_rounds(int n, const std::vector<Demand>& demands,
                          OffsetFn&& offset) {
  // Phase A: group by source.
  std::vector<std::vector<const Demand*>> by_src(static_cast<std::size_t>(n));
  std::vector<std::vector<const Demand*>> by_dst(static_cast<std::size_t>(n));
  std::vector<std::int64_t> start(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const auto& d = demands[i];
    CCA_EXPECTS(d.src >= 0 && d.src < n && d.dst >= 0 && d.dst < n);
    CCA_EXPECTS(d.words >= 0);
    if (d.words == 0) continue;
    start[i] = offset(d);
    by_src[static_cast<std::size_t>(d.src)].push_back(&d);
    by_dst[static_cast<std::size_t>(d.dst)].push_back(&d);
  }

  auto max_side = [&](const std::vector<std::vector<const Demand*>>& groups) {
    std::int64_t best = 0;
    std::vector<std::int64_t> diff(static_cast<std::size_t>(n));
    for (const auto& group : groups) {
      if (group.empty()) continue;
      std::fill(diff.begin(), diff.end(), 0);
      std::int64_t uniform = 0;
      for (const Demand* d : group)
        add_cyclic_range(diff, n, start[static_cast<std::size_t>(d - demands.data())],
                         d->words, uniform);
      best = std::max(best, max_of_diff(diff, uniform));
    }
    return best;
  };

  const std::int64_t phase_a = max_side(by_src);
  const std::int64_t phase_b = max_side(by_dst);
  return phase_a + phase_b;
}

// ---------------------------------------------------------------------------
// Euler-split edge colouring (constructive Koenig decomposition).
// ---------------------------------------------------------------------------

struct Edge {
  int src;
  int dst;
  std::int64_t count;
};

/// Recursively colour the demand multigraph. Colour classes are produced in
/// leaf (DFS) order; consecutive classes share split ancestry and hence have
/// near-disjoint edge sets, so contiguous BLOCKS of classes are assigned to
/// the same intermediate: class t of C goes through node floor(t*n/C). The
/// total class count is needed before any class can be assigned, so the
/// split recursion logs the class sequence into a flat buffer and the load
/// assignment replays the log once the count is known.
///
/// Observations that keep the schedule exactly as specified while avoiding
/// the naive implementation's Theta(classes * n) blowup:
///  * When every multiplicity is even, the Euler split produces two
///    element-identical halves, so the recursion's subtrees emit identical
///    class sequences. The subtree is traversed once and its logged class
///    range is duplicated in place of the second descent. Uniform word
///    blocks (the matrix algorithms' common case) collapse from 2^k
///    traversals to one.
///  * The odd-leftover trail walk touches only vertices incident to odd
///    edges; adjacency and cursor scratch is reused across recursion nodes
///    and reset per touched vertex, never per clique node.
///  * The log stores one packed 32-bit (src, dst) word per class edge, with
///    the exact footprint (the superstep's total word count) reserved up
///    front, so logging is sequential stores and subtree duplication is one
///    memcpy-sized range copy.
///  * Both load matrices are intermediate-major (load_a[mid][src],
///    load_b[mid][dst]). All edges of one class share one mid, so a class
///    replay touches exactly two rows — resident in L1 — instead of
///    striding across the whole n^2 arrays per edge. The load MULTISET is
///    unchanged, hence so are the maxima and the round total.
///  * Split scratch vectors recycle through a small pool (the recursion
///    allocates nothing in steady state).
class KoenigColouring {
 public:
  KoenigColouring(int n, std::vector<std::int64_t>& load_a,
                  std::vector<std::int64_t>& load_b)
      : n_(n),
        load_a_(load_a),
        load_b_(load_b),
        head_(static_cast<std::size_t>(2 * n), -1),
        mark_((static_cast<std::size_t>(2 * n) + 63) / 64, 0),
        oddb_((static_cast<std::size_t>(2 * n) + 63) / 64, 0),
        row_(static_cast<std::size_t>(n)),
        col_(static_cast<std::size_t>(n)),
        row2_(static_cast<std::size_t>(2 * n), 0) {
    // The packed log format holds src and dst in 16 bits each.
    CCA_EXPECTS(n <= 0xffff);
  }

  [[nodiscard]] std::int64_t total_colours() const noexcept {
    return total_colours_;
  }

  void colour(const std::vector<Edge>& edges) {
    // Single split traversal: the DFS leaf order of colour classes goes
    // into a flat log (class t = edges [log_bounds_[t], log_bounds_[t+1])).
    // The class count needed for the block assignment is the log length,
    // so no separate counting pass re-runs the splits.
    std::int64_t total_words = 0;
    for (const auto& e : edges) total_words += e.count;
    log_edges_.clear();
    log_edges_.reserve(static_cast<std::size_t>(total_words));
    log_bounds_.clear();
    split_walk(copy_of(edges), 0);
    total_colours_ = static_cast<std::int64_t>(log_bounds_.size());
    if (total_colours_ == 0) return;
    for (std::int64_t t = 0; t < total_colours_; ++t) {
      const auto mid = static_cast<std::size_t>(t * n_ / total_colours_);
      const std::size_t begin = log_bounds_[static_cast<std::size_t>(t)];
      const std::size_t finish =
          t + 1 < total_colours_ ? log_bounds_[static_cast<std::size_t>(t + 1)]
                                 : log_edges_.size();
      auto* la = load_a_.data() + mid * static_cast<std::size_t>(n_);
      auto* lb = load_b_.data() + mid * static_cast<std::size_t>(n_);
      for (std::size_t i = begin; i < finish; ++i) {
        const auto e = log_edges_[i];
        ++la[e >> 16];
        ++lb[e & 0xffffu];
      }
    }
  }

 private:
  [[nodiscard]] static std::uint32_t pack(int src, int dst) noexcept {
    return (static_cast<std::uint32_t>(src) << 16) |
           static_cast<std::uint32_t>(dst);
  }

  /// Pool-backed copy/acquire of edge scratch vectors: the recursion reuses
  /// vectors instead of allocating one pair per node.
  [[nodiscard]] std::vector<Edge> acquire() {
    if (pool_.empty()) return {};
    auto v = std::move(pool_.back());
    pool_.pop_back();
    v.clear();
    return v;
  }
  void release(std::vector<Edge>&& v) { pool_.push_back(std::move(v)); }
  [[nodiscard]] std::vector<Edge> copy_of(const std::vector<Edge>& edges) {
    auto v = acquire();
    v.assign(edges.begin(), edges.end());
    return v;
  }
  [[nodiscard]] std::vector<std::uint32_t> acquire_packed() {
    if (packed_pool_.empty()) return {};
    auto v = std::move(packed_pool_.back());
    packed_pool_.pop_back();
    v.clear();
    return v;
  }
  void release_packed(std::vector<std::uint32_t>&& v) {
    packed_pool_.push_back(std::move(v));
  }

  /// One edge occurrence in a vertex's adjacency list: slot 2i is the src
  /// side and slot 2i+1 the dst side of odd edge i, so an edge's two slots
  /// always share one (aligned) 16-byte chunk — marking both sides used
  /// after a consume touches the cache line the walk just read. `edge`
  /// doubles as the used flag (kUsedSlot): the walk's skip-chase needs ONE
  /// random load per step instead of separate next/edge/used lookups.
  struct SlotRec {
    int next;
    std::uint32_t edge;
  };
  static constexpr std::uint32_t kUsedSlot = 0xffffffffu;  // src 0xffff illegal

  /// Thread a packed edge list into per-vertex slot lists. Iterating edges
  /// in reverse makes every vertex's list ascend in slot order — exactly
  /// the order a forward push_back build yields, preserving the reference
  /// implementation's lowest-id-first edge selection. Only touched entries
  /// of head_/mark_/oddb_ are written — O(odd edges), never O(n).
  void build_slots(const std::vector<std::uint32_t>& es) {
    touched_.clear();
    slots_.resize(2 * es.size());
    node_deg_ = 0;
    for (std::size_t i = es.size(); i-- > 0;) {
      const auto e = es[i];
      const auto s = static_cast<std::size_t>(e >> 16);
      const auto d = static_cast<std::size_t>(n_) +
                     static_cast<std::size_t>(e & 0xffffu);
      if (head_[s] < 0) touched_.push_back(static_cast<int>(s));
      if (head_[d] < 0) touched_.push_back(static_cast<int>(d));
      slots_[2 * i] = {head_[s], e};
      head_[s] = static_cast<int>(2 * i);
      slots_[2 * i + 1] = {head_[d], e};
      head_[d] = static_cast<int>(2 * i + 1);
      mark_[s >> 6] |= std::uint64_t{1} << (s & 63);
      mark_[d >> 6] |= std::uint64_t{1} << (d & 63);
      oddb_[s >> 6] ^= std::uint64_t{1} << (s & 63);
      oddb_[d >> 6] ^= std::uint64_t{1} << (d & 63);
      // Exact node max degree, free with the threading pass: counters only
      // ever increment, so the running max equals the final max.
      const auto ds = ++row2_[s];
      const auto dd = ++row2_[d];
      if (ds > node_deg_) node_deg_ = ds;
      if (dd > node_deg_) node_deg_ = dd;
    }
  }

  /// Tear down build_slots scratch without running the walks (used when the
  /// just-built node turned out to be a leaf). All set bits in mark_/oddb_
  /// belong to this node, so zeroing whole words via the touched list is
  /// exact.
  void unbuild_slots() {
    for (const int v : touched_) {
      const auto u = static_cast<std::size_t>(v);
      head_[u] = -1;
      row2_[u] = 0;
      mark_[u >> 6] = 0;
      oddb_[u >> 6] = 0;
    }
  }

  struct Consumed {
    int slot;
    std::uint32_t edge;
  };

  /// Pop the lowest-id unused edge at vertex v, dropping the used prefix
  /// of v's list on the way (each slot is dropped at most once, so the
  /// chase is amortised O(1)). Returns slot -1 when v is exhausted.
  Consumed consume_lowest_unused(int v) {
    int slot = head_[static_cast<std::size_t>(v)];
    while (slot >= 0 && slots_[static_cast<std::size_t>(slot)].edge == kUsedSlot)
      slot = slots_[static_cast<std::size_t>(slot)].next;
    if (slot < 0) {
      head_[static_cast<std::size_t>(v)] = -1;
      return {-1, 0};
    }
    const auto e = slots_[static_cast<std::size_t>(slot)].edge;
    head_[static_cast<std::size_t>(v)] =
        slots_[static_cast<std::size_t>(slot)].next;
    slots_[static_cast<std::size_t>(slot)].edge = kUsedSlot;
    slots_[static_cast<std::size_t>(slot ^ 1)].edge = kUsedSlot;
    return {slot, e};
  }

  std::int64_t max_degree(const std::vector<Edge>& edges) {
    // row_/col_ are all-zero between calls; only entries touched by this
    // edge list are accumulated, maxed, and zeroed again — O(|edges|), not
    // O(n), per recursion node.
    for (const auto& e : edges) {
      row_[static_cast<std::size_t>(e.src)] += e.count;
      col_[static_cast<std::size_t>(e.dst)] += e.count;
    }
    std::int64_t best = 0;
    for (const auto& e : edges) {
      best = std::max({best, row_[static_cast<std::size_t>(e.src)],
                       col_[static_cast<std::size_t>(e.dst)]});
      row_[static_cast<std::size_t>(e.src)] = 0;
      col_[static_cast<std::size_t>(e.dst)] = 0;
    }
    return best;
  }

  /// Split the demand multigraph into two halves whose row/column sums are
  /// as equal as possible: even multiplicities are halved arithmetically,
  /// odd leftovers form a simple bipartite graph whose edges are 2-coloured
  /// by alternating along maximal trails (starting at odd-degree vertices
  /// first, so every vertex's degree splits with deviation at most one).
  /// Returns true when the halves are element-identical (no odd leftovers).
  ///
  /// The recursion visits Theta(colour classes) nodes, so the per-node cost
  /// here is the router's wall-clock. Everything is O(odd edges) flat-array
  /// work with NO per-node sorting: per-endpoint intrusive linked lists
  /// (built in one reverse pass, so each vertex's list is in ascending
  /// edge order — exactly the order a forward push_back build yields) and a
  /// touched-vertex bitmap whose ascending-set-bit sweep replaces the
  /// sorted-touched-list sweep. Trails always consume the lowest-unused
  /// edge at each vertex and start in ascending vertex order, identical to
  /// the reference implementation, so the colouring is bit-identical.
  bool euler_split(const std::vector<Edge>& edges, std::vector<Edge>& lo,
                   std::vector<Edge>& hi) {
    lo.clear();
    hi.clear();
    odd_pack_.clear();
    max_half_ = 0;
    for (const auto& e : edges) {
      const std::int64_t half = e.count / 2;
      if (half > 0) {
        lo.push_back({e.src, e.dst, half});
        hi.push_back({e.src, e.dst, half});
        if (half > max_half_) max_half_ = half;
      }
      if (e.count % 2 == 1) odd_pack_.push_back(pack(e.src, e.dst));
    }
    if (odd_pack_.empty()) return true;

    build_slots(odd_pack_);

    auto walk_trail = [&](int v0) {
      // Maximal trail from v0, alternating edges between lo and hi. Each
      // vertex's list head skips already-used occurrences lazily, so the
      // chosen edge is always the lowest-id unused edge at the vertex —
      // the rem_ counters only shortcut the discovery that none is left.
      int v = v0;
      bool to_lo = true;
      for (;;) {
        const auto c = consume_lowest_unused(v);
        if (c.slot < 0) return;
        const int src = static_cast<int>(c.edge >> 16);
        const int dst = static_cast<int>(c.edge & 0xffffu);
        (to_lo ? lo : hi).push_back({src, dst, 1});
        to_lo = !to_lo;
        // Even slot = arrived via the src side, continue at the dst side.
        v = (c.slot & 1) == 0 ? n_ + dst : src;
      }
    };

    // Start trails at odd-degree vertices first, in ascending vertex order
    // (bitmap sweep), then close the remaining Eulerian tours the same way.
    // Untouched vertices carry no bits, so this matches a full 0..2n-1
    // sweep of the reference implementation; the rem_ gate skips exhausted
    // vertices without touching the edge arrays (a reference walk_trail
    // call there is a no-op).
    const std::size_t words = mark_.size();
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = oddb_[w];
      oddb_[w] = 0;
      while (bits != 0) {
        const int v = static_cast<int>(w * 64) +
                      std::countr_zero(bits);
        bits &= bits - 1;
        if (head_[static_cast<std::size_t>(v)] >= 0) walk_trail(v);
      }
    }
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = mark_[w];
      while (bits != 0) {
        const int v = static_cast<int>(w * 64) + std::countr_zero(bits);
        bits &= bits - 1;
        if (head_[static_cast<std::size_t>(v)] >= 0) walk_trail(v);
      }
      mark_[w] = 0;
    }
    for (const int v : touched_) {
      head_[static_cast<std::size_t>(v)] = -1;
      row2_[static_cast<std::size_t>(v)] = 0;  // degree counters, see build
    }
    return false;
  }

  // -------------------------------------------------------------------
  // All-count-1 fast path. Once every entry of a node has multiplicity 1
  // (the endgame of every split tree — it holds the vast majority of the
  // recursion's edge volume), halving is a no-op and every entry is an odd
  // leftover, so a split is exactly one trail walk. This path stores
  // entries packed ((src << 16) | dst, count implicitly 1) and runs the
  // SAME trail mechanics as euler_split — adjacency threaded in reverse
  // entry order, bitmap sweeps in ascending vertex order, lowest-unused-
  // edge selection — so the emitted class sequence is bit-identical to the
  // general path's; only the entry storage is 4x denser.
  // -------------------------------------------------------------------

  /// Trail-split of an all-count-1 multigraph: the packed counterpart of
  /// euler_split's odd-leftover walk (which is the whole split here). Each
  /// child recomputes its own exact max degree inside ITS build_slots
  /// (node_deg_), so no separate degree pass runs anywhere.
  void trail_split_packed(const std::vector<std::uint32_t>& es,
                          std::vector<std::uint32_t>& lo,
                          std::vector<std::uint32_t>& hi) {
    // The caller already ran build_slots(es). Scratch-size the halves once
    // and emit through raw cursors (the walk's serial chain pays no vector
    // bookkeeping); truncate afterwards.
    lo.resize(es.size());
    hi.resize(es.size());
    std::uint32_t* out[2] = {lo.data(), hi.data()};

    auto walk_trail = [&](int v0) {
      int v = v0;
      int side = 0;
      for (;;) {
        const auto c = consume_lowest_unused(v);
        if (c.slot < 0) return;
        const auto e = c.edge;
        *out[side]++ = e;
        side ^= 1;
        v = (c.slot & 1) == 0
                ? n_ + static_cast<int>(e & 0xffffu)
                : static_cast<int>(e >> 16);
      }
    };

    const std::size_t words = mark_.size();
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = oddb_[w];
      oddb_[w] = 0;
      while (bits != 0) {
        const int v = static_cast<int>(w * 64) + std::countr_zero(bits);
        bits &= bits - 1;
        if (head_[static_cast<std::size_t>(v)] >= 0) walk_trail(v);
      }
    }
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = mark_[w];
      while (bits != 0) {
        const int v = static_cast<int>(w * 64) + std::countr_zero(bits);
        bits &= bits - 1;
        if (head_[static_cast<std::size_t>(v)] >= 0) walk_trail(v);
      }
      mark_[w] = 0;
    }
    for (const int v : touched_) {
      head_[static_cast<std::size_t>(v)] = -1;
      row2_[static_cast<std::size_t>(v)] = 0;
    }
    lo.resize(static_cast<std::size_t>(out[0] - lo.data()));
    hi.resize(static_cast<std::size_t>(out[1] - hi.data()));
  }

  void split_walk_packed(std::vector<std::uint32_t> es, int depth) {
    if (es.empty()) {
      release_packed(std::move(es));
      return;
    }
    if (depth > 64) {
      for (const auto e : es) {
        log_bounds_.push_back(log_edges_.size());
        log_edges_.push_back(e);
      }
      release_packed(std::move(es));
      return;
    }
    build_slots(es);
    if (node_deg_ <= 1) {
      // Leaf: one colour class; tear the scratch back down and log it.
      unbuild_slots();
      log_bounds_.push_back(log_edges_.size());
      log_edges_.insert(log_edges_.end(), es.begin(), es.end());
      release_packed(std::move(es));
      return;
    }
    auto lo = acquire_packed();
    auto hi = acquire_packed();
    trail_split_packed(es, lo, hi);
    release_packed(std::move(es));
    split_walk_packed(std::move(lo), depth + 1);
    split_walk_packed(std::move(hi), depth + 1);
  }

  void split_walk(std::vector<Edge> edges, int depth) {
    if (edges.empty()) {
      release(std::move(edges));
      return;
    }
    const std::int64_t deg = max_degree(edges);
    if (deg <= 1) {
      log_class(edges);
      release(std::move(edges));
      return;
    }
    if (depth > 64) {
      // Termination backstop; never expected (the split strictly shrinks
      // the max degree), but keeps the router total even if it regresses.
      for (const auto& e : edges)
        for (std::int64_t i = 0; i < e.count; ++i) {
          log_bounds_.push_back(log_edges_.size());
          log_edges_.push_back(pack(e.src, e.dst));
        }
      release(std::move(edges));
      return;
    }
    auto lo = acquire();
    auto hi = acquire();
    const bool identical = euler_split(edges, lo, hi);
    // Every child entry is either a halved count (<= max_half_) or an odd
    // leftover (count 1): once max_half_ <= 1, the children live entirely
    // in the all-count-1 regime and descend through the packed fast path.
    const bool simple_children = max_half_ <= 1;
    release(std::move(edges));
    auto descend = [&](std::vector<Edge>&& child) {
      if (simple_children) {
        auto p = acquire_packed();
        p.reserve(child.size());
        for (const auto& e : child) p.push_back(pack(e.src, e.dst));
        release(std::move(child));
        split_walk_packed(std::move(p), depth + 1);
      } else {
        split_walk(std::move(child), depth + 1);
      }
    };
    if (!identical) {
      descend(std::move(lo));
      descend(std::move(hi));
      return;
    }
    release(std::move(hi));
    // Element-identical halves produce identical subtrees: traverse once
    // and duplicate the logged class range in place of the second descent.
    const std::size_t mark_b = log_bounds_.size();
    const std::size_t mark_e = log_edges_.size();
    descend(std::move(lo));
    const std::size_t end_b = log_bounds_.size();
    const std::size_t end_e = log_edges_.size();
    const std::size_t delta = end_e - mark_e;
    log_bounds_.reserve(end_b + (end_b - mark_b));
    for (std::size_t b = mark_b; b < end_b; ++b)
      log_bounds_.push_back(log_bounds_[b] + delta);
    log_edges_.resize(end_e + delta);
    std::copy(log_edges_.begin() + static_cast<std::ptrdiff_t>(mark_e),
              log_edges_.begin() + static_cast<std::ptrdiff_t>(end_e),
              log_edges_.begin() + static_cast<std::ptrdiff_t>(end_e));
  }

  void log_class(const std::vector<Edge>& matching) {
    log_bounds_.push_back(log_edges_.size());
    for (const auto& e : matching) {
      CCA_ASSERT(e.count == 1);
      log_edges_.push_back(pack(e.src, e.dst));
    }
  }

  int n_;
  std::int64_t total_colours_ = 0;
  std::vector<std::int64_t>& load_a_;  ///< intermediate-major: [mid][src]
  std::vector<std::int64_t>& load_b_;  ///< intermediate-major: [mid][dst]

  // Scratch reused across recursion nodes.
  std::vector<int> head_;            ///< per vertex: first unused slot, -1 idle
  std::vector<std::uint64_t> mark_;  ///< touched-vertex bitmap
  std::vector<std::uint64_t> oddb_;  ///< odd-degree parity bitmap
  std::vector<SlotRec> slots_;       ///< per slot (2 per odd edge): next+edge
  std::vector<std::int64_t> row_;
  std::vector<std::int64_t> col_;
  std::vector<std::int64_t> row2_;       ///< build-fused node degree counters
  std::vector<std::uint32_t> odd_pack_;  ///< odd edges, (src << 16) | dst
  std::vector<int> touched_;
  std::int64_t max_half_ = 0;            ///< max halved count of last split
  std::int64_t node_deg_ = 0;            ///< max degree of last built node
  std::vector<std::vector<Edge>> pool_;
  std::vector<std::vector<std::uint32_t>> packed_pool_;

  // Flat log of colour classes in DFS leaf order, packed (src << 16) | dst.
  std::vector<std::uint32_t> log_edges_;
  std::vector<std::size_t> log_bounds_;
};

}  // namespace

std::int64_t rounds_direct(int n, const std::vector<Demand>& demands) {
  CCA_EXPECTS(n >= 1);
  // Aggregate per ordered link; a demand list may mention a link repeatedly.
  std::int64_t best = 0;
  std::vector<std::int64_t> acc;
  std::vector<std::vector<const Demand*>> by_src(static_cast<std::size_t>(n));
  for (const auto& d : demands) {
    CCA_EXPECTS(d.src >= 0 && d.src < n && d.dst >= 0 && d.dst < n);
    by_src[static_cast<std::size_t>(d.src)].push_back(&d);
  }
  acc.assign(static_cast<std::size_t>(n), 0);
  for (const auto& group : by_src) {
    for (const Demand* d : group) acc[static_cast<std::size_t>(d->dst)] += d->words;
    for (const Demand* d : group) {
      best = std::max(best, acc[static_cast<std::size_t>(d->dst)]);
      acc[static_cast<std::size_t>(d->dst)] = 0;
    }
  }
  return best;
}

std::int64_t rounds_hash_relay(int n, const std::vector<Demand>& demands) {
  CCA_EXPECTS(n >= 1);
  return relay_rounds(n, demands, [n](const Demand& d) {
    const auto key = static_cast<std::uint64_t>(d.src) * 0x1000003ULL +
                     static_cast<std::uint64_t>(d.dst);
    return static_cast<std::int64_t>(splitmix64(key) %
                                     static_cast<std::uint64_t>(n));
  });
}

std::int64_t rounds_random_relay(int n, const std::vector<Demand>& demands,
                                 Rng& rng) {
  CCA_EXPECTS(n >= 1);
  return relay_rounds(n, demands, [n, &rng](const Demand&) {
    return static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(n)));
  });
}

std::int64_t rounds_koenig_relay(int n, const std::vector<Demand>& demands) {
  return schedule_koenig_relay(n, demands).rounds;
}

Schedule schedule_koenig_relay(int n, const std::vector<Demand>& demands) {
  CCA_EXPECTS(n >= 1);
  Schedule sched;
  std::vector<Edge> edges;
  edges.reserve(demands.size());
  for (const auto& d : demands) {
    CCA_EXPECTS(d.src >= 0 && d.src < n && d.dst >= 0 && d.dst < n);
    CCA_EXPECTS(d.words >= 0);
    if (d.words > 0) {
      edges.push_back({d.src, d.dst, d.words});
      sched.words += d.words;
    }
  }
  if (edges.empty()) return sched;

  const auto nn = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  std::vector<std::int64_t> load_a(nn);
  std::vector<std::int64_t> load_b(nn);
  KoenigColouring colouring(n, load_a, load_b);
  colouring.colour(edges);

  const auto max_a = *std::max_element(load_a.begin(), load_a.end());
  const auto max_b = *std::max_element(load_b.begin(), load_b.end());
  sched.rounds = max_a + max_b;
  sched.classes = colouring.total_colours();
  return sched;
}

std::uint64_t demand_fingerprint(int n, const std::vector<Demand>& demands) {
  // Order-sensitive SplitMix64 chaining over (n, src, dst, words). The
  // callers pass the canonical (src, dst)-ascending list, so byte-identical
  // traffic shapes — and only those — are meant to collide.
  std::uint64_t h =
      splitmix64(0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(n));
  for (const auto& d : demands) {
    const auto pair =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(d.src)) << 32) |
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(d.dst));
    h = splitmix64(h ^ pair);
    h = splitmix64(h ^ static_cast<std::uint64_t>(d.words));
  }
  return h;
}

const Schedule& ScheduleCache::get(int n, const std::vector<Demand>& demands,
                                   bool* hit) {
  const auto key = demand_fingerprint(n, demands);
  if (const auto it = map_.find(key); it != map_.end()) {
    for (const auto& e : it->second)
      if (e.n == n && e.demands == demands) {
        ++stats_.hits;
        if (hit != nullptr) *hit = true;
        return e.schedule;
      }
  }
  ++stats_.misses;
  if (hit != nullptr) *hit = false;

  // Footprint cap: iterated workloads cycle through a handful of shapes, so
  // a wholesale reset on overflow (rather than LRU bookkeeping) costs at
  // most one extra split per live shape.
  constexpr std::size_t kMaxCachedDemands = std::size_t{1} << 22;
  if (cached_demands_ + demands.size() > kMaxCachedDemands) {
    map_.clear();
    entries_ = 0;
    cached_demands_ = 0;
  }

  Schedule sched = schedule_koenig_relay(n, demands);
  cached_demands_ += demands.size();
  ++entries_;
  auto& chain = map_[key];
  chain.push_back({n, demands, sched});
  return chain.back().schedule;
}

void ScheduleCache::clear() {
  map_.clear();
  entries_ = 0;
  cached_demands_ = 0;
  stats_ = Stats{};
}

}  // namespace cca::clique
