#include "clique/transport.hpp"

#include <algorithm>
#include <cstring>

#include "util/analysis.hpp"
#include "util/contracts.hpp"
#include "util/parallel.hpp"

namespace cca::clique {

namespace {

/// Phase changes (deliver / discard_staged) mutate every outbox and the
/// arena, so they must not run inside a cca::parallel_for region. With
/// analysis checking on this faults through the typed ContractViolation
/// path (recorded in analysis::Report); the bare contract backstops
/// unchecked builds. The transport has no superstep counter — Network's
/// tracker hook, which fires first on the Network-level paths, carries
/// that coordinate.
void check_phase_change_serial(const char* what) {
  if (cca::analysis::checking_enabled() && in_parallel_region()) {
    cca::analysis::fail(
        {cca::analysis::ContractKind::DeliverInParallel, -1, -1, -1,
         std::string("ArenaTransport::") + what +
             " invoked inside a cca::parallel_for region"});
  }
  CCA_EXPECTS(!in_parallel_region());
}

/// Under CCA_SANITIZE, move a buffer's contents to freshly allocated
/// storage. Every staging call and every deliver() runs this on the buffers
/// whose spans it invalidates, so a span held across its documented
/// invalidation point points into freed memory and ASan reports the first
/// use — even when the capacity would have sufficed and the relocation
/// would otherwise silently not happen.
[[maybe_unused]] void poison_relocate(std::vector<Word>& buf) {
#ifdef CCA_SANITIZE
  std::vector<Word> fresh;
  fresh.reserve(buf.capacity());
  fresh.assign(buf.begin(), buf.end());
  buf.swap(fresh);
#else
  (void)buf;
#endif
}

}  // namespace

ArenaTransport::ArenaTransport(int n)
    : n_((CCA_VALIDATE(n >= 1, "clique size n must be >= 1"), n)),
      out_data_(static_cast<std::size_t>(n)),
      out_segs_(static_cast<std::size_t>(n)),
      in_off_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0),
      in_len_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0),
      pair_words_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                  0),
      stage_gen_(static_cast<std::size_t>(n), 0) {}

void ArenaTransport::check_node(NodeId v) const {
  CCA_EXPECTS(v >= 0 && v < n_);
}

std::uint64_t ArenaTransport::stage_generation(NodeId src) const {
  check_node(src);
  return stage_gen_[static_cast<std::size_t>(src)];
}

void ArenaTransport::send(NodeId src, NodeId dst, Word w) {
  check_node(src);
  check_node(dst);
  const auto s = static_cast<std::size_t>(src);
  ++stage_gen_[s];
  poison_relocate(out_data_[s]);
  out_data_[s].push_back(w);
  auto& segs = out_segs_[s];
  if (!segs.empty() && segs.back().dst == dst)
    ++segs.back().len;
  else
    segs.push_back({dst, 1});
}

void ArenaTransport::send_words(NodeId src, NodeId dst,
                                std::span<const Word> ws) {
  check_node(src);
  check_node(dst);
  if (ws.empty()) return;
  const auto s = static_cast<std::size_t>(src);
  ++stage_gen_[s];
  poison_relocate(out_data_[s]);
  auto& data = out_data_[s];
  data.insert(data.end(), ws.begin(), ws.end());
  auto& segs = out_segs_[s];
  if (!segs.empty() && segs.back().dst == dst)
    segs.back().len += ws.size();
  else
    segs.push_back({dst, ws.size()});
}

std::span<Word> ArenaTransport::stage(NodeId src, NodeId dst,
                                      std::size_t nwords) {
  check_node(src);
  check_node(dst);
  const auto s = static_cast<std::size_t>(src);
  auto& data = out_data_[s];
  const std::size_t base = data.size();
  if (nwords == 0) return {};
  ++stage_gen_[s];
  poison_relocate(data);
  data.resize(base + nwords, 0);
  auto& segs = out_segs_[s];
  if (!segs.empty() && segs.back().dst == dst)
    segs.back().len += nwords;
  else
    segs.push_back({dst, nwords});
  return {data.data() + base, nwords};
}

std::vector<StagedPair> ArenaTransport::staged_snapshot() const {
  // Per-source pass: accumulate each destination's run-concatenated payload,
  // then emit dst-ascending — sources ascend in the outer loop, giving the
  // canonical order without a global sort.
  std::vector<StagedPair> out;
  std::vector<std::vector<Word>> by_dst(static_cast<std::size_t>(n_));
  for (int src = 0; src < n_; ++src) {
    const auto s = static_cast<std::size_t>(src);
    const Word* read = out_data_[s].data();
    for (const auto& seg : out_segs_[s]) {
      auto& buf = by_dst[static_cast<std::size_t>(seg.dst)];
      buf.insert(buf.end(), read, read + seg.len);
      read += seg.len;
    }
    for (int dst = 0; dst < n_; ++dst) {
      auto& buf = by_dst[static_cast<std::size_t>(dst)];
      if (buf.empty()) continue;
      if (dst != src) out.push_back({src, dst, std::move(buf)});
      buf = {};
    }
  }
  return out;
}

std::vector<Demand> ArenaTransport::staged_meta() {
  // Lengths-only mirror of staged_snapshot(): aggregate each source's
  // destination runs, emit dst-ascending under the ascending source loop.
  // All staged state is local here, so this is the global list already.
  std::vector<Demand> out;
  std::vector<std::int64_t> by_dst(static_cast<std::size_t>(n_), 0);
  for (int src = 0; src < n_; ++src) {
    for (const auto& seg : out_segs_[static_cast<std::size_t>(src)])
      by_dst[static_cast<std::size_t>(seg.dst)] +=
          static_cast<std::int64_t>(seg.len);
    for (int dst = 0; dst < n_; ++dst) {
      auto& words = by_dst[static_cast<std::size_t>(dst)];
      if (words == 0) continue;
      if (dst != src) out.push_back({src, dst, words});
      words = 0;
    }
  }
  return out;
}

void ArenaTransport::discard_staged() {
  check_phase_change_serial("discard_staged");
  for (int src = 0; src < n_; ++src) {
    const auto s = static_cast<std::size_t>(src);
    ++stage_gen_[s];
#ifdef CCA_SANITIZE
    std::vector<Word>().swap(out_data_[s]);
#else
    out_data_[s].clear();
#endif
    out_segs_[s].clear();
  }
}

void ArenaTransport::count_staged_words() {
  // Pass 1: per-pair word counts from the staged segments.
  std::fill(pair_words_.begin(), pair_words_.end(), 0);
  for (int src = 0; src < n_; ++src) {
    const auto base = static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(n_);
    for (const auto& seg : out_segs_[static_cast<std::size_t>(src)])
      pair_words_[base + static_cast<std::size_t>(seg.dst)] += seg.len;
  }
}

DeliverySummary ArenaTransport::summarize_counts() const {
  // Demand list and per-node volumes (self-sends are local and free). The
  // (src asc, dst asc) order matches the routing schedules' expectations.
  DeliverySummary sum;
  sum.sent_by.assign(static_cast<std::size_t>(n_), 0);
  sum.recv_by.assign(static_cast<std::size_t>(n_), 0);
  for (int src = 0; src < n_; ++src) {
    std::int64_t sent = 0;
    const auto base = static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(n_);
    for (int dst = 0; dst < n_; ++dst) {
      const auto words =
          static_cast<std::int64_t>(pair_words_[base +
                                                static_cast<std::size_t>(dst)]);
      if (words == 0 || src == dst) continue;
      sum.demands.push_back({src, dst, words});
      sent += words;
      sum.recv_by[static_cast<std::size_t>(dst)] += words;
      sum.total_words += words;
    }
    sum.sent_by[static_cast<std::size_t>(src)] = sent;
  }
  return sum;
}

void ArenaTransport::rebuild_arena() {
  // Pass 2: lay out the arena (receiver-major, senders ascending within a
  // receiver) and scatter every source's staged runs into its slices. The
  // delivered content is independent of the schedule.
  std::size_t cursor = 0;
  for (int dst = 0; dst < n_; ++dst)
    for (int src = 0; src < n_; ++src) {
      const auto idx = pair_index(dst, src);
      const auto words = pair_words_[static_cast<std::size_t>(src) *
                                         static_cast<std::size_t>(n_) +
                                     static_cast<std::size_t>(dst)];
      in_off_[idx] = cursor;
      in_len_[idx] = words;
      cursor += words;
    }
  // Every outstanding staged span and inbox view dies here.
  ++inbox_gen_;
  for (auto& g : stage_gen_) ++g;
#ifdef CCA_SANITIZE
  // Rebuild the arena in fresh storage so inbox views held across this
  // deliver() fault under ASan even when the capacity would have sufficed.
  {
    std::vector<Word> fresh(cursor);
    arena_.swap(fresh);
  }
#else
  arena_.resize(cursor);
#endif
}

void ArenaTransport::scatter_and_clear_outboxes() {
  // pair_words_ is consumed as the per-pair write cursor from here on.
  std::fill(pair_words_.begin(), pair_words_.end(), 0);
  for (int src = 0; src < n_; ++src) {
    const auto s = static_cast<std::size_t>(src);
    const auto base = s * static_cast<std::size_t>(n_);
    const Word* read = out_data_[s].data();
    for (const auto& seg : out_segs_[s]) {
      auto& consumed = pair_words_[base + static_cast<std::size_t>(seg.dst)];
      std::memcpy(arena_.data() + in_off_[pair_index(seg.dst, src)] + consumed,
                  read, static_cast<std::size_t>(seg.len) * sizeof(Word));
      consumed += seg.len;
      read += seg.len;
    }
#ifdef CCA_SANITIZE
    // Release (not just clear) the outbox so staged spans held across
    // deliver() dangle deterministically.
    std::vector<Word>().swap(out_data_[s]);
#else
    out_data_[s].clear();
#endif
    out_segs_[s].clear();
  }
}

DeliverySummary ArenaTransport::deliver() {
  // Staging is safe from parallel regions (one src per iteration); the
  // delivery phase change is not — it mutates every outbox and the arena.
  check_phase_change_serial("deliver");
  count_staged_words();
  auto sum = summarize_counts();
  rebuild_arena();
  scatter_and_clear_outboxes();
  return sum;
}

std::span<const Word> ArenaTransport::inbox(NodeId dst, NodeId src) const {
  check_node(dst);
  check_node(src);
  const auto idx = pair_index(dst, src);
  return {arena_.data() + in_off_[idx], in_len_[idx]};
}

namespace {
thread_local const TransportScope::Factory* g_ambient_factory = nullptr;
}  // namespace

TransportScope::TransportScope(Factory factory) noexcept
    : factory_(std::move(factory)), prev_(g_ambient_factory) {
  g_ambient_factory = &factory_;
}

TransportScope::~TransportScope() { g_ambient_factory = prev_; }

const TransportScope::Factory* TransportScope::current() noexcept {
  return g_ambient_factory;
}

std::vector<Word> ArenaTransport::take_inbox(NodeId dst, NodeId src) {
  check_node(dst);
  check_node(src);
  const auto idx = pair_index(dst, src);
  std::vector<Word> out(arena_.data() + in_off_[idx],
                        arena_.data() + in_off_[idx] + in_len_[idx]);
  in_len_[idx] = 0;
  return out;
}

}  // namespace cca::clique
