#include "clique/broadcast.hpp"

namespace cca::clique {

std::int64_t broadcast_mm_rounds(int n) {
  BroadcastNetwork net(n);
  // Every node announces its 2n input words (row of S and row of T); the
  // content is irrelevant to the cost, so stage placeholders.
  for (int v = 0; v < n; ++v)
    for (int j = 0; j < 2 * n; ++j)
      net.broadcast(v, static_cast<std::uint64_t>(j));
  net.deliver();
  return net.rounds();
}

}  // namespace cca::clique
