#include "clique/broadcast.hpp"

namespace cca::clique {

Word agree_on_seed(Network& net, NodeId src, Word seed) {
  CCA_EXPECTS(src >= 0 && src < net.n());
  const int n = net.n();
  if (n == 1) return seed;
  for (NodeId v = 0; v < n; ++v)
    if (v != src) net.send(src, v, seed);
  // One word per (src, v) link and nothing else staged: the direct
  // schedule's max link load is exactly 1.
  net.deliver(Router::Direct);
  Word agreed = seed;
  for (NodeId v = 0; v < n; ++v) {
    if (v == src) continue;
    const auto in = net.inbox(v, src);
    CCA_ASSERT(in.size() == 1 && in[0] == seed);
    agreed = in[0];
  }
  return agreed;
}

std::int64_t broadcast_mm_rounds(int n) {
  BroadcastNetwork net(n);
  // Every node announces its 2n input words (row of S and row of T); the
  // content is irrelevant to the cost, so stage placeholders.
  for (int v = 0; v < n; ++v)
    for (int j = 0; j < 2 * n; ++j)
      net.broadcast(v, static_cast<std::uint64_t>(j));
  net.deliver();
  return net.rounds();
}

}  // namespace cca::clique
