// Unit tests for the util substrate: RNG, integer math, fitting, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/fit.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace cca {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_below(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(21);
  Rng child = parent.split();
  EXPECT_NE(parent.next(), child.next());
}

class RootsSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(RootsSweep, IsqrtExact) {
  const auto x = GetParam();
  const auto r = isqrt(x);
  EXPECT_LE(r * r, x);
  EXPECT_GT((r + 1) * (r + 1), x);
}

TEST_P(RootsSweep, IcbrtExact) {
  const auto x = GetParam();
  const auto r = icbrt(x);
  EXPECT_LE(r * r * r, x);
  EXPECT_GT((r + 1) * (r + 1) * (r + 1), x);
}

INSTANTIATE_TEST_SUITE_P(Values, RootsSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 7, 8, 9, 26, 27, 28,
                                           63, 64, 65, 99, 1000, 12166, 12167,
                                           12168, 1000000, 999999999999LL));

TEST(Math, PerfectPredicates) {
  EXPECT_TRUE(is_perfect_square(0));
  EXPECT_TRUE(is_perfect_square(49));
  EXPECT_FALSE(is_perfect_square(50));
  EXPECT_TRUE(is_perfect_cube(27));
  EXPECT_FALSE(is_perfect_cube(28));
  EXPECT_FALSE(is_perfect_square(-4));
}

TEST(Math, NextCubeAndSquare) {
  EXPECT_EQ(next_cube(0), 0);
  EXPECT_EQ(next_cube(1), 1);
  EXPECT_EQ(next_cube(2), 8);
  EXPECT_EQ(next_cube(27), 27);
  EXPECT_EQ(next_cube(28), 64);
  EXPECT_EQ(next_square(17), 25);
  EXPECT_EQ(next_square(25), 25);
}

TEST(Math, NextSquareWithRootMultiple) {
  EXPECT_EQ(next_square_with_root_multiple(49, 2), 64);   // sqrt 8
  EXPECT_EQ(next_square_with_root_multiple(64, 8), 64);   // sqrt 8
  EXPECT_EQ(next_square_with_root_multiple(65, 8), 256);  // sqrt 16
  EXPECT_EQ(next_square_with_root_multiple(1, 1), 1);
}

TEST(Math, Pow2Helpers) {
  EXPECT_EQ(floor_pow2(1), 1);
  EXPECT_EQ(floor_pow2(7), 4);
  EXPECT_EQ(floor_pow2(8), 8);
  EXPECT_EQ(ceil_pow2(5), 8);
  EXPECT_EQ(ceil_pow2(8), 8);
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(7), 2);
  EXPECT_EQ(ilog2(8), 3);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(1, 3), 1);
  EXPECT_EQ(ceil_div(3, 3), 1);
  EXPECT_EQ(ceil_div(4, 3), 2);
}

TEST(Math, MixedRadixRoundTrip) {
  const std::vector<std::int64_t> radices{4, 5, 3};
  for (std::int64_t v = 0; v < 60; ++v) {
    const auto digits = mixed_radix(v, radices);
    ASSERT_EQ(digits.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_GE(digits[i], 0);
      EXPECT_LT(digits[i], radices[i]);
    }
    EXPECT_EQ(from_mixed_radix(digits, radices), v);
  }
}

TEST(Fit, RecoversExactPowerLaw) {
  std::vector<double> xs, ys;
  for (const double x : {8.0, 27.0, 64.0, 125.0, 343.0}) {
    xs.push_back(x);
    ys.push_back(2.5 * std::pow(x, 0.33));
  }
  const auto f = fit_power_law(xs, ys);
  EXPECT_NEAR(f.exponent, 0.33, 1e-9);
  EXPECT_NEAR(f.coefficient, 2.5, 1e-9);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-9);
}

TEST(Fit, NoisyDataStillClose) {
  std::vector<double> xs, ys;
  double wiggle = 0.9;
  for (const double x : {10.0, 100.0, 1000.0, 10000.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 0.5) * wiggle);
    wiggle = 2.0 - wiggle;  // alternate 0.9 / 1.1
  }
  const auto f = fit_power_law(xs, ys);
  EXPECT_NEAR(f.exponent, 0.5, 0.05);
}

TEST(Fit, ConstantSeriesHasZeroExponent) {
  const auto f = fit_power_law({2, 4, 8, 16}, {5, 5, 5, 5});
  EXPECT_NEAR(f.exponent, 0.0, 1e-12);
  EXPECT_NEAR(f.coefficient, 5.0, 1e-9);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_int(-42), "-42");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace cca
