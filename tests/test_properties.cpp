// Property-based tests: algebraic laws of the semirings, conservation and
// ordering invariants of the network accounting, and cross-engine
// consistency on randomized inputs.
#include <gtest/gtest.h>

#include "clique/network.hpp"
#include "core/engine.hpp"
#include "core/mm.hpp"
#include "matrix/codec.hpp"
#include "matrix/ops.hpp"
#include "matrix/poly.hpp"
#include "matrix/semiring.hpp"
#include "util/rng.hpp"

namespace cca {
namespace {

// ---------------------------------------------------------------------------
// Semiring laws on random values.
// ---------------------------------------------------------------------------

template <Semiring S, typename Gen>
void check_semiring_laws(const S& s, Gen&& gen, int trials) {
  for (int t = 0; t < trials; ++t) {
    const auto a = gen();
    const auto b = gen();
    const auto c = gen();
    // Additive commutative monoid with identity zero.
    EXPECT_EQ(s.add(a, b), s.add(b, a));
    EXPECT_EQ(s.add(s.add(a, b), c), s.add(a, s.add(b, c)));
    EXPECT_EQ(s.add(a, s.zero()), a);
    // Multiplicative monoid with identity one.
    EXPECT_EQ(s.mul(s.mul(a, b), c), s.mul(a, s.mul(b, c)));
    EXPECT_EQ(s.mul(a, s.one()), a);
    EXPECT_EQ(s.mul(s.one(), a), a);
    // Distributivity.
    EXPECT_EQ(s.mul(a, s.add(b, c)), s.add(s.mul(a, b), s.mul(a, c)));
    EXPECT_EQ(s.mul(s.add(a, b), c), s.add(s.mul(a, c), s.mul(b, c)));
    // Zero annihilates.
    EXPECT_EQ(s.mul(a, s.zero()), s.zero());
    EXPECT_EQ(s.mul(s.zero(), a), s.zero());
  }
}

TEST(SemiringLaws, IntRing) {
  Rng rng(1);
  const IntRing s;
  check_semiring_laws(s, [&] { return rng.next_in(-50, 50); }, 200);
}

TEST(SemiringLaws, MinPlus) {
  Rng rng(2);
  const MinPlusSemiring s;
  check_semiring_laws(
      s,
      [&]() -> std::int64_t {
        return rng.chance(1, 5) ? MinPlusSemiring::kInf : rng.next_in(0, 1000);
      },
      200);
}

TEST(SemiringLaws, Boolean) {
  Rng rng(3);
  const BoolSemiring s;
  check_semiring_laws(
      s,
      [&]() -> std::uint8_t { return rng.chance(1, 2) ? 1 : 0; }, 64);
}

TEST(SemiringLaws, PolyRingZ_X_mod_X5) {
  Rng rng(4);
  const PolyRing s{5};
  auto gen = [&] {
    CappedPoly p(5);
    for (int d = 0; d < 5; ++d)
      if (rng.chance(1, 2)) p.coeff(d) = rng.next_in(-9, 9);
    return p;
  };
  check_semiring_laws(s, gen, 100);
}

// ---------------------------------------------------------------------------
// Network accounting invariants.
// ---------------------------------------------------------------------------

TEST(NetworkInvariants, BoundNeverExceedsMeasuredRounds) {
  Rng rng(7);
  for (const auto router :
       {clique::Router::Direct, clique::Router::HashRelay,
        clique::Router::KoenigRelay}) {
    clique::Network net(16, router);
    for (int superstep = 0; superstep < 5; ++superstep) {
      for (int i = 0; i < 200; ++i) {
        const int s = static_cast<int>(rng.next_below(16));
        const int d = static_cast<int>(rng.next_below(16));
        net.send(s, d, rng.next());
      }
      net.deliver();
    }
    EXPECT_LE(net.stats().bound_rounds, net.stats().rounds);
  }
}

TEST(NetworkInvariants, WordConservation) {
  // Everything staged (to others) arrives somewhere, exactly once.
  Rng rng(8);
  clique::Network net(10);
  std::int64_t staged = 0;
  for (int i = 0; i < 300; ++i) {
    const int s = static_cast<int>(rng.next_below(10));
    const int d = static_cast<int>(rng.next_below(10));
    net.send(s, d, static_cast<clique::Word>(i));
    if (s != d) ++staged;
  }
  net.deliver();
  EXPECT_EQ(net.stats().total_words, staged);
  std::int64_t received = 0;
  for (int d = 0; d < 10; ++d)
    for (int s = 0; s < 10; ++s)
      if (s != d) received += static_cast<std::int64_t>(net.inbox(d, s).size());
  EXPECT_EQ(received, staged);
}

TEST(NetworkInvariants, MmBoundTracksSchedule) {
  // For the MM algorithms the measured Koenig schedule stays within a
  // small constant of the per-node volume bound at every size.
  const IntRing ring;
  const I64Codec codec;
  Rng rng(9);
  for (const int n : {27, 64, 125}) {
    clique::Network net(n);
    Matrix<std::int64_t> a(n, n, 0);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) a(i, j) = rng.next_in(0, 5);
    (void)cca::core::mm_semiring_3d(net, ring, codec, a, a);
    EXPECT_LE(net.stats().bound_rounds, net.stats().rounds) << n;
    EXPECT_LE(net.stats().rounds, 4 * net.stats().bound_rounds) << n;
  }
}

// ---------------------------------------------------------------------------
// Cross-engine consistency on random instances.
// ---------------------------------------------------------------------------

class EngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, AllEnginesComputeTheSameProduct) {
  Rng rng(GetParam());
  const int n = 20 + static_cast<int>(rng.next_below(30));
  Matrix<std::int64_t> a(n, n, 0);
  Matrix<std::int64_t> b(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      a(i, j) = rng.next_in(-20, 20);
      b(i, j) = rng.next_in(-20, 20);
    }
  const IntRing ring;
  const auto want = multiply(ring, a, b);

  for (const auto kind : {cca::core::MmKind::Fast,
                          cca::core::MmKind::Semiring3D,
                          cca::core::MmKind::Naive}) {
    const cca::core::IntMmEngine engine(kind, n);
    clique::Network net(engine.clique_n());
    const auto pa =
        cca::core::pad_matrix(a, engine.clique_n(), std::int64_t{0});
    const auto pb =
        cca::core::pad_matrix(b, engine.clique_n(), std::int64_t{0});
    const auto got = engine.multiply(net, pa, pb);
    EXPECT_EQ(got.block(0, 0, n, n), want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace cca
