// Tests for distance products: exact semiring, witnessed, ring-embedded
// (Lemma 18), and approximate (Lemma 20).
#include <gtest/gtest.h>

#include <cmath>

#include "clique/network.hpp"
#include "core/distance_product.hpp"
#include "core/mm.hpp"
#include "matrix/ops.hpp"
#include "matrix/semiring.hpp"
#include "util/rng.hpp"

namespace cca::core {
namespace {

constexpr std::int64_t kInf = MinPlusSemiring::kInf;

Matrix<std::int64_t> random_bounded(int n, std::int64_t max_v,
                                    std::uint64_t seed, int inf_one_in = 4) {
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, kInf);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (!rng.chance(1, static_cast<std::uint64_t>(inf_one_in)))
        m(i, j) = rng.next_in(0, max_v);
  return m;
}

TEST(DpSemiring, MatchesLocalMinPlus) {
  const MinPlusSemiring sr;
  for (const int n : {8, 27, 64}) {
    clique::Network net(n);
    const auto a = random_bounded(n, 40, 3 + static_cast<std::uint64_t>(n));
    const auto b = random_bounded(n, 40, 4 + static_cast<std::uint64_t>(n));
    EXPECT_EQ(dp_semiring(net, a, b), multiply(sr, a, b)) << n;
  }
}

TEST(DpSemiringWitness, DistanceAndWitnessValid) {
  const MinPlusSemiring sr;
  for (const int n : {8, 27}) {
    clique::Network net(n);
    const auto a = random_bounded(n, 30, 5 + static_cast<std::uint64_t>(n));
    const auto b = random_bounded(n, 30, 6 + static_cast<std::uint64_t>(n));
    const auto [dist, wit] = dp_semiring_witness(net, a, b);
    EXPECT_EQ(dist, multiply(sr, a, b));
    for (int u = 0; u < n; ++u)
      for (int v = 0; v < n; ++v) {
        if (dist(u, v) >= kInf) {
          EXPECT_EQ(wit(u, v), -1);
          continue;
        }
        const int k = wit(u, v);
        ASSERT_GE(k, 0);
        ASSERT_LT(k, n);
        EXPECT_EQ(a(u, k) + b(k, v), dist(u, v));
      }
  }
}

TEST(DpSemiringWitness, CostsTwiceThePlainProduct) {
  const int n = 27;
  std::int64_t plain = 0;
  std::int64_t witnessed = 0;
  {
    clique::Network net(n);
    (void)dp_semiring(net, random_bounded(n, 9, 1), random_bounded(n, 9, 2));
    plain = net.stats().rounds;
  }
  {
    clique::Network net(n);
    (void)dp_semiring_witness(net, random_bounded(n, 9, 1),
                              random_bounded(n, 9, 2));
    witnessed = net.stats().rounds;
  }
  EXPECT_GE(witnessed, plain);
  EXPECT_LE(witnessed, 3 * plain);
}

class RingEmbeddedSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(RingEmbeddedSweep, MatchesExactProductUpTo2M) {
  const auto m_bound = GetParam();
  const int n = 16;
  const auto plan = plan_fast_mm(n, 1);
  const auto alg = tensor_power(strassen_algorithm(), 1);
  clique::Network net(plan.clique_n);
  auto a = random_bounded(n, m_bound, 7 + static_cast<std::uint64_t>(m_bound));
  auto b = random_bounded(n, m_bound, 8 + static_cast<std::uint64_t>(m_bound));
  a = pad_matrix(a, plan.clique_n, kInf);
  b = pad_matrix(b, plan.clique_n, kInf);
  const auto got = dp_ring_embedded(net, alg, a, b, m_bound);
  const MinPlusSemiring sr;
  const auto want = multiply(sr, a, b);
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RingEmbeddedSweep,
                         ::testing::Values(0, 1, 2, 5, 9, 17));

TEST(RingEmbedded, EntriesAboveBoundBecomeInfinite) {
  const int n = 4;
  const auto alg = tensor_power(strassen_algorithm(), 1);
  const auto plan = plan_fast_mm(n, 1);
  clique::Network net(plan.clique_n);
  Matrix<std::int64_t> a(plan.clique_n, plan.clique_n, kInf);
  a(0, 1) = 100;  // above m_bound: treated as infinity
  a(1, 2) = 1;
  const auto got = dp_ring_embedded(net, alg, a, a, 5);
  EXPECT_EQ(got(0, 2), kInf);
}

TEST(RingEmbedded, RoundsScaleWithM) {
  // Lemma 18's O(M n^rho): doubling M should roughly double the rounds.
  const int n = 16;
  const auto alg = tensor_power(strassen_algorithm(), 1);
  const auto plan = plan_fast_mm(n, 1);
  std::int64_t rounds_small = 0;
  std::int64_t rounds_large = 0;
  {
    clique::Network net(plan.clique_n);
    (void)dp_ring_embedded(net, alg,
                           pad_matrix(random_bounded(n, 4, 1), plan.clique_n, kInf),
                           pad_matrix(random_bounded(n, 4, 2), plan.clique_n, kInf),
                           4);
    rounds_small = net.stats().rounds;
  }
  {
    clique::Network net(plan.clique_n);
    (void)dp_ring_embedded(net, alg,
                           pad_matrix(random_bounded(n, 16, 1), plan.clique_n, kInf),
                           pad_matrix(random_bounded(n, 16, 2), plan.clique_n, kInf),
                           16);
    rounds_large = net.stats().rounds;
  }
  EXPECT_GT(rounds_large, 2 * rounds_small);
  EXPECT_LT(rounds_large, 8 * rounds_small);
}

class ApproxSweep : public ::testing::TestWithParam<double> {};

TEST_P(ApproxSweep, SandwichBoundHolds) {
  const double delta = GetParam();
  const int n = 16;
  const std::int64_t m_bound = 200;
  const auto alg = tensor_power(strassen_algorithm(), 1);
  const auto plan = plan_fast_mm(n, 1);
  clique::Network net(plan.clique_n);
  const auto a =
      pad_matrix(random_bounded(n, m_bound, 21), plan.clique_n, kInf);
  const auto b =
      pad_matrix(random_bounded(n, m_bound, 22), plan.clique_n, kInf);
  const auto approx = dp_approx(net, alg, a, b, m_bound, delta);
  const MinPlusSemiring sr;
  const auto exact = multiply(sr, a, b);
  for (int u = 0; u < plan.clique_n; ++u)
    for (int v = 0; v < plan.clique_n; ++v) {
      if (exact(u, v) >= kInf) {
        EXPECT_GE(approx(u, v), kInf);
        continue;
      }
      EXPECT_GE(approx(u, v), exact(u, v)) << u << "," << v;
      const double ceiling =
          (1.0 + delta) * static_cast<double>(exact(u, v)) + 1e-6;
      EXPECT_LE(static_cast<double>(approx(u, v)), ceiling) << u << "," << v;
    }
}

INSTANTIATE_TEST_SUITE_P(Deltas, ApproxSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 1.0));

TEST(Approx, ZeroEntriesStayExact) {
  const int n = 4;
  const auto alg = tensor_power(strassen_algorithm(), 0);
  const auto plan = plan_fast_mm(n, 0);
  clique::Network net(plan.clique_n);
  Matrix<std::int64_t> a(plan.clique_n, plan.clique_n, kInf);
  for (int i = 0; i < plan.clique_n; ++i) a(i, i) = 0;
  a(0, 1) = 3;
  const auto approx = dp_approx(net, alg, a, a, 3, 0.5);
  EXPECT_EQ(approx(0, 0), 0);
  EXPECT_EQ(approx(0, 1), 3);  // 3 = 0 + 3 exactly representable at level 0
}

}  // namespace
}  // namespace cca::core
