// Tests for Theorem 4: O(1)-round 4-cycle detection and the Lemma 12 tile
// partition.
#include <gtest/gtest.h>

#include "core/four_cycle.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace cca::core {
namespace {

// ---------------------------------------------------------------------------
// Lemma 12 tiling invariants.
// ---------------------------------------------------------------------------

class TilingSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TilingSweep, TilesDisjointSizedAndInBounds) {
  Rng rng(GetParam());
  const int n = 32 + static_cast<int>(rng.next_below(200));
  // Degrees respecting the phase-1 guarantee sum deg^2 < 2 n^2.
  std::vector<std::int64_t> deg(static_cast<std::size_t>(n), 0);
  std::int64_t budget = 2 * static_cast<std::int64_t>(n) * n - 1;
  for (int y = 0; y < n; ++y) {
    const auto max_d = std::min<std::int64_t>(n - 1, isqrt(budget));
    if (max_d <= 0) break;
    deg[static_cast<std::size_t>(y)] = rng.next_in(0, max_d);
    budget -= deg[static_cast<std::size_t>(y)] * deg[static_cast<std::size_t>(y)];
  }

  const auto tiles = lemma12_tiling(deg, n);
  const auto k = floor_pow2(n);

  std::vector<char> seen_y(static_cast<std::size_t>(n), 0);
  for (const auto& t : tiles) {
    EXPECT_GE(t.y, 0);
    EXPECT_LT(t.y, n);
    EXPECT_FALSE(seen_y[static_cast<std::size_t>(t.y)]);
    seen_y[static_cast<std::size_t>(t.y)] = 1;
    // Size: a power of two, at least deg/8 (Lemma 12's guarantee).
    EXPECT_GT(t.size, 0);
    EXPECT_EQ(t.size & (t.size - 1), 0);
    EXPECT_GE(static_cast<std::int64_t>(t.size) * 8,
              deg[static_cast<std::size_t>(t.y)]);
    // Bounds: inside the k x k square.
    EXPECT_GE(t.row0, 0);
    EXPECT_GE(t.col0, 0);
    EXPECT_LE(t.row0 + t.size, k);
    EXPECT_LE(t.col0 + t.size, k);
  }
  // Nodes with degree > 0 all got a tile.
  for (int y = 0; y < n; ++y)
    EXPECT_EQ(seen_y[static_cast<std::size_t>(y)] != 0,
              deg[static_cast<std::size_t>(y)] > 0);

  // Pairwise disjointness (quadratic check).
  for (std::size_t i = 0; i < tiles.size(); ++i)
    for (std::size_t j = i + 1; j < tiles.size(); ++j) {
      const auto& a = tiles[i];
      const auto& b = tiles[j];
      const bool row_overlap =
          a.row0 < b.row0 + b.size && b.row0 < a.row0 + a.size;
      const bool col_overlap =
          a.col0 < b.col0 + b.size && b.col0 < a.col0 + a.size;
      EXPECT_FALSE(row_overlap && col_overlap)
          << "tiles " << i << " and " << j << " overlap";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TilingSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Tiling, RegularDegreesFillDensely) {
  // n nodes of degree ~ n/2 (allowed: sum deg^2 = n^3/4 < 2n^2 fails for
  // n > 8!) — use degree sqrt(n) instead to stay within the phase-1 bound.
  const int n = 64;
  std::vector<std::int64_t> deg(static_cast<std::size_t>(n), 8);
  const auto tiles = lemma12_tiling(deg, n);
  EXPECT_EQ(tiles.size(), static_cast<std::size_t>(n));
  for (const auto& t : tiles) EXPECT_GE(t.size, 1);
}

// ---------------------------------------------------------------------------
// Theorem 4 detection.
// ---------------------------------------------------------------------------

struct DetectCase {
  int n;
  double p;
  std::uint64_t seed;
};

class FourCycleSweep : public ::testing::TestWithParam<DetectCase> {};

TEST_P(FourCycleSweep, AgreesWithReference) {
  const auto c = GetParam();
  const auto g = gnp_random_graph(c.n, c.p, c.seed);
  const bool want = ref_has_k_cycle(g, 4);
  const auto got = detect_4cycle_const(g);
  EXPECT_EQ(got.found, want);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, FourCycleSweep,
    ::testing::Values(DetectCase{16, 0.1, 1}, DetectCase{16, 0.4, 2},
                      DetectCase{40, 0.05, 3}, DetectCase{40, 0.15, 4},
                      DetectCase{64, 0.03, 5}, DetectCase{64, 0.08, 6},
                      DetectCase{64, 0.3, 7}, DetectCase{100, 0.02, 8},
                      DetectCase{100, 0.06, 9}, DetectCase{128, 0.5, 10}));

TEST(FourCycle, StructuredPositives) {
  EXPECT_TRUE(detect_4cycle_const(cycle_graph(4)).found);
  EXPECT_TRUE(detect_4cycle_const(complete_bipartite(2, 2)).found);
  EXPECT_TRUE(detect_4cycle_const(grid_graph(6, 6)).found);
  EXPECT_TRUE(detect_4cycle_const(complete_graph(40)).found);
  // Hypercube Q3 = grid-like with girth 4 at n=8.
  EXPECT_TRUE(detect_4cycle_const(complete_bipartite(20, 20)).found);
}

TEST(FourCycle, StructuredNegatives) {
  EXPECT_FALSE(detect_4cycle_const(cycle_graph(5)).found);
  EXPECT_FALSE(detect_4cycle_const(cycle_graph(64)).found);
  EXPECT_FALSE(detect_4cycle_const(binary_tree(64)).found);
  EXPECT_FALSE(detect_4cycle_const(petersen_graph()).found);
  EXPECT_FALSE(detect_4cycle_const(complete_graph(3)).found);
  EXPECT_FALSE(detect_4cycle_const(path_graph(50)).found);
}

TEST(FourCycle, TriangleIsNotAFourCycle) {
  // Dense-in-triangles but square-free: a friendship-like windmill.
  auto g = Graph::undirected(41);
  for (int i = 0; i < 20; ++i) {
    g.add_edge(0, 1 + 2 * i);
    g.add_edge(0, 2 + 2 * i);
    g.add_edge(1 + 2 * i, 2 + 2 * i);
  }
  ASSERT_FALSE(ref_has_k_cycle(g, 4));
  EXPECT_FALSE(detect_4cycle_const(g).found);
}

TEST(FourCycle, HighDegreeOverflowShortcut) {
  // A dense graph triggers the phase-1 pigeonhole immediately.
  const auto g = complete_graph(64);
  const auto r = detect_4cycle_const(g);
  EXPECT_TRUE(r.found);
  EXPECT_LE(r.traffic.rounds, 3);  // degrees + flags only
}

TEST(FourCycle, ConstantRoundsAcrossSizes) {
  // The headline of Theorem 4: rounds must NOT grow with n. Use sparse
  // cycle graphs (worst case: no early exit, full tiling machinery).
  std::int64_t max_rounds = 0;
  for (const int n : {64, 128, 256, 512}) {
    const auto r = detect_4cycle_const(cycle_graph(n));
    EXPECT_FALSE(r.found);
    max_rounds = std::max(max_rounds, r.traffic.rounds);
  }
  EXPECT_LE(max_rounds, 40);
  // And explicitly: n=512 costs no more than a constant more than n=64.
  const auto small = detect_4cycle_const(cycle_graph(64)).traffic.rounds;
  const auto large = detect_4cycle_const(cycle_graph(512)).traffic.rounds;
  EXPECT_LE(large, small + 10);
}

TEST(FourCycle, RandomRegularLikeGraphsConstantRounds) {
  for (const int n : {64, 256}) {
    const auto g = gnp_random_graph(n, 3.0 / n, 13);
    const auto r = detect_4cycle_const(g);
    EXPECT_EQ(r.found, ref_has_k_cycle(g, 4)) << n;
    EXPECT_LE(r.traffic.rounds, 40) << n;
  }
}

TEST(FourCycle, TinyGraphFallback) {
  EXPECT_TRUE(detect_4cycle_const(complete_bipartite(2, 2)).found);
  EXPECT_FALSE(detect_4cycle_const(Graph::undirected(1)).found);
  EXPECT_FALSE(detect_4cycle_const(Graph::undirected(4)).found);
  EXPECT_FALSE(detect_4cycle_const(cycle_graph(3)).found);
}

}  // namespace
}  // namespace cca::core
