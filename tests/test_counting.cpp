// Tests for distributed triangle / 4-cycle counting (Corollary 2) against
// the centralized references, across engines and orientations.
#include <gtest/gtest.h>

#include "core/counting.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"

namespace cca::core {
namespace {

struct CountCase {
  int n;
  double p;
  bool directed;
  std::uint64_t seed;
};

class CountingSweep : public ::testing::TestWithParam<CountCase> {};

TEST_P(CountingSweep, TrianglesMatchReference) {
  const auto c = GetParam();
  const auto g = gnp_random_graph(c.n, c.p, c.seed, c.directed);
  const auto got = count_triangles_cc(g);
  EXPECT_EQ(got.count, ref_count_triangles(g));
}

TEST_P(CountingSweep, FourCyclesMatchReference) {
  const auto c = GetParam();
  const auto g = gnp_random_graph(c.n, c.p, c.seed, c.directed);
  const auto got = count_4cycles_cc(g);
  EXPECT_EQ(got.count, ref_count_4cycles(g));
}

TEST_P(CountingSweep, AllEnginesAgree) {
  const auto c = GetParam();
  const auto g = gnp_random_graph(c.n, c.p, c.seed, c.directed);
  const auto fast = count_triangles_cc(g, MmKind::Fast);
  const auto semi = count_triangles_cc(g, MmKind::Semiring3D);
  const auto naive = count_triangles_cc(g, MmKind::Naive);
  EXPECT_EQ(fast.count, semi.count);
  EXPECT_EQ(semi.count, naive.count);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, CountingSweep,
    ::testing::Values(CountCase{12, 0.3, false, 1}, CountCase{20, 0.2, false, 2},
                      CountCase{20, 0.5, false, 3}, CountCase{33, 0.15, false, 4},
                      CountCase{12, 0.3, true, 5}, CountCase{20, 0.25, true, 6},
                      CountCase{27, 0.4, true, 7}));

TEST(Counting, StructuredGraphCounts) {
  EXPECT_EQ(count_triangles_cc(complete_graph(6)).count, 20);
  EXPECT_EQ(count_triangles_cc(petersen_graph()).count, 0);
  EXPECT_EQ(count_4cycles_cc(complete_bipartite(3, 3)).count, 9);
  EXPECT_EQ(count_4cycles_cc(cycle_graph(4)).count, 1);
  EXPECT_EQ(count_4cycles_cc(cycle_graph(5)).count, 0);
  EXPECT_EQ(count_triangles_cc(binary_tree(12)).count, 0);
}

TEST(Counting, DirectedTwoCyclesAreNotTriangles) {
  auto g = Graph::directed(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  EXPECT_EQ(count_triangles_cc(g).count, 0);
  EXPECT_EQ(count_4cycles_cc(g).count, 0);
}

TEST(Counting, DirectedFourCycleOrientationMatters) {
  auto g = Graph::directed(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  EXPECT_EQ(count_4cycles_cc(g).count, 1);
  // Reversing one arc destroys the directed cycle.
  auto h = Graph::directed(4);
  h.add_edge(0, 1);
  h.add_edge(1, 2);
  h.add_edge(2, 3);
  h.add_edge(0, 3);
  EXPECT_EQ(count_4cycles_cc(h).count, 0);
}

TEST(Counting, EmptyAndTinyGraphs) {
  EXPECT_EQ(count_triangles_cc(Graph::undirected(1)).count, 0);
  EXPECT_EQ(count_triangles_cc(Graph::undirected(3)).count, 0);
  EXPECT_EQ(count_4cycles_cc(Graph::undirected(2)).count, 0);
  EXPECT_EQ(count_triangles_cc(cycle_graph(3)).count, 1);
}

TEST(Counting, RoundsBeatNaiveAtModerateSize) {
  const auto g = gnp_random_graph(125, 0.1, 9);
  const auto fast = count_triangles_cc(g, MmKind::Fast);
  const auto semi = count_triangles_cc(g, MmKind::Semiring3D);
  const auto naive = count_triangles_cc(g, MmKind::Naive);
  EXPECT_EQ(fast.count, naive.count);
  EXPECT_LT(semi.traffic.rounds, naive.traffic.rounds);
}

TEST(Counting, DenseGraphCountsStayExact) {
  // Counts near the combinatorial maximum stress the integer paths.
  const auto g = complete_graph(24);
  EXPECT_EQ(count_triangles_cc(g).count, 24LL * 23 * 22 / 6);
  const auto c4 = count_4cycles_cc(g);
  EXPECT_EQ(c4.count, 3 * (24LL * 23 * 22 * 21) / 24);  // 3 C(n,4)
}

}  // namespace
}  // namespace cca::core
