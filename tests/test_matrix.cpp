// Unit tests for the matrix algebra substrate: containers, semirings,
// Strassen, capped polynomials, codecs.
#include <gtest/gtest.h>

#include "matrix/codec.hpp"
#include "matrix/matrix.hpp"
#include "matrix/ops.hpp"
#include "matrix/poly.hpp"
#include "matrix/semiring.hpp"
#include "matrix/strassen.hpp"
#include "util/rng.hpp"

namespace cca {
namespace {

Matrix<std::int64_t> random_matrix(int r, int c, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<std::int64_t> m(r, c, 0);
  for (int i = 0; i < r; ++i)
    for (int j = 0; j < c; ++j) m(i, j) = rng.next_in(-100, 100);
  return m;
}

TEST(MatrixContainer, BlockAndPasteRoundTrip) {
  const auto m = random_matrix(6, 8, 1);
  const auto b = m.block(1, 2, 3, 4);
  EXPECT_EQ(b.rows(), 3);
  EXPECT_EQ(b.cols(), 4);
  EXPECT_EQ(b(0, 0), m(1, 2));
  Matrix<std::int64_t> copy(6, 8, 0);
  copy.paste(1, 2, b);
  EXPECT_EQ(copy(2, 3), m(2, 3));
  EXPECT_EQ(copy(0, 0), 0);
}

TEST(MatrixContainer, ResizedPadsAndCrops) {
  const auto m = random_matrix(3, 3, 2);
  const auto grown = m.resized(5, 5, -1);
  EXPECT_EQ(grown(4, 4), -1);
  EXPECT_EQ(grown(2, 2), m(2, 2));
  const auto cropped = grown.resized(2, 2, 0);
  EXPECT_EQ(cropped(1, 1), m(1, 1));
}

TEST(MatrixContainer, TransposeInvolution) {
  const auto m = random_matrix(4, 7, 3);
  EXPECT_EQ(m.transposed().transposed(), m);
}

TEST(Ops, IdentityIsMultiplicativeUnit) {
  const IntRing ring;
  const auto m = random_matrix(9, 9, 4);
  const auto id = identity(ring, 9);
  EXPECT_EQ(multiply(ring, m, id), m);
  EXPECT_EQ(multiply(ring, id, m), m);
}

TEST(Ops, MultiplyMatchesManualSmallCase) {
  const IntRing ring;
  Matrix<std::int64_t> a(2, 2, 0), b(2, 2, 0);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  const auto p = multiply(ring, a, b);
  EXPECT_EQ(p(0, 0), 19);
  EXPECT_EQ(p(0, 1), 22);
  EXPECT_EQ(p(1, 0), 43);
  EXPECT_EQ(p(1, 1), 50);
}

TEST(Ops, MinPlusProductIsShortestTwoHop) {
  const MinPlusSemiring sr;
  const auto inf = MinPlusSemiring::kInf;
  Matrix<std::int64_t> w(3, 3, inf);
  for (int i = 0; i < 3; ++i) w(i, i) = 0;
  w(0, 1) = 2;
  w(1, 2) = 3;
  const auto w2 = multiply(sr, w, w);
  EXPECT_EQ(w2(0, 2), 5);
  EXPECT_EQ(w2(2, 0), inf);
}

TEST(Ops, PowerBySquaring) {
  const IntRing ring;
  const auto m = random_matrix(5, 5, 6);
  auto manual = identity(ring, 5);
  for (int i = 0; i < 5; ++i) manual = multiply(ring, manual, m);
  EXPECT_EQ(power(ring, m, 5), manual);
  EXPECT_EQ(power(ring, m, 0), identity(ring, 5));
}

TEST(Ops, TraceSumsDiagonal) {
  const IntRing ring;
  Matrix<std::int64_t> m(3, 3, 9);
  m(0, 0) = 1; m(1, 1) = 2; m(2, 2) = 3;
  EXPECT_EQ(trace(ring, m), 6);
}

// ---------------------------------------------------------------------------
// Zero-skip soundness audit. multiply() skips left operands equal to
// zero(), and the sparse engine drops zero entries from the wire; both are
// sound only because zero() is a two-sided multiplicative annihilator in
// every semiring (the documented Semiring contract). The reference below
// evaluates EVERY term, skip-free; the randomized suites pin equivalence
// for each semiring, with the adversarial mixes the contract calls out —
// negative weights against infinities in the tropical semirings, where a
// mul that wrapped (inf + w < inf for w < 0) would corrupt exactly the
// skipped terms.
// ---------------------------------------------------------------------------

template <typename S>
Matrix<typename S::Value> multiply_no_skip(const S& s,
                                           const Matrix<typename S::Value>& a,
                                           const Matrix<typename S::Value>& b) {
  Matrix<typename S::Value> out(a.rows(), b.cols(), s.zero());
  for (int i = 0; i < a.rows(); ++i)
    for (int j = 0; j < b.cols(); ++j)
      for (int k = 0; k < a.cols(); ++k)
        out(i, j) = s.add(out(i, j), s.mul(a(i, k), b(k, j)));
  return out;
}

/// Mirror of the witness-carrying min-plus semiring dp_semiring_witness
/// multiplies under (distance, witness) with lexicographic min — its
/// zero contract is audited here because zero {inf, -1} must annihilate
/// even against entries {inf, w} with a planted witness, which compare
/// UNEQUAL to zero.
struct WitnessMinPlusAudit {
  struct Value {
    std::int64_t d = MinPlusSemiring::kInf;
    std::int64_t w = -1;
    friend bool operator==(const Value&, const Value&) = default;
  };
  [[nodiscard]] Value zero() const noexcept {
    return {MinPlusSemiring::kInf, -1};
  }
  [[nodiscard]] Value one() const noexcept { return {0, -1}; }
  [[nodiscard]] Value add(const Value& a, const Value& b) const noexcept {
    if (a.d != b.d) return a.d < b.d ? a : b;
    return a.w <= b.w ? a : b;
  }
  [[nodiscard]] Value mul(const Value& a, const Value& b) const noexcept {
    if (a.d >= MinPlusSemiring::kInf || b.d >= MinPlusSemiring::kInf)
      return {MinPlusSemiring::kInf, -1};
    return {a.d + b.d, a.w};
  }
};

TEST(ZeroSkipAudit, ZeroAnnihilatesInEverySemiring) {
  const IntRing zint;
  EXPECT_EQ(zint.mul(zint.zero(), -7), zint.zero());
  EXPECT_EQ(zint.mul(-7, zint.zero()), zint.zero());
  const BoolSemiring zb;
  EXPECT_EQ(zb.mul(zb.zero(), 1), zb.zero());
  EXPECT_EQ(zb.mul(1, zb.zero()), zb.zero());
  // The contract's named hazard: saturating min-plus with NEGATIVE weights.
  // mul(-w, inf) must be inf, not the wrapped inf - w (which would compare
  // less than infinity and win mins it has no business winning).
  const MinPlusSemiring zm;
  for (const std::int64_t w : {-1000, -1, 0, 1, 1000}) {
    EXPECT_EQ(zm.mul(w, zm.zero()), zm.zero());
    EXPECT_EQ(zm.mul(zm.zero(), w), zm.zero());
  }
  const PolyRing zp{5};
  EXPECT_EQ(zp.mul(zp.zero(), CappedPoly::monomial(5, 2)), zp.zero());
  EXPECT_EQ(zp.mul(CappedPoly::monomial(5, 2), zp.zero()), zp.zero());
  const WitnessMinPlusAudit zw;
  // {inf, w} carries a planted witness and compares UNEQUAL to zero, yet
  // must still annihilate through mul.
  const WitnessMinPlusAudit::Value lifted_inf{MinPlusSemiring::kInf, 7};
  EXPECT_EQ(zw.mul(lifted_inf, zw.one()), zw.zero());
  EXPECT_EQ(zw.mul(zw.one(), lifted_inf), zw.zero());
  EXPECT_EQ(zw.mul(zw.zero(), WitnessMinPlusAudit::Value{-5, 3}), zw.zero());
  EXPECT_EQ(zw.mul(WitnessMinPlusAudit::Value{-5, 3}, zw.zero()), zw.zero());
}

TEST(ZeroSkipAudit, IntRingSkipEquivalence) {
  const IntRing ring;
  Rng rng(601);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 1 + static_cast<int>(rng.next_below(12));
    Matrix<std::int64_t> a(n, n, 0), b(n, n, 0);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) {
        if (rng.chance(1, 2)) a(i, j) = rng.next_in(-100, 100);
        if (rng.chance(1, 2)) b(i, j) = rng.next_in(-100, 100);
      }
    EXPECT_EQ(multiply(ring, a, b), multiply_no_skip(ring, a, b));
  }
}

TEST(ZeroSkipAudit, MinPlusSkipEquivalenceWithNegativeWeights) {
  const MinPlusSemiring sr;
  constexpr auto inf = MinPlusSemiring::kInf;
  Rng rng(602);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 1 + static_cast<int>(rng.next_below(12));
    Matrix<std::int64_t> a(n, n, inf), b(n, n, inf);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) {
        if (rng.chance(2, 3)) a(i, j) = rng.next_in(-50, 50);
        if (rng.chance(2, 3)) b(i, j) = rng.next_in(-50, 50);
      }
    EXPECT_EQ(multiply(sr, a, b), multiply_no_skip(sr, a, b));
  }
}

TEST(ZeroSkipAudit, BooleanSkipEquivalence) {
  const BoolSemiring sr;
  Rng rng(603);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 1 + static_cast<int>(rng.next_below(16));
    Matrix<std::uint8_t> a(n, n, 0), b(n, n, 0);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) {
        a(i, j) = rng.chance(1, 3) ? 1 : 0;
        b(i, j) = rng.chance(1, 3) ? 1 : 0;
      }
    EXPECT_EQ(multiply(sr, a, b), multiply_no_skip(sr, a, b));
  }
}

TEST(ZeroSkipAudit, WitnessMinPlusSkipEquivalence) {
  const WitnessMinPlusAudit sr;
  constexpr auto inf = MinPlusSemiring::kInf;
  Rng rng(604);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 1 + static_cast<int>(rng.next_below(10));
    Matrix<WitnessMinPlusAudit::Value> a(n, n, sr.zero());
    Matrix<WitnessMinPlusAudit::Value> b(n, n, sr.zero());
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) {
        // The dp lift plants witness j on EVERY S entry, finite or not, so
        // infinite entries with non-(-1) witnesses are realistic inputs.
        a(i, j) = {rng.chance(2, 3) ? rng.next_in(-40, 40) : inf, j};
        if (rng.chance(2, 3)) b(i, j) = {rng.next_in(-40, 40), -1};
      }
    EXPECT_EQ(multiply(sr, a, b), multiply_no_skip(sr, a, b));
  }
}

TEST(ZeroSkipAudit, PolyRingSkipEquivalence) {
  const PolyRing ring{6};
  Rng rng(605);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 1 + static_cast<int>(rng.next_below(8));
    Matrix<CappedPoly> a(n, n, ring.zero()), b(n, n, ring.zero());
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) {
        if (rng.chance(1, 2))
          a(i, j) = CappedPoly::monomial(6, static_cast<int>(rng.next_below(6)));
        if (rng.chance(1, 2))
          b(i, j) = CappedPoly::monomial(6, static_cast<int>(rng.next_below(6)));
      }
    EXPECT_EQ(multiply(ring, a, b), multiply_no_skip(ring, a, b));
  }
}

TEST(Semirings, MinPlusLaws) {
  const MinPlusSemiring s;
  const auto inf = MinPlusSemiring::kInf;
  EXPECT_EQ(s.add(5, inf), 5);
  EXPECT_EQ(s.mul(5, inf), inf);
  EXPECT_EQ(s.mul(inf, inf), inf);
  EXPECT_EQ(s.add(s.zero(), 7), 7);
  EXPECT_EQ(s.mul(s.one(), 7), 7);
  EXPECT_TRUE(MinPlusSemiring::is_inf(inf));
  EXPECT_FALSE(MinPlusSemiring::is_inf(0));
}

TEST(Semirings, BooleanLaws) {
  const BoolSemiring s;
  EXPECT_EQ(s.add(0, 1), 1);
  EXPECT_EQ(s.mul(1, 1), 1);
  EXPECT_EQ(s.mul(1, 0), 0);
  EXPECT_EQ(s.zero(), 0);
  EXPECT_EQ(s.one(), 1);
}

class StrassenSizes : public ::testing::TestWithParam<int> {};

TEST_P(StrassenSizes, MatchesSchoolbook) {
  const int n = GetParam();
  const IntRing ring;
  const auto a = random_matrix(n, n, 10 + static_cast<std::uint64_t>(n));
  const auto b = random_matrix(n, n, 20 + static_cast<std::uint64_t>(n));
  EXPECT_EQ(strassen_multiply(ring, a, b, 4), multiply(ring, a, b));
}

INSTANTIATE_TEST_SUITE_P(Sizes, StrassenSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16, 31, 64, 100));

TEST(Strassen, CutoffDoesNotChangeResult) {
  const IntRing ring;
  const auto a = random_matrix(33, 33, 77);
  const auto b = random_matrix(33, 33, 78);
  EXPECT_EQ(strassen_multiply(ring, a, b, 1),
            strassen_multiply(ring, a, b, 64));
}

TEST(Poly, MonomialAndMinDegree) {
  const auto p = CappedPoly::monomial(5, 3);
  EXPECT_EQ(p.min_degree(), 3);
  EXPECT_EQ(p.coeff(3), 1);
  EXPECT_EQ(CappedPoly(5).min_degree(), -1);
  // Degrees at or above the cap truncate to zero.
  EXPECT_EQ(CappedPoly::monomial(5, 7).min_degree(), -1);
}

TEST(Poly, RingLaws) {
  const PolyRing r{6};
  const auto x2 = CappedPoly::monomial(6, 2);
  const auto x3 = CappedPoly::monomial(6, 3);
  EXPECT_EQ(r.mul(x2, x3), CappedPoly::monomial(6, 5));
  EXPECT_EQ(r.mul(x3, x3), CappedPoly(6));  // degree 6 truncated
  EXPECT_EQ(r.add(x2, r.sub(r.zero(), x2)), r.zero());
  EXPECT_EQ(r.mul(r.one(), x3), x3);
}

TEST(Poly, ConvolutionCoefficients) {
  const PolyRing r{4};
  // (1 + x)(1 + x) = 1 + 2x + x^2.
  CappedPoly p(4);
  p.coeff(0) = 1;
  p.coeff(1) = 1;
  const auto q = r.mul(p, p);
  EXPECT_EQ(q.coeff(0), 1);
  EXPECT_EQ(q.coeff(1), 2);
  EXPECT_EQ(q.coeff(2), 1);
  EXPECT_EQ(q.coeff(3), 0);
}

TEST(Poly, MinPlusEmbeddingHomomorphism) {
  // X^a * X^b = X^{a+b}: the Lemma 18 embedding turns min-plus mul into
  // polynomial multiplication.
  const PolyRing r{11};
  const auto pa = CappedPoly::monomial(11, 4);
  const auto pb = CappedPoly::monomial(11, 5);
  EXPECT_EQ(r.mul(pa, pb).min_degree(), 9);
  // Addition of candidates = min via lowest surviving degree.
  const auto sum = r.add(pa, pb);
  EXPECT_EQ(sum.min_degree(), 4);
}

TEST(Codecs, I64RoundTrip) {
  const I64Codec c;
  const std::vector<std::int64_t> vals{0, -5, MinPlusSemiring::kInf,
                                       std::int64_t{1} << 60};
  std::vector<EncodedWord> buf;
  c.encode_block(vals, buf);
  EXPECT_EQ(buf.size(), c.words_for(vals.size()));
  EXPECT_EQ(c.decode_block(buf.data(), vals.size()), vals);
}

TEST(Codecs, ByteRoundTrip) {
  const ByteCodec c;
  const std::vector<std::uint8_t> vals{1, 0, 1, 1};
  std::vector<EncodedWord> buf;
  c.encode_block(vals, buf);
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(c.decode_block(buf.data(), vals.size()), vals);
}

TEST(Codecs, PackedBoolRoundTripAndWidth) {
  const PackedBoolCodec c;
  // 64 entries fit one word, 65 need two — the "/ log n" packing.
  EXPECT_EQ(c.words_for(64), 1u);
  EXPECT_EQ(c.words_for(65), 2u);
  EXPECT_EQ(c.words_for(0), 0u);
  Rng rng(3);
  std::vector<std::uint8_t> vals(130);
  for (auto& v : vals) v = rng.chance(1, 2) ? 1 : 0;
  std::vector<EncodedWord> buf;
  c.encode_block(vals, buf);
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(c.decode_block(buf.data(), vals.size()), vals);
}

TEST(Codecs, PackedBoolAppendsAfterExistingWords) {
  const PackedBoolCodec c;
  std::vector<EncodedWord> buf{0xdeadbeef};
  c.encode_block({1, 0, 1}, buf);
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0], 0xdeadbeefu);
  EXPECT_EQ(c.decode_block(buf.data() + 1, 3),
            (std::vector<std::uint8_t>{1, 0, 1}));
}

TEST(Codecs, PolyRoundTripAndWidth) {
  const PolyCodec c{7};
  EXPECT_EQ(c.words_for(1), 7u);
  EXPECT_EQ(c.words_for(3), 21u);
  CappedPoly p(7);
  p.coeff(0) = -3;
  p.coeff(6) = 12345;
  CappedPoly q(7);
  q.coeff(2) = 9;
  std::vector<EncodedWord> buf;
  c.encode_block({p, q}, buf);
  ASSERT_EQ(buf.size(), 14u);
  const auto back = c.decode_block(buf.data(), 2);
  EXPECT_EQ(back[0], p);
  EXPECT_EQ(back[1], q);
}

}  // namespace
}  // namespace cca
