// Batched multiply engine: B independent products through shared
// supersteps must be element-identical to B sequential runs, and must cost
// strictly fewer total rounds than the B runs executed as independent
// queries (each on its own Network) — the multi-query serving scenario the
// batch engine exists for (cf. Le Gall, "Further Algebraic Algorithms in
// the Congested Clique": running multiple MM instances at once).
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "clique/network.hpp"
#include "core/apsp.hpp"
#include "core/counting.hpp"
#include "core/distance_product.hpp"
#include "core/engine.hpp"
#include "core/mm.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"
#include "matrix/codec.hpp"
#include "matrix/semiring.hpp"
#include "util/rng.hpp"

namespace cca {
namespace {

using core::MmKind;

Matrix<std::int64_t> random_matrix(int n, std::uint64_t seed,
                                   std::int64_t lo = 0,
                                   std::int64_t hi = 1000) {
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m(i, j) = rng.next_in(lo, hi);
  return m;
}

struct SeqRun {
  std::vector<Matrix<std::int64_t>> results;
  std::int64_t rounds = 0;  ///< summed over the B per-query networks
};

SeqRun run_sequential(const core::IntMmEngine& engine,
                      const std::vector<Matrix<std::int64_t>>& as,
                      const std::vector<Matrix<std::int64_t>>& bs) {
  SeqRun out;
  for (std::size_t b = 0; b < as.size(); ++b) {
    clique::Network net(engine.clique_n());
    out.results.push_back(engine.multiply(net, as[b], bs[b]));
    out.rounds += net.stats().rounds;
  }
  return out;
}

class BatchEngineSweep
    : public ::testing::TestWithParam<std::pair<MmKind, int>> {};

TEST_P(BatchEngineSweep, BatchOf8MatchesSequentialWithStrictlyFewerRounds) {
  const auto [kind, n] = GetParam();
  const std::size_t batch = 8;
  const core::IntMmEngine engine(kind, n);
  const int big = engine.clique_n();
  std::vector<Matrix<std::int64_t>> as, bs;
  for (std::size_t b = 0; b < batch; ++b) {
    as.push_back(core::pad_matrix(random_matrix(n, 2 * b + 1), big,
                                  std::int64_t{0}));
    bs.push_back(core::pad_matrix(random_matrix(n, 2 * b + 2), big,
                                  std::int64_t{0}));
  }

  const auto seq = run_sequential(engine, as, bs);

  clique::Network net(big);
  const auto got = engine.multiply_batch(
      net, std::span<const Matrix<std::int64_t>>(as),
      std::span<const Matrix<std::int64_t>>(bs));

  ASSERT_EQ(got.size(), batch);
  for (std::size_t b = 0; b < batch; ++b)
    EXPECT_EQ(got[b], seq.results[b]) << "product " << b;
  // The acceptance claim: shared supersteps beat B per-query runs outright.
  EXPECT_LT(net.stats().rounds, seq.rounds);
  // One schedule per superstep: the whole batch misses at most once per
  // distinct superstep shape.
  EXPECT_LE(net.stats().schedule_misses,
            net.stats().supersteps);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, BatchEngineSweep,
    ::testing::Values(std::pair<MmKind, int>{MmKind::Semiring3D, 27},
                      std::pair<MmKind, int>{MmKind::Semiring3D, 64},
                      std::pair<MmKind, int>{MmKind::Fast, 49}));

TEST(BatchEngine, BatchOfOneIsBitIdenticalToSingleProduct) {
  // The single-product entry points are batch-of-one wrappers; their
  // traffic must be byte-identical (the regression suite pins absolute
  // stats — this pins the equivalence for both engines directly).
  for (const auto kind : {MmKind::Semiring3D, MmKind::Fast}) {
    const core::IntMmEngine engine(kind, 27);
    const int big = engine.clique_n();
    const auto a =
        core::pad_matrix(random_matrix(27, 5), big, std::int64_t{0});
    const auto b =
        core::pad_matrix(random_matrix(27, 6), big, std::int64_t{0});
    clique::Network net1(big), net2(big);
    const auto single = engine.multiply(net1, a, b);
    const auto batch = engine.multiply_batch(
        net2, std::span<const Matrix<std::int64_t>>(&a, 1),
        std::span<const Matrix<std::int64_t>>(&b, 1));
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0], single);
    EXPECT_EQ(net1.stats().rounds, net2.stats().rounds);
    EXPECT_EQ(net1.stats().total_words, net2.stats().total_words);
    EXPECT_EQ(net1.stats().max_node_send, net2.stats().max_node_send);
    EXPECT_EQ(net1.stats().max_node_recv, net2.stats().max_node_recv);
  }
}

TEST(BatchEngine, SemiringBatchWithPackedBoolCodec) {
  // The batched layout must stay exact for the bit-packing codec whose
  // words_for is not additive (block offsets are computed in whole words).
  const int n = 27;
  const BoolSemiring sr;
  Rng rng(77);
  std::vector<Matrix<std::uint8_t>> as, bs;
  for (int b = 0; b < 3; ++b) {
    Matrix<std::uint8_t> a(n, n, 0), c(n, n, 0);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) {
        a(i, j) = static_cast<std::uint8_t>(rng.next_below(2));
        c(i, j) = static_cast<std::uint8_t>(rng.next_below(2));
      }
    as.push_back(std::move(a));
    bs.push_back(std::move(c));
  }
  clique::Network net(n);
  const auto got = core::mm_semiring_3d_batch(
      net, sr, PackedBoolCodec{}, std::span<const Matrix<std::uint8_t>>(as),
      std::span<const Matrix<std::uint8_t>>(bs));
  for (std::size_t b = 0; b < 3; ++b)
    EXPECT_EQ(got[b], multiply(sr, as[b], bs[b])) << "product " << b;
}

TEST(BatchDistanceProduct, WitnessBatchMatchesSequential) {
  const int n = 27;
  std::vector<Matrix<std::int64_t>> ss, ts;
  for (int b = 0; b < 4; ++b) {
    ss.push_back(random_matrix(n, 100 + b, 0, 50));
    ts.push_back(random_matrix(n, 200 + b, 0, 50));
  }
  clique::Network net_b(n);
  const auto got = core::dp_semiring_witness_batch(
      net_b, std::span<const Matrix<std::int64_t>>(ss),
      std::span<const Matrix<std::int64_t>>(ts));
  for (std::size_t b = 0; b < 4; ++b) {
    clique::Network net_s(n);
    const auto want = core::dp_semiring_witness(net_s, ss[b], ts[b]);
    EXPECT_EQ(got[b].dist, want.dist) << "product " << b;
    EXPECT_EQ(got[b].witness, want.witness) << "product " << b;
  }
}

TEST(BatchApsp, MultiQueryApspMatchesPerGraphRuns) {
  std::vector<Graph> gs;
  gs.push_back(random_weighted_graph(20, 0.3, 1, 50, 7));
  gs.push_back(random_weighted_graph(20, 0.4, 1, 30, 8));
  gs.push_back(random_weighted_graph(20, 0.5, 1, 9, 9));
  const auto batch = core::apsp_semiring_batch(
      std::span<const Graph>(gs.data(), gs.size()));
  ASSERT_EQ(batch.dist.size(), gs.size());
  std::int64_t seq_rounds = 0;
  for (std::size_t b = 0; b < gs.size(); ++b) {
    const auto want = core::apsp_semiring(gs[b]);
    EXPECT_EQ(batch.dist[b], want.dist) << "graph " << b;
    EXPECT_EQ(batch.next_hop[b], want.next_hop) << "graph " << b;
    seq_rounds += want.traffic.rounds;
  }
  // Shared supersteps beat the per-graph runs (equal-size queries: every
  // graph genuinely needs each shared squaring iteration).
  EXPECT_LT(batch.traffic.rounds, seq_rounds);
}

TEST(BatchApsp, SmallerGraphRidesAlongCorrectly) {
  // A smaller graph pads into the shared clique and may run more squaring
  // iterations than it needs (min-plus squaring is idempotent past
  // convergence); distances and routing tables must still be exact. Such a
  // ride-along can cost the batch extra rounds versus its solo run — the
  // batch-rounds win is claimed for equal-size queries only.
  std::vector<Graph> gs;
  gs.push_back(random_weighted_graph(20, 0.3, 1, 50, 7));
  gs.push_back(random_weighted_graph(11, 0.5, 1, 9, 9));
  const auto batch = core::apsp_semiring_batch(
      std::span<const Graph>(gs.data(), gs.size()));
  for (std::size_t b = 0; b < gs.size(); ++b) {
    const auto want = core::apsp_semiring(gs[b]);
    EXPECT_EQ(batch.dist[b], want.dist) << "graph " << b;
    EXPECT_EQ(batch.next_hop[b], want.next_hop) << "graph " << b;
  }
}

TEST(BatchCounting, TriangleBatchMatchesReference) {
  std::vector<Graph> gs;
  gs.push_back(gnp_random_graph(25, 0.3, 9));
  gs.push_back(gnp_random_graph(25, 0.5, 10));
  gs.push_back(gnp_random_graph(18, 0.4, 11));
  const auto batch = core::count_triangles_cc_batch(
      std::span<const Graph>(gs.data(), gs.size()), MmKind::Semiring3D);
  ASSERT_EQ(batch.counts.size(), gs.size());
  std::int64_t seq_rounds = 0;
  for (std::size_t b = 0; b < gs.size(); ++b) {
    EXPECT_EQ(batch.counts[b], ref_count_triangles(gs[b])) << "graph " << b;
    seq_rounds +=
        core::count_triangles_cc(gs[b], MmKind::Semiring3D).traffic.rounds;
  }
  EXPECT_LT(batch.traffic.rounds, seq_rounds);
}

}  // namespace
}  // namespace cca
