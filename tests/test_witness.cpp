// Tests for the Section 3.4 witness machinery: unique-witness recovery,
// O(1)-round verification, and the randomized general case (Lemma 21).
#include <gtest/gtest.h>

#include "clique/network.hpp"
#include "core/distance_product.hpp"
#include "core/witness.hpp"
#include "matrix/ops.hpp"
#include "matrix/semiring.hpp"
#include "util/rng.hpp"

namespace cca::core {
namespace {

constexpr std::int64_t kInf = MinPlusSemiring::kInf;

/// Oracle backed by the exact semiring product on the given clique.
DpOracle semiring_oracle(clique::Network& net) {
  return [&net](const Matrix<std::int64_t>& s, const Matrix<std::int64_t>& t) {
    return dp_semiring(net, s, t);
  };
}

Matrix<std::int64_t> random_bounded(int n, std::int64_t max_v,
                                    std::uint64_t seed) {
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, kInf);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (!rng.chance(1, 4)) m(i, j) = rng.next_in(0, max_v);
  return m;
}

TEST(UniqueWitness, RecoversUniqueWitnessesExactly) {
  // Construct an instance where every pair has a unique witness: distinct
  // powers of two as entries make every sum distinct.
  const int n = 8;
  Matrix<std::int64_t> s(n, n, kInf), t(n, n, kInf);
  for (int u = 0; u < n; ++u)
    for (int k = 0; k < n; ++k) {
      s(u, k) = (u + 1) * 100 + k * 10;
      t(k, u) = k;  // the witness minimising s(u,k)+t(k,v) is unique (k=0)
    }
  clique::Network net(n);
  const MinPlusSemiring sr;
  const auto p = multiply(sr, s, t);
  const auto q = unique_witness_candidates(s, t, p, semiring_oracle(net));
  for (int u = 0; u < n; ++u)
    for (int v = 0; v < n; ++v) {
      ASSERT_GE(q(u, v), 0);
      EXPECT_EQ(s(u, q(u, v)) + t(q(u, v), v), p(u, v));
    }
}

TEST(VerifyWitnesses, AcceptsValidRejectsInvalid) {
  const int n = 8;
  const auto s = random_bounded(n, 50, 1);
  const auto t = random_bounded(n, 50, 2);
  const MinPlusSemiring sr;
  const auto p = multiply(sr, s, t);

  // Build a genuinely valid witness matrix by brute force.
  Matrix<int> good(n, n, -1);
  for (int u = 0; u < n; ++u)
    for (int v = 0; v < n; ++v)
      for (int k = 0; k < n; ++k)
        if (s(u, k) < kInf && t(k, v) < kInf && s(u, k) + t(k, v) == p(u, v)) {
          good(u, v) = k;
          break;
        }

  clique::Network net(n);
  const auto ok = verify_witnesses(net, s, t, p, good);
  for (int u = 0; u < n; ++u)
    for (int v = 0; v < n; ++v)
      EXPECT_EQ(ok(u, v) != 0, good(u, v) >= 0) << u << "," << v;

  // Corrupt some entries: verification must reject exactly those.
  auto bad = good;
  int corrupted = 0;
  for (int u = 0; u < n && corrupted < 5; ++u)
    for (int v = 0; v < n && corrupted < 5; ++v) {
      if (bad(u, v) < 0) continue;
      const int other = (bad(u, v) + 1) % n;
      const bool still_valid = s(u, other) < kInf && t(other, v) < kInf &&
                               s(u, other) + t(other, v) == p(u, v);
      if (still_valid) continue;
      bad(u, v) = other;
      ++corrupted;
    }
  const auto ok2 = verify_witnesses(net, s, t, p, bad);
  for (int u = 0; u < n; ++u)
    for (int v = 0; v < n; ++v)
      if (bad(u, v) != good(u, v)) {
        EXPECT_EQ(ok2(u, v), 0);
      }
}

TEST(VerifyWitnesses, CostsConstantRounds) {
  const int n = 32;
  const auto s = random_bounded(n, 20, 3);
  const auto t = random_bounded(n, 20, 4);
  const MinPlusSemiring sr;
  const auto p = multiply(sr, s, t);
  Matrix<int> q(n, n, 0);
  clique::Network net(n);
  (void)verify_witnesses(net, s, t, p, q);
  EXPECT_LE(net.stats().rounds, 12);  // three relayed supersteps of O(n)/node
}

class GeneralWitnessSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneralWitnessSweep, FindsValidWitnessesForAllFinitePairs) {
  const auto seed = GetParam();
  const int n = 8;
  const auto s = random_bounded(n, 30, seed);
  const auto t = random_bounded(n, 30, seed + 1000);
  const MinPlusSemiring sr;
  const auto p = multiply(sr, s, t);

  clique::Network net(n);
  const auto w = dp_witnesses(net, s, t, p, semiring_oracle(net), seed, 4);
  for (int u = 0; u < n; ++u)
    for (int v = 0; v < n; ++v) {
      if (p(u, v) >= kInf) {
        EXPECT_EQ(w(u, v), -1);
        continue;
      }
      ASSERT_GE(w(u, v), 0) << "missing witness at " << u << "," << v;
      EXPECT_EQ(s(u, w(u, v)) + t(w(u, v), v), p(u, v));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralWitnessSweep,
                         ::testing::Values(11, 22, 33, 44));

TEST(GeneralWitness, HandlesManyEqualWitnesses) {
  // All-zero matrices: every k is a witness for every pair — the unique
  // path fails, sampling must still succeed.
  const int n = 8;
  Matrix<std::int64_t> z(n, n, 0);
  const MinPlusSemiring sr;
  const auto p = multiply(sr, z, z);
  clique::Network net(n);
  const auto w = dp_witnesses(net, z, z, p, semiring_oracle(net), 5, 4);
  for (int u = 0; u < n; ++u)
    for (int v = 0; v < n; ++v) {
      ASSERT_GE(w(u, v), 0);
      EXPECT_EQ(z(u, w(u, v)) + z(w(u, v), v), p(u, v));
    }
}

}  // namespace
}  // namespace cca::core
