// Zero-copy codec interfaces: encode_into must produce exactly the words
// encode_block appends (for every codec, at every offset pattern the mm
// algorithms use), and decode_into must reproduce decode_block without
// allocating fresh storage for reused scratch (PolyCodec reuses the
// coefficient buffers of cap-matching scratch entries).
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "core/mm.hpp"
#include "matrix/codec.hpp"
#include "matrix/poly.hpp"
#include "util/rng.hpp"

namespace cca {
namespace {

template <typename Codec>
void expect_encode_into_matches_block(const Codec& codec,
                                      const std::vector<typename Codec::Value>& vals) {
  std::vector<EncodedWord> block;
  codec.encode_block(vals, block);
  ASSERT_EQ(block.size(), codec.words_for(vals.size()));

  // encode_into must write every word it owns: poison the destination to
  // catch any read-modify-write dependence on pre-zeroed memory.
  std::vector<EncodedWord> into(codec.words_for(vals.size()),
                                0xDEADBEEFDEADBEEFull);
  codec.encode_into(std::span<const typename Codec::Value>(vals), into.data());
  EXPECT_EQ(into, block);

  // Round trip through both decode forms.
  const auto decoded = codec.decode_block(into.data(), vals.size());
  EXPECT_EQ(decoded, vals);
  std::vector<typename Codec::Value> scratch(vals.size());
  codec.decode_into(into.data(), vals.size(), scratch.data());
  EXPECT_EQ(scratch, vals);
}

TEST(Codecs, I64EncodeIntoMatchesEncodeBlock) {
  Rng rng(21);
  const I64Codec c;
  for (const std::size_t count : {0u, 1u, 7u, 64u, 129u}) {
    std::vector<std::int64_t> vals(count);
    for (auto& v : vals)
      v = static_cast<std::int64_t>(rng.next());  // full 64-bit patterns
    expect_encode_into_matches_block(c, vals);
  }
}

TEST(Codecs, ByteEncodeIntoMatchesEncodeBlock) {
  Rng rng(22);
  const ByteCodec c;
  for (const std::size_t count : {0u, 1u, 13u, 200u}) {
    std::vector<std::uint8_t> vals(count);
    for (auto& v : vals) v = static_cast<std::uint8_t>(rng.next_below(256));
    expect_encode_into_matches_block(c, vals);
  }
}

TEST(Codecs, PackedBoolEncodeIntoMatchesEncodeBlock) {
  Rng rng(23);
  const PackedBoolCodec c;
  // Straddle word boundaries: sub-word, exact-word, word+1 sizes.
  for (const std::size_t count : {0u, 1u, 63u, 64u, 65u, 130u, 1000u}) {
    std::vector<std::uint8_t> vals(count);
    for (auto& v : vals) v = static_cast<std::uint8_t>(rng.next_below(2));
    expect_encode_into_matches_block(c, vals);
  }
}

TEST(Codecs, PolyEncodeIntoMatchesEncodeBlock) {
  Rng rng(24);
  const PolyCodec c{5};
  for (const std::size_t count : {0u, 1u, 4u, 17u}) {
    std::vector<CappedPoly> vals;
    for (std::size_t i = 0; i < count; ++i) {
      CappedPoly p(5);
      for (int d = 0; d < 5; ++d)
        p.coeff(d) = static_cast<std::int64_t>(rng.next_in(-1000, 1000));
      vals.push_back(std::move(p));
    }
    expect_encode_into_matches_block(c, vals);
  }
}

TEST(Codecs, PolyDecodeIntoReusesScratchStorage) {
  Rng rng(25);
  const PolyCodec c{4};
  std::vector<CappedPoly> vals;
  for (int i = 0; i < 8; ++i) {
    CappedPoly p(4);
    for (int d = 0; d < 4; ++d) p.coeff(d) = rng.next_in(-50, 50);
    vals.push_back(std::move(p));
  }
  std::vector<EncodedWord> words;
  c.encode_block(vals, words);

  // Scratch with matching caps: the coefficient storage must be written in
  // place (same heap allocation before and after).
  std::vector<CappedPoly> scratch(8, CappedPoly(4));
  const std::int64_t* before = &scratch[0].coeff(0);
  c.decode_into(words.data(), 8, scratch.data());
  EXPECT_EQ(&scratch[0].coeff(0), before);
  EXPECT_EQ(scratch, vals);

  // Decoding over the same scratch again (the steady state of a reused
  // buffer) stays allocation-stable and correct.
  const std::int64_t* stable = &scratch[3].coeff(0);
  c.decode_into(words.data(), 8, scratch.data());
  EXPECT_EQ(&scratch[3].coeff(0), stable);
  EXPECT_EQ(scratch, vals);

  // Cap-mismatched scratch (default-constructed, cap 0) is upgraded.
  std::vector<CappedPoly> fresh(8);
  c.decode_into(words.data(), 8, fresh.data());
  EXPECT_EQ(fresh, vals);
}

// ---------------------------------------------------------------------------
// Multi-block message decode offsets. decode_entries_into assumes
// words_for(prior_entries) is the exact word offset of block 2 — true for
// every codec at exactly two blocks (the offset IS words_for(block 1)),
// including PackedBoolCodec at non-64-multiple entry counts, where
// words_for is NOT additive across three or more blocks. The batched
// layouts therefore use decode_entries_at with explicit word offsets;
// both forms are pinned here by randomized round-trips.
// ---------------------------------------------------------------------------

template <typename Codec, typename Gen>
void expect_two_block_roundtrip(const Codec& codec, Gen&& gen, std::size_t e1,
                                std::size_t e2) {
  using V = typename Codec::Value;
  std::vector<V> block1(e1), block2(e2);
  for (auto& v : block1) v = gen();
  for (auto& v : block2) v = gen();

  // The mm staging layout: both blocks in one span, block 2 at word offset
  // words_for(e1).
  std::vector<EncodedWord> msg(codec.words_for(e1) + codec.words_for(e2),
                               0xABABABABABABABABull);
  codec.encode_into(std::span<const V>(block1), msg.data());
  codec.encode_into(std::span<const V>(block2),
                    msg.data() + codec.words_for(e1));

  // decode_entries_into with prior_entries = e1 (the production call shape
  // in mm_semiring_3d's step 2 and mm_fast_bilinear's assembly).
  std::vector<V> got1(e1), got2(e2);
  const std::span<const EncodedWord> view(msg);
  core::detail::decode_entries_into(codec, view, 0, e1, got1.data());
  core::detail::decode_entries_into(codec, view, e1, e2, got2.data());
  EXPECT_EQ(got1, block1) << "e1=" << e1 << " e2=" << e2;
  EXPECT_EQ(got2, block2) << "e1=" << e1 << " e2=" << e2;

  // decode_entries_at with the explicit word offset (the batched layouts).
  std::vector<V> at1(e1), at2(e2);
  core::detail::decode_entries_at(codec, view, 0, e1, at1.data());
  core::detail::decode_entries_at(codec, view, codec.words_for(e1), e2,
                                  at2.data());
  EXPECT_EQ(at1, block1);
  EXPECT_EQ(at2, block2);
}

TEST(Codecs, TwoBlockRoundTripI64) {
  Rng rng(31);
  const I64Codec c;
  for (int trial = 0; trial < 20; ++trial) {
    const auto e1 = static_cast<std::size_t>(rng.next_in(1, 80));
    const auto e2 = static_cast<std::size_t>(rng.next_in(1, 80));
    expect_two_block_roundtrip(
        c, [&] { return static_cast<std::int64_t>(rng.next()); }, e1, e2);
  }
}

TEST(Codecs, TwoBlockRoundTripByte) {
  Rng rng(32);
  const ByteCodec c;
  for (int trial = 0; trial < 20; ++trial) {
    const auto e1 = static_cast<std::size_t>(rng.next_in(1, 80));
    const auto e2 = static_cast<std::size_t>(rng.next_in(1, 80));
    expect_two_block_roundtrip(
        c, [&] { return static_cast<std::uint8_t>(rng.next_below(256)); }, e1,
        e2);
  }
}

TEST(Codecs, TwoBlockRoundTripPackedBoolNonWordMultiples) {
  Rng rng(33);
  const PackedBoolCodec c;
  // Deliberately straddle word boundaries: non-64-multiple first blocks
  // put block 2 at a padded (rounded-up) word offset.
  for (const std::size_t e1 : {1u, 7u, 49u, 63u, 64u, 65u, 100u, 130u}) {
    for (int trial = 0; trial < 5; ++trial) {
      const auto e2 = static_cast<std::size_t>(rng.next_in(1, 150));
      expect_two_block_roundtrip(
          c, [&] { return static_cast<std::uint8_t>(rng.next_below(2)); }, e1,
          e2);
    }
  }
}

TEST(Codecs, TwoBlockRoundTripPoly) {
  Rng rng(34);
  const PolyCodec c{3};
  auto gen = [&] {
    CappedPoly p(3);
    for (int d = 0; d < 3; ++d)
      p.coeff(d) = static_cast<std::int64_t>(rng.next_in(-1000, 1000));
    return p;
  };
  for (int trial = 0; trial < 10; ++trial) {
    const auto e1 = static_cast<std::size_t>(rng.next_in(1, 20));
    const auto e2 = static_cast<std::size_t>(rng.next_in(1, 20));
    expect_two_block_roundtrip(c, gen, e1, e2);
  }
}

TEST(Codecs, PackedBoolWordsForIsNotAdditive) {
  // The documented reason three-or-more packed blocks need explicit word
  // offsets: words_for(a + b) < words_for(a) + words_for(b) at non-64
  // multiples, so "prior entries" under-computes the third block's offset.
  const PackedBoolCodec c;
  EXPECT_LT(c.words_for(70 + 70), c.words_for(70) + c.words_for(70));
}

TEST(Codecs, EncodeIntoAtBlockOffsets) {
  // The mm message layout: two blocks in one staged span, the second at
  // words_for(first block). encode_into at an offset must agree with two
  // consecutive encode_block appends.
  Rng rng(26);
  const PackedBoolCodec c;
  std::vector<std::uint8_t> a(70), b(70);
  for (auto& v : a) v = static_cast<std::uint8_t>(rng.next_below(2));
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.next_below(2));

  std::vector<EncodedWord> blocks;
  c.encode_block(a, blocks);
  c.encode_block(b, blocks);

  std::vector<EncodedWord> spans(c.words_for(70) * 2, 0xFFFFFFFFFFFFFFFFull);
  c.encode_into(std::span<const std::uint8_t>(a), spans.data());
  c.encode_into(std::span<const std::uint8_t>(b),
                spans.data() + c.words_for(70));
  EXPECT_EQ(spans, blocks);
}

}  // namespace
}  // namespace cca
