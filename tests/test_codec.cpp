// Zero-copy codec interfaces: encode_into must produce exactly the words
// encode_block appends (for every codec, at every offset pattern the mm
// algorithms use), and decode_into must reproduce decode_block without
// allocating fresh storage for reused scratch (PolyCodec reuses the
// coefficient buffers of cap-matching scratch entries).
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "matrix/codec.hpp"
#include "matrix/poly.hpp"
#include "util/rng.hpp"

namespace cca {
namespace {

template <typename Codec>
void expect_encode_into_matches_block(const Codec& codec,
                                      const std::vector<typename Codec::Value>& vals) {
  std::vector<EncodedWord> block;
  codec.encode_block(vals, block);
  ASSERT_EQ(block.size(), codec.words_for(vals.size()));

  // encode_into must write every word it owns: poison the destination to
  // catch any read-modify-write dependence on pre-zeroed memory.
  std::vector<EncodedWord> into(codec.words_for(vals.size()),
                                0xDEADBEEFDEADBEEFull);
  codec.encode_into(std::span<const typename Codec::Value>(vals), into.data());
  EXPECT_EQ(into, block);

  // Round trip through both decode forms.
  const auto decoded = codec.decode_block(into.data(), vals.size());
  EXPECT_EQ(decoded, vals);
  std::vector<typename Codec::Value> scratch(vals.size());
  codec.decode_into(into.data(), vals.size(), scratch.data());
  EXPECT_EQ(scratch, vals);
}

TEST(Codecs, I64EncodeIntoMatchesEncodeBlock) {
  Rng rng(21);
  const I64Codec c;
  for (const std::size_t count : {0u, 1u, 7u, 64u, 129u}) {
    std::vector<std::int64_t> vals(count);
    for (auto& v : vals)
      v = static_cast<std::int64_t>(rng.next());  // full 64-bit patterns
    expect_encode_into_matches_block(c, vals);
  }
}

TEST(Codecs, ByteEncodeIntoMatchesEncodeBlock) {
  Rng rng(22);
  const ByteCodec c;
  for (const std::size_t count : {0u, 1u, 13u, 200u}) {
    std::vector<std::uint8_t> vals(count);
    for (auto& v : vals) v = static_cast<std::uint8_t>(rng.next_below(256));
    expect_encode_into_matches_block(c, vals);
  }
}

TEST(Codecs, PackedBoolEncodeIntoMatchesEncodeBlock) {
  Rng rng(23);
  const PackedBoolCodec c;
  // Straddle word boundaries: sub-word, exact-word, word+1 sizes.
  for (const std::size_t count : {0u, 1u, 63u, 64u, 65u, 130u, 1000u}) {
    std::vector<std::uint8_t> vals(count);
    for (auto& v : vals) v = static_cast<std::uint8_t>(rng.next_below(2));
    expect_encode_into_matches_block(c, vals);
  }
}

TEST(Codecs, PolyEncodeIntoMatchesEncodeBlock) {
  Rng rng(24);
  const PolyCodec c{5};
  for (const std::size_t count : {0u, 1u, 4u, 17u}) {
    std::vector<CappedPoly> vals;
    for (std::size_t i = 0; i < count; ++i) {
      CappedPoly p(5);
      for (int d = 0; d < 5; ++d)
        p.coeff(d) = static_cast<std::int64_t>(rng.next_in(-1000, 1000));
      vals.push_back(std::move(p));
    }
    expect_encode_into_matches_block(c, vals);
  }
}

TEST(Codecs, PolyDecodeIntoReusesScratchStorage) {
  Rng rng(25);
  const PolyCodec c{4};
  std::vector<CappedPoly> vals;
  for (int i = 0; i < 8; ++i) {
    CappedPoly p(4);
    for (int d = 0; d < 4; ++d) p.coeff(d) = rng.next_in(-50, 50);
    vals.push_back(std::move(p));
  }
  std::vector<EncodedWord> words;
  c.encode_block(vals, words);

  // Scratch with matching caps: the coefficient storage must be written in
  // place (same heap allocation before and after).
  std::vector<CappedPoly> scratch(8, CappedPoly(4));
  const std::int64_t* before = &scratch[0].coeff(0);
  c.decode_into(words.data(), 8, scratch.data());
  EXPECT_EQ(&scratch[0].coeff(0), before);
  EXPECT_EQ(scratch, vals);

  // Decoding over the same scratch again (the steady state of a reused
  // buffer) stays allocation-stable and correct.
  const std::int64_t* stable = &scratch[3].coeff(0);
  c.decode_into(words.data(), 8, scratch.data());
  EXPECT_EQ(&scratch[3].coeff(0), stable);
  EXPECT_EQ(scratch, vals);

  // Cap-mismatched scratch (default-constructed, cap 0) is upgraded.
  std::vector<CappedPoly> fresh(8);
  c.decode_into(words.data(), 8, fresh.data());
  EXPECT_EQ(fresh, vals);
}

TEST(Codecs, EncodeIntoAtBlockOffsets) {
  // The mm message layout: two blocks in one staged span, the second at
  // words_for(first block). encode_into at an offset must agree with two
  // consecutive encode_block appends.
  Rng rng(26);
  const PackedBoolCodec c;
  std::vector<std::uint8_t> a(70), b(70);
  for (auto& v : a) v = static_cast<std::uint8_t>(rng.next_below(2));
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.next_below(2));

  std::vector<EncodedWord> blocks;
  c.encode_block(a, blocks);
  c.encode_block(b, blocks);

  std::vector<EncodedWord> spans(c.words_for(70) * 2, 0xFFFFFFFFFFFFFFFFull);
  c.encode_into(std::span<const std::uint8_t>(a), spans.data());
  c.encode_into(std::span<const std::uint8_t>(b),
                spans.data() + c.words_for(70));
  EXPECT_EQ(spans, blocks);
}

}  // namespace
}  // namespace cca
