// Tests for the prior-work baselines: Dolev et al. subgraph detection and
// the naive learn-everything APSP.
#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/counting.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"

namespace cca::core {
namespace {

struct DolevCase {
  int n;
  int k;
  double p;
  std::uint64_t seed;
};

class DolevSweep : public ::testing::TestWithParam<DolevCase> {};

TEST_P(DolevSweep, AgreesWithReference) {
  const auto c = GetParam();
  const auto g = gnp_random_graph(c.n, c.p, c.seed);
  EXPECT_EQ(detect_k_cycle_dolev(g, c.k).found, ref_has_k_cycle(g, c.k));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DolevSweep,
    ::testing::Values(DolevCase{16, 3, 0.15, 1}, DolevCase{16, 4, 0.15, 2},
                      DolevCase{32, 3, 0.08, 3}, DolevCase{32, 4, 0.08, 4},
                      DolevCase{32, 5, 0.08, 5}, DolevCase{64, 3, 0.04, 6},
                      DolevCase{64, 4, 0.05, 7}, DolevCase{64, 5, 0.05, 8}));

TEST(Dolev, PlantedCyclesFound) {
  for (const int k : {3, 4, 5, 6}) {
    const auto g =
        planted_cycle_graph(40, k, 0.0, 100 + static_cast<std::uint64_t>(k));
    EXPECT_TRUE(detect_k_cycle_dolev(g, k).found) << k;
  }
}

TEST(Dolev, NegativesOnStructuredGraphs) {
  EXPECT_FALSE(detect_k_cycle_dolev(binary_tree(30), 3).found);
  EXPECT_FALSE(detect_k_cycle_dolev(binary_tree(30), 4).found);
  EXPECT_FALSE(detect_k_cycle_dolev(petersen_graph(), 3).found);
  EXPECT_FALSE(detect_k_cycle_dolev(petersen_graph(), 4).found);
  EXPECT_TRUE(detect_k_cycle_dolev(petersen_graph(), 5).found);
  EXPECT_FALSE(detect_k_cycle_dolev(random_bipartite_graph(12, 0.4, 5), 3).found);
}

TEST(Dolev, DirectedCycles) {
  const auto ring = cycle_graph(12, /*directed=*/true);
  EXPECT_TRUE(detect_k_cycle_dolev(ring, 12).found);
  EXPECT_FALSE(detect_k_cycle_dolev(ring, 3).found);
}

TEST(Dolev, KLargerThanN) {
  EXPECT_FALSE(detect_k_cycle_dolev(complete_graph(4), 5).found);
}

TEST(ApspNaive, MatchesReference) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto g = random_weighted_graph(20, 0.25, 1, 30, seed);
    EXPECT_EQ(apsp_naive_learn(g).dist, ref_apsp(g));
  }
  const auto dg = random_weighted_graph(16, 0.3, 1, 9, 4, /*directed=*/true);
  EXPECT_EQ(apsp_naive_learn(dg).dist, ref_apsp(dg));
}

TEST(ApspNaive, RoundsScaleWithEdges) {
  // Learning m weighted edges costs ~6m/n rounds; dense graphs pay ~Theta(n).
  const auto sparse = gnp_random_graph(64, 0.05, 5);
  const auto dense = gnp_random_graph(64, 0.6, 6);
  const auto r_sparse = apsp_naive_learn(sparse);
  const auto r_dense = apsp_naive_learn(dense);
  EXPECT_GT(r_dense.traffic.rounds, 4 * r_sparse.traffic.rounds);
}

TEST(Baselines, SemiringEngineIsTheDolevCountingBaseline) {
  // Table 1's prior-work counting bound: the 3D partition algorithm.
  const auto g = gnp_random_graph(27, 0.2, 9);
  const auto prior = count_triangles_cc(g, MmKind::Semiring3D);
  EXPECT_EQ(prior.count, ref_count_triangles(g));
}

}  // namespace
}  // namespace cca::core
