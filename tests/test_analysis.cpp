// The concurrency & lifetime contract checker (util/analysis.hpp).
//
// Negative coverage deliberately violates each instrumented contract and
// asserts the typed cca::ContractViolation plus the recorded report entry
// (which contract, which src/dst, which superstep): cross-source staging
// from a parallel region, deliver() inside parallel_for, and staged/inbox
// spans used across their generation bumps. Positive coverage runs a full
// APSP (and the batched triangle counter) with checking enabled and
// asserts a zero-violation report AND bit-identical traffic to the
// unchecked run — the analysis layer observes, never perturbs.
//
// Every test runs in ContractFailureMode::Throw with an explicit
// ScopedChecking toggle, so the suite is meaningful in ALL build
// configurations (plain, CCA_SANITIZE, CCA_TSAN, CCA_CHECKED — the macro
// only changes the process default of the same runtime flag).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "clique/network.hpp"
#include "core/apsp.hpp"
#include "core/counting.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "util/analysis.hpp"
#include "util/contracts.hpp"
#include "util/parallel.hpp"

namespace cca {
namespace {

using clique::Network;
using clique::Word;

// Exercise real worker threads even on single-core machines: request four
// workers before the first parallel_for freezes the count. overwrite=0
// keeps an explicit CCA_THREADS (e.g. the CI serial leg) authoritative —
// thread-count-dependent tests skip themselves when only one worker runs.
[[maybe_unused]] const int kForcedThreads = [] {
  setenv("CCA_THREADS", "4", /*overwrite=*/0);
  return 0;
}();

/// Throw mode + checking on + a clean report, restored on scope exit.
struct CheckedThrowScope {
  CheckedThrowScope() {
    set_contract_failure_mode(ContractFailureMode::Throw);
    analysis::Report::instance().clear();
  }
  ~CheckedThrowScope() {
    analysis::Report::instance().clear();
    set_contract_failure_mode(ContractFailureMode::Abort);
  }
  analysis::ScopedChecking checking{true};
};

// ---------------------------------------------------------------------------
// Report plumbing.

TEST(AnalysisReport, RecordsAndFormatsViolations) {
  CheckedThrowScope scope;
  auto& report = analysis::Report::instance();
  EXPECT_EQ(report.size(), 0u);
  report.record({analysis::ContractKind::CrossSourceStaging, 3, -1, 7,
                 "synthetic"});
  ASSERT_EQ(report.size(), 1u);
  const auto vs = report.violations();
  EXPECT_EQ(vs[0].kind, analysis::ContractKind::CrossSourceStaging);
  EXPECT_EQ(vs[0].src, 3);
  EXPECT_EQ(vs[0].superstep, 7);
  const auto text = report.to_string();
  EXPECT_NE(text.find("cross-source-staging"), std::string::npos);
  EXPECT_NE(text.find("src=3"), std::string::npos);
  EXPECT_NE(text.find("superstep=7"), std::string::npos);
  report.clear();
  EXPECT_EQ(report.size(), 0u);
}

TEST(AnalysisReport, FailOutsideRegionThrowsTyped) {
  CheckedThrowScope scope;
  EXPECT_THROW(
      analysis::fail({analysis::ContractKind::StaleInboxSpan, 1, 2, 0, "x"}),
      ContractViolation);
  EXPECT_EQ(analysis::Report::instance().count(
                analysis::ContractKind::StaleInboxSpan),
            1u);
  EXPECT_FALSE(analysis::has_pending());
}

// ---------------------------------------------------------------------------
// Contract: deliver()/discard_staged() must not run inside parallel_for.
// A single-iteration region runs on the calling thread in every thread
// configuration, so the typed throw propagates deterministically.

TEST(AnalysisChecker, DeliverInsideParallelForFaultsTyped) {
  CheckedThrowScope scope;
  Network net(4);
  net.send(0, 1, 42);
  bool threw = false;
  parallel_for(0, 1, [&](int) {
    try {
      // lint:allow(deliver-in-parallel): the violation under test
      net.deliver();
    } catch (const ContractViolation&) {
      threw = true;
    }
  });
  EXPECT_TRUE(threw);
  const auto vs = analysis::Report::instance().violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].kind, analysis::ContractKind::DeliverInParallel);
  EXPECT_EQ(vs[0].superstep, 0);
  // The phase change was stopped: the staged word is still deliverable.
  net.deliver();
  ASSERT_EQ(net.inbox(1, 0).size(), 1u);
  EXPECT_EQ(net.inbox(1, 0)[0], Word{42});
}

TEST(AnalysisChecker, DiscardStagedInsideParallelForFaultsTyped) {
  CheckedThrowScope scope;
  Network net(4);
  net.send(0, 1, 7);
  bool threw = false;
  parallel_for(0, 1, [&](int) {
    try {
      // lint:allow(deliver-in-parallel): the violation under test
      net.discard_staged();
    } catch (const ContractViolation&) {
      threw = true;
    }
  });
  EXPECT_TRUE(threw);
  EXPECT_EQ(analysis::Report::instance().count(
                analysis::ContractKind::DeliverInParallel),
            1u);
  net.discard_staged();  // serial discard stays legal
}

// ---------------------------------------------------------------------------
// Contract: per-source staging exclusivity under parallel_for. Every
// iteration staging for source 0 puts two distinct worker threads on one
// source within one region epoch; the detection is deferred off the
// worker threads and surfaces as the typed violation at the next serial
// checkpoint (here: the deliver that would have shipped the racy bytes).
// A test-side mutex serialises the physical buffer writes, so the test is
// TSan-clean by construction — what remains is the pure CONTRACT
// violation (two threads of one region owning one source), the latent
// hazard the tracker catches even on interleavings TSan cannot fault.

TEST(AnalysisChecker, CrossSourceStagingFaultsAtNextDeliver) {
  if (parallel_workers() < 2)
    GTEST_SKIP() << "needs >= 2 workers (CCA_THREADS=1 leg runs serial)";
  CheckedThrowScope scope;
  Network net(8);
  std::mutex mu;
  // 64 iterations across >= 2 workers, all staging from src 0: at least
  // one worker sees another's claim on the source slot.
  parallel_for(0, 64, [&](int i) {
    const std::lock_guard<std::mutex> lock(mu);
    // lint:allow(parallel-staging-src): the violation under test
    net.send(0, 1 + (i % 7), static_cast<Word>(i));
  });
  EXPECT_TRUE(analysis::has_pending());
  EXPECT_THROW(net.deliver(), ContractViolation);
  const auto& report = analysis::Report::instance();
  ASSERT_GE(report.count(analysis::ContractKind::CrossSourceStaging), 1u);
  const auto vs = report.violations();
  EXPECT_EQ(vs[0].kind, analysis::ContractKind::CrossSourceStaging);
  EXPECT_EQ(vs[0].src, 0);
  EXPECT_EQ(vs[0].superstep, 0);
  net.discard_staged();
}

TEST(AnalysisChecker, DistinctSourceParallelStagingIsClean) {
  CheckedThrowScope scope;
  Network net(8);
  // The documented-legal pattern: every iteration stages from its own src.
  parallel_for(0, 8, [&](int src) {
    for (int dst = 0; dst < 8; ++dst)
      if (dst != src) net.send(src, dst, static_cast<Word>(src * 8 + dst));
  });
  EXPECT_FALSE(analysis::has_pending());
  net.deliver();
  EXPECT_EQ(analysis::Report::instance().size(), 0u);
  EXPECT_EQ(net.inbox(1, 0).size(), 1u);
}

TEST(AnalysisChecker, SameSourceAcrossSuccessiveRegionsIsClean) {
  CheckedThrowScope scope;
  Network net(4);
  // Distinct parallel_for calls may repartition sources over different
  // workers; only SAME-epoch conflicts violate the contract.
  for (int round = 0; round < 3; ++round)
    parallel_for(0, 4, [&](int src) {
      net.send(src, (src + 1) % 4, static_cast<Word>(round));
    });
  EXPECT_FALSE(analysis::has_pending());
  net.deliver();
  EXPECT_EQ(analysis::Report::instance().size(), 0u);
}

// ---------------------------------------------------------------------------
// Contract: staged spans die at the next same-source staging call or at
// deliver(); inbox views die at deliver(). The leases catch the stale use
// AT THE USE SITE with the typed violation.

TEST(AnalysisLease, StagedSpanAcrossSameSourceStagingFaults) {
  CheckedThrowScope scope;
  Network net(4);
  analysis::StagedLease<Network> lease(net, 0, 1, 3);
  lease.span()[0] = 11;  // live use is fine
  net.send(0, 2, 99);    // same-source staging bumps src 0's generation
  EXPECT_TRUE(lease.stale());
  EXPECT_THROW((void)lease.span(), ContractViolation);
  const auto vs = analysis::Report::instance().violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].kind, analysis::ContractKind::StaleStagedSpan);
  EXPECT_EQ(vs[0].src, 0);
  EXPECT_EQ(vs[0].dst, 1);
  net.discard_staged();
}

TEST(AnalysisLease, StagedSpanOtherSourceStagingStaysValid) {
  CheckedThrowScope scope;
  Network net(4);
  analysis::StagedLease<Network> lease(net, 0, 1, 2);
  net.send(2, 3, 5);  // different source: src 0's generation is untouched
  EXPECT_FALSE(lease.stale());
  lease.span()[1] = 7;
  net.deliver();
  EXPECT_EQ(net.inbox(1, 0).size(), 2u);
  EXPECT_EQ(net.inbox(1, 0)[1], Word{7});
  EXPECT_EQ(analysis::Report::instance().size(), 0u);
}

TEST(AnalysisLease, StagedSpanAcrossDeliverFaults) {
  CheckedThrowScope scope;
  Network net(4);
  analysis::StagedLease<Network> lease(net, 0, 1, 1);
  lease.span()[0] = 1;
  net.deliver();
  EXPECT_THROW((void)lease.span(), ContractViolation);
  EXPECT_EQ(analysis::Report::instance().count(
                analysis::ContractKind::StaleStagedSpan),
            1u);
}

TEST(AnalysisLease, InboxViewAcrossDeliverFaults) {
  CheckedThrowScope scope;
  Network net(4);
  net.send(0, 1, 21);
  net.deliver();
  analysis::InboxLease<Network> lease(net, 1, 0);
  ASSERT_EQ(lease.span().size(), 1u);  // live view reads fine
  EXPECT_EQ(lease.span()[0], Word{21});
  // Staging does NOT invalidate inbox views (only deliver rebuilds the
  // arena) — the zero-copy forward pattern of four_cycle.cpp step 2.
  net.send(1, 2, lease.span()[0]);
  net.deliver();
  EXPECT_TRUE(lease.stale());
  EXPECT_THROW((void)lease.span(), ContractViolation);
  const auto vs = analysis::Report::instance().violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].kind, analysis::ContractKind::StaleInboxSpan);
  EXPECT_EQ(vs[0].src, 0);
  EXPECT_EQ(vs[0].dst, 1);
  EXPECT_EQ(vs[0].superstep, 2);
}

// ---------------------------------------------------------------------------
// Positive: instrumented full runs report zero violations, and checking
// never perturbs the accounting.

TEST(AnalysisPositive, FullApspUnderCheckingIsCleanAndBitIdentical) {
  const auto g = random_weighted_graph(24, 0.3, /*min_w=*/1, /*max_w=*/9,
                                       /*seed=*/7);
  const auto unchecked = [&] {
    analysis::ScopedChecking off(false);
    return core::apsp_semiring(g);
  }();
  CheckedThrowScope scope;
  const auto checked = core::apsp_semiring(g);
  EXPECT_EQ(analysis::Report::instance().size(), 0u);
  EXPECT_FALSE(analysis::has_pending());
  // The checker observes; the engine's results and charges are identical.
  EXPECT_EQ(checked.dist, unchecked.dist);
  EXPECT_EQ(checked.traffic.rounds, unchecked.traffic.rounds);
  EXPECT_EQ(checked.traffic.total_words, unchecked.traffic.total_words);
  EXPECT_EQ(checked.traffic.supersteps, unchecked.traffic.supersteps);
}

TEST(AnalysisPositive, TriangleCountUnderCheckingIsClean) {
  const auto g = gnp_random_graph(20, 0.4, /*seed=*/11);
  CheckedThrowScope scope;
  const auto out = core::count_triangles_cc(g);
  EXPECT_EQ(analysis::Report::instance().size(), 0u);
  analysis::ScopedChecking off(false);
  const auto ref = core::count_triangles_cc(g);
  EXPECT_EQ(out.count, ref.count);
  EXPECT_EQ(out.traffic.rounds, ref.traffic.rounds);
}

}  // namespace
}  // namespace cca
