// Tests for the bilinear-algorithm machinery (paper Section 2.2 /
// Lemma 10): Brent-equation verification, tensor powers, and the sequential
// reference application.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "matrix/bilinear.hpp"
#include "matrix/ops.hpp"
#include "matrix/poly.hpp"
#include "matrix/semiring.hpp"
#include "util/rng.hpp"

namespace cca {
namespace {

Matrix<std::int64_t> random_matrix(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m(i, j) = rng.next_in(-9, 9);
  return m;
}

TEST(Bilinear, StrassenSatisfiesBrentEquations) {
  EXPECT_TRUE(verify_bilinear(strassen_algorithm()));
}

TEST(Bilinear, SchoolbookSatisfiesBrentEquations) {
  EXPECT_TRUE(verify_bilinear(schoolbook_algorithm(1)));
  EXPECT_TRUE(verify_bilinear(schoolbook_algorithm(2)));
  EXPECT_TRUE(verify_bilinear(schoolbook_algorithm(3)));
}

TEST(Bilinear, BrokenAlgorithmFailsVerification) {
  auto alg = strassen_algorithm();
  alg.lambda[0][0].coeff = -alg.lambda[0][0].coeff;
  EXPECT_FALSE(verify_bilinear(alg));
}

TEST(Bilinear, TensorSquareOfStrassenVerifies) {
  const auto alg = tensor_power(strassen_algorithm(), 2);
  EXPECT_EQ(alg.d, 4);
  EXPECT_EQ(alg.m, 49);
  EXPECT_TRUE(verify_bilinear(alg));
}

TEST(Bilinear, MixedTensorVerifies) {
  const auto alg = tensor(strassen_algorithm(), schoolbook_algorithm(2));
  EXPECT_EQ(alg.d, 4);
  EXPECT_EQ(alg.m, 7 * 8);
  EXPECT_TRUE(verify_bilinear(alg));
}

TEST(Bilinear, SigmaExponents) {
  EXPECT_NEAR(strassen_algorithm().sigma(), std::log2(7.0), 1e-12);
  EXPECT_NEAR(schoolbook_algorithm(3).sigma(), 3.0, 1e-12);
  const auto deep = tensor_power(strassen_algorithm(), 3);
  EXPECT_NEAR(deep.sigma(), std::log2(7.0), 1e-12);  // preserved by powers
}

class ApplyBilinearDepths : public ::testing::TestWithParam<int> {};

TEST_P(ApplyBilinearDepths, MatchesSchoolbookProduct) {
  const int depth = GetParam();
  const auto alg = tensor_power(strassen_algorithm(), depth);
  const IntRing ring;
  const auto a = random_matrix(alg.d, 31 + static_cast<std::uint64_t>(depth));
  const auto b = random_matrix(alg.d, 41 + static_cast<std::uint64_t>(depth));
  EXPECT_EQ(apply_bilinear(ring, alg, a, b), multiply(ring, a, b));
}

INSTANTIATE_TEST_SUITE_P(Depths, ApplyBilinearDepths,
                         ::testing::Values(0, 1, 2, 3));

TEST(Bilinear, ApplyOverPolynomialRing) {
  // The bilinear scheme must work over ANY ring — exercise Z[X]/X^4.
  const PolyRing ring{4};
  const auto alg = strassen_algorithm();
  Matrix<CappedPoly> a(2, 2, ring.zero());
  Matrix<CappedPoly> b(2, 2, ring.zero());
  Rng rng(5);
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j) {
      a(i, j) = CappedPoly::monomial(4, static_cast<int>(rng.next_below(4)));
      b(i, j) = CappedPoly::monomial(4, static_cast<int>(rng.next_below(4)));
    }
  EXPECT_EQ(apply_bilinear(ring, alg, a, b), multiply(ring, a, b));
}

TEST(Bilinear, TensorPowerSparsityStaysManageable) {
  // Strassen has 12 alpha/beta/lambda nonzeros; powers multiply them.
  const auto alg = tensor_power(strassen_algorithm(), 3);
  std::size_t alpha_nnz = 0;
  for (const auto& row : alg.alpha) alpha_nnz += row.size();
  EXPECT_EQ(alpha_nnz, 12u * 12u * 12u);
}

TEST(Bilinear, CoefficientsAreUnit) {
  // Tensor powers of Strassen keep coefficients in {-1, +1}, which the
  // distributed Step 2/6 loops rely on for cheap scalar action.
  const auto alg = tensor_power(strassen_algorithm(), 2);
  for (const auto& row : alg.alpha)
    for (const auto& c : row) EXPECT_EQ(std::abs(c.coeff), 1);
  for (const auto& row : alg.lambda)
    for (const auto& c : row) EXPECT_EQ(std::abs(c.coeff), 1);
}

}  // namespace
}  // namespace cca
