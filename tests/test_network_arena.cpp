// Tests for the flat-arena network data plane: inbox span views, take_inbox
// ownership semantics, interleaved staging order, staged-encode spans
// (serial and parallel), and TrafficStats algebra.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "clique/network.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace cca::clique {
namespace {

std::vector<Word> to_vector(std::span<const Word> s) {
  return {s.begin(), s.end()};
}

TEST(NetworkArena, InterleavedSendsStayFifoPerPair) {
  Network net(4);
  // Node 0 alternates destinations; each pair's words must arrive in the
  // order they were staged, independent of the interleaving.
  net.send(0, 1, 1);
  net.send(0, 2, 100);
  net.send(0, 1, 2);
  net.send(0, 2, 101);
  net.send(0, 1, 3);
  net.deliver();
  EXPECT_EQ(to_vector(net.inbox(1, 0)), (std::vector<Word>{1, 2, 3}));
  EXPECT_EQ(to_vector(net.inbox(2, 0)), (std::vector<Word>{100, 101}));
}

TEST(NetworkArena, SendWordsAndSendMix) {
  Network net(3);
  const std::vector<Word> block{7, 8, 9};
  net.send(0, 1, 6);
  net.send_words(0, 1, block);
  net.send(0, 1, 10);
  net.deliver();
  EXPECT_EQ(to_vector(net.inbox(1, 0)), (std::vector<Word>{6, 7, 8, 9, 10}));
}

TEST(NetworkArena, InboxSpanValidUntilNextDeliver) {
  Network net(3);
  net.send(0, 1, 41);
  net.send(0, 1, 42);
  net.deliver();
  const auto view = net.inbox(1, 0);
  ASSERT_EQ(view.size(), 2u);
  // The view stays stable across unrelated reads and further staging; only
  // deliver() invalidates it.
  net.send(2, 1, 99);
  EXPECT_EQ(view[0], 41u);
  EXPECT_EQ(view[1], 42u);
  EXPECT_EQ(to_vector(net.inbox(1, 0)), (std::vector<Word>{41, 42}));
  net.deliver();
  // After the next superstep the pair (1, 0) is empty and (1, 2) holds the
  // new payload; the old span must not be used (and is not, here).
  EXPECT_TRUE(net.inbox(1, 0).empty());
  EXPECT_EQ(to_vector(net.inbox(1, 2)), (std::vector<Word>{99}));
}

TEST(NetworkArena, TakeInboxPreservesFifoAndEmptiesPair) {
  Network net(3);
  for (Word w = 0; w < 50; ++w) net.send(0, 1, w);
  net.send(2, 1, 999);
  net.deliver();
  const auto words = net.take_inbox(1, 0);
  ASSERT_EQ(words.size(), 50u);
  for (Word w = 0; w < 50; ++w) EXPECT_EQ(words[w], w);
  // The taken pair reads empty; other pairs are untouched.
  EXPECT_TRUE(net.inbox(1, 0).empty());
  EXPECT_EQ(to_vector(net.inbox(1, 2)), (std::vector<Word>{999}));
}

TEST(NetworkArena, SelfSendDeliveredLocally) {
  Network net(2);
  net.send(1, 1, 5);
  net.deliver();
  EXPECT_EQ(net.stats().rounds, 0);
  EXPECT_EQ(net.stats().total_words, 0);  // self-sends bypass the network
  EXPECT_EQ(to_vector(net.inbox(1, 1)), (std::vector<Word>{5}));
}

TEST(NetworkArena, RandomizedEquivalenceWithPerPairModel) {
  // Drive the arena with random interleaved traffic and compare against a
  // straightforward per-pair queue model.
  Rng rng(2024);
  const int n = 8;
  Network net(n);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::vector<std::vector<Word>>> model(
        static_cast<std::size_t>(n),
        std::vector<std::vector<Word>>(static_cast<std::size_t>(n)));
    const int ops = 200;
    for (int i = 0; i < ops; ++i) {
      const int src = static_cast<int>(rng.next_below(n));
      const int dst = static_cast<int>(rng.next_below(n));
      if (rng.next_below(2) == 0) {
        const Word w = rng.next();
        net.send(src, dst, w);
        model[static_cast<std::size_t>(dst)][static_cast<std::size_t>(src)]
            .push_back(w);
      } else {
        std::vector<Word> block(1 + rng.next_below(5));
        for (auto& w : block) w = rng.next();
        net.send_words(src, dst, block);
        auto& q =
            model[static_cast<std::size_t>(dst)][static_cast<std::size_t>(src)];
        q.insert(q.end(), block.begin(), block.end());
      }
    }
    net.deliver();
    for (int dst = 0; dst < n; ++dst)
      for (int src = 0; src < n; ++src)
        EXPECT_EQ(to_vector(net.inbox(dst, src)),
                  model[static_cast<std::size_t>(dst)]
                       [static_cast<std::size_t>(src)])
            << "round " << round << " pair (" << dst << "," << src << ")";
  }
}

TEST(NetworkArena, StageReturnsWritableSpanDeliveredFifo) {
  Network net(3);
  // stage() interleaved with send/send_words must preserve per-pair FIFO,
  // and unwritten staged words read as zero.
  net.send(0, 1, 1);
  auto span = net.stage(0, 1, 3);
  ASSERT_EQ(span.size(), 3u);
  span[0] = 2;
  span[2] = 4;  // span[1] left unwritten -> zero
  net.send(0, 1, 5);
  net.deliver();
  EXPECT_EQ(to_vector(net.inbox(1, 0)), (std::vector<Word>{1, 2, 0, 4, 5}));
}

TEST(NetworkArena, StageZeroWordsIsANoop) {
  Network net(2);
  const auto span = net.stage(0, 1, 0);
  EXPECT_TRUE(span.empty());
  net.send(0, 1, 9);
  net.deliver();
  EXPECT_EQ(net.stats().total_words, 1);
  EXPECT_EQ(to_vector(net.inbox(1, 0)), (std::vector<Word>{9}));
}

TEST(NetworkArena, StagedEncodeLayoutIdenticalToSendWords) {
  // The zero-copy staging path must produce exactly the same word layout
  // AND the same TrafficStats as the copying send_words path, for an
  // interleaved multi-destination run pattern from every source.
  const int n = 6;
  Rng rng_payload(99);
  std::vector<Word> payload(512);
  for (auto& w : payload) w = rng_payload.next();

  auto drive = [&](Network& net, bool staged) {
    std::size_t at = 0;
    for (int src = 0; src < n; ++src)
      for (int round = 0; round < 3; ++round)
        for (int dst = 0; dst < n; ++dst) {
          const std::size_t len = 1 + ((src + round + dst) % 4);
          const std::span<const Word> ws(payload.data() + at, len);
          at = (at + len) % (payload.size() - 8);
          if (staged) {
            auto span = net.stage(src, dst, len);
            for (std::size_t i = 0; i < len; ++i) span[i] = ws[i];
          } else {
            net.send_words(src, dst, ws);
          }
        }
    net.deliver();
  };

  Network a(n), b(n);
  drive(a, false);
  drive(b, true);
  for (int dst = 0; dst < n; ++dst)
    for (int src = 0; src < n; ++src)
      EXPECT_EQ(to_vector(a.inbox(dst, src)), to_vector(b.inbox(dst, src)))
          << "pair (" << dst << "," << src << ")";
  EXPECT_EQ(a.stats().rounds, b.stats().rounds);
  EXPECT_EQ(a.stats().bound_rounds, b.stats().bound_rounds);
  EXPECT_EQ(a.stats().total_words, b.stats().total_words);
  EXPECT_EQ(a.stats().max_node_send, b.stats().max_node_send);
  EXPECT_EQ(a.stats().max_node_recv, b.stats().max_node_recv);
}

TEST(NetworkArena, ParallelStagingFromAllSourcesMatchesSerial) {
  // The per-source ownership invariant: staging from distinct sources in a
  // parallel region is race-free and yields the identical arena layout,
  // because per-source append order is unchanged. Each source writes an
  // interleaved segment-run pattern (alternating destinations, so segment
  // runs break and resume) to make ordering bugs visible.
  const int n = 16;
  const int rounds = 8;
  auto pattern = [&](int src, int round, int dst) {
    return (static_cast<Word>(src) << 32) ^
           (static_cast<Word>(round) << 16) ^ static_cast<Word>(dst);
  };
  auto drive_serial = [&](Network& net) {
    for (int src = 0; src < n; ++src)
      for (int round = 0; round < rounds; ++round)
        for (int dst = 0; dst < n; ++dst) {
          if ((src + round + dst) % 3 == 0) continue;  // broken runs
          auto span = net.stage(src, dst, 2);
          span[0] = pattern(src, round, dst);
          span[1] = ~pattern(src, round, dst);
        }
    net.deliver();
  };
  auto drive_parallel = [&](Network& net) {
    parallel_for(0, n, [&](int src) {
      for (int round = 0; round < rounds; ++round)
        for (int dst = 0; dst < n; ++dst) {
          if ((src + round + dst) % 3 == 0) continue;
          auto span = net.stage(src, dst, 2);
          span[0] = pattern(src, round, dst);
          span[1] = ~pattern(src, round, dst);
        }
    });
    net.deliver();
  };

  Network a(n), b(n);
  drive_serial(a);
  drive_parallel(b);
  for (int dst = 0; dst < n; ++dst)
    for (int src = 0; src < n; ++src)
      EXPECT_EQ(to_vector(a.inbox(dst, src)), to_vector(b.inbox(dst, src)))
          << "pair (" << dst << "," << src << ")";
  EXPECT_EQ(a.stats().rounds, b.stats().rounds);
  EXPECT_EQ(a.stats().total_words, b.stats().total_words);
}

TEST(TrafficStats, PlusEqualsAccumulatesAndMaxes) {
  TrafficStats a{10, 5, 2, 100, 7, 9};
  const TrafficStats b{3, 2, 1, 50, 11, 4};
  a += b;
  EXPECT_EQ(a.rounds, 13);
  EXPECT_EQ(a.bound_rounds, 7);
  EXPECT_EQ(a.supersteps, 3);
  EXPECT_EQ(a.total_words, 150);
  EXPECT_EQ(a.max_node_send, 11);  // max, not sum
  EXPECT_EQ(a.max_node_recv, 9);   // max, not sum
}

TEST(TrafficStats, DifferenceIsDeltaOfCounters) {
  const TrafficStats before{10, 5, 2, 100, 7, 9};
  const TrafficStats after{25, 11, 5, 260, 8, 12};
  const auto d = after - before;
  EXPECT_EQ(d.rounds, 15);
  EXPECT_EQ(d.bound_rounds, 6);
  EXPECT_EQ(d.supersteps, 3);
  EXPECT_EQ(d.total_words, 160);
  // Maxima are not differentiable; the delta keeps the minuend's values.
  EXPECT_EQ(d.max_node_send, 8);
  EXPECT_EQ(d.max_node_recv, 12);
}

TEST(TrafficStats, RoundMeterMeasuresScopedDelta) {
  Network net(4);
  net.send(0, 1, 1);
  net.deliver();
  RoundMeter meter(net);
  net.send(0, 1, 1);
  net.send(0, 2, 2);
  net.deliver();
  EXPECT_GE(meter.rounds(), 1);
  EXPECT_EQ(meter.delta().supersteps, 1);
  EXPECT_EQ(meter.delta().total_words, 2);
}

}  // namespace
}  // namespace cca::clique
