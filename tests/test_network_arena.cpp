// Tests for the flat-arena network data plane: inbox span views, take_inbox
// ownership semantics, interleaved staging order, and TrafficStats algebra.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "clique/network.hpp"
#include "util/rng.hpp"

namespace cca::clique {
namespace {

std::vector<Word> to_vector(std::span<const Word> s) {
  return {s.begin(), s.end()};
}

TEST(NetworkArena, InterleavedSendsStayFifoPerPair) {
  Network net(4);
  // Node 0 alternates destinations; each pair's words must arrive in the
  // order they were staged, independent of the interleaving.
  net.send(0, 1, 1);
  net.send(0, 2, 100);
  net.send(0, 1, 2);
  net.send(0, 2, 101);
  net.send(0, 1, 3);
  net.deliver();
  EXPECT_EQ(to_vector(net.inbox(1, 0)), (std::vector<Word>{1, 2, 3}));
  EXPECT_EQ(to_vector(net.inbox(2, 0)), (std::vector<Word>{100, 101}));
}

TEST(NetworkArena, SendWordsAndSendMix) {
  Network net(3);
  const std::vector<Word> block{7, 8, 9};
  net.send(0, 1, 6);
  net.send_words(0, 1, block);
  net.send(0, 1, 10);
  net.deliver();
  EXPECT_EQ(to_vector(net.inbox(1, 0)), (std::vector<Word>{6, 7, 8, 9, 10}));
}

TEST(NetworkArena, InboxSpanValidUntilNextDeliver) {
  Network net(3);
  net.send(0, 1, 41);
  net.send(0, 1, 42);
  net.deliver();
  const auto view = net.inbox(1, 0);
  ASSERT_EQ(view.size(), 2u);
  // The view stays stable across unrelated reads and further staging; only
  // deliver() invalidates it.
  net.send(2, 1, 99);
  EXPECT_EQ(view[0], 41u);
  EXPECT_EQ(view[1], 42u);
  EXPECT_EQ(to_vector(net.inbox(1, 0)), (std::vector<Word>{41, 42}));
  net.deliver();
  // After the next superstep the pair (1, 0) is empty and (1, 2) holds the
  // new payload; the old span must not be used (and is not, here).
  EXPECT_TRUE(net.inbox(1, 0).empty());
  EXPECT_EQ(to_vector(net.inbox(1, 2)), (std::vector<Word>{99}));
}

TEST(NetworkArena, TakeInboxPreservesFifoAndEmptiesPair) {
  Network net(3);
  for (Word w = 0; w < 50; ++w) net.send(0, 1, w);
  net.send(2, 1, 999);
  net.deliver();
  const auto words = net.take_inbox(1, 0);
  ASSERT_EQ(words.size(), 50u);
  for (Word w = 0; w < 50; ++w) EXPECT_EQ(words[w], w);
  // The taken pair reads empty; other pairs are untouched.
  EXPECT_TRUE(net.inbox(1, 0).empty());
  EXPECT_EQ(to_vector(net.inbox(1, 2)), (std::vector<Word>{999}));
}

TEST(NetworkArena, SelfSendDeliveredLocally) {
  Network net(2);
  net.send(1, 1, 5);
  net.deliver();
  EXPECT_EQ(net.stats().rounds, 0);
  EXPECT_EQ(net.stats().total_words, 0);  // self-sends bypass the network
  EXPECT_EQ(to_vector(net.inbox(1, 1)), (std::vector<Word>{5}));
}

TEST(NetworkArena, RandomizedEquivalenceWithPerPairModel) {
  // Drive the arena with random interleaved traffic and compare against a
  // straightforward per-pair queue model.
  Rng rng(2024);
  const int n = 8;
  Network net(n);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::vector<std::vector<Word>>> model(
        static_cast<std::size_t>(n),
        std::vector<std::vector<Word>>(static_cast<std::size_t>(n)));
    const int ops = 200;
    for (int i = 0; i < ops; ++i) {
      const int src = static_cast<int>(rng.next_below(n));
      const int dst = static_cast<int>(rng.next_below(n));
      if (rng.next_below(2) == 0) {
        const Word w = rng.next();
        net.send(src, dst, w);
        model[static_cast<std::size_t>(dst)][static_cast<std::size_t>(src)]
            .push_back(w);
      } else {
        std::vector<Word> block(1 + rng.next_below(5));
        for (auto& w : block) w = rng.next();
        net.send_words(src, dst, block);
        auto& q =
            model[static_cast<std::size_t>(dst)][static_cast<std::size_t>(src)];
        q.insert(q.end(), block.begin(), block.end());
      }
    }
    net.deliver();
    for (int dst = 0; dst < n; ++dst)
      for (int src = 0; src < n; ++src)
        EXPECT_EQ(to_vector(net.inbox(dst, src)),
                  model[static_cast<std::size_t>(dst)]
                       [static_cast<std::size_t>(src)])
            << "round " << round << " pair (" << dst << "," << src << ")";
  }
}

TEST(TrafficStats, PlusEqualsAccumulatesAndMaxes) {
  TrafficStats a{10, 5, 2, 100, 7, 9};
  const TrafficStats b{3, 2, 1, 50, 11, 4};
  a += b;
  EXPECT_EQ(a.rounds, 13);
  EXPECT_EQ(a.bound_rounds, 7);
  EXPECT_EQ(a.supersteps, 3);
  EXPECT_EQ(a.total_words, 150);
  EXPECT_EQ(a.max_node_send, 11);  // max, not sum
  EXPECT_EQ(a.max_node_recv, 9);   // max, not sum
}

TEST(TrafficStats, DifferenceIsDeltaOfCounters) {
  const TrafficStats before{10, 5, 2, 100, 7, 9};
  const TrafficStats after{25, 11, 5, 260, 8, 12};
  const auto d = after - before;
  EXPECT_EQ(d.rounds, 15);
  EXPECT_EQ(d.bound_rounds, 6);
  EXPECT_EQ(d.supersteps, 3);
  EXPECT_EQ(d.total_words, 160);
  // Maxima are not differentiable; the delta keeps the minuend's values.
  EXPECT_EQ(d.max_node_send, 8);
  EXPECT_EQ(d.max_node_recv, 12);
}

TEST(TrafficStats, RoundMeterMeasuresScopedDelta) {
  Network net(4);
  net.send(0, 1, 1);
  net.deliver();
  RoundMeter meter(net);
  net.send(0, 1, 1);
  net.send(0, 2, 2);
  net.deliver();
  EXPECT_GE(meter.rounds(), 1);
  EXPECT_EQ(meter.delta().supersteps, 1);
  EXPECT_EQ(meter.delta().total_words, 2);
}

}  // namespace
}  // namespace cca::clique
